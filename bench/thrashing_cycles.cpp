// §III-A: suspend-resume cycle cost.
//
// "Pages allocated for the suspended processes are paged out and in at
// most once, respectively after suspension and resuming. Thrashing could
// only happen if a given job is continuously suspended and resumed by the
// scheduling mechanism: the moderate cost of a suspend-resume cycle can be
// thus multiplied by the number of cycles."
//
// A memory-hungry tl (2.5 GiB state, 1.5 GiB input) is preempted by a
// stream of N memory-hungry high-priority jobs. Each cycle pays one
// page-out + page-in; total paging grows linearly with N and so does tl's
// completion time.
#include <cstdio>

#include "bench_util.hpp"
#include "sched/dummy.hpp"

namespace osap {
namespace {

MetricMap run_cycles(int cycles, std::uint64_t seed) {
  ClusterConfig cfg = paper_cluster();
  cfg.seed = seed;
  Cluster cluster(cfg);
  Rng rng(seed);
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));

  TaskSpec tl = jitter_task(hungry_map_task(gib(2.5), gib(1.5)), rng);
  tl.preferred_node = cluster.node(0);
  ds.submit_at(0.05, single_task_job("tl", 0, tl));

  // Cycle i: suspend tl, run a hungry high-priority task, resume tl.
  for (int i = 0; i < cycles; ++i) {
    const std::string name = "high" + std::to_string(i);
    TaskSpec high = jitter_task(hungry_map_task(2 * GiB, 128 * MiB), rng);
    high.preferred_node = cluster.node(0);
    cluster.sim().at(20.0 + 45.0 * i, [&cluster, &ds, name, high] {
      const Task& t = cluster.job_tracker().task(ds.task_of("tl", 0));
      if (t.done()) return;
      cluster.submit(single_task_job(name, 10, high));
      if (t.state == TaskState::Running) ds.preempt("tl", 0, PreemptPrimitive::Suspend);
    });
    ds.on_complete(name, [&cluster, &ds] {
      const Task& t = cluster.job_tracker().task(ds.task_of("tl", 0));
      if (!t.done()) ds.restore("tl", 0, PreemptPrimitive::Suspend);
    });
  }
  cluster.run();
  const JobTracker& jt = cluster.job_tracker();
  const Task& t = jt.task(ds.task_of("tl", 0));
  return MetricMap{
      {"tl_sojourn", jt.job(ds.job_of("tl")).sojourn()},
      {"tl_swap_out_mib", to_mib(t.swapped_out)},
      {"tl_swap_in_mib", to_mib(t.swapped_in)},
  };
}

}  // namespace
}  // namespace osap

int main() {
  using namespace osap;
  bench::print_header("Cost of repeated suspend-resume cycles",
                      "§III-A thrashing discussion");
  Table table({"cycles", "tl sojourn (s)", "tl paged out (MiB)", "tl paged in (MiB)"});
  for (int cycles : {0, 1, 2, 3, 4}) {
    const auto agg = ExperimentRunner::run(
        [&](std::uint64_t seed, int) { return run_cycles(cycles, seed); }, 10);
    table.row({std::to_string(cycles), Table::num(agg.at("tl_sojourn").mean()),
               Table::num(agg.at("tl_swap_out_mib").mean(), 0),
               Table::num(agg.at("tl_swap_in_mib").mean(), 0)});
  }
  table.print();
  std::printf(
      "\nEach cycle pays roughly one page-out + page-in of tl's state —\n"
      "linear in the cycle count, no runaway thrashing. Schedulers should\n"
      "still avoid needless cycles (the paper's advice).\n");
  return 0;
}
