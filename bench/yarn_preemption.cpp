// §III-B: the primitive under YARN (Hadoop 2).
//
// YARN schedules memory leases instead of slots, and its stock preemption
// *kills* containers. The two-job scenario replayed on the YARN model
// shows the same trade-off triangle as Hadoop 1 — suspension frees the
// lease as fast as a kill while preserving the container's work.
#include <cstdio>

#include "bench_util.hpp"
#include "yarn/yarn_cluster.hpp"

namespace osap {
namespace {

MetricMap run_primitive(PreemptPrimitive primitive, Bytes state, std::uint64_t seed) {
  YarnClusterConfig cfg;
  cfg.num_nodes = 1;
  cfg.os = paper_cluster().os;
  cfg.container_capacity = gib(2.5);
  cfg.primitive = primitive;
  cfg.seed = seed;
  YarnCluster cluster(cfg);
  Rng rng(seed);

  TaskSpec low_task =
      jitter_task(state > 0 ? hungry_map_task(state) : light_map_task(), rng);
  TaskSpec high_task =
      jitter_task(state > 0 ? hungry_map_task(state) : light_map_task(), rng);
  YarnAppSpec low;
  low.name = "low";
  low.priority = 0;
  low.container_memory = gib(2.5);
  low.tasks.push_back(low_task);
  const AppId low_id = cluster.submit(low);

  YarnAppSpec high;
  high.name = "high";
  high.priority = 10;
  high.container_memory = gib(2.5);
  high.tasks.push_back(high_task);
  auto high_id = std::make_shared<AppId>();
  const SimTime arrival = 40.0 + rng.uniform(-2, 2);
  cluster.sim().at(arrival, [&cluster, high_id, high] { *high_id = cluster.submit(high); });
  cluster.run();

  const YarnApp& h = cluster.rm().app(*high_id);
  const YarnApp& l = cluster.rm().app(low_id);
  return MetricMap{
      {"high_sojourn", h.sojourn()},
      {"makespan", std::max(h.completed_at, l.completed_at) - l.submitted_at},
      {"kills", static_cast<double>(cluster.rm().containers_killed())},
      {"swap_mib",
       to_mib(cluster.kernel(cluster.node(0)).disk().transferred(IoClass::SwapOut))},
  };
}

void run_table(const char* title, Bytes state) {
  std::printf("\n%s\n", title);
  Table table({"primitive", "high sojourn (s)", "makespan (s)", "containers killed",
               "swap-out (MiB)"});
  for (PreemptPrimitive primitive :
       {PreemptPrimitive::Wait, PreemptPrimitive::Kill, PreemptPrimitive::Suspend}) {
    const auto agg = ExperimentRunner::run(
        [&](std::uint64_t seed, int) { return run_primitive(primitive, state, seed); },
        bench::kRuns);
    table.row({to_string(primitive), Table::num(agg.at("high_sojourn").mean()),
               Table::num(agg.at("makespan").mean()), Table::num(agg.at("kills").mean(), 1),
               Table::num(agg.at("swap_mib").mean(), 0)});
  }
  table.print();
}

}  // namespace
}  // namespace osap

int main() {
  using namespace osap;
  bench::print_header("Container preemption under YARN (Hadoop 2)",
                      "§III-B applicability to YARN");
  run_table("light-weight containers", 0);
  run_table("memory-hungry containers (2 GiB state)", 2 * GiB);
  std::printf(
      "\nThe Hadoop-1 result carries over: suspension matches kill's\n"
      "latency for the high-priority app and wait's makespan, trading\n"
      "only bounded paging when memory is genuinely scarce.\n");
  return 0;
}
