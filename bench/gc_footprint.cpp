// §V-B: controlling the memory footprint.
//
// "When writing task implementations, it is good measure to … optimize
// for lower memory footprints. … It is therefore a good idea to configure
// Java to use a garbage collector that does release memory, such as the
// new G1 implementation; it is also possible to hint the garbage
// collector to run using System.gc() after disposing of large objects."
//
// tl carries 2.5 GiB of state. A "hoarding" JVM keeps it until exit; a
// GC-friendly task releases it after 40% of the input. th (2 GiB) arrives
// at 60% of tl — past the release point — so the GC-friendly tl has
// almost nothing left to page.
#include <cstdio>

#include "bench_util.hpp"
#include "sched/dummy.hpp"

namespace osap {
namespace {

MetricMap run_variant(double state_lifetime, std::uint64_t seed) {
  ClusterConfig cfg = paper_cluster();
  cfg.seed = seed;
  Cluster cluster(cfg);
  Rng rng(seed);
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));

  TaskSpec tl = jitter_task(hungry_map_task(gib(2.5)), rng);
  tl.state_lifetime = state_lifetime;
  TaskSpec th = jitter_task(hungry_map_task(2 * GiB), rng);
  tl.preferred_node = th.preferred_node = cluster.node(0);
  ds.submit_at(0.05, single_task_job("tl", 0, tl));
  ds.at_progress("tl", 0, 0.6, [&cluster, &ds, th] {
    cluster.submit(single_task_job("th", 10, th));
    ds.preempt("tl", 0, PreemptPrimitive::Suspend);
  });
  ds.on_complete("th", [&ds] { ds.restore("tl", 0, PreemptPrimitive::Suspend); });
  cluster.run();

  const JobTracker& jt = cluster.job_tracker();
  const Task& tl_task = jt.task(ds.task_of("tl", 0));
  double makespan = 0;
  for (JobId id : jt.jobs_in_order()) makespan = std::max(makespan, jt.job(id).completed_at);
  return MetricMap{
      {"th_sojourn", jt.job(ds.job_of("th")).sojourn()},
      {"makespan", makespan},
      {"tl_swap_out_mib", to_mib(tl_task.swapped_out)},
  };
}

}  // namespace
}  // namespace osap

int main() {
  using namespace osap;
  bench::print_header("Memory-footprint control: hoarding vs releasing GC",
                      "§V-B implications on task implementation");
  Table table({"task behaviour", "th sojourn (s)", "makespan (s)", "tl paged out (MiB)"});
  struct Variant {
    const char* label;
    double lifetime;
  };
  for (const Variant v : {Variant{"holds 2.5 GiB until exit (lazy GC)", 1.0},
                          Variant{"releases state at 40% (G1 / System.gc())", 0.4}}) {
    const auto agg = ExperimentRunner::run(
        [&](std::uint64_t seed, int) { return run_variant(v.lifetime, seed); }, bench::kRuns);
    table.row({v.label, Table::num(agg.at("th_sojourn").mean()),
               Table::num(agg.at("makespan").mean()),
               Table::num(agg.at("tl_swap_out_mib").mean(), 0)});
  }
  table.print();
  std::printf(
      "\nReleasing memory back to the OS before it goes idle removes most\n"
      "of the suspension's paging cost — the incentive §V-B gives\n"
      "MapReduce authors once this primitive exists.\n");
  return 0;
}
