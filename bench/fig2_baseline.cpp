// Figure 2: baseline experiments — light-weight (stateless) tasks.
//
//  2a: sojourn time of th vs tl progress at th's launch, for wait / kill /
//      susp. Expected shape: wait decreases linearly (~150 s -> ~90 s);
//      kill and susp flat, susp lowest.
//  2b: makespan of the two-job workload. Expected: wait and susp flat and
//      minimal; kill grows linearly with r (it rediscovers tl's work).
//
// Each point averages 20 seeded runs (min/max stay within a few % of the
// mean, as the paper reports).
//
// Flags:
//   --runs=N          repetitions per point (default 20)
//   --counters=FILE   after the sweep, run one instrumented representative
//                     point (susp, r=0.5) and write its observability JSON
//                     (counters, hot-path profile, audit costs) to FILE —
//                     this is what CI publishes as BENCH_fig2.json
//   --trace=FILE      ditto, writing the Chrome trace-event JSON
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/run.hpp"
#include "osapd/expand.hpp"
#include "osapd/matrix.hpp"

namespace {

std::string flag_value(int argc, char** argv, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace osap;

  const std::string runs_flag = flag_value(argc, argv, "runs");
  const int runs = runs_flag.empty() ? bench::kRuns : std::stoi(runs_flag);
  const std::string counters_file = flag_value(argc, argv, "counters");
  const std::string trace_file = flag_value(argc, argv, "trace");

  bench::print_header("Baseline: light-weight tasks", "Figures 2a and 2b");

  // The sweep grid is the osapd matrix expansion (docs/OSAPD.md) — the
  // same axes `osapd run configs/fig2.matrix` shards across workers —
  // with the seed axis drawn from the ExperimentRunner's Rng(42) stream
  // so the per-point averages match `osap two-job --runs` exactly.
  osapd::MatrixSpec spec;
  spec.axes["workload"] = {"two_job"};
  spec.axes["primitive"] = {"wait", "kill", "susp"};
  spec.axes["r"] = {"0.1", "0.2", "0.3", "0.4", "0.5", "0.6", "0.7", "0.8", "0.9"};
  Rng seeder(42);
  for (int i = 0; i < runs; ++i) {
    spec.axes["seed"].push_back(std::to_string(seeder.next_u64()));
  }

  // Aggregate per (r, primitive) cell group across the seed replicates.
  std::map<std::string, std::map<std::string, bench::TwoJobStats>> grid;
  for (const core::RunDescriptor& d : osapd::expand(spec)) {
    const core::ResultRecord rec = core::run_descriptor(d);
    if (!rec.ok) {
      std::fprintf(stderr, "cell failed (%s): %s\n", d.canonical().c_str(),
                   rec.error.c_str());
      return 1;
    }
    bench::TwoJobStats& stats = grid[d.get("r", "")][d.get("primitive", "")];
    stats.sojourn_th.add(rec.sojourn_th);
    stats.sojourn_tl.add(rec.sojourn_tl);
    stats.makespan.add(rec.makespan);
    stats.tl_swapped_out_mib.add(rec.tl_swapped_out_mib);
  }

  Table sojourn({"tl progress at launch of th (%)", "wait (s)", "kill (s)", "susp (s)"});
  Table makespan({"tl progress at launch of th (%)", "wait (s)", "kill (s)", "susp (s)"});
  double max_spread = 0;
  for (int rp = 10; rp <= 90; rp += 10) {
    const std::string r = "0." + std::to_string(rp / 10);
    std::vector<std::string> srow{std::to_string(rp)};
    std::vector<std::string> mrow{std::to_string(rp)};
    for (const char* prim : {"wait", "kill", "susp"}) {
      const bench::TwoJobStats& stats = grid[r][prim];
      srow.push_back(Table::num(stats.sojourn_th.mean()));
      mrow.push_back(Table::num(stats.makespan.mean()));
      max_spread = std::max({max_spread, stats.sojourn_th.spread(), stats.makespan.spread()});
    }
    sojourn.row(srow);
    makespan.row(mrow);
  }
  std::printf("\nFig. 2a — sojourn time of th\n");
  sojourn.print();
  std::printf("\nFig. 2b — makespan\n");
  makespan.print();
  std::printf("\nmax min/max deviation from the mean across all points: %.1f%%\n",
              100.0 * max_spread);
  std::printf("(paper: within 5%%)\n");

  if (!counters_file.empty() || !trace_file.empty()) {
    // One fully instrumented representative point: the suspend primitive
    // at r=0.5. Cluster::run() writes the configured files on return.
    TwoJobParams params;
    params.primitive = PreemptPrimitive::Suspend;
    params.progress_at_launch = 0.5;
    params.cluster.trace.enabled = true;
    params.cluster.trace.trace_file = trace_file;
    params.cluster.trace.counters_file = counters_file;
    run_two_job(params);
    if (!counters_file.empty()) {
      std::printf("\nobservability JSON written to %s\n", counters_file.c_str());
    }
    if (!trace_file.empty()) {
      std::printf("trace written to %s (load in Perfetto)\n", trace_file.c_str());
    }
  }
  return 0;
}
