// Figure 2: baseline experiments — light-weight (stateless) tasks.
//
//  2a: sojourn time of th vs tl progress at th's launch, for wait / kill /
//      susp. Expected shape: wait decreases linearly (~150 s -> ~90 s);
//      kill and susp flat, susp lowest.
//  2b: makespan of the two-job workload. Expected: wait and susp flat and
//      minimal; kill grows linearly with r (it rediscovers tl's work).
//
// Each point averages 20 seeded runs (min/max stay within a few % of the
// mean, as the paper reports).
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace osap;
  using bench::run_point;

  bench::print_header("Baseline: light-weight tasks", "Figures 2a and 2b");

  const PreemptPrimitive primitives[] = {PreemptPrimitive::Wait, PreemptPrimitive::Kill,
                                         PreemptPrimitive::Suspend};

  Table sojourn({"tl progress at launch of th (%)", "wait (s)", "kill (s)", "susp (s)"});
  Table makespan({"tl progress at launch of th (%)", "wait (s)", "kill (s)", "susp (s)"});
  double max_spread = 0;
  for (int rp = 10; rp <= 90; rp += 10) {
    const double r = rp / 100.0;
    std::vector<std::string> srow{std::to_string(rp)};
    std::vector<std::string> mrow{std::to_string(rp)};
    for (PreemptPrimitive p : primitives) {
      const auto stats = run_point(p, r, 0, 0);
      srow.push_back(Table::num(stats.sojourn_th.mean()));
      mrow.push_back(Table::num(stats.makespan.mean()));
      max_spread = std::max({max_spread, stats.sojourn_th.spread(), stats.makespan.spread()});
    }
    sojourn.row(srow);
    makespan.row(mrow);
  }
  std::printf("\nFig. 2a — sojourn time of th\n");
  sojourn.print();
  std::printf("\nFig. 2b — makespan\n");
  makespan.print();
  std::printf("\nmax min/max deviation from the mean across all points: %.1f%%\n",
              100.0 * max_spread);
  std::printf("(paper: within 5%%)\n");
  return 0;
}
