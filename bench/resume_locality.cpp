// §V-A: resume locality.
//
// A suspended process can only resume on its own machine. If that machine
// stays busy, the delay-scheduling-style policy waits up to a threshold
// for a home slot, then falls back to kill + restart elsewhere ("the
// suspend is effectively analogous to a delayed kill"). We park tl on a
// node that stays busy for ~150 s while a second node idles, and sweep
// the threshold: small thresholds restart early (work lost, earlier
// finish); large thresholds preserve work but wait.
#include <cstdio>

#include "bench_util.hpp"
#include "preempt/resume_locality.hpp"
#include "sched/dummy.hpp"

namespace osap {
namespace {

MetricMap run_threshold(Duration threshold, std::uint64_t seed) {
  ClusterConfig cfg = paper_cluster();
  cfg.num_nodes = 2;
  cfg.seed = seed;
  Cluster cluster(cfg);
  Rng rng(seed);
  // Infinite locality delay: pinned tasks never drift to another node, so
  // the filler jobs keep the home node genuinely busy.
  auto sched = std::make_unique<DummyScheduler>(cluster, seconds(1e9));
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));

  // tl itself is unpinned: tracker 0 heartbeats first, so it launches on
  // node 0, and after a delayed kill it may restart on the idle node 1.
  TaskSpec tl = jitter_task(light_map_task(), rng);
  ds.submit_at(0.05, single_task_job("tl", 0, tl));

  // At 50% of tl: suspend it and hand node 0 to two back-to-back
  // high-priority tasks (~160 s of occupancy).
  ds.at_progress("tl", 0, 0.5, [&cluster, &ds, &rng] {
    for (int i = 0; i < 2; ++i) {
      TaskSpec high = jitter_task(light_map_task(), rng);
      high.preferred_node = cluster.node(0);
      cluster.submit(single_task_job("high" + std::to_string(i), 10, high));
    }
    ds.preempt("tl", 0, PreemptPrimitive::Suspend);
  });

  // Drive the resume-locality policy from a heartbeat-rate poll over both
  // trackers (standing in for a scheduler integration).
  auto policy =
      std::make_shared<ResumeLocalityPolicy>(cluster.job_tracker(), threshold);
  auto tick = [&cluster, &ds, policy](auto self) -> void {
    const Task& t = cluster.job_tracker().task(ds.task_of("tl", 0));
    if (t.done()) return;
    if (t.state == TaskState::Suspended) policy->request_resume(t.id);
    for (int n = 0; n < 2; ++n) {
      TaskTracker& tt = cluster.tracker(cluster.node(n));
      TrackerStatus status;
      status.tracker = tt.id();
      status.node = tt.node();
      status.free_map_slots = tt.free_map_slots();
      status.free_reduce_slots = tt.free_reduce_slots();
      policy->on_heartbeat(status);
    }
    cluster.sim().after(3.0, [self] { self(self); });
  };
  cluster.sim().at(1.0, [tick] { tick(tick); });
  cluster.run();

  const JobTracker& jt = cluster.job_tracker();
  const Task& t = jt.task(ds.task_of("tl", 0));
  return MetricMap{
      {"tl_sojourn", jt.job(ds.job_of("tl")).sojourn()},
      {"attempts", static_cast<double>(t.attempts_started)},
  };
}

}  // namespace
}  // namespace osap

int main() {
  using namespace osap;
  bench::print_header("Resume locality: wait for the home node vs delayed kill",
                      "§V-A discussion (resume locality)");
  Table table({"threshold (s)", "tl sojourn (s)", "tl attempts", "outcome"});
  for (double threshold : {5.0, 30.0, 60.0, 300.0}) {
    const auto agg = ExperimentRunner::run(
        [&](std::uint64_t seed, int) { return run_threshold(threshold, seed); },
        bench::kRuns);
    const double attempts = agg.at("attempts").mean();
    table.row({Table::num(threshold, 0), Table::num(agg.at("tl_sojourn").mean()),
               Table::num(attempts, 2),
               attempts > 1.5 ? "restarted remotely (work lost)"
                              : "resumed on home node (work kept)"});
  }
  table.print();
  std::printf(
      "\nSmall thresholds act like a delayed kill: tl finishes sooner on\n"
      "the idle node but redoes its work; large thresholds preserve the\n"
      "suspended work at the cost of waiting for the home slot.\n");
  return 0;
}
