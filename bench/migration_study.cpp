// §V-A: three ways to handle a suspended task whose home node stays busy.
//
//   wait-for-home   — hold the suspension until the home slot frees
//   delayed-kill    — restart from scratch on the idle node (the resume-
//                     locality fallback)
//   criu-migrate    — dump + ship + restore the frozen process on the
//                     idle node (the paper's suggested future work)
//
// tl (with varying state size) is suspended at 50% while its home node is
// pinned for ~160 s and a second node idles.
#include <cstdio>

#include "bench_util.hpp"
#include "preempt/migration.hpp"
#include "sched/dummy.hpp"

namespace osap {
namespace {

enum class Strategy { WaitForHome, DelayedKill, Migrate };

const char* to_string(Strategy s) {
  switch (s) {
    case Strategy::WaitForHome: return "wait-for-home";
    case Strategy::DelayedKill: return "delayed-kill";
    case Strategy::Migrate: return "criu-migrate";
  }
  return "?";
}

MetricMap run_strategy(Strategy strategy, Bytes state, std::uint64_t seed) {
  ClusterConfig cfg = paper_cluster();
  cfg.num_nodes = 2;
  cfg.seed = seed;
  Cluster cluster(cfg);
  Rng rng(seed);
  auto sched = std::make_unique<DummyScheduler>(cluster, seconds(1e9));
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));

  TaskSpec tl = jitter_task(state > 0 ? hungry_map_task(state) : light_map_task(), rng);
  ds.submit_at(0.05, single_task_job("tl", 0, tl));
  ds.at_progress("tl", 0, 0.5, [&cluster, &ds, &rng] {
    for (int i = 0; i < 2; ++i) {
      TaskSpec high = jitter_task(light_map_task(), rng);
      high.preferred_node = cluster.node(0);
      cluster.submit(single_task_job("high" + std::to_string(i), 10, high));
    }
    ds.preempt("tl", 0, PreemptPrimitive::Suspend);
  });
  auto migrator = std::make_shared<TaskMigrator>(cluster);
  // Home node frees around t ~205 s; the alternatives act at t = 60 s.
  switch (strategy) {
    case Strategy::WaitForHome: {
      auto poll = [&cluster, &ds](auto self) -> void {
        const Task& t = cluster.job_tracker().task(ds.task_of("tl", 0));
        if (t.done()) return;
        if (t.state == TaskState::Suspended &&
            cluster.tracker(cluster.node(0)).free_map_slots() > 0) {
          cluster.job_tracker().resume_task(t.id);
          return;
        }
        cluster.sim().after(3.0, [self] { self(self); });
      };
      cluster.sim().at(60.0, [poll] { poll(poll); });
      break;
    }
    case Strategy::DelayedKill:
      cluster.sim().at(60.0, [&cluster, &ds] {
        cluster.job_tracker().kill_task(ds.task_of("tl", 0));
      });
      break;
    case Strategy::Migrate:
      cluster.sim().at(60.0, [&cluster, &ds, migrator] {
        migrator->migrate(ds.task_of("tl", 0), cluster.node(1));
      });
      break;
  }
  cluster.run();
  const JobTracker& jt = cluster.job_tracker();
  const Job& tl_job = jt.job(ds.job_of("tl"));
  return MetricMap{
      {"tl_sojourn", tl_job.sojourn()},
      {"attempts", static_cast<double>(jt.task(tl_job.tasks[0]).attempts_started)},
      {"image_mib", to_mib(migrator->bytes_moved())},
  };
}

}  // namespace
}  // namespace osap

int main() {
  using namespace osap;
  bench::print_header("Suspended task vs busy home node: wait, delayed kill, or migrate",
                      "§V-A resume locality + CRIU future work");
  for (const Bytes state : {Bytes{0}, Bytes{2} * GiB}) {
    std::printf("\ntask state: %s\n", state == 0 ? "none (light-weight)" : "2 GiB");
    Table table({"strategy", "tl sojourn (s)", "attempts", "image shipped (MiB)"});
    for (Strategy strategy :
         {Strategy::WaitForHome, Strategy::DelayedKill, Strategy::Migrate}) {
      const auto agg = ExperimentRunner::run(
          [&](std::uint64_t seed, int) { return run_strategy(strategy, state, seed); }, 10);
      table.row({to_string(strategy), Table::num(agg.at("tl_sojourn").mean()),
                 Table::num(agg.at("attempts").mean(), 1),
                 Table::num(agg.at("image_mib").mean(), 0)});
    }
    table.print();
  }
  std::printf(
      "\nMigration preserves the work like waiting and uses the idle node\n"
      "like the delayed kill — paying instead with image I/O and network\n"
      "transfer, which grows with the task's memory footprint (the paper's\n"
      "caution about moving large state across the network).\n");
  return 0;
}
