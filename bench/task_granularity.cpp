// Why preemption needs a primitive at all: task granularity.
//
// Footnote 1: "a task is a unit of processing work … a typical Hadoop
// task can last tens of seconds or minutes". The wait primitive's latency
// is one task's *remaining* time, so chopping the same 512 MB of work
// into more, smaller tasks shrinks wait's disadvantage — at the price of
// per-task overheads. This bench sweeps the input-split size: with
// minute-long tasks the suspend primitive is worth tens of seconds; with
// tiny tasks, natural completion points make wait nearly as good.
#include <cstdio>

#include "bench_util.hpp"
#include "sched/dummy.hpp"

namespace osap {
namespace {

MetricMap run_split(Bytes split, PreemptPrimitive primitive, std::uint64_t seed) {
  ClusterConfig cfg = paper_cluster();
  cfg.seed = seed;
  Cluster cluster(cfg);
  Rng rng(seed);
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));

  // tl: 512 MB of total work in `512MiB / split` tasks.
  JobSpec tl;
  tl.name = "tl";
  tl.priority = 0;
  const int pieces = static_cast<int>((512 * MiB) / split);
  for (int i = 0; i < pieces; ++i) tl.tasks.push_back(jitter_task(light_map_task(split), rng));
  ds.submit_at(0.05, tl);

  // th arrives mid-way through tl's total work.
  TaskSpec th = jitter_task(light_map_task(), rng);
  const PreemptPrimitive prim = primitive;
  cluster.sim().at(40.0, [&cluster, &ds, th, prim, pieces] {
    cluster.submit(single_task_job("th", 10, th));
    if (prim == PreemptPrimitive::Wait) return;
    // Preempt whichever tl task is running.
    const JobTracker& jt = cluster.job_tracker();
    for (int i = 0; i < pieces; ++i) {
      const TaskId tid = ds.task_of("tl", i);
      if (jt.task(tid).state == TaskState::Running) {
        ds.preempt("tl", i, prim);
        if (prim == PreemptPrimitive::Suspend) {
          // Resume it once th is done.
          ds.on_complete("th", [&ds, i, prim] { ds.restore("tl", i, prim); });
        }
        break;
      }
    }
  });
  cluster.run();
  const JobTracker& jt = cluster.job_tracker();
  return MetricMap{
      {"th_sojourn", jt.job(ds.job_of("th")).sojourn()},
      {"makespan", std::max(jt.job(ds.job_of("tl")).completed_at,
                            jt.job(ds.job_of("th")).completed_at)},
  };
}

}  // namespace
}  // namespace osap

int main() {
  using namespace osap;
  bench::print_header("Task granularity: how split size changes what preemption buys",
                      "footnote 1 / §I motivation");
  Table table({"split size", "tl tasks", "wait th sojourn (s)", "susp th sojourn (s)",
               "susp advantage (s)"});
  for (const Bytes split : {32 * MiB, 64 * MiB, 128 * MiB, 256 * MiB, 512 * MiB}) {
    const auto wait = ExperimentRunner::run(
        [&](std::uint64_t seed, int) {
          return run_split(split, PreemptPrimitive::Wait, seed);
        },
        10);
    const auto susp = ExperimentRunner::run(
        [&](std::uint64_t seed, int) {
          return run_split(split, PreemptPrimitive::Suspend, seed);
        },
        10);
    const double w = wait.at("th_sojourn").mean();
    const double s = susp.at("th_sojourn").mean();
    table.row({format_bytes(split), std::to_string((512 * MiB) / split), Table::num(w),
               Table::num(s), Table::num(w - s)});
  }
  table.print();
  std::printf(
      "\nWith minute-long tasks, waiting costs th tens of seconds; with\n"
      "fine-grained tasks the next natural completion point is near and\n"
      "wait converges toward susp (which stays flat). Preemption is a\n"
      "primitive for exactly the coarse tasks Hadoop actually runs.\n");
  return 0;
}
