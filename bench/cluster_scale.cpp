// Simulator scalability: wall-clock cost of simulating bigger clusters
// and longer traces. Useful for sizing future "thorough experimental
// campaigns with realistic workloads" (§VI) on this substrate.
//
// The default run prints the small scaling table. The warehouse point —
// 1,000 nodes under a SWIM trace with speculation enabled and audits off
// (the recommended configuration for large batches) — runs with --scale
// or --json and is what CI gates against BENCH_scale.json via
// tools/bench_check.py (docs/PERF.md).
//
// Flags:
//   --scale              run the 1,000-node warehouse point
//   --json=FILE          write the compact gate JSON (events, wall time,
//                        events/sec, cluster counters with per-node
//                        counters aggregated, hot-path profile)
//   --observability=FILE write the full observability dump (all per-node
//                        counters) — published as a CI artifact
//   --nodes=N --jobs=N   override the warehouse point size
#include <chrono>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "bench_util.hpp"
#include "sched/hfsp.hpp"
#include "workload/swim.hpp"

namespace osap {
namespace {

struct ScaleResult {
  double wall_ms;
  double sim_seconds;
  std::uint64_t events;
  double mean_sojourn;
};

struct ScaleOpts {
  bool speculation = false;
  bool audits = true;
  std::string json_file;
  std::string observability_file;
};

/// Aggregate per-node counters ("node17.vmm.paged_out_bytes") into
/// cluster totals ("nodes.vmm.paged_out_bytes") so the committed gate
/// baseline stays small and node-count-independent in shape. Counter
/// iteration is std::map order, so the totals are deterministic.
std::map<std::string, std::uint64_t> gate_counters(const trace::CounterRegistry& reg) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, counter] : reg.counters()) {
    std::size_t digits = 0;
    if (name.rfind("node", 0) == 0) {
      while (4 + digits < name.size() && std::isdigit(name[4 + digits]) != 0) ++digits;
    }
    if (digits > 0 && 4 + digits < name.size() && name[4 + digits] == '.') {
      out["nodes" + name.substr(4 + digits)] += counter.value();
    } else {
      out[name] += counter.value();
    }
  }
  return out;
}

ScaleResult run_scale(int nodes, int jobs, const ScaleOpts& opts = {}) {
  const auto start = std::chrono::steady_clock::now();
  ClusterConfig cfg = paper_cluster();
  cfg.num_nodes = nodes;
  cfg.hadoop.map_slots = 2;
  cfg.hadoop.speculative_execution = opts.speculation;
  cfg.audit.enabled = opts.audits;
  Cluster cluster(cfg);
  HfspScheduler::Options options;
  options.primitive = PreemptPrimitive::Suspend;
  cluster.set_scheduler(std::make_unique<HfspScheduler>(options));

  SwimConfig swim;
  swim.jobs = jobs;
  swim.mean_interarrival = seconds(600.0 / jobs);
  swim.max_tasks = 12;
  swim.stateful_fraction = 0.2;
  Rng rng(11);
  auto ids = std::make_shared<std::vector<JobId>>();
  for (SwimJob& job : generate_swim_trace(swim, rng)) {
    cluster.sim().at(job.arrival, [&cluster, ids, spec = std::move(job.spec)]() mutable {
      ids->push_back(cluster.submit(std::move(spec)));
    });
  }
  cluster.run();
  const auto end = std::chrono::steady_clock::now();

  RunningStat sojourn;
  for (JobId id : *ids) sojourn.add(cluster.job_tracker().job(id).sojourn());
  const ScaleResult res{
      std::chrono::duration<double, std::milli>(end - start).count(),
      cluster.sim().now(),
      cluster.sim().events_processed(),
      sojourn.mean(),
  };

  if (!opts.observability_file.empty()) {
    std::ofstream os(opts.observability_file);
    cluster.sim().write_observability_json(os);
  }
  if (!opts.json_file.empty()) {
    std::ofstream os(opts.json_file);
    os << "{\n\"nodes\":" << nodes << ",\n\"jobs\":" << jobs << ",\n";
    os << "\"events_processed\":" << res.events << ",\n";
    os << "\"sim_seconds\":" << res.sim_seconds << ",\n";
    os << "\"wall_ms\":" << res.wall_ms << ",\n";
    os << "\"events_per_sec\":" << res.events / (res.wall_ms / 1000.0) << ",\n";
    os << "\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : gate_counters(cluster.sim().trace().counters())) {
      os << (first ? "\n" : ",\n") << "  \"" << name << "\":" << value;
      first = false;
    }
    os << "\n},\n";
    cluster.sim().trace().profiler().write_json(os);
    os << "\n}\n";
  }
  return res;
}

std::string flag_value(int argc, char** argv, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return "";
}

bool flag_set(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

}  // namespace
}  // namespace osap

int main(int argc, char** argv) {
  using namespace osap;
  bench::print_header("Simulator scalability (HFSP over SWIM traces)",
                      "substrate capability, not a paper figure");
  Table table({"nodes", "jobs", "sim time (s)", "events", "wall (ms)", "mean sojourn (s)"});
  for (const auto& [nodes, jobs] :
       {std::pair{1, 10}, {4, 25}, {8, 50}, {16, 100}, {32, 200}}) {
    const ScaleResult res = run_scale(nodes, jobs);
    table.row({std::to_string(nodes), std::to_string(jobs), Table::num(res.sim_seconds, 0),
               std::to_string(res.events), Table::num(res.wall_ms, 1),
               Table::num(res.mean_sojourn)});
  }
  table.print();

  ScaleOpts opts;
  opts.json_file = flag_value(argc, argv, "json");
  opts.observability_file = flag_value(argc, argv, "observability");
  if (flag_set(argc, argv, "scale") || !opts.json_file.empty() ||
      !opts.observability_file.empty()) {
    const std::string nodes_flag = flag_value(argc, argv, "nodes");
    const std::string jobs_flag = flag_value(argc, argv, "jobs");
    const int nodes = nodes_flag.empty() ? 1000 : std::stoi(nodes_flag);
    const int jobs = jobs_flag.empty() ? 2000 : std::stoi(jobs_flag);
    // The warehouse point: speculation exercises the straggler detector
    // at scale; periodic audits are off as recommended for large batches.
    opts.speculation = true;
    opts.audits = false;
    const ScaleResult res = run_scale(nodes, jobs, opts);
    std::printf("\nwarehouse point: %d nodes, %d jobs -> %llu events in %.0f ms "
                "(%.0f events/sec, mean sojourn %.1f s)\n",
                nodes, jobs, static_cast<unsigned long long>(res.events), res.wall_ms,
                res.events / (res.wall_ms / 1000.0), res.mean_sojourn);
    if (!opts.json_file.empty()) {
      std::printf("gate JSON written to %s\n", opts.json_file.c_str());
    }
    if (!opts.observability_file.empty()) {
      std::printf("observability JSON written to %s\n", opts.observability_file.c_str());
    }
  }

  std::printf("\nHours of cluster time simulate in milliseconds; seed-for-seed\n"
              "deterministic, so whole parameter studies are cheap.\n");
  return 0;
}
