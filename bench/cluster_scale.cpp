// Simulator scalability: wall-clock cost of simulating bigger clusters
// and longer traces. Useful for sizing future "thorough experimental
// campaigns with realistic workloads" (§VI) on this substrate.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "sched/hfsp.hpp"
#include "workload/swim.hpp"

namespace osap {
namespace {

struct ScaleResult {
  double wall_ms;
  double sim_seconds;
  std::uint64_t events;
  double mean_sojourn;
};

ScaleResult run_scale(int nodes, int jobs) {
  const auto start = std::chrono::steady_clock::now();
  ClusterConfig cfg = paper_cluster();
  cfg.num_nodes = nodes;
  cfg.hadoop.map_slots = 2;
  Cluster cluster(cfg);
  HfspScheduler::Options options;
  options.primitive = PreemptPrimitive::Suspend;
  cluster.set_scheduler(std::make_unique<HfspScheduler>(options));

  SwimConfig swim;
  swim.jobs = jobs;
  swim.mean_interarrival = seconds(600.0 / jobs);
  swim.max_tasks = 12;
  swim.stateful_fraction = 0.2;
  Rng rng(11);
  auto ids = std::make_shared<std::vector<JobId>>();
  for (SwimJob& job : generate_swim_trace(swim, rng)) {
    cluster.sim().at(job.arrival, [&cluster, ids, spec = std::move(job.spec)]() mutable {
      ids->push_back(cluster.submit(std::move(spec)));
    });
  }
  cluster.run();
  const auto end = std::chrono::steady_clock::now();

  RunningStat sojourn;
  for (JobId id : *ids) sojourn.add(cluster.job_tracker().job(id).sojourn());
  return ScaleResult{
      std::chrono::duration<double, std::milli>(end - start).count(),
      cluster.sim().now(),
      cluster.sim().events_processed(),
      sojourn.mean(),
  };
}

}  // namespace
}  // namespace osap

int main() {
  using namespace osap;
  bench::print_header("Simulator scalability (HFSP over SWIM traces)",
                      "substrate capability, not a paper figure");
  Table table({"nodes", "jobs", "sim time (s)", "events", "wall (ms)", "mean sojourn (s)"});
  for (const auto& [nodes, jobs] :
       {std::pair{1, 10}, {4, 25}, {8, 50}, {16, 100}, {32, 200}}) {
    const ScaleResult res = run_scale(nodes, jobs);
    table.row({std::to_string(nodes), std::to_string(jobs), Table::num(res.sim_seconds, 0),
               std::to_string(res.events), Table::num(res.wall_ms, 1),
               Table::num(res.mean_sojourn)});
  }
  table.print();
  std::printf("\nHours of cluster time simulate in milliseconds; seed-for-seed\n"
              "deterministic, so whole parameter studies are cheap.\n");
  return 0;
}
