// Ablation: how much of the suspend primitive's latency advantage comes
// from the heartbeat protocol?
//
// The suspension command and its acknowledgement each ride a heartbeat
// (§III-B). We sweep the heartbeat interval and toggle the out-of-band
// heartbeat on suspension, measuring th's sojourn time at r = 50%.
#include <cstdio>

#include "bench_util.hpp"

namespace osap {
namespace {

double sojourn_with(Duration heartbeat, bool oob_on_suspend) {
  const auto agg = ExperimentRunner::run(
      [&](std::uint64_t seed, int) {
        TwoJobParams params;
        params.primitive = PreemptPrimitive::Suspend;
        params.progress_at_launch = 0.5;
        params.seed = seed;
        params.cluster.hadoop.heartbeat_interval = heartbeat;
        params.cluster.hadoop.oob_on_suspend = oob_on_suspend;
        return MetricMap{{"sojourn", run_two_job(params).sojourn_th}};
      },
      bench::kRuns);
  return agg.at("sojourn").mean();
}

}  // namespace
}  // namespace osap

int main() {
  using namespace osap;
  bench::print_header("Heartbeat-protocol ablation for the suspend primitive",
                      "§III-B protocol (suspend latency decomposition)");
  Table table({"heartbeat interval (s)", "susp sojourn, OOB ack (s)",
               "susp sojourn, periodic ack (s)"});
  for (double hb : {1.0, 3.0, 5.0, 10.0}) {
    table.row({Table::num(hb, 0), Table::num(sojourn_with(hb, true)),
               Table::num(sojourn_with(hb, false))});
  }
  table.print();
  std::printf(
      "\nWith the ack deferred to the next periodic heartbeat, suspension\n"
      "latency grows with the heartbeat interval; the out-of-band ack\n"
      "makes the primitive's latency essentially protocol-independent.\n");
  return 0;
}
