// Shared helpers for the figure-reproduction benches: run the two-job
// scenario over N seeded repetitions and aggregate the paper's metrics.
#pragma once

#include <cstdio>
#include <map>
#include <string>

#include "metrics/experiment.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "workload/two_job.hpp"

namespace osap::bench {

/// Number of repetitions per data point — the paper averages 20 runs.
inline constexpr int kRuns = 20;

struct TwoJobStats {
  RunningStat sojourn_th;
  RunningStat sojourn_tl;
  RunningStat makespan;
  RunningStat tl_swapped_out_mib;
};

inline TwoJobStats run_point(PreemptPrimitive primitive, double r, Bytes tl_state,
                             Bytes th_state, int runs = kRuns) {
  TwoJobStats stats;
  const auto agg = ExperimentRunner::run(
      [&](std::uint64_t seed, int) {
        TwoJobParams params;
        params.primitive = primitive;
        params.progress_at_launch = r;
        params.tl_state = tl_state;
        params.th_state = th_state;
        params.seed = seed;
        const TwoJobResult res = run_two_job(params);
        return MetricMap{
            {"sojourn_th", res.sojourn_th},
            {"sojourn_tl", res.sojourn_tl},
            {"makespan", res.makespan},
            {"tl_swapped_out_mib", to_mib(res.tl_swapped_out)},
        };
      },
      runs);
  stats.sojourn_th = agg.at("sojourn_th");
  stats.sojourn_tl = agg.at("sojourn_tl");
  stats.makespan = agg.at("makespan");
  stats.tl_swapped_out_mib = agg.at("tl_swapped_out_mib");
  return stats;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n(reproduces %s)\n", title, paper_ref);
  std::printf("==============================================================\n");
}

}  // namespace osap::bench
