// §III-A / §IV-A: the swappiness configuration.
//
// "Since Hadoop workloads involve large sequential reads from disks, it
// is a best practice to configure the Linux kernel to give precedence to
// runtime memory, always evicting file-system cache first [14] …
// we prioritize runtime memory over disk cache and therefore limit
// swapping … by setting the Linux swappiness parameter to 0."
//
// We run the worst-case suspension experiment while sweeping swappiness:
// higher values let reclaim swap anonymous memory while droppable cache
// still exists, adding useless swap traffic to both tasks.
#include <cstdio>

#include "bench_util.hpp"

namespace osap {
namespace {

MetricMap run_swappiness(int swappiness, std::uint64_t seed) {
  TwoJobParams params;
  params.primitive = PreemptPrimitive::Suspend;
  params.progress_at_launch = 0.5;
  params.tl_state = 2 * GiB;
  params.th_state = 2 * GiB;
  params.seed = seed;
  params.cluster.os.swappiness = swappiness;
  const TwoJobResult res = run_two_job(params);
  return MetricMap{
      {"sojourn_th", res.sojourn_th},
      {"makespan", res.makespan},
      {"node_swap_out_mib", to_mib(res.node_swap_out)},
  };
}

}  // namespace
}  // namespace osap

int main() {
  using namespace osap;
  bench::print_header("vm.swappiness ablation (worst-case suspension)",
                      "§III-A / §IV-A best-practice configuration");
  Table table({"swappiness", "th sojourn (s)", "makespan (s)", "node swap-out (MiB)"});
  for (int swappiness : {0, 20, 60, 100}) {
    const auto agg = ExperimentRunner::run(
        [&](std::uint64_t seed, int) { return run_swappiness(swappiness, seed); },
        bench::kRuns);
    table.row({std::to_string(swappiness), Table::num(agg.at("sojourn_th").mean()),
               Table::num(agg.at("makespan").mean()),
               Table::num(agg.at("node_swap_out_mib").mean(), 0)});
  }
  table.print();
  std::printf(
      "\nWith swappiness > 0 reclaim swaps anonymous memory while cheap\n"
      "file-system cache is still droppable, inflating swap traffic —\n"
      "why the paper (and Hadoop operations lore) pins it to 0.\n");
  return 0;
}
