// §II use case: deadline scheduling.
//
// "In deadline scheduling [5], preemption can be used to make sure that
// jobs that are close to the deadline are run as soon as possible."
//
// A background job occupies the slot while urgent jobs with tight
// deadlines arrive. The EDF scheduler preempts with each primitive in
// turn; we report the deadline miss rate, the urgent jobs' lateness, and
// what the preemption costs the background job.
#include <cstdio>

#include "bench_util.hpp"
#include "sched/deadline.hpp"

namespace osap {
namespace {

MetricMap run_primitive(PreemptPrimitive primitive, std::uint64_t seed) {
  ClusterConfig cfg = paper_cluster();
  cfg.hadoop.map_slots = 1;
  cfg.seed = seed;
  Cluster cluster(cfg);
  Rng rng(seed);
  DeadlineScheduler::Options options;
  options.primitive = primitive;
  options.laxity_margin = seconds(20);
  cluster.set_scheduler(std::make_unique<DeadlineScheduler>(options));

  // Background: two long tasks, no deadline.
  JobSpec bg;
  bg.name = "background";
  for (int i = 0; i < 2; ++i) bg.tasks.push_back(jitter_task(light_map_task(), rng));
  JobId bg_id{};
  cluster.sim().at(0.05, [&cluster, &bg_id, bg] { bg_id = cluster.submit(bg); });

  // Three urgent arrivals: each an ~40 s task with ~65 s of headroom.
  auto urgent_ids = std::make_shared<std::vector<JobId>>();
  auto deadlines = std::make_shared<std::vector<SimTime>>();
  for (int i = 0; i < 3; ++i) {
    const SimTime arrival = 25.0 + 110.0 * i;
    const SimTime deadline = arrival + 65.0;
    deadlines->push_back(deadline);
    JobSpec spec = single_task_job("urgent" + std::to_string(i), 0,
                                   jitter_task(light_map_task(256 * MiB), rng));
    spec.deadline = deadline;
    cluster.sim().at(arrival, [&cluster, urgent_ids, spec] {
      urgent_ids->push_back(cluster.submit(spec));
    });
  }
  cluster.run();

  const JobTracker& jt = cluster.job_tracker();
  int misses = 0;
  double lateness = 0;
  for (std::size_t i = 0; i < urgent_ids->size(); ++i) {
    const Job& job = jt.job((*urgent_ids)[i]);
    const double over = job.completed_at - (*deadlines)[i];
    if (over > 0) {
      ++misses;
      lateness += over;
    }
  }
  int bg_attempts = 0;
  for (TaskId tid : jt.job(bg_id).tasks) bg_attempts += jt.task(tid).attempts_started;
  return MetricMap{
      {"miss_rate", static_cast<double>(misses) / 3.0},
      {"lateness", lateness},
      {"bg_sojourn", jt.job(bg_id).sojourn()},
      {"bg_attempts", static_cast<double>(bg_attempts)},
  };
}

}  // namespace
}  // namespace osap

int main() {
  using namespace osap;
  bench::print_header("Deadline (EDF) scheduling with each primitive",
                      "§II deadline-scheduling use case");
  Table table({"primitive", "deadline miss rate", "total lateness (s)",
               "background sojourn (s)", "background attempts"});
  for (PreemptPrimitive primitive :
       {PreemptPrimitive::Wait, PreemptPrimitive::Kill, PreemptPrimitive::Suspend,
        PreemptPrimitive::NatjamCheckpoint}) {
    const auto agg = ExperimentRunner::run(
        [&](std::uint64_t seed, int) { return run_primitive(primitive, seed); },
        bench::kRuns);
    table.row({to_string(primitive),
               Table::num(100.0 * agg.at("miss_rate").mean(), 0) + "%",
               Table::num(agg.at("lateness").mean()),
               Table::num(agg.at("bg_sojourn").mean()),
               Table::num(agg.at("bg_attempts").mean(), 1)});
  }
  table.print();
  std::printf(
      "\nWaiting misses deadlines; killing meets them by burning the\n"
      "background job's work (extra attempts); suspension meets them\n"
      "while the background job keeps everything it has done.\n");
  return 0;
}
