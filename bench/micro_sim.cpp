// Micro-benchmarks of the simulator substrate (google-benchmark): event
// queue throughput, fluid-resource churn, VMM reclaim, and a full
// two-job experiment per iteration.
#include <benchmark/benchmark.h>

#include "os/kernel.hpp"
#include "sim/event_queue.hpp"
#include "sim/fluid_resource.hpp"
#include "workload/two_job.hpp"

namespace osap {
namespace {

void BM_EventQueuePushPop(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    for (int i = 0; i < 1000; ++i) q.push(static_cast<double>(i % 37), [] {});
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().id);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueuePushPop);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    std::vector<EventId> ids;
    ids.reserve(1000);
    for (int i = 0; i < 1000; ++i) ids.push_back(q.push(static_cast<double>(i), [] {}));
    for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().id);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueCancelHeavy);

void BM_FluidResourceChurn(benchmark::State& state) {
  for (auto _ : state) {
    Simulation sim;
    FluidResource disk(sim, 100.0, "disk");
    int done = 0;
    for (int i = 1; i <= 100; ++i) {
      disk.add(static_cast<double>(i), [&done] { ++done; });
    }
    sim.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_FluidResourceChurn);

void BM_VmmPressureCycle(benchmark::State& state) {
  for (auto _ : state) {
    Simulation sim;
    OsConfig cfg;
    cfg.ram = 1024 * MiB;
    cfg.os_reserved = 0;
    Disk disk(sim, cfg.disk_bandwidth, 0, "d");
    Vmm vmm(sim, disk, cfg);
    const Pid a{1}, b{2};
    vmm.register_process(a);
    vmm.register_process(b);
    const RegionId ra = vmm.create_region(a, "state");
    vmm.commit(ra, 700 * MiB, [] {});
    sim.run();
    vmm.set_stopped(a, true);
    const RegionId rb = vmm.create_region(b, "heap");
    vmm.commit(rb, 600 * MiB, [] {});
    sim.run();
    vmm.release_process(b);
    vmm.set_stopped(a, false);
    vmm.page_in(ra, false, [] {});
    sim.run();
    benchmark::DoNotOptimize(vmm.swap_used());
  }
}
BENCHMARK(BM_VmmPressureCycle);

void BM_TwoJobLightExperiment(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    TwoJobParams params;
    params.primitive = PreemptPrimitive::Suspend;
    params.progress_at_launch = 0.5;
    params.seed = seed++;
    benchmark::DoNotOptimize(run_two_job(params).makespan);
  }
}
BENCHMARK(BM_TwoJobLightExperiment);

void BM_TwoJobWorstCaseExperiment(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    TwoJobParams params;
    params.primitive = PreemptPrimitive::Suspend;
    params.progress_at_launch = 0.5;
    params.tl_state = gib(2.5);
    params.th_state = gib(2.5);
    params.seed = seed++;
    benchmark::DoNotOptimize(run_two_job(params).makespan);
  }
}
BENCHMARK(BM_TwoJobWorstCaseExperiment);

}  // namespace
}  // namespace osap

BENCHMARK_MAIN();
