// §V-A: task eviction policies.
//
// The primitive decides *how* to preempt; the scheduler decides *whom*.
// Scenario: two low-priority tasks occupy both slots — an early,
// memory-hungry one (more progress, 2 GiB state) and a later light one —
// when a high-priority, memory-hungry job arrives. Each policy picks a
// different victim; we report the high job's sojourn, the workload
// makespan and the node's total swap traffic.
#include <cstdio>

#include "bench_util.hpp"
#include "preempt/eviction.hpp"
#include "sched/dummy.hpp"

namespace osap {
namespace {

MetricMap run_policy(EvictionPolicy policy, std::uint64_t seed) {
  ClusterConfig cfg = paper_cluster();
  cfg.hadoop.map_slots = 2;
  cfg.seed = seed;
  Cluster cluster(cfg);
  Rng rng(seed);
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));

  TaskSpec hungry = jitter_task(hungry_map_task(2 * GiB), rng);
  TaskSpec light = jitter_task(light_map_task(), rng);
  TaskSpec high = jitter_task(hungry_map_task(gib(1.5)), rng);
  hungry.preferred_node = light.preferred_node = high.preferred_node = cluster.node(0);

  ds.submit_at(0.05, single_task_job("low_hungry", 0, hungry));
  ds.submit_at(15.0, single_task_job("low_light", 0, light));

  auto victim = std::make_shared<TaskId>();
  ds.at_progress("low_hungry", 0, 0.6, [&cluster, &ds, high, policy, victim] {
    cluster.submit(single_task_job("high", 10, high));
    JobTracker& jt = cluster.job_tracker();
    auto candidates = collect_candidates(jt, ds.job_of("low_hungry"));
    auto more = collect_candidates(jt, ds.job_of("low_light"));
    candidates.insert(candidates.end(), more.begin(), more.end());
    *victim = pick_victim(policy, candidates);
    if (victim->valid()) jt.suspend_task(*victim);
  });
  ds.on_complete("high", [&cluster, victim] {
    if (victim->valid()) cluster.job_tracker().resume_task(*victim);
  });
  cluster.run();

  const JobTracker& jt = cluster.job_tracker();
  double makespan = 0;
  for (JobId id : jt.jobs_in_order()) makespan = std::max(makespan, jt.job(id).completed_at);
  Kernel& kernel = cluster.kernel(cluster.node(0));
  return MetricMap{
      {"high_sojourn", jt.job(ds.job_of("high")).sojourn()},
      {"makespan", makespan},
      {"swap_out_mib", to_mib(kernel.disk().transferred(IoClass::SwapOut))},
      {"swap_in_mib", to_mib(kernel.disk().transferred(IoClass::SwapIn))},
  };
}

}  // namespace
}  // namespace osap

int main() {
  using namespace osap;
  bench::print_header("Eviction-policy study under the suspend primitive",
                      "§V-A discussion (policy table)");
  Table table({"eviction policy", "high sojourn (s)", "makespan (s)", "swap-out (MiB)",
               "swap-in (MiB)"});
  for (EvictionPolicy policy :
       {EvictionPolicy::MostProgress, EvictionPolicy::LeastProgress,
        EvictionPolicy::SmallestMemory, EvictionPolicy::LastLaunched}) {
    const auto agg = ExperimentRunner::run(
        [&](std::uint64_t seed, int) { return run_policy(policy, seed); }, bench::kRuns);
    table.row({to_string(policy), Table::num(agg.at("high_sojourn").mean()),
               Table::num(agg.at("makespan").mean()),
               Table::num(agg.at("swap_out_mib").mean(), 0),
               Table::num(agg.at("swap_in_mib").mean(), 0)});
  }
  table.print();
  std::printf(
      "\nIn this scenario the hungry task is both the most-progressed and\n"
      "the largest: suspending it parks its idle state where the VMM can\n"
      "page it out once and cheaply, while suspending the light task\n"
      "leaves the hungry one running — its cold state is evicted anyway\n"
      "and faults back in at finalization, costing more total paging.\n"
      "Victim footprint interacts with *which* memory stays live, the\n"
      "trade-off §V-A asks schedulers to weigh.\n");
  return 0;
}
