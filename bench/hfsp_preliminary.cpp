// §VI: "We have preliminary results showing that our preemption primitive
// performs well in the context of HFSP, our size-based scheduler."
//
// A SWIM-like trace (heavy-tailed job sizes, exponential arrivals) runs
// on a 4-node cluster under HFSP configured with each preemption
// primitive. Size-based scheduling preempts big jobs whenever small ones
// arrive, so the primitive's cost structure shows directly in the small
// jobs' sojourn times and in the overall makespan.
#include <cstdio>

#include "bench_util.hpp"
#include "sched/hfsp.hpp"
#include "workload/swim.hpp"

namespace osap {
namespace {

MetricMap run_trace(PreemptPrimitive primitive, std::uint64_t seed) {
  ClusterConfig cfg = paper_cluster();
  cfg.num_nodes = 4;
  cfg.hadoop.map_slots = 1;
  cfg.seed = seed;
  Cluster cluster(cfg);

  HfspScheduler::Options options;
  options.primitive = primitive;
  auto sched = std::make_unique<HfspScheduler>(options);
  HfspScheduler* hfsp = sched.get();
  cluster.set_scheduler(std::move(sched));

  SwimConfig swim;
  swim.jobs = 12;
  swim.mean_interarrival = seconds(25);
  swim.max_tasks = 8;
  swim.stateful_fraction = 0.25;
  swim.state_memory = gib(1.5);
  Rng rng(seed);
  std::vector<SwimJob> trace = generate_swim_trace(swim, rng);
  std::vector<JobId> small_jobs, all_jobs;
  auto ids = std::make_shared<std::vector<JobId>>();
  auto small = std::make_shared<std::vector<bool>>();
  for (SwimJob& job : trace) {
    small->push_back(job.spec.tasks.size() <= 2);
    cluster.sim().at(job.arrival, [&cluster, ids, spec = std::move(job.spec)]() mutable {
      ids->push_back(cluster.submit(std::move(spec)));
    });
  }
  cluster.run();

  const JobTracker& jt = cluster.job_tracker();
  RunningStat small_sojourn, all_sojourn;
  double makespan = 0;
  for (std::size_t i = 0; i < ids->size(); ++i) {
    const Job& job = jt.job((*ids)[i]);
    all_sojourn.add(job.sojourn());
    if ((*small)[i]) small_sojourn.add(job.sojourn());
    makespan = std::max(makespan, job.completed_at);
  }
  return MetricMap{
      {"small_sojourn", small_sojourn.mean()},
      {"mean_sojourn", all_sojourn.mean()},
      {"makespan", makespan},
      {"preemptions", static_cast<double>(hfsp->preemptions_issued())},
  };
}

}  // namespace
}  // namespace osap

int main() {
  using namespace osap;
  bench::print_header("HFSP size-based scheduling with each primitive",
                      "§VI preliminary HFSP results");
  Table table({"primitive", "small-job sojourn (s)", "mean sojourn (s)", "makespan (s)",
               "preemptions"});
  for (PreemptPrimitive primitive :
       {PreemptPrimitive::Wait, PreemptPrimitive::Kill, PreemptPrimitive::Suspend,
        PreemptPrimitive::NatjamCheckpoint}) {
    const auto agg = ExperimentRunner::run(
        [&](std::uint64_t seed, int) { return run_trace(primitive, seed); }, 10);
    table.row({to_string(primitive), Table::num(agg.at("small_sojourn").mean()),
               Table::num(agg.at("mean_sojourn").mean()),
               Table::num(agg.at("makespan").mean()),
               Table::num(agg.at("preemptions").mean(), 1)});
  }
  table.print();
  std::printf(
      "\nSuspension gives size-based scheduling its best small-job and mean\n"
      "sojourn times; the makespan premium is the paging of stateful\n"
      "victims, far below what kill's recomputation would cost at equal\n"
      "preemption aggressiveness.\n");
  return 0;
}
