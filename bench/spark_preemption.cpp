// §VI outlook: the primitive applied to a Spark-like framework.
//
// An iterative application (read + parse 512 MB, cache 1.5 GiB, three
// cached iterations) is preempted mid-run by a memory-hungry batch job.
// Spark raises the stakes relative to Hadoop: killing an executor loses
// not just a task's progress but the *RDD cache*, forcing whole-stage
// recomputation. Suspension parks the cache and pays only the paging.
#include <cstdio>

#include "bench_util.hpp"
#include "sched/dummy.hpp"
#include "spark/driver.hpp"

namespace osap {
namespace {

MetricMap run_primitive(PreemptPrimitive primitive, std::uint64_t seed) {
  ClusterConfig cfg = paper_cluster();
  cfg.hadoop.map_slots = 1;
  cfg.seed = seed;
  Cluster cluster(cfg);
  Rng rng(seed);
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));

  SparkDriver driver(cluster, iterative_app("iterative", 512 * MiB, gib(1.5), 3),
                     cluster.node(0));
  cluster.sim().at(0.05, [&] { driver.start(); });

  SimTime intruder_done = -1;
  const SimTime intruder_at = 90.0 + rng.uniform(0, 5);
  cluster.sim().at(intruder_at, [&cluster, &driver, &ds, primitive] {
    driver.preempt(primitive);
    cluster.submit(single_task_job("intruder", 10, hungry_map_task(2 * GiB)));
  });
  ds.on_complete("intruder", [&cluster, &driver, &intruder_done, primitive] {
    intruder_done = cluster.sim().now();
    driver.restore(primitive);
  });
  cluster.run();

  return MetricMap{
      {"app_runtime", driver.runtime()},
      {"intruder_sojourn", intruder_done - intruder_at},
      {"recomputations", static_cast<double>(driver.recomputations())},
      {"cache_swapped_mib", to_mib(driver.cache_swapped_out())},
  };
}

}  // namespace
}  // namespace osap

int main() {
  using namespace osap;
  bench::print_header("Spark-style executor preemption (iterative app + intruder)",
                      "§VI outlook: other DISC frameworks");
  Table table({"primitive", "app runtime (s)", "intruder sojourn (s)",
               "stage recomputations", "cache paged out (MiB)"});
  for (PreemptPrimitive primitive :
       {PreemptPrimitive::Wait, PreemptPrimitive::Kill, PreemptPrimitive::Suspend}) {
    const auto agg = ExperimentRunner::run(
        [&](std::uint64_t seed, int) { return run_primitive(primitive, seed); }, 10);
    table.row({to_string(primitive), Table::num(agg.at("app_runtime").mean()),
               Table::num(agg.at("intruder_sojourn").mean()),
               Table::num(agg.at("recomputations").mean(), 1),
               Table::num(agg.at("cache_swapped_mib").mean(), 0)});
  }
  table.print();
  std::printf(
      "\nKilling the executor erases the RDD cache (stage recomputations);\n"
      "suspension keeps it, trading a bounded paging cost — the gap is\n"
      "wider than in Hadoop because Spark holds more state per process.\n");
  return 0;
}
