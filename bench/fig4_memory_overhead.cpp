// Figure 4: overheads when varying memory usage.
//
// tl allocates 2.5 GiB; th's allocation sweeps 0 .. 2.5 GiB. For each
// point we measure the bytes paged out of tl's process and the
// degradation of th's sojourn time (vs the kill primitive) and of the
// makespan (vs the wait primitive). Expected shape: no swap until th's
// footprint crosses the free-RAM threshold, then growth that is faster
// than linear (the approximate page-replacement effect); overhead seconds
// roughly linear in the bytes swapped; sojourn degradation crossing zero
// around th ~1.5 GiB and makespan degradation appearing around ~1.3 GiB.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace osap;
  using bench::run_point;

  bench::print_header("Overheads when varying th's memory footprint (tl = 2.5 GiB)",
                      "Figure 4");

  Table table({"th memory", "paged bytes (MiB)", "th sojourn overhead vs kill (s)",
               "makespan overhead vs wait (s)"});
  const double r = 0.5;
  const Bytes tl_state = gib(2.5);
  for (double m : {0.0, 0.3125, 0.625, 0.9375, 1.25, 1.5625, 1.875, 2.1875, 2.5}) {
    const Bytes th_state = gib(m);
    const auto susp = run_point(PreemptPrimitive::Suspend, r, tl_state, th_state);
    const auto kill = run_point(PreemptPrimitive::Kill, r, tl_state, th_state);
    const auto wait = run_point(PreemptPrimitive::Wait, r, tl_state, th_state);
    char label[32];
    std::snprintf(label, sizeof label, "%4.0f MiB", m * 1024);
    table.row({label, Table::num(susp.tl_swapped_out_mib.mean(), 0),
               Table::num(susp.sojourn_th.mean() - kill.sojourn_th.mean(), 1),
               Table::num(susp.makespan.mean() - wait.makespan.mean(), 1)});
  }
  table.print();
  std::printf(
      "\nNegative sojourn overhead = susp still faster than kill (no paging\n"
      "yet, and kill pays the cleanup attempt). The paper reports up to\n"
      "+20%% sojourn and +12%% makespan degradation at the 2.5 GiB point.\n");
  return 0;
}
