// Figure 3: worst-case experiments — memory-hungry tasks.
//
// Both tl and th allocate 2 GiB of state (dirtied at startup, read back at
// finalization) on a 4 GiB node, so suspending tl forces the OS to page it
// out and resume pages it back in. Expected shape: susp still beats wait
// on sojourn and kill on makespan, but paging makes kill's sojourn
// slightly lower than susp's and wait's makespan slightly lower than
// susp's (§IV-C, "the overheads related to paging are visible").
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace osap;
  using bench::run_point;

  bench::print_header("Worst case: memory-hungry tasks (2 GiB state each)",
                      "Figures 3a and 3b");

  const PreemptPrimitive primitives[] = {PreemptPrimitive::Wait, PreemptPrimitive::Kill,
                                         PreemptPrimitive::Suspend};
  const Bytes state = 2 * GiB;

  Table sojourn({"tl progress at launch of th (%)", "wait (s)", "kill (s)", "susp (s)",
                 "susp swap-out (MiB)"});
  Table makespan({"tl progress at launch of th (%)", "wait (s)", "kill (s)", "susp (s)"});
  for (int rp = 10; rp <= 90; rp += 10) {
    const double r = rp / 100.0;
    std::vector<std::string> srow{std::to_string(rp)};
    std::vector<std::string> mrow{std::to_string(rp)};
    double swap = 0;
    for (PreemptPrimitive p : primitives) {
      const auto stats = run_point(p, r, state, state);
      srow.push_back(Table::num(stats.sojourn_th.mean()));
      mrow.push_back(Table::num(stats.makespan.mean()));
      if (p == PreemptPrimitive::Suspend) swap = stats.tl_swapped_out_mib.mean();
    }
    srow.push_back(Table::num(swap, 0));
    sojourn.row(srow);
    makespan.row(mrow);
  }
  std::printf("\nFig. 3a — sojourn time of th (memory-hungry)\n");
  sojourn.print();
  std::printf("\nFig. 3b — makespan (memory-hungry)\n");
  makespan.print();
  return 0;
}
