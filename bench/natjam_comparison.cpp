// §IV-C / §II: comparison against Natjam-style application-level
// suspension.
//
// "The authors of Natjam measured an overhead of around 7% in terms of
// makespan, in similar experimental settings as ours. Our findings
// suggest that the overhead in our case is negligible."
//
// Natjam's checkpoint always serializes task state to disk at suspension
// and deserializes it at resume; the OS-assisted primitive pays paging
// costs only when memory is actually scarce. We sweep the state size with
// plentiful RAM: the checkpoint overhead grows with state, suspension's
// stays flat.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace osap;
  using bench::run_point;

  bench::print_header("OS-assisted suspension vs Natjam-style checkpointing",
                      "§IV-C makespan-overhead comparison");

  Table table({"task state", "wait makespan (s)", "susp overhead", "natjam overhead"});
  for (double g : {0.0, 0.25, 0.5, 1.0}) {
    const Bytes state = gib(g);
    const auto wait = run_point(PreemptPrimitive::Wait, 0.5, state, 0);
    const auto susp = run_point(PreemptPrimitive::Suspend, 0.5, state, 0);
    const auto natjam = run_point(PreemptPrimitive::NatjamCheckpoint, 0.5, state, 0);
    char label[32];
    std::snprintf(label, sizeof label, "%4.0f MiB", g * 1024);
    auto pct = [&](double v) {
      return Table::num(100.0 * (v - wait.makespan.mean()) / wait.makespan.mean(), 1) + "%";
    };
    table.row({label, Table::num(wait.makespan.mean()), pct(susp.makespan.mean()),
               pct(natjam.makespan.mean())});
  }
  table.print();
  std::printf(
      "\nWith abundant memory the OS-assisted primitive's overhead is\n"
      "negligible at any state size, while checkpointing pays the full\n"
      "serialize+deserialize cost every time (the paper cites Natjam's ~7%%).\n");
  return 0;
}
