// Figure 1: task execution schedules under the three preemption
// strategies. tl starts first; at 50% of its input th arrives and the
// dummy scheduler applies the primitive; timelines are rendered as ASCII
// Gantt charts ('=' running, '.' suspended, '|' done).
#include <cstdio>

#include "bench_util.hpp"
#include "metrics/timeline.hpp"
#include "sched/dummy.hpp"
#include "workload/profiles.hpp"

namespace osap {
namespace {

void render(PreemptPrimitive primitive) {
  Cluster cluster(paper_cluster());
  TimelineRecorder recorder(cluster.job_tracker());
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));

  TaskSpec tl = light_map_task();
  TaskSpec th = light_map_task();
  tl.preferred_node = th.preferred_node = cluster.node(0);
  ds.submit_at(0.05, single_task_job("tl", 0, tl));
  ds.at_progress("tl", 0, 0.5, [&cluster, &ds, th, primitive] {
    cluster.submit(single_task_job("th", 10, th));
    ds.preempt("tl", 0, primitive);
  });
  ds.on_complete("th", [&ds, primitive] { ds.restore("tl", 0, primitive); });
  cluster.run();

  const JobTracker& jt = cluster.job_tracker();
  std::printf("\n--- %s ---\n%s", to_string(primitive), recorder.render_gantt(3.0).c_str());
  std::printf("sojourn(th) = %.1f s, makespan = %.1f s\n",
              jt.job(ds.job_of("th")).sojourn(), recorder.makespan());
}

}  // namespace
}  // namespace osap

int main() {
  using namespace osap;
  bench::print_header("Task execution schedules (wait / kill / susp)", "Figure 1");
  for (PreemptPrimitive p :
       {PreemptPrimitive::Wait, PreemptPrimitive::Kill, PreemptPrimitive::Suspend}) {
    render(p);
  }
  return 0;
}
