// Deadlines via preemption (§II): an EDF scheduler suspends a background
// job the moment an urgent job's slack gets thin, and the deadline is met
// without losing the background job's work.
//
//   $ ./deadline_meeting          # suspend primitive
//   $ ./deadline_meeting wait     # watch the deadline get missed
#include <cstdio>

#include "metrics/timeline.hpp"
#include "sched/deadline.hpp"
#include "workload/profiles.hpp"

using namespace osap;

int main(int argc, char** argv) {
  const PreemptPrimitive primitive =
      argc > 1 ? parse_primitive(argv[1]) : PreemptPrimitive::Suspend;

  ClusterConfig cfg = paper_cluster();
  Cluster cluster(cfg);
  TimelineRecorder timeline(cluster.job_tracker());
  DeadlineScheduler::Options options;
  options.primitive = primitive;
  options.laxity_margin = seconds(20);
  cluster.set_scheduler(std::make_unique<DeadlineScheduler>(options));

  JobId background{}, urgent{};
  cluster.sim().at(0.1, [&] {
    background = cluster.submit(single_task_job("background", 0, light_map_task()));
  });
  const SimTime deadline = 115.0;
  cluster.sim().at(20.0, [&] {
    JobSpec spec = single_task_job("urgent", 0, light_map_task());
    spec.deadline = deadline;
    urgent = cluster.submit(spec);
  });
  cluster.run();

  const JobTracker& jt = cluster.job_tracker();
  const Job& u = jt.job(urgent);
  const Job& bg = jt.job(background);
  std::printf("primitive: %s\n\n%s\n", to_string(primitive), timeline.render_gantt(3.0).c_str());
  std::printf("urgent job:    done at %.1f s, deadline %.0f s -> %s\n", u.completed_at, deadline,
              u.completed_at <= deadline ? "MET" : "MISSED");
  std::printf("background:    sojourn %.1f s, attempts %d\n", bg.sojourn(),
              jt.task(bg.tasks[0]).attempts_started);
  return 0;
}
