// Spark-style iteration under preemption (§VI outlook): an iterative
// application caches its working set in a long-lived executor; a batch
// job barges in mid-iteration. Compare what each primitive does to the
// cache.
//
//   $ ./spark_iteration          # susp: cache paged out and back
//   $ ./spark_iteration kill     # cache destroyed, stages recomputed
#include <cstdio>

#include "sched/dummy.hpp"
#include "spark/driver.hpp"
#include "workload/profiles.hpp"

using namespace osap;

int main(int argc, char** argv) {
  const PreemptPrimitive primitive =
      argc > 1 ? parse_primitive(argv[1]) : PreemptPrimitive::Suspend;

  ClusterConfig cfg = paper_cluster();
  cfg.hadoop.map_slots = 1;
  Cluster cluster(cfg);
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));

  SparkDriver driver(cluster, iterative_app("iterative", 512 * MiB, gib(1.5), 3),
                     cluster.node(0));
  cluster.sim().at(0.05, [&] { driver.start(); });
  cluster.sim().at(95.0, [&] {
    std::printf("[t=%5.1f] intruder arrives; preempting the app via '%s'\n",
                cluster.sim().now(), to_string(primitive));
    driver.preempt(primitive);
    cluster.submit(single_task_job("intruder", 10, hungry_map_task(2 * GiB)));
  });
  ds.on_complete("intruder", [&] {
    std::printf("[t=%5.1f] intruder done; restoring the app\n", cluster.sim().now());
    driver.restore(primitive);
  });
  cluster.run();

  std::printf("\napp runtime:          %.1f s\n", driver.runtime());
  std::printf("stage recomputations: %d\n", driver.recomputations());
  std::printf("cache paged out:      %s\n", format_bytes(driver.cache_swapped_out()).c_str());
  return 0;
}
