// Priority preemption, interactively: run the paper's two-job scenario
// with a primitive and preemption point of your choice and compare all
// four primitives side by side.
//
//   $ ./priority_preemption            # defaults: r = 0.5
//   $ ./priority_preemption 0.8        # preempt at 80% of tl
//   $ ./priority_preemption 0.8 2048   # …with 2 GiB of task state each
#include <cstdio>
#include <cstdlib>

#include "metrics/table.hpp"
#include "workload/two_job.hpp"

using namespace osap;

int main(int argc, char** argv) {
  const double r = argc > 1 ? std::atof(argv[1]) : 0.5;
  const Bytes state = argc > 2 ? static_cast<Bytes>(std::atof(argv[2])) * MiB : 0;
  if (r <= 0 || r >= 1) {
    std::fprintf(stderr, "usage: %s [progress in (0,1)] [state MiB]\n", argv[0]);
    return 1;
  }

  std::printf("two single-task jobs; th arrives at %.0f%% of tl", r * 100);
  if (state > 0) std::printf("; each task holds %s of state", format_bytes(state).c_str());
  std::printf("\n\n");

  Table table({"primitive", "th sojourn (s)", "tl sojourn (s)", "makespan (s)",
               "tl paged out", "verdict"});
  for (PreemptPrimitive p : {PreemptPrimitive::Wait, PreemptPrimitive::Kill,
                             PreemptPrimitive::Suspend, PreemptPrimitive::NatjamCheckpoint}) {
    TwoJobParams params;
    params.primitive = p;
    params.progress_at_launch = r;
    params.tl_state = params.th_state = state;
    params.seed = 1;
    const TwoJobResult res = run_two_job(params);
    const char* verdict = "";
    switch (p) {
      case PreemptPrimitive::Wait: verdict = "no waste, worst latency"; break;
      case PreemptPrimitive::Kill: verdict = "low latency, work lost"; break;
      case PreemptPrimitive::Suspend: verdict = "low latency, work kept"; break;
      case PreemptPrimitive::NatjamCheckpoint: verdict = "always pays (de)serialization"; break;
    }
    table.row({to_string(p), Table::num(res.sojourn_th), Table::num(res.sojourn_tl),
               Table::num(res.makespan), format_bytes(res.tl_swapped_out), verdict});
  }
  table.print();
  return 0;
}
