// Fairness via preemption: the FAIR scheduler detects a starved job and
// takes a slot back with the suspend primitive instead of killing (§II:
// "job schedulers, like the Hadoop FAIR and Capacity schedulers, can use
// preemption to warrant fairness").
//
//   $ ./fair_sharing
#include <cstdio>

#include "metrics/timeline.hpp"
#include "sched/fair.hpp"
#include "workload/profiles.hpp"

using namespace osap;

int main() {
  Cluster cluster(paper_cluster());
  TimelineRecorder timeline(cluster.job_tracker());
  FairScheduler::Options options;
  options.cluster_map_slots = 1;
  options.preemption_timeout = seconds(10);
  options.primitive = PreemptPrimitive::Suspend;
  auto sched = std::make_unique<FairScheduler>(options);
  FairScheduler* fair = sched.get();
  cluster.set_scheduler(std::move(sched));

  // A hog takes the only slot; a latecomer starves until the scheduler
  // preempts on its behalf.
  JobId hog_id{}, late_id{};
  cluster.sim().at(0.1, [&] {
    hog_id = cluster.submit(single_task_job("hog", 0, light_map_task()));
  });
  cluster.sim().at(10.0, [&] {
    late_id = cluster.submit(single_task_job("latecomer", 0, light_map_task()));
  });
  cluster.run();

  const JobTracker& jt = cluster.job_tracker();
  std::printf("preemptions issued by FAIR: %d\n\n", fair->preemptions_issued());
  std::printf("%s\n", timeline.render_gantt(3.0).c_str());
  std::printf("hog:       sojourn %.1f s, attempts of its task: %d (work preserved)\n",
              jt.job(hog_id).sojourn(), jt.task(jt.job(hog_id).tasks[0]).attempts_started);
  std::printf("latecomer: sojourn %.1f s (did not wait for the hog to finish)\n",
              jt.job(late_id).sojourn());
  return 0;
}
