// The primitive under YARN (§III-B): container leases instead of slots.
// A low-priority container holds the node's lease budget; a high-priority
// application arrives, and the ResourceManager preempts with the chosen
// primitive. Suspension releases the lease instantly while the OS decides
// what (if anything) to page.
//
//   $ ./yarn_containers          # susp
//   $ ./yarn_containers kill     # YARN's stock behaviour
//   $ ./yarn_containers wait
#include <cstdio>

#include "workload/profiles.hpp"
#include "yarn/yarn_cluster.hpp"

using namespace osap;

int main(int argc, char** argv) {
  const PreemptPrimitive primitive =
      argc > 1 ? parse_primitive(argv[1]) : PreemptPrimitive::Suspend;

  YarnClusterConfig cfg;
  cfg.num_nodes = 1;
  cfg.os = paper_cluster().os;
  cfg.container_capacity = gib(2.5);
  cfg.primitive = primitive;
  YarnCluster cluster(cfg);

  YarnAppSpec low;
  low.name = "low";
  low.priority = 0;
  low.container_memory = gib(2.5);
  low.tasks.push_back(hungry_map_task(2 * GiB));
  const AppId low_id = cluster.submit(low);

  YarnAppSpec high;
  high.name = "high";
  high.priority = 10;
  high.container_memory = gib(2.5);
  high.tasks.push_back(hungry_map_task(2 * GiB));
  auto high_id = std::make_shared<AppId>();
  cluster.sim().at(40.0, [&cluster, high_id, high] { *high_id = cluster.submit(high); });
  cluster.run();

  const YarnApp& h = cluster.rm().app(*high_id);
  const YarnApp& l = cluster.rm().app(low_id);
  Kernel& kernel = cluster.kernel(cluster.node(0));
  std::printf("primitive: %s\n", to_string(primitive));
  std::printf("high app sojourn: %6.1f s\n", h.sojourn());
  std::printf("low app sojourn:  %6.1f s\n", l.sojourn());
  std::printf("preemptions: %d, containers killed: %d\n", cluster.rm().preemptions_issued(),
              cluster.rm().containers_killed());
  std::printf("swap traffic: %s out, %s in\n",
              format_bytes(kernel.disk().transferred(IoClass::SwapOut)).c_str(),
              format_bytes(kernel.disk().transferred(IoClass::SwapIn)).c_str());
  return 0;
}
