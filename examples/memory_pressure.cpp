// Watch the OS work: a memory-hungry task is suspended while another
// memory-hungry task runs, and the node's memory state is sampled every
// five seconds — free RAM, file-system cache, swap usage, and who owns
// what. This is the worst-case scenario of §IV made visible.
//
//   $ ./memory_pressure
#include <cstdio>

#include "sched/dummy.hpp"
#include "workload/profiles.hpp"

using namespace osap;

int main() {
  Cluster cluster(paper_cluster());
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));

  TaskSpec tl = hungry_map_task(2 * GiB);
  TaskSpec th = hungry_map_task(2 * GiB);
  tl.preferred_node = th.preferred_node = cluster.node(0);
  ds.submit_at(0.1, single_task_job("tl", 0, tl));
  ds.at_progress("tl", 0, 0.5, [&] {
    cluster.submit(single_task_job("th", 10, th));
    ds.preempt("tl", 0, PreemptPrimitive::Suspend);
  });
  ds.on_complete("th", [&] { ds.restore("tl", 0, PreemptPrimitive::Suspend); });

  Kernel& kernel = cluster.kernel(cluster.node(0));
  std::printf("%6s  %10s  %10s  %10s  %12s  %s\n", "t (s)", "free", "fs-cache", "swap used",
              "tl state", "note");
  SimTime last_note_time = -1;
  (void)last_note_time;
  auto sample = [&cluster, &ds, &kernel](auto self) -> void {
    const JobTracker& jt = cluster.job_tracker();
    if (jt.all_jobs_done() && !jt.jobs_in_order().empty()) return;
    const Task& tl_task = jt.task(ds.task_of("tl", 0));
    const Vmm& vmm = kernel.vmm();
    const char* note = "";
    switch (tl_task.state) {
      case TaskState::Running: note = "tl running"; break;
      case TaskState::MustSuspend: note = "suspend command in flight"; break;
      case TaskState::Suspended: note = "tl SUSPENDED (memory managed by the OS)"; break;
      case TaskState::MustResume: note = "resume command in flight"; break;
      case TaskState::Succeeded: note = "tl done"; break;
      default: note = ""; break;
    }
    std::printf("%6.0f  %10s  %10s  %10s  %12s  %s\n", cluster.sim().now(),
                format_bytes(vmm.free_ram()).c_str(), format_bytes(vmm.fs_cache()).c_str(),
                format_bytes(vmm.swap_used()).c_str(), to_string(tl_task.state), note);
    cluster.sim().after(5.0, [self] { self(self); });
  };
  cluster.sim().at(0.5, [sample] { sample(sample); });
  cluster.run();

  const Task& tl_task = cluster.job_tracker().task(ds.task_of("tl", 0));
  std::printf("\ntotal paged for tl: %s out, %s in — paid only because memory was"
              " actually scarce\n",
              format_bytes(tl_task.swapped_out).c_str(),
              format_bytes(tl_task.swapped_in).c_str());
  return 0;
}
