// Quickstart: the smallest end-to-end use of the library.
//
// Builds a one-node Hadoop cluster (the paper's testbed configuration),
// submits a low-priority job, preempts it for a high-priority job using
// the OS-assisted suspend/resume primitive, and prints what happened.
//
//   $ ./quickstart
#include <cstdio>

#include "metrics/timeline.hpp"
#include "sched/dummy.hpp"
#include "workload/profiles.hpp"

using namespace osap;

int main() {
  // 1. A cluster: one worker (4 GiB RAM, one map slot, swappiness 0),
  //    a JobTracker, HDFS and the simulated OS underneath.
  Cluster cluster(paper_cluster());
  TimelineRecorder timeline(cluster.job_tracker());

  // 2. The dummy scheduler: FIFO assignment plus the trigger API used
  //    throughout the paper's evaluation.
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));

  // 3. Two single-task map-only jobs over 512 MB HDFS blocks.
  TaskSpec low_task = light_map_task();
  TaskSpec high_task = light_map_task();
  low_task.preferred_node = high_task.preferred_node = cluster.node(0);
  cluster.create_input("input_low", 512 * MiB, cluster.node(0));
  cluster.create_input("input_high", 512 * MiB, cluster.node(0));

  ds.submit_at(0.1, single_task_job("low", /*priority=*/0, low_task));

  // 4. When the low job reaches 50%, a high-priority job arrives; suspend
  //    the low task (SIGTSTP to its child JVM) to free the slot at once.
  ds.at_progress("low", 0, 0.5, [&] {
    cluster.submit(single_task_job("high", /*priority=*/10, high_task));
    ds.preempt("low", 0, PreemptPrimitive::Suspend);
  });

  // 5. When the high job finishes, SIGCONT the suspended task: it picks
  //    up exactly where it left off — no work lost.
  ds.on_complete("high", [&] { ds.restore("low", 0, PreemptPrimitive::Suspend); });

  cluster.run();

  // 6. Inspect the outcome.
  const JobTracker& jt = cluster.job_tracker();
  const Job& low = jt.job(ds.job_of("low"));
  const Job& high = jt.job(ds.job_of("high"));
  std::printf("high-priority job: sojourn %.1f s (submitted at 50%% of low)\n",
              high.sojourn());
  std::printf("low-priority job:  sojourn %.1f s (suspended, then resumed)\n",
              low.sojourn());
  std::printf("workload makespan: %.1f s\n\n", timeline.makespan());
  std::printf("%s\n", timeline.render_gantt(3.0).c_str());

  const Task& low_t = jt.task(ds.task_of("low", 0));
  std::printf("attempts of the low task: %d (1 = its work was preserved)\n",
              low_t.attempts_started);
  std::printf("bytes the OS paged for it: %s out, %s in\n",
              format_bytes(low_t.swapped_out).c_str(), format_bytes(low_t.swapped_in).c_str());
  return 0;
}
