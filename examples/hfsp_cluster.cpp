// Size-based scheduling with work-preserving preemption on a small
// cluster: a SWIM-like trace of heavy-tailed jobs runs under HFSP, which
// suspends big jobs' tasks whenever smaller jobs arrive (§VI).
//
//   $ ./hfsp_cluster            # susp primitive, 12 jobs, 4 nodes
//   $ ./hfsp_cluster kill 20    # a different primitive / trace length
#include <cstdio>
#include <cstring>

#include "metrics/table.hpp"
#include "sched/hfsp.hpp"
#include "workload/swim.hpp"

using namespace osap;

int main(int argc, char** argv) {
  const PreemptPrimitive primitive =
      argc > 1 ? parse_primitive(argv[1]) : PreemptPrimitive::Suspend;
  const int jobs = argc > 2 ? std::atoi(argv[2]) : 12;

  ClusterConfig cfg = paper_cluster();
  cfg.num_nodes = 4;
  Cluster cluster(cfg);
  HfspScheduler::Options options;
  options.primitive = primitive;
  auto sched = std::make_unique<HfspScheduler>(options);
  HfspScheduler* hfsp = sched.get();
  cluster.set_scheduler(std::move(sched));

  SwimConfig swim;
  swim.jobs = jobs;
  swim.mean_interarrival = seconds(25);
  swim.max_tasks = 8;
  swim.stateful_fraction = 0.25;
  swim.state_memory = gib(1.5);
  Rng rng(7);
  auto ids = std::make_shared<std::vector<std::pair<std::string, JobId>>>();
  for (SwimJob& job : generate_swim_trace(swim, rng)) {
    const std::string name = job.spec.name;
    cluster.sim().at(job.arrival, [&cluster, ids, name, spec = std::move(job.spec)]() mutable {
      ids->emplace_back(name, cluster.submit(std::move(spec)));
    });
  }
  cluster.run();

  std::printf("HFSP with the '%s' primitive, %d jobs on %d nodes\n\n", to_string(primitive),
              jobs, cfg.num_nodes);
  Table table({"job", "tasks", "stateful", "arrived (s)", "sojourn (s)"});
  const JobTracker& jt = cluster.job_tracker();
  for (const auto& [name, id] : *ids) {
    const Job& job = jt.job(id);
    table.row({name, std::to_string(job.tasks.size()),
               job.spec.tasks.front().state_memory > 0 ? "yes" : "no",
               Table::num(job.submitted_at), Table::num(job.sojourn())});
  }
  table.print();
  std::printf("\npreemptions issued by HFSP: %d\n", hfsp->preemptions_issued());
  return 0;
}
