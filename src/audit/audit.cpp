#include "audit/audit.hpp"

#include <algorithm>
#include <cstddef>
#include <sstream>

namespace osap {

void AuditRegistry::add(InvariantAuditor* auditor) {
  if (auditor == nullptr) return;
  if (std::find(auditors_.begin(), auditors_.end(), auditor) != auditors_.end()) return;
  auditors_.push_back(auditor);
  costs_.push_back(AuditorCost{auditor->audit_label(), 0, 0});
}

void AuditRegistry::remove(InvariantAuditor* auditor) {
  for (std::size_t i = 0; i < auditors_.size(); ++i) {
    if (auditors_[i] != auditor) continue;
    retired_costs_.push_back(std::move(costs_[i]));
    auditors_.erase(auditors_.begin() + static_cast<std::ptrdiff_t>(i));
    costs_.erase(costs_.begin() + static_cast<std::ptrdiff_t>(i));
    return;
  }
}

void AuditRegistry::run(std::vector<std::string>& violations) const {
  for (const InvariantAuditor* auditor : auditors_) {
    std::vector<std::string> found;
    auditor->audit(found);
    for (std::string& message : found) {
      violations.push_back("[" + auditor->audit_label() + "] " + std::move(message));
    }
  }
}

AuditRegistry::SweepStats AuditRegistry::sweep(std::vector<std::string>& violations) {
  ++sweeps_;
  SweepStats stats;
  for (std::size_t i = 0; i < auditors_.size(); ++i) {
    InvariantAuditor* auditor = auditors_[i];
    if (auditor->audit_supports_dirty() && !auditor->audit_dirty()) {
      ++stats.skipped;
      ++costs_[i].skipped;
      continue;
    }
    ++stats.swept;
    ++costs_[i].swept;
    std::vector<std::string> found;
    auditor->audit(found);
    if (found.empty()) {
      // Clean pass: safe to skip until the next mutation re-dirties.
      if (auditor->audit_supports_dirty()) auditor->clear_audit_dirty();
      continue;
    }
    for (std::string& message : found) {
      violations.push_back("[" + auditor->audit_label() + "] " + std::move(message));
    }
  }
  return stats;
}

std::vector<AuditRegistry::AuditorCost> AuditRegistry::costs() const {
  std::vector<AuditorCost> all = retired_costs_;
  all.insert(all.end(), costs_.begin(), costs_.end());
  return all;
}

std::string AuditRegistry::dump_all() const {
  std::ostringstream os;
  for (const InvariantAuditor* auditor : auditors_) {
    os << "--- " << auditor->audit_label() << " ---\n";
    auditor->dump(os);
  }
  return os.str();
}

}  // namespace osap
