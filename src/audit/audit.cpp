#include "audit/audit.hpp"

#include <algorithm>
#include <sstream>

namespace osap {

void AuditRegistry::add(InvariantAuditor* auditor) {
  if (auditor == nullptr) return;
  if (std::find(auditors_.begin(), auditors_.end(), auditor) != auditors_.end()) return;
  auditors_.push_back(auditor);
}

void AuditRegistry::remove(InvariantAuditor* auditor) {
  auditors_.erase(std::remove(auditors_.begin(), auditors_.end(), auditor), auditors_.end());
}

void AuditRegistry::run(std::vector<std::string>& violations) const {
  for (const InvariantAuditor* auditor : auditors_) {
    std::vector<std::string> found;
    auditor->audit(found);
    for (std::string& message : found) {
      violations.push_back("[" + auditor->audit_label() + "] " + std::move(message));
    }
  }
}

std::string AuditRegistry::dump_all() const {
  std::ostringstream os;
  for (const InvariantAuditor* auditor : auditors_) {
    os << "--- " << auditor->audit_label() << " ---\n";
    auditor->dump(os);
  }
  return os.str();
}

}  // namespace osap
