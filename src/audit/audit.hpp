// Runtime invariant auditing: catch a broken simulation the moment it
// breaks, not when a downstream metric looks funny.
//
// Model layers (VMM, kernel, trackers, preemption protocol) implement
// InvariantAuditor and register with the Simulation's AuditRegistry. The
// event loop sweeps the registry every `stride` events; any violated
// invariant aborts the run with a SimError carrying the violation list
// plus every auditor's state dump. The same registry powers the watchdog:
// when simulated time stops advancing for `max_stalled_events`
// consecutive events (a zero-delay event livelock), the loop aborts with
// the same diagnostic dump instead of hanging forever.
//
// Audits default to ON — the sweeps are cheap relative to event dispatch
// — and can be disabled per Simulation (e.g. huge batch experiments) via
// AuditConfig.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace osap {

struct AuditConfig {
  bool enabled = true;
  /// Sweep all registered auditors every `stride` processed events.
  std::uint64_t stride = 64;
  /// Watchdog: abort when this many consecutive events fire without
  /// simulated time advancing. Legitimate same-time bursts (heartbeat
  /// storms, spawn cascades) are a few hundred events; a livelock crosses
  /// any bound immediately, so this only needs to be comfortably large.
  std::uint64_t max_stalled_events = 100000;
  /// Min-advance watchdog: every `min_advance_window` processed events the
  /// clock must have advanced by at least `min_advance_floor` seconds.
  /// Catches livelocks that creep time forward (ULP increments, 1 ns fluid
  /// floors) and therefore reset the same-instant counter forever. The
  /// window is deliberately larger than `max_stalled_events` so a pure
  /// zero-delay livelock still gets the precise same-instant diagnosis.
  /// Healthy workloads advance milliseconds-to-seconds per event; a
  /// window's worth of events advancing less than a microsecond in total
  /// is creep, not progress. 0 disables.
  std::uint64_t min_advance_window = 131072;
  Duration min_advance_floor = 1e-6;
};

/// One model layer's self-check. Implementations must deregister before
/// destruction (typically: register in the constructor, remove in the
/// destructor — the registry stores raw pointers).
class InvariantAuditor {
 public:
  virtual ~InvariantAuditor() = default;

  /// Instance label used in violation messages, e.g. "vmm(node0)".
  [[nodiscard]] virtual std::string audit_label() const = 0;

  /// Append one message per violated invariant. Must not mutate state.
  virtual void audit(std::vector<std::string>& violations) const = 0;

  /// Human-readable state dump for the diagnostic abort message.
  virtual void dump(std::ostream& os) const = 0;

  // --- dirty-flagging -------------------------------------------------
  // Auditors that mark themselves dirty on *every* state mutation may
  // opt in (return true here); the periodic sweep then skips them while
  // clean, which the hot-path profile showed dominates sweep cost on
  // compute-heavy stretches. Opting in is a contract: a missed
  // mark_audit_dirty() hides corruption from the periodic sweep (on-demand
  // audit_now() still always runs everything). Auditors start dirty so
  // construction-time state is checked at least once.

  /// Opt-in switch; default is to be swept unconditionally.
  [[nodiscard]] virtual bool audit_supports_dirty() const { return false; }

  [[nodiscard]] bool audit_dirty() const noexcept { return audit_dirty_; }
  /// Called by the registry after a clean pass over this auditor.
  void clear_audit_dirty() noexcept { audit_dirty_ = false; }

 protected:
  /// Mutating methods of opted-in auditors call this.
  void mark_audit_dirty() noexcept { audit_dirty_ = true; }

 private:
  bool audit_dirty_ = true;
};

class AuditRegistry {
 public:
  void add(InvariantAuditor* auditor);
  void remove(InvariantAuditor* auditor);

  /// Sweep every auditor, labelling each violation with its source.
  void run(std::vector<std::string>& violations) const;

  struct SweepStats {
    std::size_t swept = 0;
    std::size_t skipped = 0;
  };

  /// Dirty-aware periodic sweep: auditors that opt into dirty-flagging and
  /// are currently clean are skipped; everyone else is audited, and an
  /// opted-in auditor's flag is cleared only after a violation-free pass.
  /// Per-auditor swept/skipped tallies accumulate into costs().
  SweepStats sweep(std::vector<std::string>& violations);

  /// Cumulative per-auditor sweep cost, in registration order. Survives
  /// for the lifetime of the registry (labels are cached at add() so the
  /// row outlives auditor removal).
  struct AuditorCost {
    std::string label;
    std::uint64_t swept = 0;
    std::uint64_t skipped = 0;
  };
  [[nodiscard]] std::vector<AuditorCost> costs() const;
  [[nodiscard]] std::uint64_t sweeps() const noexcept { return sweeps_; }

  /// Every auditor's dump, concatenated.
  [[nodiscard]] std::string dump_all() const;

  [[nodiscard]] std::size_t size() const noexcept { return auditors_.size(); }

 private:
  std::vector<InvariantAuditor*> auditors_;
  /// costs_[i] belongs to auditors_[i] while registered; on remove() the
  /// row is retired to retired_costs_ so measurements survive teardown.
  std::vector<AuditorCost> costs_;
  std::vector<AuditorCost> retired_costs_;
  std::uint64_t sweeps_ = 0;
};

}  // namespace osap
