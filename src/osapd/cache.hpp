// Digest-keyed on-disk result cache.
//
// One file per cell: `<cache-dir>/<config-digest-hex>.json`, holding the
// exact serialized record bytes the first successful run produced. The
// soundness argument (docs/OSAPD.md) rests on the repo's determinism
// law: the event-trace digest proves a descriptor replays bit-
// identically, so equal config digests imply equal results and a hit may
// be returned verbatim. Two defenses stay on anyway:
//
//  * every hit re-checks the stored descriptor text against the probing
//    descriptor (a 64-bit digest collision yields a miss, not a lie);
//  * records that fail to parse, or that disagree with the probing
//    descriptor, are QUARANTINED — renamed to `<stem>.quarantined` — so
//    a corrupted file can never satisfy a lookup twice and the evidence
//    survives for inspection.
//
// Writes are atomic (tmp file + rename in the same directory), so a
// sweep killed mid-store leaves either the old bytes or the new bytes,
// never a torn file. Failed runs are never stored.
#pragma once

#include <filesystem>
#include <optional>
#include <string>

#include "core/run.hpp"

namespace osap::osapd {

class ResultCache {
 public:
  /// Creates `dir` (and parents) if missing.
  explicit ResultCache(std::filesystem::path dir);

  struct Hit {
    core::ResultRecord record;
    /// The verbatim stored bytes — byte-identical to what `store` wrote.
    std::string record_json;
  };

  /// Look up a normalized descriptor. Misses on: absent file, unreadable
  /// file, parse failure (quarantines), descriptor mismatch (quarantines).
  [[nodiscard]] std::optional<Hit> lookup(const core::RunDescriptor& d);

  /// Atomically persist the serialized record bytes for `d`.
  void store(const core::RunDescriptor& d, const std::string& record_json);

  [[nodiscard]] const std::filesystem::path& dir() const noexcept { return dir_; }
  /// Files moved aside by this instance because they could not be trusted.
  [[nodiscard]] std::uint64_t quarantined() const noexcept { return quarantined_; }

 private:
  std::filesystem::path dir_;
  std::uint64_t quarantined_ = 0;
};

}  // namespace osap::osapd
