#include "osapd/matrix.hpp"

#include <istream>
#include <numeric>

#include "common/error.hpp"

namespace osap::osapd {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) --e;
  return s.substr(b, e - b);
}

bool valid_key(const std::string& key) {
  if (key.empty()) return false;
  for (const char c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return true;
}

std::vector<std::string> split_values(const std::string& text) {
  std::vector<std::string> values;
  std::size_t at = 0;
  while (at <= text.size()) {
    std::size_t end = text.find(',', at);
    if (end == std::string::npos) end = text.size();
    const std::string v = trim(text.substr(at, end - at));
    if (!v.empty()) values.push_back(v);
    at = end + 1;
  }
  return values;
}

void add_axis(MatrixSpec& spec, const std::string& key, const std::string& rhs,
              const std::string& where, bool replace) {
  OSAP_CHECK_MSG(valid_key(key), where << ": axis key '" << key << "' is not [a-z0-9_]+");
  const std::vector<std::string> values = split_values(rhs);
  OSAP_CHECK_MSG(!values.empty(), where << ": axis '" << key << "' has no values");
  if (!replace) {
    OSAP_CHECK_MSG(!spec.axes.contains(key), where << ": duplicate axis '" << key << "'");
  }
  spec.axes[key] = values;
}

}  // namespace

std::size_t MatrixSpec::cells() const {
  if (axes.empty()) return 0;
  return std::accumulate(axes.begin(), axes.end(), std::size_t{1},
                         [](std::size_t acc, const auto& axis) {
                           return acc * axis.second.size();
                         });
}

MatrixSpec parse_matrix(std::istream& in, const std::string& source) {
  MatrixSpec spec;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip trailing comments; '#' never appears in descriptor values.
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    const std::string body = trim(line);
    if (body.empty()) continue;
    const std::size_t eq = body.find('=');
    const std::string where = source + ":" + std::to_string(lineno);
    OSAP_CHECK_MSG(eq != std::string::npos, where << ": expected 'key = v1, v2, ...'");
    add_axis(spec, trim(body.substr(0, eq)), body.substr(eq + 1), where, /*replace=*/false);
  }
  OSAP_CHECK_MSG(!spec.axes.empty(), source << ": matrix declares no axes");
  return spec;
}

void apply_set(MatrixSpec& spec, const std::string& overlay) {
  const std::size_t eq = overlay.find('=');
  OSAP_CHECK_MSG(eq != std::string::npos, "--set '" << overlay << "': expected key=v1,v2,...");
  add_axis(spec, trim(overlay.substr(0, eq)), overlay.substr(eq + 1),
           "--set " + overlay.substr(0, eq), /*replace=*/true);
}

}  // namespace osap::osapd
