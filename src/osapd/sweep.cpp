#include "osapd/sweep.hpp"

#include <memory>
#include <ostream>

#include "osapd/cache.hpp"
#include "osapd/record.hpp"
#include "trace/names.hpp"

namespace osap::osapd {

namespace {

void progress_line(std::ostream* out, const std::string& body) {
  if (out == nullptr) return;
  *out << '{' << body << "}\n";
  out->flush();  // each line must survive a SIGINT that lands mid-sweep
}

std::string cell_body(const core::RunDescriptor& d, const CellResult& res,
                      const char* source) {
  std::string body = "\"event\":\"cell\",\"index\":" + std::to_string(res.index) +
                     ",\"descriptor\":\"" + json_escape(d.canonical()) +
                     "\",\"config_digest\":\"" + d.digest_hex() + "\",\"ok\":" +
                     (res.ok ? "true" : "false") + ",\"source\":\"" + source +
                     "\",\"attempts\":" + std::to_string(res.attempts);
  if (!res.ok) body += ",\"error\":\"" + json_escape(res.error) + "\"";
  return body;
}

}  // namespace

SweepOutcome run_sweep(const std::vector<core::RunDescriptor>& descriptors,
                       const SweepOptions& opts) {
  SweepOutcome outcome;
  std::unique_ptr<ResultCache> cache;
  if (!opts.cache_dir.empty()) cache = std::make_unique<ResultCache>(opts.cache_dir);

  // Phase 1: satisfy what we can from the cache; collect the rest.
  std::vector<std::size_t> todo;
  for (std::size_t i = 0; i < descriptors.size(); ++i) {
    if (cache) {
      if (std::optional<ResultCache::Hit> hit = cache->lookup(descriptors[i])) {
        ++outcome.cache_hits;
        CellResult res;
        res.index = i;
        res.attempts = 0;
        res.ok = hit->record.ok;
        res.error = hit->record.error;
        res.record = std::move(hit->record);
        res.record_json = std::move(hit->record_json);
        res.cached = true;
        outcome.cells.push_back(std::move(res));
        continue;
      }
      ++outcome.cache_misses;
    }
    todo.push_back(i);
  }

  progress_line(opts.progress, "\"event\":\"start\",\"cells_total\":" +
                                   std::to_string(descriptors.size()) + ",\"from_cache\":" +
                                   std::to_string(outcome.cache_hits) + ",\"to_run\":" +
                                   std::to_string(todo.size()));
  for (const CellResult& res : outcome.cells) {
    progress_line(opts.progress, cell_body(descriptors[res.index], res, "cache"));
  }

  // Phase 2: the worker pool resolves the misses; every fresh success is
  // persisted the moment it lands, so cancellation never loses work.
  const auto on_result = [&](CellResult&& res) {
    if (res.ok && cache && !res.record_json.empty()) {
      cache->store(descriptors[res.index], res.record_json);
      ++outcome.cache_stores;
    }
    progress_line(opts.progress, cell_body(descriptors[res.index], res, "run"));
    outcome.cells.push_back(std::move(res));
  };
  const auto on_event = [&](const PoolEvent& ev) {
    if (ev.kind == "worker_exit") {
      ++outcome.worker_deaths;
      progress_line(opts.progress, "\"event\":\"worker_exit\",\"cell\":" +
                                       std::to_string(ev.cell) + ",\"status\":" +
                                       std::to_string(ev.detail));
    } else if (ev.kind == "reschedule") {
      ++outcome.rescheduled;
      progress_line(opts.progress, "\"event\":\"reschedule\",\"cell\":" +
                                       std::to_string(ev.cell) + ",\"attempt\":" +
                                       std::to_string(ev.detail));
    } else if (ev.kind == "rss_abort") {
      ++outcome.rss_aborts;
      progress_line(opts.progress, "\"event\":\"rss_abort\",\"cell\":" + std::to_string(ev.cell));
    }
  };
  const bool complete = WorkerPool::run(descriptors, todo, opts.pool, on_result, on_event);
  outcome.cancelled = !complete;
  if (cache) outcome.cache_quarantined = cache->quarantined();
  if (outcome.cancelled) {
    progress_line(opts.progress, "\"event\":\"cancelled\",\"done\":" +
                                     std::to_string(outcome.cells.size()) + ",\"cells_total\":" +
                                     std::to_string(descriptors.size()));
  }
  return outcome;
}

std::vector<std::pair<std::string, std::uint64_t>> harness_counters(
    const SweepOutcome& outcome, std::size_t cells_total) {
  std::uint64_t failed = 0;
  for (const CellResult& res : outcome.cells) failed += res.ok ? 0 : 1;
  namespace names = trace::names;
  return {
      {names::kOsapdCellsTotal, cells_total},
      {names::kOsapdCellsCompleted, outcome.cells.size()},
      {names::kOsapdCellsFailed, failed},
      {names::kOsapdCacheHits, outcome.cache_hits},
      {names::kOsapdCacheMisses, outcome.cache_misses},
      {names::kOsapdCacheStores, outcome.cache_stores},
      {names::kOsapdCacheQuarantined, outcome.cache_quarantined},
      {names::kOsapdWorkerDeaths, outcome.worker_deaths},
      {names::kOsapdCellsRescheduled, outcome.rescheduled},
      {names::kOsapdRssAborts, outcome.rss_aborts},
      {names::kOsapdCancelled, outcome.cancelled ? 1u : 0u},
  };
}

}  // namespace osap::osapd
