#include "osapd/pool.hpp"

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <optional>

#include "common/error.hpp"
#include "osapd/record.hpp"

namespace osap::osapd {

const char* const kRssAbortPrefix = "rss budget exceeded";

namespace {

/// Built-in resident-set probe: /proc/self/statm field 2 is the RSS in
/// pages. Reading a proc file is not a clock and not randomness, so it
/// stays inside the determinism rules — and it only ever runs inside a
/// worker's watchdog tick, never in the simulation itself.
std::uint64_t read_self_rss_bytes() {
  std::ifstream statm("/proc/self/statm");
  std::uint64_t vsz_pages = 0, rss_pages = 0;
  if (!(statm >> vsz_pages >> rss_pages)) return 0;
  return rss_pages * static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
}

void write_all(int fd, const std::string& bytes) {
  std::size_t at = 0;
  while (at < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + at, bytes.size() - at);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // EPIPE after a worker died: the EOF path owns recovery.
    }
    at += static_cast<std::size_t>(n);
  }
}

std::string describe_status(int status) {
  if (WIFEXITED(status)) return "worker exited (status " + std::to_string(WEXITSTATUS(status)) + ")";
  if (WIFSIGNALED(status)) return "worker killed (signal " + std::to_string(WTERMSIG(status)) + ")";
  return "worker vanished";
}

[[noreturn]] void worker_main(const std::vector<core::RunDescriptor>& descriptors,
                              const PoolOptions& opts, int cmd_fd, int res_fd) {
  // The terminal delivers SIGINT to the whole foreground process group;
  // workers must finish their in-flight cell so the parent can drain.
  std::signal(SIGINT, SIG_IGN);
  std::uint64_t (*probe)() = opts.rss_probe != nullptr ? opts.rss_probe : &read_self_rss_bytes;
  std::string buf;
  char chunk[4096];
  for (;;) {
    std::size_t nl;
    while ((nl = buf.find('\n')) == std::string::npos) {
      const ssize_t n = ::read(cmd_fd, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) ::_exit(0);
      buf.append(chunk, static_cast<std::size_t>(n));
    }
    const std::string line = buf.substr(0, nl);
    buf.erase(0, nl + 1);
    if (line == "EXIT") ::_exit(0);
    unsigned long idx = 0;
    int attempt = 0;
    if (std::sscanf(line.c_str(), "RUN %lu %d", &idx, &attempt) != 2 ||
        idx >= descriptors.size()) {
      ::_exit(3);
    }
    const core::RunDescriptor& d = descriptors[idx];

    // Worker-pool fault injection hook (docs/OSAPD.md): digest-visible
    // descriptor key the library runner ignores. Simulates a worker
    // crash before any result is shipped.
    const std::string fault = d.get("fault_worker", "none");
    if (fault == "exit_always" || (fault == "exit_first_attempt" && attempt == 1)) {
      ::_exit(17);
    }

    core::RunOptions ropts;
    const std::uint64_t budget = opts.max_rss_bytes;
    if (budget > 0) {
      ropts.tick = [budget, probe]() {
        const std::uint64_t rss = probe();
        if (rss > budget) {
          throw SimError(std::string(kRssAbortPrefix) + ": " +
                         std::to_string(rss / (1024 * 1024)) + " MiB > " +
                         std::to_string(budget / (1024 * 1024)) + " MiB");
        }
      };
    }
    const double t0 = opts.now_ms != nullptr ? opts.now_ms() : 0;
    core::ResultRecord rec = core::run_descriptor(d, ropts);
    if (opts.now_ms != nullptr) rec.wall_ms = opts.now_ms() - t0;

    const std::string json = serialize_record(d.canonical(), rec);
    write_all(res_fd, "RES " + std::to_string(idx) + " " + std::to_string(attempt) + " " +
                          json + "\n");
    const bool rss_abort =
        !rec.ok && rec.error.compare(0, std::strlen(kRssAbortPrefix), kRssAbortPrefix) == 0;
    // An RSS abort leaves this address space bloated; exit so the parent
    // recycles the worker, reclaiming the memory before the next cell.
    if (rss_abort) ::_exit(0);
  }
}

struct Worker {
  pid_t pid = -1;
  int wfd = -1;  // parent -> child commands
  int rfd = -1;  // child -> parent results
  std::string buf;
  long cell = -1;  // in-flight cell index, -1 when idle
  int attempt = 0;
  bool draining = false;  // reported an RSS abort; EOF is expected next
};

Worker spawn_worker(const std::vector<core::RunDescriptor>& descriptors,
                    const PoolOptions& opts) {
  int cmd[2], res[2];
  OSAP_CHECK_MSG(::pipe(cmd) == 0 && ::pipe(res) == 0, "pool: pipe() failed");
  const pid_t pid = ::fork();
  OSAP_CHECK_MSG(pid >= 0, "pool: fork() failed");
  if (pid == 0) {
    ::close(cmd[1]);
    ::close(res[0]);
    worker_main(descriptors, opts, cmd[0], res[1]);
  }
  ::close(cmd[0]);
  ::close(res[1]);
  Worker w;
  w.pid = pid;
  w.wfd = cmd[1];
  w.rfd = res[0];
  return w;
}

void close_worker(Worker& w) {
  if (w.wfd >= 0) ::close(w.wfd);
  if (w.rfd >= 0) ::close(w.rfd);
  w.wfd = w.rfd = -1;
  w.pid = -1;
}

}  // namespace

bool WorkerPool::run(const std::vector<core::RunDescriptor>& descriptors,
                     const std::vector<std::size_t>& todo, const PoolOptions& opts,
                     const std::function<void(CellResult&&)>& on_result,
                     const std::function<void(const PoolEvent&)>& on_event) {
  const std::size_t total = todo.size();
  if (total == 0) return true;
  const int nworkers = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(std::max(opts.workers, 1)), total));
  const int max_attempts = std::max(opts.max_attempts, 1);

  // A worker dying mid-write must not take the parent down with SIGPIPE.
  using SigHandler = void (*)(int);
  const SigHandler old_pipe = std::signal(SIGPIPE, SIG_IGN);

  std::deque<std::size_t> pending(todo.begin(), todo.end());
  std::vector<int> attempts(descriptors.size(), 0);
  std::vector<Worker> workers;
  std::size_t done = 0;
  bool cancelled = false;

  const auto emit = [&](const char* kind, std::size_t cell, int detail) {
    if (on_event) on_event(PoolEvent{kind, cell, detail});
  };

  const auto finish_cell = [&](CellResult&& res) {
    ++done;
    if (on_result) on_result(std::move(res));
  };

  // A cell came back without a usable result: reschedule once, then
  // record it failed-with-reason. Every cell reaches a terminal result
  // exactly once.
  const auto bounce_cell = [&](std::size_t cell, const std::string& reason,
                               core::ResultRecord&& rec, std::string&& json) {
    if (attempts[cell] < max_attempts) {
      pending.push_back(cell);
      emit("reschedule", cell, attempts[cell]);
      return;
    }
    CellResult res;
    res.index = cell;
    res.attempts = attempts[cell];
    res.ok = false;
    res.error = reason;
    res.record = std::move(rec);
    res.record_json = std::move(json);
    finish_cell(std::move(res));
  };

  const auto handle_line = [&](Worker& w, const std::string& line) {
    unsigned long idx = 0;
    int attempt = 0;
    int consumed = 0;
    if (std::sscanf(line.c_str(), "RES %lu %d %n", &idx, &attempt, &consumed) != 2 ||
        idx >= descriptors.size()) {
      return;  // protocol garbage; the EOF path will reconcile the cell
    }
    std::string json = line.substr(static_cast<std::size_t>(consumed));
    std::optional<ParsedRecord> parsed = parse_record(json);
    w.cell = -1;
    if (!parsed.has_value()) {
      bounce_cell(idx, "worker returned an unparseable record", {}, {});
      return;
    }
    core::ResultRecord& rec = parsed->record;
    const bool rss_abort =
        !rec.ok && rec.error.compare(0, std::strlen(kRssAbortPrefix), kRssAbortPrefix) == 0;
    if (rss_abort) {
      w.draining = true;  // the worker exits after an RSS report
      emit("rss_abort", idx, attempt);
      bounce_cell(idx, rec.error, std::move(rec), std::move(json));
      return;
    }
    CellResult res;
    res.index = idx;
    res.attempts = attempts[idx];
    res.ok = rec.ok;
    res.error = rec.error;
    res.record = std::move(rec);
    res.record_json = json;
    finish_cell(std::move(res));
  };

  const auto handle_eof = [&](Worker& w) {
    int status = 0;
    ::waitpid(w.pid, &status, 0);
    const long cell = w.cell;
    const bool draining = w.draining;
    close_worker(w);
    if (cell >= 0) {
      emit("worker_exit", static_cast<std::size_t>(cell), status);
      bounce_cell(static_cast<std::size_t>(cell), describe_status(status), {}, {});
    } else if (!draining) {
      emit("worker_exit", 0, status);
    }
  };

  while (true) {
    if (opts.cancel != nullptr && *opts.cancel != 0) cancelled = true;
    if (done == total) break;

    // Dispatch: fill idle workers, spawning up to the cap as needed.
    if (!cancelled) {
      while (!pending.empty()) {
        Worker* idle = nullptr;
        int live = 0;
        for (Worker& w : workers) {
          if (w.pid < 0) continue;
          ++live;
          if (w.cell < 0 && !w.draining && idle == nullptr) idle = &w;
        }
        if (idle == nullptr) {
          if (live >= nworkers) break;
          workers.push_back(spawn_worker(descriptors, opts));
          emit("spawn", 0, static_cast<int>(workers.back().pid));
          continue;
        }
        const std::size_t cell = pending.front();
        pending.pop_front();
        idle->cell = static_cast<long>(cell);
        idle->attempt = ++attempts[cell];
        write_all(idle->wfd, "RUN " + std::to_string(cell) + " " +
                                 std::to_string(idle->attempt) + "\n");
      }
    }

    std::size_t inflight = 0;
    for (const Worker& w : workers) {
      if (w.pid >= 0 && w.cell >= 0) ++inflight;
    }
    if (cancelled && inflight == 0) break;
    if (inflight == 0 && pending.empty()) break;

    std::vector<pollfd> fds;
    std::vector<std::size_t> owner;
    for (std::size_t i = 0; i < workers.size(); ++i) {
      if (workers[i].pid < 0) continue;
      fds.push_back(pollfd{workers[i].rfd, POLLIN, 0});
      owner.push_back(i);
    }
    if (fds.empty()) continue;
    const int nready = ::poll(fds.data(), fds.size(), 200);
    if (nready < 0 && errno != EINTR) {
      throw SimError(std::string("pool: poll() failed: ") + std::strerror(errno));
    }
    if (nready <= 0) continue;
    for (std::size_t k = 0; k < fds.size(); ++k) {
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Worker& w = workers[owner[k]];
      char chunk[8192];
      const ssize_t n = ::read(w.rfd, chunk, sizeof(chunk));
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN) continue;
        handle_eof(w);
        continue;
      }
      if (n == 0) {
        handle_eof(w);
        continue;
      }
      w.buf.append(chunk, static_cast<std::size_t>(n));
      std::size_t nl;
      while ((nl = w.buf.find('\n')) != std::string::npos) {
        const std::string line = w.buf.substr(0, nl);
        w.buf.erase(0, nl + 1);
        handle_line(w, line);
      }
    }
  }

  // Shutdown: politely ask live workers to exit, then reap everyone.
  for (Worker& w : workers) {
    if (w.pid < 0) continue;
    write_all(w.wfd, "EXIT\n");
  }
  for (Worker& w : workers) {
    if (w.pid < 0) continue;
    int status = 0;
    ::waitpid(w.pid, &status, 0);
    close_worker(w);
  }
  std::signal(SIGPIPE, old_pipe);
  return done == total;
}

}  // namespace osap::osapd
