#include "osapd/record.hpp"

#include <cstdio>
#include <cstdlib>

namespace osap::osapd {

std::string hex_u64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

namespace {

// --- tolerant scanner over the one record shape we emit ------------------

struct Scanner {
  const std::string& text;
  std::size_t at = 0;
  bool ok = true;

  void skip_ws() {
    while (at < text.size() &&
           (text[at] == ' ' || text[at] == '\t' || text[at] == '\n' || text[at] == '\r')) {
      ++at;
    }
  }

  void expect(char c) {
    skip_ws();
    if (at < text.size() && text[at] == c) {
      ++at;
    } else {
      ok = false;
    }
  }

  [[nodiscard]] bool peek_is(char c) {
    skip_ws();
    return at < text.size() && text[at] == c;
  }

  std::string take_string() {
    expect('"');
    std::string out;
    while (ok && at < text.size() && text[at] != '"') {
      char c = text[at++];
      if (c == '\\') {
        if (at >= text.size()) {
          ok = false;
          break;
        }
        const char esc = text[at++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          default: ok = false; continue;
        }
      }
      out += c;
    }
    expect('"');
    return out;
  }

  std::string take_raw_number() {
    skip_ws();
    const std::size_t start = at;
    while (at < text.size()) {
      const char c = text[at];
      const bool numeric = (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
                           c == 'e' || c == 'E';
      if (!numeric) break;
      ++at;
    }
    if (at == start) ok = false;
    return text.substr(start, at - start);
  }

  double take_double() {
    const std::string raw = take_raw_number();
    if (!ok) return 0;
    char* end = nullptr;
    const double v = std::strtod(raw.c_str(), &end);
    if (end == nullptr || *end != '\0') ok = false;
    return v;
  }

  std::uint64_t take_u64() {
    const std::string raw = take_raw_number();
    if (!ok) return 0;
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(raw.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') ok = false;
    return v;
  }

  std::uint64_t take_hex_string() {
    const std::string raw = take_string();
    if (!ok || raw.empty() || raw.size() > 16) {
      ok = false;
      return 0;
    }
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(raw.c_str(), &end, 16);
    if (end == nullptr || *end != '\0') ok = false;
    return v;
  }

  bool take_bool() {
    skip_ws();
    if (text.compare(at, 4, "true") == 0) {
      at += 4;
      return true;
    }
    if (text.compare(at, 5, "false") == 0) {
      at += 5;
      return false;
    }
    ok = false;
    return false;
  }

  void key(const char* name) {
    const std::string got = take_string();
    if (got != name) ok = false;
    expect(':');
  }
};

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c; break;
    }
  }
  return out;
}

std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string serialize_record(const std::string& descriptor, const core::ResultRecord& rec) {
  std::string out = "{\"descriptor\":\"";
  out += json_escape(descriptor);
  out += "\",\"config_digest\":\"";
  out += hex_u64(rec.config_digest);
  out += "\",\"ok\":";
  out += rec.ok ? "true" : "false";
  out += ",\"error\":\"";
  out += json_escape(rec.error);
  out += "\",\"trace_digest\":\"";
  out += hex_u64(rec.trace_digest);
  out += "\",\"events\":";
  out += std::to_string(rec.events);
  out += ",\"jobs\":";
  out += std::to_string(rec.jobs);
  out += ",\"sojourn_th\":";
  out += json_num(rec.sojourn_th);
  out += ",\"sojourn_tl\":";
  out += json_num(rec.sojourn_tl);
  out += ",\"makespan\":";
  out += json_num(rec.makespan);
  out += ",\"cost\":";
  out += json_num(rec.cost);
  out += ",\"tl_swapped_out_mib\":";
  out += json_num(rec.tl_swapped_out_mib);
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, count] : rec.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(name);
    out += "\":";
    out += std::to_string(count);
  }
  out += "},\"wall_ms\":";
  out += json_num(rec.wall_ms);
  out += '}';
  return out;
}

std::optional<ParsedRecord> parse_record(const std::string& json) {
  Scanner sc{json};
  ParsedRecord parsed;
  core::ResultRecord& rec = parsed.record;
  sc.expect('{');
  sc.key("descriptor");
  parsed.descriptor = sc.take_string();
  sc.expect(',');
  sc.key("config_digest");
  rec.config_digest = sc.take_hex_string();
  sc.expect(',');
  sc.key("ok");
  rec.ok = sc.take_bool();
  sc.expect(',');
  sc.key("error");
  rec.error = sc.take_string();
  sc.expect(',');
  sc.key("trace_digest");
  rec.trace_digest = sc.take_hex_string();
  sc.expect(',');
  sc.key("events");
  rec.events = sc.take_u64();
  sc.expect(',');
  sc.key("jobs");
  rec.jobs = static_cast<int>(sc.take_u64());
  sc.expect(',');
  sc.key("sojourn_th");
  rec.sojourn_th = sc.take_double();
  sc.expect(',');
  sc.key("sojourn_tl");
  rec.sojourn_tl = sc.take_double();
  sc.expect(',');
  sc.key("makespan");
  rec.makespan = sc.take_double();
  sc.expect(',');
  sc.key("cost");
  rec.cost = sc.take_double();
  sc.expect(',');
  sc.key("tl_swapped_out_mib");
  rec.tl_swapped_out_mib = sc.take_double();
  sc.expect(',');
  sc.key("counters");
  sc.expect('{');
  if (!sc.peek_is('}')) {
    for (;;) {
      const std::string name = sc.take_string();
      sc.expect(':');
      const std::uint64_t count = sc.take_u64();
      if (!sc.ok) break;
      rec.counters.emplace_back(name, count);
      if (sc.peek_is(',')) {
        sc.expect(',');
        continue;
      }
      break;
    }
  }
  sc.expect('}');
  sc.expect(',');
  sc.key("wall_ms");
  rec.wall_ms = sc.take_double();
  sc.expect('}');
  sc.skip_ws();
  if (!sc.ok || sc.at != json.size()) return std::nullopt;
  return parsed;
}

}  // namespace osap::osapd
