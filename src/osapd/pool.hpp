// Forked worker pool: shards run descriptors across N child processes,
// one simulation in flight per worker, results shipped back over pipes.
//
// Protocol (newline-framed text, parent -> child on one pipe, child ->
// parent on another):
//
//   parent: "RUN <cell-index> <attempt>\n"   assign a cell
//   parent: "EXIT\n"                         drain and quit
//   child:  "RES <cell-index> <attempt> <record-json>\n"
//
// Failure semantics (docs/OSAPD.md):
//
//  * worker dies mid-cell (EOF before RES)  -> cell rescheduled ONCE on
//    a fresh worker; a second death records the cell failed-with-reason;
//  * RSS watchdog abort (tick hook throws)  -> the child reports the
//    aborted record, then exits so its bloated address space is
//    reclaimed; the cell is rescheduled once like a death;
//  * deterministic failure (sim invariant, bad descriptor) -> recorded
//    as-is, never retried: rerunning a deterministic program does not
//    change its output.
//
// Cancellation: when *cancel flips nonzero the pool stops dispatching,
// drains every in-flight cell, and returns with the remaining cells
// untouched. Workers ignore SIGINT themselves — the terminal delivers
// the signal to the whole foreground process group, and an interrupted
// worker would tear a cell the parent still wants drained.
//
// Determinism: the pool itself is OS-async (poll order varies run to
// run) but the cells are not — each worker runs the same deterministic
// simulation the in-process path runs, so per-cell records are
// byte-identical no matter which worker computed them or in what order
// (pool_test asserts this against core::run_descriptor).
#pragma once

#include <csignal>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/run.hpp"

namespace osap::osapd {

struct PoolOptions {
  /// Worker process count; clamped to >= 1.
  int workers = 1;
  /// Total attempts allowed per cell (2 = reschedule once).
  int max_attempts = 2;
  /// Per-worker RSS budget in bytes; 0 disables the watchdog.
  std::uint64_t max_rss_bytes = 0;
  /// Resident-set probe used by the watchdog inside workers; nullptr
  /// selects the built-in /proc/self/statm reader. Tests inject fakes.
  std::uint64_t (*rss_probe)() = nullptr;
  /// Wall clock used ONLY to stamp wall_ms on records; the library never
  /// reads real time (lint rule DET-2), so the harness must inject it.
  /// nullptr leaves wall_ms at 0.
  double (*now_ms)() = nullptr;
  /// Cancellation flag, typically set by a SIGINT handler. nullptr means
  /// not cancellable.
  const volatile std::sig_atomic_t* cancel = nullptr;
};

/// Terminal outcome of one cell.
struct CellResult {
  std::size_t index = 0;
  int attempts = 0;
  bool ok = false;
  /// Failure reason when !ok ("worker exited (status 9)", the watchdog
  /// message, a sim invariant...).
  std::string error;
  core::ResultRecord record;
  /// Exact serialized bytes as shipped by the worker — what the cache
  /// stores. Empty when the worker died before reporting.
  std::string record_json;
  /// True when the sweep layer satisfied this cell from the result cache
  /// (the pool itself never sets it).
  bool cached = false;
};

/// Pool lifecycle events the sweep layer turns into ndjson progress
/// records: "worker_exit", "reschedule", "spawn".
struct PoolEvent {
  std::string kind;
  std::size_t cell = 0;
  int detail = 0;
};

class WorkerPool {
 public:
  /// Run every cell index in `todo` (indices into `descriptors`) to a
  /// terminal CellResult, invoking `on_result` exactly once per cell in
  /// completion order. Returns true if all of `todo` completed, false if
  /// cancelled first. Not reentrant.
  static bool run(const std::vector<core::RunDescriptor>& descriptors,
                  const std::vector<std::size_t>& todo, const PoolOptions& opts,
                  const std::function<void(CellResult&&)>& on_result,
                  const std::function<void(const PoolEvent&)>& on_event);
};

/// The message prefix a worker uses when the RSS watchdog aborts a run;
/// the parent keys its retry decision on it.
extern const char* const kRssAbortPrefix;

}  // namespace osap::osapd
