#include "osapd/aggregate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <ostream>
#include <set>

#include "osapd/expand.hpp"
#include "osapd/record.hpp"

namespace osap::osapd {

namespace {

/// Nearest-rank percentile over an ascending sample vector.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const std::size_t rank = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(q * static_cast<double>(sorted.size()))));
  return sorted[std::min(rank, sorted.size()) - 1];
}

bool all_numeric(const std::vector<std::string>& values) {
  for (const std::string& v : values) {
    char* end = nullptr;
    std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0') return false;
  }
  return true;
}

void sort_axis_values(std::vector<std::string>& values) {
  if (all_numeric(values)) {
    std::sort(values.begin(), values.end(), [](const std::string& a, const std::string& b) {
      return std::strtod(a.c_str(), nullptr) < std::strtod(b.c_str(), nullptr);
    });
  } else {
    std::sort(values.begin(), values.end());
  }
}

}  // namespace

std::vector<GroupStats> group_stats(const std::vector<core::RunDescriptor>& descriptors,
                                    const std::vector<CellResult>& cells) {
  struct Acc {
    std::vector<double> sojourns;
    double makespan_sum = 0;
    double cost_sum = 0;
    int failed = 0;
  };
  std::map<std::string, Acc> by_key;
  for (const CellResult& cell : cells) {
    Acc& acc = by_key[cell_key(descriptors[cell.index])];
    if (!cell.ok) {
      ++acc.failed;
      continue;
    }
    acc.sojourns.push_back(cell.record.sojourn_th);
    acc.makespan_sum += cell.record.makespan;
    acc.cost_sum += cell.record.cost;
  }

  std::vector<GroupStats> out;
  out.reserve(by_key.size());
  for (auto& [key, acc] : by_key) {
    GroupStats g;
    g.cell_key = key;
    g.runs = static_cast<int>(acc.sojourns.size());
    g.failed = acc.failed;
    if (g.runs > 0) {
      std::sort(acc.sojourns.begin(), acc.sojourns.end());
      double sum = 0;
      for (const double s : acc.sojourns) sum += s;
      g.mean = sum / g.runs;
      g.p50 = percentile(acc.sojourns, 0.50);
      g.p99 = percentile(acc.sojourns, 0.99);
      g.min = acc.sojourns.front();
      g.max = acc.sojourns.back();
      g.makespan_mean = acc.makespan_sum / g.runs;
      g.cost_mean = acc.cost_sum / g.runs;
    }
    out.push_back(std::move(g));
  }
  return out;
}

PivotTable pivot(const std::vector<core::RunDescriptor>& descriptors,
                 const std::vector<CellResult>& cells) {
  PivotTable table;
  // Axis inventory over the descriptors that actually ran.
  std::map<std::string, std::set<std::string>> axis_values;
  for (const CellResult& cell : cells) {
    for (const auto& [key, val] : descriptors[cell.index].items()) {
      axis_values[key].insert(val);
    }
  }
  if (axis_values.empty()) return table;

  // The scheduler × primitive sojourn matrix when both axes are really
  // swept (the policy.matrix shape), then the paper's fig2 layout when
  // available; otherwise the first two multi-valued non-seed axes in
  // sorted key order.
  const auto multi = [&](const char* key) {
    const auto at = axis_values.find(key);
    return at != axis_values.end() && at->second.size() >= 2;
  };
  const bool sched_shape = multi("scheduler") && multi("primitive");
  const bool fig2_shape = axis_values.contains("r") && axis_values.contains("primitive");
  if (sched_shape) {
    table.row_axis = "scheduler";
    table.col_axis = "primitive";
  } else if (fig2_shape) {
    table.row_axis = "r";
    table.col_axis = "primitive";
  } else {
    for (const auto& [key, vals] : axis_values) {
      if (key == "seed" || vals.size() < 2) continue;
      if (table.row_axis.empty()) {
        table.row_axis = key;
      } else if (table.col_axis.empty()) {
        table.col_axis = key;
        break;
      }
    }
    if (table.row_axis.empty()) table.row_axis = axis_values.begin()->first;
  }

  table.rows.assign(axis_values[table.row_axis].begin(), axis_values[table.row_axis].end());
  sort_axis_values(table.rows);
  if (!table.col_axis.empty()) {
    table.cols.assign(axis_values[table.col_axis].begin(), axis_values[table.col_axis].end());
    sort_axis_values(table.cols);
  } else {
    table.cols = {"all"};
  }

  table.values.assign(table.rows.size(), std::vector<double>(table.cols.size(), -1));
  table.p50.assign(table.rows.size(), std::vector<double>(table.cols.size(), -1));
  table.p99.assign(table.rows.size(), std::vector<double>(table.cols.size(), -1));
  for (std::size_t r = 0; r < table.rows.size(); ++r) {
    for (std::size_t c = 0; c < table.cols.size(); ++c) {
      std::vector<double> samples;
      for (const CellResult& cell : cells) {
        if (!cell.ok) continue;
        const core::RunDescriptor& d = descriptors[cell.index];
        if (d.get(table.row_axis, "") != table.rows[r]) continue;
        if (!table.col_axis.empty() && d.get(table.col_axis, "") != table.cols[c]) continue;
        samples.push_back(cell.record.sojourn_th);
      }
      if (samples.empty()) continue;
      std::sort(samples.begin(), samples.end());
      double sum = 0;
      for (const double s : samples) sum += s;
      table.values[r][c] = sum / static_cast<double>(samples.size());
      table.p50[r][c] = percentile(samples, 0.50);
      table.p99[r][c] = percentile(samples, 0.99);
    }
  }
  return table;
}

std::vector<FrontierPoint> frontier(const std::vector<core::RunDescriptor>& descriptors,
                                    const std::vector<CellResult>& cells) {
  struct Acc {
    int runs = 0;
    double cost_sum = 0, sojourn_sum = 0, makespan_sum = 0;
  };
  // Key: (node_mix text, revoke_react text). std::map gives sorted
  // traversal; the final sort below fixes numeric node_mix order.
  std::map<std::pair<std::string, std::string>, Acc> by_point;
  for (const CellResult& cell : cells) {
    if (!cell.ok) continue;
    const core::RunDescriptor& d = descriptors[cell.index];
    const std::string* mix = d.find("node_mix");
    const std::string* react = d.find("revoke_react");
    if (mix == nullptr || react == nullptr) continue;
    Acc& acc = by_point[{*mix, *react}];
    ++acc.runs;
    acc.cost_sum += cell.record.cost;
    acc.sojourn_sum += cell.record.sojourn_th;
    acc.makespan_sum += cell.record.makespan;
  }

  std::vector<FrontierPoint> out;
  out.reserve(by_point.size());
  for (const auto& [key, acc] : by_point) {
    FrontierPoint p;
    p.node_mix = key.first;
    p.revoke_react = key.second;
    p.runs = acc.runs;
    p.cost_mean = acc.cost_sum / acc.runs;
    p.sojourn_mean = acc.sojourn_sum / acc.runs;
    p.makespan_mean = acc.makespan_sum / acc.runs;
    out.push_back(std::move(p));
  }
  std::sort(out.begin(), out.end(), [](const FrontierPoint& a, const FrontierPoint& b) {
    const double am = std::strtod(a.node_mix.c_str(), nullptr);
    const double bm = std::strtod(b.node_mix.c_str(), nullptr);
    if (am != bm) return am < bm;
    return a.revoke_react < b.revoke_react;
  });
  return out;
}

void write_summary_json(std::ostream& out,
                        const std::vector<core::RunDescriptor>& descriptors,
                        const std::vector<CellResult>& cells, bool cancelled,
                        const std::vector<std::pair<std::string, std::uint64_t>>& harness,
                        double wall_ms) {
  // Completion order is pool-scheduling noise; canonical order is not.
  std::vector<const CellResult*> ordered;
  ordered.reserve(cells.size());
  for (const CellResult& cell : cells) ordered.push_back(&cell);
  std::sort(ordered.begin(), ordered.end(), [&](const CellResult* a, const CellResult* b) {
    return descriptors[a->index].canonical() < descriptors[b->index].canonical();
  });

  int ok_count = 0;
  for (const CellResult& cell : cells) ok_count += cell.ok ? 1 : 0;

  out << "{\"schema\":\"osapd-summary-v1\"";
  out << ",\"cancelled\":" << (cancelled ? "true" : "false");
  out << ",\"cells_total\":" << descriptors.size();
  out << ",\"cells_done\":" << cells.size();
  out << ",\"cells_ok\":" << ok_count;
  out << ",\"cells_failed\":" << (cells.size() - static_cast<std::size_t>(ok_count));

  out << ",\"results\":[";
  bool first = true;
  for (const CellResult* cell : ordered) {
    const core::ResultRecord& rec = cell->record;
    if (!first) out << ',';
    first = false;
    out << "{\"descriptor\":\"" << json_escape(descriptors[cell->index].canonical()) << '"'
        << ",\"config_digest\":\"" << hex_u64(descriptors[cell->index].digest()) << '"'
        << ",\"ok\":" << (cell->ok ? "true" : "false") << ",\"error\":\""
        << json_escape(cell->error) << '"' << ",\"trace_digest\":\""
        << hex_u64(rec.trace_digest) << '"' << ",\"events\":" << rec.events
        << ",\"jobs\":" << rec.jobs << ",\"sojourn_th\":" << json_num(rec.sojourn_th)
        << ",\"sojourn_tl\":" << json_num(rec.sojourn_tl)
        << ",\"makespan\":" << json_num(rec.makespan) << ",\"cost\":" << json_num(rec.cost)
        << ",\"tl_swapped_out_mib\":" << json_num(rec.tl_swapped_out_mib) << '}';
  }
  out << ']';

  out << ",\"groups\":[";
  first = true;
  for (const GroupStats& g : group_stats(descriptors, cells)) {
    if (!first) out << ',';
    first = false;
    out << "{\"cell\":\"" << json_escape(g.cell_key) << "\",\"runs\":" << g.runs
        << ",\"failed\":" << g.failed << ",\"sojourn_th\":{\"mean\":" << json_num(g.mean)
        << ",\"p50\":" << json_num(g.p50) << ",\"p99\":" << json_num(g.p99)
        << ",\"min\":" << json_num(g.min) << ",\"max\":" << json_num(g.max)
        << "},\"makespan_mean\":" << json_num(g.makespan_mean)
        << ",\"cost_mean\":" << json_num(g.cost_mean) << '}';
  }
  out << ']';

  const PivotTable table = pivot(descriptors, cells);
  out << ",\"pivot\":{\"row_axis\":\"" << json_escape(table.row_axis) << "\",\"col_axis\":\""
      << json_escape(table.col_axis) << "\",\"rows\":[";
  for (std::size_t r = 0; r < table.rows.size(); ++r) {
    out << (r > 0 ? "," : "") << '"' << json_escape(table.rows[r]) << '"';
  }
  out << "],\"cols\":[";
  for (std::size_t c = 0; c < table.cols.size(); ++c) {
    out << (c > 0 ? "," : "") << '"' << json_escape(table.cols[c]) << '"';
  }
  out << "],\"values\":[";
  const auto write_matrix = [&out](const std::vector<std::vector<double>>& m) {
    for (std::size_t r = 0; r < m.size(); ++r) {
      out << (r > 0 ? "," : "") << '[';
      for (std::size_t c = 0; c < m[r].size(); ++c) {
        out << (c > 0 ? "," : "") << json_num(m[r][c]);
      }
      out << ']';
    }
  };
  write_matrix(table.values);
  out << "],\"p50\":[";
  write_matrix(table.p50);
  out << "],\"p99\":[";
  write_matrix(table.p99);
  out << "]}";

  // Cost vs. mean-sojourn frontier (docs/REVOKE.md) — empty for
  // matrices without the revocation axes.
  out << ",\"frontier\":[";
  first = true;
  for (const FrontierPoint& p : frontier(descriptors, cells)) {
    if (!first) out << ',';
    first = false;
    out << "{\"node_mix\":\"" << json_escape(p.node_mix) << "\",\"revoke_react\":\""
        << json_escape(p.revoke_react) << "\",\"runs\":" << p.runs
        << ",\"cost_mean\":" << json_num(p.cost_mean)
        << ",\"sojourn_mean\":" << json_num(p.sojourn_mean)
        << ",\"makespan_mean\":" << json_num(p.makespan_mean) << '}';
  }
  out << ']';

  // Volatile tail: harness counters and wall time vary run to run (cache
  // hits, worker deaths, real time) — CI strips these before diffing.
  out << ",\"counters\":{";
  first = true;
  for (const auto& [name, count] : harness) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(name) << "\":" << count;
  }
  out << "},\"wall_ms\":" << json_num(wall_ms);
  out << "}\n";
}

}  // namespace osap::osapd
