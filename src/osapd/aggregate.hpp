// Streamed-result aggregation: cells grouped across seeds, summary
// statistics, and the fig2-style pivot table.
//
// A "group" is every cell sharing a cell_key (canonical descriptor
// minus the seed axis); its seeds are replicates and the summary
// reports mean/p50/p99/min/max of the TH sojourn and the makespan per
// group. The pivot table rearranges groups along two axes — the
// scheduler × primitive sojourn matrix when both axes are swept
// (configs/policy.matrix), else the paper's figure 2 layout (r down the
// rows, primitive across the columns) — with the mean, p50, and p99 TH
// sojourn in each cell.
//
// All traversal is over sorted keys (std::map, sorted vectors), so the
// summary JSON is byte-deterministic for a given result set no matter
// what order the pool completed cells in.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "core/run.hpp"
#include "osapd/pool.hpp"

namespace osap::osapd {

struct GroupStats {
  std::string cell_key;
  int runs = 0;  // successful replicates
  int failed = 0;
  double mean = 0, p50 = 0, p99 = 0, min = 0, max = 0;  // sojourn_th
  double makespan_mean = 0;
  double cost_mean = 0;
};

/// One point of the cost vs. mean-sojourn frontier: all successful cells
/// sharing a (node_mix, revoke_react) pair, averaged across every other
/// axis (seeds, schedulers). docs/REVOKE.md.
struct FrontierPoint {
  std::string node_mix;
  std::string revoke_react;
  int runs = 0;
  double cost_mean = 0;
  double sojourn_mean = 0;
  double makespan_mean = 0;
};

struct PivotTable {
  std::string row_axis;  // "" when the matrix has no second dimension
  std::string col_axis;
  std::vector<std::string> rows;
  std::vector<std::string> cols;
  /// values[r][c] = mean TH sojourn of the matching group; NaN-free:
  /// cells with no successful run hold -1. p50/p99 are the nearest-rank
  /// percentiles over the same sample set, same -1 convention.
  std::vector<std::vector<double>> values;
  std::vector<std::vector<double>> p50;
  std::vector<std::vector<double>> p99;
};

/// Group terminal cell results by cell_key and compute per-group stats.
/// `descriptors` backs the CellResult indices.
[[nodiscard]] std::vector<GroupStats> group_stats(
    const std::vector<core::RunDescriptor>& descriptors,
    const std::vector<CellResult>& cells);

/// Choose pivot axes (prefers "scheduler" rows x "primitive" cols when
/// both are multi-valued, then "r" x "primitive", else the first two
/// multi-valued non-seed axes) and fill the table with mean/p50/p99 TH
/// sojourns. Values sort numerically when every value parses as a
/// number, lexicographically otherwise.
[[nodiscard]] PivotTable pivot(const std::vector<core::RunDescriptor>& descriptors,
                               const std::vector<CellResult>& cells);

/// The revocation frontier: one point per (node_mix, revoke_react) pair,
/// sorted by numeric node_mix then reaction name. Empty unless both axes
/// appear in the descriptors: two_job matrices never have them; trace
/// matrices always do after normalization (legacy ones collapse to the
/// single inert node_mix=0/revoke_react=none point).
[[nodiscard]] std::vector<FrontierPoint> frontier(
    const std::vector<core::RunDescriptor>& descriptors,
    const std::vector<CellResult>& cells);

/// The final matrix summary JSON (docs/OSAPD.md). Deterministic given
/// the same records: per-cell results sorted by canonical descriptor
/// (wall time, cache provenance, and attempt counts are excluded from
/// the "results" section and reported separately), then groups, then
/// the pivot.
void write_summary_json(std::ostream& out,
                        const std::vector<core::RunDescriptor>& descriptors,
                        const std::vector<CellResult>& cells, bool cancelled,
                        const std::vector<std::pair<std::string, std::uint64_t>>& harness,
                        double wall_ms);

}  // namespace osap::osapd
