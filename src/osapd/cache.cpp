#include "osapd/cache.hpp"

#include <fstream>
#include <system_error>

#include "common/error.hpp"
#include "osapd/record.hpp"

namespace osap::osapd {

namespace {

std::filesystem::path entry_path(const std::filesystem::path& dir,
                                 const core::RunDescriptor& d) {
  return dir / (d.digest_hex() + ".json");
}

}  // namespace

ResultCache::ResultCache(std::filesystem::path dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  OSAP_CHECK_MSG(!ec, "cache dir '" << dir_.string() << "': " << ec.message());
}

std::optional<ResultCache::Hit> ResultCache::lookup(const core::RunDescriptor& d) {
  const std::filesystem::path path = entry_path(dir_, d);
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();

  std::optional<ParsedRecord> parsed = parse_record(bytes);
  const bool trusted = parsed.has_value() && parsed->descriptor == d.canonical() &&
                       parsed->record.config_digest == d.digest();
  if (!trusted) {
    // Corrupt or colliding entry: move it aside so it can never answer
    // again, and keep the bytes on disk for post-mortem.
    std::error_code ec;
    std::filesystem::rename(path, path.string() + ".quarantined", ec);
    if (ec) std::filesystem::remove(path, ec);
    ++quarantined_;
    return std::nullopt;
  }
  return Hit{std::move(parsed->record), std::move(bytes)};
}

void ResultCache::store(const core::RunDescriptor& d, const std::string& record_json) {
  const std::filesystem::path path = entry_path(dir_, d);
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    OSAP_CHECK_MSG(out.good(), "cache store: cannot open '" << tmp.string() << "'");
    out << record_json;
    out.flush();
    OSAP_CHECK_MSG(out.good(), "cache store: short write to '" << tmp.string() << "'");
  }
  // rename(2) within one directory is atomic: readers see old or new
  // bytes, never a torn file.
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  OSAP_CHECK_MSG(!ec, "cache store: rename to '" << path.string() << "': " << ec.message());
}

}  // namespace osap::osapd
