// Matrix expansion: MatrixSpec cross product -> normalized run
// descriptors, in a deterministic order.
//
// Axes are walked in sorted key order and the odometer spins the LAST
// key fastest (row-major over the sorted key list), so the cell at index
// i is a pure function of the spec. Every descriptor is normalized
// through the core facade before it is returned: defaults are
// materialized, so the config digest of a cell never depends on whether
// the matrix spelled a default out.
#pragma once

#include <string>
#include <vector>

#include "core/run.hpp"
#include "osapd/matrix.hpp"

namespace osap::osapd {

/// Expand the cross product. Throws SimError (via normalization) when an
/// axis key is unknown to the declared workload — a sweep full of
/// mis-keyed cells must fail loudly before anything runs.
[[nodiscard]] std::vector<core::RunDescriptor> expand(const MatrixSpec& spec);

/// The aggregation identity of a descriptor: its canonical text minus
/// the `seed` axis. Cells equal up to seed form one matrix cell whose
/// seeds are replicates (mean/p50/p99 in the summary).
[[nodiscard]] std::string cell_key(const core::RunDescriptor& d);

}  // namespace osap::osapd
