// Experiment-matrix spec: the `.matrix` file format and its `--set`
// CLI overlay (docs/OSAPD.md).
//
// A matrix is a map from descriptor key to the list of values that axis
// takes; the cross product of all axes is the concrete cell list. The
// file format is line-based:
//
//   # fig2: the paper's r x primitive sweep
//   workload  = two_job
//   primitive = wait, kill, susp
//   r         = 0.1, 0.2, 0.3
//   seed      = 1, 2
//
// Keys are [a-z0-9_]+; values are comma-separated and trimmed; a single
// value is a fixed (non-swept) setting. `--set key=a,b,c` replaces the
// axis wholesale, so a checked-in matrix can be narrowed or widened from
// the command line without editing the file.
//
// Axes live in a std::map, so every traversal — expansion, printing,
// digesting — walks keys in sorted order (`det::sorted_keys` semantics):
// the cell order is a pure function of the spec, never of insertion or
// hash order.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace osap::osapd {

struct MatrixSpec {
  /// key -> ordered axis values (at least one each).
  std::map<std::string, std::vector<std::string>> axes;

  /// Total cell count (product of axis sizes; 0 for an empty spec).
  [[nodiscard]] std::size_t cells() const;
};

/// Parse a `.matrix` stream; `source` names it in diagnostics. Throws
/// SimError with a line number on malformed input or duplicate keys.
[[nodiscard]] MatrixSpec parse_matrix(std::istream& in, const std::string& source);

/// Apply one `--set key=v1,v2` overlay: replaces (or introduces) the
/// whole axis. Throws SimError on malformed input.
void apply_set(MatrixSpec& spec, const std::string& overlay);

}  // namespace osap::osapd
