// Sweep orchestration: cache scan -> worker pool -> streamed progress.
//
// `run_sweep` is the one entry point both the osapd CLI and the tests
// drive. It resolves every descriptor to a terminal CellResult: cache
// hits immediately (byte-identical stored records), the rest through
// the forked worker pool, storing each fresh success back into the
// cache as it lands — so a sweep interrupted by SIGINT leaves every
// completed cell on disk and the next invocation picks up where it
// stopped. Failed cells are never cached (a transient worker death must
// not poison future sweeps).
//
// Progress streams as ndjson, one object per line, on the supplied
// stream: {"event":"start"...}, one {"event":"cell"...} per terminal
// cell with its provenance ("cache" or "run"), pool lifecycle events,
// and {"event":"cancelled"...} when draining after SIGINT.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/run.hpp"
#include "osapd/pool.hpp"

namespace osap::osapd {

struct SweepOptions {
  PoolOptions pool;
  /// On-disk result cache directory; "" disables caching entirely.
  std::string cache_dir;
  /// ndjson progress stream; nullptr silences progress.
  std::ostream* progress = nullptr;
};

struct SweepOutcome {
  /// One terminal result per resolved cell, in completion order (cache
  /// hits first, then pool completion order).
  std::vector<CellResult> cells;
  /// True when SIGINT drained the sweep before every cell resolved; the
  /// summary is partial but every resolved cell is final.
  bool cancelled = false;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_stores = 0;
  std::uint64_t cache_quarantined = 0;
  std::uint64_t worker_deaths = 0;
  std::uint64_t rescheduled = 0;
  std::uint64_t rss_aborts = 0;
};

/// Resolve every descriptor (must already be normalized, as expand()
/// returns them) to a terminal result.
[[nodiscard]] SweepOutcome run_sweep(const std::vector<core::RunDescriptor>& descriptors,
                                     const SweepOptions& opts);

/// The harness counter block for the summary JSON, under the names
/// registered in src/trace/names.hpp (osapd.*).
[[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> harness_counters(
    const SweepOutcome& outcome, std::size_t cells_total);

}  // namespace osap::osapd
