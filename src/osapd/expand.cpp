#include "osapd/expand.hpp"

#include "common/error.hpp"

namespace osap::osapd {

std::vector<core::RunDescriptor> expand(const MatrixSpec& spec) {
  OSAP_CHECK_MSG(!spec.axes.empty(), "cannot expand an empty matrix");
  std::vector<core::RunDescriptor> out;
  out.reserve(spec.cells());
  // Odometer over the sorted axis list; digits[k] indexes axis k's value
  // list and the last axis increments first.
  std::vector<const std::pair<const std::string, std::vector<std::string>>*> axes;
  axes.reserve(spec.axes.size());
  for (const auto& axis : spec.axes) axes.push_back(&axis);
  std::vector<std::size_t> digits(axes.size(), 0);
  for (;;) {
    core::RunDescriptor d;
    for (std::size_t k = 0; k < axes.size(); ++k) {
      d.set(axes[k]->first, axes[k]->second[digits[k]]);
    }
    out.push_back(core::normalize_descriptor(std::move(d)));
    std::size_t k = axes.size();
    while (k > 0) {
      --k;
      if (++digits[k] < axes[k]->second.size()) break;
      digits[k] = 0;
      if (k == 0) return out;
    }
  }
}

std::string cell_key(const core::RunDescriptor& d) {
  std::string out;
  for (const auto& [key, value] : d.items()) {
    if (key == "seed") continue;
    if (!out.empty()) out += ';';
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

}  // namespace osap::osapd
