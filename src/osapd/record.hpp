// Result-record serialization: the one JSON shape that flows over the
// worker pipe, into the content-addressed cache, and into the summary.
//
// Serialization is canonical — fixed field order, %.17g doubles — so "a
// cache hit returns a byte-identical record" is a meaningful guarantee:
// the stored bytes are the record, and equality of bytes is equality of
// results. The parser accepts exactly what serialize_record emits (plus
// whitespace); anything else is a parse failure, which the cache treats
// as corruption and quarantines.
#pragma once

#include <optional>
#include <string>

#include "core/run.hpp"

namespace osap::osapd {

/// One line, no trailing newline. `descriptor` must be the normalized
/// canonical text the record was computed from — the cache verifies it
/// against the probing descriptor on every hit (digest-collision guard).
[[nodiscard]] std::string serialize_record(const std::string& descriptor,
                                           const core::ResultRecord& rec);

struct ParsedRecord {
  std::string descriptor;
  core::ResultRecord record;
};

/// std::nullopt on any malformed input — never a half-filled record.
[[nodiscard]] std::optional<ParsedRecord> parse_record(const std::string& json);

/// JSON string escaping for the few free-text fields (error reasons,
/// descriptor texts) embedded in records and summaries.
[[nodiscard]] std::string json_escape(const std::string& s);

/// %.17g — shortest text that round-trips a double bit-exactly.
[[nodiscard]] std::string json_num(double v);

/// 16 lowercase hex digits — digests are serialized as strings because
/// JSON numbers cannot carry 64 bits exactly.
[[nodiscard]] std::string hex_u64(std::uint64_t v);

}  // namespace osap::osapd
