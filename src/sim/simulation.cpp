#include "sim/simulation.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"

namespace osap {

Simulation::Simulation() {
  Logger::instance().set_clock([this] { return now_; });
  trace_.tracer().set_clock([this] { return now_; });
}

Simulation::~Simulation() { Logger::instance().clear_clock(); }

EventId Simulation::at(SimTime t, std::function<void()> fn) {
  OSAP_CHECK_MSG(t >= now_, "cannot schedule in the past: " << t << " < " << now_);
  return queue_.push(t, std::move(fn));
}

EventId Simulation::after(Duration d, std::function<void()> fn) {
  if (d < 0) d = 0;
  return queue_.push(now_ + d, std::move(fn));
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  OSAP_CHECK(fired.time >= now_);
  if (audit_cfg_.enabled) {
    if (fired.time == now_ && processed_ > 0) {
      if (++stalled_events_ >= audit_cfg_.max_stalled_events) {
        watchdog_abort(fired.time, fired.id);
      }
    } else {
      stalled_events_ = 0;
    }
  }
  now_ = fired.time;
  ++processed_;
  trace_digest_.mix(fired.time);
  trace_digest_.mix(fired.id);
  if (audit_cfg_.enabled && audit_cfg_.min_advance_window > 0 &&
      processed_ % audit_cfg_.min_advance_window == 0) {
    const Duration advanced = now_ - window_anchor_;
    if (advanced < audit_cfg_.min_advance_floor) min_advance_abort(advanced);
    window_anchor_ = now_;
  }
  trace_.profiler().add(trace::HotPath::EventDispatch, queue_.pending());
  fired.fn();
  if (audit_cfg_.enabled && audits_.size() > 0 && processed_ % audit_cfg_.stride == 0) {
    sweep_audits();
  }
  return true;
}

void Simulation::audit_now() const {
  std::vector<std::string> violations;
  audits_.run(violations);
  if (!violations.empty()) audit_abort(violations);
}

void Simulation::sweep_audits() {
  std::vector<std::string> violations;
  const AuditRegistry::SweepStats stats = audits_.sweep(violations);
  trace_.profiler().add(trace::HotPath::AuditSweep, stats.swept);
  if (!violations.empty()) audit_abort(violations);
}

void Simulation::audit_abort(const std::vector<std::string>& violations) const {
  std::ostringstream os;
  os << "invariant audit failed at t=" << now_ << " after " << processed_
     << " events (" << queue_.pending() << " pending):";
  for (const std::string& v : violations) os << "\n  " << v;
  os << "\n" << audits_.dump_all();
  OSAP_LOG(Error, "audit") << os.str();
  throw SimError(os.str());
}

void Simulation::write_observability_json(std::ostream& os) const {
  os << "{\n\"events_processed\":" << processed_ << ",\n";
  {
    std::ostringstream digest;
    digest << "0x" << std::hex << trace_digest_.value();
    os << "\"trace_digest\":\"" << digest.str() << "\",\n";
  }
  trace_.counters().write_json(os);
  os << ",\n";
  trace_.profiler().write_json(os);
  os << ",\n\"audit_sweeps\":{\"sweeps\":" << audits_.sweeps() << ",\"auditors\":[";
  std::vector<AuditRegistry::AuditorCost> costs = audits_.costs();
  std::sort(costs.begin(), costs.end(),
            [](const auto& a, const auto& b) { return a.label < b.label; });
  bool first = true;
  for (const auto& c : costs) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"label\":\"" << c.label << "\",\"swept\":" << c.swept
       << ",\"skipped\":" << c.skipped << "}";
  }
  os << "\n]}\n}\n";
}

void Simulation::min_advance_abort(Duration advanced) const {
  std::ostringstream os;
  os << "watchdog: simulated time crept only " << advanced << " s over the last "
     << audit_cfg_.min_advance_window << " events (floor "
     << audit_cfg_.min_advance_floor << " s, now t=" << now_ << ", " << processed_
     << " processed, " << queue_.pending()
     << " pending) — likely a creeping-time event livelock\n"
     << audits_.dump_all();
  OSAP_LOG(Error, "audit") << os.str();
  throw SimError(os.str());
}

void Simulation::watchdog_abort(SimTime event_time, EventId event_id) const {
  std::ostringstream os;
  os << "watchdog: simulated time stalled at t=" << event_time << " for " << stalled_events_
     << " consecutive events (current event id " << event_id << ", " << processed_
     << " processed, " << queue_.pending() << " pending) — likely a zero-delay event livelock\n"
     << audits_.dump_all();
  OSAP_LOG(Error, "audit") << os.str();
  throw SimError(os.str());
}

SimTime Simulation::run() {
  while (step()) {
  }
  return now_;
}

void Simulation::run_until(SimTime t) {
  OSAP_CHECK(t >= now_);
  while (!queue_.empty() && queue_.next_time() <= t) step();
  now_ = t;
}

}  // namespace osap
