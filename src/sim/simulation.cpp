#include "sim/simulation.hpp"

#include "common/error.hpp"
#include "common/log.hpp"

namespace osap {

Simulation::Simulation() {
  Logger::instance().set_clock([this] { return now_; });
}

Simulation::~Simulation() { Logger::instance().clear_clock(); }

EventId Simulation::at(SimTime t, std::function<void()> fn) {
  OSAP_CHECK_MSG(t >= now_, "cannot schedule in the past: " << t << " < " << now_);
  return queue_.push(t, std::move(fn));
}

EventId Simulation::after(Duration d, std::function<void()> fn) {
  if (d < 0) d = 0;
  return queue_.push(now_ + d, std::move(fn));
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  OSAP_CHECK(fired.time >= now_);
  now_ = fired.time;
  ++processed_;
  fired.fn();
  return true;
}

SimTime Simulation::run() {
  while (step()) {
  }
  return now_;
}

void Simulation::run_until(SimTime t) {
  OSAP_CHECK(t >= now_);
  while (!queue_.empty() && queue_.next_time() <= t) step();
  now_ = t;
}

}  // namespace osap
