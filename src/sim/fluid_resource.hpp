// Fluid-flow resource model.
//
// A FluidResource serves a set of consumers that each want to move a given
// amount of "work units" (bytes for disks and NICs, cpu-seconds for CPUs)
// through a shared capacity (units/second). Active consumers share the
// capacity by max-min fairness (water-filling) respecting per-consumer rate
// caps — e.g. a process on an 8-core CPU can never exceed 1 core.
//
// Whenever the consumer set changes, progress since the last change is
// settled and rates are recomputed; a single pending event marks the next
// completion. This gives exact piecewise-linear progress with O(n) work
// per state change, the standard fluid approximation for system-level DES.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"
#include "sim/simulation.hpp"

namespace osap {

class FluidResource {
 public:
  using ConsumerId = std::uint64_t;
  static constexpr double kUnlimited = std::numeric_limits<double>::infinity();

  /// `capacity` in units/second; kUnlimited allowed only if every consumer
  /// has a finite rate cap.
  FluidResource(Simulation& sim, double capacity, std::string name);
  ~FluidResource();
  FluidResource(const FluidResource&) = delete;
  FluidResource& operator=(const FluidResource&) = delete;

  /// Add a consumer wanting to move `demand` units; `on_complete` fires
  /// when the demand is fully served. `rate_cap` bounds this consumer's
  /// share (units/second).
  ConsumerId add(double demand, double rate_cap, std::function<void()> on_complete);
  ConsumerId add(double demand, std::function<void()> on_complete) {
    return add(demand, kUnlimited, std::move(on_complete));
  }

  /// Pause a consumer: it stops receiving capacity but keeps its remaining
  /// demand (a SIGTSTP'd process's in-flight I/O and CPU).
  void pause(ConsumerId id);

  /// Resume a paused consumer.
  void resume(ConsumerId id);

  /// Remove a consumer without firing its callback (killed process).
  void cancel(ConsumerId id);

  /// Extend an in-flight consumer's demand (open-ended streams).
  void add_demand(ConsumerId id, double extra);

  [[nodiscard]] bool contains(ConsumerId id) const;
  [[nodiscard]] double remaining(ConsumerId id) const;
  [[nodiscard]] double served(ConsumerId id) const;
  /// Current allocation in units/second (0 when paused).
  [[nodiscard]] double rate(ConsumerId id) const;

  [[nodiscard]] double capacity() const noexcept { return capacity_; }
  void set_capacity(double capacity);

  [[nodiscard]] std::size_t active_count() const noexcept { return active_.size(); }
  /// Total units served across all consumers, ever.
  [[nodiscard]] double total_served() const noexcept { return total_served_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  enum class State { Active, Paused };
  struct Consumer {
    double remaining = 0;
    double cap = kUnlimited;
    double rate = 0;       // current allocation; valid while Active
    double served = 0;
    State state = State::Active;
    std::function<void()> on_complete;
  };

  /// Advance served/remaining to `now`, detach completed consumers, refresh
  /// rates, re-arm the completion timer, then fire completion callbacks.
  void update();

  void settle(std::vector<ConsumerId>& completed);
  void recompute_rates();
  void rearm();

  Simulation& sim_;
  double capacity_;
  std::string name_;
  std::unordered_map<ConsumerId, Consumer> consumers_;
  std::vector<ConsumerId> active_;
  SimTime last_settle_ = 0;
  EventId timer_ = 0;
  ConsumerId next_id_ = 1;
  double total_served_ = 0;
};

}  // namespace osap
