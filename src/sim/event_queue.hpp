// Priority queue of timestamped events with stable FIFO tie-breaking and
// O(1) cancellation (lazy deletion on pop).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/time.hpp"

namespace osap {

/// Handle for a scheduled event; usable to cancel it before it fires.
using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Schedule `fn` at absolute time `t`. Events at equal times fire in
  /// insertion order.
  EventId push(SimTime t, std::function<void()> fn);

  /// Cancel a pending event. Cancelling an already-fired or unknown id is
  /// a harmless no-op (the id space is never reused).
  void cancel(EventId id);

  [[nodiscard]] bool empty() const noexcept;

  /// Time of the earliest pending event; kTimeNever when empty.
  [[nodiscard]] SimTime next_time() const noexcept;

  /// Remove and return the earliest pending event.
  /// Precondition: !empty().
  struct Fired {
    SimTime time;
    EventId id;
    std::function<void()> fn;
  };
  Fired pop();

  [[nodiscard]] std::size_t pending() const noexcept { return live_.size(); }

  /// Debug view of pending (time, id) pairs, unordered.
  [[nodiscard]] std::vector<std::pair<SimTime, EventId>> pending_events() const;

 private:
  struct Entry {
    SimTime time;
    EventId id;
    // `fn` lives in the heap entry; moved out on pop.
    mutable std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // stable FIFO for ties
    }
  };

  void drop_cancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  /// Ids currently pending in the heap; cancelling removes from here.
  std::unordered_set<EventId> live_;
  /// Cancelled ids whose heap entries are lazily dropped on pop.
  std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 1;
};

}  // namespace osap
