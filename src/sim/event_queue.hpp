// Calendar queue of timestamped events with stable FIFO tie-breaking and
// O(1) cancellation that releases the closure eagerly.
//
// Structure (Brown's calendar queue, 1988): events hash into an array of
// "day" buckets by floor(time / width); pop scans the current day for
// the earliest (time, id) pair and advances day by day, falling back to
// a direct search when the calendar is sparse. The bucket count tracks
// the number of pending events (amortized O(1) resize) so buckets stay
// short and push/pop are O(1) for the steady-state timer populations a
// warehouse-scale simulation carries. Pop order is the total order
// (time, then insertion id) — exactly the binary heap's order, so the
// event-stream digest is unchanged by construction (docs/PERF.md).
//
// Closures live in a slot arena, not in the calendar: bucket entries are
// small PODs {time, id, slot}, and cancel() frees the slot (and the
// std::function plus everything it captures) immediately. A cancelled
// entry leaves only a POD tombstone behind, detected on scan by an
// id mismatch against the arena slot and dropped in passing; when
// tombstones outnumber live events the calendar is compacted outright.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/time.hpp"

namespace osap {

/// Handle for a scheduled event; usable to cancel it before it fires.
using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Schedule `fn` at absolute time `t`. Events at equal times fire in
  /// insertion order.
  EventId push(SimTime t, std::function<void()> fn);

  /// Cancel a pending event, releasing its closure immediately.
  /// Cancelling an already-fired or unknown id is a harmless no-op (the
  /// id space is never reused).
  void cancel(EventId id);

  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }

  /// Time of the earliest pending event; kTimeNever when empty. Advances
  /// the calendar cursor and prunes tombstones in passing, hence
  /// non-const (the old const version hid this behind a const_cast).
  [[nodiscard]] SimTime next_time();

  /// Remove and return the earliest pending event.
  /// Precondition: !empty().
  struct Fired {
    SimTime time;
    EventId id;
    std::function<void()> fn;
  };
  Fired pop();

  [[nodiscard]] std::size_t pending() const noexcept { return live_; }

  /// Cancelled tombstones still occupying calendar buckets (their
  /// closures are already freed). Bounded by compaction; exposed for the
  /// cancellation-storm stress test.
  [[nodiscard]] std::size_t cancelled_entries() const noexcept { return cancelled_; }

  /// Visit every pending (time, id) pair, unordered, without copying or
  /// draining anything: O(pending) per full iteration.
  template <typename Fn>
  void for_each_pending(Fn&& fn) const {
    for (const std::vector<Entry>& bucket : buckets_) {
      for (const Entry& e : bucket) {
        if (arena_[e.slot].id == e.id) fn(e.time, e.id);
      }
    }
  }

  /// Debug view of pending (time, id) pairs, unordered.
  [[nodiscard]] std::vector<std::pair<SimTime, EventId>> pending_events() const;

 private:
  /// POD calendar entry; the closure lives in arena_[slot]. Stale when
  /// arena_[slot].id != id (the event was cancelled, and the slot is
  /// free or already reused by a later event). The entry's day is
  /// computed once at filing time (and again on rebuilds, when the width
  /// changes) so the day-scan in find_min() compares integers instead of
  /// dividing per entry.
  struct Entry {
    SimTime time;
    EventId id;
    std::uint64_t day;
    std::uint32_t slot;
  };
  struct Slot {
    std::function<void()> fn;
    EventId id = 0;  // 0 = free
    std::uint32_t next_free = kNoSlot;
  };
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  [[nodiscard]] std::uint64_t day_of(SimTime t) const noexcept;
  /// Locate the earliest pending entry into peek_*; false when empty.
  bool find_min();
  /// Drop stale tombstones everywhere; optionally rebuild with
  /// `new_buckets` buckets and a width re-estimated from the survivors.
  void compact(std::size_t new_buckets);

  std::vector<std::vector<Entry>> buckets_ = std::vector<std::vector<Entry>>(kMinBuckets);
  double width_ = 1.0;
  std::uint64_t cur_day_ = 0;  ///< floor(earliest pending time / width_) or less
  std::size_t live_ = 0;       ///< pending, non-cancelled events
  std::size_t cancelled_ = 0;  ///< tombstone entries still in buckets_

  std::vector<Slot> arena_;
  std::uint32_t free_head_ = kNoSlot;
  /// Slot of each pending id, for cancel(); never iterated.
  std::unordered_map<EventId, std::uint32_t> slot_of_;

  /// Set by find_min() when the found day's bucket scan ran long; pop()
  /// answers with a (rate-limited) re-tuning compact.
  bool overloaded_ = false;
  std::size_t pops_since_compact_ = 0;

  /// Cached result of find_min(), invalidated by push/cancel/pop.
  bool peek_valid_ = false;
  std::size_t peek_bucket_ = 0;
  std::size_t peek_index_ = 0;

  EventId next_id_ = 1;

  static constexpr std::size_t kMinBuckets = 8;
};

}  // namespace osap
