// The discrete-event simulation driver.
//
// Owns the virtual clock and the event queue. All model components hold a
// reference to one Simulation and schedule callbacks through it. Execution
// is strictly single-threaded and deterministic: same seed, same schedule,
// same results.
#pragma once

#include <cstdint>
#include <functional>

#include "audit/audit.hpp"
#include "common/det.hpp"
#include "common/time.hpp"
#include "sim/event_queue.hpp"
#include "trace/context.hpp"

namespace osap {

class Simulation {
 public:
  Simulation();
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule at an absolute time (must be >= now()).
  EventId at(SimTime t, std::function<void()> fn);

  /// Schedule after a relative delay (clamped to >= 0).
  EventId after(Duration d, std::function<void()> fn);

  /// Cancel a pending event (no-op if already fired).
  void cancel(EventId id) { queue_.cancel(id); }

  /// Fire the next event. Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains; returns the time of the last event.
  SimTime run();

  /// Run events with time <= t, then set the clock to exactly t.
  void run_until(SimTime t);

  [[nodiscard]] std::uint64_t events_processed() const noexcept { return processed_; }
  [[nodiscard]] std::size_t events_pending() const noexcept { return queue_.pending(); }
  /// FNV-1a digest of the executed event stream: every fired event's
  /// (time, id) pair, in firing order. Two runs of the same scenario must
  /// produce identical digests — the runtime witness behind the DET-*
  /// lint rules (docs/LINT.md); the tier-1 double-run test enforces it.
  [[nodiscard]] std::uint64_t trace_digest() const noexcept { return trace_digest_.value(); }
  /// Debug view of pending (time, id) pairs.
  [[nodiscard]] std::vector<std::pair<SimTime, EventId>> pending_events() const {
    return queue_.pending_events();
  }

  // --- invariant audits & watchdog ----------------------------------------
  /// Model layers register their InvariantAuditors here; step() sweeps
  /// them every audit_config().stride events and aborts on violations.
  [[nodiscard]] AuditRegistry& audits() noexcept { return audits_; }
  void set_audit_config(const AuditConfig& cfg) noexcept { audit_cfg_ = cfg; }
  [[nodiscard]] const AuditConfig& audit_config() const noexcept { return audit_cfg_; }
  /// Sweep all auditors now; throws SimError with a diagnostic dump if any
  /// invariant is violated (regardless of the enabled flag). Always a full
  /// sweep — dirty-flag skipping applies only to the periodic sweep.
  void audit_now() const;

  // --- observability ------------------------------------------------------
  /// Tracer + counters + hot-path profiler (src/trace). Purely passive:
  /// recording never schedules events, so the event-trace digest is
  /// identical whether or not tracing is enabled.
  [[nodiscard]] trace::TraceContext& trace() noexcept { return trace_; }
  [[nodiscard]] const trace::TraceContext& trace() const noexcept { return trace_; }
  /// Machine-readable end-of-run dump: counters, gauges, hot-path profile,
  /// per-auditor sweep costs, events processed, event-trace digest.
  void write_observability_json(std::ostream& os) const;

 private:
  /// Periodic stride sweep: dirty-aware, profiled, aborts like audit_now().
  void sweep_audits();
  [[noreturn]] void audit_abort(const std::vector<std::string>& violations) const;
  [[noreturn]] void watchdog_abort(SimTime event_time, EventId event_id) const;
  [[noreturn]] void min_advance_abort(Duration advanced) const;

  EventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t processed_ = 0;
  AuditRegistry audits_;
  AuditConfig audit_cfg_;
  /// Consecutive events fired without the clock advancing (watchdog).
  std::uint64_t stalled_events_ = 0;
  /// Clock value at the start of the current min-advance window.
  SimTime window_anchor_ = 0;
  det::Fnv1a trace_digest_;
  trace::TraceContext trace_;
};

}  // namespace osap
