#include "sim/event_queue.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace osap {

namespace {

/// Bucket-count policy: grow when buckets average > 2 live events, shrink
/// (with hysteresis) when the calendar is mostly empty.
[[nodiscard]] constexpr bool should_grow(std::size_t live, std::size_t buckets) noexcept {
  return live > 2 * buckets;
}
[[nodiscard]] constexpr bool should_shrink(std::size_t live, std::size_t buckets) noexcept {
  return live < buckets / 4;
}

/// A day bucket holding more than this many entries is a sign the day
/// width no longer matches the event population (it was estimated from an
/// earlier, sparser era); pop() reacts by re-estimating via compact().
constexpr std::size_t kScanTarget = 64;

}  // namespace

std::uint64_t EventQueue::day_of(SimTime t) const noexcept {
  // Pure function of (t, width_): scans rely on every entry mapping to
  // the same day until the next rebuild. The clamp keeps a huge t /
  // tiny width from overflowing the day counter; entries past it just
  // share the final day and are ordered by the (time, id) min-scan.
  const double day = t / width_;
  return day < 1e18 ? static_cast<std::uint64_t>(day) : static_cast<std::uint64_t>(1e18);
}

EventId EventQueue::push(SimTime t, std::function<void()> fn) {
  OSAP_CHECK_MSG(t >= 0 && t < kTimeNever, "event time must be finite, got " << t);
  const EventId id = next_id_++;

  std::uint32_t slot;
  if (free_head_ != kNoSlot) {
    slot = free_head_;
    free_head_ = arena_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(arena_.size());
    arena_.emplace_back();
  }
  arena_[slot].fn = std::move(fn);
  arena_[slot].id = id;
  slot_of_.emplace(id, slot);

  if (should_grow(live_ + 1, buckets_.size())) compact(buckets_.size() * 2);

  const std::uint64_t day = day_of(t);
  // An empty calendar's cursor is stale; otherwise only rewind it — the
  // cursor is a lower bound on the earliest pending day.
  if (live_ == 0 || day < cur_day_) cur_day_ = day;
  buckets_[day % buckets_.size()].push_back(Entry{t, id, day, slot});
  ++live_;
  peek_valid_ = false;
  return id;
}

void EventQueue::cancel(EventId id) {
  // Cancelling an id that already fired (or never existed) is a no-op —
  // periodic re-arm patterns cancel their own just-fired timer.
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end()) return;
  const std::uint32_t slot = it->second;
  slot_of_.erase(it);
  // Release the closure (and everything it captures) right now; the
  // calendar entry becomes a POD tombstone, recognized by the id
  // mismatch and dropped by the next scan or compaction.
  arena_[slot].fn = nullptr;
  arena_[slot].id = 0;
  arena_[slot].next_free = free_head_;
  free_head_ = slot;
  --live_;
  ++cancelled_;
  peek_valid_ = false;
  if (cancelled_ >= 64 && cancelled_ > live_) compact(buckets_.size());
}

void EventQueue::compact(std::size_t new_buckets) {
  std::vector<Entry> entries;
  entries.reserve(live_);
  for (std::vector<Entry>& bucket : buckets_) {
    for (const Entry& e : bucket) {
      if (arena_[e.slot].id == e.id) entries.push_back(e);
    }
    bucket.clear();
  }
  cancelled_ = 0;
  pops_since_compact_ = 0;

  // Re-estimate the day width so a bucket holds ~2 events: too wide and
  // pops scan long buckets, too narrow and pops trudge through empty
  // days. A sorted subsample spans (almost) the full population, so
  // span / population approximates the mean inter-event gap no matter
  // the sampling stride.
  if (entries.size() >= 2) {
    std::vector<SimTime> sample;
    const std::size_t stride = std::max<std::size_t>(1, entries.size() / 64);
    for (std::size_t i = 0; i < entries.size(); i += stride) sample.push_back(entries[i].time);
    std::sort(sample.begin(), sample.end());
    const SimTime span = sample.back() - sample.front();
    if (span > 0) {
      width_ = std::max(2.0 * span / static_cast<double>(entries.size()), 1e-9);
    }
  }

  buckets_.assign(std::max(new_buckets, kMinBuckets), {});
  cur_day_ = ~std::uint64_t{0};
  for (Entry e : entries) {
    e.day = day_of(e.time);  // the width (and so every day) may have moved
    cur_day_ = std::min(cur_day_, e.day);
    buckets_[e.day % buckets_.size()].push_back(e);
  }
  if (entries.empty()) cur_day_ = 0;
  peek_valid_ = false;
}

bool EventQueue::find_min() {
  if (live_ == 0) return false;
  if (peek_valid_) return true;

  const std::size_t nb = buckets_.size();
  // Day-by-day scan: the earliest entry of the current day, pruning
  // tombstones in passing. Entries from later days sharing the bucket
  // stay put. After a calendar's worth of empty days the population is
  // sparse — locate the global minimum directly instead.
  for (std::size_t advanced = 0; advanced <= nb; ++advanced, ++cur_day_) {
    std::vector<Entry>& bucket = buckets_[cur_day_ % nb];
    bool found = false;
    SimTime best_time = kTimeNever;
    EventId best_id = 0;
    for (std::size_t i = 0; i < bucket.size();) {
      const Entry& e = bucket[i];
      if (arena_[e.slot].id != e.id) {
        bucket[i] = bucket.back();
        bucket.pop_back();
        --cancelled_;
        continue;
      }
      if (e.day == cur_day_ &&
          (!found || e.time < best_time || (e.time == best_time && e.id < best_id))) {
        found = true;
        best_time = e.time;
        best_id = e.id;
        peek_bucket_ = cur_day_ % nb;
        peek_index_ = i;
      }
      ++i;
    }
    if (found) {
      // A day this crowded means the width was tuned for a sparser era
      // (the population only re-tunes on grow/shrink otherwise); ask
      // pop() to rebuild. Rate-limited there, so a pathological
      // population (everything at one instant) cannot thrash.
      overloaded_ = bucket.size() > kScanTarget;
      peek_valid_ = true;
      return true;
    }
  }

  // Direct search: global (time, id) minimum across every bucket.
  bool found = false;
  SimTime best_time = kTimeNever;
  std::uint64_t best_day = 0;
  EventId best_id = 0;
  for (std::size_t b = 0; b < nb; ++b) {
    std::vector<Entry>& bucket = buckets_[b];
    for (std::size_t i = 0; i < bucket.size();) {
      const Entry& e = bucket[i];
      if (arena_[e.slot].id != e.id) {
        bucket[i] = bucket.back();
        bucket.pop_back();
        --cancelled_;
        continue;
      }
      if (!found || e.time < best_time || (e.time == best_time && e.id < best_id)) {
        found = true;
        best_time = e.time;
        best_day = e.day;
        best_id = e.id;
        peek_bucket_ = b;
        peek_index_ = i;
      }
      ++i;
    }
  }
  OSAP_CHECK(found);  // live_ > 0 guarantees a pending entry exists
  cur_day_ = best_day;
  peek_valid_ = true;
  return true;
}

SimTime EventQueue::next_time() {
  if (!find_min()) return kTimeNever;
  return buckets_[peek_bucket_][peek_index_].time;
}

std::vector<std::pair<SimTime, EventId>> EventQueue::pending_events() const {
  std::vector<std::pair<SimTime, EventId>> out;
  out.reserve(live_);
  for_each_pending([&out](SimTime t, EventId id) { out.emplace_back(t, id); });
  return out;
}

EventQueue::Fired EventQueue::pop() {
  OSAP_CHECK(find_min());
  std::vector<Entry>& bucket = buckets_[peek_bucket_];
  const Entry e = bucket[peek_index_];
  bucket[peek_index_] = bucket.back();
  bucket.pop_back();
  peek_valid_ = false;

  Fired fired{e.time, e.id, std::move(arena_[e.slot].fn)};
  arena_[e.slot].fn = nullptr;
  arena_[e.slot].id = 0;
  arena_[e.slot].next_free = free_head_;
  free_head_ = e.slot;
  slot_of_.erase(e.id);
  --live_;
  ++pops_since_compact_;
  if (should_shrink(live_, buckets_.size()) && buckets_.size() > kMinBuckets) {
    compact(buckets_.size() / 2);
  } else if (overloaded_ && pops_since_compact_ > buckets_.size()) {
    // Steady-state re-tune: the population level never tripped a
    // grow/shrink, but find_min keeps scanning oversized days. One
    // rebuild per calendar's worth of pops bounds the amortized cost at
    // O(live / buckets) ≈ O(1) per pop even if the width estimate can't
    // improve (e.g. every pending event shares one timestamp).
    overloaded_ = false;
    compact(buckets_.size());
  }
  return fired;
}

}  // namespace osap
