#include "sim/event_queue.hpp"

#include "common/error.hpp"

namespace osap {

EventId EventQueue::push(SimTime t, std::function<void()> fn) {
  OSAP_CHECK_MSG(t >= 0 && t < kTimeNever, "event time must be finite, got " << t);
  const EventId id = next_id_++;
  heap_.push(Entry{t, id, std::move(fn)});
  live_.insert(id);
  return id;
}

void EventQueue::cancel(EventId id) {
  // Cancelling an id that already fired (or never existed) is a no-op —
  // periodic re-arm patterns cancel their own just-fired timer.
  if (live_.erase(id) > 0) cancelled_.insert(id);
}

void EventQueue::drop_cancelled() {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) break;
    cancelled_.erase(it);
    heap_.pop();
  }
}

bool EventQueue::empty() const noexcept { return live_.empty(); }

SimTime EventQueue::next_time() const noexcept {
  const_cast<EventQueue*>(this)->drop_cancelled();
  return heap_.empty() ? kTimeNever : heap_.top().time;
}

std::vector<std::pair<SimTime, EventId>> EventQueue::pending_events() const {
  // The underlying container of a priority_queue is inaccessible; rebuild
  // the view from a copy. Debug-only, cost is acceptable.
  std::vector<std::pair<SimTime, EventId>> out;
  auto copy = heap_;
  while (!copy.empty()) {
    if (!cancelled_.contains(copy.top().id)) out.emplace_back(copy.top().time, copy.top().id);
    copy.pop();
  }
  return out;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  OSAP_CHECK(!heap_.empty());
  const Entry& top = heap_.top();
  Fired fired{top.time, top.id, std::move(top.fn)};
  heap_.pop();
  live_.erase(fired.id);
  return fired;
}

}  // namespace osap
