#include "sim/fluid_resource.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace osap {

namespace {
// Absolute slack below which a consumer counts as finished. Work units are
// bytes or cpu-seconds, so 1e-6 units is far below anything observable.
constexpr double kCompleteEps = 1e-6;
// Minimum completion-timer horizon. Floating-point settling can leave a
// remainder so small that now + remainder/rate == now in double precision,
// which would re-fire the timer at the same timestamp forever. Anything
// finishing within a nanosecond is complete for all modelling purposes.
constexpr double kMinTick = 1e-9;
}  // namespace

FluidResource::FluidResource(Simulation& sim, double capacity, std::string name)
    : sim_(sim), capacity_(capacity), name_(std::move(name)), last_settle_(sim.now()) {
  OSAP_CHECK_MSG(capacity_ > 0, "resource " << name_ << " needs positive capacity");
}

FluidResource::~FluidResource() {
  if (timer_ != 0) sim_.cancel(timer_);
}

FluidResource::ConsumerId FluidResource::add(double demand, double rate_cap,
                                             std::function<void()> on_complete) {
  OSAP_CHECK_MSG(demand >= 0, "negative demand on " << name_);
  OSAP_CHECK_MSG(rate_cap > 0, "rate cap must be positive on " << name_);
  OSAP_CHECK_MSG(std::isfinite(capacity_) || std::isfinite(rate_cap),
                 "unlimited consumer on unlimited resource " << name_);
  const ConsumerId id = next_id_++;
  if (demand <= kCompleteEps) {
    // Nothing to transfer: complete on a fresh event to keep callback
    // ordering uniform (never synchronously from add()).
    sim_.after(0, std::move(on_complete));
    return id;
  }
  Consumer c;
  c.remaining = demand;
  c.cap = rate_cap;
  c.on_complete = std::move(on_complete);
  consumers_.emplace(id, std::move(c));
  active_.push_back(id);
  update();
  return id;
}

void FluidResource::pause(ConsumerId id) {
  auto it = consumers_.find(id);
  if (it == consumers_.end() || it->second.state == State::Paused) return;
  // Settle progress up to now before freezing the consumer.
  update();
  it = consumers_.find(id);
  if (it == consumers_.end()) return;  // completed during the settle
  it->second.state = State::Paused;
  it->second.rate = 0;
  std::erase(active_, id);
  update();
}

void FluidResource::resume(ConsumerId id) {
  auto it = consumers_.find(id);
  if (it == consumers_.end() || it->second.state == State::Active) return;
  it->second.state = State::Active;
  active_.push_back(id);
  update();
}

void FluidResource::cancel(ConsumerId id) {
  auto it = consumers_.find(id);
  if (it == consumers_.end()) return;
  update();
  it = consumers_.find(id);
  if (it == consumers_.end()) return;
  std::erase(active_, id);
  consumers_.erase(it);
  update();
}

void FluidResource::add_demand(ConsumerId id, double extra) {
  OSAP_CHECK(extra >= 0);
  auto it = consumers_.find(id);
  OSAP_CHECK_MSG(it != consumers_.end(), "add_demand on missing consumer of " << name_);
  update();
  it = consumers_.find(id);
  OSAP_CHECK(it != consumers_.end());
  it->second.remaining += extra;
  update();
}

bool FluidResource::contains(ConsumerId id) const { return consumers_.contains(id); }

double FluidResource::remaining(ConsumerId id) const {
  auto it = consumers_.find(id);
  if (it == consumers_.end()) return 0;
  const Consumer& c = it->second;
  if (c.state == State::Active) {
    const double dt = sim_.now() - last_settle_;
    return std::max(0.0, c.remaining - c.rate * dt);
  }
  return c.remaining;
}

double FluidResource::served(ConsumerId id) const {
  auto it = consumers_.find(id);
  if (it == consumers_.end()) return 0;
  const Consumer& c = it->second;
  if (c.state == State::Active) {
    const double dt = sim_.now() - last_settle_;
    return c.served + std::min(c.remaining, c.rate * dt);
  }
  return c.served;
}

double FluidResource::rate(ConsumerId id) const {
  auto it = consumers_.find(id);
  return it == consumers_.end() ? 0 : it->second.rate;
}

void FluidResource::set_capacity(double capacity) {
  OSAP_CHECK(capacity > 0);
  update();
  capacity_ = capacity;
  update();
}

void FluidResource::settle(std::vector<ConsumerId>& completed) {
  const SimTime now = sim_.now();
  const double dt = now - last_settle_;
  last_settle_ = now;
  for (ConsumerId id : active_) {
    Consumer& c = consumers_.at(id);
    const double moved = std::min(c.remaining, c.rate * dt);
    c.remaining -= moved;
    c.served += moved;
    total_served_ += moved;
    if (c.remaining <= kCompleteEps || c.remaining <= c.rate * kMinTick) {
      completed.push_back(id);
    }
  }
}

void FluidResource::recompute_rates() {
  if (active_.empty()) return;
  // Water-filling: every active consumer gets min(cap, share), where the
  // share level is raised until capacity is exhausted or all caps are met.
  std::vector<ConsumerId> order = active_;
  std::sort(order.begin(), order.end(), [this](ConsumerId a, ConsumerId b) {
    return consumers_.at(a).cap < consumers_.at(b).cap;
  });
  double left = capacity_;
  std::size_t n = order.size();
  for (ConsumerId id : order) {
    Consumer& c = consumers_.at(id);
    const double fair = left / static_cast<double>(n);
    c.rate = std::min(c.cap, fair);
    left -= c.rate;
    --n;
  }
}

void FluidResource::rearm() {
  if (timer_ != 0) {
    sim_.cancel(timer_);
    timer_ = 0;
  }
  if (active_.empty()) return;
  double horizon = kTimeNever;
  for (ConsumerId id : active_) {
    const Consumer& c = consumers_.at(id);
    OSAP_CHECK_MSG(c.rate > 0, "active consumer starved on " << name_);
    horizon = std::min(horizon, c.remaining / c.rate);
  }
  horizon = std::max(horizon, kMinTick);
  timer_ = sim_.after(horizon, [this] {
    timer_ = 0;
    update();
  });
}

void FluidResource::update() {
  sim_.trace().profiler().add(trace::HotPath::FluidUpdate, active_.size());
  std::vector<ConsumerId> completed;
  settle(completed);
  std::vector<std::function<void()>> callbacks;
  callbacks.reserve(completed.size());
  for (ConsumerId id : completed) {
    auto it = consumers_.find(id);
    std::erase(active_, id);
    callbacks.push_back(std::move(it->second.on_complete));
    consumers_.erase(it);
  }
  recompute_rates();
  rearm();
  // Callbacks run last: they may re-enter add/pause/cancel, which each
  // trigger their own (dt == 0) update pass.
  for (auto& cb : callbacks) {
    if (cb) cb();
  }
}

}  // namespace osap
