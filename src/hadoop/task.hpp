// Tasks: the unit of preemption.
//
// A TaskSpec describes the synthetic workload a task attempt executes
// (§IV-A: mappers that read and parse randomly generated input, optionally
// allocating a large in-memory state written at startup and read back at
// finalization). TaskState carries the paper's JobTracker-side states,
// including the new MUST_SUSPEND / SUSPENDED / MUST_RESUME introduced by
// the preemption primitive (§III-B).
#pragma once

#include <string>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "os/program.hpp"

namespace osap {

enum class TaskType { Map, Reduce };

enum class TaskState {
  Unassigned,   // waiting for a slot (also after a kill-for-preemption)
  Running,
  MustSuspend,  // suspend requested; command not yet acknowledged
  Suspended,
  MustResume,   // resume requested; command not yet acknowledged
  Succeeded,
  Killed,       // attempt killed; task may be rescheduled by the scheduler
  Failed,
};

const char* to_string(TaskState s) noexcept;
const char* to_string(TaskType t) noexcept;

struct TaskSpec {
  TaskType type = TaskType::Map;
  std::string name = "task";

  /// HDFS input block (maps). Invalid id = synthetic input of input_bytes.
  BlockId input_block;
  Bytes input_bytes = 512 * MiB;
  /// Parse cost. The default makes a 512 MB block take ~76 s of CPU —
  /// matching the paper's task durations — so parsing, not the disk, is
  /// the bottleneck.
  double parse_cpu_per_byte = 1.0 / (6.7 * static_cast<double>(MiB));

  /// Execution-engine footprint (JVM, I/O buffers, sort buffers): hot for
  /// the task's whole life. The paper's "light-weight" tasks have only
  /// this.
  Bytes framework_memory = 192 * MiB;
  /// Stateful-task memory: written (dirtied) at startup, idle during
  /// processing, read back at finalization (§IV worst case).
  Bytes state_memory = 0;
  /// Read the state back when finalizing (the paper's memory-hungry jobs
  /// do; it forces page-in of anything swapped).
  bool touch_state_at_end = true;
  /// Fraction of the task's lifetime during which the state is actually
  /// needed. 1.0 (default) holds it until the end — a JVM whose garbage
  /// collector never returns memory to the OS. Smaller values model §V-B's
  /// advice: dispose of large objects and use a releasing collector (G1 /
  /// System.gc()), shrinking the footprint a suspension might have to
  /// page.
  double state_lifetime = 1.0;

  Bytes output_bytes = 0;
  /// JVM spawn + task initialization cost.
  double startup_cpu_seconds = 1.0;

  // Reduce-only: bytes of map output fetched+merged before reducing. The
  // simulator reads them from the local disk (single-node shuffle).
  Bytes shuffle_bytes = 0;
  double sort_cpu_seconds = 0;
  /// Set by the JobTracker at launch time: the job still has unfinished
  /// maps, so the reduce must block after its shuffle until the
  /// MapsDone heartbeat action releases it. Not user-configured.
  bool wait_for_maps = false;

  /// Preferred (data-local) node; invalid = any.
  NodeId preferred_node;

  // --- Hadoop Streaming (§V-B external state) ---------------------------
  /// Size of the external executable the task pipes through (0 = plain
  /// Java task). The helper runs as its own OS process; suspending the
  /// task leaves the helper blocked on its input pipe, so the TaskTracker
  /// stops and continues it alongside the task.
  Bytes streaming_helper_memory = 0;
  /// Helper's processing cost per input byte (CPU it burns in parallel
  /// with the mapper).
  double streaming_cpu_per_byte = 0;

  // --- Natjam-style checkpoint resume (set by the JobTracker when
  // relaunching a checkpointed task; not user-configured) ---------------
  /// Fraction of the input already processed before checkpointing; the
  /// relaunched attempt fast-forwards past it.
  double checkpoint_progress = 0;
  /// Serialized state read back (deserialized) at relaunch.
  Bytes checkpoint_state = 0;
};

/// Materialize the process program a TaskTracker child JVM runs for this
/// spec.
Program build_task_program(const TaskSpec& spec);

/// A task as the JobTracker tracks it.
struct Task {
  TaskId id;
  JobId job;
  TaskSpec spec;
  TaskState state = TaskState::Unassigned;

  int attempts_started = 0;
  /// Unrequested attempt deaths (OOM kills, crashes) charged against
  /// `hadoop.max_task_attempts`. Framework kills and tracker-loss
  /// requeues do not count (Hadoop's killed-vs-failed split).
  int attempts_failed = 0;
  /// Backup attempts launched over the task's lifetime (speculative
  /// execution; never charged against `max_task_attempts`).
  int attempts_speculative = 0;
  /// Node of the live (running or suspended) attempt.
  NodeId node;
  TrackerId tracker;
  double progress = 0;
  /// Launch time of the current primary attempt (-1 when unassigned);
  /// the straggler detector's progress-rate clock.
  SimTime attempt_started_at = -1;

  // --- speculative backup attempt (docs/SPECULATION.md) -----------------
  /// Binding of the live backup attempt; invalid when none is racing. The
  /// copy runs the same TaskId on a *different* tracker, so every status
  /// report is routed by (task, reporting tracker).
  TrackerId spec_tracker;
  NodeId spec_node;
  double spec_progress = 0;
  SimTime spec_started_at = -1;

  SimTime first_launched_at = -1;
  SimTime completed_at = -1;
  /// Node whose local disk holds this (Succeeded) map's output. Hadoop 1
  /// serves map output from the worker's own disk, so losing the node
  /// loses the output and forces a re-execution while reduces shuffle.
  NodeId completed_node;
  /// Node whose disk holds the Natjam checkpoint files (set on the
  /// Checkpointed report); a disk-loss fault there invalidates the
  /// fast-forward state.
  NodeId checkpoint_node;
  /// Paging totals of the last attempt, reported by the TaskTracker.
  Bytes swapped_out = 0;
  Bytes swapped_in = 0;
  /// Set when a Natjam checkpoint-suspend completed: the task has no live
  /// process; "resuming" relaunches it with fast-forward.
  bool checkpointed = false;
  /// Pending suspend should use the checkpoint path instead of SIGTSTP.
  bool use_checkpoint = false;

  /// A backup attempt is currently racing the primary one.
  [[nodiscard]] bool speculating() const noexcept { return spec_tracker.valid(); }

  [[nodiscard]] bool live() const noexcept {
    return state == TaskState::Running || state == TaskState::MustSuspend ||
           state == TaskState::Suspended || state == TaskState::MustResume;
  }
  [[nodiscard]] bool done() const noexcept {
    return state == TaskState::Succeeded || state == TaskState::Failed;
  }
};

}  // namespace osap
