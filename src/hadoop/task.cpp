#include "hadoop/task.hpp"

namespace osap {

const char* to_string(TaskState s) noexcept {
  switch (s) {
    case TaskState::Unassigned: return "UNASSIGNED";
    case TaskState::Running: return "RUNNING";
    case TaskState::MustSuspend: return "MUST_SUSPEND";
    case TaskState::Suspended: return "SUSPENDED";
    case TaskState::MustResume: return "MUST_RESUME";
    case TaskState::Succeeded: return "SUCCEEDED";
    case TaskState::Killed: return "KILLED";
    case TaskState::Failed: return "FAILED";
  }
  return "?";
}

const char* to_string(TaskType t) noexcept {
  return t == TaskType::Map ? "map" : "reduce";
}

Program build_task_program(const TaskSpec& spec) {
  ProgramBuilder b(spec.name);
  // JVM spawn + task initialization.
  b.compute(spec.startup_cpu_seconds);
  // Execution-engine memory stays in the working set for the task's life.
  b.alloc("framework", spec.framework_memory, /*hot_after=*/true);
  if (spec.checkpoint_state > 0) {
    // Natjam resume path: deserialize the saved state from disk back into
    // memory before processing continues.
    b.read_parse(spec.checkpoint_state, /*cpu_per_byte=*/0, /*weight=*/0);
  }
  if (spec.state_memory > 0) {
    // "Writing random values to all memory at task startup" — every page
    // dirtied, then the region sits idle while the input is processed.
    b.alloc("state", spec.state_memory, /*hot_after=*/false);
  }
  if (spec.type == TaskType::Reduce) {
    // Fetch + merge map outputs (read from local disk in this model),
    // then the sort. A reduce launched while maps still run copies what
    // exists and then blocks until the JobTracker signals completion —
    // it must not race ahead and finish before its inputs exist.
    if (spec.shuffle_bytes > 0) {
      b.read_parse(spec.shuffle_bytes, spec.parse_cpu_per_byte, /*weight=*/0.3);
    }
    if (spec.wait_for_maps) b.barrier("maps");
    if (spec.sort_cpu_seconds > 0) b.compute(spec.sort_cpu_seconds);
  }
  if (spec.input_bytes > 0) {
    // A checkpointed attempt fast-forwards: the saved counters let it seek
    // straight to the first unprocessed record.
    const auto remaining = static_cast<Bytes>(
        static_cast<double>(spec.input_bytes) * (1.0 - spec.checkpoint_progress));
    if (spec.state_memory > 0 && spec.state_lifetime < 1.0) {
      // GC-friendly task (§V-B): the state is read back and released
      // partway through, so later suspensions find a small footprint.
      const auto head = static_cast<Bytes>(static_cast<double>(remaining) *
                                           spec.state_lifetime);
      if (head > 0) b.read_parse(head, spec.parse_cpu_per_byte, spec.state_lifetime);
      b.touch("state", /*write=*/false);
      b.free("state");
      if (remaining > head) {
        b.read_parse(remaining - head, spec.parse_cpu_per_byte, 1.0 - spec.state_lifetime);
      }
      if (spec.output_bytes > 0) b.write_out(spec.output_bytes);
      return b.build();
    }
    if (remaining > 0) b.read_parse(remaining, spec.parse_cpu_per_byte, /*weight=*/1.0);
  }
  if (spec.state_memory > 0 && spec.touch_state_at_end) {
    // "Reading them back when finalizing the tasks."
    b.touch("state", /*write=*/false);
  }
  if (spec.output_bytes > 0) b.write_out(spec.output_bytes);
  return b.build();
}

}  // namespace osap
