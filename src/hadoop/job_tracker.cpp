#include "hadoop/job_tracker.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "hadoop/task_tracker.hpp"
#include "trace/context.hpp"
#include "trace/names.hpp"

namespace osap {

namespace {
constexpr const char* kLog = "jobtracker";

[[nodiscard]] constexpr bool state_live(TaskState s) noexcept {
  return s == TaskState::Running || s == TaskState::MustSuspend ||
         s == TaskState::Suspended || s == TaskState::MustResume;
}
[[nodiscard]] constexpr bool state_done(TaskState s) noexcept {
  return s == TaskState::Succeeded || s == TaskState::Failed;
}

/// A task's contribution to its job's remaining-bytes total: the HFSP
/// remaining size counts floor((1-progress) * input) for every not-done
/// task, with progress counting only while an attempt is live.
[[nodiscard]] Bytes remaining_contrib(const Task& t) noexcept {
  if (state_done(t.state)) return 0;
  const double left = 1.0 - (state_live(t.state) ? t.progress : 0.0);
  return static_cast<Bytes>(left * static_cast<double>(t.spec.input_bytes));
}

/// Add or remove `id` from the index sets a task in state `s` belongs to.
void index_task(Job& job, TaskId id, TaskState s, bool add) {
  const auto upd = [&](FlatIdSet<TaskId>& set) {
    if (add) {
      set.insert(id);
    } else {
      set.erase(id);
    }
  };
  if (s == TaskState::Unassigned) upd(job.unassigned);
  if (state_live(s)) upd(job.live);
  if (s == TaskState::Suspended) upd(job.suspended);
  if (!state_done(s)) upd(job.not_done);
}

}  // namespace

JobTracker::JobTracker(Simulation& sim, Network& net, NodeId master, HadoopConfig cfg)
    : sim_(sim), net_(net), master_(master), cfg_(cfg) {
  sim_.audits().add(this);
  tracer_ = &sim_.trace().tracer();
  trk_ = tracer_->track("cluster", "jobtracker");
  sched_trk_ = tracer_->track("cluster", "scheduler");
  shuffle_trk_ = tracer_->track("cluster", "shuffle");
  trace::CounterRegistry& counters = sim_.trace().counters();
  ctr_heartbeats_ = &counters.counter(trace::names::kJtHeartbeatsHandled);
  ctr_actions_ = &counters.counter(trace::names::kJtActionsSent);
  ctr_oob_maps_done_ = &counters.counter(trace::names::kJtOobMapsDonePushes);
  ctr_assignments_ = &counters.counter(trace::names::kSchedAssignments);
  ctr_suspends_ = &counters.counter(trace::names::kJtSuspendRequests);
  ctr_resumes_ = &counters.counter(trace::names::kJtResumeRequests);
  ctr_trackers_lost_ = &counters.counter(trace::names::kJtTrackersLost);
  ctr_tracker_reinits_ = &counters.counter(trace::names::kJtTrackerReinits);
  ctr_trackers_blacklisted_ = &counters.counter(trace::names::kJtTrackersBlacklisted);
  ctr_tasks_lost_ = &counters.counter(trace::names::kJtTasksLost);
  ctr_task_failures_ = &counters.counter(trace::names::kJtTaskFailures);
  ctr_map_outputs_lost_ = &counters.counter(trace::names::kJtMapOutputsLost);
  ctr_checkpoints_lost_ = &counters.counter(trace::names::kJtCheckpointsLost);
  ctr_jobs_failed_ = &counters.counter(trace::names::kJtJobsFailed);
  ctr_trackers_draining_ = &counters.counter(trace::names::kJtTrackersDraining);
  ctr_checkpoints_evacuated_ = &counters.counter(trace::names::kJtCheckpointsEvacuated);
  ctr_spec_launched_ = &counters.counter(trace::names::kSpecLaunched);
  ctr_spec_won_ = &counters.counter(trace::names::kSpecWon);
  ctr_spec_lost_ = &counters.counter(trace::names::kSpecLost);
  ctr_spec_killed_ = &counters.counter(trace::names::kSpecKilled);
  if (cfg_.tracker_expiry > 0 && cfg_.expiry_check_interval > 0) {
    lease_timer_ = sim_.after(cfg_.expiry_check_interval, [this] { check_leases(); });
  }
}

JobTracker::~JobTracker() {
  if (lease_timer_ != 0) sim_.cancel(lease_timer_);
  sim_.audits().remove(this);
}

void JobTracker::register_tracker(TaskTracker& tracker) {
  const auto idx = static_cast<std::uint32_t>(tracker_slots_.size());
  const bool inserted = tracker_index_.emplace(tracker.id(), idx).second;
  OSAP_CHECK_MSG(inserted, tracker.id() << " registered twice");
  TrackerSlot slot;
  slot.tracker = &tracker;
  slot.id = tracker.id();
  // The lease starts at registration: a tracker that never heartbeats at
  // all still expires.
  slot.last_heartbeat = sim_.now();
  tracker_slots_.push_back(slot);
  file_lease(idx);
}

void JobTracker::set_scheduler(Scheduler* scheduler) {
  scheduler_ = scheduler;
  if (scheduler_ != nullptr) scheduler_->attach(*this);
}

TaskTracker* JobTracker::tracker(TrackerId id) {
  TrackerSlot* s = slot(id);
  return s == nullptr ? nullptr : s->tracker;
}

Job& JobTracker::job_ref(JobId id) {
  OSAP_CHECK_MSG(id.value() < jobs_.size(), "unknown " << id);
  return jobs_[id.value()];
}

void JobTracker::set_task_state(Task& task, TaskState to) {
  const TaskState from = task.state;
  if (from == to) return;
  Job& job = job_ref(task.job);
  job.remaining_bytes -= remaining_contrib(task);
  index_task(job, task.id, from, /*add=*/false);
  task.state = to;
  index_task(job, task.id, to, /*add=*/true);
  job.remaining_bytes += remaining_contrib(task);
  job.spec_next_check = 0;
  reindex_job(job);
  if (task.spec.type == TaskType::Map) {
    // The shuffle-barrier count tracks maps crossing the SUCCEEDED
    // boundary in either direction (a lost map output moves one back).
    if (to == TaskState::Succeeded) --job.maps_not_succeeded;
    if (from == TaskState::Succeeded) ++job.maps_not_succeeded;
  }
}

void JobTracker::reindex_job(Job& job) {
  const bool running = job.state == JobState::Running;
  const Bytes key = running ? job.remaining_bytes : 0;
  if (key != job.indexed_remaining) {
    if (job.indexed_remaining != 0) jobs_by_remaining_.erase({job.indexed_remaining, job.id});
    if (key != 0) jobs_by_remaining_.insert({key, job.id});
    job.indexed_remaining = key;
  }
  if (running && !job.unassigned.empty()) {
    schedulable_jobs_.insert(job.id);
  } else {
    schedulable_jobs_.erase(job.id);
  }
}

void JobTracker::set_task_spec(TaskId id, TaskSpec spec) {
  Task& task = task_mutable(id);
  Job& job = job_ref(task.job);
  job.remaining_bytes -= remaining_contrib(task);
  task.spec = std::move(spec);
  job.remaining_bytes += remaining_contrib(task);
  job.spec_next_check = 0;
  reindex_job(job);
}

void JobTracker::set_task_progress(Task& task, double progress) {
  Job& job = job_ref(task.job);
  job.remaining_bytes -= remaining_contrib(task);
  task.progress = progress;
  job.remaining_bytes += remaining_contrib(task);
  job.spec_next_check = 0;
  reindex_job(job);
}

void JobTracker::file_lease(std::uint32_t idx) {
  if (cfg_.tracker_expiry <= 0) return;
  TrackerSlot& s = tracker_slots_[idx];
  s.lease_deadline = s.last_heartbeat + cfg_.tracker_expiry;
  lease_wheel_[s.lease_deadline].push_back(idx);
}

void JobTracker::emit(ClusterEventType type, JobId job, TaskId task, NodeId node) {
  if (event_hooks_.empty()) return;
  const ClusterEvent event{sim_.now(), type, job, task, node};
  for (const auto& hook : event_hooks_) hook(event);
}

JobId JobTracker::submit_job(JobSpec spec) {
  Job job;
  job.id = job_ids_.next();
  OSAP_CHECK(job.id.value() == jobs_.size());  // dense ids index jobs_ directly
  job.submitted_at = sim_.now();
  for (TaskSpec& ts : spec.tasks) {
    Task task;
    task.id = task_ids_.next();
    OSAP_CHECK(task.id.value() == tasks_.size());
    task.job = job.id;
    if (ts.name == "task") ts.name = spec.name + "/" + std::to_string(job.tasks.size());
    task.spec = ts;
    job.tasks.push_back(task.id);
    job.unassigned.insert(task.id);
    job.not_done.insert(task.id);
    job.remaining_bytes += remaining_contrib(task);
    if (task.spec.type == TaskType::Map) ++job.maps_not_succeeded;
    tasks_.push_back(std::move(task));
  }
  job.spec = std::move(spec);
  const JobId id = job.id;
  OSAP_LOG(Info, kLog) << "job " << id << " (" << job.spec.name << ") submitted with "
                       << job.tasks.size() << " tasks";
  jobs_.push_back(std::move(job));
  job_order_.push_back(id);
  running_jobs_.insert(id);
  reindex_job(jobs_[id.value()]);
  const Job& stored = jobs_[id.value()];
  tracer_->async_begin(trk_, "job", id.value(),
                       {{"name", stored.spec.name},
                        {"tasks", static_cast<std::uint64_t>(stored.tasks.size())}});
  emit(ClusterEventType::JobSubmitted, id, TaskId{}, NodeId{});
  if (scheduler_ != nullptr) scheduler_->job_added(id);
  return id;
}

bool JobTracker::suspend_task(TaskId id) {
  Task& t = task_mutable(id);
  if (t.state != TaskState::Running) {
    OSAP_LOG(Warn, kLog) << "suspend " << id << " rejected in state " << to_string(t.state);
    return false;
  }
  set_task_state(t, TaskState::MustSuspend);
  command_sent_[id] = false;
  ctr_suspends_->add();
  tracer_->async_begin(trk_, "suspend", id.value(), {{"kind", "sigtstp"}});
  emit(ClusterEventType::TaskSuspendRequested, t.job, id, t.node);
  return true;
}

bool JobTracker::checkpoint_suspend_task(TaskId id) {
  Task& t = task_mutable(id);
  if (t.state != TaskState::Running) {
    OSAP_LOG(Warn, kLog) << "checkpoint-suspend " << id << " rejected in state "
                         << to_string(t.state);
    return false;
  }
  set_task_state(t, TaskState::MustSuspend);
  t.use_checkpoint = true;
  command_sent_[id] = false;
  ctr_suspends_->add();
  tracer_->async_begin(trk_, "suspend", id.value(), {{"kind", "checkpoint"}});
  emit(ClusterEventType::TaskSuspendRequested, t.job, id, t.node);
  return true;
}

bool JobTracker::resume_task(TaskId id) {
  Task& t = task_mutable(id);
  if (t.state != TaskState::Suspended) {
    OSAP_LOG(Warn, kLog) << "resume " << id << " rejected in state " << to_string(t.state);
    return false;
  }
  ctr_resumes_->add();
  emit(ClusterEventType::TaskResumeRequested, t.job, id, t.node);
  if (t.checkpointed) {
    if (t.speculating()) {
      // A backup attempt is already racing the parked original: the
      // fastest way to "resume" the task is to adopt that running copy
      // rather than relaunch from the checkpoint and widen the race.
      t.checkpointed = false;
      promote_speculative(t);
      return true;
    }
    tracer_->instant(trk_, "resume_checkpointed", {{"task", id.value()}});
    // No process to SIGCONT: relaunch with fast-forward from the saved
    // counters (and re-read of any serialized state).
    t.spec.checkpoint_progress = t.progress;
    t.spec.checkpoint_state = t.spec.state_memory + 64 * KiB;
    t.checkpointed = false;
    t.use_checkpoint = false;
    set_task_progress(t, 0);
    task_terminal(t, TaskState::Unassigned);
    return true;
  }
  set_task_state(t, TaskState::MustResume);
  command_sent_[id] = false;
  tracer_->async_begin(trk_, "resume", id.value());
  return true;
}

bool JobTracker::kill_task(TaskId id) {
  Task& t = task_mutable(id);
  if (!t.live()) {
    OSAP_LOG(Warn, kLog) << "kill " << id << " rejected in state " << to_string(t.state);
    return false;
  }
  // Killing the task means killing every attempt; the backup copy goes
  // budget-free through the attempt-only machinery.
  if (t.speculating()) kill_speculative(id);
  if (t.state == TaskState::Suspended && t.checkpointed) {
    // Checkpoint-parked: there is no process (and no tracker binding) to
    // send a Kill action to — a queued must_kill_ entry would never match
    // a tracker and wedge forever. Discard the checkpoint in place.
    emit(ClusterEventType::TaskKillRequested, t.job, id, NodeId{});
    emit(ClusterEventType::TaskKilled, t.job, id, NodeId{});
    t.checkpointed = false;
    t.spec.checkpoint_progress = 0;
    t.spec.checkpoint_state = 0;
    t.checkpoint_node = NodeId{};
    task_terminal(t, TaskState::Unassigned);
    reset_attempt_state(t);
    return true;
  }
  enqueue_kill(id, t.tracker, /*attempt_only=*/false);
  emit(ClusterEventType::TaskKillRequested, t.job, id, t.node);
  return true;
}

bool JobTracker::kill_speculative(TaskId id) {
  Task& t = task_mutable(id);
  if (!t.speculating()) return false;
  emit(ClusterEventType::TaskKillRequested, t.job, id, t.spec_node);
  enqueue_kill(id, t.spec_tracker, /*attempt_only=*/true);
  clear_speculative(t);
  return true;
}

void JobTracker::enqueue_kill(TaskId id, TrackerId target, bool attempt_only) {
  OSAP_CHECK_MSG(target.valid(), "kill order for " << id << " with no tracker");
  std::vector<KillOrder>& orders = must_kill_[id];
  for (KillOrder& order : orders) {
    if (order.tracker != target) continue;
    // Repeated kill (e.g. fail_job after an explicit kill): re-arm the
    // existing order so the command is resent, matching the pre-race
    // overwrite semantics.
    order.sent = false;
    order.attempt_only = order.attempt_only && attempt_only;
    return;
  }
  orders.push_back(KillOrder{target, /*sent=*/false, attempt_only});
}

bool JobTracker::erase_kill_order(TaskId id, TrackerId target, bool* attempt_only) {
  const auto it = must_kill_.find(id);
  if (it == must_kill_.end()) return false;
  std::vector<KillOrder>& orders = it->second;
  for (auto order = orders.begin(); order != orders.end(); ++order) {
    if (order->tracker != target) continue;
    if (attempt_only != nullptr) *attempt_only = order->attempt_only;
    orders.erase(order);
    if (orders.empty()) must_kill_.erase(it);
    return true;
  }
  return false;
}

bool JobTracker::kill_pending_on(TaskId id, TrackerId target) const {
  const auto it = must_kill_.find(id);
  if (it == must_kill_.end()) return false;
  for (const KillOrder& order : it->second) {
    if (order.tracker == target) return true;
  }
  return false;
}

void JobTracker::apply_report(const TrackerStatus& status, const TaskStatusReport& report) {
  if (report.task.value() >= tasks_.size()) return;
  Task& t = tasks_[report.task.value()];
  t.swapped_out = std::max(t.swapped_out, report.swapped_out);
  t.swapped_in = std::max(t.swapped_in, report.swapped_in);
  // Every report is routed per attempt by its reporting tracker: the
  // primary attempt lives on t.tracker, a racing backup copy on
  // t.spec_tracker, and anything else is stale.
  const bool from_primary = t.tracker == status.tracker;
  const bool from_backup = t.speculating() && t.spec_tracker == status.tracker;
  switch (report.kind) {
    case ReportKind::Progress:
      if (t.live() && from_primary) {
        set_task_progress(t, report.progress);
      } else if (t.live() && from_backup) {
        t.spec_progress = report.progress;
      }
      break;
    case ReportKind::Suspended:
      if (t.state == TaskState::MustSuspend && t.tracker == status.tracker) {
        set_task_state(t, TaskState::Suspended);
        tracer_->async_end(trk_, "suspend", t.id.value());
        emit(ClusterEventType::TaskSuspended, t.job, t.id, status.node);
      }
      break;
    case ReportKind::Resumed:
      if ((t.state == TaskState::MustResume || t.state == TaskState::Suspended) &&
          t.tracker == status.tracker) {
        if (t.state == TaskState::MustResume) {
          tracer_->async_end(trk_, "resume", t.id.value());
        }
        set_task_state(t, TaskState::Running);
        emit(ClusterEventType::TaskResumed, t.job, t.id, status.node);
      }
      break;
    case ReportKind::Succeeded:
      if (!t.done() && from_primary) {
        // The original finished first: a still-racing copy is the loser
        // and is killed budget-free (first-finisher-wins, §speculation).
        if (t.speculating()) kill_speculative(t.id);
        task_succeeded(t, status.node);
      } else if (!t.done() && from_backup) {
        // The backup attempt won the race; its output is the task's
        // output. The original attempt is the loser.
        ctr_spec_won_->add();
        emit(ClusterEventType::SpeculationWon, t.job, t.id, status.node);
        if (t.state == TaskState::Suspended && t.checkpointed) {
          // Checkpoint-parked original: no process to kill — discard the
          // parked checkpoint in place.
          t.checkpointed = false;
          t.spec.checkpoint_progress = 0;
          t.spec.checkpoint_state = 0;
          t.checkpoint_node = NodeId{};
        } else if (t.tracker.valid()) {
          emit(ClusterEventType::TaskKillRequested, t.job, t.id, t.node);
          enqueue_kill(t.id, t.tracker, /*attempt_only=*/true);
        }
        clear_speculative(t);
        task_succeeded(t, status.node);
      } else {
        // A race loser finished before its Kill landed (dead heat): retire
        // the pending order — the attempt exited on its own and its
        // output is discarded in favor of the winner's.
        if (erase_kill_order(t.id, status.tracker)) {
          tracer_->instant(trk_, "speculation_dead_heat", {{"task", t.id.value()}});
        }
      }
      break;
    case ReportKind::KilledAck: {
      bool attempt_only = false;
      if (!erase_kill_order(t.id, status.tracker, &attempt_only)) break;
      if (attempt_only) {
        // A race loser (original or copy) is gone and cleaned; the task's
        // own state was already settled by the winner, so only count it.
        ctr_spec_killed_->add();
        emit(ClusterEventType::SpeculationKilled, t.job, t.id, status.node);
        break;
      }
      // The attempt is gone and its temporary output cleaned; the task
      // itself goes back to the pool, losing all progress — the kill
      // primitive's defining cost. A stale ack (the task was already
      // forfeited to a lost tracker and rebound elsewhere) is ignored.
      if (!t.live() || !from_primary) break;
      emit(ClusterEventType::TaskKilled, t.job, t.id, status.node);
      task_terminal(t, TaskState::Unassigned);
      reset_attempt_state(t);
      break;
    }
    case ReportKind::Failed: {
      if (!t.live()) break;
      if (from_backup) {
        // The copy died unrequested: the race dissolves and the healthy
        // original carries on. No attempt-budget charge (speculation is
        // the framework's gamble, not the task's fault), but the flaky
        // tracker is still noted for blacklisting.
        ctr_spec_lost_->add();
        emit(ClusterEventType::SpeculationLost, t.job, t.id, status.node);
        clear_speculative(t);
        note_tracker_failure(status.tracker, status.node);
        break;
      }
      if (!from_primary) {
        // A race loser died (e.g. OOM) before its Kill landed: treat the
        // death as the ack it will never send.
        bool attempt_only = false;
        if (erase_kill_order(t.id, status.tracker, &attempt_only) && attempt_only) {
          ctr_spec_killed_->add();
          emit(ClusterEventType::SpeculationKilled, t.job, t.id, status.node);
        }
        break;
      }
      emit(ClusterEventType::TaskFailed, t.job, t.id, status.node);
      ctr_task_failures_->add();
      ++t.attempts_failed;
      note_tracker_failure(status.tracker, status.node);
      if (t.attempts_failed >= cfg_.max_task_attempts) {
        // Attempt budget exhausted: the task fails terminally and takes
        // its job down (Hadoop 1 `mapred.*.max.attempts` semantics). A
        // Failed task counts toward nothing — maybe_complete_job only
        // counts Succeeded. A racing copy cannot save an exhausted task.
        OSAP_LOG(Warn, kLog) << t.id << " failed " << t.attempts_failed
                             << " attempts, failing " << t.job;
        if (t.speculating()) kill_speculative(t.id);
        task_terminal(t, TaskState::Failed);
        reset_attempt_state(t);
        fail_job(t.job, t.id, status.node);
      } else if (t.speculating()) {
        // The original died but a copy is already racing: adopt the copy
        // instead of requeueing from scratch.
        promote_speculative(t);
      } else {
        task_terminal(t, TaskState::Unassigned);
        reset_attempt_state(t);
      }
      break;
    }
    case ReportKind::Checkpointed:
      if (t.state == TaskState::MustSuspend && t.tracker == status.tracker) {
        set_task_state(t, TaskState::Suspended);
        tracer_->async_end(trk_, "suspend", t.id.value(), {{"checkpointed", 1}});
        t.checkpointed = true;
        set_task_progress(t, report.progress);
        t.checkpoint_node = status.node;
        // The JVM is gone; the task is no longer bound to the tracker
        // (though checkpoint files make same-node relaunches cheaper).
        t.node = NodeId{};
        t.tracker = TrackerId{};
        command_sent_.erase(t.id);
        emit(ClusterEventType::TaskSuspended, t.job, t.id, status.node);
      }
      break;
  }
}

void JobTracker::task_terminal(Task& task, TaskState state) {
  // Close any suspend/resume span left open by a task that went terminal
  // mid-protocol (killed or failed between the request and the ack).
  if (task.state == TaskState::MustSuspend) {
    tracer_->async_end(trk_, "suspend", task.id.value(), {{"aborted", 1}});
  } else if (task.state == TaskState::MustResume) {
    tracer_->async_end(trk_, "resume", task.id.value(), {{"aborted", 1}});
  }
  OSAP_CHECK_MSG(!task.speculating(),
                 task.id << " went terminal with a backup attempt still bound");
  set_task_state(task, state);
  task.node = NodeId{};
  task.tracker = TrackerId{};
  task.attempt_started_at = -1;
  command_sent_.erase(task.id);
  // Keep attempt-only kill orders: they target a race-losing attempt
  // still dying on its tracker, and only its ack retires them. Orders for
  // the primary attempt are moot once the task leaves the live states.
  if (const auto it = must_kill_.find(task.id); it != must_kill_.end()) {
    std::erase_if(it->second, [](const KillOrder& order) { return !order.attempt_only; });
    if (it->second.empty()) must_kill_.erase(it);
  }
  maps_done_pending_.erase(task.id);
}

void JobTracker::task_succeeded(Task& t, NodeId node) {
  set_task_progress(t, 1.0);
  t.completed_at = sim_.now();
  task_terminal(t, TaskState::Succeeded);
  // Map output is served from the worker's local disk (Hadoop 1 shuffle);
  // remember where it lives so losing the node re-runs the map.
  t.completed_node = node;
  emit(ClusterEventType::TaskSucceeded, t.job, t.id, node);
  Job& job = job_ref(t.job);
  ++job.tasks_completed;
  if (t.spec.type == TaskType::Map) maybe_release_reduces(t.job);
  maybe_complete_job(t.job);
}

void JobTracker::clear_speculative(Task& task) {
  if (task.spec_tracker.valid()) --job_ref(task.job).speculating;
  task.spec_tracker = TrackerId{};
  task.spec_node = NodeId{};
  task.spec_progress = 0;
  task.spec_started_at = -1;
  if (const auto it = maps_done_pending_.find(task.id); it != maps_done_pending_.end()) {
    it->second.spec_sent = false;
  }
}

void JobTracker::promote_speculative(Task& task) {
  OSAP_CHECK_MSG(task.speculating(), task.id << " promoted without a backup attempt");
  // Close any suspend/resume protocol left open on the vanishing primary.
  if (task.state == TaskState::MustSuspend) {
    tracer_->async_end(trk_, "suspend", task.id.value(), {{"aborted", 1}});
  } else if (task.state == TaskState::MustResume) {
    tracer_->async_end(trk_, "resume", task.id.value(), {{"aborted", 1}});
  }
  set_task_state(task, TaskState::Running);
  task.tracker = task.spec_tracker;
  task.node = task.spec_node;
  set_task_progress(task, task.spec_progress);
  task.attempt_started_at = task.spec_started_at;
  task.checkpointed = false;
  task.use_checkpoint = false;
  command_sent_.erase(task.id);
  // The copy's MapsDone bookkeeping becomes the primary's.
  if (const auto it = maps_done_pending_.find(task.id); it != maps_done_pending_.end()) {
    it->second.primary_sent = it->second.spec_sent;
  }
  clear_speculative(task);
  tracer_->instant(trk_, "speculation_promoted", {{"task", task.id.value()}});
  emit(ClusterEventType::SpeculationPromoted, task.job, task.id, task.node);
}

bool JobTracker::maps_pending(const Job& job) const {
  return job.maps_not_succeeded > 0;
}

void JobTracker::maybe_release_reduces(JobId id) {
  const Job& job = job_ref(id);
  if (maps_pending(job)) return;
  // Live tasks only can hold the barrier; the set iterates in ascending
  // task id, the same order the old full walk of job.tasks visited them.
  for (TaskId tid : job.live) {
    const Task& t = tasks_[tid.value()];
    if (t.spec.type != TaskType::Reduce || !t.spec.wait_for_maps) continue;
    if (!t.tracker.valid()) continue;
    // Span from "last map succeeded" to the TaskTracker applying the
    // release — the latency the out-of-band push exists to cut. Opened
    // once per task even when a racing copy gets its own release.
    tracer_->async_begin(shuffle_trk_, "maps_done_delivery", tid.value(),
                         {{"task", tid.value()}});
    // A racing reduce holds the shuffle barrier in *both* attempts;
    // release each through its own tracker.
    bool parked = false;
    for (const auto& [target, node] :
         {std::pair{t.tracker, t.node}, std::pair{t.spec_tracker, t.spec_node}}) {
      if (!target.valid()) continue;
      TaskTracker* tt = tracker(target);
      if (cfg_.oob_maps_done && tt != nullptr) {
        // Push the barrier release immediately instead of parking it until
        // the reduce's next periodic heartbeat. Goes through
        // deliver_actions, not on_response, so it never consumes the
        // tracker's heartbeat round-trip bookkeeping.
        ctr_oob_maps_done_->add();
        ctr_actions_->add();
        HeartbeatResponse push;
        push.actions.push_back(TaskAction{ActionKind::MapsDone, tid, {}});
        net_.send(master_, node, [tt, push = std::move(push)]() mutable {
          tt->deliver_actions(std::move(push));
        });
      } else {
        parked = true;
      }
    }
    if (parked) maps_done_pending_.emplace(tid, MapsDonePending{});
  }
}

void JobTracker::maybe_speculate(const TrackerStatus& status, int free_maps, int free_reduces,
                                 HeartbeatResponse& response) {
  if (!cfg_.speculative_execution) return;
  if (free_maps <= 0 && free_reduces <= 0) return;
  std::uint64_t scanned = 0;
  for (JobId jid : running_jobs_) {
    if (free_maps <= 0 && free_reduces <= 0) break;
    Job& job = jobs_[jid.value()];
    // Per-job budget of concurrently racing copies — a maintained count,
    // not a scan.
    if (job.speculating >= cfg_.speculative_cap) continue;
    const SimTime now = sim_.now();
    // Between mutations of its attempt set, a job's ETAs are known linear
    // functions of time, so the previous scan computed the earliest
    // moment the slowness threshold could next be crossed — before that,
    // this heartbeat's scan provably launches nothing.
    if (now < job.spec_next_check) continue;
    // Estimate time-to-completion for every attempt old enough to judge.
    // ETA = remaining work / observed rate = (1-p) * elapsed / p; a stuck
    // attempt (p ≈ 0) estimates infinite. The job mean is taken over the
    // finite estimates only — with no trustworthy baseline (e.g. every
    // attempt just launched, or a single stuck task) nothing speculates.
    // Only live attempts are inspected: the job's live-task index, in
    // ascending task id, is exactly the old filtered walk of job.tasks.
    double eta_sum = 0;
    double eta_max = 0;
    int eta_count = 0;
    // Linear ETA model per judged attempt j: eta_j(t) = k_j * (t - s_j)
    // with k = (1-p)/p, aggregated as K = sum k and B = sum k*s so the
    // future threshold test n*eta_j(t) > S*(K*t - B) solves in closed
    // form below.
    double k_total = 0;
    double ks_total = 0;
    SimTime next_join = kTimeNever;  // earliest min-runtime graduation
    spec_scratch_.clear();  // candidates, in ascending task-id order
    for (TaskId tid : job.live) {
      const Task& t = tasks_[tid.value()];
      if (t.attempt_started_at < 0) continue;
      const Duration elapsed = now - t.attempt_started_at;
      if (elapsed < cfg_.speculative_min_runtime) {
        // Exact graduation instant: the first representable time at which
        // the (t - s < R) youth test above flips. s + R can round below
        // it (heartbeat-aligned starts resonate with R), which would pin
        // the bound at `now` for a whole synchronized-heartbeat round.
        SimTime join = t.attempt_started_at + cfg_.speculative_min_runtime;
        while (join - t.attempt_started_at < cfg_.speculative_min_runtime) {
          join = std::nextafter(join, kTimeNever);
        }
        next_join = std::min(next_join, join);
        continue;
      }
      ++scanned;
      double eta;
      if (t.progress > 1e-9) {
        eta = (1.0 - t.progress) * static_cast<double>(elapsed) / t.progress;
        eta_sum += eta;
        ++eta_count;
        const double k = (1.0 - t.progress) / t.progress;
        k_total += k;
        ks_total += k * t.attempt_started_at;
      } else {
        eta = std::numeric_limits<double>::infinity();
      }
      if (eta > eta_max) eta_max = eta;
      spec_scratch_.emplace_back(tid, eta);
    }
    if (eta_count == 0) {
      // No trustworthy baseline; one can only appear when a young attempt
      // graduates past min-runtime (or a mutation resets the cache).
      job.spec_next_check = next_join;
      continue;
    }
    const double mean = eta_sum / eta_count;
    // If even the slowest attempt clears the threshold, the launch pass
    // below cannot trigger — skip it (an infinite ETA always exceeds).
    if (eta_max <= cfg_.speculative_slowness * mean) {
      // All judged ETAs are finite here (an infinite one would be
      // eta_max). n*eta_j(t) - S*sum(eta_i(t)) is a max of linear
      // functions of t: convex, currently <= 0, so it crosses zero at
      // most once — at the earliest crossing among attempts whose ETA
      // outgrows the threshold line (slope test d > 0). Graduations
      // re-shape the set, so the bound is also capped at the next one;
      // everything else that moves an ETA goes through a choke point
      // that resets the cache.
      const double S = cfg_.speculative_slowness;
      const double n = eta_count;
      SimTime cross = kTimeNever;
      for (const auto& [tid, eta] : spec_scratch_) {
        const Task& t = tasks_[tid.value()];
        const double k = (1.0 - t.progress) / t.progress;
        const double d = n * k - S * k_total;
        if (d <= 0) continue;
        cross = std::min(cross, (n * k * t.attempt_started_at - S * ks_total) / d);
      }
      // Conservative margin on the solved crossing: rescanning a hair
      // early is free (the scan stays authoritative), skipping past a
      // real crossing is not. The graduation bound is exact — no margin.
      if (cross < kTimeNever) cross -= 1e-6 * std::max(1.0, std::abs(cross));
      const SimTime bound = std::min(next_join, cross);
      job.spec_next_check = bound > now ? bound : 0;
      continue;
    }
    job.spec_next_check = 0;
    // Candidates are scanned in ascending task id, which breaks ETA ties
    // deterministically.
    for (const auto& [tid, eta] : spec_scratch_) {
      if (free_maps <= 0 && free_reduces <= 0) break;
      if (job.speculating >= cfg_.speculative_cap) break;
      if (eta <= cfg_.speculative_slowness * mean) continue;
      Task& t = tasks_[tid.value()];
      if (t.speculating()) continue;
      if (t.tracker == status.tracker) continue;  // never race on the same tracker
      if (kill_pending_on(tid, status.tracker)) continue;  // old attempt still dying here
      int& slots = t.spec.type == TaskType::Map ? free_maps : free_reduces;
      if (slots <= 0) continue;
      --slots;
      ++job.speculating;
      t.spec_tracker = status.tracker;
      t.spec_node = status.node;
      t.spec_progress = 0;
      t.spec_started_at = sim_.now();
      ++t.attempts_started;
      ++t.attempts_speculative;
      // The copy starts from scratch: checkpoint files are node-local to
      // the original's node, so no fast-forward. Barrier semantics
      // (wait_for_maps) are inherited from the primary so both attempts
      // are released together.
      TaskSpec copy = t.spec;
      copy.checkpoint_progress = 0;
      copy.checkpoint_state = 0;
      response.actions.push_back(TaskAction{ActionKind::Launch, tid, std::move(copy)});
      ctr_spec_launched_->add();
      tracer_->instant(sched_trk_, "speculate",
                       {{"task", tid.value()}, {"tracker", status.tracker.value()}});
      emit(ClusterEventType::TaskSpeculated, t.job, tid, status.node);
      OSAP_LOG(Info, kLog) << "speculating " << tid << " on " << status.tracker
                           << " (eta " << eta << "s vs job mean " << mean << "s)";
    }
  }
  sim_.trace().profiler().add(trace::HotPath::SpeculationScan, scanned);
}

void JobTracker::reset_attempt_state(Task& task) {
  // Everything here is per-attempt: leaking it into the successor attempt
  // double-counts paging, resurrects stale checkpoint/suspend intents, or
  // (completed_at) makes a requeued task look finished. The durable
  // checkpoint inputs (spec.checkpoint_progress / checkpoint_state /
  // checkpoint_node) survive on disk across attempts and are cleared only
  // by an explicit kill or a checkpoint disk loss.
  set_task_progress(task, 0);
  task.checkpointed = false;
  task.use_checkpoint = false;
  task.swapped_out = 0;
  task.swapped_in = 0;
  task.completed_at = -1;
  task.completed_node = NodeId{};
  task.attempt_started_at = -1;
}

void JobTracker::check_leases() {
  if (cfg_.tracker_expiry > 0) {
    // Pop the due wheel buckets only. A tracker that heartbeat since it
    // was filed is lazily refiled at its true deadline; the rest expired.
    // Expiry fires in ascending TrackerId order — the order the old
    // every-tracker sweep declared them in.
    std::vector<TrackerId> expired;
    while (!lease_wheel_.empty() && lease_wheel_.begin()->first <= sim_.now()) {
      const std::vector<std::uint32_t> due = std::move(lease_wheel_.begin()->second);
      lease_wheel_.erase(lease_wheel_.begin());
      for (std::uint32_t idx : due) {
        TrackerSlot& s = tracker_slots_[idx];
        if (s.lost) {  // unfiled at loss; a stale filing is inert
          s.lease_deadline = -1;
          continue;
        }
        const SimTime deadline = s.last_heartbeat + cfg_.tracker_expiry;
        if (deadline > sim_.now()) {
          s.lease_deadline = deadline;
          lease_wheel_[deadline].push_back(idx);
        } else {
          s.lease_deadline = -1;
          expired.push_back(s.id);
        }
      }
    }
    std::sort(expired.begin(), expired.end());
    for (TrackerId id : expired) declare_lost(id);
  }
  lease_timer_ = sim_.after(cfg_.expiry_check_interval, [this] { check_leases(); });
}

void JobTracker::declare_lost(TrackerId id) {
  TrackerSlot* s = slot(id);
  OSAP_CHECK_MSG(s != nullptr, "declaring unknown " << id << " lost");
  const NodeId node = s->tracker->node();
  s->lost = true;
  s->draining = false;  // the drain window ends with the node
  s->lease_deadline = -1;  // out of the wheel until it rejoins
  ctr_trackers_lost_->add();
  tracer_->instant(trk_, "tracker_lost", {{"tracker", id.value()}});
  OSAP_LOG(Warn, kLog) << id << " lease expired at t=" << sim_.now() << ", declared lost";
  emit(ClusterEventType::TrackerLost, JobId{}, TaskId{}, node);

  // Kill orders addressed to the dead tracker can never be acked.
  for (auto it = must_kill_.begin(); it != must_kill_.end();) {
    std::erase_if(it->second, [id](const KillOrder& order) { return order.tracker == id; });
    it = it->second.empty() ? must_kill_.erase(it) : std::next(it);
  }

  // Forfeit racing backup attempts hosted on the dead tracker: the race
  // dissolves and the primary attempt carries on, budget untouched.
  // (Tracker loss is rare, so these remain full sweeps — the deque walks
  // tasks in ascending id, the old det::sorted_keys order.)
  for (Task& t : tasks_) {
    if (t.spec_tracker != id) continue;
    ctr_spec_lost_->add();
    emit(ClusterEventType::SpeculationLost, t.job, t.id, node);
    clear_speculative(t);
  }

  // Forfeit every attempt bound to the tracker — running *and* suspended:
  // a SIGTSTP-parked JVM dies with its node, so the suspended attempt's
  // work is gone and the task restarts from scratch elsewhere. Loss does
  // not charge the attempt budget (Hadoop's killed-vs-failed split). A
  // task with a surviving backup copy adopts it instead of requeueing.
  for (Task& t : tasks_) {
    if (t.tracker != id || !t.live()) continue;
    ctr_tasks_lost_->add();
    emit(ClusterEventType::TaskLost, t.job, t.id, t.node);
    if (t.speculating()) {
      promote_speculative(t);
      continue;
    }
    task_terminal(t, TaskState::Unassigned);
    reset_attempt_state(t);
  }

  // Re-run Succeeded maps whose output lived on the dead node: Hadoop 1
  // reduces fetch map output from the worker's local disk, so the outputs
  // died with it and shuffling reduces would wait forever.
  for (Task& t : tasks_) {
    if (t.state != TaskState::Succeeded || t.spec.type != TaskType::Map) continue;
    if (t.completed_node != node) continue;
    if (jobs_[t.job.value()].state != JobState::Running) continue;
    ctr_map_outputs_lost_->add();
    emit(ClusterEventType::MapOutputLost, t.job, t.id, node);
    set_task_state(t, TaskState::Unassigned);
    reset_attempt_state(t);
    --jobs_[t.job.value()].tasks_completed;
  }

  // Checkpoint files on the node's disk are gone too.
  lose_checkpoints_on(node);
  maybe_fail_cluster();
}

void JobTracker::lose_checkpoints_on(NodeId node) {
  for (Task& t : tasks_) {
    if (t.checkpoint_node != node) continue;
    ctr_checkpoints_lost_->add();
    t.spec.checkpoint_progress = 0;
    t.spec.checkpoint_state = 0;
    t.checkpoint_node = NodeId{};
    if (t.state == TaskState::Suspended && t.checkpointed) {
      // Parked on the lost checkpoint: nothing to resume, requeue from
      // scratch — unless a backup copy is racing, which becomes the
      // attempt.
      ctr_tasks_lost_->add();
      emit(ClusterEventType::TaskLost, t.job, t.id, node);
      t.checkpointed = false;
      if (t.speculating()) {
        promote_speculative(t);
        continue;
      }
      task_terminal(t, TaskState::Unassigned);
      reset_attempt_state(t);
    }
  }
}

bool JobTracker::warn_revocation(TrackerId id) {
  TrackerSlot* s = slot(id);
  // Out-of-order plans deliver warnings for nodes that already died (or
  // were never registered); the drain is simply moot then.
  if (s == nullptr || s->lost || s->draining) return false;
  s->draining = true;
  ctr_trackers_draining_->add();
  tracer_->instant(trk_, trace::names::kInstRevocationWarning, {{"tracker", id.value()}});
  OSAP_LOG(Warn, kLog) << id << " revocation warning at t=" << sim_.now() << ", draining";
  emit(ClusterEventType::NodeRevocationWarned, JobId{}, TaskId{}, s->tracker->node());
  return true;
}

bool JobTracker::evacuate_checkpoint(TaskId id, NodeId target) {
  Task& t = task_mutable(id);
  if (t.state != TaskState::Suspended || !t.checkpointed) return false;
  if (!target.valid() || t.checkpoint_node == target) return false;
  // The serialized state now lives on `target`: losing the doomed node no
  // longer voids the fast-forward, and a later disk loss on `target` does.
  t.checkpoint_node = target;
  ctr_checkpoints_evacuated_->add();
  tracer_->instant(trk_, trace::names::kInstCheckpointEvacuated,
                   {{"task", id.value()}, {"node", target.value()}});
  return true;
}

void JobTracker::fail_job(JobId id, TaskId cause, NodeId node) {
  Job& job = job_ref(id);
  if (job.state != JobState::Running) return;
  job.state = JobState::Failed;
  running_jobs_.erase(id);
  reindex_job(job);
  job.completed_at = sim_.now();
  ctr_jobs_failed_->add();
  // Reap the job's surviving attempts; the scheduler skips non-Running
  // jobs, so nothing relaunches. Snapshot the live index: kill_task
  // retires a checkpoint-parked task immediately, mutating the set.
  const std::vector<TaskId> live(job.live.begin(), job.live.end());
  for (TaskId tid : live) {
    if (tasks_[tid.value()].live()) kill_task(tid);
  }
  tracer_->async_end(trk_, "job", id.value(), {{"failed", 1}});
  OSAP_LOG(Warn, kLog) << "job " << id << " FAILED at t=" << sim_.now();
  emit(ClusterEventType::JobFailed, id, cause, node);
  if (scheduler_ != nullptr) scheduler_->job_completed(id);
}

void JobTracker::note_tracker_failure(TrackerId id, NodeId node) {
  if (cfg_.tracker_blacklist_failures <= 0) return;
  TrackerSlot* s = slot(id);
  OSAP_CHECK_MSG(s != nullptr, "attempt failure on unknown " << id);
  const int failures = ++s->failures;
  if (failures < cfg_.tracker_blacklist_failures || s->blacklisted) return;
  s->blacklisted = true;
  ctr_trackers_blacklisted_->add();
  tracer_->instant(trk_, "tracker_blacklisted", {{"tracker", id.value()}});
  OSAP_LOG(Warn, kLog) << id << " blacklisted after " << failures << " attempt failures";
  emit(ClusterEventType::TrackerBlacklisted, JobId{}, TaskId{}, node);
  maybe_fail_cluster();
}

void JobTracker::maybe_fail_cluster() {
  if (tracker_slots_.empty()) return;
  for (const TrackerSlot& s : tracker_slots_) {
    if (!s.lost && !s.blacklisted) return;
  }
  // No tracker left to run anything: every Running job fails now rather
  // than waiting on heartbeats that cannot come. Snapshot: fail_job
  // shrinks the running set as it goes.
  const std::vector<JobId> running(running_jobs_.begin(), running_jobs_.end());
  for (JobId jid : running) fail_job(jid, TaskId{}, NodeId{});
}

void JobTracker::maybe_complete_job(JobId id) {
  Job& job = job_ref(id);
  if (job.state != JobState::Running) return;
  if (job.tasks_completed < static_cast<int>(job.tasks.size())) return;
  job.state = JobState::Succeeded;
  running_jobs_.erase(id);
  reindex_job(job);
  job.completed_at = sim_.now();
  tracer_->async_end(trk_, "job", id.value(),
                     {{"tasks", static_cast<std::uint64_t>(job.tasks.size())}});
  OSAP_LOG(Info, kLog) << "job " << id << " completed, sojourn " << job.sojourn() << "s";
  emit(ClusterEventType::JobCompleted, id, TaskId{}, NodeId{});
  if (scheduler_ != nullptr) scheduler_->job_completed(id);
}

void JobTracker::on_heartbeat(TrackerStatus status) {
  TrackerSlot* s = slot(status.tracker);
  OSAP_LOG(Debug, kLog) << "heartbeat from " << status.tracker << " (" << status.reports.size()
                        << " reports, " << status.free_map_slots << " free map slots)";
  if (s == nullptr) return;
  TaskTracker* tt = s->tracker;
  ctr_heartbeats_->add();
  sim_.trace().profiler().add(trace::HotPath::HeartbeatHandle, status.reports.size());

  if (s->lost) {
    // The tracker was expired while actually alive (a heartbeat-loss
    // window or a daemon hang). Everything it hosted has already been
    // requeued, so its reports describe attempts we forfeited: skip them
    // and order a clean-slate reinitialization — Hadoop 1's answer to a
    // tracker that heartbeats after being declared lost.
    s->lost = false;
    s->draining = false;  // any pre-death warning is void after the rejoin
    s->last_heartbeat = sim_.now();
    file_lease(static_cast<std::uint32_t>(s - tracker_slots_.data()));
    ctr_tracker_reinits_->add();
    tracer_->instant(trk_, "tracker_reinit", {{"tracker", status.tracker.value()}});
    OSAP_LOG(Warn, kLog) << status.tracker << " rejoined after expiry, reinitializing";
    HeartbeatResponse reinit;
    reinit.actions.push_back(TaskAction{ActionKind::ReinitTracker, TaskId{}, {}});
    ctr_actions_->add();
    net_.send(master_, status.node, [tt, reinit = std::move(reinit)]() mutable {
      tt->on_response(std::move(reinit));
    });
    return;
  }
  s->last_heartbeat = sim_.now();

  for (const TaskStatusReport& report : status.reports) apply_report(status, report);

  HeartbeatResponse response;

  // Piggyback pending kill / suspend / resume commands addressed to this
  // tracker (§III-B).
  // Action order inside one response is tracker-visible (the TaskTracker
  // applies them in sequence); the pending-command maps are ordered, so
  // plain iteration walks them in task-id order.
  for (auto& [tid, orders] : must_kill_) {
    for (KillOrder& order : orders) {
      if (order.sent || order.tracker != status.tracker) continue;
      response.actions.push_back(TaskAction{ActionKind::Kill, tid, {}});
      order.sent = true;
    }
  }
  for (auto& [tid, sent] : command_sent_) {
    if (sent) continue;
    Task& t = tasks_[tid.value()];
    if (t.tracker != status.tracker) continue;
    if (t.state == TaskState::MustSuspend) {
      response.actions.push_back(TaskAction{
          t.use_checkpoint ? ActionKind::CheckpointSuspend : ActionKind::Suspend, tid, {}});
      sent = true;
    } else if (t.state == TaskState::MustResume) {
      response.actions.push_back(TaskAction{ActionKind::Resume, tid, {}});
      sent = true;
    }
  }
  for (auto& [tid, pending] : maps_done_pending_) {
    const Task& t = tasks_[tid.value()];
    if (!pending.primary_sent && t.tracker == status.tracker) {
      response.actions.push_back(TaskAction{ActionKind::MapsDone, tid, {}});
      pending.primary_sent = true;
    }
    if (!pending.spec_sent && t.speculating() && t.spec_tracker == status.tracker) {
      response.actions.push_back(TaskAction{ActionKind::MapsDone, tid, {}});
      pending.spec_sent = true;
    }
  }

  // Ask the scheduler for work for the free slots. Blacklisted and
  // revocation-draining trackers still heartbeat (their in-flight acks
  // matter) but get no new work.
  if (scheduler_ != nullptr && !s->blacklisted && !s->draining) {
    int free_maps = status.free_map_slots;
    int free_reduces = status.free_reduce_slots;
    const std::vector<TaskId> assigned = scheduler_->assign(status);
    sim_.trace().profiler().add(trace::HotPath::SchedulerAssign, assigned.size());
    for (TaskId tid : assigned) {
      Task& t = tasks_[tid.value()];
      OSAP_CHECK_MSG(t.state == TaskState::Unassigned,
                     "scheduler assigned " << tid << " in state " << to_string(t.state));
      // A race-losing attempt of this very task may still be dying on the
      // tracker (kill order in flight): launching there would collide
      // with it, so leave the task pooled for a later heartbeat.
      if (kill_pending_on(tid, status.tracker)) continue;
      set_task_state(t, TaskState::Running);
      t.node = status.node;
      t.tracker = status.tracker;
      ++t.attempts_started;
      t.attempt_started_at = sim_.now();
      if (t.first_launched_at < 0) t.first_launched_at = sim_.now();
      if (t.spec.type == TaskType::Reduce) {
        // Stamp the barrier flag per attempt: a reduce launched while maps
        // still run must block after its shuffle until MapsDone arrives.
        t.spec.wait_for_maps = maps_pending(jobs_[t.job.value()]);
      }
      --(t.spec.type == TaskType::Map ? free_maps : free_reduces);
      TaskAction action{ActionKind::Launch, tid, t.spec};
      response.actions.push_back(std::move(action));
      ctr_assignments_->add();
      tracer_->instant(sched_trk_, "assign",
                       {{"task", tid.value()}, {"tracker", status.tracker.value()}});
      emit(ClusterEventType::TaskLaunched, t.job, tid, status.node);
    }
    // Straggler detection fills whatever slots the scheduler left over.
    maybe_speculate(status, free_maps, free_reduces, response);
  }
  ctr_actions_->add(response.actions.size());

  // Every heartbeat gets a response, even an empty one.
  net_.send(master_, status.node, [tt, response = std::move(response)]() mutable {
    tt->on_response(std::move(response));
  });
}

const Job& JobTracker::job(JobId id) const {
  OSAP_CHECK_MSG(id.value() < jobs_.size(), "unknown " << id);
  return jobs_[id.value()];
}

const Task& JobTracker::task(TaskId id) const {
  OSAP_CHECK_MSG(id.value() < tasks_.size(), "unknown " << id);
  return tasks_[id.value()];
}

Task& JobTracker::task_mutable(TaskId id) {
  OSAP_CHECK_MSG(id.value() < tasks_.size(), "unknown " << id);
  return tasks_[id.value()];
}

bool JobTracker::all_jobs_done() const {
  return running_jobs_.empty();
}

void JobTracker::audit(std::vector<std::string>& violations) const {
  const auto flag = [&violations](const auto&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    violations.push_back(os.str());
  };
  for (const Task& t : tasks_) {
    const TaskId tid = t.id;
    if (t.progress < -1e-9 || t.progress > 1.0 + 1e-9) {
      flag(tid, " progress ", t.progress, " out of [0,1]");
    }
    const bool bound = t.tracker.valid();
    const bool checkpoint_parked = t.state == TaskState::Suspended && t.checkpointed;
    if (t.live() && !checkpoint_parked && !bound) {
      flag(tid, " is ", to_string(t.state), " but bound to no tracker");
    }
    if (!t.live() && bound) {
      flag(tid, " is ", to_string(t.state), " but still bound to ", t.tracker);
    }
    if (checkpoint_parked && bound) {
      flag(tid, " is checkpoint-suspended but still bound to ", t.tracker);
    }
    if (bound && slot(t.tracker) == nullptr) {
      flag(tid, " bound to unregistered ", t.tracker);
    }
    if (bound && tracker_lost(t.tracker)) {
      flag(tid, " still bound to lost ", t.tracker);
    }
    if (t.speculating()) {
      if (!t.live()) flag(tid, " is ", to_string(t.state), " but still has a backup attempt");
      if (t.spec_tracker == t.tracker) flag(tid, " races both attempts on ", t.tracker);
      if (slot(t.spec_tracker) == nullptr) {
        flag(tid, " backup attempt on unregistered ", t.spec_tracker);
      }
      if (tracker_lost(t.spec_tracker)) {
        flag(tid, " backup attempt still on lost ", t.spec_tracker);
      }
      if (t.spec_started_at < 0) flag(tid, " backup attempt without a launch time");
    }
    if (t.attempts_failed < 0 ||
        (cfg_.max_task_attempts > 0 && t.attempts_failed > cfg_.max_task_attempts)) {
      flag(tid, " has ", t.attempts_failed, " failed attempts (cap ",
           cfg_.max_task_attempts, ")");
    }
    if (t.state == TaskState::Failed && jobs_[t.job.value()].state != JobState::Failed) {
      flag(tid, " is Failed but its ", t.job, " is ",
           jobs_[t.job.value()].state == JobState::Running ? "Running" : "not Failed");
    }
  }
  // Lease-wheel consistency: every filing matches its slot's recorded
  // deadline, and (with expiry enabled) each slot is filed exactly once
  // while live, never while lost.
  std::vector<int> filings(tracker_slots_.size(), 0);
  for (const auto& [deadline, idxs] : lease_wheel_) {
    for (std::uint32_t idx : idxs) {
      if (idx >= tracker_slots_.size()) {
        flag("lease wheel files unknown tracker slot ", idx);
        continue;
      }
      ++filings[idx];
      if (tracker_slots_[idx].lease_deadline != deadline) {
        flag(tracker_slots_[idx].id, " filed in the lease wheel at t=", deadline,
             " but its slot records t=", tracker_slots_[idx].lease_deadline);
      }
    }
  }
  for (std::size_t i = 0; i < tracker_slots_.size(); ++i) {
    const TrackerSlot& s = tracker_slots_[i];
    const int expected = (cfg_.tracker_expiry > 0 && !s.lost) ? 1 : 0;
    if (filings[i] != expected) {
      flag(s.id, " has ", filings[i], " lease-wheel filings (expected ", expected, ")");
    }
  }
  const auto check_command_map = [&](const auto& map, const char* what) {
    for (const auto& [tid, unused] : map) {
      (void)unused;
      if (tid.value() >= tasks_.size()) {
        flag(what, " command addressed to unknown ", tid);
      } else if (!tasks_[tid.value()].live()) {
        flag(what, " command pending for ", tid, " in terminal state ",
             to_string(tasks_[tid.value()].state));
      }
    }
  };
  check_command_map(command_sent_, "suspend/resume");
  check_command_map(maps_done_pending_, "maps-done");
  // Kill orders get their own rules: an attempt-only order may outlive the
  // task's live states (it tracks a dying race loser), but every order
  // must target a registered, non-lost tracker, at most once per tracker.
  for (const auto& [tid, orders] : must_kill_) {
    if (tid.value() >= tasks_.size()) {
      flag("kill command addressed to unknown ", tid);
      continue;
    }
    const Task& t = tasks_[tid.value()];
    if (orders.empty()) flag("empty kill-order list for ", tid);
    for (std::size_t i = 0; i < orders.size(); ++i) {
      const KillOrder& order = orders[i];
      if (!order.attempt_only && !t.live()) {
        flag("kill command pending for ", tid, " in terminal state ", to_string(t.state));
      }
      if (slot(order.tracker) == nullptr) {
        flag("kill order for ", tid, " targets unregistered ", order.tracker);
      }
      if (tracker_lost(order.tracker)) {
        flag("kill order for ", tid, " targets lost ", order.tracker);
      }
      for (std::size_t j = i + 1; j < orders.size(); ++j) {
        if (orders[j].tracker == order.tracker) {
          flag("duplicate kill orders for ", tid, " on ", order.tracker);
        }
      }
    }
  }
  for (JobId jid : job_order_) {
    const Job& job = jobs_[jid.value()];
    // Recompute the incremental indexes from the ground truth (task
    // states) — the choke point must have kept them exact.
    FlatIdSet<TaskId> unassigned;
    FlatIdSet<TaskId> live;
    FlatIdSet<TaskId> suspended;
    FlatIdSet<TaskId> not_done;
    int speculating = 0;
    int maps_not_succeeded = 0;
    int succeeded = 0;
    Bytes remaining_bytes = 0;
    for (TaskId tid : job.tasks) {
      const Task& t = tasks_[tid.value()];
      if (t.state == TaskState::Succeeded) ++succeeded;
      if (t.state == TaskState::Unassigned) unassigned.insert(tid);
      if (t.live()) live.insert(tid);
      if (t.state == TaskState::Suspended) suspended.insert(tid);
      if (!t.done()) not_done.insert(tid);
      if (t.speculating()) ++speculating;
      if (t.spec.type == TaskType::Map && t.state != TaskState::Succeeded) {
        ++maps_not_succeeded;
      }
      remaining_bytes += remaining_contrib(t);
    }
    if (unassigned != job.unassigned) flag(jid, " unassigned-task index out of sync");
    if (live != job.live) flag(jid, " live-task index out of sync");
    if (suspended != job.suspended) flag(jid, " suspended-task index out of sync");
    if (not_done != job.not_done) flag(jid, " not-done-task index out of sync");
    if (remaining_bytes != job.remaining_bytes) {
      flag(jid, " remaining-bytes total is ", job.remaining_bytes, " but tasks sum to ",
           remaining_bytes);
    }
    const bool should_file = job.state == JobState::Running && job.remaining_bytes != 0;
    const Bytes want_key = should_file ? job.remaining_bytes : 0;
    if (job.indexed_remaining != want_key) {
      flag(jid, " filed under remaining key ", job.indexed_remaining, ", expected ", want_key);
    }
    if (should_file && !jobs_by_remaining_.contains({job.remaining_bytes, jid})) {
      flag(jid, " missing from the jobs-by-remaining index");
    }
    const bool should_schedule = job.state == JobState::Running && !job.unassigned.empty();
    if (schedulable_jobs_.contains(jid) != should_schedule) {
      flag(jid, should_schedule ? " missing from" : " stale in", " the schedulable-jobs index");
    }
    if (speculating != job.speculating) {
      flag(jid, " counts ", job.speculating, " racing copies but ", speculating, " are bound");
    }
    if (maps_not_succeeded != job.maps_not_succeeded) {
      flag(jid, " counts ", job.maps_not_succeeded, " pending maps but ", maps_not_succeeded,
           " are not SUCCEEDED");
    }
    if ((job.state == JobState::Running) != running_jobs_.contains(jid)) {
      flag(jid, " running-set membership disagrees with its state");
    }
    if (job.tasks_completed != succeeded) {
      flag(jid, " counts ", job.tasks_completed, " completed tasks but ", succeeded,
           " have SUCCEEDED");
    }
    if (job.state == JobState::Succeeded && succeeded != static_cast<int>(job.tasks.size())) {
      flag(jid, " marked Succeeded with only ", succeeded, "/", job.tasks.size(),
           " tasks done");
    }
    if (job.state == JobState::Failed && job.completed_at < 0) {
      flag(jid, " marked Failed without a completion time");
    }
  }
}

void JobTracker::dump(std::ostream& os) const {
  os << jobs_.size() << " jobs, " << tasks_.size() << " tasks; pending commands: "
     << command_sent_.size() << " susp/res, " << must_kill_.size() << " kill, "
     << maps_done_pending_.size() << " maps-done\n";
  std::vector<TrackerId> lost;
  std::vector<TrackerId> blacklisted;
  for (const TrackerSlot& s : tracker_slots_) {
    if (s.lost) lost.push_back(s.id);
    if (s.blacklisted) blacklisted.push_back(s.id);
  }
  if (!lost.empty() || !blacklisted.empty()) {
    std::sort(lost.begin(), lost.end());
    std::sort(blacklisted.begin(), blacklisted.end());
    os << "  trackers:";
    for (TrackerId id : lost) os << ' ' << id << "[lost]";
    for (TrackerId id : blacklisted) os << ' ' << id << "[blacklisted]";
    os << '\n';
  }
  for (JobId jid : job_order_) {
    const Job& job = jobs_[jid.value()];
    os << "  " << jid << " (" << job.spec.name << ") " << job.tasks_completed << "/"
       << job.tasks.size() << " done\n";
    for (TaskId tid : job.tasks) {
      const Task& t = tasks_[tid.value()];
      os << "    " << tid << ' ' << std::setw(9) << to_string(t.spec.type) << ' '
         << std::setw(12) << to_string(t.state) << " progress="
         << std::fixed << std::setprecision(2) << t.progress;
      if (t.tracker.valid()) os << " on " << t.tracker;
      if (t.checkpointed) os << " [checkpointed]";
      if (t.speculating()) {
        os << " [copy on " << t.spec_tracker << " progress=" << std::fixed
           << std::setprecision(2) << t.spec_progress << "]";
      }
      os << '\n';
    }
  }
}

}  // namespace osap
