#include "hadoop/job_tracker.hpp"

#include <iomanip>
#include <sstream>

#include "common/det.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "hadoop/task_tracker.hpp"
#include "trace/context.hpp"

namespace osap {

namespace {
constexpr const char* kLog = "jobtracker";
}

JobTracker::JobTracker(Simulation& sim, Network& net, NodeId master, HadoopConfig cfg)
    : sim_(sim), net_(net), master_(master), cfg_(cfg) {
  sim_.audits().add(this);
  tracer_ = &sim_.trace().tracer();
  trk_ = tracer_->track("cluster", "jobtracker");
  sched_trk_ = tracer_->track("cluster", "scheduler");
  shuffle_trk_ = tracer_->track("cluster", "shuffle");
  trace::CounterRegistry& counters = sim_.trace().counters();
  ctr_heartbeats_ = &counters.counter("jobtracker.heartbeats_handled");
  ctr_actions_ = &counters.counter("jobtracker.actions_sent");
  ctr_oob_maps_done_ = &counters.counter("jobtracker.oob_maps_done_pushes");
  ctr_assignments_ = &counters.counter("scheduler.assignments");
  ctr_suspends_ = &counters.counter("jobtracker.suspend_requests");
  ctr_resumes_ = &counters.counter("jobtracker.resume_requests");
}

JobTracker::~JobTracker() { sim_.audits().remove(this); }

void JobTracker::register_tracker(TaskTracker& tracker) {
  const bool inserted = trackers_.emplace(tracker.id(), &tracker).second;
  OSAP_CHECK_MSG(inserted, tracker.id() << " registered twice");
}

void JobTracker::set_scheduler(Scheduler* scheduler) {
  scheduler_ = scheduler;
  if (scheduler_ != nullptr) scheduler_->attach(*this);
}

TaskTracker* JobTracker::tracker(TrackerId id) {
  const auto it = trackers_.find(id);
  return it == trackers_.end() ? nullptr : it->second;
}

void JobTracker::emit(ClusterEventType type, JobId job, TaskId task, NodeId node) {
  if (event_hooks_.empty()) return;
  const ClusterEvent event{sim_.now(), type, job, task, node};
  for (const auto& hook : event_hooks_) hook(event);
}

JobId JobTracker::submit_job(JobSpec spec) {
  Job job;
  job.id = job_ids_.next();
  job.submitted_at = sim_.now();
  for (TaskSpec& ts : spec.tasks) {
    Task task;
    task.id = task_ids_.next();
    task.job = job.id;
    if (ts.name == "task") ts.name = spec.name + "/" + std::to_string(job.tasks.size());
    task.spec = ts;
    job.tasks.push_back(task.id);
    tasks_.emplace(task.id, std::move(task));
  }
  job.spec = std::move(spec);
  const JobId id = job.id;
  OSAP_LOG(Info, kLog) << "job " << id << " (" << job.spec.name << ") submitted with "
                       << job.tasks.size() << " tasks";
  jobs_.emplace(id, std::move(job));
  job_order_.push_back(id);
  const Job& stored = jobs_.at(id);
  tracer_->async_begin(trk_, "job", id.value(),
                       {{"name", stored.spec.name},
                        {"tasks", static_cast<std::uint64_t>(stored.tasks.size())}});
  emit(ClusterEventType::JobSubmitted, id, TaskId{}, NodeId{});
  if (scheduler_ != nullptr) scheduler_->job_added(id);
  return id;
}

bool JobTracker::suspend_task(TaskId id) {
  Task& t = task_mutable(id);
  if (t.state != TaskState::Running) {
    OSAP_LOG(Warn, kLog) << "suspend " << id << " rejected in state " << to_string(t.state);
    return false;
  }
  t.state = TaskState::MustSuspend;
  command_sent_[id] = false;
  ctr_suspends_->add();
  tracer_->async_begin(trk_, "suspend", id.value(), {{"kind", "sigtstp"}});
  emit(ClusterEventType::TaskSuspendRequested, t.job, id, t.node);
  return true;
}

bool JobTracker::checkpoint_suspend_task(TaskId id) {
  Task& t = task_mutable(id);
  if (t.state != TaskState::Running) {
    OSAP_LOG(Warn, kLog) << "checkpoint-suspend " << id << " rejected in state "
                         << to_string(t.state);
    return false;
  }
  t.state = TaskState::MustSuspend;
  t.use_checkpoint = true;
  command_sent_[id] = false;
  ctr_suspends_->add();
  tracer_->async_begin(trk_, "suspend", id.value(), {{"kind", "checkpoint"}});
  emit(ClusterEventType::TaskSuspendRequested, t.job, id, t.node);
  return true;
}

bool JobTracker::resume_task(TaskId id) {
  Task& t = task_mutable(id);
  if (t.state != TaskState::Suspended) {
    OSAP_LOG(Warn, kLog) << "resume " << id << " rejected in state " << to_string(t.state);
    return false;
  }
  ctr_resumes_->add();
  emit(ClusterEventType::TaskResumeRequested, t.job, id, t.node);
  if (t.checkpointed) {
    tracer_->instant(trk_, "resume_checkpointed", {{"task", id.value()}});
    // No process to SIGCONT: relaunch with fast-forward from the saved
    // counters (and re-read of any serialized state).
    t.spec.checkpoint_progress = t.progress;
    t.spec.checkpoint_state = t.spec.state_memory + 64 * KiB;
    t.checkpointed = false;
    t.use_checkpoint = false;
    t.progress = 0;
    task_terminal(t, TaskState::Unassigned);
    return true;
  }
  t.state = TaskState::MustResume;
  command_sent_[id] = false;
  tracer_->async_begin(trk_, "resume", id.value());
  return true;
}

bool JobTracker::kill_task(TaskId id) {
  Task& t = task_mutable(id);
  if (!t.live()) {
    OSAP_LOG(Warn, kLog) << "kill " << id << " rejected in state " << to_string(t.state);
    return false;
  }
  must_kill_[id] = false;  // false = not yet sent
  emit(ClusterEventType::TaskKillRequested, t.job, id, t.node);
  return true;
}

void JobTracker::apply_report(const TrackerStatus& status, const TaskStatusReport& report) {
  const auto it = tasks_.find(report.task);
  if (it == tasks_.end()) return;
  Task& t = it->second;
  t.swapped_out = std::max(t.swapped_out, report.swapped_out);
  t.swapped_in = std::max(t.swapped_in, report.swapped_in);
  switch (report.kind) {
    case ReportKind::Progress:
      if (t.live()) t.progress = report.progress;
      break;
    case ReportKind::Suspended:
      if (t.state == TaskState::MustSuspend) {
        t.state = TaskState::Suspended;
        tracer_->async_end(trk_, "suspend", t.id.value());
        emit(ClusterEventType::TaskSuspended, t.job, t.id, status.node);
      }
      break;
    case ReportKind::Resumed:
      if (t.state == TaskState::MustResume || t.state == TaskState::Suspended) {
        if (t.state == TaskState::MustResume) {
          tracer_->async_end(trk_, "resume", t.id.value());
        }
        t.state = TaskState::Running;
        emit(ClusterEventType::TaskResumed, t.job, t.id, status.node);
      }
      break;
    case ReportKind::Succeeded:
      if (!t.done()) {
        t.progress = 1.0;
        t.completed_at = sim_.now();
        task_terminal(t, TaskState::Succeeded);
        emit(ClusterEventType::TaskSucceeded, t.job, t.id, status.node);
        Job& job = jobs_.at(t.job);
        ++job.tasks_completed;
        if (t.spec.type == TaskType::Map) maybe_release_reduces(t.job);
        maybe_complete_job(t.job);
      }
      break;
    case ReportKind::KilledAck: {
      // The attempt is gone and its temporary output cleaned; the task
      // itself goes back to the pool, losing all progress — the kill
      // primitive's defining cost.
      emit(ClusterEventType::TaskKilled, t.job, t.id, status.node);
      task_terminal(t, TaskState::Unassigned);
      t.progress = 0;
      break;
    }
    case ReportKind::Failed:
      emit(ClusterEventType::TaskFailed, t.job, t.id, status.node);
      task_terminal(t, TaskState::Unassigned);
      t.progress = 0;
      break;
    case ReportKind::Checkpointed:
      if (t.state == TaskState::MustSuspend) {
        t.state = TaskState::Suspended;
        tracer_->async_end(trk_, "suspend", t.id.value(), {{"checkpointed", 1}});
        t.checkpointed = true;
        t.progress = report.progress;
        // The JVM is gone; the task is no longer bound to the tracker
        // (though checkpoint files make same-node relaunches cheaper).
        t.node = NodeId{};
        t.tracker = TrackerId{};
        command_sent_.erase(t.id);
        emit(ClusterEventType::TaskSuspended, t.job, t.id, status.node);
      }
      break;
  }
}

void JobTracker::task_terminal(Task& task, TaskState state) {
  // Close any suspend/resume span left open by a task that went terminal
  // mid-protocol (killed or failed between the request and the ack).
  if (task.state == TaskState::MustSuspend) {
    tracer_->async_end(trk_, "suspend", task.id.value(), {{"aborted", 1}});
  } else if (task.state == TaskState::MustResume) {
    tracer_->async_end(trk_, "resume", task.id.value(), {{"aborted", 1}});
  }
  task.state = state;
  task.node = NodeId{};
  task.tracker = TrackerId{};
  command_sent_.erase(task.id);
  must_kill_.erase(task.id);
  maps_done_pending_.erase(task.id);
}

bool JobTracker::maps_pending(const Job& job) const {
  for (TaskId tid : job.tasks) {
    const Task& t = tasks_.at(tid);
    if (t.spec.type == TaskType::Map && t.state != TaskState::Succeeded) return true;
  }
  return false;
}

void JobTracker::maybe_release_reduces(JobId id) {
  const Job& job = jobs_.at(id);
  if (maps_pending(job)) return;
  for (TaskId tid : job.tasks) {
    const Task& t = tasks_.at(tid);
    if (t.spec.type != TaskType::Reduce || !t.spec.wait_for_maps) continue;
    if (!t.live() || !t.tracker.valid()) continue;
    // Span from "last map succeeded" to the TaskTracker applying the
    // release — the latency the out-of-band push exists to cut.
    tracer_->async_begin(shuffle_trk_, "maps_done_delivery", tid.value(),
                         {{"task", tid.value()}});
    TaskTracker* tt = tracker(t.tracker);
    if (cfg_.oob_maps_done && tt != nullptr) {
      // Push the barrier release immediately instead of parking it until
      // the reduce's next periodic heartbeat. Goes through
      // deliver_actions, not on_response, so it never consumes the
      // tracker's heartbeat round-trip bookkeeping.
      ctr_oob_maps_done_->add();
      ctr_actions_->add();
      HeartbeatResponse push;
      push.actions.push_back(TaskAction{ActionKind::MapsDone, tid, {}});
      net_.send(master_, t.node, [tt, push = std::move(push)]() mutable {
        tt->deliver_actions(std::move(push));
      });
    } else {
      maps_done_pending_.emplace(tid, false);
    }
  }
}

void JobTracker::maybe_complete_job(JobId id) {
  Job& job = jobs_.at(id);
  if (job.state != JobState::Running) return;
  if (job.tasks_completed < static_cast<int>(job.tasks.size())) return;
  job.state = JobState::Succeeded;
  job.completed_at = sim_.now();
  tracer_->async_end(trk_, "job", id.value(),
                     {{"tasks", static_cast<std::uint64_t>(job.tasks.size())}});
  OSAP_LOG(Info, kLog) << "job " << id << " completed, sojourn " << job.sojourn() << "s";
  emit(ClusterEventType::JobCompleted, id, TaskId{}, NodeId{});
  if (scheduler_ != nullptr) scheduler_->job_completed(id);
}

void JobTracker::on_heartbeat(TrackerStatus status) {
  TaskTracker* tt = tracker(status.tracker);
  OSAP_LOG(Debug, kLog) << "heartbeat from " << status.tracker << " (" << status.reports.size()
                        << " reports, " << status.free_map_slots << " free map slots)";
  if (tt == nullptr) return;
  ctr_heartbeats_->add();
  sim_.trace().profiler().add(trace::HotPath::HeartbeatHandle, status.reports.size());

  for (const TaskStatusReport& report : status.reports) apply_report(status, report);

  HeartbeatResponse response;

  // Piggyback pending kill / suspend / resume commands addressed to this
  // tracker (§III-B).
  // Action order inside one response is tracker-visible (the TaskTracker
  // applies them in sequence), so walk each pending-command map in task-id
  // order, never hash order.
  for (TaskId tid : det::sorted_keys(must_kill_)) {
    bool& sent = must_kill_.at(tid);
    if (sent) continue;
    const Task& t = tasks_.at(tid);
    if (t.tracker != status.tracker) continue;
    response.actions.push_back(TaskAction{ActionKind::Kill, tid, {}});
    sent = true;
  }
  for (TaskId tid : det::sorted_keys(command_sent_)) {
    bool& sent = command_sent_.at(tid);
    if (sent) continue;
    Task& t = tasks_.at(tid);
    if (t.tracker != status.tracker) continue;
    if (t.state == TaskState::MustSuspend) {
      response.actions.push_back(TaskAction{
          t.use_checkpoint ? ActionKind::CheckpointSuspend : ActionKind::Suspend, tid, {}});
      sent = true;
    } else if (t.state == TaskState::MustResume) {
      response.actions.push_back(TaskAction{ActionKind::Resume, tid, {}});
      sent = true;
    }
  }
  for (TaskId tid : det::sorted_keys(maps_done_pending_)) {
    bool& sent = maps_done_pending_.at(tid);
    if (sent) continue;
    const Task& t = tasks_.at(tid);
    if (t.tracker != status.tracker) continue;
    response.actions.push_back(TaskAction{ActionKind::MapsDone, tid, {}});
    sent = true;
  }

  // Ask the scheduler for work for the free slots.
  if (scheduler_ != nullptr) {
    const std::vector<TaskId> assigned = scheduler_->assign(status);
    sim_.trace().profiler().add(trace::HotPath::SchedulerAssign, assigned.size());
    for (TaskId tid : assigned) {
      Task& t = tasks_.at(tid);
      OSAP_CHECK_MSG(t.state == TaskState::Unassigned,
                     "scheduler assigned " << tid << " in state " << to_string(t.state));
      t.state = TaskState::Running;
      t.node = status.node;
      t.tracker = status.tracker;
      ++t.attempts_started;
      if (t.first_launched_at < 0) t.first_launched_at = sim_.now();
      if (t.spec.type == TaskType::Reduce) {
        // Stamp the barrier flag per attempt: a reduce launched while maps
        // still run must block after its shuffle until MapsDone arrives.
        t.spec.wait_for_maps = maps_pending(jobs_.at(t.job));
      }
      TaskAction action{ActionKind::Launch, tid, t.spec};
      response.actions.push_back(std::move(action));
      ctr_assignments_->add();
      tracer_->instant(sched_trk_, "assign",
                       {{"task", tid.value()}, {"tracker", status.tracker.value()}});
      emit(ClusterEventType::TaskLaunched, t.job, tid, status.node);
    }
  }
  ctr_actions_->add(response.actions.size());

  // Every heartbeat gets a response, even an empty one.
  net_.send(master_, status.node, [tt, response = std::move(response)]() mutable {
    tt->on_response(std::move(response));
  });
}

const Job& JobTracker::job(JobId id) const {
  const auto it = jobs_.find(id);
  OSAP_CHECK_MSG(it != jobs_.end(), "unknown " << id);
  return it->second;
}

const Task& JobTracker::task(TaskId id) const {
  const auto it = tasks_.find(id);
  OSAP_CHECK_MSG(it != tasks_.end(), "unknown " << id);
  return it->second;
}

Task& JobTracker::task_mutable(TaskId id) {
  const auto it = tasks_.find(id);
  OSAP_CHECK_MSG(it != tasks_.end(), "unknown " << id);
  return it->second;
}

bool JobTracker::all_jobs_done() const {
  for (JobId id : job_order_) {
    if (jobs_.at(id).state == JobState::Running) return false;
  }
  return true;
}

void JobTracker::audit(std::vector<std::string>& violations) const {
  const auto flag = [&violations](const auto&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    violations.push_back(os.str());
  };
  for (TaskId tid : det::sorted_keys(tasks_)) {
    const Task& t = tasks_.at(tid);
    if (t.progress < -1e-9 || t.progress > 1.0 + 1e-9) {
      flag(tid, " progress ", t.progress, " out of [0,1]");
    }
    const bool bound = t.tracker.valid();
    const bool checkpoint_parked = t.state == TaskState::Suspended && t.checkpointed;
    if (t.live() && !checkpoint_parked && !bound) {
      flag(tid, " is ", to_string(t.state), " but bound to no tracker");
    }
    if (!t.live() && bound) {
      flag(tid, " is ", to_string(t.state), " but still bound to ", t.tracker);
    }
    if (checkpoint_parked && bound) {
      flag(tid, " is checkpoint-suspended but still bound to ", t.tracker);
    }
    if (bound && trackers_.find(t.tracker) == trackers_.end()) {
      flag(tid, " bound to unregistered ", t.tracker);
    }
  }
  const auto check_command_map = [&](const auto& map, const char* what) {
    for (TaskId tid : det::sorted_keys(map)) {
      const auto it = tasks_.find(tid);
      if (it == tasks_.end()) {
        flag(what, " command addressed to unknown ", tid);
      } else if (!it->second.live()) {
        flag(what, " command pending for ", tid, " in terminal state ",
             to_string(it->second.state));
      }
    }
  };
  check_command_map(command_sent_, "suspend/resume");
  check_command_map(must_kill_, "kill");
  check_command_map(maps_done_pending_, "maps-done");
  for (JobId jid : job_order_) {
    const Job& job = jobs_.at(jid);
    int succeeded = 0;
    for (TaskId tid : job.tasks) {
      if (tasks_.at(tid).state == TaskState::Succeeded) ++succeeded;
    }
    if (job.tasks_completed != succeeded) {
      flag(jid, " counts ", job.tasks_completed, " completed tasks but ", succeeded,
           " have SUCCEEDED");
    }
    if (job.state == JobState::Succeeded && succeeded != static_cast<int>(job.tasks.size())) {
      flag(jid, " marked Succeeded with only ", succeeded, "/", job.tasks.size(),
           " tasks done");
    }
  }
}

void JobTracker::dump(std::ostream& os) const {
  os << jobs_.size() << " jobs, " << tasks_.size() << " tasks; pending commands: "
     << command_sent_.size() << " susp/res, " << must_kill_.size() << " kill, "
     << maps_done_pending_.size() << " maps-done\n";
  for (JobId jid : job_order_) {
    const Job& job = jobs_.at(jid);
    os << "  " << jid << " (" << job.spec.name << ") " << job.tasks_completed << "/"
       << job.tasks.size() << " done\n";
    for (TaskId tid : job.tasks) {
      const Task& t = tasks_.at(tid);
      os << "    " << tid << ' ' << std::setw(9) << to_string(t.spec.type) << ' '
         << std::setw(12) << to_string(t.state) << " progress="
         << std::fixed << std::setprecision(2) << t.progress;
      if (t.tracker.valid()) os << " on " << t.tracker;
      if (t.checkpointed) os << " [checkpointed]";
      os << '\n';
    }
  }
}

}  // namespace osap
