#include "hadoop/cluster.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"
#include "common/log.hpp"

namespace osap {

Cluster::Cluster(ClusterConfig cfg)
    : cfg_(cfg),
      net_(sim_, cfg.net),
      namenode_(cfg.hdfs, cfg.seed),
      master_(NodeId{static_cast<std::uint64_t>(cfg.num_nodes)}),
      jt_(sim_, net_, master_, cfg.hadoop) {
  OSAP_CHECK(cfg_.num_nodes >= 1);
  sim_.set_audit_config(cfg_.audit);
  sim_.trace().configure(cfg_.trace);
  net_.register_node(master_);
  for (int i = 0; i < cfg_.num_nodes; ++i) {
    const NodeId node{static_cast<std::uint64_t>(i)};
    net_.register_node(node);
    namenode_.add_datanode(node);
    kernels_.push_back(
        std::make_unique<Kernel>(sim_, cfg_.os, "node" + std::to_string(i)));
    trackers_.push_back(std::make_unique<TaskTracker>(
        sim_, *kernels_.back(), net_, TrackerId{static_cast<std::uint64_t>(i)}, node,
        cfg_.hadoop));
    jt_.register_tracker(*trackers_.back());
    trackers_.back()->connect(jt_, master_);
  }
}

NodeId Cluster::node(int index) const {
  OSAP_CHECK(index >= 0 && index < cfg_.num_nodes);
  return NodeId{static_cast<std::uint64_t>(index)};
}

Kernel& Cluster::kernel(NodeId node) {
  OSAP_CHECK_MSG(node.value() < kernels_.size(), "unknown " << node);
  return *kernels_[node.value()];
}

TaskTracker& Cluster::tracker(NodeId node) {
  OSAP_CHECK_MSG(node.value() < trackers_.size(), "unknown " << node);
  return *trackers_[node.value()];
}

void Cluster::set_scheduler(std::unique_ptr<Scheduler> scheduler) {
  scheduler_ = std::move(scheduler);
  jt_.set_scheduler(scheduler_.get());
}

std::vector<BlockId> Cluster::create_input(const std::string& name, Bytes size, NodeId writer) {
  const FileId file = namenode_.create_file(name, size, writer);
  return namenode_.file(file).blocks;
}

void Cluster::watch_task_progress(TaskId id, double fraction, std::function<void()> fn) {
  // Each re-arm carries a copy of the poll lambda; a shared
  // self-referencing std::function would cycle and never free.
  auto poll = [this, id, fraction, fn = std::move(fn)](auto self) -> void {
    const Task& t = jt_.task(id);
    if (t.done()) return;  // finished before the threshold: never fires
    double progress = t.progress;
    // Prefer the live attempt's instantaneous progress over the last
    // heartbeat snapshot.
    if (t.tracker.valid()) {
      TaskTracker* tt = jt_.tracker(t.tracker);
      if (tt != nullptr && tt->hosts_task(id)) progress = tt->attempt_progress(id);
    }
    if (progress >= fraction) {
      fn();
      return;
    }
    sim_.after(ms(100), [self] { self(self); });
  };
  sim_.after(0, [poll] { poll(poll); });
}

void Cluster::run() { run(std::function<void()>()); }

void Cluster::run(const std::function<void()>& tick) {
  // Heartbeat timers re-arm forever, so "queue empty" never happens; stop
  // once every submitted job has completed (trigger-submitted jobs arrive
  // while their predecessors still run, so this is safe for experiments)
  // AND no out-of-band work — a driver's async continuation between two
  // of its jobs, say — is still in flight.
  std::uint64_t fired = 0;
  while (!(!jt_.jobs_in_order().empty() && jt_.all_jobs_done() && open_work_ == 0) &&
         sim_.step()) {
    // The tick stride is in fired events, not time, so it is identical
    // across runs; the hook itself never touches simulation state.
    if (tick && (++fired & 0x7ff) == 0) tick();
  }
  if (cfg_.print_trace_digest) {
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0') << sim_.trace_digest();
    OSAP_LOG(Info, "cluster") << "trace digest " << os.str() << " after "
                              << std::dec << sim_.events_processed() << " events";
  }
  const trace::TraceConfig& tc = sim_.trace().config();
  if (!tc.trace_file.empty()) {
    std::ofstream out(tc.trace_file);
    OSAP_CHECK_MSG(out.good(), "cannot open trace file " << tc.trace_file);
    sim_.trace().tracer().write_json(out);
  }
  if (!tc.counters_file.empty()) {
    std::ofstream out(tc.counters_file);
    OSAP_CHECK_MSG(out.good(), "cannot open counters file " << tc.counters_file);
    sim_.write_observability_json(out);
  }
}

void Cluster::run_until(SimTime t) { sim_.run_until(t); }

}  // namespace osap
