// JobTracker: central job/task state and the preemption API.
//
// Mirrors Hadoop 1's JobTracker, extended exactly as §III-B describes:
// new task states (MUST_SUSPEND / SUSPENDED / MUST_RESUME) and new
// messages piggybacked on heartbeat responses. The suspend flow is
//
//   suspend_task()  ->  task MUST_SUSPEND
//   next heartbeat  ->  SuspendAction piggybacked to the TaskTracker
//   following heartbeat -> "suspended" ack (or "completed in the
//   meanwhile"), task becomes SUSPENDED
//
// and symmetrically for resume. The same API serves command-line users
// and schedulers.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "audit/audit.hpp"
#include "common/flat_set.hpp"
#include "common/ids.hpp"
#include "hadoop/config.hpp"
#include "hadoop/events.hpp"
#include "hadoop/heartbeat.hpp"
#include "hadoop/job.hpp"
#include "hadoop/scheduler.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace osap {

class TaskTracker;

class JobTracker final : public InvariantAuditor {
 public:
  JobTracker(Simulation& sim, Network& net, NodeId master, HadoopConfig cfg);
  ~JobTracker() override;
  JobTracker(const JobTracker&) = delete;
  JobTracker& operator=(const JobTracker&) = delete;

  void register_tracker(TaskTracker& tracker);
  void set_scheduler(Scheduler* scheduler);

  /// Observe cluster events (timelines, metrics, drivers). Hooks fire in
  /// registration order and live as long as the JobTracker.
  void add_event_hook(std::function<void(const ClusterEvent&)> hook) {
    event_hooks_.push_back(std::move(hook));
  }

  // --- job & task API ------------------------------------------------------
  JobId submit_job(JobSpec spec);

  /// Request suspension of a running task. Returns false if the task is
  /// not in a suspendable state.
  bool suspend_task(TaskId id);
  /// Natjam-style suspension: serialize state, kill the JVM. Resuming a
  /// checkpointed task relaunches it with fast-forward.
  bool checkpoint_suspend_task(TaskId id);
  /// Request resumption of a suspended task.
  bool resume_task(TaskId id);
  /// Request the kill of a live task attempt; the task returns to the
  /// UNASSIGNED pool for rescheduling (losing its work). A racing backup
  /// attempt is reaped alongside the primary one.
  bool kill_task(TaskId id);
  /// Kill only the task's racing backup attempt, if any (budget-free, no
  /// task-state transition) — the lever for preempting a speculative copy
  /// without disturbing the original. Returns false when nothing races.
  bool kill_speculative(TaskId id);

  // --- failure model (docs/FAULTS.md) --------------------------------------
  /// The node's local disk lost its Natjam checkpoint files: forget every
  /// saved fast-forward state on it, requeueing checkpoint-parked tasks
  /// from scratch. Fault-injection entry point (a node crash does this
  /// implicitly through lease expiry).
  void lose_checkpoints_on(NodeId node);
  /// True once the heartbeat lease expired and the tracker was declared
  /// lost (cleared if it later heartbeats again and is reinitialized).
  [[nodiscard]] bool tracker_lost(TrackerId id) const {
    const TrackerSlot* s = slot(id);
    return s != nullptr && s->lost;
  }
  /// True once the tracker accumulated `tracker_blacklist_failures`
  /// unrequested attempt failures; blacklisted trackers get no new work.
  [[nodiscard]] bool tracker_blacklisted(TrackerId id) const {
    const TrackerSlot* s = slot(id);
    return s != nullptr && s->blacklisted;
  }

  // --- node revocation (docs/REVOKE.md) ------------------------------------
  /// A revocation warning landed for this tracker's node: mark it draining
  /// (no new work; in-flight acks still process) and emit
  /// NodeRevocationWarned. Returns false when the tracker is unknown,
  /// already lost or already draining — a warning arriving after its node
  /// died (out-of-order plan) is a counted no-op, never a wedge.
  bool warn_revocation(TrackerId id);
  /// True while a revocation warning is outstanding for the tracker.
  [[nodiscard]] bool tracker_draining(TrackerId id) const {
    const TrackerSlot* s = slot(id);
    return s != nullptr && s->draining;
  }
  /// Natjam checkpoint evacuation: rebind a checkpoint-parked task's saved
  /// fast-forward state to `target` (modeling the upload of its checkpoint
  /// files off the doomed node before it dies). Returns false unless the
  /// task is parked with a checkpoint and `target` differs.
  bool evacuate_checkpoint(TaskId id, NodeId target);

  // --- heartbeat entry point (via network) ---------------------------------
  void on_heartbeat(TrackerStatus status);

  // --- views ----------------------------------------------------------------
  [[nodiscard]] const Job& job(JobId id) const;
  [[nodiscard]] const Task& task(TaskId id) const;
  [[nodiscard]] Task& task_mutable(TaskId id);

  /// Replace a task's spec (e.g. a Spark recompute after a lost cache).
  /// Goes through the tracker so the job's remaining-bytes total follows
  /// the new input size; writing task_mutable(id).spec directly would
  /// silently desync it (the audit checks).
  void set_task_spec(TaskId id, TaskSpec spec);
  [[nodiscard]] const std::vector<JobId>& jobs_in_order() const noexcept { return job_order_; }
  /// Jobs still in JobState::Running, ascending id — what schedulers and
  /// the straggler detector iterate instead of filtering jobs_in_order().
  /// Ids are dense and submission-ordered, so this is the same order a
  /// filtered jobs_in_order() walk produces.
  [[nodiscard]] const FlatIdSet<JobId>& running_jobs() const noexcept { return running_jobs_; }

  /// Running jobs with remaining work, ordered by (remaining bytes, id).
  /// begin() is the HFSP head job: the old ascending-id min-scan picked
  /// the smallest size with lowest-id tie-break, which is exactly
  /// lexicographic (size, id) order.
  [[nodiscard]] const std::set<std::pair<Bytes, JobId>>& jobs_by_remaining() const noexcept {
    return jobs_by_remaining_;
  }

  /// Running jobs with at least one UNASSIGNED task — the only jobs a
  /// scheduler's launch sweep can do anything with.
  [[nodiscard]] const FlatIdSet<JobId>& schedulable_jobs() const noexcept {
    return schedulable_jobs_;
  }
  [[nodiscard]] bool all_jobs_done() const;
  [[nodiscard]] TaskTracker* tracker(TrackerId id);
  [[nodiscard]] NodeId master_node() const noexcept { return master_; }
  [[nodiscard]] SimTime now() const noexcept { return sim_.now(); }
  [[nodiscard]] Simulation& sim() noexcept { return sim_; }

  // --- invariant auditing ---------------------------------------------------
  [[nodiscard]] std::string audit_label() const override { return "jobtracker"; }
  /// Audited invariants: task state <-> tracker-binding agreement,
  /// progress bounds, pending-command maps only referencing live tasks,
  /// and per-job completion counts.
  void audit(std::vector<std::string>& violations) const override;
  void dump(std::ostream& os) const override;

  /// Testing-only fault injection: unbind a running task from its tracker
  /// so the state audit fires.
  void testing_corrupt_task_binding(TaskId id) { task_mutable(id).tracker = TrackerId{}; }
  /// Testing-only: emit a raw cluster event (protocol-audit injection).
  void testing_emit_event(ClusterEventType type, JobId job, TaskId task, NodeId node) {
    emit(type, job, task, node);
  }
  /// Testing-only: blacklist a tracker directly, without burning through
  /// `tracker_blacklist_failures` real attempt failures first (exercises
  /// the preempt-order refusal path mid-heartbeat).
  void testing_blacklist_tracker(TrackerId id) {
    if (TrackerSlot* s = slot(id)) s->blacklisted = true;
  }

 private:
  /// A pending Kill command addressed to one specific attempt. The classic
  /// order (`attempt_only == false`) returns the task to the UNASSIGNED
  /// pool when its ack arrives; an attempt-only order (race losers,
  /// speculative copies) just reaps the attempt and leaves the task's
  /// state alone. At most one order per (task, tracker).
  struct KillOrder {
    TrackerId tracker;
    bool sent = false;
    bool attempt_only = false;
  };
  /// Per-attempt delivery flags for a parked MapsDone barrier release
  /// (only used when `oob_maps_done` is off).
  struct MapsDonePending {
    bool primary_sent = false;
    bool spec_sent = false;
  };
  /// Flat per-tracker hot state, index-addressed in registration order
  /// (docs/PERF.md). Everything a heartbeat or lease sweep touches lives
  /// here in one cache line instead of four hash maps.
  struct TrackerSlot {
    TaskTracker* tracker = nullptr;
    TrackerId id;
    /// Last heartbeat arrival (the lease; starts at registration).
    SimTime last_heartbeat = 0;
    /// Wheel deadline this tracker is filed under; -1 when not filed
    /// (declared lost, or lease expiry disabled).
    SimTime lease_deadline = -1;
    bool lost = false;
    bool blacklisted = false;
    /// Revocation warning outstanding: assign no new work, but keep the
    /// tracker out of maybe_fail_cluster — it still acks until it dies.
    bool draining = false;
    /// Unrequested attempt failures (blacklist bookkeeping).
    int failures = 0;
  };

  [[nodiscard]] const TrackerSlot* slot(TrackerId id) const {
    const auto it = tracker_index_.find(id);
    return it == tracker_index_.end() ? nullptr : &tracker_slots_[it->second];
  }
  [[nodiscard]] TrackerSlot* slot(TrackerId id) {
    const auto it = tracker_index_.find(id);
    return it == tracker_index_.end() ? nullptr : &tracker_slots_[it->second];
  }
  [[nodiscard]] Job& job_ref(JobId id);
  /// The single choke point for task-state writes: transitions the state
  /// and keeps the owning job's index sets and counters in sync. Every
  /// `task.state = ...` in the implementation goes through here.
  void set_task_state(Task& task, TaskState to);
  /// Single write path for a task's progress: keeps the owning job's
  /// remaining-bytes total exact.
  void set_task_progress(Task& task, double progress);
  /// Refile `job` in the derived job indexes (jobs_by_remaining_,
  /// schedulable_jobs_) after anything that can move its key or
  /// membership: remaining-bytes changes, unassigned-pool transitions,
  /// job completion or failure.
  void reindex_job(Job& job);
  /// File the tracker in the lease wheel at last_heartbeat + expiry.
  void file_lease(std::uint32_t idx);

  void emit(ClusterEventType type, JobId job, TaskId task, NodeId node);
  void apply_report(const TrackerStatus& status, const TaskStatusReport& report);
  void task_terminal(Task& task, TaskState state);
  void maybe_complete_job(JobId id);
  /// Success bookkeeping shared by both race outcomes: whichever attempt
  /// reported first supplies the output (and, for maps, the node its
  /// output now lives on).
  void task_succeeded(Task& task, NodeId node);
  [[nodiscard]] bool maps_pending(const Job& job) const;
  /// A map just succeeded: if it was the job's last one, queue MapsDone
  /// for every live reduce of the job (both attempts of a racing one).
  void maybe_release_reduces(JobId id);

  // --- speculative execution (docs/SPECULATION.md) -------------------------
  /// Straggler detector + backup-attempt launcher. Runs after the
  /// scheduler's assignment pass, filling the reporting tracker's leftover
  /// slots with copies of tasks whose estimated time-to-completion exceeds
  /// `speculative_slowness` × the job mean.
  void maybe_speculate(const TrackerStatus& status, int free_maps, int free_reduces,
                       HeartbeatResponse& response);
  /// Drop the backup-attempt binding (race resolved or copy forfeited).
  void clear_speculative(Task& task);
  /// The primary attempt vanished while a copy was racing: adopt the copy
  /// as the new primary instead of requeueing the task from scratch.
  void promote_speculative(Task& task);
  /// Queue a Kill command for the attempt of `id` hosted on `target`.
  /// Idempotent: a duplicate re-arms the existing order for resend.
  void enqueue_kill(TaskId id, TrackerId target, bool attempt_only);
  /// Retire the pending kill order for (task, tracker), reporting whether
  /// one existed and whether it was attempt-only.
  bool erase_kill_order(TaskId id, TrackerId target, bool* attempt_only = nullptr);
  [[nodiscard]] bool kill_pending_on(TaskId id, TrackerId target) const;

  // --- failure model (docs/FAULTS.md) --------------------------------------
  /// Periodic lease sweep; re-arms itself every `expiry_check_interval`.
  void check_leases();
  /// Lease expired: requeue the tracker's live and suspended attempts,
  /// re-run Succeeded maps whose output lived on its disk, and drop any
  /// checkpoints stored there.
  void declare_lost(TrackerId id);
  /// Clear per-attempt state a requeue must not leak into the successor
  /// (progress, paging totals, checkpoint/suspend flags, completion stamp).
  void reset_attempt_state(Task& task);
  /// Terminal job failure: mark Failed, kill remaining live tasks, notify
  /// the scheduler. `cause`/`node` identify the triggering task (invalid
  /// for cluster-wide failures).
  void fail_job(JobId id, TaskId cause, NodeId node);
  /// Blacklist bookkeeping for an unrequested attempt failure.
  void note_tracker_failure(TrackerId id, NodeId node);
  /// Every registered tracker is lost or blacklisted: nothing can run, so
  /// fail all Running jobs instead of spinning forever.
  void maybe_fail_cluster();

  Simulation& sim_;
  Network& net_;
  NodeId master_;
  HadoopConfig cfg_;
  Scheduler* scheduler_ = nullptr;
  std::vector<std::function<void(const ClusterEvent&)>> event_hooks_;

  /// Tracker hot state, index-addressed in registration order; the id ->
  /// index map is a lookup table only and is never iterated.
  std::vector<TrackerSlot> tracker_slots_;
  std::unordered_map<TrackerId, std::uint32_t> tracker_index_;
  /// Jobs and tasks, indexed directly by their dense ids (ids are handed
  /// out sequentially from 0 and entries are never erased). A deque keeps
  /// references stable across growth.
  std::deque<Job> jobs_;
  std::deque<Task> tasks_;
  std::vector<JobId> job_order_;
  /// Jobs still Running, ascending id (maintained by the job-state
  /// transitions in submit/complete/fail).
  FlatIdSet<JobId> running_jobs_;
  std::set<std::pair<Bytes, JobId>> jobs_by_remaining_;
  FlatIdSet<JobId> schedulable_jobs_;
  /// Straggler-scan scratch (candidate attempts of one job); a member so
  /// the per-heartbeat scan reuses one allocation.
  std::vector<std::pair<TaskId, double>> spec_scratch_;
  /// Tasks with an un-sent Suspend/Resume command (cleared when the
  /// command is piggybacked). Ordered maps: heartbeat handling walks these
  /// in task-id order directly, no sorted-key snapshots.
  std::map<TaskId, bool> command_sent_;
  /// Pending Kill commands per task; a racing task can owe kills to both
  /// its attempts at once.
  std::map<TaskId, std::vector<KillOrder>> must_kill_;
  /// Reduces owed a MapsDone action (their job's maps all succeeded after
  /// they launched with the shuffle barrier armed).
  std::map<TaskId, MapsDonePending> maps_done_pending_;
  IdGenerator<JobId> job_ids_;
  IdGenerator<TaskId> task_ids_;

  // --- failure model -------------------------------------------------------
  /// Lease wheel: tracker slots filed by their lease deadline
  /// (last_heartbeat + expiry at filing time). The sweep pops only the due
  /// buckets and lazily refiles trackers that heartbeat since — O(due)
  /// per sweep instead of O(trackers).
  std::map<SimTime, std::vector<std::uint32_t>> lease_wheel_;
  EventId lease_timer_ = 0;

  // --- observability (src/trace) -----------------------------------------
  trace::Tracer* tracer_ = nullptr;
  std::uint32_t trk_ = 0;          ///< ("cluster", "jobtracker") track
  std::uint32_t sched_trk_ = 0;    ///< ("cluster", "scheduler") track
  std::uint32_t shuffle_trk_ = 0;  ///< ("cluster", "shuffle") track
  trace::Counter* ctr_heartbeats_ = nullptr;
  trace::Counter* ctr_actions_ = nullptr;
  trace::Counter* ctr_oob_maps_done_ = nullptr;
  trace::Counter* ctr_assignments_ = nullptr;
  trace::Counter* ctr_suspends_ = nullptr;
  trace::Counter* ctr_resumes_ = nullptr;
  // Failure counters (jobtracker.* namespace; see docs/FAULTS.md).
  trace::Counter* ctr_trackers_lost_ = nullptr;
  trace::Counter* ctr_tracker_reinits_ = nullptr;
  trace::Counter* ctr_trackers_blacklisted_ = nullptr;
  trace::Counter* ctr_tasks_lost_ = nullptr;
  trace::Counter* ctr_task_failures_ = nullptr;
  trace::Counter* ctr_map_outputs_lost_ = nullptr;
  trace::Counter* ctr_checkpoints_lost_ = nullptr;
  trace::Counter* ctr_jobs_failed_ = nullptr;
  // Revocation counters (docs/REVOKE.md).
  trace::Counter* ctr_trackers_draining_ = nullptr;
  trace::Counter* ctr_checkpoints_evacuated_ = nullptr;
  // Speculation counters (speculation.* namespace; see docs/SPECULATION.md).
  trace::Counter* ctr_spec_launched_ = nullptr;
  trace::Counter* ctr_spec_won_ = nullptr;
  trace::Counter* ctr_spec_lost_ = nullptr;
  trace::Counter* ctr_spec_killed_ = nullptr;
};

}  // namespace osap
