// JobTracker: central job/task state and the preemption API.
//
// Mirrors Hadoop 1's JobTracker, extended exactly as §III-B describes:
// new task states (MUST_SUSPEND / SUSPENDED / MUST_RESUME) and new
// messages piggybacked on heartbeat responses. The suspend flow is
//
//   suspend_task()  ->  task MUST_SUSPEND
//   next heartbeat  ->  SuspendAction piggybacked to the TaskTracker
//   following heartbeat -> "suspended" ack (or "completed in the
//   meanwhile"), task becomes SUSPENDED
//
// and symmetrically for resume. The same API serves command-line users
// and schedulers.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "audit/audit.hpp"
#include "common/ids.hpp"
#include "hadoop/config.hpp"
#include "hadoop/events.hpp"
#include "hadoop/heartbeat.hpp"
#include "hadoop/job.hpp"
#include "hadoop/scheduler.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace osap {

class TaskTracker;

class JobTracker final : public InvariantAuditor {
 public:
  JobTracker(Simulation& sim, Network& net, NodeId master, HadoopConfig cfg);
  ~JobTracker() override;
  JobTracker(const JobTracker&) = delete;
  JobTracker& operator=(const JobTracker&) = delete;

  void register_tracker(TaskTracker& tracker);
  void set_scheduler(Scheduler* scheduler);

  /// Observe cluster events (timelines, metrics, drivers). Hooks fire in
  /// registration order and live as long as the JobTracker.
  void add_event_hook(std::function<void(const ClusterEvent&)> hook) {
    event_hooks_.push_back(std::move(hook));
  }

  // --- job & task API ------------------------------------------------------
  JobId submit_job(JobSpec spec);

  /// Request suspension of a running task. Returns false if the task is
  /// not in a suspendable state.
  bool suspend_task(TaskId id);
  /// Natjam-style suspension: serialize state, kill the JVM. Resuming a
  /// checkpointed task relaunches it with fast-forward.
  bool checkpoint_suspend_task(TaskId id);
  /// Request resumption of a suspended task.
  bool resume_task(TaskId id);
  /// Request the kill of a live task attempt; the task returns to the
  /// UNASSIGNED pool for rescheduling (losing its work).
  bool kill_task(TaskId id);

  // --- heartbeat entry point (via network) ---------------------------------
  void on_heartbeat(TrackerStatus status);

  // --- views ----------------------------------------------------------------
  [[nodiscard]] const Job& job(JobId id) const;
  [[nodiscard]] const Task& task(TaskId id) const;
  [[nodiscard]] Task& task_mutable(TaskId id);
  [[nodiscard]] const std::vector<JobId>& jobs_in_order() const noexcept { return job_order_; }
  [[nodiscard]] bool all_jobs_done() const;
  [[nodiscard]] TaskTracker* tracker(TrackerId id);
  [[nodiscard]] NodeId master_node() const noexcept { return master_; }
  [[nodiscard]] SimTime now() const noexcept { return sim_.now(); }
  [[nodiscard]] Simulation& sim() noexcept { return sim_; }

  // --- invariant auditing ---------------------------------------------------
  [[nodiscard]] std::string audit_label() const override { return "jobtracker"; }
  /// Audited invariants: task state <-> tracker-binding agreement,
  /// progress bounds, pending-command maps only referencing live tasks,
  /// and per-job completion counts.
  void audit(std::vector<std::string>& violations) const override;
  void dump(std::ostream& os) const override;

  /// Testing-only fault injection: unbind a running task from its tracker
  /// so the state audit fires.
  void testing_corrupt_task_binding(TaskId id) { task_mutable(id).tracker = TrackerId{}; }
  /// Testing-only: emit a raw cluster event (protocol-audit injection).
  void testing_emit_event(ClusterEventType type, JobId job, TaskId task, NodeId node) {
    emit(type, job, task, node);
  }

 private:
  void emit(ClusterEventType type, JobId job, TaskId task, NodeId node);
  void apply_report(const TrackerStatus& status, const TaskStatusReport& report);
  void task_terminal(Task& task, TaskState state);
  void maybe_complete_job(JobId id);
  [[nodiscard]] bool maps_pending(const Job& job) const;
  /// A map just succeeded: if it was the job's last one, queue MapsDone
  /// for every live reduce of the job.
  void maybe_release_reduces(JobId id);

  Simulation& sim_;
  Network& net_;
  NodeId master_;
  HadoopConfig cfg_;
  Scheduler* scheduler_ = nullptr;
  std::vector<std::function<void(const ClusterEvent&)>> event_hooks_;

  std::unordered_map<TrackerId, TaskTracker*> trackers_;
  std::unordered_map<JobId, Job> jobs_;
  std::unordered_map<TaskId, Task> tasks_;
  std::vector<JobId> job_order_;
  /// Tasks with an un-sent Suspend/Resume command (cleared when the
  /// command is piggybacked).
  std::unordered_map<TaskId, bool> command_sent_;
  std::unordered_map<TaskId, bool> must_kill_;
  /// Reduces owed a MapsDone action (their job's maps all succeeded after
  /// they launched with the shuffle barrier armed).
  std::unordered_map<TaskId, bool> maps_done_pending_;
  IdGenerator<JobId> job_ids_;
  IdGenerator<TaskId> task_ids_;

  // --- observability (src/trace) -----------------------------------------
  trace::Tracer* tracer_ = nullptr;
  std::uint32_t trk_ = 0;          ///< ("cluster", "jobtracker") track
  std::uint32_t sched_trk_ = 0;    ///< ("cluster", "scheduler") track
  std::uint32_t shuffle_trk_ = 0;  ///< ("cluster", "shuffle") track
  trace::Counter* ctr_heartbeats_ = nullptr;
  trace::Counter* ctr_actions_ = nullptr;
  trace::Counter* ctr_oob_maps_done_ = nullptr;
  trace::Counter* ctr_assignments_ = nullptr;
  trace::Counter* ctr_suspends_ = nullptr;
  trace::Counter* ctr_resumes_ = nullptr;
};

}  // namespace osap
