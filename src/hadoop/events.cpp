#include "hadoop/events.hpp"

#include "hadoop/heartbeat.hpp"

namespace osap {

const char* to_string(ClusterEventType t) noexcept {
  switch (t) {
    case ClusterEventType::JobSubmitted: return "job-submitted";
    case ClusterEventType::JobCompleted: return "job-completed";
    case ClusterEventType::TaskLaunched: return "task-launched";
    case ClusterEventType::TaskSuspendRequested: return "task-suspend-requested";
    case ClusterEventType::TaskSuspended: return "task-suspended";
    case ClusterEventType::TaskResumeRequested: return "task-resume-requested";
    case ClusterEventType::TaskResumed: return "task-resumed";
    case ClusterEventType::TaskKillRequested: return "task-kill-requested";
    case ClusterEventType::TaskKilled: return "task-killed";
    case ClusterEventType::TaskSucceeded: return "task-succeeded";
    case ClusterEventType::TaskFailed: return "task-failed";
    case ClusterEventType::TaskLost: return "task-lost";
    case ClusterEventType::MapOutputLost: return "map-output-lost";
    case ClusterEventType::JobFailed: return "job-failed";
    case ClusterEventType::TrackerLost: return "tracker-lost";
    case ClusterEventType::TrackerBlacklisted: return "tracker-blacklisted";
    case ClusterEventType::TaskSpeculated: return "task-speculated";
    case ClusterEventType::SpeculationWon: return "speculation-won";
    case ClusterEventType::SpeculationLost: return "speculation-lost";
    case ClusterEventType::SpeculationKilled: return "speculation-killed";
    case ClusterEventType::SpeculationPromoted: return "speculation-promoted";
    case ClusterEventType::NodeRevocationWarned: return "node-revocation-warned";
  }
  return "?";
}

const char* to_string(ActionKind k) noexcept {
  switch (k) {
    case ActionKind::Launch: return "launch";
    case ActionKind::Kill: return "kill";
    case ActionKind::Suspend: return "suspend";
    case ActionKind::Resume: return "resume";
    case ActionKind::CheckpointSuspend: return "checkpoint-suspend";
    case ActionKind::MapsDone: return "maps-done";
    case ActionKind::ReinitTracker: return "reinit-tracker";
  }
  return "?";
}

}  // namespace osap
