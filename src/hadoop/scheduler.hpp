// Scheduler plug-in interface.
//
// The JobTracker consults the scheduler while answering each heartbeat:
// the scheduler returns tasks to launch on the reporting tracker. Eviction
// decisions (whom to preempt, with which primitive) are issued by the
// scheduler through the JobTracker's preemption API — the paper is careful
// to separate the *primitive* (this library's contribution) from the
// *policy* (the scheduler's business, §III).
#pragma once

#include <vector>

#include "common/ids.hpp"
#include "hadoop/heartbeat.hpp"

namespace osap {

class JobTracker;

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Called once when installed on the JobTracker.
  void attach(JobTracker& jt) {
    jt_ = &jt;
    attached();
  }

  virtual void job_added(JobId) {}
  virtual void job_completed(JobId) {}

  /// Pick tasks to launch on the reporting tracker, respecting its free
  /// slot counts. Called after the heartbeat's status reports have been
  /// applied.
  virtual std::vector<TaskId> assign(const TrackerStatus& status) = 0;

 protected:
  virtual void attached() {}
  JobTracker* jt_ = nullptr;
};

}  // namespace osap
