// Hadoop-1 framework parameters.
#pragma once

#include "common/time.hpp"
#include "common/units.hpp"

namespace osap {

struct HadoopConfig {
  /// TaskTracker → JobTracker heartbeat period (Hadoop 1 default 3 s).
  Duration heartbeat_interval = seconds(3);
  /// Send an immediate out-of-band heartbeat when a task finishes.
  bool out_of_band_heartbeat = true;
  /// Also send one when a suspension takes effect, so the freed slot is
  /// usable right away rather than at the next periodic heartbeat. The
  /// ablation bench studies the difference.
  bool oob_on_suspend = true;
  /// Push the "all maps done" barrier release to reduces immediately (a
  /// JobTracker-initiated out-of-band message) instead of piggybacking it
  /// on each reduce's next periodic heartbeat — cuts up to one heartbeat
  /// interval of shuffle-barrier latency (mirrors Hadoop's completion
  /// out-of-band heartbeat).
  bool oob_maps_done = true;
  /// Concurrent task slots per TaskTracker. The paper's single-slot setup
  /// ("the number of running tasks per machine is limited") maps to 1.
  int map_slots = 2;
  int reduce_slots = 2;
  /// Upper bound on suspended tasks parked on one TaskTracker, ensuring
  /// aggregate memory stays under RAM + swap (§III-A).
  int max_suspended_per_tracker = 4;
  /// Swap-used fraction past which the policy layer treats a node as
  /// memory-pressured: the preemption-policy engine demotes suspend-family
  /// decisions to kill there, and the gang rotator refuses to park more
  /// tasks on it (docs/POLICY.md). Only consulted when a policy engine or
  /// gang rotation is armed; the bare schedulers ignore it. 1.0 disables.
  double suspend_swap_watermark = 0.5;
  /// Duration of the cleanup attempt that removes a killed task's
  /// temporary output; it occupies the slot before a successor can start.
  Duration kill_cleanup_duration = seconds(4.0);

  // --- failure model (docs/FAULTS.md) -----------------------------------
  /// Attempts a task may burn (OOM deaths and other unrequested exits)
  /// before the task — and its job — fail terminally. Mirrors Hadoop 1's
  /// `mapred.map.max.attempts` / `mapred.reduce.max.attempts` (default 4).
  /// Kills requested by the framework (preemption) and attempts lost to a
  /// dead tracker do not count, matching Hadoop's killed-vs-failed split.
  int max_task_attempts = 4;
  /// Heartbeat-lease window: a tracker silent for this long is declared
  /// lost and its attempts (live *and* suspended — a SIGTSTP-parked JVM
  /// dies with its node) are requeued. Mirrors
  /// `mapred.tasktracker.expiry.interval` (default 10 min; our smaller
  /// default keeps simulated recovery visible). 0 disables expiry.
  Duration tracker_expiry = seconds(30);
  /// How often the JobTracker sweeps leases. Hadoop checks from a
  /// dedicated thread; one sweep per heartbeat interval keeps detection
  /// latency within one period of the configured expiry.
  Duration expiry_check_interval = seconds(3);
  /// Unrequested attempt failures on one tracker before the JobTracker
  /// stops assigning work to it (Hadoop's per-job tracker blacklist,
  /// folded cluster-wide here). 0 disables blacklisting.
  int tracker_blacklist_failures = 4;

  // --- speculative execution (docs/SPECULATION.md) ----------------------
  /// Launch backup attempts for straggling tasks (Hadoop's
  /// `mapred.*.tasks.speculative.execution`). Off by default here: the
  /// OS-assisted preemption experiments deliberately park tasks in
  /// SUSPENDED, and a speculating JobTracker treats a parked task as the
  /// straggler it genuinely looks like — an interaction experiments must
  /// opt into, not trip over.
  bool speculative_execution = false;
  /// A task is speculatable when its estimated time-to-completion exceeds
  /// the mean estimate over its job's running candidates by this factor.
  double speculative_slowness = 1.5;
  /// Minimum age of the current attempt before its progress rate is
  /// trusted (Hadoop speculates nothing younger than a minute; scaled to
  /// our shorter tasks).
  Duration speculative_min_runtime = seconds(15);
  /// Upper bound on concurrently running backup attempts per job.
  int speculative_cap = 1;
};

}  // namespace osap
