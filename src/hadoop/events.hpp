// Cluster lifecycle events, consumed by the metrics/timeline recorders.
#pragma once

#include "common/ids.hpp"
#include "common/time.hpp"

namespace osap {

enum class ClusterEventType {
  JobSubmitted,
  JobCompleted,
  TaskLaunched,
  TaskSuspendRequested,
  TaskSuspended,
  TaskResumeRequested,
  TaskResumed,
  TaskKillRequested,
  TaskKilled,
  TaskSucceeded,
  TaskFailed,
  /// Attempt forfeited because its tracker was declared lost (lease
  /// expiry / node crash). Unlike TaskFailed it does not charge the
  /// task's attempt budget (Hadoop's killed-vs-failed distinction).
  TaskLost,
  /// A Succeeded map's output vanished with its node; the map is
  /// rescheduled so shuffling reduces can fetch it again (Hadoop 1
  /// local-disk shuffle semantics).
  MapOutputLost,
  /// A job failed terminally (a task exhausted `max_task_attempts`, or no
  /// usable trackers remain).
  JobFailed,
  TrackerLost,
  TrackerBlacklisted,
  /// Speculative execution (docs/SPECULATION.md): a backup attempt was
  /// launched for a straggling task (`node` is the copy's node).
  TaskSpeculated,
  /// The backup attempt finished before the original: the copy's output
  /// is taken and the original attempt is killed budget-free.
  SpeculationWon,
  /// The backup attempt was forfeited without resolving the race (its
  /// tracker was lost, or the copy died unrequested).
  SpeculationLost,
  /// A race-losing attempt (original or copy) was killed and its cleanup
  /// acknowledged; never charged against the attempt budget.
  SpeculationKilled,
  /// The original attempt vanished (tracker lost / unrequested death)
  /// while a copy was racing: the copy was promoted to primary instead of
  /// requeueing the task from scratch.
  SpeculationPromoted,
  /// A revocation warning landed for `node` (docs/REVOKE.md): the node is
  /// scripted to die after the notice window and its tracker drains (no
  /// new work) while proactive reactions run.
  NodeRevocationWarned,
};

const char* to_string(ClusterEventType t) noexcept;

struct ClusterEvent {
  SimTime time = 0;
  ClusterEventType type = ClusterEventType::JobSubmitted;
  JobId job;
  TaskId task;
  NodeId node;
};

}  // namespace osap
