// Cluster lifecycle events, consumed by the metrics/timeline recorders.
#pragma once

#include "common/ids.hpp"
#include "common/time.hpp"

namespace osap {

enum class ClusterEventType {
  JobSubmitted,
  JobCompleted,
  TaskLaunched,
  TaskSuspendRequested,
  TaskSuspended,
  TaskResumeRequested,
  TaskResumed,
  TaskKillRequested,
  TaskKilled,
  TaskSucceeded,
  TaskFailed,
};

const char* to_string(ClusterEventType t) noexcept;

struct ClusterEvent {
  SimTime time = 0;
  ClusterEventType type = ClusterEventType::JobSubmitted;
  JobId job;
  TaskId task;
  NodeId node;
};

}  // namespace osap
