// Cluster: one-stop assembly of the full simulated stack.
//
// Builds the simulation, per-node kernels (OS model), the network, HDFS,
// the JobTracker (on a dedicated master node) and one TaskTracker per
// worker node. This is the library's main entry point:
//
//   ClusterConfig cfg;            // paper defaults: 4 GB RAM, 512 MB blocks
//   Cluster cluster(cfg);
//   cluster.set_scheduler(std::make_unique<FifoScheduler>());
//   JobId j = cluster.submit(job_spec);
//   cluster.run();
//   Duration sojourn = cluster.job_tracker().job(j).sojourn();
#pragma once

#include <memory>
#include <vector>

#include "audit/audit.hpp"
#include "hadoop/config.hpp"
#include "hadoop/job_tracker.hpp"
#include "hadoop/task_tracker.hpp"
#include "hdfs/namenode.hpp"
#include "net/network.hpp"
#include "os/kernel.hpp"
#include "sim/simulation.hpp"

namespace osap {

struct ClusterConfig {
  int num_nodes = 1;
  OsConfig os;
  HadoopConfig hadoop;
  NetConfig net;
  HdfsConfig hdfs;
  /// Runtime invariant auditing + livelock watchdog (on by default; flip
  /// `audit.enabled` off for large batch experiments).
  AuditConfig audit;
  /// Log the event-trace digest (Simulation::trace_digest) when run()
  /// returns — the determinism witness; see docs/LINT.md.
  bool print_trace_digest = false;
  /// Observability (src/trace): span tracing, counter dump destinations.
  /// Tracing is purely passive — enabling it never changes the digest.
  trace::TraceConfig trace;
  std::uint64_t seed = 1;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg);

  [[nodiscard]] Simulation& sim() noexcept { return sim_; }
  [[nodiscard]] JobTracker& job_tracker() noexcept { return jt_; }
  [[nodiscard]] NameNode& namenode() noexcept { return namenode_; }
  [[nodiscard]] Network& network() noexcept { return net_; }

  [[nodiscard]] int num_nodes() const noexcept { return cfg_.num_nodes; }
  [[nodiscard]] NodeId node(int index) const;
  [[nodiscard]] Kernel& kernel(NodeId node);
  [[nodiscard]] TaskTracker& tracker(NodeId node);

  /// The scheduler must outlive all heartbeats; the cluster owns it.
  void set_scheduler(std::unique_ptr<Scheduler> scheduler);
  [[nodiscard]] Scheduler* scheduler() noexcept { return scheduler_.get(); }

  JobId submit(JobSpec spec) { return jt_.submit_job(std::move(spec)); }

  /// Create an input file and return its single-block id list — the
  /// experiments use "a single-block file stored on HDFS, with size 512 MB".
  std::vector<BlockId> create_input(const std::string& name, Bytes size,
                                    NodeId writer = NodeId{});

  /// Fire `fn` once the task's live attempt reaches `fraction` progress
  /// (fine-grained poll; experiment instrumentation, not a Hadoop API).
  void watch_task_progress(TaskId id, double fraction, std::function<void()> fn);

  /// Run until the event queue drains (all jobs done) or `deadline`.
  void run();
  /// run() with a periodic passive hook: `tick` is called every few
  /// thousand fired events from inside the loop. It must not schedule
  /// events (tracing invariance: the digest is identical with or without
  /// a tick), but it may throw to abort the run — the osapd worker RSS
  /// watchdog aborts exactly this way and records the reason.
  void run(const std::function<void()>& tick);
  void run_until(SimTime t);

  /// Digest of the event stream executed so far (see Simulation).
  [[nodiscard]] std::uint64_t trace_digest() const noexcept { return sim_.trace_digest(); }

  /// Keep run() alive past job completion while out-of-band work (e.g. a
  /// driver's async page-in) is still outstanding. Balanced pairs.
  void retain_work() { ++open_work_; }
  void release_work() {
    OSAP_CHECK(open_work_ > 0);
    --open_work_;
  }

 private:
  ClusterConfig cfg_;
  Simulation sim_;
  Network net_;
  NameNode namenode_;
  std::vector<std::unique_ptr<Kernel>> kernels_;
  std::vector<std::unique_ptr<TaskTracker>> trackers_;
  NodeId master_;
  JobTracker jt_;
  std::unique_ptr<Scheduler> scheduler_;
  int open_work_ = 0;
};

}  // namespace osap
