// The TaskTracker <-> JobTracker heartbeat protocol (§III-B).
//
// TaskTrackers report state at fixed intervals (plus an out-of-band
// heartbeat when a task finishes); the JobTracker piggybacks task actions
// — launch, kill, and the new suspend/resume — on the response. Command
// acknowledgements arrive with the *following* heartbeat, giving the
// paper's two-round-trip suspension protocol.
#pragma once

#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "hadoop/task.hpp"

namespace osap {

enum class ReportKind {
  Progress,       // periodic status of a running task
  Suspended,      // SIGTSTP took effect
  Resumed,        // SIGCONT took effect
  Succeeded,
  KilledAck,      // attempt killed and its cleanup finished
  Failed,         // attempt died (e.g. OOM-killed)
  Checkpointed,   // Natjam-style suspend: state serialized, process exited
};

struct TaskStatusReport {
  TaskId task;
  ReportKind kind = ReportKind::Progress;
  double progress = 0;
  Bytes swapped_out = 0;
  Bytes swapped_in = 0;
};

struct TrackerStatus {
  TrackerId tracker;
  NodeId node;
  int free_map_slots = 0;
  int free_reduce_slots = 0;
  int suspended_tasks = 0;
  std::vector<TaskStatusReport> reports;
};

enum class ActionKind {
  /// Start an attempt. Also used to start a speculative backup attempt:
  /// the copy is the same TaskId launched on a different tracker, so
  /// per-tracker bookkeeping needs no new action kind.
  Launch,
  Kill,
  Suspend,
  Resume,
  /// Natjam-style application-level suspension (§II related work): stop
  /// the task, serialize its state to disk, then tear the JVM down. Unlike
  /// the OS-assisted primitive the serialization cost is always paid.
  CheckpointSuspend,
  /// All of the task's job's maps have succeeded: a reduce launched with
  /// `wait_for_maps` may leave its shuffle barrier and start sorting.
  MapsDone,
  /// The JobTracker declared this tracker lost while it was still alive
  /// (lease expired during a heartbeat-loss window). Everything it hosts
  /// has already been requeued elsewhere, so it must silently discard its
  /// attempts and rejoin with a clean slate — Hadoop 1's reinitialization
  /// path for a tracker that heartbeats after being expired.
  ReinitTracker,
};

const char* to_string(ActionKind k) noexcept;

struct TaskAction {
  ActionKind kind = ActionKind::Launch;
  TaskId task;
  /// Populated for Launch.
  TaskSpec spec;
};

struct HeartbeatResponse {
  std::vector<TaskAction> actions;
};

}  // namespace osap
