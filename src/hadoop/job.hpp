// Jobs: collections of tasks with priorities and completion tracking.
#pragma once

#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "hadoop/task.hpp"

namespace osap {

enum class JobState {
  Running,
  Succeeded,
  Killed,
  /// Terminal failure: a task exhausted its attempt budget, or the
  /// cluster ran out of usable trackers. Schedulers skip non-Running
  /// jobs, so a Failed job schedules nothing further.
  Failed,
};

struct JobSpec {
  std::string name = "job";
  /// Higher runs first for priority-aware schedulers.
  int priority = 0;
  /// Submission queue, used by the Capacity scheduler.
  std::string queue = "default";
  /// Completion deadline (absolute simulation time; <0 = none), used by
  /// the deadline scheduler.
  SimTime deadline = -1;
  std::vector<TaskSpec> tasks;
};

struct Job {
  JobId id;
  JobSpec spec;
  JobState state = JobState::Running;
  std::vector<TaskId> tasks;
  int tasks_completed = 0;
  SimTime submitted_at = -1;
  SimTime completed_at = -1;

  /// Sojourn time: submission to completion (§IV-B).
  [[nodiscard]] Duration sojourn() const noexcept {
    return (completed_at >= 0 && submitted_at >= 0) ? completed_at - submitted_at : -1;
  }
};

}  // namespace osap
