// Jobs: collections of tasks with priorities and completion tracking.
#pragma once

#include <string>
#include <vector>

#include "common/flat_set.hpp"
#include "common/ids.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "hadoop/task.hpp"

namespace osap {

enum class JobState {
  Running,
  Succeeded,
  Killed,
  /// Terminal failure: a task exhausted its attempt budget, or the
  /// cluster ran out of usable trackers. Schedulers skip non-Running
  /// jobs, so a Failed job schedules nothing further.
  Failed,
};

struct JobSpec {
  std::string name = "job";
  /// Higher runs first for priority-aware schedulers.
  int priority = 0;
  /// Submission queue, used by the Capacity scheduler.
  std::string queue = "default";
  /// Completion deadline (absolute simulation time; <0 = none), used by
  /// the deadline scheduler.
  SimTime deadline = -1;
  std::vector<TaskSpec> tasks;
};

struct Job {
  JobId id;
  JobSpec spec;
  JobState state = JobState::Running;
  std::vector<TaskId> tasks;
  int tasks_completed = 0;
  SimTime submitted_at = -1;
  SimTime completed_at = -1;

  // --- incremental task indexes (docs/PERF.md) --------------------------
  // Maintained by the JobTracker through its single task-state choke
  // point; schedulers and the straggler detector read them instead of
  // scanning `tasks`. Task ids are dense and assigned in creation order,
  // so ascending set iteration visits exactly the order a filtered
  // walk of `tasks` would — preserving every tie-break and the order of
  // floating-point accumulations.
  /// Tasks in UNASSIGNED (the schedulable pool).
  FlatIdSet<TaskId> unassigned;
  /// Tasks in a live state (Running / MustSuspend / Suspended / MustResume).
  FlatIdSet<TaskId> live;
  /// Tasks in SUSPENDED specifically (resume-scan index).
  FlatIdSet<TaskId> suspended;
  /// Tasks not yet Succeeded or Failed (demand / remaining-work index).
  FlatIdSet<TaskId> not_done;
  /// Live backup attempts currently racing (the speculative cap's count).
  int speculating = 0;
  /// Map tasks not in SUCCEEDED — the shuffle barrier test, O(1).
  int maps_not_succeeded = 0;
  /// Exact running total of per-task remaining input bytes (the HFSP job
  /// size): sum over not-done tasks of floor((1 - progress) * input_bytes),
  /// progress counting only for live attempts. Each task's integer
  /// contribution is swapped out and back in whenever its state or
  /// progress changes, so the total equals the full rescan bit for bit
  /// (integer addition commutes).
  Bytes remaining_bytes = 0;
  /// Key under which the JobTracker last filed this job in its
  /// (remaining, id) order index; 0 = not filed (done, failed, or empty).
  Bytes indexed_remaining = 0;
  /// Earliest sim time at which the straggler scan could next launch a
  /// copy from this job, given the attempt set it saw last scan; 0 =
  /// stale, rescan on the next heartbeat. Every ETA input (task state,
  /// progress, spec) is written through a JobTracker choke point that
  /// resets this, so the cached bound never outlives its inputs.
  SimTime spec_next_check = 0;

  /// Sojourn time: submission to completion (§IV-B).
  [[nodiscard]] Duration sojourn() const noexcept {
    return (completed_at >= 0 && submitted_at >= 0) ? completed_at - submitted_at : -1;
  }
};

}  // namespace osap
