// TaskTracker: runs task attempts as child processes of the node kernel
// and speaks the heartbeat protocol with the JobTracker.
//
// Implements the TaskTracker side of §III-B: tasks are regular processes,
// so suspension and resumption are SIGTSTP / SIGCONT; a suspended task
// releases its slot (that is the whole point of preemption) while its
// memory stays behind for the VMM to manage. Kills run a cleanup attempt
// that holds the slot briefly — the overhead the paper attributes to the
// kill primitive.
//
// Speculative backup attempts (docs/SPECULATION.md) need nothing special
// here: a copy is the same TaskId launched on a different tracker, and all
// per-attempt state (live_, pids, suspension) is already per-tracker. At
// most one attempt of a task ever runs on one tracker — the JobTracker
// guarantees it and launch() checks it.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "audit/audit.hpp"
#include "common/ids.hpp"
#include "hadoop/config.hpp"
#include "hadoop/heartbeat.hpp"
#include "net/network.hpp"
#include "os/kernel.hpp"

namespace osap {

class JobTracker;

class TaskTracker final : public InvariantAuditor {
 public:
  TaskTracker(Simulation& sim, Kernel& kernel, Network& net, TrackerId id, NodeId node,
              HadoopConfig cfg);
  ~TaskTracker() override;
  TaskTracker(const TaskTracker&) = delete;
  TaskTracker& operator=(const TaskTracker&) = delete;

  /// Register with the JobTracker and start the heartbeat loop.
  void connect(JobTracker& jt, NodeId master);

  /// Heartbeat response delivery (called through the network).
  void on_response(HeartbeatResponse response);

  /// Apply JobTracker-pushed actions that are NOT a response to one of our
  /// heartbeats (e.g. the out-of-band "maps done" push). Kept separate
  /// from on_response so unsolicited messages never consume the
  /// heartbeat round-trip bookkeeping.
  void deliver_actions(HeartbeatResponse response);

  // --- fault injection (src/fault, docs/FAULTS.md) -------------------------
  /// The node dies: heartbeats stop, every hosted attempt (running,
  /// suspended, checkpointing, cleanup) is torn down silently — nothing is
  /// reported, because a dead node reports nothing. Recovery happens on
  /// the JobTracker side via heartbeat-lease expiry. Irreversible.
  void crash();
  /// The tracker daemon wedges for `duration`: no heartbeats (periodic or
  /// out-of-band) are sent until it unsticks, while already-running task
  /// attempts keep executing. Pending reports queue up and flush on the
  /// first post-hang heartbeat — unless the lease expired meanwhile, in
  /// which case the JobTracker orders a reinitialization.
  void hang(Duration duration);
  [[nodiscard]] bool crashed() const noexcept { return crashed_; }

  [[nodiscard]] TrackerId id() const noexcept { return id_; }
  [[nodiscard]] NodeId node() const noexcept { return node_; }
  [[nodiscard]] Kernel& kernel() noexcept { return kernel_; }
  [[nodiscard]] int free_map_slots() const noexcept;
  [[nodiscard]] int free_reduce_slots() const noexcept;
  [[nodiscard]] int suspended_tasks() const noexcept { return suspended_; }

  [[nodiscard]] bool hosts_task(TaskId id) const { return live_.contains(id); }
  /// Pid of the live attempt, if any (invalid otherwise).
  [[nodiscard]] Pid attempt_pid(TaskId id) const;
  /// Instantaneous progress of a hosted attempt (frozen while suspended).
  [[nodiscard]] double attempt_progress(TaskId id) const;

  // --- invariant auditing ---------------------------------------------------
  [[nodiscard]] std::string audit_label() const override;
  /// Audited invariants: slot counters equal the live-task census,
  /// suspended census matches, and per-task process-state agreement
  /// (suspended => process exists and is stopped; cleanup => process gone).
  void audit(std::vector<std::string>& violations) const override;
  void dump(std::ostream& os) const override;

  /// Testing-only fault injection: leak a map slot so the accounting
  /// audit fires.
  void testing_corrupt_slot_accounting() { ++used_map_slots_; }

 private:
  struct LiveTask {
    TaskId task;
    TaskType type = TaskType::Map;
    Pid pid;
    /// Hadoop Streaming helper process (§V-B), invalid for plain tasks.
    Pid helper;
    bool suspended = false;        // SIGTSTP has taken effect
    bool kill_requested = false;   // distinguishes kills from OOM deaths
    bool checkpointing = false;    // Natjam suspend in progress
    bool in_cleanup = false;
    double checkpoint_progress = 0;
    Bytes state_memory = 0;  // for checkpoint serialization sizing
  };

  void heartbeat();
  void schedule_next_heartbeat();
  void send_status(bool out_of_band);
  void apply(const TaskAction& action);

  /// ReinitTracker action: the JobTracker expired our lease while we were
  /// alive; discard every hosted attempt silently and rejoin clean.
  void reinit();
  /// Silently kill and forget all hosted attempts (crash / reinit); the
  /// given outcome labels the closed task spans.
  void teardown_attempts(const char* outcome);

  void launch(const TaskAction& action);
  void do_kill(TaskId id);
  void do_suspend(TaskId id);
  void do_resume(TaskId id);
  void do_checkpoint_suspend(TaskId id);
  void on_task_exit(TaskId id, ExitInfo info);
  void finish_cleanup(TaskId id);
  void queue_report(TaskId id, ReportKind kind);

  Simulation& sim_;
  Kernel& kernel_;
  Network& net_;
  TrackerId id_;
  NodeId node_;
  HadoopConfig cfg_;
  JobTracker* jt_ = nullptr;
  NodeId master_;

  std::unordered_map<TaskId, LiveTask> live_;
  std::vector<TaskStatusReport> pending_reports_;
  int used_map_slots_ = 0;
  int used_reduce_slots_ = 0;
  int suspended_ = 0;
  EventId hb_timer_ = 0;
  bool crashed_ = false;
  /// Daemon hang window end (heartbeats suppressed until then).
  SimTime hung_until_ = -1;
  /// True while teardown_attempts runs: on_task_exit skips reporting.
  bool silent_teardown_ = false;
  const char* teardown_outcome_ = "";

  // --- observability (src/trace) -----------------------------------------
  trace::Tracer* tracer_ = nullptr;
  std::uint32_t trk_ = 0;          ///< (node, "tasktracker") track
  std::uint32_t shuffle_trk_ = 0;  ///< ("cluster", "shuffle") track
  /// Round-trip spans for in-flight heartbeats. The JobTracker answers
  /// every heartbeat exactly once and the network is FIFO per pair, so
  /// responses match sends in order; (span id, was out-of-band).
  std::deque<std::pair<std::uint64_t, bool>> outstanding_hb_;
  std::uint64_t hb_seq_ = 0;
  trace::Counter* ctr_heartbeats_ = nullptr;
  trace::Counter* ctr_oob_heartbeats_ = nullptr;
  trace::Counter* ctr_actions_ = nullptr;
};

}  // namespace osap
