#include "hadoop/task_tracker.hpp"

#include <sstream>

#include "common/det.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "hadoop/job_tracker.hpp"
#include "trace/context.hpp"
#include "trace/names.hpp"

namespace osap {

namespace {
constexpr const char* kLog = "tasktracker";
}

TaskTracker::TaskTracker(Simulation& sim, Kernel& kernel, Network& net, TrackerId id, NodeId node,
                         HadoopConfig cfg)
    : sim_(sim), kernel_(kernel), net_(net), id_(id), node_(node), cfg_(cfg) {
  sim_.audits().add(this);
  tracer_ = &sim_.trace().tracer();
  trk_ = tracer_->track(kernel_.name(), "tasktracker");
  shuffle_trk_ = tracer_->track("cluster", "shuffle");
  trace::CounterRegistry& counters = sim_.trace().counters();
  ctr_heartbeats_ = &counters.counter(kernel_.name() + trace::names::kTtHeartbeatsSent);
  ctr_oob_heartbeats_ = &counters.counter(kernel_.name() + trace::names::kTtOobHeartbeats);
  ctr_actions_ = &counters.counter(kernel_.name() + trace::names::kTtActionsApplied);
}

TaskTracker::~TaskTracker() { sim_.audits().remove(this); }

void TaskTracker::connect(JobTracker& jt, NodeId master) {
  OSAP_CHECK_MSG(jt_ == nullptr, id_ << " connected twice");
  jt_ = &jt;
  master_ = master;
  OSAP_LOG(Debug, kLog) << id_ << " connected, heartbeating every " << cfg_.heartbeat_interval
                        << "s";
  // Stagger trackers slightly so heartbeats don't land in lockstep.
  const Duration phase = ms(37) * static_cast<double>(id_.value() % 16);
  hb_timer_ = sim_.after(phase, [this] { heartbeat(); });
}

int TaskTracker::free_map_slots() const noexcept {
  return std::max(0, cfg_.map_slots - used_map_slots_);
}

int TaskTracker::free_reduce_slots() const noexcept {
  return std::max(0, cfg_.reduce_slots - used_reduce_slots_);
}

Pid TaskTracker::attempt_pid(TaskId id) const {
  const auto it = live_.find(id);
  return it == live_.end() ? Pid{} : it->second.pid;
}

double TaskTracker::attempt_progress(TaskId id) const {
  const auto it = live_.find(id);
  if (it == live_.end()) return 0;
  return kernel_.progress(it->second.pid);
}

void TaskTracker::heartbeat() {
  send_status(/*out_of_band=*/false);
  schedule_next_heartbeat();
}

void TaskTracker::schedule_next_heartbeat() {
  if (hb_timer_ != 0) sim_.cancel(hb_timer_);
  hb_timer_ = sim_.after(cfg_.heartbeat_interval, [this] { heartbeat(); });
}

void TaskTracker::send_status(bool out_of_band) {
  if (jt_ == nullptr || crashed_) return;
  // A wedged daemon assembles nothing: reports stay queued and flush on
  // the first heartbeat after the hang.
  if (hung_until_ > sim_.now()) return;
  TrackerStatus status;
  status.tracker = id_;
  status.node = node_;
  status.free_map_slots = free_map_slots();
  status.free_reduce_slots = free_reduce_slots();
  status.suspended_tasks = suspended_;
  status.reports = std::move(pending_reports_);
  pending_reports_.clear();
  // Reports travel to the JobTracker in task-id order: the scheduler acts
  // on them in arrival order, so this order is part of the event stream.
  for (TaskId tid : det::sorted_keys(live_)) {
    const LiveTask& task = live_.at(tid);
    if (task.in_cleanup) continue;
    TaskStatusReport report;
    report.task = tid;
    report.kind = ReportKind::Progress;
    report.progress = kernel_.progress(task.pid);
    report.swapped_out = kernel_.vmm().swapped_out_total(task.pid);
    report.swapped_in = kernel_.vmm().swapped_in_total(task.pid);
    status.reports.push_back(report);
  }
  sim_.trace().profiler().add(trace::HotPath::HeartbeatAssembly, status.reports.size());
  ctr_heartbeats_->add();
  if (out_of_band) ctr_oob_heartbeats_->add();
  // Round-trip span: ends when the JobTracker's response arrives. The
  // JobTracker responds to every heartbeat and per-pair delivery is FIFO,
  // so responses pair with sends in order.
  const std::uint64_t span = ++hb_seq_;
  tracer_->async_begin(trk_, out_of_band ? "oob_heartbeat" : "heartbeat", span,
                       {{"reports", static_cast<std::uint64_t>(status.reports.size())}});
  outstanding_hb_.emplace_back(span, out_of_band);
  net_.send(node_, master_, [jt = jt_, status = std::move(status)]() mutable {
    jt->on_heartbeat(std::move(status));
  });
  // Out-of-band heartbeats do not reset the periodic timer, matching
  // Hadoop's "status now, schedule stays" behaviour.
}

void TaskTracker::on_response(HeartbeatResponse response) {
  if (crashed_) return;  // in-flight response to a dead node
  if (!outstanding_hb_.empty()) {
    const auto [span, oob] = outstanding_hb_.front();
    outstanding_hb_.pop_front();
    tracer_->async_end(trk_, oob ? "oob_heartbeat" : "heartbeat", span,
                       {{"actions", static_cast<std::uint64_t>(response.actions.size())}});
  }
  for (const TaskAction& action : response.actions) apply(action);
}

void TaskTracker::deliver_actions(HeartbeatResponse response) {
  if (crashed_) return;
  for (const TaskAction& action : response.actions) apply(action);
}

void TaskTracker::crash() {
  if (crashed_) return;
  OSAP_LOG(Warn, kLog) << id_ << " crashed at t=" << sim_.now();
  crashed_ = true;
  if (hb_timer_ != 0) {
    sim_.cancel(hb_timer_);
    hb_timer_ = 0;
  }
  // Heartbeats in flight will never be answered usefully; close their
  // round-trip spans as aborted.
  for (const auto& [span, oob] : outstanding_hb_) {
    tracer_->async_end(trk_, oob ? "oob_heartbeat" : "heartbeat", span, {{"aborted", 1}});
  }
  outstanding_hb_.clear();
  pending_reports_.clear();
  teardown_attempts("node-crash");
}

void TaskTracker::hang(Duration duration) {
  if (crashed_ || duration <= 0) return;
  OSAP_LOG(Warn, kLog) << id_ << " daemon hangs for " << duration << "s at t=" << sim_.now();
  hung_until_ = std::max(hung_until_, sim_.now() + duration);
}

void TaskTracker::reinit() {
  OSAP_LOG(Warn, kLog) << id_ << " reinitializing (expired while alive)";
  pending_reports_.clear();
  teardown_attempts("reinit");
}

void TaskTracker::teardown_attempts(const char* outcome) {
  silent_teardown_ = true;
  teardown_outcome_ = outcome;
  for (TaskId tid : det::sorted_keys(live_)) {
    const auto it = live_.find(tid);
    if (it == live_.end()) continue;
    LiveTask& task = it->second;
    if (task.helper.valid()) {
      kernel_.signal(task.helper, Signal::Kill);
      task.helper = Pid{};
    }
    if (task.in_cleanup) {
      // The cleanup attempt's process is already gone; free the slot it
      // was holding (its finish_cleanup timer finds nothing later).
      if (task.type == TaskType::Map) {
        --used_map_slots_;
      } else {
        --used_reduce_slots_;
      }
      tracer_->async_end(trk_, "task", tid.value(), {{"outcome", outcome}});
      live_.erase(it);
      continue;
    }
    // SIGKILL works on running and stopped processes alike; on_exit runs
    // synchronously and takes the silent-teardown path in on_task_exit,
    // which erases the entry and settles the slot accounting.
    kernel_.signal(task.pid, Signal::Kill);
  }
  silent_teardown_ = false;
  teardown_outcome_ = "";
}

void TaskTracker::apply(const TaskAction& action) {
  ctr_actions_->add();
  tracer_->instant(trk_, to_string(action.kind), {{"task", action.task.value()}});
  OSAP_LOG(Debug, kLog) << id_ << ": action " << to_string(action.kind) << " for "
                        << action.task;
  switch (action.kind) {
    case ActionKind::Launch: launch(action); break;
    case ActionKind::Kill: do_kill(action.task); break;
    case ActionKind::Suspend: do_suspend(action.task); break;
    case ActionKind::Resume: do_resume(action.task); break;
    case ActionKind::CheckpointSuspend: do_checkpoint_suspend(action.task); break;
    case ActionKind::MapsDone: {
      // The reduce's shuffle inputs are complete: release its barrier so
      // the sort can begin. If the task is suspended the release is
      // remembered and takes effect on SIGCONT.
      tracer_->async_end(shuffle_trk_, "maps_done_delivery", action.task.value());
      const auto it = live_.find(action.task);
      if (it != live_.end()) kernel_.release_barrier(it->second.pid, "maps");
      break;
    }
    case ActionKind::ReinitTracker: reinit(); break;
  }
}

void TaskTracker::launch(const TaskAction& action) {
  OSAP_CHECK_MSG(!live_.contains(action.task), action.task << " already live on " << id_);
  LiveTask task;
  task.task = action.task;
  task.type = action.spec.type;
  task.state_memory = action.spec.state_memory;
  const TaskId tid = action.task;
  if (action.spec.streaming_helper_memory > 0 || action.spec.streaming_cpu_per_byte > 0) {
    // Hadoop Streaming: the external executable is a sibling process fed
    // through a pipe. It pauses naturally when the suspended task stops
    // feeding it; we model that by signalling it together with the task.
    // The helper never exits on its own: after draining its input it
    // blocks reading the pipe until the task closes it (modelled as a
    // barrier the TaskTracker releases by killing the helper on task
    // exit).
    task.helper = kernel_.spawn(
        ProgramBuilder(action.spec.name + "/pipe")
            .alloc("buffers", std::max<Bytes>(action.spec.streaming_helper_memory, 1 * MiB),
                   /*hot_after=*/true)
            .compute(static_cast<double>(action.spec.input_bytes) *
                     action.spec.streaming_cpu_per_byte)
            .barrier("eof")
            .build());
  }
  if (task.type == TaskType::Map) {
    ++used_map_slots_;
  } else {
    ++used_reduce_slots_;
  }
  task.pid = kernel_.spawn(
      build_task_program(action.spec),
      ProcessHooks{
          .on_exit = [this, tid](ExitInfo info) { on_task_exit(tid, info); },
          .on_stopped =
              [this, tid] {
                auto it = live_.find(tid);
                if (it == live_.end()) return;
                // A checkpoint-suspend stops the process only to quiesce
                // it for serialization; the slot stays busy until the
                // state hits disk.
                if (it->second.checkpointing) return;
                it->second.suspended = true;
                ++suspended_;
                // The slot frees as soon as the process stops: this is
                // what lets the high-priority task start immediately.
                if (it->second.type == TaskType::Map) {
                  --used_map_slots_;
                } else {
                  --used_reduce_slots_;
                }
                queue_report(tid, ReportKind::Suspended);
                if (cfg_.out_of_band_heartbeat && cfg_.oob_on_suspend) send_status(true);
              },
          .on_continued =
              [this, tid] {
                auto it = live_.find(tid);
                if (it == live_.end() || !it->second.suspended) return;
                it->second.suspended = false;
                --suspended_;
                if (it->second.type == TaskType::Map) {
                  ++used_map_slots_;
                } else {
                  ++used_reduce_slots_;
                }
                queue_report(tid, ReportKind::Resumed);
              },
      });
  live_.emplace(tid, task);
  tracer_->async_begin(trk_, "task", tid.value(),
                       {{"name", action.spec.name},
                        {"type", task.type == TaskType::Map ? "map" : "reduce"}});
}

void TaskTracker::do_kill(TaskId id) {
  auto it = live_.find(id);
  if (it == live_.end()) return;  // completed in the meanwhile
  it->second.kill_requested = true;
  kernel_.signal(it->second.pid, Signal::Kill);
  if (it->second.helper.valid()) kernel_.signal(it->second.helper, Signal::Kill);
}

void TaskTracker::do_suspend(TaskId id) {
  auto it = live_.find(id);
  if (it == live_.end()) return;  // completed in the meanwhile
  kernel_.signal(it->second.pid, Signal::Tstp);
  // The streaming helper blocks on its pipe once the task stops writing;
  // stopping it explicitly has the same effect on the machine.
  if (it->second.helper.valid()) kernel_.signal(it->second.helper, Signal::Tstp);
}

void TaskTracker::do_resume(TaskId id) {
  auto it = live_.find(id);
  if (it == live_.end()) return;
  kernel_.signal(it->second.pid, Signal::Cont);
  if (it->second.helper.valid()) kernel_.signal(it->second.helper, Signal::Cont);
}

void TaskTracker::do_checkpoint_suspend(TaskId id) {
  auto it = live_.find(id);
  if (it == live_.end()) return;  // completed in the meanwhile
  LiveTask& task = it->second;
  task.checkpointing = true;
  task.checkpoint_progress = kernel_.progress(task.pid);
  // Stop the task, serialize its state (progress counters plus any
  // in-memory state) to local disk, then tear the JVM down. The slot stays
  // busy for the whole serialization — Natjam's ever-present overhead.
  kernel_.signal(task.pid, Signal::Tstp);
  const Bytes to_serialize = task.state_memory + 64 * KiB;  // counters at least
  const TaskId tid = id;
  kernel_.disk().start(IoClass::HdfsWrite, to_serialize, [this, tid] {
    auto lt = live_.find(tid);
    if (lt == live_.end()) return;
    kernel_.signal(lt->second.pid, Signal::Kill);
  });
}

void TaskTracker::on_task_exit(TaskId id, ExitInfo info) {
  auto it = live_.find(id);
  if (it == live_.end()) return;
  LiveTask& task = it->second;
  if (silent_teardown_) {
    // Crash / reinit teardown: forget the attempt without reporting —
    // a dead node reports nothing, and a reinitialized tracker's attempts
    // were already forfeited by the JobTracker.
    if (task.helper.valid()) kernel_.signal(task.helper, Signal::Kill);
    if (task.suspended) {
      --suspended_;
      task.suspended = false;
      if (task.type == TaskType::Map) {
        ++used_map_slots_;
      } else {
        ++used_reduce_slots_;
      }
    }
    if (task.type == TaskType::Map) {
      --used_map_slots_;
    } else {
      --used_reduce_slots_;
    }
    tracer_->async_end(trk_, "task", id.value(), {{"outcome", teardown_outcome_}});
    live_.erase(it);
    return;
  }
  if (task.helper.valid()) {
    // The pipe closes with the task: the helper sees EOF and exits.
    kernel_.signal(task.helper, Signal::Kill);
    task.helper = Pid{};
  }
  if (task.suspended) {
    // Killed while parked: it held no slot, but the cleanup attempt needs
    // one.
    --suspended_;
    task.suspended = false;
    if (task.type == TaskType::Map) {
      ++used_map_slots_;
    } else {
      ++used_reduce_slots_;
    }
  }
  if (info.reason == ExitReason::Finished) {
    if (task.type == TaskType::Map) {
      --used_map_slots_;
    } else {
      --used_reduce_slots_;
    }
    queue_report(id, ReportKind::Succeeded);
    tracer_->async_end(trk_, "task", id.value(), {{"outcome", "succeeded"}});
    live_.erase(it);
    if (cfg_.out_of_band_heartbeat) send_status(true);
    return;
  }
  if (task.checkpointing) {
    // Natjam suspend complete: the JVM is gone, the checkpoint is on
    // disk. Report the saved progress so the relaunch can fast-forward.
    if (task.type == TaskType::Map) {
      --used_map_slots_;
    } else {
      --used_reduce_slots_;
    }
    TaskStatusReport report;
    report.task = id;
    report.kind = ReportKind::Checkpointed;
    report.progress = task.checkpoint_progress;
    report.swapped_out = kernel_.vmm().swapped_out_total(task.pid);
    report.swapped_in = kernel_.vmm().swapped_in_total(task.pid);
    pending_reports_.push_back(report);
    tracer_->async_end(trk_, "task", id.value(), {{"outcome", "checkpointed"}});
    live_.erase(it);
    if (cfg_.out_of_band_heartbeat) send_status(true);
    return;
  }
  if (task.kill_requested) {
    // "kill runs a cleanup task to remove temporary outputs of the killed
    // task": the slot stays busy until the cleanup attempt completes.
    task.in_cleanup = true;
    const TaskId tid = id;
    sim_.after(cfg_.kill_cleanup_duration, [this, tid] { finish_cleanup(tid); });
    return;
  }
  // Died without being asked to (OOM killer): report failure.
  if (task.type == TaskType::Map) {
    --used_map_slots_;
  } else {
    --used_reduce_slots_;
  }
  queue_report(id, ReportKind::Failed);
  tracer_->async_end(trk_, "task", id.value(), {{"outcome", "failed"}});
  live_.erase(it);
  if (cfg_.out_of_band_heartbeat) send_status(true);
}

void TaskTracker::finish_cleanup(TaskId id) {
  auto it = live_.find(id);
  if (it == live_.end()) return;
  if (it->second.type == TaskType::Map) {
    --used_map_slots_;
  } else {
    --used_reduce_slots_;
  }
  queue_report(id, ReportKind::KilledAck);
  tracer_->async_end(trk_, "task", id.value(), {{"outcome", "killed"}});
  live_.erase(it);
  if (cfg_.out_of_band_heartbeat) send_status(true);
}

void TaskTracker::queue_report(TaskId id, ReportKind kind) {
  TaskStatusReport report;
  report.task = id;
  report.kind = kind;
  const Pid pid = attempt_pid(id);
  report.progress = kind == ReportKind::Succeeded ? 1.0
                    : pid.valid()                 ? kernel_.progress(pid)
                                                  : 0;
  if (pid.valid()) {
    // Paging totals survive process exit in the VMM, so completion
    // reports still carry them (Fig. 4's per-task swap metric).
    report.swapped_out = kernel_.vmm().swapped_out_total(pid);
    report.swapped_in = kernel_.vmm().swapped_in_total(pid);
  }
  pending_reports_.push_back(report);
}

std::string TaskTracker::audit_label() const {
  std::ostringstream os;
  os << id_;
  return os.str();
}

void TaskTracker::audit(std::vector<std::string>& violations) const {
  const auto flag = [&violations](const auto&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    violations.push_back(os.str());
  };
  if (crashed_ && (!live_.empty() || used_map_slots_ != 0 || used_reduce_slots_ != 0 ||
                   suspended_ != 0)) {
    flag("crashed tracker still hosts ", live_.size(), " attempts (map=", used_map_slots_,
         " reduce=", used_reduce_slots_, " suspended=", suspended_, ")");
  }
  int map_slots = 0;
  int reduce_slots = 0;
  int suspended = 0;
  for (TaskId tid : det::sorted_keys(live_)) {
    const LiveTask& task = live_.at(tid);
    if (task.suspended) {
      ++suspended;
    } else if (task.type == TaskType::Map) {
      // Running, checkpointing and cleanup attempts all hold their slot;
      // only a completed SIGTSTP frees it.
      ++map_slots;
    } else {
      ++reduce_slots;
    }
    const Process* p = kernel_.find(task.pid);
    if (task.in_cleanup) {
      if (p != nullptr) flag(tid, " is in cleanup but its process still exists");
      continue;
    }
    if (p == nullptr) {
      flag(tid, " is live but has no process (pid ", task.pid, ")");
    } else if (task.suspended && p->state() != ProcState::Stopped) {
      flag(tid, " counted as suspended but its process is ", to_string(p->state()));
    }
  }
  if (used_map_slots_ != map_slots) {
    flag("used map slots ", used_map_slots_, " != ", map_slots, " slot-holding map tasks");
  }
  if (used_reduce_slots_ != reduce_slots) {
    flag("used reduce slots ", used_reduce_slots_, " != ", reduce_slots,
         " slot-holding reduce tasks");
  }
  if (suspended_ != suspended) {
    flag("suspended counter ", suspended_, " != ", suspended, " suspended tasks");
  }
  if (used_map_slots_ < 0 || used_reduce_slots_ < 0 || suspended_ < 0) {
    flag("negative counter: map=", used_map_slots_, " reduce=", used_reduce_slots_,
         " suspended=", suspended_);
  }
}

void TaskTracker::dump(std::ostream& os) const {
  os << id_ << " on " << node_ << ": " << used_map_slots_ << "/" << cfg_.map_slots
     << " map slots, " << used_reduce_slots_ << "/" << cfg_.reduce_slots << " reduce slots, "
     << suspended_ << " suspended, " << live_.size() << " live tasks";
  if (crashed_) os << " [CRASHED]";
  if (hung_until_ > 0) os << " [hung until t=" << hung_until_ << "]";
  os << '\n';
  for (TaskId tid : det::sorted_keys(live_)) {
    const LiveTask& task = live_.at(tid);
    const Process* p = kernel_.find(task.pid);
    os << "  " << tid << ' ' << to_string(task.type) << " pid=" << task.pid << " proc="
       << (p == nullptr ? "<gone>" : to_string(p->state()));
    if (task.suspended) os << " suspended";
    if (task.checkpointing) os << " checkpointing";
    if (task.in_cleanup) os << " cleanup";
    if (task.helper.valid()) os << " helper=" << task.helper;
    os << '\n';
  }
}

}  // namespace osap
