#include "spark/driver.hpp"

#include "common/error.hpp"
#include "common/log.hpp"

namespace osap {

namespace {
constexpr const char* kLog = "spark";
// Executors are long-lived services; this bounds the simulation horizon.
constexpr Duration kExecutorLifetime = 1e7;
}  // namespace

SparkAppSpec iterative_app(std::string name, Bytes input, Bytes cache, int iterations) {
  SparkAppSpec app;
  app.name = std::move(name);
  OSAP_CHECK(iterations >= 0);
  SparkStageSpec first;
  first.tasks = 1;
  first.input_per_task = input;
  first.cache_output_per_task = cache;
  app.stages.push_back(first);
  for (int i = 0; i < iterations; ++i) {
    SparkStageSpec iter;
    iter.tasks = 1;
    iter.input_per_task = input;
    iter.read_from_cache = true;
    app.stages.push_back(iter);
  }
  return app;
}

SparkDriver::SparkDriver(Cluster& cluster, SparkAppSpec spec, NodeId executor_node)
    : cluster_(&cluster), spec_(std::move(spec)), node_(executor_node) {
  OSAP_CHECK_MSG(!spec_.stages.empty(), "a Spark app needs at least one stage");
  // Watch for our stage jobs completing.
  cluster_->job_tracker().add_event_hook([this](const ClusterEvent& e) {
    if (e.type != ClusterEventType::JobCompleted) return;
    if (!current_job_ || e.job != *current_job_) return;
    current_job_.reset();
    stage_finished(stage_);
  });
}

void SparkDriver::ensure_executor() {
  Kernel& kernel = cluster_->kernel(node_);
  if (executor_.valid() && kernel.alive(executor_)) return;
  executor_ = kernel.spawn(ProgramBuilder(spec_.name + "-executor")
                               .alloc("framework", spec_.executor_memory, /*hot_after=*/true)
                               .sleep(kExecutorLifetime)
                               .build());
  cache_bytes_ = 0;
  cache_valid_ = false;
}

void SparkDriver::start(std::function<void()> on_done) {
  OSAP_CHECK_MSG(started_at_ < 0, "driver started twice");
  on_done_ = std::move(on_done);
  started_at_ = cluster_->sim().now();
  // Between stages the driver is pure async work (cache commit, page-in)
  // with no live job; hold the cluster's run loop open until the app ends
  // so those continuations aren't stranded.
  cluster_->retain_work();
  ensure_executor();
  run_stage(0);
}

TaskSpec SparkDriver::task_for(const SparkStageSpec& stage, bool cache_hit) const {
  TaskSpec task;
  task.type = TaskType::Map;
  task.framework_memory = 64 * MiB;  // per-task working memory; the heap is the executor's
  task.preferred_node = node_;
  if (cache_hit) {
    // Iterate over in-memory partitions: no storage read, and the parse
    // work was already paid in the first pass.
    task.input_bytes = 0;
    task.startup_cpu_seconds =
        1.0 + static_cast<double>(stage.input_per_task) * stage.cpu_per_byte *
                  stage.cached_cpu_fraction;
  } else {
    task.input_bytes = stage.input_per_task;
    task.parse_cpu_per_byte = stage.cpu_per_byte;
    task.startup_cpu_seconds = 1.0;
  }
  return task;
}

void SparkDriver::run_stage(int index) {
  if (index >= static_cast<int>(spec_.stages.size())) {
    done_ = true;
    completed_at_ = cluster_->sim().now();
    // The app is finished: the executor (and its cache) can go.
    cluster_->kernel(node_).signal(executor_, Signal::Kill);
    OSAP_LOG(Info, kLog) << spec_.name << " finished in " << runtime() << "s ("
                         << recomputations_ << " recomputations)";
    cluster_->release_work();
    if (on_done_) on_done_();
    return;
  }
  stage_ = index;
  const SparkStageSpec& stage = spec_.stages[static_cast<std::size_t>(index)];
  const bool want_cache = stage.read_from_cache;
  const bool cache_hit = want_cache && cache_valid_;
  if (want_cache && !cache_hit) ++recomputations_;

  auto submit = [this, index, &stage, cache_hit] {
    JobSpec job;
    job.name = spec_.name + "-stage" + std::to_string(index);
    job.priority = spec_.priority;
    for (int t = 0; t < stage.tasks; ++t) job.tasks.push_back(task_for(stage, cache_hit));
    current_job_ = cluster_->submit(std::move(job));
  };
  if (cache_hit && executor_.valid()) {
    // Fault the cached partitions back in before the stage touches them —
    // the deferred cost of having been suspended under memory pressure.
    cluster_->kernel(node_).page_in_region(executor_, "cache", submit);
  } else {
    submit();
  }
}

void SparkDriver::stage_finished(int index) {
  const SparkStageSpec& stage = spec_.stages[static_cast<std::size_t>(index)];
  const Bytes produced =
      stage.cache_output_per_task * static_cast<Bytes>(stage.tasks);
  if (produced > 0 && executor_.valid() && cluster_->kernel(node_).alive(executor_)) {
    // Materialize the stage output into the executor's cache region
    // (created lazily on first use).
    Kernel& kernel = cluster_->kernel(node_);
    Vmm& vmm = kernel.vmm();
    const RegionId region = kernel.ensure_region(executor_, "cache");
    cache_bytes_ += produced;
    vmm.commit(region, produced, [this, index] {
      cache_valid_ = true;
      run_stage(index + 1);
    });
    return;
  }
  run_stage(index + 1);
}

void SparkDriver::preempt(PreemptPrimitive primitive) {
  JobTracker& jt = cluster_->job_tracker();
  switch (primitive) {
    case PreemptPrimitive::Wait:
      return;
    case PreemptPrimitive::Suspend: {
      suspended_ = true;
      cluster_->kernel(node_).signal(executor_, Signal::Tstp);
      if (current_job_) {
        for (TaskId tid : jt.job(*current_job_).tasks) {
          if (jt.task(tid).state == TaskState::Running) jt.suspend_task(tid);
        }
      }
      return;
    }
    case PreemptPrimitive::Kill: {
      killed_pending_restart_ = true;
      cluster_->kernel(node_).signal(executor_, Signal::Kill);
      cache_valid_ = false;
      cache_bytes_ = 0;
      if (current_job_) {
        for (TaskId tid : jt.job(*current_job_).tasks) {
          if (jt.task(tid).live()) jt.kill_task(tid);
        }
      }
      return;
    }
    case PreemptPrimitive::NatjamCheckpoint:
      throw SimError("SparkDriver does not implement checkpoint preemption");
  }
}

void SparkDriver::restore(PreemptPrimitive primitive) {
  JobTracker& jt = cluster_->job_tracker();
  switch (primitive) {
    case PreemptPrimitive::Wait:
      return;
    case PreemptPrimitive::Suspend: {
      suspended_ = false;
      cluster_->kernel(node_).signal(executor_, Signal::Cont);
      if (current_job_) {
        for (TaskId tid : jt.job(*current_job_).tasks) {
          if (jt.task(tid).state == TaskState::Suspended) jt.resume_task(tid);
        }
      }
      return;
    }
    case PreemptPrimitive::Kill: {
      if (!killed_pending_restart_) return;
      killed_pending_restart_ = false;
      ensure_executor();
      // Tasks specced against the (now lost) cache must recompute.
      if (current_job_) {
        const SparkStageSpec& stage = spec_.stages[static_cast<std::size_t>(stage_)];
        if (stage.read_from_cache) {
          bool rewrote = false;
          for (TaskId tid : jt.job(*current_job_).tasks) {
            if (jt.task(tid).state == TaskState::Unassigned) {
              jt.set_task_spec(tid, task_for(stage, /*cache_hit=*/false));
              rewrote = true;
            }
          }
          if (rewrote) ++recomputations_;
        }
      }
      return;
    }
    case PreemptPrimitive::NatjamCheckpoint:
      throw SimError("SparkDriver does not implement checkpoint preemption");
  }
}

Bytes SparkDriver::cache_swapped_out() const {
  if (!executor_.valid()) return 0;
  return cluster_->kernel(node_).vmm().swapped_out_total(executor_);
}

}  // namespace osap
