// Spark-style applications on the simulated substrate (§VI outlook:
// "the application of our technique to additional DISC frameworks, such
// as Apache Spark").
//
// The property that makes Spark interesting for this preemption primitive
// is *long-lived state*: executors cache RDD partitions in memory across
// stages. Killing an executor to make room for another application throws
// that cache away and forces recomputation; OS-assisted suspension parks
// the executor, lets the OS page the cache out lazily, and pages it back
// in when (and only when) a later stage actually reads it.
//
// Model: an application is a sequence of stages. Each stage runs a set of
// tasks (through the regular TaskTracker slots); a stage may cache its
// output in the application's executor-cache process and later stages may
// read from that cache instead of re-reading (and re-parsing) the input.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"

namespace osap {

struct SparkStageSpec {
  int tasks = 1;
  /// Input read from storage when the stage does not (or cannot) use the
  /// cache.
  Bytes input_per_task = 512 * MiB;
  double cpu_per_byte = 1.0 / (6.7 * static_cast<double>(MiB));
  /// Consume the previous cached output instead of re-reading the input.
  /// Falls back to the full read+parse when the cache was lost.
  bool read_from_cache = false;
  /// In-memory data is only parsed once: reading cached partitions costs
  /// this fraction of the first pass's CPU.
  double cached_cpu_fraction = 0.3;
  /// Bytes added to the executor cache by each task of this stage.
  Bytes cache_output_per_task = 0;
};

struct SparkAppSpec {
  std::string name = "app";
  int priority = 0;
  /// Framework (executor JVM) footprint, hot for the app's lifetime.
  Bytes executor_memory = 256 * MiB;
  std::vector<SparkStageSpec> stages;
};

/// An iterative job: stage 0 reads + parses + caches; the remaining
/// `iterations` stages iterate over the cached data.
SparkAppSpec iterative_app(std::string name, Bytes input, Bytes cache, int iterations);

}  // namespace osap
