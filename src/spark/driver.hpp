// Spark driver: runs one application's stages over the cluster and owns
// its executor-cache process.
//
// The cache lives in a dedicated long-lived process per application (the
// executor), whose "cache" region grows as stages cache output. Preempting
// the application:
//
//   Suspend — SIGTSTP the executor and any running stage tasks. The cache
//             stays in memory; under pressure the OS pages it out. Before
//             a cache-reading stage resumes, the driver faults the region
//             back in (the swap-in cost appears exactly where it should).
//   Kill    — kill the executor and stage tasks: the cache is gone, the
//             current stage's work is gone, and cache-reading stages fall
//             back to full recomputation.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "hadoop/cluster.hpp"
#include "preempt/primitive.hpp"
#include "spark/app.hpp"

namespace osap {

class SparkDriver {
 public:
  /// The driver submits through `cluster`'s scheduler; the executor cache
  /// lives on `executor_node`. The driver registers a JobTracker event
  /// hook, so it must outlive the cluster's run.
  SparkDriver(Cluster& cluster, SparkAppSpec spec, NodeId executor_node);
  SparkDriver(const SparkDriver&) = delete;
  SparkDriver& operator=(const SparkDriver&) = delete;

  /// Launch stage 0. `on_done` fires when the last stage completes.
  void start(std::function<void()> on_done = {});

  /// Preempt the whole application with the given primitive. Wait is a
  /// no-op; Suspend parks the executor + running stage tasks; Kill tears
  /// them down (losing cache and stage progress).
  void preempt(PreemptPrimitive primitive);
  /// Undo a suspension (or reschedule after a kill).
  void restore(PreemptPrimitive primitive);

  [[nodiscard]] bool done() const noexcept { return done_; }
  [[nodiscard]] SimTime started_at() const noexcept { return started_at_; }
  [[nodiscard]] SimTime completed_at() const noexcept { return completed_at_; }
  [[nodiscard]] Duration runtime() const noexcept {
    return done_ ? completed_at_ - started_at_ : -1;
  }
  [[nodiscard]] int stages_completed() const noexcept { return stage_; }
  [[nodiscard]] bool cache_valid() const noexcept { return cache_valid_; }
  /// Stages that had to recompute because the cache was lost.
  [[nodiscard]] int recomputations() const noexcept { return recomputations_; }
  [[nodiscard]] Bytes cache_swapped_out() const;

 private:
  void run_stage(int index);
  void stage_finished(int index);
  void ensure_executor();
  TaskSpec task_for(const SparkStageSpec& stage, bool cache_hit) const;

  Cluster* cluster_;
  SparkAppSpec spec_;
  NodeId node_;
  std::function<void()> on_done_;

  Pid executor_;
  Bytes cache_bytes_ = 0;
  bool cache_valid_ = false;
  bool suspended_ = false;
  bool killed_pending_restart_ = false;
  int stage_ = 0;
  std::optional<JobId> current_job_;
  bool done_ = false;
  int recomputations_ = 0;
  SimTime started_at_ = -1;
  SimTime completed_at_ = -1;
};

}  // namespace osap
