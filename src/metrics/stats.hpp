// Summary statistics over repeated experiment runs.
#pragma once

#include <cmath>
#include <vector>

namespace osap {

/// Accumulates mean / min / max / stddev incrementally (Welford).
class RunningStat {
 public:
  void add(double x) noexcept;

  [[nodiscard]] int count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0; }
  [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0; }
  [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0; }
  [[nodiscard]] double variance() const noexcept { return n_ > 1 ? m2_ / (n_ - 1) : 0; }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  /// Largest relative deviation of min/max from the mean — the paper
  /// reports "minimum and maximum values measured are within 5% of the
  /// average".
  [[nodiscard]] double spread() const noexcept;

 private:
  int n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

RunningStat summarize(const std::vector<double>& xs);

}  // namespace osap
