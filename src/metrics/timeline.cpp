#include "metrics/timeline.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace osap {

TimelineRecorder::TimelineRecorder(JobTracker& jt) : jt_(&jt) {
  jt_->add_event_hook([this](const ClusterEvent& e) { events_.push_back(e); });
}

std::optional<SimTime> TimelineRecorder::first(ClusterEventType type, TaskId task) const {
  for (const ClusterEvent& e : events_) {
    if (e.type == type && e.task == task) return e.time;
  }
  return std::nullopt;
}

std::optional<SimTime> TimelineRecorder::first(ClusterEventType type, JobId job) const {
  for (const ClusterEvent& e : events_) {
    if (e.type == type && e.job == job) return e.time;
  }
  return std::nullopt;
}

Duration TimelineRecorder::makespan() const {
  SimTime first_submit = kTimeNever;
  SimTime last_complete = -1;
  for (const ClusterEvent& e : events_) {
    if (e.type == ClusterEventType::JobSubmitted) first_submit = std::min(first_submit, e.time);
    if (e.type == ClusterEventType::JobCompleted) last_complete = std::max(last_complete, e.time);
  }
  if (first_submit == kTimeNever || last_complete < 0) return -1;
  return last_complete - first_submit;
}

std::string TimelineRecorder::render_gantt(double seconds_per_cell) const {
  // Build per-task state-change sequences.
  struct Span {
    SimTime at;
    char glyph;
  };
  std::map<TaskId, std::vector<Span>> tasks;   // ordered for stable output
  std::map<TaskId, std::string> labels;
  SimTime horizon = 0;
  for (const ClusterEvent& e : events_) {
    if (!e.task.valid()) continue;
    horizon = std::max(horizon, e.time);
    char glyph = 0;
    switch (e.type) {
      case ClusterEventType::TaskLaunched: glyph = '='; break;
      case ClusterEventType::TaskSuspended: glyph = '.'; break;
      case ClusterEventType::TaskResumed: glyph = '='; break;
      case ClusterEventType::TaskKilled: glyph = ' '; break;
      case ClusterEventType::TaskSucceeded: glyph = '|'; break;
      case ClusterEventType::TaskFailed: glyph = ' '; break;
      case ClusterEventType::TaskLost: glyph = ' '; break;
      case ClusterEventType::TaskSpeculated: glyph = '~'; break;
      case ClusterEventType::SpeculationPromoted: glyph = '='; break;
      // Every other kind carries no per-task occupancy to draw; listed
      // explicitly (EVT-1) so a future kind must decide its glyph here.
      case ClusterEventType::JobSubmitted:
      case ClusterEventType::JobCompleted:
      case ClusterEventType::JobFailed:
      case ClusterEventType::TaskSuspendRequested:
      case ClusterEventType::TaskResumeRequested:
      case ClusterEventType::TaskKillRequested:
      case ClusterEventType::MapOutputLost:
      case ClusterEventType::TrackerLost:
      case ClusterEventType::TrackerBlacklisted:
      case ClusterEventType::SpeculationWon:
      case ClusterEventType::SpeculationLost:
      case ClusterEventType::SpeculationKilled:
      case ClusterEventType::NodeRevocationWarned:
        continue;
    }
    tasks[e.task].push_back(Span{e.time, glyph});
    if (!labels.contains(e.task)) {
      labels[e.task] = jt_->task(e.task).spec.name;
    }
  }
  std::size_t label_width = 4;
  for (const auto& [tid, name] : labels) label_width = std::max(label_width, name.size());

  std::ostringstream os;
  const int cells = static_cast<int>(horizon / seconds_per_cell) + 1;
  for (const auto& [tid, spans] : tasks) {
    std::string row(static_cast<std::size_t>(cells), ' ');
    for (std::size_t i = 0; i < spans.size(); ++i) {
      const char glyph = spans[i].glyph;
      const int from = static_cast<int>(spans[i].at / seconds_per_cell);
      if (glyph == '|') {
        if (from < cells) row[static_cast<std::size_t>(from)] = '|';
        continue;
      }
      const SimTime until = (i + 1 < spans.size()) ? spans[i + 1].at : horizon;
      const int to = std::min(cells, static_cast<int>(until / seconds_per_cell) + 1);
      for (int c = from; c < to; ++c) row[static_cast<std::size_t>(c)] = glyph;
    }
    std::string label = labels[tid];
    label.resize(label_width, ' ');
    os << label << " |" << row << "|\n";
  }
  char footer[128];
  std::snprintf(footer, sizeof footer,
                "0 .. %.0fs  (1 cell = %.1fs; '=' running, '.' suspended, '|' done)", horizon,
                seconds_per_cell);
  os << std::string(label_width, ' ') << "  " << footer << "\n";
  return os.str();
}

}  // namespace osap
