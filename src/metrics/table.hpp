// Fixed-width table printing for bench output — each bench reproduces the
// rows/series of one paper figure or table.
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace osap {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& row(std::vector<std::string> cells);

  /// Render with aligned columns to `os`.
  void print(std::ostream& os = std::cout) const;

  /// Render as CSV (quotes cells containing commas or quotes).
  void print_csv(std::ostream& os) const;

  /// Format helper: fixed decimals.
  static std::string num(double v, int decimals = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace osap
