// Experiment runner: repeats a seeded run N times and aggregates named
// metrics — "all our results are obtained by averaging 20 experiment
// runs" (§IV-C).
#pragma once

#include <functional>
#include <map>
#include <string>

#include "metrics/stats.hpp"

namespace osap {

using MetricMap = std::map<std::string, double>;

class ExperimentRunner {
 public:
  using RunFn = std::function<MetricMap(std::uint64_t seed, int run_index)>;

  /// Runs `fn` `runs` times with seeds derived from `base_seed` and
  /// aggregates each metric key across runs.
  static std::map<std::string, RunningStat> run(const RunFn& fn, int runs,
                                                std::uint64_t base_seed = 42);
};

}  // namespace osap
