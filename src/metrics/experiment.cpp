#include "metrics/experiment.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"

namespace osap {

std::map<std::string, RunningStat> ExperimentRunner::run(const RunFn& fn, int runs,
                                                         std::uint64_t base_seed) {
  OSAP_CHECK(runs >= 1);
  std::map<std::string, RunningStat> agg;
  Rng seeder(base_seed);
  for (int i = 0; i < runs; ++i) {
    const std::uint64_t seed = seeder.next_u64();
    MetricMap metrics = fn(seed, i);
    for (const auto& [key, value] : metrics) agg[key].add(value);
  }
  return agg;
}

}  // namespace osap
