#include "metrics/stats.hpp"

#include <algorithm>

namespace osap {

void RunningStat::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / n_;
  m2_ += delta * (x - mean_);
}

double RunningStat::spread() const noexcept {
  if (n_ == 0 || mean_ == 0) return 0;
  return std::max(std::abs(max_ - mean_), std::abs(mean_ - min_)) / std::abs(mean_);
}

RunningStat summarize(const std::vector<double>& xs) {
  RunningStat s;
  for (double x : xs) s.add(x);
  return s;
}

}  // namespace osap
