// Timeline recorder: captures cluster events and renders Fig.-1-style
// task execution schedules as ASCII Gantt charts.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "hadoop/events.hpp"
#include "hadoop/job_tracker.hpp"

namespace osap {

class TimelineRecorder {
 public:
  /// Installs itself as the JobTracker's event hook.
  explicit TimelineRecorder(JobTracker& jt);

  [[nodiscard]] const std::vector<ClusterEvent>& events() const noexcept { return events_; }

  /// First event of the given type for the task; nullopt if absent.
  [[nodiscard]] std::optional<SimTime> first(ClusterEventType type, TaskId task) const;
  [[nodiscard]] std::optional<SimTime> first(ClusterEventType type, JobId job) const;

  /// Makespan over all recorded jobs: first submission to last completion.
  [[nodiscard]] Duration makespan() const;

  /// Render one row per task, like the paper's Figure 1:
  ///   tl |===.....====|      (= running, . suspended, x killed span)
  /// `seconds_per_cell` sets the horizontal resolution.
  [[nodiscard]] std::string render_gantt(double seconds_per_cell = 2.0) const;

 private:
  JobTracker* jt_;
  std::vector<ClusterEvent> events_;
};

}  // namespace osap
