#include "metrics/table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"

namespace osap {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row(std::vector<std::string> cells) {
  OSAP_CHECK_MSG(cells.size() == headers_.size(),
                 "row has " << cells.size() << " cells, expected " << headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&os](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) os << ',';
      const std::string& cell = cells[i];
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char c : cell) {
          if (c == '"') os << '"';
          os << c;
        }
        os << '"';
      } else {
        os << cell;
      }
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << (i == 0 ? "" : "  ");
      os.width(static_cast<std::streamsize>(widths[i]));
      os << cells[i];
    }
    os << '\n';
  };
  os << std::left;
  print_row(headers_);
  std::string rule;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    rule += std::string(widths[i], '-');
    if (i + 1 < widths.size()) rule += "  ";
  }
  os << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace osap
