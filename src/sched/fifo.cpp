#include "sched/fifo.hpp"

#include <algorithm>

namespace osap {

std::vector<JobId> FifoScheduler::job_queue() const {
  // Sorting the running set matches the old sort-all-then-filter order:
  // the comparator reads only per-job state, and stable_sort keeps the
  // ascending-id (submission) order of equal priorities.
  std::vector<JobId> queue(jt_->running_jobs().begin(), jt_->running_jobs().end());
  std::stable_sort(queue.begin(), queue.end(), [this](JobId a, JobId b) {
    return jt_->job(a).spec.priority > jt_->job(b).spec.priority;
  });
  return queue;
}

bool FifoScheduler::eligible(const Task& task, const TrackerStatus& status) const {
  if (!task.spec.preferred_node.valid() || task.spec.preferred_node == status.node) return true;
  // Delay scheduling [20]: hold non-local launches back until the job has
  // waited out the locality delay.
  if (locality_delay_ <= 0) return true;
  const Job& job = jt_->job(task.job);
  return jt_->now() - job.submitted_at >= locality_delay_;
}

std::vector<TaskId> FifoScheduler::assign(const TrackerStatus& status) {
  std::vector<TaskId> out;
  int maps = status.free_map_slots;
  int reduces = status.free_reduce_slots;
  if (maps <= 0 && reduces <= 0) return out;

  // Node-local (or unconstrained) tasks first, remote ones second.
  for (const bool local_pass : {true, false}) {
    for (JobId jid : job_queue()) {
      const Job& job = jt_->job(jid);
      for (TaskId tid : job.unassigned) {
        const Task& task = jt_->task(tid);
        if (std::find(out.begin(), out.end(), tid) != out.end()) continue;
        const bool is_local =
            !task.spec.preferred_node.valid() || task.spec.preferred_node == status.node;
        if (local_pass != is_local) continue;
        if (!eligible(task, status)) continue;
        if (task.spec.type == TaskType::Map && maps > 0) {
          out.push_back(tid);
          --maps;
        } else if (task.spec.type == TaskType::Reduce && reduces > 0) {
          out.push_back(tid);
          --reduces;
        }
        if (maps <= 0 && reduces <= 0) return out;
      }
    }
  }
  return out;
}

}  // namespace osap
