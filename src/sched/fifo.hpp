// FIFO scheduler (Hadoop 1's default JobQueueTaskScheduler).
//
// Jobs are served by priority (descending), then submission order. Within
// a job, map tasks prefer data-local nodes; non-local launches are delayed
// by a configurable locality delay (delay scheduling [20]).
#pragma once

#include <vector>

#include "common/time.hpp"
#include "hadoop/job_tracker.hpp"
#include "hadoop/scheduler.hpp"

namespace osap {

class FifoScheduler : public Scheduler {
 public:
  /// Default locality delay of two heartbeats; pass 0 to disable delay
  /// scheduling and launch remote immediately.
  explicit FifoScheduler(Duration locality_delay = seconds(6))
      : locality_delay_(locality_delay) {}

  std::vector<TaskId> assign(const TrackerStatus& status) override;

 protected:
  /// Job ids ordered by (priority desc, submission order).
  [[nodiscard]] std::vector<JobId> job_queue() const;

  /// Whether the task may launch on this node now (locality rules).
  [[nodiscard]] bool eligible(const Task& task, const TrackerStatus& status) const;

 private:
  Duration locality_delay_;
};

}  // namespace osap
