#include "sched/dummy.hpp"

#include "common/error.hpp"
#include "common/log.hpp"

namespace osap {

void DummyScheduler::attached() { preemptor_.emplace(*jt_); }

void DummyScheduler::submit_at(SimTime t, JobSpec spec) {
  Cluster* cluster = cluster_;
  cluster->sim().at(t, [cluster, spec = std::move(spec)]() mutable {
    cluster->submit(std::move(spec));
  });
}

void DummyScheduler::at_progress(const std::string& job_name, int task_index, double fraction,
                                 std::function<void()> action) {
  ProgressTrigger trigger{job_name, task_index, fraction, std::move(action), false};
  // Arm immediately if the job already exists; otherwise wait for
  // job_added.
  const auto it = by_name_.find(job_name);
  progress_triggers_.push_back(std::move(trigger));
  if (it != by_name_.end()) job_added(it->second);
}

void DummyScheduler::on_complete(const std::string& job_name, std::function<void()> action) {
  completion_triggers_.emplace_back(job_name, std::move(action));
}

JobId DummyScheduler::job_of(const std::string& job_name) const {
  const auto it = by_name_.find(job_name);
  OSAP_CHECK_MSG(it != by_name_.end(), "dummy scheduler: unknown job '" << job_name << "'");
  return it->second;
}

TaskId DummyScheduler::task_of(const std::string& job_name, int task_index) const {
  const Job& job = jt_->job(job_of(job_name));
  OSAP_CHECK_MSG(task_index >= 0 && task_index < static_cast<int>(job.tasks.size()),
                 "job '" << job_name << "' has no task #" << task_index);
  return job.tasks[static_cast<std::size_t>(task_index)];
}

bool DummyScheduler::preempt(const std::string& job_name, int task_index,
                             PreemptPrimitive primitive) {
  return preemptor_->preempt(task_of(job_name, task_index), primitive);
}

bool DummyScheduler::restore(const std::string& job_name, int task_index,
                             PreemptPrimitive primitive) {
  return preemptor_->restore(task_of(job_name, task_index), primitive);
}

bool DummyScheduler::kill_speculative(const std::string& job_name, int task_index) {
  return jt_->kill_speculative(task_of(job_name, task_index));
}

void DummyScheduler::job_added(JobId id) {
  const Job& job = jt_->job(id);
  by_name_.emplace(job.spec.name, id);
  for (ProgressTrigger& trigger : progress_triggers_) {
    if (trigger.armed || trigger.job != job.spec.name) continue;
    OSAP_CHECK_MSG(trigger.index >= 0 && trigger.index < static_cast<int>(job.tasks.size()),
                   "trigger references missing task #" << trigger.index << " of '"
                                                       << trigger.job << "'");
    trigger.armed = true;
    const TaskId task = job.tasks[static_cast<std::size_t>(trigger.index)];
    cluster_->watch_task_progress(task, trigger.fraction, trigger.action);
  }
}

void DummyScheduler::job_completed(JobId id) {
  const Job& job = jt_->job(id);
  for (auto& [name, action] : completion_triggers_) {
    if (name != job.spec.name || !action) continue;
    auto fire = std::move(action);
    action = nullptr;  // each completion trigger fires once
    fire();
  }
}

}  // namespace osap
