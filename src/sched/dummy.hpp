// The dummy scheduler (§III-B).
//
// "We factor out the role of task eviction policies … by building a new
// scheduling component for Hadoop — a dummy scheduler — which dictates
// task eviction according to static configuration files. This allows to
// specify, using a series of simple triggers, which jobs/tasks are run in
// the cluster and which are preempted."
//
// Triggers:
//   submit_at(t, spec)                    submit a job at an absolute time
//   at_progress(job, idx, r, action)      fire when the task hits r%
//   on_complete(job, action)              fire when the job completes
//
// plus convenience actions that apply a preemption primitive to a task by
// name (wait / kill / susp / natjam). Task assignment itself falls back
// to FIFO-by-priority.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "hadoop/cluster.hpp"
#include "preempt/preemptor.hpp"
#include "sched/fifo.hpp"

namespace osap {

class DummyScheduler : public FifoScheduler {
 public:
  explicit DummyScheduler(Cluster& cluster, Duration locality_delay = seconds(6))
      : FifoScheduler(locality_delay), cluster_(&cluster) {}

  // --- trigger configuration ---------------------------------------------
  void submit_at(SimTime t, JobSpec spec);
  void at_progress(const std::string& job_name, int task_index, double fraction,
                   std::function<void()> action);
  void on_complete(const std::string& job_name, std::function<void()> action);

  // --- convenience actions -------------------------------------------------
  /// Apply `primitive` to the named task (Wait is a no-op by design).
  bool preempt(const std::string& job_name, int task_index, PreemptPrimitive primitive);
  /// Resume/reschedule the named task after the high-priority work.
  bool restore(const std::string& job_name, int task_index, PreemptPrimitive primitive);
  /// Kill only the named task's racing backup attempt (speculative
  /// execution); the primary attempt is untouched. False when none races.
  bool kill_speculative(const std::string& job_name, int task_index);

  [[nodiscard]] JobId job_of(const std::string& job_name) const;
  [[nodiscard]] TaskId task_of(const std::string& job_name, int task_index) const;

  // --- Scheduler hooks -------------------------------------------------------
  void job_added(JobId id) override;
  void job_completed(JobId id) override;

 private:
  void attached() override;

  Cluster* cluster_;
  std::optional<Preemptor> preemptor_;
  std::unordered_map<std::string, JobId> by_name_;
  struct ProgressTrigger {
    std::string job;
    int index;
    double fraction;
    std::function<void()> action;
    bool armed = false;
  };
  std::vector<ProgressTrigger> progress_triggers_;
  std::vector<std::pair<std::string, std::function<void()>>> completion_triggers_;
};

}  // namespace osap
