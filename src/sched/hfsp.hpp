// HFSP-style size-based scheduler (the authors' own scheduler [7][24],
// mentioned in §VI as the first consumer of the suspend primitive).
//
// Jobs are served shortest-remaining-size-first: the job with the least
// remaining work owns the cluster; anything else runs only in leftover
// slots. When a smaller job arrives and the slots are busy, the running
// tasks of the largest job are preempted with the configured primitive,
// and resumed once the small job is out of the way — exactly the pattern
// that makes a work-preserving, low-latency primitive valuable.
#pragma once

#include <optional>

#include "policy/policy.hpp"
#include "preempt/eviction.hpp"
#include "preempt/preemptor.hpp"
#include "preempt/resume_locality.hpp"
#include "hadoop/scheduler.hpp"

namespace osap {

class HfspScheduler : public Scheduler {
 public:
  struct Options {
    PreemptPrimitive primitive = PreemptPrimitive::Suspend;
    EvictionPolicy eviction = EvictionPolicy::MostProgress;
    Duration resume_locality_threshold = seconds(30);
    /// At most this many preemptions per heartbeat (paced, so a burst of
    /// small jobs doesn't thrash suspend/resume cycles — §III-A's note
    /// that schedulers should avoid paying the cycle cost too often).
    int max_preemptions_per_heartbeat = 1;
    /// Per-queue policy engine (docs/POLICY.md). When set, eviction
    /// orders route through it and `primitive` is ignored; when empty
    /// the scheduler applies `primitive` directly, as before.
    std::optional<policy::PolicyOptions> policy;
  };

  HfspScheduler() : options_(Options{}) {}
  explicit HfspScheduler(Options options) : options_(options) {}

  std::vector<TaskId> assign(const TrackerStatus& status) override;

  /// Remaining virtual size (bytes of unprocessed input) of a job.
  [[nodiscard]] Bytes remaining_size(JobId id) const;
  [[nodiscard]] int preemptions_issued() const noexcept { return preemptions_; }

 private:
  void attached() override;
  [[nodiscard]] JobId head_job() const;
  bool issue_preemption(TaskId victim);

  Options options_;
  std::optional<Preemptor> preemptor_;
  std::optional<ResumeLocalityPolicy> resume_policy_;
  std::optional<policy::PreemptionPolicy> policy_engine_;
  int preemptions_ = 0;
};

}  // namespace osap
