#include "sched/hfsp.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "hadoop/job_tracker.hpp"

namespace osap {

namespace {
constexpr const char* kLog = "hfsp";
}

void HfspScheduler::attached() {
  preemptor_.emplace(*jt_);
  resume_policy_.emplace(*jt_, options_.resume_locality_threshold);
  if (options_.policy) policy_engine_.emplace(*jt_, *options_.policy);
}

bool HfspScheduler::issue_preemption(TaskId victim) {
  if (policy_engine_) return policy_engine_->preempt(*preemptor_, victim).issued;
  return preemptor_->preempt(victim, options_.primitive);
}

Bytes HfspScheduler::remaining_size(JobId id) const {
  // The JobTracker keeps this total exact through its task-state and
  // task-progress choke points: per-task integer contributions are
  // swapped out and back in as they change, so the running sum equals
  // the old per-call rescan of every not-done task bit for bit.
  return jt_->job(id).remaining_bytes;
}

JobId HfspScheduler::head_job() const {
  // Front of the (remaining, id) order index — the old ascending-id
  // min-scan's pick, since strict-less kept the lowest id on size ties.
  const auto& by_remaining = jt_->jobs_by_remaining();
  return by_remaining.empty() ? JobId{} : by_remaining.begin()->second;
}

std::vector<TaskId> HfspScheduler::assign(const TrackerStatus& status) {
  std::vector<TaskId> out;
  const JobId head = head_job();
  if (!head.valid()) return out;

  // The head job gets its suspended tasks back first (request_resume only
  // queues; nothing transitions until resume_policy_->on_heartbeat below).
  for (TaskId tid : jt_->job(head).suspended) resume_policy_->request_resume(tid);
  // Parked victims of other jobs come back once the head has no queued
  // demand. Kill victims re-enter through the leftover-slot loop below;
  // a suspend victim has no other path back, and without this an idle
  // slot can sit next to a parked task until the victim's job finally
  // becomes head — which for the fattest job means the end of the run.
  if (jt_->job(head).unassigned.empty()) {
    for (JobId jid : jt_->running_jobs()) {
      if (jid == head) continue;
      for (TaskId tid : jt_->job(jid).suspended) resume_policy_->request_resume(tid);
    }
  }
  int free_maps = status.free_map_slots;
  int free_reduces = status.free_reduce_slots;
  free_maps -= resume_policy_->on_heartbeat(status);

  // Launch the head job's pending tasks.
  int head_pending = 0;
  for (TaskId tid : jt_->job(head).unassigned) {
    const Task& task = jt_->task(tid);
    if (task.spec.preferred_node.valid() && task.spec.preferred_node != status.node) continue;
    int& budget = task.spec.type == TaskType::Map ? free_maps : free_reduces;
    if (budget > 0) {
      out.push_back(tid);
      --budget;
    } else {
      ++head_pending;
    }
  }

  // Still starved? Take slots away from the largest job. The budget
  // paces *effective* preemptions: an order the JobTracker refuses (the
  // victim sits on a lost or blacklisted tracker, or a policy demotion
  // hit a non-preemptable state) excludes that victim and retries the
  // next candidate without consuming the budget — otherwise one dead
  // order per heartbeat would starve the head job indefinitely.
  int budget = options_.max_preemptions_per_heartbeat;
  std::vector<TaskId> refused;
  while (head_pending > 0 && budget > 0) {
    JobId fattest;
    Bytes fattest_size = 0;
    std::vector<EvictionCandidate> pool;
    for (JobId jid : jt_->running_jobs()) {
      if (jid == head) continue;
      const Bytes size = remaining_size(jid);
      if (size <= fattest_size) continue;
      std::vector<EvictionCandidate> candidates = collect_candidates(*jt_, jid);
      candidates.erase(std::remove_if(candidates.begin(), candidates.end(),
                                      [&refused](const EvictionCandidate& c) {
                                        return std::find(refused.begin(), refused.end(),
                                                         c.task) != refused.end();
                                      }),
                       candidates.end());
      if (candidates.empty()) continue;
      fattest = jid;
      fattest_size = size;
      pool = std::move(candidates);
    }
    if (!fattest.valid()) break;
    const TaskId victim = pick_victim(options_.eviction, pool);
    if (!victim.valid()) break;
    OSAP_LOG(Info, kLog) << "preempting " << victim << " of job " << fattest << " for head job "
                         << head;
    if (issue_preemption(victim)) {
      ++preemptions_;
      --head_pending;
      --budget;
    } else {
      refused.push_back(victim);
    }
  }

  // Leftover slots go to the remaining jobs, smallest first. Only jobs
  // with a non-empty unassigned pool can take one; skipping the rest
  // skips exactly the iterations the old running-jobs walk wasted.
  while (free_maps > 0 || free_reduces > 0) {
    bool assigned = false;
    for (JobId jid : jt_->schedulable_jobs()) {
      const Job& job = jt_->job(jid);
      for (TaskId tid : job.unassigned) {
        const Task& task = jt_->task(tid);
        if (std::find(out.begin(), out.end(), tid) != out.end()) continue;
        if (task.spec.preferred_node.valid() && task.spec.preferred_node != status.node) continue;
        int& budget = task.spec.type == TaskType::Map ? free_maps : free_reduces;
        if (budget <= 0) continue;
        out.push_back(tid);
        --budget;
        assigned = true;
        break;
      }
      if (assigned) break;
    }
    if (!assigned) break;
  }
  return out;
}

}  // namespace osap
