#include "sched/hfsp.hpp"

#include "common/log.hpp"
#include "hadoop/job_tracker.hpp"

namespace osap {

namespace {
constexpr const char* kLog = "hfsp";
}

void HfspScheduler::attached() {
  preemptor_.emplace(*jt_);
  resume_policy_.emplace(*jt_, options_.resume_locality_threshold);
}

Bytes HfspScheduler::remaining_size(JobId id) const {
  // The JobTracker keeps this total exact through its task-state and
  // task-progress choke points: per-task integer contributions are
  // swapped out and back in as they change, so the running sum equals
  // the old per-call rescan of every not-done task bit for bit.
  return jt_->job(id).remaining_bytes;
}

JobId HfspScheduler::head_job() const {
  // Front of the (remaining, id) order index — the old ascending-id
  // min-scan's pick, since strict-less kept the lowest id on size ties.
  const auto& by_remaining = jt_->jobs_by_remaining();
  return by_remaining.empty() ? JobId{} : by_remaining.begin()->second;
}

std::vector<TaskId> HfspScheduler::assign(const TrackerStatus& status) {
  std::vector<TaskId> out;
  const JobId head = head_job();
  if (!head.valid()) return out;

  // The head job gets its suspended tasks back first (request_resume only
  // queues; nothing transitions until resume_policy_->on_heartbeat below).
  for (TaskId tid : jt_->job(head).suspended) resume_policy_->request_resume(tid);
  int free_maps = status.free_map_slots;
  int free_reduces = status.free_reduce_slots;
  free_maps -= resume_policy_->on_heartbeat(status);

  // Launch the head job's pending tasks.
  int head_pending = 0;
  for (TaskId tid : jt_->job(head).unassigned) {
    const Task& task = jt_->task(tid);
    if (task.spec.preferred_node.valid() && task.spec.preferred_node != status.node) continue;
    int& budget = task.spec.type == TaskType::Map ? free_maps : free_reduces;
    if (budget > 0) {
      out.push_back(tid);
      --budget;
    } else {
      ++head_pending;
    }
  }

  // Still starved? Take slots away from the largest job.
  int budget = options_.max_preemptions_per_heartbeat;
  while (head_pending > 0 && budget > 0) {
    JobId fattest;
    Bytes fattest_size = 0;
    for (JobId jid : jt_->running_jobs()) {
      if (jid == head) continue;
      const Bytes size = remaining_size(jid);
      if (size > fattest_size &&
          !collect_candidates(*jt_, jid).empty()) {
        fattest = jid;
        fattest_size = size;
      }
    }
    if (!fattest.valid()) break;
    const TaskId victim = pick_victim(options_.eviction, collect_candidates(*jt_, fattest));
    if (!victim.valid()) break;
    OSAP_LOG(Info, kLog) << "preempting " << victim << " of job " << fattest << " for head job "
                         << head;
    if (preemptor_->preempt(victim, options_.primitive)) {
      ++preemptions_;
      --head_pending;
    }
    --budget;
  }

  // Leftover slots go to the remaining jobs, smallest first. Only jobs
  // with a non-empty unassigned pool can take one; skipping the rest
  // skips exactly the iterations the old running-jobs walk wasted.
  while (free_maps > 0 || free_reduces > 0) {
    bool assigned = false;
    for (JobId jid : jt_->schedulable_jobs()) {
      const Job& job = jt_->job(jid);
      for (TaskId tid : job.unassigned) {
        const Task& task = jt_->task(tid);
        if (std::find(out.begin(), out.end(), tid) != out.end()) continue;
        if (task.spec.preferred_node.valid() && task.spec.preferred_node != status.node) continue;
        int& budget = task.spec.type == TaskType::Map ? free_maps : free_reduces;
        if (budget <= 0) continue;
        out.push_back(tid);
        --budget;
        assigned = true;
        break;
      }
      if (assigned) break;
    }
    if (!assigned) break;
  }
  return out;
}

}  // namespace osap
