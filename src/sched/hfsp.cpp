#include "sched/hfsp.hpp"

#include "common/log.hpp"
#include "hadoop/job_tracker.hpp"

namespace osap {

namespace {
constexpr const char* kLog = "hfsp";
}

void HfspScheduler::attached() {
  preemptor_.emplace(*jt_);
  resume_policy_.emplace(*jt_, options_.resume_locality_threshold);
}

Bytes HfspScheduler::remaining_size(JobId id) const {
  Bytes remaining = 0;
  for (TaskId tid : jt_->job(id).tasks) {
    const Task& t = jt_->task(tid);
    if (t.done()) continue;
    const double left = 1.0 - (t.live() ? t.progress : 0.0);
    remaining += static_cast<Bytes>(left * static_cast<double>(t.spec.input_bytes));
  }
  return remaining;
}

JobId HfspScheduler::head_job() const {
  JobId head;
  Bytes best = 0;
  for (JobId jid : jt_->jobs_in_order()) {
    const Job& job = jt_->job(jid);
    if (job.state != JobState::Running) continue;
    const Bytes size = remaining_size(jid);
    if (size == 0) continue;
    if (!head.valid() || size < best) {
      head = jid;
      best = size;
    }
  }
  return head;
}

std::vector<TaskId> HfspScheduler::assign(const TrackerStatus& status) {
  std::vector<TaskId> out;
  const JobId head = head_job();
  if (!head.valid()) return out;

  // The head job gets its suspended tasks back first.
  for (TaskId tid : jt_->job(head).tasks) {
    if (jt_->task(tid).state == TaskState::Suspended) resume_policy_->request_resume(tid);
  }
  int free_maps = status.free_map_slots;
  int free_reduces = status.free_reduce_slots;
  free_maps -= resume_policy_->on_heartbeat(status);

  // Launch the head job's pending tasks.
  int head_pending = 0;
  for (TaskId tid : jt_->job(head).tasks) {
    const Task& task = jt_->task(tid);
    if (task.state != TaskState::Unassigned) continue;
    if (task.spec.preferred_node.valid() && task.spec.preferred_node != status.node) continue;
    int& budget = task.spec.type == TaskType::Map ? free_maps : free_reduces;
    if (budget > 0) {
      out.push_back(tid);
      --budget;
    } else {
      ++head_pending;
    }
  }

  // Still starved? Take slots away from the largest job.
  int budget = options_.max_preemptions_per_heartbeat;
  while (head_pending > 0 && budget > 0) {
    JobId fattest;
    Bytes fattest_size = 0;
    for (JobId jid : jt_->jobs_in_order()) {
      if (jid == head || jt_->job(jid).state != JobState::Running) continue;
      const Bytes size = remaining_size(jid);
      if (size > fattest_size &&
          !collect_candidates(*jt_, jid).empty()) {
        fattest = jid;
        fattest_size = size;
      }
    }
    if (!fattest.valid()) break;
    const TaskId victim = pick_victim(options_.eviction, collect_candidates(*jt_, fattest));
    if (!victim.valid()) break;
    OSAP_LOG(Info, kLog) << "preempting " << victim << " of job " << fattest << " for head job "
                         << head;
    if (preemptor_->preempt(victim, options_.primitive)) {
      ++preemptions_;
      --head_pending;
    }
    --budget;
  }

  // Leftover slots go to the remaining jobs, smallest first.
  while (free_maps > 0 || free_reduces > 0) {
    bool assigned = false;
    for (JobId jid : jt_->jobs_in_order()) {
      const Job& job = jt_->job(jid);
      if (job.state != JobState::Running) continue;
      for (TaskId tid : job.tasks) {
        const Task& task = jt_->task(tid);
        if (task.state != TaskState::Unassigned) continue;
        if (std::find(out.begin(), out.end(), tid) != out.end()) continue;
        if (task.spec.preferred_node.valid() && task.spec.preferred_node != status.node) continue;
        int& budget = task.spec.type == TaskType::Map ? free_maps : free_reduces;
        if (budget <= 0) continue;
        out.push_back(tid);
        --budget;
        assigned = true;
        break;
      }
      if (assigned) break;
    }
    if (!assigned) break;
  }
  return out;
}

}  // namespace osap
