#include "sched/deadline.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "hadoop/job_tracker.hpp"

namespace osap {

namespace {
constexpr const char* kLog = "deadline";
}

void DeadlineScheduler::attached() {
  preemptor_.emplace(*jt_);
  resume_policy_.emplace(*jt_, options_.resume_locality_threshold);
  if (options_.policy) policy_engine_.emplace(*jt_, *options_.policy);
}

bool DeadlineScheduler::issue_preemption(TaskId victim) {
  if (policy_engine_) return policy_engine_->preempt(*preemptor_, victim).issued;
  return preemptor_->preempt(victim, options_.primitive);
}

Duration DeadlineScheduler::remaining_work(JobId id) const {
  // The not-done index iterates in ascending task id — the same order the
  // old filtered walk of job.tasks summed in, so this floating-point
  // accumulation is bit-identical.
  double seconds = 0;
  for (TaskId tid : jt_->job(id).not_done) {
    const Task& t = jt_->task(tid);
    const double left = 1.0 - (t.live() ? t.progress : 0.0);
    seconds += left * static_cast<double>(t.spec.input_bytes) * options_.seconds_per_byte;
  }
  return seconds;
}

Duration DeadlineScheduler::laxity(JobId id) const {
  const Job& job = jt_->job(id);
  if (job.spec.deadline < 0) return kTimeNever;
  return job.spec.deadline - jt_->now() - remaining_work(id);
}

std::vector<JobId> DeadlineScheduler::edf_order() const {
  std::vector<JobId> order(jt_->running_jobs().begin(), jt_->running_jobs().end());
  std::stable_sort(order.begin(), order.end(), [this](JobId a, JobId b) {
    const SimTime da = jt_->job(a).spec.deadline < 0 ? kTimeNever : jt_->job(a).spec.deadline;
    const SimTime db = jt_->job(b).spec.deadline < 0 ? kTimeNever : jt_->job(b).spec.deadline;
    return da < db;
  });
  return order;
}

std::vector<TaskId> DeadlineScheduler::assign(const TrackerStatus& status) {
  std::vector<TaskId> out;
  const std::vector<JobId> order = edf_order();
  if (order.empty()) return out;

  // Urgent jobs get their suspended tasks back first; deadline-less
  // victims come back once no deadline job is waiting for a slot (they
  // must come back eventually, or preemption would turn into starvation).
  bool deadline_job_waiting = false;
  for (JobId jid : order) {
    const Job& job = jt_->job(jid);
    if (job.spec.deadline < 0) continue;
    if (!job.unassigned.empty()) {
      deadline_job_waiting = true;
      break;
    }
  }
  for (JobId jid : order) {
    const Job& job = jt_->job(jid);
    if (job.spec.deadline < 0 && deadline_job_waiting) continue;
    // request_resume only queues; transitions happen in on_heartbeat.
    for (TaskId tid : job.suspended) resume_policy_->request_resume(tid);
  }
  int free_maps = status.free_map_slots;
  int free_reduces = status.free_reduce_slots;
  free_maps -= resume_policy_->on_heartbeat(status);

  // EDF assignment.
  int urgent_unserved = 0;
  JobId most_urgent;
  for (JobId jid : order) {
    for (TaskId tid : jt_->job(jid).unassigned) {
      const Task& task = jt_->task(tid);
      if (task.spec.preferred_node.valid() && task.spec.preferred_node != status.node) continue;
      int& budget = task.spec.type == TaskType::Map ? free_maps : free_reduces;
      if (budget > 0) {
        out.push_back(tid);
        --budget;
      } else if (const Duration slack = laxity(jid);
                 slack < options_.laxity_margin && slack >= options_.give_up_laxity) {
        // A deadline is at risk, still plausibly meetable, and there is
        // no slot for it. Hopeless jobs (slack below the give-up cutoff)
        // fall back to plain EDF rather than preempting a slot they can
        // no longer convert into a met deadline.
        ++urgent_unserved;
        if (!most_urgent.valid()) most_urgent = jid;
      }
    }
  }

  // Take slots from the latest-deadline job for jobs about to miss. As
  // in HFSP, the budget paces effective preemptions only: a refused
  // order (lost/blacklisted tracker) excludes its victim and retries
  // without consuming the budget.
  int budget = options_.max_preemptions_per_heartbeat;
  std::vector<TaskId> refused;
  while (urgent_unserved > 0 && budget > 0) {
    TaskId victim;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      if (*it == most_urgent) continue;
      std::vector<EvictionCandidate> candidates = collect_candidates(*jt_, *it);
      candidates.erase(std::remove_if(candidates.begin(), candidates.end(),
                                      [&refused](const EvictionCandidate& c) {
                                        return std::find(refused.begin(), refused.end(),
                                                         c.task) != refused.end();
                                      }),
                       candidates.end());
      victim = pick_victim(options_.eviction, candidates);
      if (victim.valid()) break;
    }
    if (!victim.valid()) break;
    OSAP_LOG(Info, kLog) << "deadline of job " << most_urgent << " at risk (laxity "
                         << laxity(most_urgent) << "s); preempting " << victim;
    if (issue_preemption(victim)) {
      ++preemptions_;
      --urgent_unserved;
      --budget;
    } else {
      refused.push_back(victim);
    }
  }
  return out;
}

}  // namespace osap
