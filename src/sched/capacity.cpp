#include "sched/capacity.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/log.hpp"
#include "hadoop/job_tracker.hpp"

namespace osap {

namespace {
constexpr const char* kLog = "capacity";
}

CapacityScheduler::CapacityScheduler(Options options) : options_(std::move(options)) {
  OSAP_CHECK_MSG(!options_.queues.empty(), "capacity scheduler needs at least one queue");
  double total = 0;
  for (const QueueConfig& q : options_.queues) {
    OSAP_CHECK_MSG(q.capacity > 0 && q.capacity <= 1.0,
                   "queue '" << q.name << "' capacity must be in (0,1]");
    if (!q.preempt.empty()) policy::parse_decision(q.preempt);  // validate eagerly
    total += q.capacity;
  }
  OSAP_CHECK_MSG(total <= 1.0 + 1e-9, "queue capacities exceed the cluster");
}

void CapacityScheduler::attached() {
  preemptor_.emplace(*jt_);
  resume_policy_.emplace(*jt_, options_.resume_locality_threshold);
  for (const QueueConfig& q : options_.queues) satisfied_at_[q.name] = jt_->now();

  // Per-queue `preempt=` attributes are policy rules keyed on the donor
  // (preempted) queue; they merge over the explicit engine options, or
  // bring up an engine of their own with `primitive` as the default.
  bool any_queue_rule = false;
  for (const QueueConfig& q : options_.queues) any_queue_rule |= !q.preempt.empty();
  if (options_.policy || any_queue_rule) {
    policy::PolicyOptions popts =
        options_.policy ? *options_.policy : policy::PolicyOptions{};
    if (!options_.policy) {
      popts.default_decision = policy::decision_from_primitive(options_.primitive);
    }
    for (const QueueConfig& q : options_.queues) {
      if (q.preempt.empty()) continue;
      popts.per_queue.emplace_back(q.name, policy::parse_decision(q.preempt));
    }
    policy_engine_.emplace(*jt_, std::move(popts));
  }
}

bool CapacityScheduler::issue_preemption(TaskId victim) {
  if (policy_engine_) return policy_engine_->preempt(*preemptor_, victim).issued;
  return preemptor_->preempt(victim, options_.primitive);
}

void CapacityScheduler::job_added(JobId id) {
  const std::string& queue = queue_of(id);
  OSAP_CHECK_MSG(satisfied_at_.contains(queue),
                 "job submitted to unknown queue '" << queue << "'");
}

const std::string& CapacityScheduler::queue_of(JobId id) const {
  return jt_->job(id).spec.queue;
}

int CapacityScheduler::guaranteed_slots(const std::string& queue) const {
  for (const QueueConfig& q : options_.queues) {
    if (q.name == queue) {
      return std::max(1, static_cast<int>(std::floor(
                             q.capacity * options_.cluster_map_slots + 1e-9)));
    }
  }
  return 0;
}

int CapacityScheduler::used_slots(const std::string& queue) const {
  // Every job (even a non-Running one whose attempts are still winding
  // down) can hold slots: Running | MustSuspend | MustResume is the live
  // index minus the parked Suspended tasks.
  int used = 0;
  for (JobId jid : jt_->jobs_in_order()) {
    if (queue_of(jid) != queue) continue;
    const Job& job = jt_->job(jid);
    used += static_cast<int>(job.live.size() - job.suspended.size());
  }
  return used;
}

bool CapacityScheduler::queue_has_demand(const std::string& queue) const {
  for (JobId jid : jt_->running_jobs()) {
    if (queue_of(jid) != queue) continue;
    if (!jt_->job(jid).unassigned.empty()) return true;
  }
  return false;
}

void CapacityScheduler::check_guarantees() {
  const SimTime now = jt_->now();
  for (const QueueConfig& q : options_.queues) {
    const int guaranteed = guaranteed_slots(q.name);
    if (used_slots(q.name) >= guaranteed || !queue_has_demand(q.name)) {
      satisfied_at_[q.name] = now;
      continue;
    }
    if (now - satisfied_at_[q.name] < options_.preemption_timeout) continue;

    // Reclaim a borrowed slot from the most over-capacity queue.
    const QueueConfig* donor = nullptr;
    int donor_excess = 0;
    for (const QueueConfig& other : options_.queues) {
      if (other.name == q.name) continue;
      const int excess = used_slots(other.name) - guaranteed_slots(other.name);
      if (excess > donor_excess) {
        donor_excess = excess;
        donor = &other;
      }
    }
    if (donor == nullptr) continue;
    std::vector<EvictionCandidate> candidates;
    for (JobId jid : jt_->jobs_in_order()) {
      if (queue_of(jid) != donor->name) continue;
      auto more = collect_candidates(*jt_, jid);
      candidates.insert(candidates.end(), more.begin(), more.end());
    }
    const TaskId victim = pick_victim(options_.eviction, candidates);
    if (!victim.valid()) continue;
    OSAP_LOG(Info, kLog) << "queue '" << q.name << "' under its guarantee; preempting "
                         << victim << " from queue '" << donor->name << "'";
    if (issue_preemption(victim)) {
      ++preemptions_;
      satisfied_at_[q.name] = now;
    }
  }
}

std::vector<TaskId> CapacityScheduler::assign(const TrackerStatus& status) {
  check_guarantees();

  int free_maps = status.free_map_slots;
  int free_reduces = status.free_reduce_slots;

  // Resume suspended tasks only if their queue is within its guarantee
  // and no under-guarantee queue is waiting for a slot.
  bool someone_waiting = false;
  for (const QueueConfig& q : options_.queues) {
    if (used_slots(q.name) < guaranteed_slots(q.name) && queue_has_demand(q.name)) {
      someone_waiting = true;
      break;
    }
  }
  if (!someone_waiting) {
    // Suspended tasks of every job, Running or not (request_resume only
    // queues; transitions happen in on_heartbeat below).
    for (JobId jid : jt_->jobs_in_order()) {
      for (TaskId tid : jt_->job(jid).suspended) resume_policy_->request_resume(tid);
    }
  }
  free_maps -= resume_policy_->on_heartbeat(status);

  // Serve queues by how far below their guarantee they sit.
  std::vector<const QueueConfig*> order;
  for (const QueueConfig& q : options_.queues) order.push_back(&q);
  std::sort(order.begin(), order.end(), [this](const QueueConfig* a, const QueueConfig* b) {
    const int da = used_slots(a->name) - guaranteed_slots(a->name);
    const int db = used_slots(b->name) - guaranteed_slots(b->name);
    if (da != db) return da < db;
    return a->name < b->name;
  });

  std::vector<TaskId> out;
  for (const QueueConfig* q : order) {
    for (JobId jid : jt_->running_jobs()) {
      const Job& job = jt_->job(jid);
      if (queue_of(jid) != q->name) continue;
      for (TaskId tid : job.unassigned) {
        const Task& task = jt_->task(tid);
        if (task.spec.preferred_node.valid() && task.spec.preferred_node != status.node) {
          continue;
        }
        int& budget = task.spec.type == TaskType::Map ? free_maps : free_reduces;
        if (budget <= 0) continue;
        out.push_back(tid);
        --budget;
      }
    }
  }
  return out;
}

}  // namespace osap
