// Simplified Hadoop Capacity scheduler with preemption (§II).
//
// The cluster's map slots are divided among named queues, each with a
// guaranteed capacity (a fraction of the slots). Queues may borrow idle
// capacity elastically; when a queue with demand sits below its guarantee
// longer than the preemption timeout, tasks of over-capacity queues are
// preempted with the configured primitive to reclaim the borrowed slots —
// the second of the two stock Hadoop schedulers the paper names as
// preemption consumers.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "policy/policy.hpp"
#include "preempt/eviction.hpp"
#include "preempt/preemptor.hpp"
#include "preempt/resume_locality.hpp"
#include "hadoop/scheduler.hpp"

namespace osap {

class CapacityScheduler : public Scheduler {
 public:
  struct QueueConfig {
    std::string name;
    /// Guaranteed fraction of the cluster's map slots, in (0,1].
    double capacity = 0.5;
    /// Per-queue preemption mode (docs/POLICY.md): how tasks *of this
    /// queue* are evicted when another queue reclaims its guarantee —
    /// SLURM keys PreemptMode on the preempted partition the same way.
    /// Any spelling in policy::kDecisionSpellings; "" inherits the
    /// scheduler-wide `primitive` (or the engine default when `policy`
    /// is set).
    std::string preempt;
  };
  struct Options {
    int cluster_map_slots = 2;
    std::vector<QueueConfig> queues;
    Duration preemption_timeout = seconds(15);
    PreemptPrimitive primitive = PreemptPrimitive::Suspend;
    EvictionPolicy eviction = EvictionPolicy::LastLaunched;
    Duration resume_locality_threshold = seconds(30);
    /// Explicit policy engine; per-queue `preempt=` attributes are
    /// merged on top of it. Left empty, an engine is still built when
    /// any queue sets `preempt=` (default = `primitive`).
    std::optional<policy::PolicyOptions> policy;
  };

  explicit CapacityScheduler(Options options);

  std::vector<TaskId> assign(const TrackerStatus& status) override;
  void job_added(JobId id) override;

  [[nodiscard]] int preemptions_issued() const noexcept { return preemptions_; }
  /// Guaranteed whole slots of a queue (floor of fraction * slots, >= 1).
  [[nodiscard]] int guaranteed_slots(const std::string& queue) const;
  /// Live tasks currently charged to a queue.
  [[nodiscard]] int used_slots(const std::string& queue) const;

 private:
  void attached() override;
  [[nodiscard]] const std::string& queue_of(JobId id) const;
  [[nodiscard]] bool queue_has_demand(const std::string& queue) const;
  void check_guarantees();
  bool issue_preemption(TaskId victim);

  Options options_;
  std::optional<Preemptor> preemptor_;
  std::optional<ResumeLocalityPolicy> resume_policy_;
  std::optional<policy::PreemptionPolicy> policy_engine_;
  std::unordered_map<std::string, SimTime> satisfied_at_;
  int preemptions_ = 0;
};

}  // namespace osap
