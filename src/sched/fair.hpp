// Simplified Hadoop FAIR scheduler with preemption (§II).
//
// Each job is its own pool with an equal share of the cluster's map
// slots. When a job has been starved below its fair share longer than the
// preemption timeout, tasks of over-share jobs are preempted with the
// configured primitive (the paper's motivation: FAIR "can use preemption
// to warrant fairness; if a job starves due to long-running tasks of
// another job, these latter may be preempted"). Victims are chosen by a
// pluggable eviction policy, and suspended victims are resumed through
// the resume-locality policy once capacity frees up.
#pragma once

#include <optional>
#include <unordered_map>

#include "policy/policy.hpp"
#include "preempt/eviction.hpp"
#include "preempt/preemptor.hpp"
#include "preempt/resume_locality.hpp"
#include "sched/fifo.hpp"

namespace osap {

class FairScheduler : public Scheduler {
 public:
  struct Options {
    /// Total map slots in the cluster (shares are computed against this).
    int cluster_map_slots = 2;
    /// How long a job may sit below its fair share before the scheduler
    /// preempts someone.
    Duration preemption_timeout = seconds(15);
    PreemptPrimitive primitive = PreemptPrimitive::Suspend;
    EvictionPolicy eviction = EvictionPolicy::SmallestMemory;
    Duration resume_locality_threshold = seconds(30);
    /// Per-queue policy engine (docs/POLICY.md). When set, eviction
    /// orders route through it and `primitive` is ignored.
    std::optional<policy::PolicyOptions> policy;
  };

  explicit FairScheduler(Options options) : options_(options) {}

  std::vector<TaskId> assign(const TrackerStatus& status) override;
  void job_added(JobId id) override;
  void job_completed(JobId id) override;

  [[nodiscard]] int preemptions_issued() const noexcept { return preemptions_; }

 private:
  void attached() override;

  [[nodiscard]] int running_or_pending_command(JobId id) const;
  [[nodiscard]] int demand(JobId id) const;
  [[nodiscard]] double fair_share() const;
  void check_starvation();
  void resume_where_possible(const TrackerStatus& status, int& free_maps);
  bool issue_preemption(TaskId victim);

  Options options_;
  std::optional<Preemptor> preemptor_;
  std::optional<ResumeLocalityPolicy> resume_policy_;
  std::optional<policy::PreemptionPolicy> policy_engine_;
  /// When each job last had at least its fair share (or had no demand).
  std::unordered_map<JobId, SimTime> satisfied_at_;
  int preemptions_ = 0;
};

}  // namespace osap
