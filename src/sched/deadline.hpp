// Deadline (EDF) scheduler with preemption (§II).
//
// "In deadline scheduling [5], preemption can be used to make sure that
// jobs that are close to the deadline are run as soon as possible."
//
// Jobs carry an absolute deadline; slots go to the job with the earliest
// deadline among those whose remaining work still fits before it (plain
// EDF otherwise). When an urgent job cannot get slots and its laxity
// (deadline − now − estimated remaining work) falls below a threshold,
// tasks of the latest-deadline job are preempted with the configured
// primitive.
#pragma once

#include <optional>

#include "policy/policy.hpp"
#include "preempt/eviction.hpp"
#include "preempt/preemptor.hpp"
#include "preempt/resume_locality.hpp"
#include "hadoop/scheduler.hpp"

namespace osap {

class DeadlineScheduler : public Scheduler {
 public:
  struct Options {
    PreemptPrimitive primitive = PreemptPrimitive::Suspend;
    EvictionPolicy eviction = EvictionPolicy::LeastProgress;
    Duration resume_locality_threshold = seconds(30);
    /// Preempt for a job once its slack drops below this margin.
    Duration laxity_margin = seconds(20);
    /// Below this (negative) slack the deadline is written off and the
    /// job stops preempting others. Without the cutoff a cluster of
    /// hopeless deadlines thrashes forever under checkpoint preemption:
    /// every job evicts every other each heartbeat and the relaunch
    /// fast-forward eats all the progress a slice ever makes.
    Duration give_up_laxity = seconds(-60);
    /// Rough per-byte service-time estimate used for laxity (defaults to
    /// the synthetic mapper's parse rate).
    double seconds_per_byte = 1.0 / (6.7 * static_cast<double>(MiB));
    int max_preemptions_per_heartbeat = 1;
    /// Per-queue policy engine (docs/POLICY.md). When set, eviction
    /// orders route through it and `primitive` is ignored.
    std::optional<policy::PolicyOptions> policy;
  };

  DeadlineScheduler() : options_(Options{}) {}
  explicit DeadlineScheduler(Options options) : options_(options) {}

  std::vector<TaskId> assign(const TrackerStatus& status) override;

  /// Estimated seconds of work left in the job.
  [[nodiscard]] Duration remaining_work(JobId id) const;
  /// deadline − now − remaining work; negative means a likely miss.
  [[nodiscard]] Duration laxity(JobId id) const;
  [[nodiscard]] int preemptions_issued() const noexcept { return preemptions_; }

 private:
  void attached() override;
  [[nodiscard]] std::vector<JobId> edf_order() const;
  bool issue_preemption(TaskId victim);

  Options options_;
  std::optional<Preemptor> preemptor_;
  std::optional<ResumeLocalityPolicy> resume_policy_;
  std::optional<policy::PreemptionPolicy> policy_engine_;
  int preemptions_ = 0;
};

}  // namespace osap
