#include "sched/fair.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace osap {

namespace {
constexpr const char* kLog = "fair";
}

void FairScheduler::attached() {
  preemptor_.emplace(*jt_);
  resume_policy_.emplace(*jt_, options_.resume_locality_threshold);
  if (options_.policy) policy_engine_.emplace(*jt_, *options_.policy);
}

bool FairScheduler::issue_preemption(TaskId victim) {
  if (policy_engine_) return policy_engine_->preempt(*preemptor_, victim).issued;
  return preemptor_->preempt(victim, options_.primitive);
}

void FairScheduler::job_added(JobId id) { satisfied_at_[id] = jt_->now(); }

void FairScheduler::job_completed(JobId id) { satisfied_at_.erase(id); }

int FairScheduler::running_or_pending_command(JobId id) const {
  // Running | MustSuspend | MustResume = live minus the parked Suspended.
  const Job& job = jt_->job(id);
  return static_cast<int>(job.live.size() - job.suspended.size());
}

int FairScheduler::demand(JobId id) const {
  return static_cast<int>(jt_->job(id).not_done.size());
}

double FairScheduler::fair_share() const {
  int active = 0;
  for (JobId id : jt_->running_jobs()) {
    if (demand(id) > 0) ++active;
  }
  if (active == 0) return static_cast<double>(options_.cluster_map_slots);
  return static_cast<double>(options_.cluster_map_slots) / active;
}

void FairScheduler::resume_where_possible(const TrackerStatus& status, int& free_maps) {
  // A freed slot first serves starved jobs' unassigned tasks; suspended
  // victims come back only when nobody is waiting below their share —
  // otherwise the scheduler would undo its own preemption on the next
  // heartbeat.
  const double share = fair_share();
  bool someone_waiting = false;
  for (JobId jid : jt_->running_jobs()) {
    if (running_or_pending_command(jid) >= static_cast<int>(share + 1e-9) + 1) continue;
    if (!jt_->job(jid).unassigned.empty()) {
      someone_waiting = true;
      break;
    }
  }
  if (!someone_waiting) {
    for (JobId jid : jt_->running_jobs()) {
      // request_resume only queues; transitions happen in on_heartbeat.
      for (TaskId tid : jt_->job(jid).suspended) resume_policy_->request_resume(tid);
    }
  }
  free_maps -= resume_policy_->on_heartbeat(status);
}

void FairScheduler::check_starvation() {
  const double share = fair_share();
  const SimTime now = jt_->now();
  for (JobId jid : jt_->running_jobs()) {
    const int want = std::min(demand(jid), static_cast<int>(share + 1e-9) > 0
                                               ? static_cast<int>(share + 1e-9)
                                               : 1);
    const int have = running_or_pending_command(jid);
    if (have >= want || demand(jid) == 0) {
      satisfied_at_[jid] = now;
      continue;
    }
    if (now - satisfied_at_[jid] < options_.preemption_timeout) continue;

    // Starved: preempt a victim from the job furthest above its share.
    JobId fattest;
    int fattest_excess = 0;
    for (JobId other : jt_->running_jobs()) {
      if (other == jid) continue;
      const int excess = running_or_pending_command(other) -
                         static_cast<int>(share + 1e-9);
      if (excess > fattest_excess) {
        fattest_excess = excess;
        fattest = other;
      }
    }
    if (!fattest.valid()) continue;
    const TaskId victim = pick_victim(options_.eviction, collect_candidates(*jt_, fattest));
    if (!victim.valid()) continue;
    OSAP_LOG(Info, kLog) << "job " << jid << " starved; preempting " << victim << " of job "
                         << fattest << " via " << to_string(options_.primitive);
    if (issue_preemption(victim)) {
      ++preemptions_;
      satisfied_at_[jid] = now;  // give the command time to take effect
    }
  }
}

std::vector<TaskId> FairScheduler::assign(const TrackerStatus& status) {
  check_starvation();

  int free_maps = status.free_map_slots;
  int free_reduces = status.free_reduce_slots;
  resume_where_possible(status, free_maps);

  std::vector<TaskId> out;
  if (free_maps <= 0 && free_reduces <= 0) return out;

  // Hand slots to jobs in ascending (running / share) order. Sorting the
  // running set then walking it is the same order the old sort-everything-
  // then-filter pass produced: the comparator reads only per-element state,
  // and stable_sort keeps the ascending-id relative order of ties.
  std::vector<JobId> queue(jt_->running_jobs().begin(), jt_->running_jobs().end());
  std::stable_sort(queue.begin(), queue.end(), [this](JobId a, JobId b) {
    return running_or_pending_command(a) < running_or_pending_command(b);
  });
  for (JobId jid : queue) {
    const Job& job = jt_->job(jid);
    for (TaskId tid : job.unassigned) {
      const Task& task = jt_->task(tid);
      if (task.spec.preferred_node.valid() && task.spec.preferred_node != status.node) continue;
      int& budget = task.spec.type == TaskType::Map ? free_maps : free_reduces;
      if (budget <= 0) continue;
      out.push_back(tid);
      --budget;
    }
  }
  return out;
}

}  // namespace osap
