#include "os/disk.hpp"

namespace osap {

const char* to_string(IoClass c) noexcept {
  switch (c) {
    case IoClass::HdfsRead: return "hdfs-read";
    case IoClass::HdfsWrite: return "hdfs-write";
    case IoClass::SwapOut: return "swap-out";
    case IoClass::SwapIn: return "swap-in";
    case IoClass::Shuffle: return "shuffle";
    case IoClass::Other: return "other";
  }
  return "?";
}

Disk::Disk(Simulation& sim, double bandwidth_bytes_per_sec, Duration seek, std::string name)
    : resource_(sim, bandwidth_bytes_per_sec, std::move(name)),
      seek_bytes_(seek * bandwidth_bytes_per_sec) {}

Disk::StreamId Disk::start(IoClass cls, Bytes bytes, std::function<void()> on_complete) {
  transferred_[static_cast<int>(cls)] += bytes;
  const double demand = static_cast<double>(bytes) + (bytes > 0 ? seek_bytes_ : 0.0);
  return resource_.add(demand, std::move(on_complete));
}

}  // namespace osap
