#include "os/vmm.hpp"

#include <algorithm>

#include "common/det.hpp"
#include "common/log.hpp"
#include "sim/simulation.hpp"
#include "trace/context.hpp"
#include "trace/names.hpp"

namespace osap {

namespace {
constexpr const char* kLog = "vmm";
/// Reclaim retries per frame request before declaring a livelock. Each
/// retry means a concurrent acquirer raced us to reclaimed frames, so
/// legitimate counts are bounded by concurrent demand / vm_chunk — far
/// below this.
constexpr int kMaxReclaimRounds = 10000;
}  // namespace

Vmm::Vmm(Simulation& sim, Disk& disk, const OsConfig& cfg, std::string name)
    : sim_(sim), disk_(disk), cfg_(cfg), name_(std::move(name)), free_(cfg.usable_ram()) {
  OSAP_CHECK_MSG(cfg_.usable_ram() > cfg_.high_watermark_bytes(),
                 "os_reserved leaves no usable memory");
  OSAP_CHECK(cfg_.high_watermark >= cfg_.low_watermark);
  OSAP_CHECK(cfg_.vm_chunk > 0);
  sim_.audits().add(this);

  // Track: the node half of a "node0.vmm"-style name becomes the trace
  // process, the subsystem half the thread; a bare name maps to itself.
  tracer_ = &sim_.trace().tracer();
  const auto dot = name_.rfind('.');
  const std::string process = dot == std::string::npos ? name_ : name_.substr(0, dot);
  const std::string thread = dot == std::string::npos ? name_ : name_.substr(dot + 1);
  trk_ = tracer_->track(process, thread);
  trace::CounterRegistry& counters = sim_.trace().counters();
  ctr_paged_out_ = &counters.counter(name_ + trace::names::kVmmPagedOutBytes);
  ctr_paged_in_ = &counters.counter(name_ + trace::names::kVmmPagedInBytes);
  ctr_discarded_ = &counters.counter(name_ + trace::names::kVmmSwapDiscardedBytes);
  ctr_swap_out_io_ = &counters.counter(name_ + trace::names::kVmmSwapOutIoBytes);
  ctr_swap_in_io_ = &counters.counter(name_ + trace::names::kVmmSwapInIoBytes);
}

Vmm::~Vmm() { sim_.audits().remove(this); }

void Vmm::register_process(Pid pid) {
  mark_audit_dirty();
  const bool inserted = procs_.emplace(pid, ProcInfo{}).second;
  OSAP_CHECK_MSG(inserted, "pid " << pid << " registered twice");
}

void Vmm::set_stopped(Pid pid, bool stopped) {
  mark_audit_dirty();
  auto it = procs_.find(pid);
  if (it == procs_.end()) return;  // already exited
  it->second.stopped = stopped;
}

void Vmm::release_process(Pid pid) {
  mark_audit_dirty();
  auto it = procs_.find(pid);
  if (it == procs_.end()) return;
  for (RegionId rid : it->second.regions) {
    auto rit = regions_.find(rid);
    if (rit == regions_.end()) continue;
    Region& r = rit->second;
    // Anonymous pages are simply dropped; swap slots are recycled — both
    // the slots backing swapped extents and the slots whose clean resident
    // copies die with the process.
    free_ += r.resident_clean + r.resident_dirty;
    OSAP_CHECK(swap_used_ >= r.swapped + r.resident_clean);
    swap_used_ -= r.swapped + r.resident_clean;
    ctr_discarded_->add(r.swapped);
    regions_.erase(rit);
  }
  // Keep the ProcInfo entry: the cumulative paging counters are the
  // experiment metrics (Fig. 4) and must outlive the process.
  it->second.regions.clear();
  it->second.stopped = false;
}

RegionId Vmm::create_region(Pid pid, std::string name) {
  mark_audit_dirty();
  auto it = procs_.find(pid);
  OSAP_CHECK_MSG(it != procs_.end(), "create_region for unknown " << pid);
  const RegionId rid = region_ids_.next();
  Region r;
  r.pid = pid;
  r.name = std::move(name);
  r.last_touch = ++touch_seq_;
  regions_.emplace(rid, std::move(r));
  it->second.regions.push_back(rid);
  return rid;
}

void Vmm::mark_hot(RegionId rid, bool hot) {
  mark_audit_dirty();
  auto it = regions_.find(rid);
  if (it == regions_.end()) return;
  it->second.hot = hot;
  if (hot) touch(it->second);
}

void Vmm::touch(Region& region) {
  mark_audit_dirty();
  region.last_touch = ++touch_seq_;
}

void Vmm::commit(RegionId rid, Bytes bytes, std::function<void()> done) {
  sim_.trace().profiler().add(trace::HotPath::VmmCommit, bytes);
  auto it = regions_.find(rid);
  OSAP_CHECK_MSG(it != regions_.end(), "commit to missing " << rid);
  const Pid pid = it->second.pid;
  touch(it->second);

  struct Op {
    RegionId rid;
    Pid pid;
    Bytes remaining;
    std::function<void()> done;
  };
  auto op = std::make_shared<Op>(Op{rid, pid, bytes, std::move(done)});
  // Each continuation carries a copy of the step lambda; a shared
  // self-referencing std::function would cycle and never free.
  auto step = [this, op](auto self) -> void {
    if (op->remaining == 0) {
      if (op->done) op->done();
      return;
    }
    const Bytes chunk = std::min<Bytes>(op->remaining, cfg_.vm_chunk);
    acquire_frames(chunk, op->pid, [this, op, self, chunk] {
      mark_audit_dirty();
      auto rit = regions_.find(op->rid);
      if (rit == regions_.end()) {
        // Owner was killed while we waited for frames: return them.
        free_ += chunk;
        return;
      }
      rit->second.resident_dirty += chunk;
      touch(rit->second);
      op->remaining -= chunk;
      self(self);
    }, /*depth=*/0);
  };
  step(step);
}

void Vmm::page_in(RegionId rid, bool dirtying, std::function<void()> done) {
  auto it = regions_.find(rid);
  OSAP_CHECK_MSG(it != regions_.end(), "page_in on missing " << rid);
  touch(it->second);

  struct Op {
    RegionId rid;
    Pid pid;
    bool dirtying;
    /// Bytes this operation still intends to fault in. Snapshotted at
    /// start and strictly decreasing: reclaim may concurrently re-evict
    /// what we just brought in, and chasing the moving target
    /// (re-reading region.swapped each round) livelocks under pressure.
    /// Re-evicted bytes simply fault again on the next touch.
    Bytes remaining;
    std::function<void()> done;
  };
  auto op = std::make_shared<Op>(
      Op{rid, it->second.pid, dirtying, it->second.swapped, std::move(done)});
  auto step = [this, op](auto self) -> void {
    auto rit = regions_.find(op->rid);
    if (rit == regions_.end()) return;  // owner killed mid page-in
    const Bytes left = std::min(op->remaining, rit->second.swapped);
    if (left == 0) {
      if (op->done) op->done();
      return;
    }
    const Bytes chunk = std::min<Bytes>(left, cfg_.vm_chunk);
    op->remaining -= chunk;
    acquire_frames(chunk, op->pid, [this, op, self, chunk] {
      mark_audit_dirty();
      auto rit2 = regions_.find(op->rid);
      if (rit2 == regions_.end()) {
        free_ += chunk;
        return;
      }
      // Frames held; now read the extent back from the swap device.
      held_ += chunk;
      ctr_swap_in_io_->add(chunk);
      const std::uint64_t span = ++io_span_seq_;
      tracer_->async_begin(trk_, "swap_in", span, {{"bytes", chunk}});
      disk_.start(IoClass::SwapIn, chunk, [this, op, self, chunk, span] {
        mark_audit_dirty();
        tracer_->async_end(trk_, "swap_in", span);
        OSAP_CHECK(held_ >= chunk);
        held_ -= chunk;
        auto rit3 = regions_.find(op->rid);
        if (rit3 == regions_.end()) {
          free_ += chunk;
          return;
        }
        Region& r = rit3->second;
        const Bytes moved = std::min(chunk, r.swapped);
        r.swapped -= moved;
        ctr_paged_in_->add(moved);
        if (op->dirtying) {
          r.resident_dirty += moved;
          OSAP_CHECK(swap_used_ >= moved);
          swap_used_ -= moved;  // dirtied pages abandon their swap slot
        } else {
          r.resident_clean += moved;  // slot retained; page stays clean
        }
        free_ += chunk - moved;  // extent shrank under concurrent reclaim
        touch(r);
        auto pit = procs_.find(op->pid);
        if (pit != procs_.end()) pit->second.swapped_in_total += moved;
        self(self);
      });
    }, /*depth=*/0);
  };
  step(step);
}

void Vmm::release(RegionId rid, Bytes bytes) {
  mark_audit_dirty();
  auto it = regions_.find(rid);
  if (it == regions_.end()) return;
  Region& r = it->second;
  Bytes left = bytes;
  const Bytes from_clean = std::min(left, r.resident_clean);
  r.resident_clean -= from_clean;
  left -= from_clean;
  const Bytes from_dirty = std::min(left, r.resident_dirty);
  r.resident_dirty -= from_dirty;
  left -= from_dirty;
  free_ += from_clean + from_dirty;
  // Anything still swapped that the caller frees releases its slot too —
  // as do the slots that backed the freed clean pages.
  const Bytes from_swap = std::min(left, r.swapped);
  r.swapped -= from_swap;
  ctr_discarded_->add(from_swap);
  OSAP_CHECK(swap_used_ >= from_swap + from_clean);
  swap_used_ -= from_swap + from_clean;
}

void Vmm::dirty_resident(RegionId rid) {
  mark_audit_dirty();
  auto it = regions_.find(rid);
  if (it == regions_.end()) return;
  Region& r = it->second;
  // Clean resident pages exist only as copies of swap slots; rewriting
  // them invalidates those slots.
  OSAP_CHECK(swap_used_ >= r.resident_clean);
  swap_used_ -= r.resident_clean;
  r.resident_dirty += r.resident_clean;
  r.resident_clean = 0;
  touch(r);
}

void Vmm::fs_cache_insert(Bytes bytes) {
  mark_audit_dirty();
  // The cache never pushes free memory below the low watermark; beyond
  // that it recycles its own oldest entries (a no-op in this model).
  const Bytes headroom = sat_sub(free_, cfg_.low_watermark_bytes());
  const Bytes grow = std::min(bytes, headroom);
  free_ -= grow;
  fs_cache_ += grow;
}

Bytes Vmm::evict_from_region(Region& region, Bytes want, VictimPlan& plan) {
  mark_audit_dirty();
  Bytes taken = 0;
  // Clean extents have a valid swap copy: dropping them is free. The data
  // now lives only in that swap copy, so the extent moves to `swapped`
  // (the slot itself was already charged to swap_used_).
  const Bytes clean = std::min(want, region.resident_clean);
  region.resident_clean -= clean;
  region.swapped += clean;
  ctr_paged_out_->add(clean);
  free_ += clean;
  plan.instant += clean;
  taken += clean;
  // Dirty extents must be written out; frames free when the write lands.
  const Bytes swap_left = sat_sub(cfg_.swap_size, swap_used_);
  const Bytes dirty = std::min({want - taken, region.resident_dirty, swap_left});
  if (dirty > 0) {
    region.resident_dirty -= dirty;
    region.swapped += dirty;
    ctr_paged_out_->add(dirty);
    swap_used_ += dirty;
    plan.io += dirty;
    taken += dirty;
    auto pit = procs_.find(region.pid);
    if (pit != procs_.end()) pit->second.swapped_out_total += dirty;
    swapped_out_all_ += dirty;
  }
  return taken;
}

Vmm::VictimPlan Vmm::select_victims(Bytes want, Pid requester) {
  mark_audit_dirty();
  VictimPlan plan;
  Bytes taken = 0;

  // 1. File-system cache. With swappiness 0 (the paper's configuration)
  //    reclaim takes all it can from the cache before touching anonymous
  //    memory; higher swappiness shifts part of the burden to anon pages.
  const Bytes cache_budget =
      cfg_.swappiness == 0
          ? want
          : static_cast<Bytes>(static_cast<double>(want) * (100 - cfg_.swappiness) / 100.0);
  const Bytes from_cache = std::min(fs_cache_, cache_budget);
  fs_cache_ -= from_cache;
  free_ += from_cache;
  plan.instant += from_cache;
  taken += from_cache;
  if (taken >= want) return plan;

  // 2..4. Anonymous memory, by eviction class then LRU age. Stopped
  // processes first ("pages from suspended processes are evicted before
  // those from running ones"), then cold regions of running processes,
  // then hot regions as a last resort.
  struct Candidate {
    RegionId rid;
    int klass;
    std::uint64_t age;
  };
  std::vector<Candidate> order;
  order.reserve(regions_.size());
  for (RegionId rid : det::sorted_keys(regions_)) {
    const Region& region = regions_.at(rid);
    if (region.resident_clean + region.resident_dirty == 0) continue;
    const auto pit = procs_.find(region.pid);
    const bool stopped = pit != procs_.end() && pit->second.stopped;
    const int klass = stopped ? 0 : (region.hot ? 2 : 1);
    order.push_back({rid, klass, region.last_touch});
  }
  std::sort(order.begin(), order.end(), [](const Candidate& a, const Candidate& b) {
    if (a.klass != b.klass) return a.klass < b.klass;
    return a.age < b.age;
  });
  for (const Candidate& c : order) {
    if (taken >= want) break;
    taken += evict_from_region(regions_.at(c.rid), want - taken, plan);
  }

  // Approximate-LRU error: under pressure the scanner also evicts pages
  // the requester is actively using; they fault straight back in.
  if (plan.io > 0 && cfg_.lru_approx_error > 0) {
    const double pressure =
        std::min(1.0, static_cast<double>(swap_used_) / static_cast<double>(cfg_.usable_ram()));
    const auto refault_budget =
        static_cast<Bytes>(cfg_.lru_approx_error * pressure * static_cast<double>(want));
    if (refault_budget > 0) {
      const auto pit = procs_.find(requester);
      if (pit != procs_.end() && !pit->second.stopped) {
        for (RegionId rid : pit->second.regions) {
          Region& r = regions_.at(rid);
          if (!r.hot || r.resident_dirty == 0) continue;
          const Bytes swap_left = sat_sub(cfg_.swap_size, swap_used_);
          const Bytes hit = std::min({refault_budget, r.resident_dirty, swap_left});
          if (hit == 0) continue;
          r.resident_dirty -= hit;
          r.swapped += hit;
          ctr_paged_out_->add(hit);
          swap_used_ += hit;
          pit->second.swapped_out_total += hit;
          swapped_out_all_ += hit;
          plan.io += hit;
          plan.refault += hit;
          plan.refault_region = rid;
          break;
        }
      }
    }
  }
  return plan;
}

void Vmm::acquire_frames(Bytes bytes, Pid requester, std::function<void()> grant, int depth,
                         int rounds) {
  mark_audit_dirty();
  const Bytes reserve = cfg_.low_watermark_bytes();
  if (free_ >= bytes + reserve) {
    free_ -= bytes;
    grant();
    return;
  }
  sim_.trace().profiler().add(trace::HotPath::VmmReclaim, bytes);
  if (rounds >= kMaxReclaimRounds) {
    std::ostringstream os;
    os << name_ << ": reclaim livelock — " << rounds << " reclaim rounds for a "
       << format_bytes(bytes) << " request by " << requester << " without a grant\n";
    dump(os);
    throw SimError(os.str());
  }

  // Reclaim up to the high watermark — deliberately more than `bytes`
  // (kswapd semantics); the overshoot is the paper's "more swapping than
  // strictly necessary".
  const Bytes target = bytes + cfg_.high_watermark_bytes();
  const Bytes want = sat_sub(target, free_);
  VictimPlan plan = select_victims(want, requester);

  auto proceed = [this, bytes, requester, grant = std::move(grant), depth, rounds,
                  plan]() mutable {
    if (plan.refault > 0 && depth < 4 && regions_.contains(plan.refault_region)) {
      // The mistakenly evicted working-set extent faults back in: a swap
      // read plus a fresh frame acquisition, which may evict yet more of
      // the legitimate victims — the compounding behind Fig. 4.
      const Bytes refault = plan.refault;
      const RegionId rid = plan.refault_region;
      ctr_swap_in_io_->add(refault);
      const std::uint64_t span = ++io_span_seq_;
      tracer_->async_begin(trk_, "swap_in", span, {{"bytes", refault}, {"refault", 1}});
      disk_.start(IoClass::SwapIn, refault, [this, refault, rid, requester, depth, span] {
        tracer_->async_end(trk_, "swap_in", span);
        acquire_frames(refault, requester, [this, refault, rid] {
          mark_audit_dirty();
          auto it = regions_.find(rid);
          if (it == regions_.end()) {
            free_ += refault;
            return;
          }
          Region& r = it->second;
          const Bytes moved = std::min(refault, r.swapped);
          r.swapped -= moved;
          ctr_paged_in_->add(moved);
          r.resident_clean += moved;
          free_ += refault - moved;
          auto pit = procs_.find(r.pid);
          if (pit != procs_.end()) pit->second.swapped_in_total += moved;
        }, depth + 1);
      });
    }
    if (free_ >= bytes) {
      free_ -= bytes;
      grant();
      return;
    }
    if (plan.instant == 0 && plan.io == 0) {
      oom("reclaim found no evictable memory");
      // The OOM handler killed something (or threw); retry once.
      OSAP_CHECK_MSG(free_ >= bytes, "OOM handler freed no memory");
      free_ -= bytes;
      grant();
      return;
    }
    // Progress was made but a concurrent acquirer raced us to the frames.
    acquire_frames(bytes, requester, std::move(grant), depth, rounds + 1);
  };

  if (plan.io > 0) {
    // Victim frames stay occupied until the write lands: they have left
    // their regions but are not yet grantable.
    const Bytes io = plan.io;
    held_ += io;
    ctr_swap_out_io_->add(io);
    const std::uint64_t span = ++io_span_seq_;
    tracer_->async_begin(trk_, "swap_out", span, {{"bytes", io}});
    disk_.start(IoClass::SwapOut, io,
                [this, io, span, proceed = std::move(proceed)]() mutable {
      mark_audit_dirty();
      tracer_->async_end(trk_, "swap_out", span);
      OSAP_CHECK(held_ >= io);
      held_ -= io;
      free_ += io;
      proceed();
    });
  } else {
    proceed();
  }
}

void Vmm::oom(const char* why) {
  OSAP_LOG(Warn, kLog) << "out of memory: " << why;
  OSAP_CHECK_MSG(oom_handler_, "OOM with no handler installed: " << why);
  oom_handler_();
}

Bytes Vmm::resident(Pid pid) const {
  Bytes total = 0;
  const auto it = procs_.find(pid);
  if (it == procs_.end()) return 0;
  for (RegionId rid : it->second.regions) {
    const auto rit = regions_.find(rid);
    if (rit == regions_.end()) continue;
    total += rit->second.resident_clean + rit->second.resident_dirty;
  }
  return total;
}

Bytes Vmm::swapped(Pid pid) const {
  Bytes total = 0;
  const auto it = procs_.find(pid);
  if (it == procs_.end()) return 0;
  for (RegionId rid : it->second.regions) {
    const auto rit = regions_.find(rid);
    if (rit == regions_.end()) continue;
    total += rit->second.swapped;
  }
  return total;
}

Bytes Vmm::swapped_out_total(Pid pid) const {
  const auto it = procs_.find(pid);
  return it == procs_.end() ? 0 : it->second.swapped_out_total;
}

Bytes Vmm::swapped_in_total(Pid pid) const {
  const auto it = procs_.find(pid);
  return it == procs_.end() ? 0 : it->second.swapped_in_total;
}

Bytes Vmm::region_resident(RegionId rid) const {
  const auto it = regions_.find(rid);
  return it == regions_.end() ? 0 : it->second.resident_clean + it->second.resident_dirty;
}

Bytes Vmm::region_swapped(RegionId rid) const {
  const auto it = regions_.find(rid);
  return it == regions_.end() ? 0 : it->second.swapped;
}

bool Vmm::is_stopped(Pid pid) const {
  const auto it = procs_.find(pid);
  return it != procs_.end() && it->second.stopped;
}

void Vmm::audit(std::vector<std::string>& violations) const {
  Bytes resident = 0, swapped = 0, clean = 0;
  for (RegionId rid : det::sorted_keys(regions_)) {
    const Region& r = regions_.at(rid);
    resident += r.resident_clean + r.resident_dirty;
    swapped += r.swapped;
    clean += r.resident_clean;
  }

  // Frame conservation: every usable frame is free, in the fs cache, in
  // flight between a region and the swap device, or resident somewhere.
  const Bytes accounted = free_ + fs_cache_ + held_ + resident;
  if (accounted != cfg_.usable_ram()) {
    std::ostringstream os;
    os << "frame conservation broken: free " << format_bytes(free_) << " + cache "
       << format_bytes(fs_cache_) << " + in-flight " << format_bytes(held_) << " + resident "
       << format_bytes(resident) << " = " << format_bytes(accounted) << ", expected "
       << format_bytes(cfg_.usable_ram());
    violations.push_back(os.str());
  }

  // Swap-slot exactness: a slot is in use iff it backs a swapped extent
  // or a clean resident copy.
  if (swap_used_ != swapped + clean) {
    std::ostringstream os;
    os << "swap accounting broken: swap_used " << format_bytes(swap_used_) << " != swapped "
       << format_bytes(swapped) << " + clean copies " << format_bytes(clean);
    violations.push_back(os.str());
  }
  if (swap_used_ > cfg_.swap_size) {
    std::ostringstream os;
    os << "swap overcommitted: " << format_bytes(swap_used_) << " > device size "
       << format_bytes(cfg_.swap_size);
    violations.push_back(os.str());
  }

  // Paging-counter conservation: every byte ever paged out is either back
  // in RAM (paged_in), discarded with its slot (free/exit), or still out.
  const Bytes out = ctr_paged_out_->value();
  const Bytes in = ctr_paged_in_->value();
  const Bytes discarded = ctr_discarded_->value();
  if (out != in + discarded + swapped) {
    std::ostringstream os;
    os << "paging counters broken: paged_out " << format_bytes(out) << " != paged_in "
       << format_bytes(in) << " + discarded " << format_bytes(discarded) << " + swapped "
       << format_bytes(swapped);
    violations.push_back(os.str());
  }

  // Region <-> process list consistency (the two-list bookkeeping): every
  // region's owner is registered and lists the region; every listed
  // region id resolves (or was erased from both sides together).
  std::size_t listed = 0;
  for (Pid pid : det::sorted_keys(procs_)) {
    const ProcInfo& info = procs_.at(pid);
    for (RegionId rid : info.regions) {
      const auto rit = regions_.find(rid);
      if (rit == regions_.end()) continue;  // erased region ids are pruned lazily
      ++listed;
      if (rit->second.pid != pid) {
        std::ostringstream os;
        os << rid << " listed by " << pid << " but owned by " << rit->second.pid;
        violations.push_back(os.str());
      }
    }
  }
  if (listed != regions_.size()) {
    std::ostringstream os;
    os << "region table has " << regions_.size() << " entries but process lists resolve "
       << listed;
    violations.push_back(os.str());
  }
}

void Vmm::dump(std::ostream& os) const {
  os << "free " << format_bytes(free_) << ", fs-cache " << format_bytes(fs_cache_)
     << ", in-flight " << format_bytes(held_) << ", swap " << format_bytes(swap_used_) << "/"
     << format_bytes(cfg_.swap_size) << ", " << regions_.size() << " regions, "
     << procs_.size() << " processes\n";
  for (Pid pid : det::sorted_keys(procs_)) {
    const ProcInfo& info = procs_.at(pid);
    if (info.regions.empty()) continue;
    os << "  " << pid << (info.stopped ? " [stopped]" : "") << ":";
    for (RegionId rid : info.regions) {
      const auto rit = regions_.find(rid);
      if (rit == regions_.end()) continue;
      const Region& r = rit->second;
      os << " " << r.name << "(clean " << format_bytes(r.resident_clean) << ", dirty "
         << format_bytes(r.resident_dirty) << ", swapped " << format_bytes(r.swapped)
         << (r.hot ? ", hot" : "") << ")";
    }
    os << "\n";
  }
}

}  // namespace osap
