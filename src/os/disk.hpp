// Single-spindle disk model.
//
// One FluidResource carries every byte that moves through the device:
// HDFS block reads, task output writes, and — crucially for this paper —
// swap-out and swap-in traffic. Sharing the spindle is what makes paging
// visible to running tasks: a suspend that forces page-out steals disk
// bandwidth from the high-priority task's input reads (§IV-C).
//
// Each stream is charged a seek on start, folded into its demand as
// `seek * bandwidth` equivalent bytes. Swap streams use clustered,
// mostly-sequential I/O (§III-A) and are charged the same way.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/units.hpp"
#include "sim/fluid_resource.hpp"

namespace osap {

/// Traffic class, for accounting only — all classes share capacity.
enum class IoClass { HdfsRead, HdfsWrite, SwapOut, SwapIn, Shuffle, Other };

const char* to_string(IoClass c) noexcept;

class Disk {
 public:
  using StreamId = FluidResource::ConsumerId;

  Disk(Simulation& sim, double bandwidth_bytes_per_sec, Duration seek, std::string name);

  /// Start a transfer of `bytes`; `on_complete` fires when it finishes.
  StreamId start(IoClass cls, Bytes bytes, std::function<void()> on_complete);

  /// Freeze / thaw a stream (process suspension).
  void pause(StreamId id) { resource_.pause(id); }
  void resume(StreamId id) { resource_.resume(id); }

  /// Abort a stream without completion (process killed).
  void cancel(StreamId id) { resource_.cancel(id); }

  /// Extend an in-flight stream.
  void extend(StreamId id, Bytes bytes) { resource_.add_demand(id, static_cast<double>(bytes)); }

  [[nodiscard]] double remaining(StreamId id) const { return resource_.remaining(id); }
  [[nodiscard]] double served(StreamId id) const { return resource_.served(id); }

  [[nodiscard]] double utilization_window_bytes() const noexcept {
    return resource_.total_served();
  }
  [[nodiscard]] Bytes transferred(IoClass cls) const noexcept {
    return transferred_[static_cast<int>(cls)];
  }
  [[nodiscard]] std::size_t active_streams() const noexcept { return resource_.active_count(); }
  [[nodiscard]] double bandwidth() const noexcept { return resource_.capacity(); }

 private:
  FluidResource resource_;
  double seek_bytes_;  // seek charged as equivalent bytes
  Bytes transferred_[6] = {};
};

}  // namespace osap
