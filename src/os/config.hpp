// Per-node operating-system model parameters.
//
// Defaults mirror the paper's testbed (§IV): ~4 GB RAM, one spindle,
// swappiness 0 (prioritize runtime memory over file-system cache, the
// Hadoop best practice the paper follows), and a Linux-like two-watermark
// reclaim that frees more than the strict minimum per round.
#pragma once

#include "common/time.hpp"
#include "common/units.hpp"

namespace osap {

struct OsConfig {
  // --- memory -----------------------------------------------------------
  /// Physical RAM.
  Bytes ram = 4 * GiB;
  /// RAM permanently claimed by the kernel, system services and the Hadoop
  /// framework daemons (TaskTracker/DataNode JVMs). The paper notes "the
  /// rest of the memory is needed by the Hadoop framework and by the
  /// operating system services".
  Bytes os_reserved = mib(768);
  /// Swap partition size. Exceeding it forces the OOM killer, as the paper
  /// warns (§III-A).
  Bytes swap_size = 8 * GiB;
  /// Linux vm.swappiness in [0,100]; 0 = always evict file-system cache
  /// before anonymous process memory (the paper's setting).
  int swappiness = 0;
  /// Reclaim triggers when free RAM falls below low_watermark and frees up
  /// to high_watermark (fractions of RAM). The gap is why reclaim evicts
  /// more than strictly necessary — one source of the super-linear swap
  /// growth in Fig. 4.
  double low_watermark = 0.02;
  double high_watermark = 0.05;
  /// Fraction of evicted bytes that the approximate-LRU replacement takes
  /// from pages the owner is about to touch again, forcing a re-fault
  /// (second source of Fig. 4's super-linearity; [19, ch. 17]).
  double lru_approx_error = 0.06;
  /// Frame-acquisition granularity; models clustered page-out/in.
  Bytes vm_chunk = 32 * MiB;
  /// Granularity of task input reads (drives file-system cache growth).
  Bytes io_chunk = 64 * MiB;

  // --- disk (one spindle shared by HDFS I/O and swap) --------------------
  /// Sequential bandwidth, bytes/second.
  double disk_bandwidth = 110.0 * static_cast<double>(MiB);
  /// Seek + rotational latency charged when a stream starts.
  Duration disk_seek = ms(8);

  // --- cpu ---------------------------------------------------------------
  /// Number of cores; each process is capped at one core.
  int cores = 4;
  /// Cost of touching (writing or reading) resident memory, cpu-seconds
  /// per byte. ~2.5 GB/s per core.
  double touch_cpu_per_byte = 1.0 / (2.5 * static_cast<double>(GiB));

  // --- signals ------------------------------------------------------------
  /// Time a SIGTSTP handler runs before the process actually stops
  /// (closing network connections etc., §III-B).
  Duration sigtstp_handler_delay = ms(20);

  [[nodiscard]] Bytes usable_ram() const noexcept { return sat_sub(ram, os_reserved); }
  [[nodiscard]] Bytes low_watermark_bytes() const noexcept {
    return static_cast<Bytes>(low_watermark * static_cast<double>(ram));
  }
  [[nodiscard]] Bytes high_watermark_bytes() const noexcept {
    return static_cast<Bytes>(high_watermark * static_cast<double>(ram));
  }
};

}  // namespace osap
