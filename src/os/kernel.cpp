#include "os/kernel.hpp"

#include <algorithm>

#include "common/det.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "trace/context.hpp"
#include "trace/names.hpp"

namespace osap {

namespace {
constexpr const char* kLog = "kernel";
}

Kernel::Kernel(Simulation& sim, OsConfig cfg, std::string name)
    : sim_(sim),
      cfg_(cfg),
      name_(std::move(name)),
      cpu_(sim, static_cast<double>(cfg.cores), name_ + ".cpu"),
      disk_(sim, cfg.disk_bandwidth, cfg.disk_seek, name_ + ".disk"),
      vmm_(sim, disk_, cfg, name_ + ".vmm") {
  vmm_.set_oom_handler([this] { handle_oom(); });
  sim_.audits().add(this);
  tracer_ = &sim_.trace().tracer();
  trk_ = tracer_->track(name_, "kernel");
  trace::CounterRegistry& counters = sim_.trace().counters();
  ctr_spawned_ = &counters.counter(name_ + trace::names::kKernelSpawned);
  ctr_signals_ = &counters.counter(name_ + trace::names::kKernelSignals);
  ctr_oom_kills_ = &counters.counter(name_ + trace::names::kKernelOomKills);
}

Kernel::~Kernel() { sim_.audits().remove(this); }

Process* Kernel::find(Pid pid) {
  auto it = procs_.find(pid);
  return it == procs_.end() ? nullptr : it->second.get();
}

const Process* Kernel::find(Pid pid) const {
  auto it = procs_.find(pid);
  return it == procs_.end() ? nullptr : it->second.get();
}

Pid Kernel::spawn(Program program, ProcessHooks hooks) {
  mark_audit_dirty();
  const Pid pid = pids_.next();
  auto proc = std::make_unique<Process>(pid, std::move(program), std::move(hooks));
  proc->kernel_ = this;
  proc->started_at_ = sim_.now();
  proc->total_weight_ = proc->program_.total_weight();
  vmm_.register_process(pid);
  Process* raw = proc.get();
  procs_.emplace(pid, std::move(proc));
  ctr_spawned_->add();
  tracer_->instant(trk_, "spawn", {{"pid", pid.value()}, {"name", raw->name()}});
  OSAP_LOG(Debug, kLog) << name_ << ": spawned " << pid << " (" << raw->name() << ")";
  // First phase starts on a fresh event so hooks never fire inside spawn().
  sim_.after(0, [this, pid] {
    Process* p = find(pid);
    if (p != nullptr) start_phase(*p);
  });
  return pid;
}

void Kernel::signal(Pid pid, Signal sig) {
  Process* p = find(pid);
  if (p == nullptr || p->state_ == ProcState::Zombie) return;  // ESRCH
  ctr_signals_->add();
  OSAP_LOG(Debug, kLog) << name_ << ": " << to_string(sig) << " -> " << pid << " ("
                        << to_string(p->state_) << ")";
  switch (sig) {
    case Signal::Tstp:
      deliver_tstp(*p);
      break;
    case Signal::Cont:
      deliver_cont(*p);
      break;
    case Signal::Kill:
    case Signal::Term:
      terminate(pid, ExitReason::Killed);
      break;
  }
}

void Kernel::deliver_tstp(Process& p) {
  if (p.state_ != ProcState::Running) return;  // already stopping/stopped
  mark_audit_dirty();
  p.state_ = ProcState::Stopping;
  const std::uint64_t gen = ++p.signal_gen_;
  const Pid pid = p.pid_;
  tracer_->async_begin(trk_, "sigtstp_window", pid.value(), {{"pid", pid.value()}});
  // The handler window: the task's SIGTSTP handler tidies external state
  // (network connections, streaming pipes) before the stop takes effect.
  sim_.after(cfg_.sigtstp_handler_delay, [this, pid, gen] {
    Process* p = find(pid);
    if (p == nullptr || p->signal_gen_ != gen || p->state_ != ProcState::Stopping) return;
    mark_audit_dirty();
    p->state_ = ProcState::Stopped;
    pause_legs(*p);
    vmm_.set_stopped(pid, true);
    tracer_->async_end(trk_, "sigtstp_window", pid.value());
    tracer_->async_begin(trk_, "stopped", pid.value(), {{"pid", pid.value()}});
    OSAP_LOG(Debug, kLog) << name_ << ": " << pid << " stopped";
    if (p->hooks_.on_stopped) p->hooks_.on_stopped();
  });
}

void Kernel::deliver_cont(Process& p) {
  if (p.state_ == ProcState::Stopping) {
    // SIGCONT raced the handler window: the stop never materializes.
    mark_audit_dirty();
    ++p.signal_gen_;
    p.state_ = ProcState::Running;
    tracer_->async_end(trk_, "sigtstp_window", p.pid_.value(), {{"cancelled", 1}});
    return;
  }
  if (p.state_ != ProcState::Stopped) return;
  mark_audit_dirty();
  p.state_ = ProcState::Running;
  vmm_.set_stopped(p.pid_, false);
  tracer_->async_end(trk_, "stopped", p.pid_.value());
  resume_legs(p);
  auto deferred = std::move(p.deferred_);
  p.deferred_.clear();
  if (p.hooks_.on_continued) p.hooks_.on_continued();
  for (auto& fn : deferred) fn();
}

void Kernel::terminate(Pid pid, ExitReason reason) {
  auto it = procs_.find(pid);
  if (it == procs_.end()) return;
  mark_audit_dirty();
  // Take ownership so the exit hook can safely re-enter the kernel.
  std::unique_ptr<Process> p = std::move(it->second);
  procs_.erase(it);
  // Close any suspend-protocol span left open by a mid-cycle kill.
  if (p->state_ == ProcState::Stopping) {
    tracer_->async_end(trk_, "sigtstp_window", pid.value(), {{"killed", 1}});
  } else if (p->state_ == ProcState::Stopped) {
    tracer_->async_end(trk_, "stopped", pid.value(), {{"killed", 1}});
  }
  ++p->signal_gen_;
  cpu_.cancel(p->run_.cpu);
  disk_.cancel(p->run_.disk);
  if (p->run_.sleep_timer != 0) sim_.cancel(p->run_.sleep_timer);
  vmm_.release_process(pid);
  p->state_ = ProcState::Zombie;
  p->ended_at_ = sim_.now();
  tracer_->instant(trk_, "exit",
                   {{"pid", pid.value()},
                    {"reason", reason == ExitReason::Finished ? "finished" : "killed"}});
  OSAP_LOG(Debug, kLog) << name_ << ": " << pid << " exited ("
                        << (reason == ExitReason::Finished ? "finished" : "killed") << ")";
  if (p->hooks_.on_exit) p->hooks_.on_exit(ExitInfo{reason});
}

void Kernel::pause_legs(Process& p) {
  cpu_.pause(p.run_.cpu);
  disk_.pause(p.run_.disk);
  if (p.run_.sleep_timer != 0) {
    sim_.cancel(p.run_.sleep_timer);
    p.run_.sleep_timer = 0;
    p.run_.sleep_left = std::max(0.0, p.run_.sleep_wake_at - sim_.now());
  }
}

void Kernel::resume_legs(Process& p) {
  cpu_.resume(p.run_.cpu);
  disk_.resume(p.run_.disk);
  if (p.run_.sleep_left > 0) {
    const Pid pid = p.pid_;
    p.run_.sleep_wake_at = sim_.now() + p.run_.sleep_left;
    p.run_.sleep_timer = sim_.after(p.run_.sleep_left, [this, pid] {
      Process* q = find(pid);
      if (q == nullptr) return;
      q->run_.sleep_timer = 0;
      q->run_.sleep_left = 0;
      leg_done(pid);
    });
    p.run_.sleep_left = 0;
  }
}

void Kernel::run_or_defer(Pid pid, std::function<void()> fn) {
  Process* p = find(pid);
  if (p == nullptr) return;
  if (p->state_ == ProcState::Stopped) {
    mark_audit_dirty();
    p->deferred_.push_back(std::move(fn));
  } else {
    fn();
  }
}

RegionId Kernel::region_of(Process& p, const std::string& name, bool create) {
  auto it = p.regions_.find(name);
  if (it != p.regions_.end()) return it->second;
  OSAP_CHECK_MSG(create, p.name() << " touches unknown region '" << name << "'");
  mark_audit_dirty();
  const RegionId rid = vmm_.create_region(p.pid_, name);
  p.regions_.emplace(name, rid);
  return rid;
}

void Kernel::leg_done(Pid pid) {
  run_or_defer(pid, [this, pid] {
    Process* p = find(pid);
    if (p == nullptr) return;
    mark_audit_dirty();
    OSAP_CHECK(p->run_.outstanding > 0);
    if (--p->run_.outstanding == 0) advance(*p);
  });
}

void Kernel::advance(Process& p) {
  mark_audit_dirty();
  // Phase epilogue.
  const Phase& phase = p.program_.phases[p.phase_idx_];
  if (const auto* alloc = std::get_if<AllocPhase>(&phase)) {
    vmm_.mark_hot(region_of(p, alloc->region, false), alloc->hot_after);
  }
  std::visit([&p](const auto& ph) {
    if constexpr (requires { ph.weight; }) p.weight_done_ += ph.weight;
  }, phase);

  ++p.phase_idx_;
  p.run_ = Process::PhaseRun{};
  start_phase(p);
}

void Kernel::start_phase(Process& p) {
  if (p.phase_idx_ >= p.program_.phases.size()) {
    terminate(p.pid_, ExitReason::Finished);
    return;
  }
  mark_audit_dirty();
  const Pid pid = p.pid_;
  const Phase& phase = p.program_.phases[p.phase_idx_];

  if (const auto* c = std::get_if<ComputePhase>(&phase)) {
    p.run_.outstanding = 1;
    p.run_.cpu_demand = c->cpu_seconds;
    p.run_.cpu = cpu_.add(c->cpu_seconds, 1.0, [this, pid] { leg_done(pid); });

  } else if (const auto* a = std::get_if<AllocPhase>(&phase)) {
    const RegionId rid = region_of(p, a->region, true);
    vmm_.mark_hot(rid, true);
    p.run_.outstanding = 2;
    p.run_.cpu_demand = static_cast<double>(a->bytes) * cfg_.touch_cpu_per_byte;
    p.run_.cpu = cpu_.add(p.run_.cpu_demand, 1.0, [this, pid] { leg_done(pid); });
    vmm_.commit(rid, a->bytes, [this, pid] { leg_done(pid); });

  } else if (const auto* r = std::get_if<ReadParsePhase>(&phase)) {
    p.run_.outstanding = 2;
    p.run_.cpu_demand = static_cast<double>(r->bytes) * r->cpu_per_byte;
    p.run_.cpu = cpu_.add(p.run_.cpu_demand, 1.0, [this, pid] { leg_done(pid); });
    // The read happens in io_chunk pieces so the file-system cache grows
    // as data streams in (and becomes reclaimable ballast).
    const bool populate = r->populate_fs_cache;
    // Each chunk's continuation carries a copy of this lambda; a shared
    // self-referencing std::function would cycle and never free.
    auto read_next = [this, pid, populate](auto self, Bytes left) -> void {
      Process* q = find(pid);
      if (q == nullptr) return;
      if (left == 0) {
        q->run_.disk = 0;
        leg_done(pid);
        return;
      }
      const Bytes chunk = std::min<Bytes>(left, cfg_.io_chunk);
      q->run_.disk =
          disk_.start(IoClass::HdfsRead, chunk, [this, pid, populate, self, left, chunk] {
            if (populate) vmm_.fs_cache_insert(chunk);
            run_or_defer(pid, [self, left, chunk] { self(self, left - chunk); });
          });
    };
    read_next(read_next, r->bytes);

  } else if (const auto* t = std::get_if<TouchPhase>(&phase)) {
    const RegionId rid = region_of(p, t->region, false);
    vmm_.mark_hot(rid, true);
    if (t->write) vmm_.dirty_resident(rid);
    p.run_.outstanding = 2;
    const Bytes extent = vmm_.region_resident(rid) + vmm_.region_swapped(rid);
    p.run_.cpu_demand = static_cast<double>(extent) * cfg_.touch_cpu_per_byte;
    p.run_.cpu = cpu_.add(p.run_.cpu_demand, 1.0, [this, pid] { leg_done(pid); });
    vmm_.page_in(rid, t->write, [this, pid] { leg_done(pid); });

  } else if (const auto* w = std::get_if<WriteOutPhase>(&phase)) {
    p.run_.outstanding = 1;
    p.run_.disk = disk_.start(IoClass::HdfsWrite, w->bytes, [this, pid] {
      Process* q = find(pid);
      if (q != nullptr) q->run_.disk = 0;
      leg_done(pid);
    });

  } else if (const auto* s = std::get_if<SleepPhase>(&phase)) {
    p.run_.outstanding = 1;
    p.run_.sleep_wake_at = sim_.now() + s->duration;
    p.run_.sleep_timer = sim_.after(s->duration, [this, pid] {
      Process* q = find(pid);
      if (q == nullptr) return;
      q->run_.sleep_timer = 0;
      leg_done(pid);
    });

  } else if (const auto* f = std::get_if<FreePhase>(&phase)) {
    const RegionId rid = region_of(p, f->region, false);
    const Bytes all = vmm_.region_resident(rid) + vmm_.region_swapped(rid);
    vmm_.release(rid, f->bytes == 0 ? all : f->bytes);
    advance(p);

  } else if (const auto* b = std::get_if<BarrierPhase>(&phase)) {
    if (std::find(p.released_barriers_.begin(), p.released_barriers_.end(), b->name) !=
        p.released_barriers_.end()) {
      advance(p);
      return;
    }
    // Park without scheduling anything: the release is the only wake-up.
    p.run_.outstanding = 1;
    p.run_.waiting_barrier = b->name;
  }
}

void Kernel::release_barrier(Pid pid, const std::string& name) {
  Process* p = find(pid);
  if (p == nullptr) return;
  if (std::find(p->released_barriers_.begin(), p->released_barriers_.end(), name) !=
      p->released_barriers_.end()) {
    return;
  }
  mark_audit_dirty();
  p->released_barriers_.push_back(name);
  if (p->run_.waiting_barrier == name) {
    p->run_.waiting_barrier.clear();
    leg_done(pid);  // defers until SIGCONT if the process is stopped
  }
}

double Kernel::progress(Pid pid) const {
  const Process* p = find(pid);
  if (p == nullptr) return 0;
  if (p->phase_idx_ >= p->program_.phases.size()) return 1.0;
  double current_weight = 0;
  std::visit([&](const auto& ph) {
    if constexpr (requires { ph.weight; }) current_weight = ph.weight;
  }, p->program_.phases[p->phase_idx_]);
  double frac = 0;
  if (p->run_.cpu_demand > 0) {
    frac = 1.0 - cpu_.remaining(p->run_.cpu) / p->run_.cpu_demand;
    frac = std::clamp(frac, 0.0, 1.0);
  }
  if (p->total_weight_ <= 0) {
    // No weights declared: fall back to phase-count completion.
    return (static_cast<double>(p->phase_idx_) + frac) /
           static_cast<double>(p->program_.phases.size());
  }
  return (p->weight_done_ + current_weight * frac) / p->total_weight_;
}

RegionId Kernel::ensure_region(Pid pid, const std::string& region) {
  Process* p = find(pid);
  OSAP_CHECK_MSG(p != nullptr, "ensure_region on missing " << pid);
  return region_of(*p, region, /*create=*/true);
}

bool Kernel::page_in_region(Pid pid, const std::string& region, std::function<void()> done) {
  Process* p = find(pid);
  if (p == nullptr) return false;
  const auto it = p->regions_.find(region);
  if (it == p->regions_.end()) return false;
  vmm_.mark_hot(it->second, true);
  vmm_.page_in(it->second, /*dirtying=*/false, std::move(done));
  return true;
}

void Kernel::audit(std::vector<std::string>& violations) const {
  for (Pid pid : det::sorted_keys(procs_)) {
    const Process& p = *procs_.at(pid);
    if (p.state_ == ProcState::Zombie) {
      std::ostringstream os;
      os << pid << " (" << p.name() << ") is a zombie in the process table";
      violations.push_back(os.str());
    }
    const bool vmm_stopped = vmm_.is_stopped(pid);
    if (vmm_stopped != (p.state_ == ProcState::Stopped)) {
      std::ostringstream os;
      os << pid << " (" << p.name() << ") is " << to_string(p.state_)
         << " but the VMM stopped flag is " << (vmm_stopped ? "set" : "clear");
      violations.push_back(os.str());
    }
    if (p.run_.outstanding < 0) {
      std::ostringstream os;
      os << pid << " (" << p.name() << ") has " << p.run_.outstanding << " outstanding legs";
      violations.push_back(os.str());
    }
    if (p.phase_idx_ > p.program_.phases.size()) {
      std::ostringstream os;
      os << pid << " (" << p.name() << ") is at phase " << p.phase_idx_ << " of "
         << p.program_.phases.size();
      violations.push_back(os.str());
    }
    if (!p.run_.waiting_barrier.empty() && p.run_.outstanding != 1) {
      std::ostringstream os;
      os << pid << " (" << p.name() << ") waits on barrier '" << p.run_.waiting_barrier
         << "' with " << p.run_.outstanding << " outstanding legs";
      violations.push_back(os.str());
    }
    for (const std::string& rname : det::sorted_keys(p.regions_)) {
      const RegionId rid = p.regions_.at(rname);
      if (!vmm_.has_region(rid)) {
        std::ostringstream os;
        os << pid << " (" << p.name() << ") region '" << rname << "' (" << rid
           << ") is gone from the VMM";
        violations.push_back(os.str());
      }
    }
  }
}

void Kernel::dump(std::ostream& os) const {
  os << procs_.size() << " processes\n";
  for (Pid pid : det::sorted_keys(procs_)) {
    const Process& p = *procs_.at(pid);
    os << "  " << pid << " " << p.name() << " [" << to_string(p.state_) << "] phase "
       << p.phase_idx_ << "/" << p.program_.phases.size() << " progress "
       << progress(pid) << " outstanding " << p.run_.outstanding;
    if (!p.run_.waiting_barrier.empty()) os << " barrier '" << p.run_.waiting_barrier << "'";
    os << "\n";
  }
}

void Kernel::handle_oom() {
  // Linux-like badness: kill the process holding the most memory; ties go
  // to the lowest pid so victim choice never depends on hash order.
  Pid victim;
  Bytes worst = 0;
  for (Pid pid : det::sorted_keys(procs_)) {
    const Bytes held = vmm_.resident(pid);
    if (held > worst) {
      worst = held;
      victim = pid;
    }
  }
  OSAP_CHECK_MSG(victim.valid() && worst > 0, "OOM with no killable process on " << name_);
  ctr_oom_kills_->add();
  tracer_->instant(trk_, "oom_kill", {{"pid", victim.value()}, {"resident_bytes", worst}});
  OSAP_LOG(Warn, kLog) << name_ << ": OOM killer chose " << victim << " holding "
                       << format_bytes(worst);
  terminate(victim, ExitReason::OomKilled);
}

}  // namespace osap
