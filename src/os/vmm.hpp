// Virtual-memory manager for one simulated node.
//
// Models exactly the mechanisms §III-A of the paper relies on, at
// byte-extent granularity (page-accurate volumes without per-page
// objects):
//
//  * Anonymous process memory lives in named *regions* (JVM heap, task
//    state, I/O buffers). Regions are hot (recently touched, in the
//    working set) or cold, and their owning process is running or stopped.
//  * Reclaim triggers when free RAM drops below the low watermark and
//    frees up to the high watermark, evicting in the order the paper
//    describes: file-system cache first (swappiness 0), then pages of
//    stopped processes, then cold pages of running processes, then — as a
//    last resort — hot pages. Clean extents are dropped for free; dirty
//    extents cost a clustered swap-out write on the shared disk.
//  * The approximate-LRU replacement is modelled by an error fraction that
//    grows with memory pressure: some evicted bytes belong to the
//    requester's working set and fault straight back in (swap-in read +
//    re-eviction elsewhere). This reproduces the super-linear "paged
//    bytes" curve of Fig. 4 ("swapped data grows more than linearly
//    because of an approximate implementation of the page replacement
//    algorithm in Linux").
//  * Victim frames stay occupied until their swap-out write completes;
//    only then do they become grantable, so paging cost is never hidden.
//
// All frame acquisition is asynchronous: `commit` and `page_in` call their
// continuation once frames are available, possibly after disk I/O.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "audit/audit.hpp"
#include "common/error.hpp"
#include "common/ids.hpp"
#include "common/units.hpp"
#include "os/config.hpp"
#include "os/disk.hpp"

namespace osap::trace {
class Counter;
class Tracer;
}  // namespace osap::trace

namespace osap {

struct RegionTag { static const char* prefix() { return "region_"; } };
using RegionId = StrongId<RegionTag>;

class Vmm final : public InvariantAuditor {
 public:
  Vmm(Simulation& sim, Disk& disk, const OsConfig& cfg, std::string name = "vmm");
  ~Vmm() override;
  Vmm(const Vmm&) = delete;
  Vmm& operator=(const Vmm&) = delete;

  // --- process / region lifecycle ---------------------------------------
  void register_process(Pid pid);
  /// Mark a process stopped (SIGTSTP) or running (SIGCONT): stopped
  /// processes' pages are preferred eviction victims.
  void set_stopped(Pid pid, bool stopped);
  /// Drop every frame and swap slot of the process (exit / SIGKILL).
  void release_process(Pid pid);

  RegionId create_region(Pid pid, std::string name);
  /// Whether the region is in its owner's current working set.
  void mark_hot(RegionId rid, bool hot);

  // --- memory operations --------------------------------------------------
  /// Make `bytes` more of the region resident and dirty (allocation or
  /// writing). `done` fires once frames are granted — after swap-out I/O
  /// if reclaim had to page something out.
  void commit(RegionId rid, Bytes bytes, std::function<void()> done);

  /// Bring all currently swapped bytes of the region back to RAM (the
  /// process touches it again after a suspend-resume cycle). Swap-in reads
  /// go through the shared disk. If `dirtying` the swap slots are freed.
  void page_in(RegionId rid, bool dirtying, std::function<void()> done);

  /// Release `bytes` resident bytes of the region (free() / GC giving
  /// memory back to the OS, §V-B).
  void release(RegionId rid, Bytes bytes);

  /// The process rewrites the region: clean resident pages become dirty
  /// again and abandon their swap slots.
  void dirty_resident(RegionId rid);

  /// Opportunistically grow the file-system cache after a disk read; the
  /// cache only consumes frames above the low watermark.
  void fs_cache_insert(Bytes bytes);

  /// Installed by the kernel: called when reclaim cannot free enough
  /// memory (aggregate memory exceeds RAM + swap, §III-A). The handler
  /// must kill a process (releasing memory) or the simulation aborts.
  void set_oom_handler(std::function<void()> handler) { oom_handler_ = std::move(handler); }

  // --- queries -------------------------------------------------------------
  [[nodiscard]] Bytes free_ram() const noexcept { return free_; }
  [[nodiscard]] Bytes fs_cache() const noexcept { return fs_cache_; }
  [[nodiscard]] Bytes swap_used() const noexcept { return swap_used_; }
  /// Swap-used fraction in [0,1] (0 when the node has no swap device) —
  /// the policy layer's memory-pressure watermark probe.
  [[nodiscard]] double swap_pressure() const noexcept {
    return cfg_.swap_size == 0
               ? 0.0
               : static_cast<double>(swap_used_) / static_cast<double>(cfg_.swap_size);
  }
  [[nodiscard]] Bytes resident(Pid pid) const;
  [[nodiscard]] Bytes swapped(Pid pid) const;
  /// Cumulative bytes ever paged out for this process — Fig. 4's metric.
  [[nodiscard]] Bytes swapped_out_total(Pid pid) const;
  [[nodiscard]] Bytes swapped_in_total(Pid pid) const;
  [[nodiscard]] Bytes swapped_out_total_all() const noexcept { return swapped_out_all_; }
  [[nodiscard]] Bytes region_resident(RegionId rid) const;
  [[nodiscard]] Bytes region_swapped(RegionId rid) const;
  [[nodiscard]] bool has_region(RegionId rid) const { return regions_.contains(rid); }
  [[nodiscard]] bool is_stopped(Pid pid) const;
  /// Frames detached from regions but not yet grantable (swap-out writes
  /// in flight) or granted but not yet credited (swap-in reads in flight).
  [[nodiscard]] Bytes held_in_flight() const noexcept { return held_; }

  // --- invariant auditing ---------------------------------------------------
  [[nodiscard]] std::string audit_label() const override { return name_; }
  /// Audited invariants: frame conservation (free + cache + in-flight +
  /// resident == usable RAM), swap-slot exactness (swap_used == swapped +
  /// clean copies), swap capacity, region<->process list consistency, and
  /// paging-counter conservation (paged_out == paged_in + discarded +
  /// currently swapped).
  void audit(std::vector<std::string>& violations) const override;
  void dump(std::ostream& os) const override;
  /// Every mutator marks the audit-dirty flag, so the periodic sweep may
  /// skip this VMM across clean (pure-compute) stretches.
  [[nodiscard]] bool audit_supports_dirty() const override { return true; }

  /// Testing-only fault injection: skew the free-frame counter so the
  /// conservation audit fires. Never call outside audit tests.
  void testing_corrupt_free_frames(Bytes delta) {
    free_ += delta;
    mark_audit_dirty();
  }

 private:
  struct Region {
    Pid pid;
    std::string name;
    Bytes resident_clean = 0;  // swap copy exists; droppable for free
    Bytes resident_dirty = 0;  // must be written to swap before eviction
    Bytes swapped = 0;
    bool hot = false;
    std::uint64_t last_touch = 0;
  };
  struct ProcInfo {
    bool stopped = false;
    std::vector<RegionId> regions;
    Bytes swapped_out_total = 0;
    Bytes swapped_in_total = 0;
  };
  /// One reclaim round's outcome.
  struct VictimPlan {
    Bytes instant = 0;   // frames free immediately (cache + clean)
    Bytes io = 0;        // dirty bytes needing a swap-out write
    Bytes refault = 0;   // working-set bytes mistakenly evicted
    RegionId refault_region;
  };

  /// Grant `bytes` frames to a requester, reclaiming if needed; `grant`
  /// runs once the frames are held. `rounds` counts reclaim retries for
  /// this request; the loop is bounded (livelock guard).
  void acquire_frames(Bytes bytes, Pid requester, std::function<void()> grant, int depth,
                      int rounds = 0);

  /// Select and immediately detach victims worth roughly `want` bytes.
  VictimPlan select_victims(Bytes want, Pid requester);

  /// Take up to `want` bytes from one region, clean first.
  Bytes evict_from_region(Region& region, Bytes want, VictimPlan& plan);

  void touch(Region& region);
  void oom(const char* why);

  Simulation& sim_;
  Disk& disk_;
  const OsConfig cfg_;
  std::string name_;
  std::unordered_map<Pid, ProcInfo> procs_;
  std::unordered_map<RegionId, Region> regions_;
  IdGenerator<RegionId> region_ids_;
  Bytes free_;
  Bytes fs_cache_ = 0;
  Bytes swap_used_ = 0;
  /// In-flight frames: victims awaiting their swap-out write, and granted
  /// page-in frames awaiting their swap-in read. Part of conservation.
  Bytes held_ = 0;
  Bytes swapped_out_all_ = 0;
  std::uint64_t touch_seq_ = 0;
  std::function<void()> oom_handler_;

  // --- observability (src/trace) -----------------------------------------
  // Counter references are resolved once at construction; the registry
  // guarantees them stable. The paging counters obey an exact conservation
  // law cross-checked by audit(): paged_out == paged_in + discarded +
  // currently-swapped bytes.
  trace::Tracer* tracer_ = nullptr;
  std::uint32_t trk_ = 0;  ///< trace track (node process, "vmm" thread)
  trace::Counter* ctr_paged_out_ = nullptr;   ///< resident -> swapped moves
  trace::Counter* ctr_paged_in_ = nullptr;    ///< swapped -> resident moves
  trace::Counter* ctr_discarded_ = nullptr;   ///< swapped bytes dropped (free/exit)
  trace::Counter* ctr_swap_out_io_ = nullptr; ///< bytes written to the swap device
  trace::Counter* ctr_swap_in_io_ = nullptr;  ///< bytes read from the swap device
  std::uint64_t io_span_seq_ = 0;             ///< async span ids for swap I/O
};

}  // namespace osap
