// Per-node kernel: process table, CPU scheduling, signal delivery and the
// phase interpreter that couples programs to the CPU, the disk and the VMM.
//
// The CPU is a processor-sharing FluidResource with per-process caps of
// one core; the single spindle carries HDFS I/O and swap traffic; the VMM
// implements watermark reclaim. Signal semantics follow §III-B: SIGTSTP is
// catchable, so a short handler window elapses before the process stops
// (and a SIGCONT inside that window cancels the stop); SIGKILL tears the
// process down immediately, dropping its anonymous memory.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "audit/audit.hpp"
#include "common/ids.hpp"
#include "os/config.hpp"
#include "os/disk.hpp"
#include "os/process.hpp"
#include "os/program.hpp"
#include "os/vmm.hpp"
#include "sim/fluid_resource.hpp"
#include "sim/simulation.hpp"

namespace osap {

class Kernel final : public InvariantAuditor {
 public:
  Kernel(Simulation& sim, OsConfig cfg, std::string name);
  ~Kernel() override;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Fork+exec a child running `program`. The child starts immediately.
  Pid spawn(Program program, ProcessHooks hooks = {});

  /// POSIX-style signal delivery. Unknown pids are ignored (ESRCH).
  void signal(Pid pid, Signal sig);

  [[nodiscard]] bool alive(Pid pid) const { return procs_.contains(pid); }
  [[nodiscard]] Process* find(Pid pid);
  [[nodiscard]] const Process* find(Pid pid) const;
  [[nodiscard]] std::size_t process_count() const noexcept { return procs_.size(); }

  [[nodiscard]] Simulation& sim() noexcept { return sim_; }
  [[nodiscard]] Disk& disk() noexcept { return disk_; }
  [[nodiscard]] Vmm& vmm() noexcept { return vmm_; }
  [[nodiscard]] const Vmm& vmm() const noexcept { return vmm_; }
  [[nodiscard]] const OsConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Weighted completion of a process's program in [0,1].
  [[nodiscard]] double progress(Pid pid) const;

  /// Fault a process's named region fully back into RAM (another party —
  /// e.g. a Spark task reading an executor's RDD cache — is about to use
  /// it). `done` fires after any required swap-in I/O. Returns false if
  /// the process or region does not exist.
  bool page_in_region(Pid pid, const std::string& region, std::function<void()> done);

  /// Look up (creating if absent) a named region in a live process's
  /// address space — lets services like Spark executors grow state
  /// regions outside their static program.
  RegionId ensure_region(Pid pid, const std::string& region);

  /// Release a named barrier for a process (data arrived on the pipe /
  /// upstream stage finished). Level-triggered: releasing before the
  /// process reaches the matching BarrierPhase makes that phase fall
  /// through. Unknown pids and repeat releases are no-ops. A stopped
  /// process absorbs the release but only advances on SIGCONT.
  void release_barrier(Pid pid, const std::string& name);

  // --- invariant auditing ---------------------------------------------------
  [[nodiscard]] std::string audit_label() const override { return name_; }
  /// Audited invariants: signal-state legality (no zombies in the process
  /// table, VMM stopped flag mirrors ProcState::Stopped), phase
  /// bookkeeping bounds, and region-table agreement with the VMM.
  void audit(std::vector<std::string>& violations) const override;
  /// Per-node process table.
  void dump(std::ostream& os) const override;
  /// Every mutator marks the audit-dirty flag, so the periodic sweep may
  /// skip this kernel across clean stretches.
  [[nodiscard]] bool audit_supports_dirty() const override { return true; }

  /// Testing-only fault injection: desynchronize the VMM stopped flag
  /// from the process state so the signal-state audit fires.
  void testing_corrupt_stop_state(Pid pid) {
    vmm_.set_stopped(pid, true);
    mark_audit_dirty();
  }

 private:
  friend class Process;

  void start_phase(Process& p);
  void advance(Process& p);
  /// One parallel leg (cpu / disk / vmm) of the current phase finished.
  void leg_done(Pid pid);
  /// Run `fn` now, or park it until SIGCONT if the process is stopped.
  void run_or_defer(Pid pid, std::function<void()> fn);

  void deliver_tstp(Process& p);
  void deliver_cont(Process& p);
  void terminate(Pid pid, ExitReason reason);

  void pause_legs(Process& p);
  void resume_legs(Process& p);

  RegionId region_of(Process& p, const std::string& name, bool create);
  void handle_oom();

  Simulation& sim_;
  OsConfig cfg_;
  std::string name_;
  FluidResource cpu_;
  Disk disk_;
  Vmm vmm_;
  std::unordered_map<Pid, std::unique_ptr<Process>> procs_;
  IdGenerator<Pid> pids_;

  // --- observability (src/trace) -----------------------------------------
  trace::Tracer* tracer_ = nullptr;
  std::uint32_t trk_ = 0;  ///< trace track (node process, "kernel" thread)
  trace::Counter* ctr_spawned_ = nullptr;
  trace::Counter* ctr_signals_ = nullptr;
  trace::Counter* ctr_oom_kills_ = nullptr;
};

}  // namespace osap
