// Task programs: what a simulated process does.
//
// A Program is a sequence of phases the kernel interprets. Phases map to
// the behaviours the paper's synthetic jobs exhibit (§IV-A):
//
//   AllocPhase      malloc + write random values (dirtying every page)
//   ReadParsePhase  read an input block from local disk while parsing it
//                   (CPU and disk run as a pipeline; the slower side wins)
//   TouchPhase      walk an existing region again (reading state back at
//                   finalization) — pages swapped while suspended fault in
//   ComputePhase    pure CPU burn
//   WriteOutPhase   write task output to local disk
//   SleepPhase      idle wait
//   FreePhase       return region memory to the OS (System.gc(), §V-B)
//
// `weight` contributes to the process's progress metric; Hadoop map
// progress is "input consumed", so synthetic mappers put weight 1 on their
// ReadParsePhase and 0 elsewhere.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "common/time.hpp"
#include "common/units.hpp"

namespace osap {

struct ComputePhase {
  double cpu_seconds = 0;
  double weight = 0;
};

struct AllocPhase {
  std::string region;
  Bytes bytes = 0;
  /// Whether the region stays in the working set after allocation. Task
  /// state written once and revisited at the end is cold in between —
  /// precisely what makes it swappable at low cost.
  bool hot_after = false;
  double weight = 0;
};

struct ReadParsePhase {
  Bytes bytes = 0;
  /// Parse cost; the effective rate is min(disk share, cpu share / cost).
  double cpu_per_byte = 0;
  double weight = 1.0;
  /// Whether the read populates the node's file-system cache.
  bool populate_fs_cache = true;
};

struct TouchPhase {
  std::string region;
  /// Writing re-dirties pages (dropping their swap slots); reading leaves
  /// them clean.
  bool write = false;
  double weight = 0;
};

struct WriteOutPhase {
  Bytes bytes = 0;
  double weight = 0;
};

struct SleepPhase {
  Duration duration = 0;
  double weight = 0;
};

struct FreePhase {
  std::string region;
  /// 0 means the whole region.
  Bytes bytes = 0;
};

/// Block until the kernel releases the named barrier (a blocking read on
/// an empty pipe, a reducer waiting for map outputs). Consumes no CPU or
/// disk and schedules no events, so a waiting process never busy-spins
/// the event queue. If the barrier was released before the phase starts,
/// it falls straight through.
struct BarrierPhase {
  std::string name;
  double weight = 0;
};

using Phase = std::variant<ComputePhase, AllocPhase, ReadParsePhase, TouchPhase, WriteOutPhase,
                           SleepPhase, FreePhase, BarrierPhase>;

struct Program {
  std::string name = "proc";
  std::vector<Phase> phases;

  [[nodiscard]] double total_weight() const noexcept {
    double total = 0;
    for (const Phase& p : phases) {
      std::visit([&](const auto& ph) {
        if constexpr (requires { ph.weight; }) total += ph.weight;
      }, p);
    }
    return total;
  }
};

/// Fluent builder so call sites read like the task they describe.
class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name) { program_.name = std::move(name); }

  ProgramBuilder& alloc(std::string region, Bytes bytes, bool hot_after = false) {
    program_.phases.push_back(AllocPhase{std::move(region), bytes, hot_after, 0});
    return *this;
  }
  ProgramBuilder& read_parse(Bytes bytes, double cpu_per_byte, double weight = 1.0) {
    program_.phases.push_back(ReadParsePhase{bytes, cpu_per_byte, weight, true});
    return *this;
  }
  ProgramBuilder& touch(std::string region, bool write = false) {
    program_.phases.push_back(TouchPhase{std::move(region), write, 0});
    return *this;
  }
  ProgramBuilder& compute(double cpu_seconds, double weight = 0) {
    program_.phases.push_back(ComputePhase{cpu_seconds, weight});
    return *this;
  }
  ProgramBuilder& write_out(Bytes bytes) {
    program_.phases.push_back(WriteOutPhase{bytes, 0});
    return *this;
  }
  ProgramBuilder& sleep(Duration d) {
    program_.phases.push_back(SleepPhase{d, 0});
    return *this;
  }
  ProgramBuilder& free(std::string region, Bytes bytes = 0) {
    program_.phases.push_back(FreePhase{std::move(region), bytes});
    return *this;
  }
  ProgramBuilder& barrier(std::string name) {
    program_.phases.push_back(BarrierPhase{std::move(name), 0});
    return *this;
  }
  [[nodiscard]] Program build() { return std::move(program_); }

 private:
  Program program_;
};

}  // namespace osap
