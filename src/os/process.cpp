#include "os/process.hpp"

#include "os/kernel.hpp"

namespace osap {

const char* to_string(Signal s) noexcept {
  switch (s) {
    case Signal::Tstp: return "SIGTSTP";
    case Signal::Cont: return "SIGCONT";
    case Signal::Kill: return "SIGKILL";
    case Signal::Term: return "SIGTERM";
  }
  return "?";
}

const char* to_string(ProcState s) noexcept {
  switch (s) {
    case ProcState::Running: return "running";
    case ProcState::Stopping: return "stopping";
    case ProcState::Stopped: return "stopped";
    case ProcState::Zombie: return "zombie";
  }
  return "?";
}

double Process::progress() const noexcept {
  if (kernel_ == nullptr) return 0;
  return kernel_->progress(pid_);
}

}  // namespace osap
