// Simulated UNIX process.
//
// Hadoop map/reduce tasks "are regular Unix processes running in child
// JVMs spawned by the TaskTracker" (§III-B), so the preemption primitive
// is implemented purely with the process abstraction here: POSIX-style
// signals change the scheduling state, and the VMM treats stopped
// processes' memory as prime eviction victims.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "os/program.hpp"
#include "os/vmm.hpp"
#include "sim/fluid_resource.hpp"

namespace osap {

/// The subset of POSIX signals the primitive uses (§III-B). SIGTSTP and
/// SIGCONT are chosen over SIGSTOP because they can be caught, letting
/// tasks manage external state before stopping.
enum class Signal { Tstp, Cont, Kill, Term };

const char* to_string(Signal s) noexcept;

enum class ProcState { Running, Stopping, Stopped, Zombie };

const char* to_string(ProcState s) noexcept;

/// Why a process left the Running/Stopped states.
enum class ExitReason { Finished, Killed, OomKilled };

struct ExitInfo {
  ExitReason reason = ExitReason::Finished;
  [[nodiscard]] bool killed() const noexcept { return reason != ExitReason::Finished; }
};

/// Callbacks a spawner can register to observe a child's lifecycle
/// (the TaskTracker watches its child JVMs this way).
struct ProcessHooks {
  std::function<void(ExitInfo)> on_exit;
  /// Fired when the process has actually entered the Stopped state (the
  /// SIGTSTP handler has run its course).
  std::function<void()> on_stopped;
  std::function<void()> on_continued;
};

class Kernel;

class Process {
 public:
  Process(Pid pid, Program program, ProcessHooks hooks)
      : pid_(pid), program_(std::move(program)), hooks_(std::move(hooks)) {}

  [[nodiscard]] Pid pid() const noexcept { return pid_; }
  [[nodiscard]] ProcState state() const noexcept { return state_; }
  [[nodiscard]] const std::string& name() const noexcept { return program_.name; }

  /// Weighted completion in [0,1] — Hadoop's task progress.
  [[nodiscard]] double progress() const noexcept;

  /// Named memory regions of this process's address space.
  [[nodiscard]] const std::unordered_map<std::string, RegionId>& regions() const noexcept {
    return regions_;
  }

  // Lifetime statistics.
  [[nodiscard]] SimTime started_at() const noexcept { return started_at_; }
  [[nodiscard]] SimTime ended_at() const noexcept { return ended_at_; }

 private:
  friend class Kernel;

  // Per-phase runtime bookkeeping, owned by the kernel's interpreter.
  struct PhaseRun {
    int outstanding = 0;  // parallel legs (cpu + disk) still running
    FluidResource::ConsumerId cpu = 0;
    Disk::StreamId disk = 0;
    double cpu_demand = 0;  // for progress computation
    EventId sleep_timer = 0;
    Duration sleep_left = 0;
    SimTime sleep_wake_at = 0;
    /// Non-empty while parked in a BarrierPhase of this name.
    std::string waiting_barrier;
  };

  Pid pid_;
  Program program_;
  ProcessHooks hooks_;
  ProcState state_ = ProcState::Running;
  std::size_t phase_idx_ = 0;
  PhaseRun run_;
  std::unordered_map<std::string, RegionId> regions_;
  /// Barriers already released by the kernel; a matching BarrierPhase
  /// falls through immediately (releases are level-triggered, not edges).
  std::vector<std::string> released_barriers_;
  /// Continuations parked while the process was stopped (e.g. a VMM grant
  /// landed after SIGTSTP); re-dispatched in order on SIGCONT.
  std::vector<std::function<void()>> deferred_;
  /// Generation counter defeating stale SIGTSTP-handler timers when a
  /// SIGCONT (or kill) arrives inside the handler window.
  std::uint64_t signal_gen_ = 0;
  Kernel* kernel_ = nullptr;  // set by Kernel::spawn
  SimTime started_at_ = 0;
  SimTime ended_at_ = -1;
  double total_weight_ = 0;
  double weight_done_ = 0;  // weight of completed phases
};

}  // namespace osap
