#include "common/log.hpp"

#include <cstdio>

namespace osap {

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& component, const std::string& message) {
  if (!enabled(level) || sink_ == nullptr) return;
  char stamp[32];
  if (clock_) {
    std::snprintf(stamp, sizeof stamp, "%10.3f", clock_());
  } else {
    std::snprintf(stamp, sizeof stamp, "%10s", "-");
  }
  (*sink_) << "[" << stamp << "s] " << to_string(level) << " " << component << ": " << message
           << '\n';
}

}  // namespace osap
