// Simulated time.
//
// The whole simulator runs on a single virtual clock expressed in seconds
// as a double. Single-threaded discrete-event execution keeps this fully
// deterministic. Helpers make call sites read naturally: `after(ms(500))`,
// `after(minutes(2))`.
#pragma once

#include <limits>

namespace osap {

/// Absolute simulated time, in seconds since simulation start.
using SimTime = double;
/// Relative simulated time, in seconds.
using Duration = double;

inline constexpr SimTime kTimeNever = std::numeric_limits<double>::infinity();

constexpr Duration seconds(double s) noexcept { return s; }
constexpr Duration ms(double m) noexcept { return m / 1000.0; }
constexpr Duration minutes(double m) noexcept { return m * 60.0; }

}  // namespace osap
