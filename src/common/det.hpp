// Determinism helpers.
//
// The simulation's claim to validity is that two runs of the same
// scenario produce byte-identical event streams. Hash-ordered containers
// break that silently: iteration order depends on the standard library,
// the hash seed and the insertion history, so any decision or output
// derived from a range-for over an `unordered_map` can differ between
// runs or toolchains. `osap-lint` (rule DET-1, see docs/LINT.md) bans
// such traversals in the modeled layers; `det::sorted_keys()` is the
// sanctioned replacement — snapshot the keys, sort them, and traverse the
// container by key.
//
// `det::Fnv1a` is the runtime witness for the same property: the
// Simulation folds every fired event into an FNV-1a digest, and the
// double-run tier-1 test asserts that identical scenarios produce
// identical digests.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace osap::det {

/// Snapshot a map/set's keys in sorted (operator<) order. O(n log n),
/// intended for cold paths and bounded hot paths (victim selection,
/// heartbeat assembly, audits, dumps) where a stable order matters more
/// than the copy.
template <typename Container>
[[nodiscard]] std::vector<typename Container::key_type> sorted_keys(const Container& c) {
  std::vector<typename Container::key_type> keys;
  keys.reserve(c.size());
  for (const auto& entry : c) {
    if constexpr (requires { entry.first; }) {
      keys.push_back(entry.first);
    } else {
      keys.push_back(entry);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// 64-bit FNV-1a accumulator. Folding in the (time, id) pair of every
/// fired event yields a digest of the entire event stream; any ordering
/// divergence between two runs changes it with overwhelming probability.
class Fnv1a {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;

  constexpr void mix_bytes(const unsigned char* data, std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= data[i];
      hash_ *= kPrime;
    }
  }

  constexpr void mix(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xffu;
      hash_ *= kPrime;
    }
  }

  /// Mix a double through its bit pattern (the virtual clock is a
  /// double); identical streams mix identical bits on any platform.
  void mix(double v) noexcept {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    __builtin_memcpy(&bits, &v, sizeof bits);
    mix(bits);
  }

  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = kOffsetBasis;
};

}  // namespace osap::det
