// Deterministic random number generation.
//
// Experiments average over N seeded runs; all randomness flows through Rng
// (xoshiro256++ seeded via splitmix64) so a (seed, run-index) pair fully
// reproduces a run on any platform. std::<random> distributions are
// deliberately avoided: their outputs differ across standard libraries.
#pragma once

#include <cstdint>

namespace osap {

class Rng {
 public:
  /// Seeds the four xoshiro words from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, 1).
  double uniform() noexcept;

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Exponential with the given mean (mean = 1/rate).
  double exponential(double mean) noexcept;

  /// Normal via Box–Muller (no internal cache, deterministic).
  double normal(double mean, double stddev) noexcept;

  /// Normal truncated to be >= lo (resamples; lo should be well within
  /// a few stddevs of the mean).
  double normal_at_least(double mean, double stddev, double lo) noexcept;

  /// Derive an independent child generator (e.g. one per experiment run).
  Rng fork() noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace osap
