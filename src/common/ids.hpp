// Strongly-typed integer identifiers.
//
// Each simulated entity family gets its own id type so a Pid can never be
// passed where a JobId is expected. Ids are comparable, hashable and
// printable; `valid()` distinguishes default-constructed (invalid) ids.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace osap {

template <typename Tag>
class StrongId {
 public:
  constexpr StrongId() noexcept = default;
  constexpr explicit StrongId(std::uint64_t v) noexcept : value_(v) {}

  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return value_ != kInvalid; }

  friend constexpr bool operator==(StrongId a, StrongId b) noexcept = default;
  friend constexpr auto operator<=>(StrongId a, StrongId b) noexcept = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    if (!id.valid()) return os << Tag::prefix() << "<invalid>";
    return os << Tag::prefix() << id.value();
  }

 private:
  static constexpr std::uint64_t kInvalid = ~std::uint64_t{0};
  std::uint64_t value_ = kInvalid;
};

struct NodeTag { static const char* prefix() { return "node_"; } };
struct PidTag { static const char* prefix() { return "pid_"; } };
struct JobTag { static const char* prefix() { return "job_"; } };
struct TaskTag { static const char* prefix() { return "task_"; } };
struct AttemptTag { static const char* prefix() { return "attempt_"; } };
struct BlockTag { static const char* prefix() { return "blk_"; } };
struct FileTag { static const char* prefix() { return "file_"; } };
struct TrackerTag { static const char* prefix() { return "tracker_"; } };

using NodeId = StrongId<NodeTag>;
using Pid = StrongId<PidTag>;
using JobId = StrongId<JobTag>;
using TaskId = StrongId<TaskTag>;
using AttemptId = StrongId<AttemptTag>;
using BlockId = StrongId<BlockTag>;
using FileId = StrongId<FileTag>;
using TrackerId = StrongId<TrackerTag>;

/// Monotonic id generator for one id family.
template <typename Id>
class IdGenerator {
 public:
  Id next() noexcept { return Id{next_++}; }

 private:
  std::uint64_t next_ = 0;
};

}  // namespace osap

template <typename Tag>
struct std::hash<osap::StrongId<Tag>> {
  std::size_t operator()(osap::StrongId<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
