#include "common/units.hpp"

#include <cstdio>

namespace osap {

std::string format_bytes(Bytes b) {
  char buf[48];
  if (b >= GiB) {
    std::snprintf(buf, sizeof buf, "%.2f GiB", to_gib(b));
  } else if (b >= MiB) {
    std::snprintf(buf, sizeof buf, "%.1f MiB", to_mib(b));
  } else if (b >= KiB) {
    std::snprintf(buf, sizeof buf, "%.1f KiB", static_cast<double>(b) / static_cast<double>(KiB));
  } else {
    std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(b));
  }
  return buf;
}

}  // namespace osap
