#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace osap {

/// Sorted vector of strong ids with set semantics: ascending iteration,
/// no duplicates. The hot-path indexes (per-job task sets, the running-job
/// set) hold at most a few dozen elements, where a contiguous vector beats
/// a node-based tree on every operation that matters — iteration most of
/// all, and these sets are iterated on every heartbeat (docs/PERF.md).
/// Iteration order is identical to std::set over the same ids, so swapping
/// one for the other cannot perturb the event stream.
template <typename Id>
class FlatIdSet {
 public:
  using const_iterator = typename std::vector<Id>::const_iterator;

  [[nodiscard]] const_iterator begin() const noexcept { return v_.begin(); }
  [[nodiscard]] const_iterator end() const noexcept { return v_.end(); }
  [[nodiscard]] bool empty() const noexcept { return v_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return v_.size(); }

  [[nodiscard]] bool contains(Id id) const noexcept {
    const auto it = std::lower_bound(v_.begin(), v_.end(), id);
    return it != v_.end() && *it == id;
  }

  /// Insert keeping order; duplicate inserts are no-ops (set semantics).
  void insert(Id id) {
    const auto it = std::lower_bound(v_.begin(), v_.end(), id);
    if (it == v_.end() || *it != id) v_.insert(it, id);
  }

  /// Erase by value; absent ids are a no-op.
  void erase(Id id) {
    const auto it = std::lower_bound(v_.begin(), v_.end(), id);
    if (it != v_.end() && *it == id) v_.erase(it);
  }

  [[nodiscard]] friend bool operator==(const FlatIdSet& a, const FlatIdSet& b) {
    return a.v_ == b.v_;
  }

 private:
  std::vector<Id> v_;
};

}  // namespace osap
