// Error handling for the simulator.
//
// Invariant violations are programming errors: OSAP_CHECK throws SimError
// with the failed condition and location. Tests exercise the checks;
// production callers treat SimError as fatal.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace osap {

/// Thrown when a simulator invariant is violated.
class SimError : public std::logic_error {
 public:
  explicit SimError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* cond, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw SimError(os.str());
}
}  // namespace detail

}  // namespace osap

/// Verify an invariant; throws osap::SimError on failure. Always enabled —
/// the simulator is cheap enough that checks stay on in release builds.
#define OSAP_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) ::osap::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (false)

#define OSAP_CHECK_MSG(cond, msg)                                         \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream osap_check_os_;                                  \
      osap_check_os_ << msg;                                              \
      ::osap::detail::check_failed(#cond, __FILE__, __LINE__,             \
                                   osap_check_os_.str());                 \
    }                                                                     \
  } while (false)
