#include "common/rng.hpp"

#include <cmath>

namespace osap {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  for (auto& s : s_) s = splitmix64(seed);
  // Avoid the all-zero state (splitmix64 makes this astronomically
  // unlikely, but the guarantee is cheap).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) noexcept {
  if (lo >= hi) return lo;
  const std::uint64_t span = hi - lo + 1;
  return lo + next_u64() % span;
}

double Rng::exponential(double mean) noexcept {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) noexcept {
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(6.283185307179586 * u2);
}

double Rng::normal_at_least(double mean, double stddev, double lo) noexcept {
  for (int i = 0; i < 64; ++i) {
    const double v = normal(mean, stddev);
    if (v >= lo) return v;
  }
  return lo;
}

Rng Rng::fork() noexcept { return Rng(next_u64()); }

}  // namespace osap
