// Byte-size units used throughout the simulator.
//
// All memory, disk and network volumes are expressed in bytes as a
// `Bytes` (unsigned 64-bit) value. Helpers build readable constants:
// `512 * MiB`, `gib(2.5)`.
#pragma once

#include <cstdint>
#include <string>

namespace osap {

/// Volume in bytes. Unsigned: the simulator never deals in negative sizes;
/// subtraction helpers below saturate instead of wrapping.
using Bytes = std::uint64_t;

inline constexpr Bytes KiB = 1024;
inline constexpr Bytes MiB = 1024 * KiB;
inline constexpr Bytes GiB = 1024 * MiB;

/// Fractional gibibytes, e.g. gib(2.5) == 2.5 * GiB rounded to bytes.
constexpr Bytes gib(double g) noexcept { return static_cast<Bytes>(g * static_cast<double>(GiB)); }
/// Fractional mebibytes.
constexpr Bytes mib(double m) noexcept { return static_cast<Bytes>(m * static_cast<double>(MiB)); }

/// Saturating subtraction: returns a-b, or 0 when b > a.
constexpr Bytes sat_sub(Bytes a, Bytes b) noexcept { return a >= b ? a - b : 0; }

/// Convert to floating mebibytes/gibibytes for reporting.
constexpr double to_mib(Bytes b) noexcept { return static_cast<double>(b) / static_cast<double>(MiB); }
constexpr double to_gib(Bytes b) noexcept { return static_cast<double>(b) / static_cast<double>(GiB); }

/// Human-readable rendering, e.g. "512.0 MiB", "2.50 GiB".
std::string format_bytes(Bytes b);

}  // namespace osap
