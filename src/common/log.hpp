// Leveled logging with simulated-time prefixes.
//
// The logger is a process-wide singleton configured once per binary.
// Components log through OSAP_LOG(level, component) << ...; each line is
// prefixed with the current simulated time supplied by a clock callback
// (installed by Simulation). Default level is Warn so tests stay quiet.
#pragma once

#include <functional>
#include <iostream>
#include <sstream>
#include <string>

#include "common/time.hpp"

namespace osap {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

const char* to_string(LogLevel level) noexcept;

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept { return level >= level_; }

  /// Install the callback used to stamp lines with simulated time.
  void set_clock(std::function<SimTime()> clock) { clock_ = std::move(clock); }
  void clear_clock() { clock_ = nullptr; }

  /// Redirect output (default std::cerr). The stream must outlive use.
  void set_sink(std::ostream* sink) noexcept { sink_ = sink; }

  void write(LogLevel level, const std::string& component, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::Warn;
  std::function<SimTime()> clock_;
  std::ostream* sink_ = &std::cerr;
};

namespace detail {
/// Collects one log statement and flushes it on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Logger::instance().write(level_, component_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace osap

/// Usage: OSAP_LOG(Info, "jobtracker") << "job " << id << " submitted";
#define OSAP_LOG(level, component)                                        \
  if (::osap::Logger::instance().enabled(::osap::LogLevel::level))        \
  ::osap::detail::LogLine(::osap::LogLevel::level, (component))
