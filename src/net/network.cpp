#include "net/network.hpp"

#include "common/error.hpp"

namespace osap {

Network::Network(Simulation& sim, NetConfig cfg) : sim_(sim), cfg_(cfg) {
  OSAP_CHECK(cfg_.nic_bandwidth > 0);
}

void Network::register_node(NodeId node) {
  OSAP_CHECK_MSG(!downlinks_.contains(node), node << " registered twice");
  downlinks_.emplace(node, std::make_unique<FluidResource>(
                               sim_, cfg_.nic_bandwidth,
                               "downlink"));
}

FluidResource& Network::downlink(NodeId node) {
  auto it = downlinks_.find(node);
  OSAP_CHECK_MSG(it != downlinks_.end(), "unknown " << node);
  return *it->second;
}

void Network::send(NodeId from, NodeId to, std::function<void()> deliver) {
  sim_.trace().profiler().add(trace::HotPath::NetDelivery);
  Duration lat = (from == to) ? cfg_.loopback_latency : cfg_.latency;
  if (filter_) {
    const MsgFate fate = filter_(from, to);
    if (fate.drop) {
      ++msgs_dropped_;
      return;
    }
    if (fate.extra_delay > 0) {
      ++msgs_delayed_;
      lat += fate.extra_delay;
    }
  }
  sim_.after(lat, std::move(deliver));
}

Network::TransferId Network::transfer(NodeId from, NodeId to, Bytes bytes,
                                      std::function<void()> done) {
  bytes_moved_ += bytes;
  if (from == to) {
    sim_.after(cfg_.loopback_latency, std::move(done));
    return 0;
  }
  return downlink(to).add(static_cast<double>(bytes), std::move(done));
}

void Network::pause(NodeId to, TransferId id) { downlink(to).pause(id); }
void Network::resume(NodeId to, TransferId id) { downlink(to).resume(id); }
void Network::cancel(NodeId to, TransferId id) { downlink(to).cancel(id); }

}  // namespace osap
