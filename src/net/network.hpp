// Cluster network model.
//
// Control messages (heartbeats, RPC) are latency-only. Bulk transfers
// (shuffle fetches, non-local block reads) are fluid streams through the
// receiving node's downlink NIC — the receiver is the bottleneck in
// Hadoop's shuffle, so modelling one end keeps the model simple while
// preserving contention among concurrent fetches to the same node.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "sim/fluid_resource.hpp"
#include "sim/simulation.hpp"

namespace osap {

struct NetConfig {
  /// One-way control-message latency.
  Duration latency = ms(0.5);
  /// Per-node NIC bandwidth (bytes/second).
  double nic_bandwidth = 1.0 * static_cast<double>(GiB);
  /// Latency applied to loopback (same-node) messages.
  Duration loopback_latency = ms(0.05);
};

/// Fault-injection verdict for one control message (src/fault installs a
/// filter returning these; see docs/FAULTS.md). Dropped messages vanish
/// silently — exactly what a partitioned or dead NIC does to a heartbeat.
struct MsgFate {
  bool drop = false;
  Duration extra_delay = 0;
};

class Network {
 public:
  using TransferId = FluidResource::ConsumerId;

  Network(Simulation& sim, NetConfig cfg);

  void register_node(NodeId node);
  [[nodiscard]] bool has_node(NodeId node) const { return downlinks_.contains(node); }

  /// Deliver a control message after the link latency.
  void send(NodeId from, NodeId to, std::function<void()> deliver);

  /// Install (or clear, with an empty function) the control-message fault
  /// filter consulted by send(). The filter must be a pure function of
  /// (from, to) and the current simulated time — any other input would
  /// break digest determinism.
  void set_message_filter(std::function<MsgFate(NodeId from, NodeId to)> filter) {
    filter_ = std::move(filter);
  }
  [[nodiscard]] std::uint64_t messages_dropped() const noexcept { return msgs_dropped_; }
  [[nodiscard]] std::uint64_t messages_delayed() const noexcept { return msgs_delayed_; }

  /// Move `bytes` from `from` to `to`; `done` fires when the last byte
  /// lands. Same-node transfers complete after loopback latency only.
  TransferId transfer(NodeId from, NodeId to, Bytes bytes, std::function<void()> done);

  void pause(NodeId to, TransferId id);
  void resume(NodeId to, TransferId id);
  void cancel(NodeId to, TransferId id);

  [[nodiscard]] Bytes bytes_moved() const noexcept { return bytes_moved_; }

 private:
  FluidResource& downlink(NodeId node);

  Simulation& sim_;
  NetConfig cfg_;
  std::unordered_map<NodeId, std::unique_ptr<FluidResource>> downlinks_;
  Bytes bytes_moved_ = 0;
  std::function<MsgFate(NodeId, NodeId)> filter_;
  std::uint64_t msgs_dropped_ = 0;
  std::uint64_t msgs_delayed_ = 0;
};

}  // namespace osap
