// Cluster network model.
//
// Control messages (heartbeats, RPC) are latency-only. Bulk transfers
// (shuffle fetches, non-local block reads) are fluid streams through the
// receiving node's downlink NIC — the receiver is the bottleneck in
// Hadoop's shuffle, so modelling one end keeps the model simple while
// preserving contention among concurrent fetches to the same node.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "sim/fluid_resource.hpp"
#include "sim/simulation.hpp"

namespace osap {

struct NetConfig {
  /// One-way control-message latency.
  Duration latency = ms(0.5);
  /// Per-node NIC bandwidth (bytes/second).
  double nic_bandwidth = 1.0 * static_cast<double>(GiB);
  /// Latency applied to loopback (same-node) messages.
  Duration loopback_latency = ms(0.05);
};

class Network {
 public:
  using TransferId = FluidResource::ConsumerId;

  Network(Simulation& sim, NetConfig cfg);

  void register_node(NodeId node);
  [[nodiscard]] bool has_node(NodeId node) const { return downlinks_.contains(node); }

  /// Deliver a control message after the link latency.
  void send(NodeId from, NodeId to, std::function<void()> deliver);

  /// Move `bytes` from `from` to `to`; `done` fires when the last byte
  /// lands. Same-node transfers complete after loopback latency only.
  TransferId transfer(NodeId from, NodeId to, Bytes bytes, std::function<void()> done);

  void pause(NodeId to, TransferId id);
  void resume(NodeId to, TransferId id);
  void cancel(NodeId to, TransferId id);

  [[nodiscard]] Bytes bytes_moved() const noexcept { return bytes_moved_; }

 private:
  FluidResource& downlink(NodeId node);

  Simulation& sim_;
  NetConfig cfg_;
  std::unordered_map<NodeId, std::unique_ptr<FluidResource>> downlinks_;
  Bytes bytes_moved_ = 0;
};

}  // namespace osap
