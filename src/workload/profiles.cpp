#include "workload/profiles.hpp"

namespace osap {

ClusterConfig paper_cluster() {
  ClusterConfig cfg;
  cfg.num_nodes = 1;
  cfg.os.ram = 4 * GiB;
  cfg.os.os_reserved = mib(448);  // kernel + Hadoop daemons
  cfg.os.swap_size = 8 * GiB;
  cfg.os.swappiness = 0;  // the paper's recommended configuration
  cfg.os.cores = 4;
  cfg.os.disk_bandwidth = 140.0 * static_cast<double>(MiB);
  // The measured Fig.-4 swap curve grows markedly faster than linearly;
  // the paper attributes this to Linux's approximate page replacement.
  // A higher error rate under pressure reproduces that curvature.
  cfg.os.lru_approx_error = 0.25;
  cfg.hadoop.map_slots = 1;  // single task slot: th must displace tl
  cfg.hadoop.reduce_slots = 1;
  cfg.hdfs.block_size = 512 * MiB;
  return cfg;
}

TaskSpec light_map_task(Bytes input) {
  TaskSpec spec;
  spec.type = TaskType::Map;
  spec.input_bytes = input;
  // ~6.7 MiB/s of parsing: a 512 MB block takes ~76 s of mapper CPU,
  // matching the task durations readable off the paper's figures.
  spec.parse_cpu_per_byte = 1.0 / (6.7 * static_cast<double>(MiB));
  spec.framework_memory = 160 * MiB;
  spec.state_memory = 0;
  spec.startup_cpu_seconds = 1.0;
  return spec;
}

TaskSpec hungry_map_task(Bytes state, Bytes input) {
  TaskSpec spec = light_map_task(input);
  spec.state_memory = state;
  spec.touch_state_at_end = true;
  return spec;
}

JobSpec single_task_job(std::string name, int priority, TaskSpec task) {
  JobSpec job;
  job.name = std::move(name);
  job.priority = priority;
  task.name = job.name;
  job.tasks.push_back(std::move(task));
  return job;
}

TaskSpec jitter_task(TaskSpec spec, Rng& rng, double fraction) {
  const auto wiggle = [&rng, fraction] { return 1.0 + rng.uniform(-fraction, fraction); };
  spec.parse_cpu_per_byte *= wiggle();
  spec.startup_cpu_seconds *= wiggle();
  return spec;
}

}  // namespace osap
