#include "workload/dummy_config.hpp"

#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "workload/profiles.hpp"

namespace osap {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  std::ostringstream os;
  os << "dummy config line " << line << ": " << message;
  throw SimError(os.str());
}

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> tokens;
  std::string token;
  while (is >> token) {
    if (token[0] == '#') break;
    tokens.push_back(token);
  }
  return tokens;
}

double parse_percent(const std::string& token, int line) {
  std::string digits = token;
  if (!digits.empty() && digits.back() == '%') digits.pop_back();
  char* end = nullptr;
  const double v = std::strtod(digits.c_str(), &end);
  if (end == digits.c_str() || *end != '\0' || v <= 0 || v >= 100) {
    fail(line, "expected a progress percentage in (0,100), got '" + token + "'");
  }
  return v / 100.0;
}

double parse_double(const std::string& token, int line) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') fail(line, "expected a number, got '" + token + "'");
  return v;
}

int parse_int(const std::string& token, int line) {
  const double v = parse_double(token, line);
  return static_cast<int>(v);
}

}  // namespace

Bytes parse_size(const std::string& token) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || v < 0) throw SimError("bad size: " + token);
  const std::string suffix(end);
  if (suffix.empty() || suffix == "B") return static_cast<Bytes>(v);
  if (suffix == "KiB") return static_cast<Bytes>(v * static_cast<double>(KiB));
  if (suffix == "MiB") return static_cast<Bytes>(v * static_cast<double>(MiB));
  if (suffix == "GiB") return static_cast<Bytes>(v * static_cast<double>(GiB));
  throw SimError("bad size suffix in: " + token);
}

void load_dummy_config(std::istream& in, DummyScheduler& scheduler, Cluster& cluster) {
  // Job definitions are collected first; submissions and triggers
  // reference them by name.
  auto jobs = std::make_shared<std::map<std::string, JobSpec>>();

  auto lookup = [&jobs](const std::string& name, int line) -> const JobSpec& {
    const auto it = jobs->find(name);
    if (it == jobs->end()) fail(line, "unknown job '" + name + "'");
    return it->second;
  };

  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::vector<std::string> t = tokenize(line);
    if (t.empty()) continue;

    if (t[0] == "job") {
      // job <name> priority <p> tasks <n> input <size> state <size>
      if (t.size() != 10 || t[2] != "priority" || t[4] != "tasks" || t[6] != "input" ||
          t[8] != "state") {
        fail(lineno, "expected: job <name> priority <p> tasks <n> input <size> state <size>");
      }
      const std::string& name = t[1];
      const int priority = parse_int(t[3], lineno);
      const int tasks = parse_int(t[5], lineno);
      if (tasks < 1) fail(lineno, "a job needs at least one task");
      const Bytes input = parse_size(t[7]);
      const Bytes state = parse_size(t[9]);
      JobSpec spec;
      spec.name = name;
      spec.priority = priority;
      for (int i = 0; i < tasks; ++i) {
        spec.tasks.push_back(state > 0 ? hungry_map_task(state, input) : light_map_task(input));
      }
      jobs->emplace(name, std::move(spec));

    } else if (t[0] == "submit") {
      // submit <name> at <t>
      if (t.size() != 4 || t[2] != "at") fail(lineno, "expected: submit <name> at <t>");
      const JobSpec spec = lookup(t[1], lineno);
      scheduler.submit_at(parse_double(t[3], lineno), spec);

    } else if (t[0] == "at-progress") {
      // at-progress <job> <idx> <r>% (submit <name> | preempt <job2> <idx2> <prim>)
      if (t.size() < 5) fail(lineno, "truncated at-progress trigger");
      const std::string watched = t[1];
      const int index = parse_int(t[2], lineno);
      const double r = parse_percent(t[3], lineno);
      if (t[4] == "submit" && t.size() == 6) {
        const JobSpec spec = lookup(t[5], lineno);
        Cluster* c = &cluster;
        scheduler.at_progress(watched, index, r, [c, spec] { c->submit(spec); });
      } else if (t[4] == "preempt" && t.size() == 8) {
        const std::string victim = t[5];
        const int vindex = parse_int(t[6], lineno);
        const PreemptPrimitive primitive = parse_primitive(t[7]);
        DummyScheduler* ds = &scheduler;
        scheduler.at_progress(watched, index, r, [ds, victim, vindex, primitive] {
          ds->preempt(victim, vindex, primitive);
        });
      } else {
        fail(lineno, "expected 'submit <name>' or 'preempt <job> <idx> <primitive>'");
      }

    } else if (t[0] == "on-complete") {
      // on-complete <job> (restore <job2> <idx2> <prim> | submit <name>)
      if (t.size() < 4) fail(lineno, "truncated on-complete trigger");
      const std::string watched = t[1];
      if (t[2] == "restore" && t.size() == 6) {
        const std::string victim = t[3];
        const int vindex = parse_int(t[4], lineno);
        const PreemptPrimitive primitive = parse_primitive(t[5]);
        DummyScheduler* ds = &scheduler;
        scheduler.on_complete(watched, [ds, victim, vindex, primitive] {
          ds->restore(victim, vindex, primitive);
        });
      } else if (t[2] == "submit" && t.size() == 4) {
        const JobSpec spec = lookup(t[3], lineno);
        Cluster* c = &cluster;
        scheduler.on_complete(watched, [c, spec] { c->submit(spec); });
      } else {
        fail(lineno, "expected 'restore <job> <idx> <primitive>' or 'submit <name>'");
      }

    } else {
      fail(lineno, "unknown directive '" + t[0] + "'");
    }
  }
}

}  // namespace osap
