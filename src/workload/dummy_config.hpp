// Static configuration files for the dummy scheduler (§III-B).
//
// "…a dummy scheduler — which dictates task eviction according to static
// configuration files. This allows to specify, using a series of simple
// triggers, which jobs/tasks are run in the cluster and which are
// preempted."
//
// Line-oriented format ('#' starts a comment):
//
//   # define a job (not yet submitted)
//   job <name> priority <p> tasks <n> input <size> state <size>
//
//   # schedule a submission at an absolute time (seconds)
//   submit <name> at <t>
//
//   # trigger when task <idx> of <job> reaches a progress percentage
//   at-progress <job> <idx> <r>% submit <name>
//   at-progress <job> <idx> <r>% preempt <job2> <idx2> <wait|kill|susp|natjam>
//
//   # trigger when a job completes
//   on-complete <job> restore <job2> <idx2> <wait|kill|susp|natjam>
//   on-complete <job> submit <name>
//
// Sizes accept suffixes B, KiB, MiB, GiB (e.g. "512MiB", "2GiB", "0").
// The two-job experiment of §IV is exactly:
//
//   job tl priority 0 tasks 1 input 512MiB state 0
//   job th priority 10 tasks 1 input 512MiB state 0
//   submit tl at 0.05
//   at-progress tl 0 50% submit th
//   at-progress tl 0 50% preempt tl 0 susp
//   on-complete th restore tl 0 susp
#pragma once

#include <istream>
#include <string>

#include "sched/dummy.hpp"

namespace osap {

/// Parse a dummy-scheduler configuration and install its jobs and
/// triggers. Throws SimError with a line number on malformed input.
void load_dummy_config(std::istream& in, DummyScheduler& scheduler, Cluster& cluster);

/// Parse "512MiB" / "2GiB" / "64KiB" / "123B" / "0" into bytes.
Bytes parse_size(const std::string& token);

}  // namespace osap
