#include "workload/two_job.hpp"

#include <memory>
#include <sstream>

#include "common/error.hpp"
#include "fault/injector.hpp"
#include "sched/dummy.hpp"

namespace osap {

TwoJobResult run_two_job(const TwoJobParams& params) {
  OSAP_CHECK(params.progress_at_launch > 0 && params.progress_at_launch < 1);
  ClusterConfig ccfg = params.cluster;
  ccfg.seed = params.seed;
  Cluster cluster(ccfg);
  Rng rng(params.seed);

  auto scheduler = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *scheduler;
  cluster.set_scheduler(std::move(scheduler));

  const NodeId worker = cluster.node(0);
  cluster.create_input("input_tl", 512 * MiB, worker);
  cluster.create_input("input_th", 512 * MiB, worker);

  TaskSpec tl_spec = params.tl_state > 0 ? hungry_map_task(params.tl_state) : light_map_task();
  TaskSpec th_spec = params.th_state > 0 ? hungry_map_task(params.th_state) : light_map_task();
  tl_spec.preferred_node = worker;
  th_spec.preferred_node = worker;
  tl_spec = jitter_task(tl_spec, rng, params.jitter);
  th_spec = jitter_task(th_spec, rng, params.jitter);

  // tl enters an otherwise idle system.
  ds.submit_at(0.05, single_task_job("tl", /*priority=*/0, tl_spec));

  // At r% of tl: submit th and apply the primitive under study.
  const PreemptPrimitive primitive = params.primitive;
  ds.at_progress("tl", 0, params.progress_at_launch, [&cluster, &ds, th_spec, primitive] {
    cluster.submit(single_task_job("th", /*priority=*/10, th_spec));
    ds.preempt("tl", 0, primitive);
  });

  // Once th completes, give the slot back to tl.
  ds.on_complete("th", [&ds, primitive] { ds.restore("tl", 0, primitive); });

  std::unique_ptr<fault::FaultInjector> injector;
  if (!params.fault_plan.empty()) {
    std::istringstream plan(params.fault_plan);
    injector = std::make_unique<fault::FaultInjector>(cluster, fault::parse_fault_plan(plan));
  }

  cluster.run(params.tick);
  if (params.inspect) params.inspect(cluster);

  const JobTracker& jt = cluster.job_tracker();
  const Job& tl = jt.job(ds.job_of("tl"));
  const Job& th = jt.job(ds.job_of("th"));
  OSAP_CHECK_MSG(tl.state == JobState::Succeeded && th.state == JobState::Succeeded,
                 "two-job experiment did not complete");

  TwoJobResult result;
  result.sojourn_th = th.sojourn();
  result.sojourn_tl = tl.sojourn();
  result.makespan =
      std::max(tl.completed_at, th.completed_at) - std::min(tl.submitted_at, th.submitted_at);
  const Task& tl_task = jt.task(tl.tasks.front());
  result.tl_swapped_out = tl_task.swapped_out;
  result.tl_swapped_in = tl_task.swapped_in;
  Kernel& kernel = cluster.kernel(worker);
  result.node_swap_out = kernel.disk().transferred(IoClass::SwapOut);
  result.node_swap_in = kernel.disk().transferred(IoClass::SwapIn);
  return result;
}

Duration solo_task_duration(TaskSpec spec, ClusterConfig cluster_cfg, std::uint64_t seed) {
  cluster_cfg.seed = seed;
  Cluster cluster(cluster_cfg);
  auto scheduler = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *scheduler;
  cluster.set_scheduler(std::move(scheduler));
  spec.preferred_node = cluster.node(0);
  cluster.create_input("input", spec.input_bytes, cluster.node(0));
  ds.submit_at(0.05, single_task_job("solo", 0, spec));
  cluster.run();
  return cluster.job_tracker().job(ds.job_of("solo")).sojourn();
}

}  // namespace osap
