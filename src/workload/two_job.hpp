// The paper's experimental scenario (§IV-A, Figure 1).
//
// Two single-task map-only jobs on one worker with one map slot:
//
//   t=0    tl (low priority) is submitted and starts processing its
//          512 MB block;
//   tl@r%  th (high priority) is submitted; the dummy scheduler preempts
//          tl with the primitive under study (wait / kill / susp /
//          natjam) and grants the slot to th;
//   th done  tl is resumed (susp / natjam) or rescheduled (kill) and
//          runs to completion.
//
// Metrics: sojourn time of th and makespan of the workload (§IV-B), plus
// the bytes paged out by tl's process (Fig. 4).
#pragma once

#include <functional>
#include <string>

#include "hadoop/cluster.hpp"
#include "preempt/primitive.hpp"
#include "workload/profiles.hpp"

namespace osap {

struct TwoJobParams {
  PreemptPrimitive primitive = PreemptPrimitive::Suspend;
  /// tl progress (fraction) at which th is launched — the x-axis of
  /// Figures 2 and 3.
  double progress_at_launch = 0.5;
  /// Stateful memory of each task (0 = the light-weight baseline; 2 GiB
  /// each = the worst-case experiment; Fig. 4 varies th's).
  Bytes tl_state = 0;
  Bytes th_state = 0;
  ClusterConfig cluster = paper_cluster();
  std::uint64_t seed = 1;
  /// Service-demand jitter across runs (fraction).
  double jitter = 0.02;
  /// Inline fault plan (newline-separated lines, docs/FAULTS.md syntax);
  /// "" = no injection.
  std::string fault_plan;
  /// Periodic passive hook forwarded to Cluster::run(tick) — may throw
  /// to abort the run (the osapd RSS watchdog does).
  std::function<void()> tick;
  /// Called with the finished cluster before the success check and before
  /// teardown, so harness callers (core::run_descriptor) can extract the
  /// trace digest and counters even from runs whose jobs failed.
  std::function<void(Cluster&)> inspect;
};

struct TwoJobResult {
  Duration sojourn_th = -1;
  Duration sojourn_tl = -1;
  Duration makespan = -1;
  /// Cumulative bytes paged out of tl's process — Fig. 4's swap metric.
  Bytes tl_swapped_out = 0;
  Bytes tl_swapped_in = 0;
  /// All swap-out traffic on the worker's disk.
  Bytes node_swap_out = 0;
  Bytes node_swap_in = 0;
};

TwoJobResult run_two_job(const TwoJobParams& params);

/// Duration of one task of the given spec running alone on the cluster —
/// used for calibration and for normalizing overheads.
Duration solo_task_duration(TaskSpec spec, ClusterConfig cluster, std::uint64_t seed = 1);

}  // namespace osap
