#include "workload/trace_file.hpp"

#include <sstream>

#include "common/error.hpp"
#include "workload/dummy_config.hpp"  // parse_size
#include "workload/profiles.hpp"

namespace osap {

std::vector<SwimJob> load_trace_file(std::istream& in, const TraceFileConfig& cfg) {
  OSAP_CHECK(cfg.block_size > 0);
  std::vector<SwimJob> jobs;
  std::string line;
  int lineno = 0;
  SimTime last_arrival = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream is(line);
    std::string name;
    if (!(is >> name) || name[0] == '#') continue;
    std::string arrival_str, input_str, shuffle_str, output_str, state_str;
    if (!(is >> arrival_str >> input_str >> shuffle_str >> output_str)) {
      throw SimError("trace line " + std::to_string(lineno) +
                     ": expected <name> <arrival> <input> <shuffle> <output> [state]");
    }
    is >> state_str;  // optional

    SwimJob job;
    char* end = nullptr;
    job.arrival = std::strtod(arrival_str.c_str(), &end);
    if (end == arrival_str.c_str() || *end != '\0' || job.arrival < 0) {
      throw SimError("trace line " + std::to_string(lineno) + ": bad arrival '" + arrival_str +
                     "'");
    }
    if (job.arrival < last_arrival) {
      throw SimError("trace line " + std::to_string(lineno) + ": arrivals must be sorted");
    }
    last_arrival = job.arrival;

    const Bytes input = parse_size(input_str);
    const Bytes shuffle = parse_size(shuffle_str);
    const Bytes output = parse_size(output_str);
    const Bytes state = state_str.empty() ? 0 : parse_size(state_str);

    job.spec.name = name;
    // One mapper per block, like Hadoop's input splits.
    const Bytes blocks = input == 0 ? 1 : (input + cfg.block_size - 1) / cfg.block_size;
    Bytes remaining = input;
    for (Bytes b = 0; b < blocks; ++b) {
      const Bytes this_block = std::min<Bytes>(remaining, cfg.block_size);
      TaskSpec map = state > 0 ? hungry_map_task(state, this_block == 0 ? input : this_block)
                               : light_map_task(this_block == 0 ? input : this_block);
      map.parse_cpu_per_byte = cfg.parse_cpu_per_byte;
      map.output_bytes = blocks > 0 ? output / blocks : output;
      job.spec.tasks.push_back(std::move(map));
      remaining = sat_sub(remaining, this_block);
    }
    if (shuffle > 0) {
      TaskSpec reduce;
      reduce.type = TaskType::Reduce;
      reduce.input_bytes = 0;
      reduce.shuffle_bytes = shuffle;
      reduce.sort_cpu_seconds = 2.0;
      reduce.output_bytes = output;
      reduce.parse_cpu_per_byte = cfg.parse_cpu_per_byte;
      job.spec.tasks.push_back(std::move(reduce));
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace osap
