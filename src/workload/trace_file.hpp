// Trace-file loading, in the spirit of SWIM's Facebook trace samples.
//
// Line format (whitespace-separated, '#' comments):
//
//   <job-name> <arrival-seconds> <map-input> <shuffle> <output> [state]
//
// where the last four are byte sizes with optional KiB/MiB/GiB suffixes.
// Map tasks are cut at the HDFS block size (one mapper per block, like
// Hadoop); a non-zero shuffle adds a reduce task; a non-zero `state`
// makes the mappers memory-hungry.
//
//   # name  arrival  input   shuffle  output  state
//   grep1   0        1GiB    0        1MiB
//   sort1   35       2GiB    512MiB   512MiB
//   learn1  70       512MiB  0        1MiB    2GiB
#pragma once

#include <istream>
#include <vector>

#include "workload/swim.hpp"

namespace osap {

struct TraceFileConfig {
  Bytes block_size = 512 * MiB;
  /// Applied to every generated task.
  double parse_cpu_per_byte = 1.0 / (6.7 * static_cast<double>(MiB));
};

/// Parse a trace stream into submittable jobs. Throws SimError (with the
/// line number) on malformed input.
std::vector<SwimJob> load_trace_file(std::istream& in, const TraceFileConfig& cfg = {});

}  // namespace osap
