#include "workload/swim.hpp"

#include <cmath>

namespace osap {

namespace {

/// Bounded Pareto in [1, hi] with tail exponent alpha.
int bounded_pareto(Rng& rng, int hi, double alpha) {
  const double l = 1.0;
  const double h = static_cast<double>(hi);
  const double u = rng.uniform();
  const double la = std::pow(l, alpha);
  const double ha = std::pow(h, alpha);
  const double x = std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  const int n = static_cast<int>(x);
  return std::min(hi, std::max(1, n));
}

}  // namespace

std::vector<SwimJob> generate_swim_trace(const SwimConfig& cfg, Rng& rng) {
  std::vector<SwimJob> trace;
  trace.reserve(static_cast<std::size_t>(cfg.jobs));
  SimTime clock = 0.1;
  for (int j = 0; j < cfg.jobs; ++j) {
    const int tasks = bounded_pareto(rng, cfg.max_tasks, cfg.tail_alpha);
    const bool stateful = rng.uniform() < cfg.stateful_fraction;
    JobSpec spec;
    spec.name = "swim" + std::to_string(j);
    spec.priority = 0;
    for (int t = 0; t < tasks; ++t) {
      TaskSpec task = stateful ? hungry_map_task(cfg.state_memory, cfg.input_per_task)
                               : light_map_task(cfg.input_per_task);
      task = jitter_task(task, rng, cfg.jitter);
      spec.tasks.push_back(std::move(task));
    }
    trace.push_back(SwimJob{clock, std::move(spec)});
    clock += rng.exponential(cfg.mean_interarrival);
  }
  return trace;
}

}  // namespace osap
