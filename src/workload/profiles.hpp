// Workload presets matching the paper's experimental setup (§IV-A).
//
//  * paper_cluster(): one worker with 4 GB RAM, one map slot, swappiness 0,
//    512 MB HDFS blocks — the testbed configuration.
//  * light_map_task(): a stateless synthetic mapper that reads and parses
//    a 512 MB single-block input (~77 s of work).
//  * hungry_map_task(): the worst-case stateful mapper: additionally
//    allocates a large dirty state at startup and reads it back when
//    finalizing.
//  * single_task_job(): wraps one task in a map-only job (tl / th).
#pragma once

#include "hadoop/cluster.hpp"
#include "hadoop/job.hpp"

namespace osap {

/// The paper's testbed: 4 GB RAM, single map slot, swappiness 0.
ClusterConfig paper_cluster();

/// Stateless synthetic mapper over a 512 MB block: "both jobs run
/// synthetic mappers, which read and parse the randomly generated input".
TaskSpec light_map_task(Bytes input = 512 * MiB);

/// Memory-hungry stateful mapper: `state` dirtied at startup, read back at
/// the end (2 GB in the paper's worst case; "this requires an ad hoc
/// change to the Hadoop configuration").
TaskSpec hungry_map_task(Bytes state, Bytes input = 512 * MiB);

/// Map-only single-task job, optionally pinned to a node for locality.
JobSpec single_task_job(std::string name, int priority, TaskSpec task);

/// Apply +-`fraction` multiplicative jitter to a task's service demands so
/// repeated runs differ (the paper averages 20 runs whose min/max stay
/// within 5% of the mean).
TaskSpec jitter_task(TaskSpec spec, Rng& rng, double fraction = 0.02);

}  // namespace osap
