// SWIM-style synthetic workload generation.
//
// The paper's setup "is analogous to the one used by Cho et al., who
// evaluated their preemption primitive using similar synthetic jobs
// created by the SWIM workload generator" [18]. SWIM samples job
// inter-arrivals and sizes from production (Facebook) traces; this
// generator reproduces the salient shape: exponential arrivals and a
// heavy-tailed (bounded Pareto) task count, with most jobs tiny and a few
// large — the regime where preempting long tasks for short jobs pays off.
#pragma once

#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "hadoop/job.hpp"
#include "workload/profiles.hpp"

namespace osap {

struct SwimConfig {
  int jobs = 10;
  Duration mean_interarrival = seconds(30);
  /// Bounded-Pareto task count in [1, max_tasks] with this tail exponent.
  int max_tasks = 20;
  double tail_alpha = 1.5;
  Bytes input_per_task = 512 * MiB;
  /// Fraction of jobs whose tasks carry in-memory state.
  double stateful_fraction = 0.2;
  Bytes state_memory = 1 * GiB;
  /// Uniform jitter applied to per-task service demands.
  double jitter = 0.05;
};

struct SwimJob {
  SimTime arrival;
  JobSpec spec;
};

std::vector<SwimJob> generate_swim_trace(const SwimConfig& cfg, Rng& rng);

}  // namespace osap
