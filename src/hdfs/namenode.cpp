#include "hdfs/namenode.hpp"

#include <algorithm>

#include "common/det.hpp"
#include "common/error.hpp"

namespace osap {

NameNode::NameNode(HdfsConfig cfg, std::uint64_t seed) : cfg_(cfg), rng_(seed) {
  OSAP_CHECK(cfg_.block_size > 0);
  OSAP_CHECK(cfg_.replication >= 1);
}

void NameNode::add_datanode(NodeId node) {
  OSAP_CHECK_MSG(std::find(datanodes_.begin(), datanodes_.end(), node) == datanodes_.end(),
                 node << " already a datanode");
  datanodes_.push_back(node);
}

FileId NameNode::create_file(std::string name, Bytes size, NodeId writer) {
  OSAP_CHECK_MSG(!datanodes_.empty(), "no datanodes registered");
  FileInfo info;
  info.id = file_ids_.next();
  info.name = std::move(name);
  info.size = size;
  const int replication = std::min<int>(cfg_.replication, static_cast<int>(datanodes_.size()));
  Bytes remaining = size;
  do {
    const Bytes block_bytes = std::min<Bytes>(remaining, cfg_.block_size);
    BlockInfo block;
    block.id = block_ids_.next();
    block.size = block_bytes;
    // First replica local to the writer when it hosts a DataNode; the rest
    // round-robin across the cluster.
    if (writer.valid() &&
        std::find(datanodes_.begin(), datanodes_.end(), writer) != datanodes_.end()) {
      block.replicas.push_back(writer);
    }
    while (static_cast<int>(block.replicas.size()) < replication) {
      const NodeId candidate = datanodes_[placement_cursor_++ % datanodes_.size()];
      if (std::find(block.replicas.begin(), block.replicas.end(), candidate) ==
          block.replicas.end()) {
        block.replicas.push_back(candidate);
      }
    }
    info.blocks.push_back(block.id);
    blocks_.emplace(block.id, std::move(block));
    remaining = sat_sub(remaining, block_bytes);
  } while (remaining > 0);
  const FileId id = info.id;
  files_.emplace(id, std::move(info));
  return id;
}

const FileInfo& NameNode::file(FileId id) const {
  const auto it = files_.find(id);
  OSAP_CHECK_MSG(it != files_.end(), "unknown " << id);
  return it->second;
}

const BlockInfo& NameNode::block(BlockId id) const {
  const auto it = blocks_.find(id);
  OSAP_CHECK_MSG(it != blocks_.end(), "unknown " << id);
  return it->second;
}

const std::vector<NodeId>& NameNode::locations(BlockId id) const { return block(id).replicas; }

NodeId NameNode::pick_replica(BlockId id, NodeId reader) {
  const BlockInfo& info = block(id);
  if (info.is_local_to(reader)) return reader;
  OSAP_CHECK(!info.replicas.empty());
  return info.replicas[rng_.uniform_int(0, info.replicas.size() - 1)];
}

std::size_t NameNode::re_replicate_away(NodeId doomed, const std::vector<NodeId>& targets) {
  std::size_t moved = 0;
  for (BlockId bid : det::sorted_keys(blocks_)) {
    BlockInfo& info = blocks_.at(bid);
    for (NodeId& replica : info.replicas) {
      if (replica != doomed) continue;
      for (NodeId target : targets) {
        if (target == doomed || !target.valid() || info.is_local_to(target)) continue;
        replica = target;
        ++moved;
        break;
      }
      break;  // at most one replica of a block per node
    }
  }
  return moved;
}

void NameNode::remove_file(FileId id) {
  const auto it = files_.find(id);
  if (it == files_.end()) return;
  for (BlockId b : it->second.blocks) blocks_.erase(b);
  files_.erase(it);
}

}  // namespace osap
