// HDFS metadata model.
//
// The NameNode tracks files, their blocks (default 512 MB — the paper's
// input is "a single-block file stored on HDFS, with size 512 MB"), and
// replica placement across DataNodes. Actual block bytes move through the
// owning node's disk when tasks read them; the NameNode only answers
// placement and locality questions, which is what the schedulers and the
// resume-locality logic need.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace osap {

struct HdfsConfig {
  Bytes block_size = 512 * MiB;
  int replication = 1;
};

struct BlockInfo {
  BlockId id;
  Bytes size = 0;
  std::vector<NodeId> replicas;

  [[nodiscard]] bool is_local_to(NodeId node) const {
    for (NodeId r : replicas) {
      if (r == node) return true;
    }
    return false;
  }
};

struct FileInfo {
  FileId id;
  std::string name;
  Bytes size = 0;
  std::vector<BlockId> blocks;
};

class NameNode {
 public:
  explicit NameNode(HdfsConfig cfg, std::uint64_t seed = 1);

  /// Register a storage node (a DataNode lives on it).
  void add_datanode(NodeId node);
  [[nodiscard]] std::size_t datanode_count() const noexcept { return datanodes_.size(); }

  /// Create a file of `size` bytes; blocks are cut at block_size and
  /// replicas placed round-robin (first replica on `writer` when given,
  /// HDFS's write-local policy).
  FileId create_file(std::string name, Bytes size, NodeId writer = NodeId{});

  [[nodiscard]] const FileInfo& file(FileId id) const;
  [[nodiscard]] const BlockInfo& block(BlockId id) const;
  [[nodiscard]] bool exists(FileId id) const { return files_.contains(id); }

  /// Nodes holding a replica of the block.
  [[nodiscard]] const std::vector<NodeId>& locations(BlockId id) const;

  /// Pick the replica to read from `reader`: a local one when available,
  /// otherwise a random replica (remote read).
  [[nodiscard]] NodeId pick_replica(BlockId id, NodeId reader);

  void remove_file(FileId id);

  /// Revocation-aware re-replication (docs/REVOKE.md): move every replica
  /// held by `doomed` onto a node from `targets` (first target not already
  /// holding the block, in the given order — callers pass on-demand nodes
  /// first). Blocks whose every target already holds a replica keep the
  /// doomed copy. Returns the number of replicas moved. Deterministic:
  /// blocks are visited in ascending id order.
  std::size_t re_replicate_away(NodeId doomed, const std::vector<NodeId>& targets);

 private:
  HdfsConfig cfg_;
  Rng rng_;
  std::vector<NodeId> datanodes_;
  std::unordered_map<FileId, FileInfo> files_;
  std::unordered_map<BlockId, BlockInfo> blocks_;
  IdGenerator<FileId> file_ids_;
  IdGenerator<BlockId> block_ids_;
  std::size_t placement_cursor_ = 0;
};

}  // namespace osap
