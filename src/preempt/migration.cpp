#include "preempt/migration.hpp"

#include "common/log.hpp"
#include "hadoop/task_tracker.hpp"

namespace osap {

namespace {
constexpr const char* kLog = "migration";
}

bool TaskMigrator::migrate(TaskId task, NodeId target, std::function<void(bool)> done) {
  JobTracker& jt = cluster_->job_tracker();
  Task& t = jt.task_mutable(task);
  if (t.state != TaskState::Suspended || !t.tracker.valid()) {
    OSAP_LOG(Warn, kLog) << "cannot migrate " << task << " in state " << to_string(t.state);
    return false;
  }
  TaskTracker* origin = jt.tracker(t.tracker);
  if (origin == nullptr || !origin->hosts_task(task)) return false;
  if (origin->node() == target) return false;  // nothing to move

  const Pid pid = origin->attempt_pid(task);
  Kernel& origin_kernel = origin->kernel();
  const Bytes image =
      origin_kernel.vmm().resident(pid) + origin_kernel.vmm().swapped(pid) + 8 * MiB;
  bytes_moved_ += image;
  ++migrations_;
  OSAP_LOG(Info, kLog) << "migrating " << task << " (" << format_bytes(image) << ") from "
                       << origin->node() << " to " << target;

  // 1. CRIU dump: write the frozen process image to the origin's disk
  //    (swapped pages are already there; the dump still rewrites them
  //    into the image file, which is what CRIU does).
  const NodeId origin_node = origin->node();
  Cluster* cluster = cluster_;
  origin_kernel.disk().start(IoClass::HdfsWrite, image, [cluster, task, target, origin_node,
                                                        image, done = std::move(done)]() mutable {
    // 2. Ship the image.
    cluster->network().transfer(
        origin_node, target, image,
        [cluster, task, target, done = std::move(done)]() mutable {
          // 3. Queue the restore: the relaunched attempt fast-forwards to
          //    the saved progress and re-reads its state from the image
          //    (spec.checkpoint_state), charging the restore read on the
          //    target. The origin attempt is killed; its cleanup attempt
          //    briefly occupies the origin slot, as a real kill would.
          JobTracker& jt = cluster->job_tracker();
          Task& t = jt.task_mutable(task);
          if (t.state != TaskState::Suspended) {
            if (done) done(false);  // resolved some other way mid-flight
            return;
          }
          t.spec.checkpoint_progress = t.progress;
          t.spec.checkpoint_state = t.spec.state_memory + 64 * KiB;
          t.spec.preferred_node = target;
          jt.kill_task(task);
          if (done) done(true);
        });
  });
  return true;
}

}  // namespace osap
