#include "preempt/resume_locality.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace osap {

void ResumeLocalityPolicy::request_resume(TaskId task) {
  for (const Pending& p : pending_) {
    if (p.task == task) return;
  }
  pending_.push_back(Pending{task, jt_->now()});
}

int ResumeLocalityPolicy::on_heartbeat(const TrackerStatus& status) {
  int slots_used = 0;
  int free_maps = status.free_map_slots;
  int free_reduces = status.free_reduce_slots;
  std::vector<Pending> still_pending;
  for (const Pending& p : pending_) {
    const Task& t = jt_->task(p.task);
    if (t.done() || t.state == TaskState::Running || t.state == TaskState::MustResume) {
      continue;  // resolved some other way
    }
    if (t.state != TaskState::Suspended) {
      still_pending.push_back(p);  // suspension ack still in flight
      continue;
    }
    int& free_slots = t.spec.type == TaskType::Map ? free_maps : free_reduces;
    const bool home = t.tracker == status.tracker || !t.tracker.valid();
    if (home && free_slots > 0) {
      if (jt_->resume_task(p.task)) {
        --free_slots;
        ++slots_used;
        continue;
      }
    }
    if (!home && free_slots > 0 && jt_->now() - p.since > threshold_) {
      // Delayed-kill fallback: restart from scratch wherever there is
      // room, losing the suspended attempt's work.
      OSAP_LOG(Info, "resume-locality")
          << p.task << " waited past threshold; killing for non-local restart";
      jt_->kill_task(p.task);
      --free_slots;
      continue;
    }
    still_pending.push_back(p);
  }
  pending_ = std::move(still_pending);
  return slots_used;
}

}  // namespace osap
