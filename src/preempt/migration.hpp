// Non-local resume via process migration (§V-A).
//
// "As a future improvement, the authors suggest moving the checkpoints …
// over the network; a similar approach could be taken also in our case,
// using process migration facilities such as CRIU."
//
// A suspended task's process image (resident + swapped memory) is dumped
// to the origin node's disk, streamed over the network, and restored on
// the target: the relaunched attempt fast-forwards to the saved progress
// and re-reads its state from the shipped image instead of recomputing.
// Unlike the delayed-kill fallback, no work is lost; unlike waiting, the
// idle target node is put to use. The costs are explicit: a dump write, a
// network transfer, and the restore read.
#pragma once

#include <functional>

#include "hadoop/cluster.hpp"

namespace osap {

class TaskMigrator {
 public:
  explicit TaskMigrator(Cluster& cluster) : cluster_(&cluster) {}

  /// Migrate a SUSPENDED task to `target`. `done(true)` fires once the
  /// image has landed and the task is queued for relaunch on the target;
  /// returns false (synchronously) if the task is not in a migratable
  /// state. The relaunch itself goes through the normal scheduler.
  bool migrate(TaskId task, NodeId target, std::function<void(bool)> done = {});

  [[nodiscard]] Bytes bytes_moved() const noexcept { return bytes_moved_; }
  [[nodiscard]] int migrations() const noexcept { return migrations_; }

 private:
  Cluster* cluster_;
  Bytes bytes_moved_ = 0;
  int migrations_ = 0;
};

}  // namespace osap
