// Preemptor: executes a preemption primitive through the JobTracker API.
//
// Schedulers decide *whom* to evict (see eviction.hpp) and *when*; the
// Preemptor performs the chosen primitive and its matching restore step
// once the high-priority work is done.
#pragma once

#include <memory>

#include "common/ids.hpp"
#include "hadoop/job_tracker.hpp"
#include "preempt/primitive.hpp"
#include "preempt/protocol_audit.hpp"

namespace osap {

class Preemptor {
 public:
  /// Also attaches a ProtocolAuditor to the JobTracker, so any experiment
  /// driving preemption gets the suspend/resume ordering checked for free.
  explicit Preemptor(JobTracker& jt)
      : jt_(&jt), protocol_audit_(std::make_shared<ProtocolAuditor>(jt)) {}

  /// Apply the primitive to the victim task. Returns false if the task
  /// was not in a preemptable state (e.g. it already finished).
  bool preempt(TaskId victim, PreemptPrimitive primitive);

  /// Undo the preemption when resources free up again: resume a suspended
  /// or checkpointed victim. Kill needs no restore (the task is already
  /// back in the pool) and wait never displaced anything.
  bool restore(TaskId victim, PreemptPrimitive primitive);

 private:
  JobTracker* jt_;
  /// Shared so Preemptor copies observe through one state machine.
  std::shared_ptr<ProtocolAuditor> protocol_audit_;
};

}  // namespace osap
