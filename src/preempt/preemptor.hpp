// Preemptor: executes a preemption primitive through the JobTracker API.
//
// Schedulers decide *whom* to evict (see eviction.hpp) and *when*; the
// Preemptor performs the chosen primitive and its matching restore step
// once the high-priority work is done.
#pragma once

#include "common/ids.hpp"
#include "hadoop/job_tracker.hpp"
#include "preempt/primitive.hpp"

namespace osap {

class Preemptor {
 public:
  explicit Preemptor(JobTracker& jt) : jt_(&jt) {}

  /// Apply the primitive to the victim task. Returns false if the task
  /// was not in a preemptable state (e.g. it already finished).
  bool preempt(TaskId victim, PreemptPrimitive primitive);

  /// Undo the preemption when resources free up again: resume a suspended
  /// or checkpointed victim. Kill needs no restore (the task is already
  /// back in the pool) and wait never displaced anything.
  bool restore(TaskId victim, PreemptPrimitive primitive);

 private:
  JobTracker* jt_;
};

}  // namespace osap
