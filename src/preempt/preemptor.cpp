#include "preempt/preemptor.hpp"

#include "common/error.hpp"
#include "trace/context.hpp"
#include "trace/names.hpp"

namespace osap {

const char* to_string(PreemptPrimitive p) noexcept {
  switch (p) {
    case PreemptPrimitive::Wait: return "wait";
    case PreemptPrimitive::Kill: return "kill";
    case PreemptPrimitive::Suspend: return "susp";
    case PreemptPrimitive::NatjamCheckpoint: return "natjam";
  }
  return "?";
}

PreemptPrimitive parse_primitive(std::string_view name) {
  if (name == "wait") return PreemptPrimitive::Wait;
  if (name == "kill") return PreemptPrimitive::Kill;
  if (name == "susp" || name == "suspend") return PreemptPrimitive::Suspend;
  if (name == "natjam" || name == "checkpoint") return PreemptPrimitive::NatjamCheckpoint;
  throw SimError("unknown preemption primitive '" + std::string(name) +
                 "' (expected one of: " + kPrimitiveSpellings + ")");
}

bool Preemptor::preempt(TaskId victim, PreemptPrimitive primitive) {
  trace::Tracer& tracer = jt_->sim().trace().tracer();
  tracer.instant(tracer.track("cluster", "preemptor"), trace::names::kInstPreempt,
                 {{"primitive", to_string(primitive)}, {"task", victim.value()}});
  // A suspend-family order aimed at a lost or blacklisted tracker is a
  // no-op: the parked JVM would die with its node (lost) or never be
  // resumed (blacklisted — the tracker gets no new work, so the freed
  // slot buys nothing). Refuse it so schedulers pick another victim
  // instead of burning their per-heartbeat budget on dead orders. Kill
  // stays allowed — getting work off a failing tracker is the point.
  if (primitive == PreemptPrimitive::Suspend ||
      primitive == PreemptPrimitive::NatjamCheckpoint) {
    const TrackerId tracker = jt_->task(victim).tracker;
    if (tracker.valid() &&
        (jt_->tracker_lost(tracker) || jt_->tracker_blacklisted(tracker))) {
      tracer.instant(tracer.track("cluster", "preemptor"), trace::names::kInstPreemptRefused,
                     {{"primitive", to_string(primitive)}, {"task", victim.value()}});
      return false;
    }
  }
  switch (primitive) {
    case PreemptPrimitive::Wait:
      return true;  // deliberately do nothing
    case PreemptPrimitive::Kill:
      return jt_->kill_task(victim);
    case PreemptPrimitive::Suspend:
      return jt_->suspend_task(victim);
    case PreemptPrimitive::NatjamCheckpoint:
      return jt_->checkpoint_suspend_task(victim);
  }
  return false;
}

bool Preemptor::restore(TaskId victim, PreemptPrimitive primitive) {
  trace::Tracer& tracer = jt_->sim().trace().tracer();
  tracer.instant(tracer.track("cluster", "preemptor"), trace::names::kInstRestore,
                 {{"primitive", to_string(primitive)}, {"task", victim.value()}});
  switch (primitive) {
    case PreemptPrimitive::Wait:
    case PreemptPrimitive::Kill:
      return true;  // rescheduling happens through the normal task pool
    case PreemptPrimitive::Suspend:
    case PreemptPrimitive::NatjamCheckpoint: {
      const Task& t = jt_->task(victim);
      if (t.done()) return true;  // completed before the restore
      if (t.state == TaskState::MustSuspend) {
        // Restore raced the suspension command; the resume will be
        // rejected until the ack arrives. Callers retry on heartbeat.
        return false;
      }
      return jt_->resume_task(victim);
    }
  }
  return false;
}

}  // namespace osap
