// The preemption primitives under study (§II, §IV).
//
//   Wait     — do nothing; the high-priority task waits for a free slot.
//              No wasted work, worst latency.
//   Kill     — kill the victim attempt (plus a cleanup attempt); it
//              reschedules from scratch. Best-ish latency, all work lost.
//   Suspend  — this paper's contribution: SIGTSTP the victim's process;
//              its state stays in memory (or is paged out lazily by the
//              OS, only if needed) and SIGCONT restores it.
//   NatjamCheckpoint — application-level suspension (Cho et al. [9]):
//              always serialize state to disk, kill the JVM, fast-forward
//              on resume.
#pragma once

#include <string_view>

namespace osap {

enum class PreemptPrimitive { Wait, Kill, Suspend, NatjamCheckpoint };

/// Every enumerator, for exhaustive iteration (round-trip tests, CLI
/// usage strings). Extending the enum without extending this list trips
/// the exhaustive round-trip test in tests/preempt/eviction_test.cpp.
inline constexpr PreemptPrimitive kAllPrimitives[] = {
    PreemptPrimitive::Wait,
    PreemptPrimitive::Kill,
    PreemptPrimitive::Suspend,
    PreemptPrimitive::NatjamCheckpoint,
};

/// The accepted spellings, embedded in every parse error so osap and
/// osapd report the same actionable message for a typoed axis value.
inline constexpr const char* kPrimitiveSpellings =
    "wait, kill, susp, suspend, natjam, checkpoint";

const char* to_string(PreemptPrimitive p) noexcept;

/// Parse any spelling in kPrimitiveSpellings; throws SimError naming the
/// offending value and the full list otherwise.
PreemptPrimitive parse_primitive(std::string_view name);

}  // namespace osap
