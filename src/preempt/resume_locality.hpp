// Resume locality (§V-A).
//
// A suspended process can only be resumed on the machine it was suspended
// on. If that machine stays busy while others idle, waiting forever wastes
// cluster capacity — so, mirroring delay scheduling for data locality, a
// resume request waits up to a threshold for a home-node slot and then
// falls back to kill + reschedule elsewhere ("the suspend is effectively
// analogous to a delayed kill").
#pragma once

#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "hadoop/job_tracker.hpp"

namespace osap {

class ResumeLocalityPolicy {
 public:
  ResumeLocalityPolicy(JobTracker& jt, Duration threshold)
      : jt_(&jt), threshold_(threshold) {}

  /// Ask for `task` (currently SUSPENDED) to be resumed when capacity
  /// allows.
  void request_resume(TaskId task);

  /// Drive pending requests from the scheduler's heartbeat handler.
  /// Returns the number of map slots consumed on this tracker by local
  /// resumes (so the caller can shrink its assignment budget).
  int on_heartbeat(const TrackerStatus& status);

  [[nodiscard]] std::size_t pending() const noexcept { return pending_.size(); }
  [[nodiscard]] Duration threshold() const noexcept { return threshold_; }

 private:
  struct Pending {
    TaskId task;
    SimTime since;
  };
  JobTracker* jt_;
  Duration threshold_;
  std::vector<Pending> pending_;
};

}  // namespace osap
