#include "preempt/eviction.hpp"

#include <algorithm>

namespace osap {

const char* to_string(EvictionPolicy p) noexcept {
  switch (p) {
    case EvictionPolicy::MostProgress: return "most-progress";
    case EvictionPolicy::LeastProgress: return "least-progress";
    case EvictionPolicy::SmallestMemory: return "smallest-memory";
    case EvictionPolicy::LastLaunched: return "last-launched";
  }
  return "?";
}

TaskId pick_victim(EvictionPolicy policy, const std::vector<EvictionCandidate>& candidates) {
  if (candidates.empty()) return TaskId{};
  const EvictionCandidate* best = &candidates.front();
  auto better = [policy](const EvictionCandidate& a, const EvictionCandidate& b) {
    switch (policy) {
      case EvictionPolicy::MostProgress:
        if (a.progress != b.progress) return a.progress > b.progress;
        break;
      case EvictionPolicy::LeastProgress:
        if (a.progress != b.progress) return a.progress < b.progress;
        break;
      case EvictionPolicy::SmallestMemory:
        if (a.memory != b.memory) return a.memory < b.memory;
        break;
      case EvictionPolicy::LastLaunched:
        if (a.launched_at != b.launched_at) return a.launched_at > b.launched_at;
        break;
    }
    return a.task < b.task;
  };
  for (const EvictionCandidate& c : candidates) {
    if (better(c, *best)) best = &c;
  }
  return best->task;
}

std::vector<EvictionCandidate> collect_candidates(const JobTracker& jt, JobId job) {
  std::vector<EvictionCandidate> out;
  // Candidates come from the job's live index (ascending task id, like
  // the old full walk); the Running filter still applies within it.
  for (TaskId tid : jt.job(job).live) {
    const Task& t = jt.task(tid);
    if (t.state != TaskState::Running) continue;
    EvictionCandidate c;
    c.task = tid;
    c.progress = t.progress;
    c.memory = t.spec.framework_memory + t.spec.state_memory;
    c.launched_at = t.first_launched_at;
    out.push_back(c);
  }
  return out;
}

}  // namespace osap
