// Protocol auditor for the preemption state machine (§III-B).
//
// The paper's suspension protocol is strictly ordered: MUST_SUSPEND is
// acknowledged as SUSPENDED before MUST_RESUME may be issued, and each
// request crosses the heartbeat exactly once. This auditor observes the
// JobTracker's event stream and flags any transition the protocol does
// not allow — a resume acknowledged before its request, a second suspend
// for an already-parked task, a launch of a task the tracker still holds.
//
// Violations are buffered as they happen and flushed by the simulation's
// next audit sweep, so a protocol bug surfaces within `stride` events of
// the offending transition.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "audit/audit.hpp"
#include "common/ids.hpp"

namespace osap {

class JobTracker;
class Simulation;

class ProtocolAuditor final : public InvariantAuditor {
 public:
  /// Hooks into `jt`'s event stream and registers with its simulation's
  /// audit registry. The observer state is shared with the event hook, so
  /// destroying the auditor before the JobTracker is safe.
  explicit ProtocolAuditor(JobTracker& jt);
  ~ProtocolAuditor() override;
  ProtocolAuditor(const ProtocolAuditor&) = delete;
  ProtocolAuditor& operator=(const ProtocolAuditor&) = delete;

  [[nodiscard]] std::string audit_label() const override { return "preempt-protocol"; }
  void audit(std::vector<std::string>& violations) const override;
  void dump(std::ostream& os) const override;

 private:
  /// Where a task stands in the suspend/resume round trips.
  enum class Phase { None, SuspendRequested, Suspended, ResumeRequested };

  struct Observer;

  Simulation* sim_;
  std::shared_ptr<Observer> obs_;
};

}  // namespace osap
