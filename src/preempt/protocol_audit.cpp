#include "preempt/protocol_audit.hpp"

#include <sstream>

#include "common/det.hpp"
#include "hadoop/events.hpp"
#include "hadoop/job_tracker.hpp"

namespace osap {

struct ProtocolAuditor::Observer {
  std::unordered_map<TaskId, Phase> phase_by_task;
  /// Node of the attempt whose suspend round trip is in flight: a kill
  /// aimed at a *different* node reaps a speculative copy and must not
  /// void the original's round trip.
  std::unordered_map<TaskId, NodeId> suspend_node_by_task;
  /// Buffered until the next audit sweep.
  std::vector<std::string> violations;

  [[nodiscard]] static const char* phase_name(Phase p) noexcept {
    switch (p) {
      case Phase::None: return "none";
      case Phase::SuspendRequested: return "suspend-requested";
      case Phase::Suspended: return "suspended";
      case Phase::ResumeRequested: return "resume-requested";
    }
    return "?";
  }

  void on_event(const ClusterEvent& e) {
    if (!e.task.valid()) return;
    Phase& phase = phase_by_task[e.task];
    const Phase before = phase;
    const auto illegal = [&] {
      std::ostringstream os;
      os << e.task << ": " << to_string(e.type) << " at t=" << e.time
         << " while in phase " << phase_name(before);
      violations.push_back(os.str());
    };
    switch (e.type) {
      case ClusterEventType::TaskSuspendRequested:
        if (phase != Phase::None) illegal();
        phase = Phase::SuspendRequested;
        suspend_node_by_task[e.task] = e.node;
        break;
      case ClusterEventType::TaskSuspended:
        if (phase != Phase::SuspendRequested) illegal();
        phase = Phase::Suspended;
        break;
      case ClusterEventType::TaskResumeRequested:
        if (phase != Phase::Suspended) illegal();
        phase = Phase::ResumeRequested;
        break;
      case ClusterEventType::TaskResumed:
        // Resumed straight from Suspended covers SIGCONT sent outside the
        // JobTracker API (the kernel reports it either way).
        if (phase != Phase::ResumeRequested && phase != Phase::Suspended) illegal();
        phase = Phase::None;
        break;
      case ClusterEventType::TaskLaunched:
        // A checkpointed task relaunches as its resume (ResumeRequested).
        if (phase != Phase::None && phase != Phase::ResumeRequested) illegal();
        phase = Phase::None;
        break;
      case ClusterEventType::TaskKillRequested: {
        // A kill request carries the node of the attempt it reaps. One
        // aimed at a different node than the in-flight suspension takes
        // down a speculative copy only — the original's round trip stays
        // live and a later resume is legal.
        const auto it = suspend_node_by_task.find(e.task);
        if (it != suspend_node_by_task.end() && e.node.valid() && it->second.valid() &&
            e.node != it->second) {
          break;
        }
        phase = Phase::None;
        break;
      }
      case ClusterEventType::TaskKilled:
      case ClusterEventType::TaskSucceeded:
      case ClusterEventType::TaskFailed:
      case ClusterEventType::TaskLost:
        // A kill, completion, or tracker loss may land in any phase and
        // voids the round trip in flight (a suspended attempt dies with
        // its node, so its next launch starts a fresh protocol).
        phase = Phase::None;
        break;
      // Job- and tracker-level kinds don't advance a task's
      // suspend/resume round trip; listed explicitly (EVT-1) so a new
      // kind must declare its protocol effect here.
      case ClusterEventType::JobSubmitted:
      case ClusterEventType::JobCompleted:
      case ClusterEventType::JobFailed:
      case ClusterEventType::MapOutputLost:
      case ClusterEventType::TrackerLost:
      case ClusterEventType::TrackerBlacklisted:
      case ClusterEventType::TaskSpeculated:
      case ClusterEventType::SpeculationWon:
      case ClusterEventType::SpeculationLost:
      case ClusterEventType::SpeculationKilled:
      case ClusterEventType::SpeculationPromoted:
      case ClusterEventType::NodeRevocationWarned:
        break;
    }
  }
};

ProtocolAuditor::ProtocolAuditor(JobTracker& jt)
    : sim_(&jt.sim()), obs_(std::make_shared<Observer>()) {
  sim_->audits().add(this);
  // The hook lives as long as the JobTracker; the shared observer keeps it
  // valid even if this auditor is destroyed first.
  jt.add_event_hook([obs = obs_](const ClusterEvent& e) { obs->on_event(e); });
}

ProtocolAuditor::~ProtocolAuditor() { sim_->audits().remove(this); }

void ProtocolAuditor::audit(std::vector<std::string>& violations) const {
  for (std::string& v : obs_->violations) violations.push_back(std::move(v));
  obs_->violations.clear();
}

void ProtocolAuditor::dump(std::ostream& os) const {
  std::size_t in_flight = 0;
  const std::vector<TaskId> tids = det::sorted_keys(obs_->phase_by_task);
  for (TaskId tid : tids) {
    if (obs_->phase_by_task.at(tid) != Phase::None) ++in_flight;
  }
  os << obs_->phase_by_task.size() << " tasks observed, " << in_flight
     << " with a suspend/resume round trip in flight\n";
  for (TaskId tid : tids) {
    const Phase phase = obs_->phase_by_task.at(tid);
    if (phase == Phase::None) continue;
    os << "  " << tid << ": " << Observer::phase_name(phase) << '\n';
  }
}

}  // namespace osap
