// Task eviction policies (§V-A).
//
// The paper deliberately separates the preemption *primitive* from the
// eviction *policy*; these are the policies it discusses:
//
//   MostProgress   — Natjam's SRT intuition [9]: suspend the task closest
//                    to completion to keep a job's tasks bunched.
//   LeastProgress  — suspend the freshest task (least work at risk if the
//                    suspend degenerates into a kill).
//   SmallestMemory — suspend the task with the smallest footprint: the
//                    paper's own suggestion, since suspend overhead is
//                    roughly linear in bytes swapped (Fig. 4).
//   LastLaunched   — youngest attempt first (Hadoop FAIR's default).
#pragma once

#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "hadoop/job_tracker.hpp"

namespace osap {

enum class EvictionPolicy { MostProgress, LeastProgress, SmallestMemory, LastLaunched };

const char* to_string(EvictionPolicy p) noexcept;

struct EvictionCandidate {
  TaskId task;
  double progress = 0;
  Bytes memory = 0;
  SimTime launched_at = 0;
};

/// Choose the victim among candidates; returns an invalid id if empty.
/// Ties break on the lower TaskId for determinism.
TaskId pick_victim(EvictionPolicy policy, const std::vector<EvictionCandidate>& candidates);

/// Collect the RUNNING tasks of `job` as eviction candidates (memory =
/// framework + state footprint from the spec; progress from the last
/// heartbeat).
std::vector<EvictionCandidate> collect_candidates(const JobTracker& jt, JobId job);

}  // namespace osap
