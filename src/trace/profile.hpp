// Hot-path profiler: attributes simulator cost per layer without reading
// a wall clock (DET-2). Cost is measured in deterministic *work units* —
// calls and per-call work (queue depth settled, bytes reclaimed, reports
// assembled) — which is exactly what decides real CPU time in a
// single-threaded discrete-event simulator, and unlike nanosecond timers
// it is bit-reproducible across machines. This is the instrument the
// ROADMAP's audit-sweep-cost question needed.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>

namespace osap::trace {

/// The dispatch paths worth attributing. Keep in sync with
/// HotPathProfiler::name().
enum class HotPath : std::uint8_t {
  EventDispatch,      ///< Simulation::step — work = pending queue depth.
  FluidUpdate,        ///< FluidResource::update — work = active consumers.
  NetDelivery,        ///< Network::send control messages.
  VmmCommit,          ///< Vmm::commit — work = bytes committed.
  VmmReclaim,         ///< Vmm reclaim slow path — work = bytes wanted.
  HeartbeatAssembly,  ///< TaskTracker::send_status — work = reports.
  HeartbeatHandle,    ///< JobTracker::on_heartbeat — work = actions sent.
  SchedulerAssign,    ///< Scheduler assignment loop — work = launches.
  SpeculationScan,    ///< Straggler detector sweep — work = candidates.
  AuditSweep,         ///< Periodic invariant sweep — work = auditors run.
  kCount,
};

class HotPathProfiler {
 public:
  struct Stats {
    std::uint64_t calls = 0;
    std::uint64_t work = 0;
  };

  void add(HotPath p, std::uint64_t work = 1) noexcept {
    Stats& s = stats_[static_cast<std::size_t>(p)];
    ++s.calls;
    s.work += work;
  }

  [[nodiscard]] Stats stats(HotPath p) const noexcept {
    return stats_[static_cast<std::size_t>(p)];
  }

  [[nodiscard]] static const char* name(HotPath p) noexcept;

  /// {"EventDispatch":{"calls":N,"work":N}, ...} in enum order.
  void write_json(std::ostream& os) const;

 private:
  std::array<Stats, static_cast<std::size_t>(HotPath::kCount)> stats_{};
};

}  // namespace osap::trace
