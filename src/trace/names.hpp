// The central string-identifier registry (lint rule SID-1).
//
// Every dotted counter/gauge name and every trace span/instant name the
// simulator emits is declared here, once. osap-lint parses this header
// (--names=src/trace/names.hpp) and flags any identifier used at a
// counter()/gauge()/value()/begin()/instant()/async_*() call site that
// is not declared — including edit-distance-1 near-misses, the typo
// class that silently forks a metric into two series and breaks every
// A/B comparison derived from it (the HFSP scheduler study reads these
// exact names).
//
// Two kinds of entry:
//   * full names ("jobtracker.heartbeats_handled") — global series;
//   * suffixes, value starting with '.' (".kernel.spawned") — per-node
//     series composed as <node-name> + suffix at attach time. A used
//     name matches a suffix entry by its tail.
//
// Keep the values byte-identical when refactoring: they feed the
// counters JSON, the Chrome trace, and golden digests.
#pragma once

namespace osap::trace::names {

// --- global counters ------------------------------------------------------

// Fault injection (src/fault/injector.cpp).
inline constexpr const char* kFaultNodeCrashes = "fault.node_crashes";
inline constexpr const char* kFaultTrackerHangs = "fault.tracker_hangs";
inline constexpr const char* kFaultCheckpointLosses = "fault.checkpoint_losses";
inline constexpr const char* kFaultMessagesDropped = "fault.messages_dropped";
inline constexpr const char* kFaultMessagesDelayed = "fault.messages_delayed";
inline constexpr const char* kFaultRevocationWarnings = "fault.revocation_warnings";
inline constexpr const char* kFaultRevocations = "fault.revocations";

// JobTracker control plane (src/hadoop/job_tracker.cpp).
inline constexpr const char* kJtHeartbeatsHandled = "jobtracker.heartbeats_handled";
inline constexpr const char* kJtActionsSent = "jobtracker.actions_sent";
inline constexpr const char* kJtOobMapsDonePushes = "jobtracker.oob_maps_done_pushes";
inline constexpr const char* kJtSuspendRequests = "jobtracker.suspend_requests";
inline constexpr const char* kJtResumeRequests = "jobtracker.resume_requests";
inline constexpr const char* kJtTrackersLost = "jobtracker.trackers_lost";
inline constexpr const char* kJtTrackerReinits = "jobtracker.tracker_reinits";
inline constexpr const char* kJtTrackersBlacklisted = "jobtracker.trackers_blacklisted";
inline constexpr const char* kJtTasksLost = "jobtracker.tasks_lost";
inline constexpr const char* kJtTaskFailures = "jobtracker.task_failures";
inline constexpr const char* kJtMapOutputsLost = "jobtracker.map_outputs_lost";
inline constexpr const char* kJtCheckpointsLost = "jobtracker.checkpoints_lost";
inline constexpr const char* kJtJobsFailed = "jobtracker.jobs_failed";
inline constexpr const char* kJtTrackersDraining = "jobtracker.trackers_draining";
inline constexpr const char* kJtCheckpointsEvacuated = "jobtracker.checkpoints_evacuated";

// Scheduling and speculation.
inline constexpr const char* kSchedAssignments = "scheduler.assignments";
inline constexpr const char* kSpecLaunched = "speculation.launched";
inline constexpr const char* kSpecWon = "speculation.won";
inline constexpr const char* kSpecLost = "speculation.lost";
inline constexpr const char* kSpecKilled = "speculation.killed";

// Preemption-policy engine and gang rotator (src/policy). Decisions are
// counted per outcome so a matrix cell's counters show which mechanism
// actually fired for each queue (docs/POLICY.md).
inline constexpr const char* kPolicyDecisions = "policy.decisions";
inline constexpr const char* kPolicyWaits = "policy.wait_decisions";
inline constexpr const char* kPolicyKills = "policy.kill_decisions";
inline constexpr const char* kPolicySuspends = "policy.suspend_decisions";
inline constexpr const char* kPolicyCheckpoints = "policy.checkpoint_decisions";
inline constexpr const char* kPolicyRequeues = "policy.requeue_decisions";
inline constexpr const char* kPolicySwapDemotions = "policy.swap_demotions";
inline constexpr const char* kPolicyOrdersRefused = "policy.orders_refused";
inline constexpr const char* kPolicyGangRotations = "policy.gang_rotations";
inline constexpr const char* kPolicyGangSuspends = "policy.gang_suspends";
inline constexpr const char* kPolicyGangResumes = "policy.gang_resumes";
inline constexpr const char* kPolicyGangAdmissionRefused = "policy.gang_admission_refused";

// Node-revocation subsystem (src/revoke; docs/REVOKE.md). Warning
// reactions are counted per mechanism so a frontier cell's counters show
// how the drain of each doomed node actually resolved.
inline constexpr const char* kRevokeWarningsHandled = "revoke.warnings_handled";
inline constexpr const char* kRevokeWarningsLate = "revoke.warnings_late";
inline constexpr const char* kRevokeDrainCheckpoints = "revoke.drain_checkpoints";
inline constexpr const char* kRevokeDrainMigrations = "revoke.drain_migrations";
inline constexpr const char* kRevokeDrainKills = "revoke.drain_kills";
inline constexpr const char* kRevokeEvacuations = "revoke.evacuations";
inline constexpr const char* kRevokeMigrationsDone = "revoke.migrations_done";
inline constexpr const char* kRevokeBlocksSteered = "revoke.blocks_steered";

// osapd sweep harness (src/osapd/sweep.cpp). These count harness-side
// work — cache traffic, worker lifecycle — not simulated events, and
// surface in the matrix summary's "counters" block.
inline constexpr const char* kOsapdCellsTotal = "osapd.cells_total";
inline constexpr const char* kOsapdCellsCompleted = "osapd.cells_completed";
inline constexpr const char* kOsapdCellsFailed = "osapd.cells_failed";
inline constexpr const char* kOsapdCacheHits = "osapd.cache_hits";
inline constexpr const char* kOsapdCacheMisses = "osapd.cache_misses";
inline constexpr const char* kOsapdCacheStores = "osapd.cache_stores";
inline constexpr const char* kOsapdCacheQuarantined = "osapd.cache_quarantined";
inline constexpr const char* kOsapdWorkerDeaths = "osapd.worker_deaths";
inline constexpr const char* kOsapdCellsRescheduled = "osapd.cells_rescheduled";
inline constexpr const char* kOsapdRssAborts = "osapd.rss_aborts";
inline constexpr const char* kOsapdCancelled = "osapd.cancelled";

// --- global gauges --------------------------------------------------------

inline constexpr const char* kClusterJobsRunning = "cluster.jobs_running";

// --- per-node counter suffixes (<node-name> + suffix) ---------------------

// Virtual memory manager (src/os/vmm.cpp).
inline constexpr const char* kVmmPagedOutBytes = ".paged_out_bytes";
inline constexpr const char* kVmmPagedInBytes = ".paged_in_bytes";
inline constexpr const char* kVmmSwapDiscardedBytes = ".swap_discarded_bytes";
inline constexpr const char* kVmmSwapOutIoBytes = ".swap_out_io_bytes";
inline constexpr const char* kVmmSwapInIoBytes = ".swap_in_io_bytes";

// Kernel (src/os/kernel.cpp).
inline constexpr const char* kKernelSpawned = ".kernel.spawned";
inline constexpr const char* kKernelSignals = ".kernel.signals";
inline constexpr const char* kKernelOomKills = ".kernel.oom_kills";

// TaskTracker (src/hadoop/task_tracker.cpp).
inline constexpr const char* kTtHeartbeatsSent = ".tasktracker.heartbeats_sent";
inline constexpr const char* kTtOobHeartbeats = ".tasktracker.oob_heartbeats";
inline constexpr const char* kTtActionsApplied = ".tasktracker.actions_applied";

// --- async span names (TRC-1 pairs these project-wide) --------------------

inline constexpr const char* kSpanJob = "job";
inline constexpr const char* kSpanTask = "task";
inline constexpr const char* kSpanSuspend = "suspend";
inline constexpr const char* kSpanResume = "resume";
inline constexpr const char* kSpanMapsDoneDelivery = "maps_done_delivery";
inline constexpr const char* kSpanHeartbeat = "heartbeat";
inline constexpr const char* kSpanOobHeartbeat = "oob_heartbeat";
inline constexpr const char* kSpanSigtstpWindow = "sigtstp_window";
inline constexpr const char* kSpanStopped = "stopped";
inline constexpr const char* kSpanSwapIn = "swap_in";
inline constexpr const char* kSpanSwapOut = "swap_out";

// --- instant event names --------------------------------------------------

inline constexpr const char* kInstSpawn = "spawn";
inline constexpr const char* kInstExit = "exit";
inline constexpr const char* kInstOomKill = "oom_kill";
inline constexpr const char* kInstNodeCrash = "node_crash";
inline constexpr const char* kInstTrackerHang = "tracker_hang";
inline constexpr const char* kInstCheckpointLoss = "checkpoint_loss";
inline constexpr const char* kInstPreempt = "preempt";
inline constexpr const char* kInstPreemptRefused = "preempt_refused";
inline constexpr const char* kInstRestore = "restore";
inline constexpr const char* kInstGangRotate = "gang_rotate";
inline constexpr const char* kInstResumeCheckpointed = "resume_checkpointed";
inline constexpr const char* kInstSpeculationDeadHeat = "speculation_dead_heat";
inline constexpr const char* kInstSpeculationPromoted = "speculation_promoted";
inline constexpr const char* kInstSpeculate = "speculate";
inline constexpr const char* kInstAssign = "assign";
inline constexpr const char* kInstTrackerLost = "tracker_lost";
inline constexpr const char* kInstTrackerBlacklisted = "tracker_blacklisted";
inline constexpr const char* kInstTrackerReinit = "tracker_reinit";
inline constexpr const char* kInstRevocationWarning = "revocation_warning";
inline constexpr const char* kInstNodeRevoked = "node_revoked";
inline constexpr const char* kInstCheckpointEvacuated = "checkpoint_evacuated";

}  // namespace osap::trace::names
