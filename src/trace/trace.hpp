// Deterministic span/instant event tracer with a Chrome trace-event JSON
// sink (load the output in Perfetto or chrome://tracing).
//
// Design constraints, in order:
//
//  1. *Determinism.* Timestamps come exclusively from the simulation clock
//     injected via set_clock(); the tracer never reads a wall clock (the
//     osap-lint DET-2 rule now watches this directory to keep it that way).
//     Recording a trace must not perturb the simulated event stream: the
//     tracer only observes, it never schedules, so the event-trace digest
//     is bit-identical with tracing enabled or disabled (enforced by
//     tests/determinism).
//  2. *Cheap when off.* Every recording call starts with a single branch on
//     `enabled_` and returns before touching its arguments' heap state.
//     Track registration stays live while disabled so subsystems can cache
//     TrackIds at construction regardless of configuration.
//  3. *Cross-compiler stable output.* Timestamps are quantized to integer
//     microseconds and argument values carry strings / integers only (no
//     raw doubles), so the golden-file test passes on GCC and Clang alike.
//
// Track model: a track is a (process, thread) pair — process is the
// node/top-level component ("node0", "cluster"), thread the subsystem
// within it ("kernel", "vmm", "tasktracker", ...). Each unique process
// name gets a pid, each subsystem a tid within it, and metadata events
// name both so Perfetto shows one labelled lane per subsystem.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/time.hpp"

namespace osap::trace {

/// Index into the tracer's track table.
using TrackId = std::uint32_t;

/// A pre-rendered JSON scalar. Deliberately no double constructor: trace
/// arguments must be integers or strings so golden files are byte-stable
/// across compilers; quantize (e.g. to bytes or microseconds) at the call
/// site instead.
class TraceValue {
 public:
  TraceValue(const char* s);
  TraceValue(std::string s);
  TraceValue(std::uint64_t v);
  TraceValue(int v);

  [[nodiscard]] const std::string& json() const noexcept { return json_; }

 private:
  std::string json_;
};

/// Ordered key/value argument list attached to an event.
using TraceArgs = std::vector<std::pair<std::string, TraceValue>>;

/// One recorded event. `phase` follows the Chrome trace-event format:
/// B/E sync span, i instant, b/e async span (matched by track+name+id).
struct TraceEvent {
  SimTime ts = 0;
  TrackId track = 0;
  char phase = 'i';
  std::string name;
  std::uint64_t id = 0;  ///< async correlation id; unused for B/E/i.
  TraceArgs args;
};

class Tracer {
 public:
  /// Install the simulated-time source. Must outlive the tracer's use.
  void set_clock(std::function<SimTime()> clock) { clock_ = std::move(clock); }

  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Register (or look up) the track for a (process, thread) pair.
  /// Deduplicating and callable while disabled, so constructors can cache
  /// the id unconditionally.
  TrackId track(const std::string& process, const std::string& thread);

  /// Synchronous span: begin/end nest per track.
  void begin(TrackId t, const char* name, TraceArgs args = {});
  void end(TrackId t);

  /// Point event.
  void instant(TrackId t, const char* name, TraceArgs args = {});

  /// Asynchronous span: begin and end may be separated by arbitrary sim
  /// time and other events; matched by (track category, name, id).
  void async_begin(TrackId t, const char* name, std::uint64_t id, TraceArgs args = {});
  void async_end(TrackId t, const char* name, std::uint64_t id, TraceArgs args = {});

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept { return events_; }

  /// Test helper: sim-time duration of the first matched async span with
  /// this name and id, or a negative value when unmatched.
  [[nodiscard]] double async_duration(const std::string& name, std::uint64_t id) const;

  /// Serialize everything as Chrome trace-event JSON.
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;

 private:
  struct Track {
    std::string process;
    std::string thread;
    int pid = 0;
    int tid = 0;
  };

  [[nodiscard]] SimTime now() const { return clock_ ? clock_() : 0.0; }
  void push(TrackId t, char phase, const char* name, std::uint64_t id, TraceArgs args);

  bool enabled_ = false;
  std::function<SimTime()> clock_;
  std::vector<Track> tracks_;
  std::vector<TraceEvent> events_;
};

}  // namespace osap::trace
