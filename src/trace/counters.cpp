#include "trace/counters.hpp"

#include <limits>
#include <ostream>

namespace osap::trace {

std::uint64_t CounterRegistry::value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

void CounterRegistry::write_json(std::ostream& os) const {
  os << "\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\n  \"" << name << "\":" << c.value();
  }
  os << (first ? "}" : "\n}") << ",\n\"gauges\":{";
  first = true;
  const auto prec = os.precision(std::numeric_limits<double>::max_digits10);
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\n  \"" << name << "\":" << g.value();
  }
  os.precision(prec);
  os << (first ? "}" : "\n}");
}

}  // namespace osap::trace
