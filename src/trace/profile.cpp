#include "trace/profile.hpp"

#include <ostream>

namespace osap::trace {

const char* HotPathProfiler::name(HotPath p) noexcept {
  switch (p) {
    case HotPath::EventDispatch:
      return "EventDispatch";
    case HotPath::FluidUpdate:
      return "FluidUpdate";
    case HotPath::NetDelivery:
      return "NetDelivery";
    case HotPath::VmmCommit:
      return "VmmCommit";
    case HotPath::VmmReclaim:
      return "VmmReclaim";
    case HotPath::HeartbeatAssembly:
      return "HeartbeatAssembly";
    case HotPath::HeartbeatHandle:
      return "HeartbeatHandle";
    case HotPath::SchedulerAssign:
      return "SchedulerAssign";
    case HotPath::SpeculationScan:
      return "SpeculationScan";
    case HotPath::AuditSweep:
      return "AuditSweep";
    case HotPath::kCount:
      break;
  }
  return "?";
}

void HotPathProfiler::write_json(std::ostream& os) const {
  os << "\"hot_paths\":{";
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    if (i != 0) os << ",";
    os << "\n  \"" << name(static_cast<HotPath>(i)) << "\":{\"calls\":" << stats_[i].calls
       << ",\"work\":" << stats_[i].work << "}";
  }
  os << "\n}";
}

}  // namespace osap::trace
