// Counter registry: named monotonic counters and gauges with dotted
// per-subsystem namespaces ("node0.vmm.paged_out_bytes"), dumped as
// machine-readable JSON — the start of the BENCH_*.json trajectory.
//
// Counters are always on: an increment is one integer add, and keeping
// them unconditional means conservation laws (pages out vs in) can be
// cross-checked by the invariant auditors in every run, not just traced
// ones. Storage is std::map so iteration (and the JSON dump) is sorted
// and references returned by counter()/gauge() stay stable forever.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace osap::trace {

/// Monotonically increasing event/volume counter.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value (queue depths, headline metrics).
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0;
};

class CounterRegistry {
 public:
  /// Find-or-create by fully qualified dotted name.
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }

  /// Read a counter without creating it (0 when absent) — for tests and
  /// cross-subsystem checks.
  [[nodiscard]] std::uint64_t value(const std::string& name) const;

  [[nodiscard]] const std::map<std::string, Counter>& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const noexcept { return gauges_; }

  /// {"counters": {...sorted...}, "gauges": {...sorted...}}
  void write_json(std::ostream& os) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
};

}  // namespace osap::trace
