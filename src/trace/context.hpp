// TraceContext bundles the three observability instruments — tracer,
// counter registry, hot-path profiler — behind one handle owned by the
// Simulation, so every layer reaches them through `sim.trace()` without
// threading three references around.
#pragma once

#include <string>

#include "trace/counters.hpp"
#include "trace/profile.hpp"
#include "trace/trace.hpp"

namespace osap::trace {

struct TraceConfig {
  /// Record trace events (counters and the profiler are always on —
  /// they are plain integer adds).
  bool enabled = false;
  /// Write the Chrome trace-event JSON here at end of run ("" = don't).
  /// A non-empty path implies `enabled`.
  std::string trace_file;
  /// Write the counters/profile/audit-cost JSON here at end of run.
  std::string counters_file;
};

class TraceContext {
 public:
  void configure(const TraceConfig& cfg) {
    cfg_ = cfg;
    tracer_.set_enabled(cfg.enabled || !cfg.trace_file.empty());
  }

  [[nodiscard]] const TraceConfig& config() const noexcept { return cfg_; }

  Tracer& tracer() noexcept { return tracer_; }
  [[nodiscard]] const Tracer& tracer() const noexcept { return tracer_; }

  CounterRegistry& counters() noexcept { return counters_; }
  [[nodiscard]] const CounterRegistry& counters() const noexcept { return counters_; }

  HotPathProfiler& profiler() noexcept { return profiler_; }
  [[nodiscard]] const HotPathProfiler& profiler() const noexcept { return profiler_; }

 private:
  TraceConfig cfg_;
  Tracer tracer_;
  CounterRegistry counters_;
  HotPathProfiler profiler_;
};

}  // namespace osap::trace
