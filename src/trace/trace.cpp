#include "trace/trace.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace osap::trace {

namespace {

/// JSON string literal with minimal escaping (quote, backslash, control
/// characters). Track and event names are ASCII identifiers in practice,
/// but task names flow in from user-facing job specs.
std::string quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

/// Sim seconds -> integer microseconds, the unit of the `ts` field.
/// llround keeps the quantization identical across compilers.
long long to_us(SimTime ts) { return std::llround(ts * 1e6); }

}  // namespace

TraceValue::TraceValue(const char* s) : json_(quote(s)) {}
TraceValue::TraceValue(std::string s) : json_(quote(s)) {}
TraceValue::TraceValue(std::uint64_t v) : json_(std::to_string(v)) {}
TraceValue::TraceValue(int v) : json_(std::to_string(v)) {}

TrackId Tracer::track(const std::string& process, const std::string& thread) {
  for (TrackId i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i].process == process && tracks_[i].thread == thread) return i;
  }
  Track t;
  t.process = process;
  t.thread = thread;
  // pid: order of first appearance of the process name; tid: per-process
  // registration order. Both 1-based — Perfetto hides pid/tid 0 quirks.
  int max_tid = 0;
  for (const Track& existing : tracks_) {
    if (existing.process == process) {
      t.pid = existing.pid;
      max_tid = std::max(max_tid, existing.tid);
    }
  }
  if (t.pid == 0) {
    int max_pid = 0;
    for (const Track& existing : tracks_) max_pid = std::max(max_pid, existing.pid);
    t.pid = max_pid + 1;
  }
  t.tid = max_tid + 1;
  tracks_.push_back(std::move(t));
  return static_cast<TrackId>(tracks_.size() - 1);
}

void Tracer::push(TrackId t, char phase, const char* name, std::uint64_t id, TraceArgs args) {
  OSAP_CHECK_MSG(t < tracks_.size(), "trace event on unregistered track " << t);
  TraceEvent e;
  e.ts = now();
  e.track = t;
  e.phase = phase;
  e.name = name;
  e.id = id;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void Tracer::begin(TrackId t, const char* name, TraceArgs args) {
  if (!enabled_) return;
  push(t, 'B', name, 0, std::move(args));
}

void Tracer::end(TrackId t) {
  if (!enabled_) return;
  push(t, 'E', "", 0, {});
}

void Tracer::instant(TrackId t, const char* name, TraceArgs args) {
  if (!enabled_) return;
  push(t, 'i', name, 0, std::move(args));
}

void Tracer::async_begin(TrackId t, const char* name, std::uint64_t id, TraceArgs args) {
  if (!enabled_) return;
  push(t, 'b', name, id, std::move(args));
}

void Tracer::async_end(TrackId t, const char* name, std::uint64_t id, TraceArgs args) {
  if (!enabled_) return;
  push(t, 'e', name, id, std::move(args));
}

double Tracer::async_duration(const std::string& name, std::uint64_t id) const {
  SimTime begin = -1;
  for (const TraceEvent& e : events_) {
    if (e.name != name || e.id != id) continue;
    if (e.phase == 'b') {
      begin = e.ts;
    } else if (e.phase == 'e' && begin >= 0) {
      return e.ts - begin;
    }
  }
  return -1.0;
}

void Tracer::write_json(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  const auto emit = [&os, &first](const std::string& line) {
    if (!first) os << ",\n";
    first = false;
    os << line;
  };

  // Metadata first: one process_name per unique pid, one thread_name per
  // track, in registration order (deterministic by construction).
  std::vector<int> named_pids;
  for (const Track& t : tracks_) {
    if (std::find(named_pids.begin(), named_pids.end(), t.pid) == named_pids.end()) {
      named_pids.push_back(t.pid);
      emit("{\"ph\":\"M\",\"pid\":" + std::to_string(t.pid) +
           ",\"name\":\"process_name\",\"args\":{\"name\":" + quote(t.process) + "}}");
    }
    emit("{\"ph\":\"M\",\"pid\":" + std::to_string(t.pid) + ",\"tid\":" + std::to_string(t.tid) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":" + quote(t.thread) + "}}");
  }

  for (const TraceEvent& e : events_) {
    const Track& t = tracks_[e.track];
    std::string line = "{\"ph\":\"";
    line.push_back(e.phase);
    line += "\",\"pid\":" + std::to_string(t.pid) + ",\"tid\":" + std::to_string(t.tid) +
            ",\"ts\":" + std::to_string(to_us(e.ts)) + ",\"name\":" + quote(e.name);
    if (e.phase == 'b' || e.phase == 'e') {
      // Async events need a category + id for matching; the subsystem
      // (thread) name doubles as the category.
      line += ",\"cat\":" + quote(t.thread) + ",\"id\":" + quote(std::to_string(e.id));
    }
    if (e.phase == 'i') line += ",\"s\":\"t\"";
    if (!e.args.empty()) {
      line += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : e.args) {
        if (!first_arg) line += ",";
        first_arg = false;
        line += quote(key) + ":" + value.json();
      }
      line += "}";
    }
    line += "}";
    emit(line);
  }
  os << "\n]}\n";
}

std::string Tracer::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

}  // namespace osap::trace
