#include "yarn/node_manager.hpp"

#include "common/error.hpp"
#include "common/log.hpp"
#include "yarn/resource_manager.hpp"

namespace osap {

namespace {
constexpr const char* kLog = "nodemanager";
}

const char* to_string(ContainerState s) noexcept {
  switch (s) {
    case ContainerState::Allocated: return "ALLOCATED";
    case ContainerState::Running: return "RUNNING";
    case ContainerState::Suspended: return "SUSPENDED";
    case ContainerState::Completed: return "COMPLETED";
    case ContainerState::Killed: return "KILLED";
  }
  return "?";
}

NodeManager::NodeManager(Simulation& sim, Kernel& kernel, Network& net, NodeId node,
                         Bytes container_capacity, Duration heartbeat_interval)
    : sim_(sim),
      kernel_(kernel),
      net_(net),
      node_(node),
      capacity_(container_capacity),
      heartbeat_interval_(heartbeat_interval) {}

void NodeManager::connect(ResourceManager& rm, NodeId master) {
  OSAP_CHECK_MSG(rm_ == nullptr, "node manager connected twice");
  rm_ = &rm;
  master_ = master;
  const Duration phase = ms(23) * static_cast<double>(node_.value() % 16);
  sim_.after(phase, [this] { heartbeat(); });
}

void NodeManager::heartbeat() {
  notify_rm();
  sim_.after(heartbeat_interval_, [this] { heartbeat(); });
}

void NodeManager::notify_rm() {
  if (rm_ == nullptr) return;
  auto events = std::move(pending_events_);
  pending_events_.clear();
  const Bytes free = free_capacity();
  net_.send(node_, master_, [rm = rm_, node = node_, events = std::move(events), free]() mutable {
    rm->on_heartbeat(node, std::move(events), free);
  });
}

void NodeManager::launch(ContainerId id, Bytes memory, const TaskSpec& task) {
  OSAP_CHECK_MSG(!live_.contains(id), id << " already live");
  OSAP_CHECK_MSG(memory <= free_capacity(), "lease over capacity on " << node_);
  leased_ += memory;
  LiveContainer container;
  container.id = id;
  container.memory = memory;
  container.pid = kernel_.spawn(
      build_task_program(task),
      ProcessHooks{.on_exit = [this, id](ExitInfo info) { on_exit(id, info); }});
  live_.emplace(id, container);
  OSAP_LOG(Debug, kLog) << node_ << ": launched " << id << " (" << format_bytes(memory) << ")";
}

void NodeManager::kill(ContainerId id) {
  auto it = live_.find(id);
  if (it == live_.end()) return;
  it->second.kill_requested = true;
  kernel_.signal(it->second.pid, Signal::Kill);
}

void NodeManager::suspend(ContainerId id) {
  auto it = live_.find(id);
  if (it == live_.end()) return;
  LiveContainer& container = it->second;
  if (container.suspended) return;
  kernel_.signal(container.pid, Signal::Tstp);
  // The lease is released right away: the scheduler can hand the memory
  // to someone else while the OS decides if and when to page.
  leased_ = sat_sub(leased_, container.memory);
  container.memory = 0;
  container.suspended = true;
  pending_events_.emplace_back(id, ContainerState::Suspended);
  notify_rm();
}

void NodeManager::resume(ContainerId id, Bytes memory) {
  auto it = live_.find(id);
  if (it == live_.end()) return;
  LiveContainer& container = it->second;
  if (!container.suspended) return;
  OSAP_CHECK_MSG(memory <= free_capacity(), "resume lease over capacity on " << node_);
  leased_ += memory;
  container.memory = memory;
  container.suspended = false;
  kernel_.signal(container.pid, Signal::Cont);
  pending_events_.emplace_back(id, ContainerState::Running);
}

void NodeManager::on_exit(ContainerId id, ExitInfo info) {
  auto it = live_.find(id);
  if (it == live_.end()) return;
  leased_ = sat_sub(leased_, it->second.memory);
  const bool killed = info.killed() || it->second.kill_requested;
  pending_events_.emplace_back(id, killed ? ContainerState::Killed : ContainerState::Completed);
  live_.erase(it);
  notify_rm();
}

}  // namespace osap
