// YARN applications.
//
// Each application runs one task per container (the MapReduce-on-YARN
// pattern). The ApplicationMaster's negotiation logic is folded into the
// ResourceManager (YARN's "unmanaged AM" simplification): the RM knows
// each app's pending tasks and allocates containers for them directly.
#pragma once

#include <string>
#include <vector>

#include "hadoop/task.hpp"
#include "yarn/container.hpp"

namespace osap {

struct YarnAppSpec {
  std::string name = "app";
  /// Higher preempts lower.
  int priority = 0;
  /// Scheduler-side memory each task container leases.
  Bytes container_memory = 1 * GiB;
  std::vector<TaskSpec> tasks;
};

enum class YarnAppState { Running, Succeeded };

struct YarnApp {
  AppId id;
  YarnAppSpec spec;
  YarnAppState state = YarnAppState::Running;
  SimTime submitted_at = -1;
  SimTime completed_at = -1;
  /// Indices into spec.tasks not yet running or finished (kills push
  /// their task index back here).
  std::vector<int> pending_tasks;
  int tasks_done = 0;

  [[nodiscard]] Duration sojourn() const noexcept {
    return completed_at >= 0 ? completed_at - submitted_at : -1;
  }
};

}  // namespace osap
