// Assembly of a YARN cluster on the simulated substrate: per-node kernels
// + NodeManagers and a ResourceManager on a master node.
#pragma once

#include <memory>
#include <vector>

#include "hdfs/namenode.hpp"
#include "net/network.hpp"
#include "os/kernel.hpp"
#include "sim/simulation.hpp"
#include "yarn/resource_manager.hpp"

namespace osap {

struct YarnClusterConfig {
  int num_nodes = 1;
  OsConfig os;
  NetConfig net;
  /// Memory each NodeManager offers for container leases. 0 = derive from
  /// the node's usable RAM minus a safety headroom.
  Bytes container_capacity = 0;
  PreemptPrimitive primitive = PreemptPrimitive::Suspend;
  std::uint64_t seed = 1;
};

class YarnCluster {
 public:
  explicit YarnCluster(YarnClusterConfig cfg);

  [[nodiscard]] Simulation& sim() noexcept { return sim_; }
  [[nodiscard]] ResourceManager& rm() noexcept { return rm_; }
  [[nodiscard]] NodeId node(int index) const;
  [[nodiscard]] Kernel& kernel(NodeId node);
  [[nodiscard]] NodeManager& node_manager(NodeId node);

  AppId submit(YarnAppSpec spec) { return rm_.submit(std::move(spec)); }

  /// Run until every submitted app completes.
  void run();
  void run_until(SimTime t) { sim_.run_until(t); }

 private:
  YarnClusterConfig cfg_;
  Simulation sim_;
  Network net_;
  std::vector<std::unique_ptr<Kernel>> kernels_;
  std::vector<std::unique_ptr<NodeManager>> nms_;
  NodeId master_;
  ResourceManager rm_;
};

}  // namespace osap
