#include "yarn/yarn_cluster.hpp"

#include "common/error.hpp"

namespace osap {

YarnCluster::YarnCluster(YarnClusterConfig cfg)
    : cfg_(cfg),
      net_(sim_, cfg.net),
      master_(NodeId{static_cast<std::uint64_t>(cfg.num_nodes)}),
      rm_(sim_, net_, master_, cfg.primitive) {
  OSAP_CHECK(cfg_.num_nodes >= 1);
  net_.register_node(master_);
  const Bytes capacity = cfg_.container_capacity > 0
                             ? cfg_.container_capacity
                             : sat_sub(cfg_.os.usable_ram(), 512 * MiB);
  for (int i = 0; i < cfg_.num_nodes; ++i) {
    const NodeId node{static_cast<std::uint64_t>(i)};
    net_.register_node(node);
    kernels_.push_back(std::make_unique<Kernel>(sim_, cfg_.os, "node" + std::to_string(i)));
    nms_.push_back(
        std::make_unique<NodeManager>(sim_, *kernels_.back(), net_, node, capacity));
    rm_.register_node_manager(*nms_.back());
    nms_.back()->connect(rm_, master_);
  }
}

NodeId YarnCluster::node(int index) const {
  OSAP_CHECK(index >= 0 && index < cfg_.num_nodes);
  return NodeId{static_cast<std::uint64_t>(index)};
}

Kernel& YarnCluster::kernel(NodeId node) {
  OSAP_CHECK_MSG(node.value() < kernels_.size(), "unknown " << node);
  return *kernels_[node.value()];
}

NodeManager& YarnCluster::node_manager(NodeId node) {
  OSAP_CHECK_MSG(node.value() < nms_.size(), "unknown " << node);
  return *nms_[node.value()];
}

void YarnCluster::run() {
  while (!rm_.all_apps_done() && sim_.step()) {
  }
}

}  // namespace osap
