#include "yarn/resource_manager.hpp"

#include <algorithm>

#include "common/det.hpp"
#include "common/error.hpp"
#include "common/log.hpp"

namespace osap {

namespace {
constexpr const char* kLog = "resourcemanager";
}

ResourceManager::ResourceManager(Simulation& sim, Network& net, NodeId master,
                                 PreemptPrimitive primitive)
    : sim_(sim), net_(net), master_(master), primitive_(primitive) {
  OSAP_CHECK_MSG(primitive_ != PreemptPrimitive::NatjamCheckpoint,
                 "the YARN model supports wait/kill/susp preemption");
}

void ResourceManager::register_node_manager(NodeManager& nm) {
  const bool inserted = nodes_.emplace(nm.node(), &nm).second;
  OSAP_CHECK_MSG(inserted, nm.node() << " registered twice");
}

AppId ResourceManager::submit(YarnAppSpec spec) {
  YarnApp app;
  app.id = app_ids_.next();
  app.submitted_at = sim_.now();
  for (int i = 0; i < static_cast<int>(spec.tasks.size()); ++i) app.pending_tasks.push_back(i);
  app.spec = std::move(spec);
  OSAP_LOG(Info, kLog) << "app " << app.id << " (" << app.spec.name << ") submitted, "
                       << app.pending_tasks.size() << " tasks";
  const AppId id = app.id;
  apps_.emplace(id, std::move(app));
  app_order_.push_back(id);
  schedule_everywhere();
  maybe_preempt();
  return id;
}

std::vector<AppId> ResourceManager::app_queue() const {
  std::vector<AppId> queue = app_order_;
  std::stable_sort(queue.begin(), queue.end(), [this](AppId a, AppId b) {
    return apps_.at(a).spec.priority > apps_.at(b).spec.priority;
  });
  return queue;
}

bool ResourceManager::outranked(const YarnApp& app) const {
  for (const auto& [id, other] : apps_) {
    if (other.state != YarnAppState::Running || other.pending_tasks.empty()) continue;
    if (other.spec.priority > app.spec.priority) return true;
  }
  return false;
}

void ResourceManager::schedule(NodeId node) {
  NodeManager* nm = nodes_.at(node);

  // Suspended containers come back first (same-node resume, free lease,
  // and nothing higher-priority waiting).
  for (auto it = suspended_.begin(); it != suspended_.end();) {
    const YarnApp& app = apps_.at(it->app);
    if (it->node == node && it->memory <= nm->free_capacity() && !outranked(app)) {
      OSAP_LOG(Info, kLog) << "resuming " << it->container << " on " << node;
      containers_.at(it->container).state = ContainerState::Running;
      nm->resume(it->container, it->memory);
      it = suspended_.erase(it);
    } else {
      ++it;
    }
  }

  // Fresh allocations by app priority.
  for (AppId aid : app_queue()) {
    YarnApp& app = apps_.at(aid);
    if (app.state != YarnAppState::Running) continue;
    while (!app.pending_tasks.empty() &&
           app.spec.container_memory <= nm->free_capacity()) {
      const int task_index = app.pending_tasks.front();
      app.pending_tasks.erase(app.pending_tasks.begin());
      Container container;
      container.id = container_ids_.next();
      container.app = aid;
      container.node = node;
      container.memory = app.spec.container_memory;
      container.state = ContainerState::Running;
      container.allocated_at = sim_.now();
      containers_.emplace(container.id, container);
      container_task_.emplace(container.id, task_index);
      TaskSpec task = app.spec.tasks[static_cast<std::size_t>(task_index)];
      nm->launch(container.id, app.spec.container_memory, task);
    }
  }
}

void ResourceManager::schedule_everywhere() {
  // Node order decides which node's free lease a pending task takes; keep
  // it stable so placement never depends on hash order.
  for (NodeId node : det::sorted_keys(nodes_)) schedule(node);
}

void ResourceManager::maybe_preempt() {
  if (primitive_ == PreemptPrimitive::Wait) return;
  // Any high-priority app starving for leases?
  for (AppId aid : app_queue()) {
    YarnApp& app = apps_.at(aid);
    if (app.state != YarnAppState::Running || app.pending_tasks.empty()) continue;
    bool room_somewhere = false;
    for (NodeId node : det::sorted_keys(nodes_)) {
      if (app.spec.container_memory <= nodes_.at(node)->free_capacity()) {
        room_somewhere = true;
        break;
      }
    }
    if (room_somewhere) continue;

    // Take a lease from the lowest-priority app holding one; ties go to
    // the lowest container id so the victim never depends on hash order.
    Container* victim = nullptr;
    int victim_priority = app.spec.priority;
    for (ContainerId cid : det::sorted_keys(containers_)) {
      Container& container = containers_.at(cid);
      if (container.state != ContainerState::Running) continue;
      const int p = apps_.at(container.app).spec.priority;
      if (p < victim_priority) {
        victim = &container;
        victim_priority = p;
      }
    }
    if (victim == nullptr) continue;
    ++preemptions_;
    NodeManager* nm = nodes_.at(victim->node);
    if (primitive_ == PreemptPrimitive::Suspend) {
      OSAP_LOG(Info, kLog) << "suspending " << victim->id << " for app " << aid;
      victim->state = ContainerState::Suspended;
      suspended_.push_back(
          SuspendedLease{victim->id, victim->app, victim->node, victim->memory});
      nm->suspend(victim->id);
    } else {
      OSAP_LOG(Info, kLog) << "killing " << victim->id << " for app " << aid;
      nm->kill(victim->id);
    }
    return;  // one preemption per pass; heartbeats pace the rest
  }
}

void ResourceManager::complete_container(ContainerId id, ContainerState terminal) {
  auto it = containers_.find(id);
  if (it == containers_.end()) return;
  Container& container = it->second;
  if (container.state == ContainerState::Completed || container.state == ContainerState::Killed) {
    return;
  }
  container.state = terminal;
  YarnApp& app = apps_.at(container.app);
  const int task_index = container_task_.at(id);
  if (terminal == ContainerState::Completed) {
    ++app.tasks_done;
    if (app.tasks_done == static_cast<int>(app.spec.tasks.size())) {
      app.state = YarnAppState::Succeeded;
      app.completed_at = sim_.now();
      OSAP_LOG(Info, kLog) << "app " << app.id << " completed, sojourn " << app.sojourn() << "s";
    }
  } else {
    ++kills_;
    // The killed task reruns from scratch.
    app.pending_tasks.push_back(task_index);
  }
  std::erase_if(suspended_, [id](const SuspendedLease& s) { return s.container == id; });
}

void ResourceManager::on_heartbeat(NodeId node,
                                   std::vector<std::pair<ContainerId, ContainerState>> events,
                                   Bytes /*free_capacity*/) {
  for (const auto& [cid, state] : events) {
    switch (state) {
      case ContainerState::Completed:
      case ContainerState::Killed:
        complete_container(cid, state);
        break;
      case ContainerState::Suspended:
      case ContainerState::Running:
      case ContainerState::Allocated:
        break;  // informational
    }
  }
  schedule(node);
  maybe_preempt();
}

const YarnApp& ResourceManager::app(AppId id) const {
  const auto it = apps_.find(id);
  OSAP_CHECK_MSG(it != apps_.end(), "unknown " << id);
  return it->second;
}

const Container& ResourceManager::container(ContainerId id) const {
  const auto it = containers_.find(id);
  OSAP_CHECK_MSG(it != containers_.end(), "unknown " << id);
  return it->second;
}

bool ResourceManager::all_apps_done() const {
  for (const auto& [id, app] : apps_) {
    if (app.state == YarnAppState::Running) return false;
  }
  return true;
}

}  // namespace osap
