// NodeManager: launches and signals container processes on one node and
// heartbeats container status to the ResourceManager.
#pragma once

#include <unordered_map>

#include "hadoop/task.hpp"
#include "net/network.hpp"
#include "os/kernel.hpp"
#include "yarn/container.hpp"

namespace osap {

class ResourceManager;

class NodeManager {
 public:
  NodeManager(Simulation& sim, Kernel& kernel, Network& net, NodeId node,
              Bytes container_capacity, Duration heartbeat_interval = seconds(1));

  void connect(ResourceManager& rm, NodeId master);

  [[nodiscard]] NodeId node() const noexcept { return node_; }
  /// Memory available for new container leases (suspended containers hold
  /// none — that is the point of the primitive).
  [[nodiscard]] Bytes capacity() const noexcept { return capacity_; }
  [[nodiscard]] Bytes leased() const noexcept { return leased_; }
  [[nodiscard]] Bytes free_capacity() const noexcept { return sat_sub(capacity_, leased_); }
  [[nodiscard]] Kernel& kernel() noexcept { return kernel_; }

  // --- commands from the RM (invoked via network callbacks) --------------
  void launch(ContainerId id, Bytes memory, const TaskSpec& task);
  void kill(ContainerId id);
  void suspend(ContainerId id);
  /// Resume a suspended container; re-leases `memory`.
  void resume(ContainerId id, Bytes memory);

 private:
  struct LiveContainer {
    ContainerId id;
    Pid pid;
    Bytes memory = 0;     // current lease (0 while suspended)
    bool suspended = false;
    bool kill_requested = false;
  };

  void heartbeat();
  void on_exit(ContainerId id, ExitInfo info);
  void notify_rm();

  Simulation& sim_;
  Kernel& kernel_;
  Network& net_;
  NodeId node_;
  Bytes capacity_;
  Bytes leased_ = 0;
  Duration heartbeat_interval_;
  ResourceManager* rm_ = nullptr;
  NodeId master_;
  std::unordered_map<ContainerId, LiveContainer> live_;
  /// (container, event) pairs queued for the next heartbeat.
  std::vector<std::pair<ContainerId, ContainerState>> pending_events_;
};

}  // namespace osap
