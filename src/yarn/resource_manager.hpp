// ResourceManager: memory-based container scheduling with pluggable
// preemption.
//
// Apps are served by (priority desc, submission order). When a
// higher-priority app has pending tasks and no node has lease headroom,
// the RM preempts containers of the lowest-priority app holding leases —
// with YARN's stock kill, or with this paper's suspension, which frees
// the lease instantly while the container's memory is left to the OS.
// Suspended containers resume on their own node once leases free up
// (resume locality is structural here: the process cannot move).
#pragma once

#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"
#include "preempt/primitive.hpp"
#include "sim/simulation.hpp"
#include "yarn/app.hpp"
#include "yarn/node_manager.hpp"

namespace osap {

class ResourceManager {
 public:
  ResourceManager(Simulation& sim, Network& net, NodeId master,
                  PreemptPrimitive primitive = PreemptPrimitive::Suspend);

  void register_node_manager(NodeManager& nm);

  AppId submit(YarnAppSpec spec);

  /// Heartbeat entry from a NodeManager.
  void on_heartbeat(NodeId node, std::vector<std::pair<ContainerId, ContainerState>> events,
                    Bytes free_capacity);

  [[nodiscard]] const YarnApp& app(AppId id) const;
  [[nodiscard]] bool all_apps_done() const;
  [[nodiscard]] int preemptions_issued() const noexcept { return preemptions_; }
  [[nodiscard]] int containers_killed() const noexcept { return kills_; }
  [[nodiscard]] const Container& container(ContainerId id) const;

 private:
  struct SuspendedLease {
    ContainerId container;
    AppId app;
    NodeId node;
    Bytes memory;
  };

  void schedule(NodeId node);
  void schedule_everywhere();
  /// True when some app outranks `app` and still has pending tasks.
  [[nodiscard]] bool outranked(const YarnApp& app) const;
  [[nodiscard]] std::vector<AppId> app_queue() const;
  void maybe_preempt();
  void complete_container(ContainerId id, ContainerState terminal);

  Simulation& sim_;
  Network& net_;
  NodeId master_;
  PreemptPrimitive primitive_;
  std::unordered_map<NodeId, NodeManager*> nodes_;
  std::map<AppId, YarnApp> apps_;
  std::vector<AppId> app_order_;
  std::unordered_map<ContainerId, Container> containers_;
  /// container -> task index it runs.
  std::unordered_map<ContainerId, int> container_task_;
  std::vector<SuspendedLease> suspended_;
  IdGenerator<AppId> app_ids_;
  IdGenerator<ContainerId> container_ids_;
  int preemptions_ = 0;
  int kills_ = 0;
};

}  // namespace osap
