// YARN containers (§III-B: "The concepts that we illustrate here are
// valid for both Hadoop 1 … [and] Hadoop 2, which uses a new
// infrastructure for resource negotiation called YARN").
//
// A container is a resource lease (memory) on a node plus the process
// running inside it. YARN's stock preemption kills containers; the
// paper's primitive adds suspension: a suspended container releases its
// *scheduler* resources immediately while its process memory stays behind
// for the OS to page only if needed.
#pragma once

#include "common/ids.hpp"
#include "common/time.hpp"
#include "common/units.hpp"

namespace osap {

struct ContainerTag { static const char* prefix() { return "container_"; } };
using ContainerId = StrongId<ContainerTag>;

struct AppTag { static const char* prefix() { return "app_"; } };
using AppId = StrongId<AppTag>;

enum class ContainerState {
  Allocated,   // granted, process not yet running
  Running,
  Suspended,   // process SIGTSTP'd; scheduler memory released
  Completed,
  Killed,
};

const char* to_string(ContainerState s) noexcept;

struct Container {
  ContainerId id;
  AppId app;
  NodeId node;
  /// Scheduler-side memory of the lease.
  Bytes memory = 0;
  ContainerState state = ContainerState::Allocated;
  Pid pid;
  SimTime allocated_at = 0;
};

}  // namespace osap
