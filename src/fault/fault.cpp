#include "fault/fault.hpp"

#include <set>
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace osap::fault {

namespace {

NodeId node_arg(std::istringstream& line) {
  std::uint64_t index = 0;
  line >> index;
  return NodeId{index};
}

}  // namespace

FaultPlan parse_fault_plan(std::istream& in) {
  FaultPlan plan;
  std::string raw;
  int lineno = 0;
  // Node deaths already scheduled (crash or revoke): a second death of
  // the same node at the same instant would double-tear-down.
  std::set<std::pair<std::uint64_t, SimTime>> deaths;
  const auto claim_death = [&deaths, &lineno](NodeId node, SimTime at) {
    OSAP_CHECK_MSG(deaths.emplace(node.value(), at).second,
                   "fault plan line " << lineno << ": node " << node.value()
                                      << " already dies at t=" << at
                                      << " (duplicate crash/revoke)");
  };
  while (std::getline(in, raw)) {
    ++lineno;
    // Strip comments and whitespace-only lines.
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream line(raw);
    std::string verb;
    if (!(line >> verb)) continue;
    if (verb == "crash") {
      NodeCrash f;
      line >> f.at;
      f.node = node_arg(line);
      OSAP_CHECK_MSG(!line.fail(), "fault plan line " << lineno << ": crash <t> <node>");
      claim_death(f.node, f.at);
      plan.crashes.push_back(f);
    } else if (verb == "hang") {
      TrackerHang f;
      line >> f.at;
      f.node = node_arg(line);
      line >> f.duration;
      OSAP_CHECK_MSG(!line.fail() && f.duration > 0,
                     "fault plan line " << lineno << ": hang <t> <node> <duration>");
      plan.hangs.push_back(f);
    } else if (verb == "drop-heartbeats") {
      HeartbeatDrop f;
      line >> f.from >> f.until;
      f.node = node_arg(line);
      OSAP_CHECK_MSG(!line.fail() && f.until > f.from,
                     "fault plan line " << lineno << ": drop-heartbeats <from> <until> <node>");
      plan.heartbeat_drops.push_back(f);
    } else if (verb == "delay-messages") {
      MessageDelay f;
      line >> f.from >> f.until;
      f.node = node_arg(line);
      line >> f.extra;
      OSAP_CHECK_MSG(!line.fail() && f.until > f.from && f.extra > 0,
                     "fault plan line " << lineno
                                        << ": delay-messages <from> <until> <node> <extra>");
      plan.delays.push_back(f);
    } else if (verb == "lose-checkpoints") {
      CheckpointLoss f;
      line >> f.at;
      f.node = node_arg(line);
      OSAP_CHECK_MSG(!line.fail(), "fault plan line " << lineno << ": lose-checkpoints <t> <node>");
      plan.checkpoint_losses.push_back(f);
    } else if (verb == "revoke") {
      NodeRevocation f;
      line >> f.at;
      f.node = node_arg(line);
      line >> f.warning;
      OSAP_CHECK_MSG(!line.fail() && f.warning > 0,
                     "fault plan line " << lineno << ": revoke <t> <node> <warning_s>");
      claim_death(f.node, f.at);
      plan.revocations.push_back(f);
    } else {
      OSAP_CHECK_MSG(false, "fault plan line " << lineno << ": unknown verb '" << verb << "'");
    }
  }
  return plan;
}

FaultPlan parse_fault_plan(const std::string& text) {
  std::istringstream in(text);
  return parse_fault_plan(in);
}

}  // namespace osap::fault
