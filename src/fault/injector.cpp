#include "fault/injector.hpp"

#include <sstream>

#include "common/det.hpp"
#include "common/log.hpp"
#include "trace/names.hpp"

namespace osap::fault {

namespace {
constexpr const char* kLog = "fault";
}

FaultInjector::FaultInjector(Cluster& cluster, FaultPlan plan)
    : cluster_(cluster), plan_(std::move(plan)), master_(cluster.job_tracker().master_node()) {
  Simulation& sim = cluster_.sim();
  sim.audits().add(this);
  tracer_ = &sim.trace().tracer();
  trk_ = tracer_->track("cluster", "faults");
  trace::CounterRegistry& counters = sim.trace().counters();
  ctr_crashes_ = &counters.counter(trace::names::kFaultNodeCrashes);
  ctr_hangs_ = &counters.counter(trace::names::kFaultTrackerHangs);
  ctr_checkpoint_losses_ = &counters.counter(trace::names::kFaultCheckpointLosses);
  ctr_msgs_dropped_ = &counters.counter(trace::names::kFaultMessagesDropped);
  ctr_msgs_delayed_ = &counters.counter(trace::names::kFaultMessagesDelayed);
  ctr_warnings_ = &counters.counter(trace::names::kFaultRevocationWarnings);
  ctr_revocations_ = &counters.counter(trace::names::kFaultRevocations);
  arm();
}

FaultInjector::~FaultInjector() { cluster_.sim().audits().remove(this); }

void FaultInjector::arm() {
  Simulation& sim = cluster_.sim();
  // Message-level faults act through the network filter; time-pinned
  // faults become ordinary events. Scheduling order follows the plan's
  // vector order, which is part of the scenario definition — two runs of
  // one plan schedule identically.
  if (!plan_.heartbeat_drops.empty() || !plan_.delays.empty() || !plan_.crashes.empty() ||
      !plan_.revocations.empty()) {
    cluster_.network().set_message_filter(
        [this](NodeId from, NodeId to) { return filter(from, to); });
  }
  for (const NodeCrash& f : plan_.crashes) {
    sim.at(std::max(f.at, sim.now()), [this, f] {
      OSAP_LOG(Warn, kLog) << "injecting node crash on node" << f.node.value();
      ++crashes_fired_;
      ctr_crashes_->add();
      tracer_->instant(trk_, "node_crash", {{"node", f.node.value()}});
      crashed_.emplace(f.node, true);
      cluster_.tracker(f.node).crash();
    });
  }
  for (const TrackerHang& f : plan_.hangs) {
    sim.at(std::max(f.at, sim.now()), [this, f] {
      OSAP_LOG(Warn, kLog) << "injecting tracker hang on node" << f.node.value();
      ++hangs_fired_;
      ctr_hangs_->add();
      tracer_->instant(trk_, "tracker_hang", {{"node", f.node.value()}});
      cluster_.tracker(f.node).hang(f.duration);
    });
  }
  for (const CheckpointLoss& f : plan_.checkpoint_losses) {
    sim.at(std::max(f.at, sim.now()), [this, f] {
      OSAP_LOG(Warn, kLog) << "injecting checkpoint disk loss on node" << f.node.value();
      ++checkpoint_losses_fired_;
      ctr_checkpoint_losses_->add();
      tracer_->instant(trk_, "checkpoint_loss", {{"node", f.node.value()}});
      cluster_.job_tracker().lose_checkpoints_on(f.node);
    });
  }
  for (const NodeRevocation& f : plan_.revocations) {
    // The warning lands `f.warning` before the death (clamped to now): the
    // JobTracker drains the tracker, then the installed reaction handler
    // gets its window. The death itself shares the crash teardown, guarded
    // against a node already downed by an out-of-order crash verb.
    sim.at(std::max(f.at - f.warning, sim.now()), [this, f] {
      OSAP_LOG(Warn, kLog) << "revocation warning for node" << f.node.value() << " (dies at t="
                           << f.at << ")";
      ++warnings_fired_;
      ctr_warnings_->add();
      tracer_->instant(trk_, "revocation_warning", {{"node", f.node.value()}});
      const bool accepted =
          cluster_.job_tracker().warn_revocation(cluster_.tracker(f.node).id());
      if (revocation_handler_) revocation_handler_(f, accepted);
    });
    sim.at(std::max(f.at, sim.now()), [this, f] {
      if (crashed_.contains(f.node)) return;  // already downed elsewhere in the plan
      OSAP_LOG(Warn, kLog) << "revoking node" << f.node.value();
      ++revocations_fired_;
      ctr_revocations_->add();
      tracer_->instant(trk_, "node_revoked", {{"node", f.node.value()}});
      crashed_.emplace(f.node, true);
      cluster_.tracker(f.node).crash();
    });
  }
}

MsgFate FaultInjector::filter(NodeId from, NodeId to) {
  MsgFate fate;
  // A dead node neither sends nor receives; messages already in flight at
  // crash time still deliver (they were on the wire) and are discarded by
  // the crashed TaskTracker's guards.
  if (crashed_.contains(from) || crashed_.contains(to)) {
    fate.drop = true;
    ctr_msgs_dropped_->add();
    return fate;
  }
  const SimTime now = cluster_.sim().now();
  for (const HeartbeatDrop& w : plan_.heartbeat_drops) {
    // Tracker→master only: the master's pushes (MapsDone, responses) are
    // never dropped, so a drop storm starves the lease, not the barrier.
    if (from == w.node && to == master_ && now >= w.from && now < w.until) {
      fate.drop = true;
      ctr_msgs_dropped_->add();
      return fate;
    }
  }
  for (const MessageDelay& w : plan_.delays) {
    if ((from == w.node || to == w.node) && now >= w.from && now < w.until) {
      fate.extra_delay += w.extra;
    }
  }
  if (fate.extra_delay > 0) ctr_msgs_delayed_->add();
  return fate;
}

void FaultInjector::audit(std::vector<std::string>& violations) const {
  const auto flag = [&violations](const auto&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    violations.push_back(os.str());
  };
  if (crashes_fired_ > plan_.crashes.size()) {
    flag("fired ", crashes_fired_, " crashes for a plan of ", plan_.crashes.size());
  }
  if (hangs_fired_ > plan_.hangs.size()) {
    flag("fired ", hangs_fired_, " hangs for a plan of ", plan_.hangs.size());
  }
  if (checkpoint_losses_fired_ > plan_.checkpoint_losses.size()) {
    flag("fired ", checkpoint_losses_fired_, " checkpoint losses for a plan of ",
         plan_.checkpoint_losses.size());
  }
  if (warnings_fired_ > plan_.revocations.size()) {
    flag("fired ", warnings_fired_, " revocation warnings for a plan of ",
         plan_.revocations.size());
  }
  if (revocations_fired_ > plan_.revocations.size()) {
    flag("fired ", revocations_fired_, " revocations for a plan of ", plan_.revocations.size());
  }
  if (crashed_.size() != crashes_fired_ + revocations_fired_) {
    flag(crashed_.size(), " crashed nodes but ", crashes_fired_ + revocations_fired_,
         " node-death faults fired");
  }
  for (NodeId node : det::sorted_keys(crashed_)) {
    if (!cluster_.tracker(node).crashed()) {
      flag("node", node.value(), " crash fired but its tracker is not crashed");
    }
  }
}

void FaultInjector::dump(std::ostream& os) const {
  os << plan_.size() << " planned faults; fired: " << crashes_fired_ << " crashes, "
     << hangs_fired_ << " hangs, " << checkpoint_losses_fired_ << " checkpoint losses, "
     << warnings_fired_ << " warnings, " << revocations_fired_ << " revocations\n";
  for (NodeId node : det::sorted_keys(crashed_)) {
    os << "  node" << node.value() << " crashed\n";
  }
}

}  // namespace osap::fault
