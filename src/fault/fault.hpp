// Deterministic fault plans (docs/FAULTS.md).
//
// A FaultPlan is a fully scripted failure schedule: node crashes, tracker
// daemon hangs, heartbeat-drop windows, control-message delay windows and
// checkpoint disk losses, each pinned to a simulated time. Nothing in the
// plan is sampled at run time — the same plan against the same workload
// produces a bit-identical event-trace digest (the repo's determinism
// law, enforced by tests/determinism double runs).
#pragma once

#include <istream>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace osap::fault {

/// The node dies at `at`: its tracker stops heartbeating, every hosted
/// attempt (running, SIGTSTP-suspended, checkpointing, cleanup) dies with
/// it, and its local disk — map outputs and checkpoint files included —
/// is gone. Recovery is JobTracker lease expiry.
struct NodeCrash {
  SimTime at = 0;
  NodeId node;
};

/// The tracker daemon wedges for `duration` starting at `at`: no
/// heartbeats leave the node, while already-running attempts keep
/// executing. If the hang outlives the lease, the JobTracker declares the
/// tracker lost and reinitializes it on rejoin.
struct TrackerHang {
  SimTime at = 0;
  NodeId node;
  Duration duration = 0;
};

/// Every tracker→master control message from `node` is dropped during
/// [from, until). Master→node traffic is untouched — the failure modeled
/// is the tracker's reporting path, and one-way loss is the harder case
/// for the lease logic anyway.
struct HeartbeatDrop {
  SimTime from = 0;
  SimTime until = 0;
  NodeId node;
};

/// Control messages to or from `node` pick up `extra` latency during
/// [from, until) — a congested or flapping link rather than a dead one.
struct MessageDelay {
  SimTime from = 0;
  SimTime until = 0;
  NodeId node;
  Duration extra = 0;
};

/// The node's disk loses its Natjam checkpoint files at `at` (without the
/// node itself dying): checkpoint-parked tasks requeue from scratch and
/// saved fast-forward state is forgotten.
struct CheckpointLoss {
  SimTime at = 0;
  NodeId node;
};

/// Spot-style node revocation (docs/REVOKE.md): the node dies at `at`
/// exactly like a NodeCrash, but a RevocationWarning is delivered to the
/// JobTracker `warning` seconds earlier (clamped to plan start), giving
/// proactive policies — checkpoint-on-warning, suspend-and-migrate,
/// replica steering — a window to drain the doomed node.
struct NodeRevocation {
  SimTime at = 0;
  NodeId node;
  Duration warning = 0;
};

struct FaultPlan {
  std::vector<NodeCrash> crashes;
  std::vector<TrackerHang> hangs;
  std::vector<HeartbeatDrop> heartbeat_drops;
  std::vector<MessageDelay> delays;
  std::vector<CheckpointLoss> checkpoint_losses;
  std::vector<NodeRevocation> revocations;

  [[nodiscard]] bool empty() const noexcept {
    return crashes.empty() && hangs.empty() && heartbeat_drops.empty() && delays.empty() &&
           checkpoint_losses.empty() && revocations.empty();
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return crashes.size() + hangs.size() + heartbeat_drops.size() + delays.size() +
           checkpoint_losses.size() + revocations.size();
  }
};

/// Parse the line-based plan schema (docs/FAULTS.md):
///
///   # comment / blank lines ignored
///   crash <t> <node>
///   hang <t> <node> <duration>
///   drop-heartbeats <from> <until> <node>
///   delay-messages <from> <until> <node> <extra>
///   lose-checkpoints <t> <node>
///   revoke <t> <node> <warning_s>
///
/// Times are simulated seconds, nodes are worker indices. Throws SimError
/// on a malformed line. Scheduling the same node's death twice at the
/// same timestamp (crash+crash, crash+revoke or revoke+revoke) is a parse
/// error: the injector would otherwise tear the node down twice.
[[nodiscard]] FaultPlan parse_fault_plan(std::istream& in);
[[nodiscard]] FaultPlan parse_fault_plan(const std::string& text);

}  // namespace osap::fault
