// FaultInjector: executes a FaultPlan against a Cluster, deterministically.
//
// Every fault is scheduled as an ordinary simulation event at its scripted
// time, and the message-level faults (drops, delays) are applied by a pure
// (from, to, now) filter installed into the Network — so a fault run is
// exactly as deterministic as a fault-free one. The injector is also an
// InvariantAuditor: it checks that crashed nodes actually went dark and
// that no fault fired more often than planned.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "audit/audit.hpp"
#include "fault/fault.hpp"
#include "hadoop/cluster.hpp"

namespace osap::fault {

/// Invoked when a revocation warning fires, after the JobTracker has been
/// told to drain the doomed tracker. `accepted` is false when the warning
/// arrived too late (the node already died — out-of-order plan) and the
/// drain was moot. The src/revoke reaction manager hooks in here.
using RevocationHandler = std::function<void(const NodeRevocation&, bool accepted)>;

class FaultInjector final : public InvariantAuditor {
 public:
  /// Schedules the plan immediately; construct after the Cluster (and
  /// destroy before it). Installs the cluster's network message filter —
  /// one injector per cluster.
  FaultInjector(Cluster& cluster, FaultPlan plan);
  ~FaultInjector() override;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  [[nodiscard]] bool node_crashed(NodeId node) const { return crashed_.contains(node); }

  /// Install the proactive-reaction hook for revocation warnings. May be
  /// set any time before the first warning fires; warnings delivered with
  /// no handler installed still drain the tracker.
  void set_revocation_handler(RevocationHandler handler) {
    revocation_handler_ = std::move(handler);
  }

  // --- invariant auditing ---------------------------------------------------
  [[nodiscard]] std::string audit_label() const override { return "fault-injector"; }
  /// Audited invariants: a crashed node's tracker is quiesced (crashed
  /// flag set, nothing hosted) and fired-fault counts stay within the
  /// plan.
  void audit(std::vector<std::string>& violations) const override;
  void dump(std::ostream& os) const override;

 private:
  void arm();
  [[nodiscard]] MsgFate filter(NodeId from, NodeId to);

  Cluster& cluster_;
  FaultPlan plan_;
  NodeId master_;
  /// Nodes whose crash fault has fired (value unused; map keeps the
  /// det::sorted_keys idiom available for dumps).
  std::unordered_map<NodeId, bool> crashed_;
  std::uint64_t crashes_fired_ = 0;
  std::uint64_t hangs_fired_ = 0;
  std::uint64_t checkpoint_losses_fired_ = 0;
  std::uint64_t warnings_fired_ = 0;
  std::uint64_t revocations_fired_ = 0;

  RevocationHandler revocation_handler_;

  trace::Tracer* tracer_ = nullptr;
  std::uint32_t trk_ = 0;  ///< ("cluster", "faults") track
  trace::Counter* ctr_crashes_ = nullptr;
  trace::Counter* ctr_hangs_ = nullptr;
  trace::Counter* ctr_checkpoint_losses_ = nullptr;
  trace::Counter* ctr_msgs_dropped_ = nullptr;
  trace::Counter* ctr_msgs_delayed_ = nullptr;
  trace::Counter* ctr_warnings_ = nullptr;
  trace::Counter* ctr_revocations_ = nullptr;
};

}  // namespace osap::fault
