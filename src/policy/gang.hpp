// SLURM-style gang scheduling: time-sliced suspend/resume rotation of
// oversubscribed jobs (docs/POLICY.md).
//
// Every `slice` seconds the rotator checks whether the cluster is
// contended — at least two active jobs, and someone either has tasks
// waiting for a slot or is parked from a previous rotation. If so, the
// next job in ascending-id cyclic order is *parked*: its running tasks
// are suspended (SIGTSTP, the paper's primitive), and every job the
// rotator parked earlier gets its suspended tasks resumed into the
// freed slots. Rotation dissolves (everything resumed) once fewer than
// two jobs remain active.
//
// Swap-aware admission: parking a task commits its memory to the node
// until the task is resumed. A node whose swap-used fraction is already
// past the watermark refuses the admission — the task keeps running and
// the refusal is counted — mirroring SLURM's warning that gang-scheduled
// suspended jobs over-allocate memory. The simulator's VMM makes the
// hazard real: parked state competes for RAM + swap (§III-A).
//
// The rotator owns both directions of its rotation. It only ever
// resumes tasks of jobs *it* parked, so it composes with schedulers
// that do not preempt on their own (fifo being the canonical pairing);
// pairing it with a preempting scheduler makes both fight over the
// suspended set.
#pragma once

#include <vector>

#include "policy/policy.hpp"
#include "preempt/preemptor.hpp"

namespace osap::policy {

struct GangOptions {
  Duration slice = seconds(30);
  /// Refuse to park a task on a node whose swap-used fraction is already
  /// >= this. 1.0 effectively disables the check.
  double swap_watermark = 1.0;
  MemoryProbe probe;
};

class GangRotator {
 public:
  GangRotator(JobTracker& jt, GangOptions options);

  /// Arm the slice timer. Ticks re-arm themselves every `slice` seconds;
  /// the cluster run loop terminates on job completion regardless of the
  /// pending timer, so the rotation needs no explicit stop.
  void start();

  [[nodiscard]] int rotations() const noexcept { return rotations_; }
  [[nodiscard]] int admissions_refused() const noexcept { return admissions_refused_; }

 private:
  void tick();
  void resume_parked_except(JobId keep);
  void park(JobId job);

  JobTracker* jt_;
  Preemptor preemptor_;
  GangOptions options_;
  /// Every job this rotator ever parked; only `current_parked_` may hold
  /// gang-suspended tasks after a tick, the rest are swept back in.
  std::vector<JobId> parked_jobs_;
  JobId current_parked_;
  JobId cursor_;
  int rotations_ = 0;
  int admissions_refused_ = 0;
  trace::Counter* ctr_rotations_;
  trace::Counter* ctr_suspends_;
  trace::Counter* ctr_resumes_;
  trace::Counter* ctr_refused_;
};

}  // namespace osap::policy
