#include "policy/policy.hpp"

#include <utility>

#include "hadoop/job_tracker.hpp"
#include "trace/context.hpp"
#include "trace/names.hpp"

namespace osap::policy {

PreemptionPolicy::PreemptionPolicy(JobTracker& jt, PolicyOptions options)
    : jt_(&jt), options_(std::move(options)) {
  trace::CounterRegistry& reg = jt_->sim().trace().counters();
  ctr_decisions_ = &reg.counter(trace::names::kPolicyDecisions);
  ctr_waits_ = &reg.counter(trace::names::kPolicyWaits);
  ctr_kills_ = &reg.counter(trace::names::kPolicyKills);
  ctr_suspends_ = &reg.counter(trace::names::kPolicySuspends);
  ctr_checkpoints_ = &reg.counter(trace::names::kPolicyCheckpoints);
  ctr_requeues_ = &reg.counter(trace::names::kPolicyRequeues);
  ctr_demotions_ = &reg.counter(trace::names::kPolicySwapDemotions);
  ctr_refused_ = &reg.counter(trace::names::kPolicyOrdersRefused);
}

Decision PreemptionPolicy::rule_for(const std::string& queue) const {
  for (const auto& [name, decision] : options_.per_queue) {
    if (name == queue) return decision;
  }
  return options_.default_decision;
}

Decision PreemptionPolicy::decide(TaskId victim) const {
  const Task& t = jt_->task(victim);
  Decision decision = rule_for(jt_->job(t.job).spec.queue);
  if ((decision == Decision::Suspend || decision == Decision::NatjamCheckpoint) &&
      options_.probe && t.node.valid() &&
      options_.probe(t.node) >= options_.swap_watermark) {
    decision = Decision::Kill;
  }
  return decision;
}

Outcome PreemptionPolicy::preempt(Preemptor& preemptor, TaskId victim) {
  Outcome out;
  out.decision = decide(victim);
  ctr_decisions_->add();
  // decide() only demotes; comparing against the raw rule tells demotion.
  if (out.decision == Decision::Kill &&
      rule_for(jt_->job(jt_->task(victim).job).spec.queue) != Decision::Kill) {
    ctr_demotions_->add();
  }
  switch (out.decision) {
    case Decision::Wait:
      ctr_waits_->add();
      out.issued = preemptor.preempt(victim, PreemptPrimitive::Wait);
      break;
    case Decision::Kill:
      ctr_kills_->add();
      out.issued = preemptor.preempt(victim, PreemptPrimitive::Kill);
      break;
    case Decision::Suspend:
      ctr_suspends_->add();
      out.issued = preemptor.preempt(victim, PreemptPrimitive::Suspend);
      break;
    case Decision::NatjamCheckpoint:
      ctr_checkpoints_->add();
      out.issued = preemptor.preempt(victim, PreemptPrimitive::NatjamCheckpoint);
      break;
    case Decision::Requeue: {
      ctr_requeues_->add();
      // Requeue on other resources: drop the locality pin, then kill so
      // the task reschedules from scratch wherever a slot frees first.
      TaskSpec spec = jt_->task(victim).spec;
      spec.preferred_node = NodeId{};
      jt_->set_task_spec(victim, std::move(spec));
      out.issued = preemptor.preempt(victim, PreemptPrimitive::Kill);
      break;
    }
  }
  if (!out.issued) ctr_refused_->add();
  return out;
}

}  // namespace osap::policy
