#include "policy/decision.hpp"

#include "common/error.hpp"

namespace osap::policy {

const char* to_string(Decision d) noexcept {
  switch (d) {
    case Decision::Wait: return "wait";
    case Decision::Suspend: return "susp";
    case Decision::Kill: return "kill";
    case Decision::NatjamCheckpoint: return "natjam";
    case Decision::Requeue: return "requeue";
  }
  return "?";
}

Decision parse_decision(std::string_view name) {
  if (name == "wait") return Decision::Wait;
  if (name == "kill") return Decision::Kill;
  if (name == "susp" || name == "suspend") return Decision::Suspend;
  if (name == "natjam" || name == "checkpoint") return Decision::NatjamCheckpoint;
  if (name == "requeue") return Decision::Requeue;
  throw SimError("unknown preemption decision '" + std::string(name) +
                 "' (expected one of: " + kDecisionSpellings + ")");
}

Decision decision_from_primitive(PreemptPrimitive p) noexcept {
  switch (p) {
    case PreemptPrimitive::Wait: return Decision::Wait;
    case PreemptPrimitive::Kill: return Decision::Kill;
    case PreemptPrimitive::Suspend: return Decision::Suspend;
    case PreemptPrimitive::NatjamCheckpoint: return Decision::NatjamCheckpoint;
  }
  return Decision::Wait;
}

}  // namespace osap::policy
