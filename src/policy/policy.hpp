// The per-queue preemption-policy engine (docs/POLICY.md).
//
// Schedulers decide *whom* to evict and *when*; this engine decides
// *how*: it maps (victim's queue, victim state, node memory pressure) to
// a Decision and executes it through the scheduler's Preemptor. Rules
// key on the victim's queue — SLURM keys PreemptMode on the preemptee's
// QOS/partition the same way — with a cluster-wide default for queues
// without an explicit rule.
//
// Memory-pressure demotion: a suspend-family decision aimed at a node
// whose swap-used fraction is already past the watermark demotes to
// Kill. Suspended tasks keep their memory committed (SLURM's documented
// gang-scheduling hazard, which this simulator's VMM actually models:
// §III-A bounds suspended state by RAM + swap), so parking yet another
// JVM on a swapping node buys latency, not throughput.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "policy/decision.hpp"
#include "preempt/preemptor.hpp"

namespace osap::trace {
class Counter;
}  // namespace osap::trace

namespace osap::policy {

/// Swap-used fraction of a node in [0,1]; wired to Vmm::swap_pressure()
/// by whoever owns the Cluster (src/core, tests). Null = no demotion.
using MemoryProbe = std::function<double(NodeId)>;

struct PolicyOptions {
  Decision default_decision = Decision::Suspend;
  /// Per-queue overrides, keyed on the victim's job queue.
  std::vector<std::pair<std::string, Decision>> per_queue;
  /// Demote Suspend/NatjamCheckpoint to Kill once the victim node's
  /// swap-used fraction reaches this. 1.0 effectively disables demotion
  /// (pressure is capped below 1 while the OOM killer holds).
  double swap_watermark = 1.0;
  MemoryProbe probe;
};

/// What the engine did for one victim.
struct Outcome {
  Decision decision = Decision::Wait;  ///< after any demotion
  bool issued = false;  ///< the JobTracker accepted the resulting order
};

class PreemptionPolicy {
 public:
  PreemptionPolicy(JobTracker& jt, PolicyOptions options);

  /// Rule lookup + memory-pressure demotion for this victim; read-only.
  [[nodiscard]] Decision decide(TaskId victim) const;

  /// Decide and execute through `preemptor`. Wait issues nothing and
  /// counts as accepted (the high-priority work just waits); Requeue
  /// clears the victim's locality pin and kills it.
  Outcome preempt(Preemptor& preemptor, TaskId victim);

  [[nodiscard]] const PolicyOptions& options() const noexcept { return options_; }

 private:
  [[nodiscard]] Decision rule_for(const std::string& queue) const;

  JobTracker* jt_;
  PolicyOptions options_;
  trace::Counter* ctr_decisions_;
  trace::Counter* ctr_waits_;
  trace::Counter* ctr_kills_;
  trace::Counter* ctr_suspends_;
  trace::Counter* ctr_checkpoints_;
  trace::Counter* ctr_requeues_;
  trace::Counter* ctr_demotions_;
  trace::Counter* ctr_refused_;
};

}  // namespace osap::policy
