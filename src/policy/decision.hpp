// Preemption-policy decisions (docs/POLICY.md).
//
// The policy layer separates *what the queue wants done* from the
// primitive that executes it. A decision is a superset of the preempt
// primitives: the four mechanisms of §II plus Requeue — SLURM's
// "requeue on other resources" mode, realized here as kill + clearing
// the victim's locality pin so it reschedules anywhere.
#pragma once

#include <string_view>

#include "preempt/primitive.hpp"

namespace osap::policy {

enum class Decision { Wait, Suspend, Kill, NatjamCheckpoint, Requeue };

/// Every enumerator, for exhaustive iteration (round-trip tests).
inline constexpr Decision kAllDecisions[] = {
    Decision::Wait, Decision::Suspend, Decision::Kill,
    Decision::NatjamCheckpoint, Decision::Requeue,
};

/// Accepted spellings, embedded in every parse error (matches the
/// preempt-primitive spellings plus "requeue").
inline constexpr const char* kDecisionSpellings =
    "wait, kill, susp, suspend, natjam, checkpoint, requeue";

const char* to_string(Decision d) noexcept;

/// Parse any spelling in kDecisionSpellings; throws SimError naming the
/// offending value and the full list otherwise.
Decision parse_decision(std::string_view name);

/// The decision equivalent of a bare primitive (schedulers that predate
/// the policy layer configure a primitive; this lifts it).
Decision decision_from_primitive(PreemptPrimitive p) noexcept;

}  // namespace osap::policy
