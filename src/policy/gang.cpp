#include "policy/gang.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "hadoop/job_tracker.hpp"
#include "trace/context.hpp"
#include "trace/names.hpp"

namespace osap::policy {

GangRotator::GangRotator(JobTracker& jt, GangOptions options)
    : jt_(&jt), preemptor_(jt), options_(std::move(options)) {
  OSAP_CHECK_MSG(options_.slice > 0, "gang slice must be positive");
  trace::CounterRegistry& reg = jt_->sim().trace().counters();
  ctr_rotations_ = &reg.counter(trace::names::kPolicyGangRotations);
  ctr_suspends_ = &reg.counter(trace::names::kPolicyGangSuspends);
  ctr_resumes_ = &reg.counter(trace::names::kPolicyGangResumes);
  ctr_refused_ = &reg.counter(trace::names::kPolicyGangAdmissionRefused);
}

void GangRotator::start() {
  jt_->sim().at(jt_->now() + options_.slice, [this] { tick(); });
}

void GangRotator::resume_parked_except(JobId keep) {
  for (JobId jid : parked_jobs_) {
    if (jid == keep) continue;
    // Snapshot: resume_task mutates the suspended index mid-iteration.
    const auto& suspended = jt_->job(jid).suspended;
    std::vector<TaskId> parked(suspended.begin(), suspended.end());
    for (TaskId tid : parked) {
      if (preemptor_.restore(tid, PreemptPrimitive::Suspend)) ctr_resumes_->add();
    }
  }
}

void GangRotator::park(JobId job) {
  // Ascending-id walk of the live index; only Running tasks can park
  // (MustSuspend/MustResume commands are already in flight).
  const auto& live = jt_->job(job).live;
  std::vector<TaskId> running;
  for (TaskId tid : live) {
    if (jt_->task(tid).state == TaskState::Running) running.push_back(tid);
  }
  for (TaskId tid : running) {
    const NodeId node = jt_->task(tid).node;
    if (options_.probe && node.valid() &&
        options_.probe(node) >= options_.swap_watermark) {
      ++admissions_refused_;
      ctr_refused_->add();
      continue;  // the task keeps its slot; no more swap debt for this node
    }
    if (preemptor_.preempt(tid, PreemptPrimitive::Suspend)) ctr_suspends_->add();
  }
  if (std::find(parked_jobs_.begin(), parked_jobs_.end(), job) == parked_jobs_.end()) {
    parked_jobs_.push_back(job);
  }
}

void GangRotator::tick() {
  // Active = running jobs that still have work.
  std::vector<JobId> active;
  bool contended = false;
  for (JobId jid : jt_->running_jobs()) {
    const Job& job = jt_->job(jid);
    if (job.not_done.empty()) continue;
    active.push_back(jid);
    if (!job.unassigned.empty() || !job.suspended.empty()) contended = true;
  }

  if (active.size() < 2 || !contended) {
    // Not oversubscribed (any more): dissolve the rotation entirely.
    current_parked_ = JobId{};
    resume_parked_except(JobId{});
    parked_jobs_.clear();
  } else {
    // Next victim in ascending-id cyclic order after the last one.
    JobId next = active.front();
    for (JobId jid : active) {
      if (cursor_.valid() && jid > cursor_) {
        next = jid;
        break;
      }
    }
    cursor_ = next;
    current_parked_ = next;
    ++rotations_;
    ctr_rotations_->add();
    trace::Tracer& tracer = jt_->sim().trace().tracer();
    tracer.instant(tracer.track("cluster", "gang"), trace::names::kInstGangRotate,
                   {{"job", next.value()}});
    resume_parked_except(next);
    park(next);
  }
  jt_->sim().at(jt_->now() + options_.slice, [this] { tick(); });
}

}  // namespace osap::policy
