// Descriptor-driven run entry points — the facade surface the osapd
// sweep harness (src/osapd, tools/osapd_cli.cpp) is built on.
//
// A RunDescriptor is a flat, canonically ordered set of key=value pairs
// naming one concrete experiment cell: workload, preemption primitive,
// state sizes, scheduler, seed, fault plan. `normalize_descriptor`
// materializes every default the runner would consume, so two spellings
// of the same cell (defaults omitted vs written out) share one canonical
// text — and therefore one FNV-1a config digest. The digest is what the
// osapd result cache is keyed by: the event-trace digest already proves
// a descriptor replays bit-identically (docs/LINT.md), so equal config
// digests ⇒ equal results, and caching is sound.
//
//   core::RunDescriptor d;
//   d.set("primitive", "kill");
//   d.set("r", "0.3");
//   core::ResultRecord rec = core::run_descriptor(core::normalize_descriptor(d));
//
// Everything here stays strictly deterministic: no wall clocks (the
// harness injects wall-time measurement from outside the library) and no
// ambient randomness.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace osap::core {

/// One experiment cell as flat key=value pairs, kept sorted by key so the
/// canonical text — and the config digest derived from it — is unique per
/// configuration regardless of insertion order.
class RunDescriptor {
 public:
  /// Insert or replace; keys stay unique and sorted.
  void set(const std::string& key, const std::string& value);

  /// nullptr when the key is absent.
  [[nodiscard]] const std::string* find(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const;
  [[nodiscard]] double num(const std::string& key, double fallback) const;

  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& items() const noexcept {
    return kv_;
  }
  [[nodiscard]] bool empty() const noexcept { return kv_.empty(); }

  /// "key=value;key=value" in sorted key order — the digest input and the
  /// cache's stored identity.
  [[nodiscard]] std::string canonical() const;
  /// FNV-1a over canonical().
  [[nodiscard]] std::uint64_t digest() const;
  /// digest() as 16 lowercase hex digits — the cache file stem.
  [[nodiscard]] std::string digest_hex() const;

  /// Parse "k=v;k=v" (also accepts ',' separators) back into a
  /// descriptor; throws SimError on malformed input.
  static RunDescriptor parse(const std::string& text);

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

/// Harness-side hooks for one run. Everything is optional and passive:
/// a default-constructed RunOptions reproduces the plain library run.
struct RunOptions {
  /// Called every few thousand fired events from inside the event loop.
  /// Never schedules events, so it cannot change the trace digest; it may
  /// throw to abort the run (the osapd RSS watchdog does exactly that —
  /// the thrown message becomes the result record's failure reason).
  std::function<void()> tick;
  /// Write the observability JSON / Chrome trace after the run.
  std::string counters_file;
  std::string trace_file;
};

/// Compact result of one descriptor run — what an osapd worker ships back
/// over its pipe and what the cache stores.
struct ResultRecord {
  bool ok = false;
  /// Failure reason when !ok (sim invariant, descriptor error, watchdog
  /// abort). Runs that fail leave the metric fields zero.
  std::string error;
  std::uint64_t config_digest = 0;
  /// Event-trace digest of the run — the replay witness.
  std::uint64_t trace_digest = 0;
  std::uint64_t events = 0;
  int jobs = 0;
  double sojourn_th = 0;
  double sojourn_tl = 0;
  double makespan = 0;
  /// Cluster cost of the run (per-class hourly rates × node lifetimes,
  /// docs/REVOKE.md); 0 unless the cell enables a lifetime model.
  double cost = 0;
  double tl_swapped_out_mib = 0;
  /// Fixed subset of the run's counters (suspend/resume round trips,
  /// scheduler assignments, speculation) — enough to diff sweeps without
  /// shipping the whole registry per cell.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  /// Wall time of the compute, stamped by the harness (the library never
  /// reads a wall clock). Cached hits return the original value.
  double wall_ms = 0;
};

/// Materialize every default the runner consumes for the descriptor's
/// workload ("two_job" when unspecified), so canonical texts are unique
/// per configuration. Throws SimError for an unknown workload.
[[nodiscard]] RunDescriptor normalize_descriptor(RunDescriptor d);

/// Run one cell. Descriptor errors and simulation failures are reported
/// in the record (ok=false + reason), not thrown — a sweep must survive a
/// bad cell. The record's wall_ms is left zero (see above).
[[nodiscard]] ResultRecord run_descriptor(const RunDescriptor& d, const RunOptions& opts = {});

}  // namespace osap::core
