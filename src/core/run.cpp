#include "core/run.hpp"

#include <algorithm>
#include <sstream>

#include "common/det.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "fault/injector.hpp"
#include "policy/decision.hpp"
#include "policy/gang.hpp"
#include "policy/policy.hpp"
#include "revoke/lifetime.hpp"
#include "revoke/manager.hpp"
#include "sched/capacity.hpp"
#include "sched/deadline.hpp"
#include "sched/fair.hpp"
#include "sched/fifo.hpp"
#include "sched/hfsp.hpp"
#include "trace/names.hpp"
#include "workload/dummy_config.hpp"
#include "workload/swim.hpp"
#include "workload/two_job.hpp"

namespace osap::core {

namespace {

/// Descriptor keys every workload shares. `faults` is an inline fault
/// plan (';'-separated lines, docs/FAULTS.md); `fault_worker` is the
/// osapd worker-pool fault-injection hook (docs/OSAPD.md) — the library
/// runner ignores it, but it must stay digest-visible.
constexpr const char* kCommonKeys[] = {"workload", "faults", "fault_worker"};

constexpr const char* kTwoJobKeys[] = {"primitive", "r", "seed", "tl_state", "th_state",
                                       "jitter"};
constexpr const char* kTraceKeys[] = {"scheduler", "primitive", "jobs",  "nodes",
                                      "seed",      "policy",    "gang_slice",
                                      "swap_watermark", "queues", "state",
                                      "stateful",  "deadline_factor",
                                      // Node-revocation axes (docs/REVOKE.md).
                                      "node_mix",  "lifetime_model", "lifetime_mean_s",
                                      "warning_s", "revoke_react"};

template <std::size_t N>
bool contains(const char* const (&keys)[N], const std::string& key) {
  return std::find_if(std::begin(keys), std::end(keys),
                      [&](const char* k) { return key == k; }) != std::end(keys);
}

void set_default(RunDescriptor& d, const char* key, const char* value) {
  if (d.find(key) == nullptr) d.set(key, value);
}

/// The counters subset shipped per cell: the preemption protocol's
/// round trips, scheduler pressure, failures, speculation. Names come
/// from the registry (src/trace/names.hpp, lint rule SID-1).
std::vector<std::pair<std::string, std::uint64_t>> counter_subset(Cluster& cluster) {
  const trace::CounterRegistry& reg = cluster.sim().trace().counters();
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const char* name : {trace::names::kJtSuspendRequests, trace::names::kJtResumeRequests,
                           trace::names::kJtTasksLost, trace::names::kJtTaskFailures,
                           trace::names::kJtJobsFailed, trace::names::kSchedAssignments,
                           trace::names::kSpecLaunched, trace::names::kSpecWon,
                           trace::names::kPolicyDecisions, trace::names::kPolicySwapDemotions,
                           trace::names::kPolicyOrdersRefused,
                           trace::names::kPolicyGangRotations,
                           trace::names::kPolicyGangAdmissionRefused,
                           trace::names::kFaultRevocationWarnings,
                           trace::names::kFaultRevocations,
                           trace::names::kRevokeWarningsHandled,
                           trace::names::kRevokeWarningsLate,
                           trace::names::kRevokeDrainCheckpoints,
                           trace::names::kRevokeDrainMigrations,
                           trace::names::kRevokeDrainKills,
                           trace::names::kRevokeEvacuations,
                           trace::names::kRevokeMigrationsDone,
                           trace::names::kRevokeBlocksSteered,
                           trace::names::kJtTrackersDraining,
                           trace::names::kJtCheckpointsEvacuated}) {
    out.emplace_back(name, reg.value(name));
  }
  return out;
}

std::string inline_fault_plan(const RunDescriptor& d) {
  std::string plan = d.get("faults", "");
  // Matrix axis values are comma-split by the expansion, so an inline
  // plan from a `.matrix` faults axis separates its lines with '|'; the
  // facade accepts both. "none" names the empty plan (a sweep axis needs
  // a spellable baseline value).
  if (plan == "none") return "";
  std::replace(plan.begin(), plan.end(), ';', '\n');
  std::replace(plan.begin(), plan.end(), '|', '\n');
  return plan;
}

void apply_observability(const RunOptions& opts, ClusterConfig& cfg) {
  if (opts.counters_file.empty() && opts.trace_file.empty()) return;
  cfg.trace.enabled = true;
  cfg.trace.counters_file = opts.counters_file;
  cfg.trace.trace_file = opts.trace_file;
}

void run_two_job_cell(const RunDescriptor& d, const RunOptions& opts, ResultRecord& rec) {
  TwoJobParams params;
  params.primitive = parse_primitive(d.get("primitive", "susp"));
  params.progress_at_launch = d.num("r", 0.5);
  params.tl_state = parse_size(d.get("tl_state", "0"));
  params.th_state = parse_size(d.get("th_state", "0"));
  params.seed = static_cast<std::uint64_t>(d.num("seed", 1));
  params.jitter = d.num("jitter", 0.02);
  params.fault_plan = inline_fault_plan(d);
  params.tick = opts.tick;
  apply_observability(opts, params.cluster);
  // Extraction runs before the success check so failed runs still stamp
  // their digest when the simulation itself completed.
  params.inspect = [&rec](Cluster& cluster) {
    rec.trace_digest = cluster.trace_digest();
    rec.events = cluster.sim().events_processed();
    rec.counters = counter_subset(cluster);
  };
  const TwoJobResult res = run_two_job(params);
  rec.jobs = 2;
  rec.sojourn_th = res.sojourn_th;
  rec.sojourn_tl = res.sojourn_tl;
  rec.makespan = res.makespan;
  rec.tl_swapped_out_mib = to_mib(res.tl_swapped_out);
  rec.ok = true;
}

/// Queue axis of the trace workload: `name:capacity[:preempt]|...`.
/// Descriptor values cannot carry ';' or ',' (RunDescriptor::parse
/// splits on both), so the queue list uses '|' and ':' instead.
std::vector<CapacityScheduler::QueueConfig> parse_queue_spec(const std::string& spec) {
  std::vector<CapacityScheduler::QueueConfig> out;
  std::size_t at = 0;
  while (at < spec.size()) {
    std::size_t end = spec.find('|', at);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(at, end - at);
    at = end + 1;
    if (item.empty()) continue;
    const std::size_t c1 = item.find(':');
    OSAP_CHECK_MSG(c1 != std::string::npos && c1 > 0,
                   "queue spec '" << item << "' is not name:capacity[:preempt]");
    CapacityScheduler::QueueConfig q;
    q.name = item.substr(0, c1);
    const std::size_t c2 = item.find(':', c1 + 1);
    const std::string cap =
        item.substr(c1 + 1, (c2 == std::string::npos ? item.size() : c2) - c1 - 1);
    try {
      q.capacity = std::stod(cap);
    } catch (const std::exception&) {
      throw SimError("queue '" + q.name + "' capacity is not numeric: '" + cap + "'");
    }
    if (c2 != std::string::npos) q.preempt = item.substr(c2 + 1);
    out.push_back(std::move(q));
  }
  OSAP_CHECK_MSG(!out.empty(), "queue spec '" << spec << "' names no queues");
  return out;
}

void run_trace_cell(const RunDescriptor& d, const RunOptions& opts, ResultRecord& rec) {
  ClusterConfig cfg = paper_cluster();
  cfg.num_nodes = static_cast<int>(d.num("nodes", 4));
  cfg.seed = static_cast<std::uint64_t>(d.num("seed", 7));
  const double swap_watermark = d.num("swap_watermark", 0.5);
  cfg.hadoop.suspend_swap_watermark = swap_watermark;
  apply_observability(opts, cfg);
  Cluster cluster(cfg);

  // Swap pressure as seen by the policy layer: the per-node VMM's used
  // fraction of its swap device. Safe to capture the cluster by
  // reference — schedulers and the gang rotator die before it does.
  policy::MemoryProbe probe = [&cluster](NodeId node) {
    return cluster.kernel(node).vmm().swap_pressure();
  };

  const PreemptPrimitive primitive = parse_primitive(d.get("primitive", "susp"));

  // policy=off keeps the legacy direct-primitive path (digest-stable);
  // policy=primitive lifts the `primitive` axis into the engine; any
  // decision spelling forces that decision for every victim.
  std::optional<policy::PolicyOptions> popts;
  const std::string policy_spec = d.get("policy", "off");
  if (policy_spec != "off") {
    policy::PolicyOptions p;
    p.default_decision = policy_spec == "primitive"
                             ? policy::decision_from_primitive(primitive)
                             : policy::parse_decision(policy_spec);
    p.swap_watermark = swap_watermark;
    p.probe = probe;
    popts = std::move(p);
  }

  std::vector<CapacityScheduler::QueueConfig> queues =
      parse_queue_spec(d.get("queues", "default:1"));

  const std::string which = d.get("scheduler", "hfsp");
  if (which == "hfsp") {
    HfspScheduler::Options options;
    options.primitive = primitive;
    options.policy = popts;
    cluster.set_scheduler(std::make_unique<HfspScheduler>(options));
  } else if (which == "fair") {
    FairScheduler::Options options;
    options.cluster_map_slots = cfg.num_nodes * cfg.hadoop.map_slots;
    options.primitive = primitive;
    options.policy = popts;
    cluster.set_scheduler(std::make_unique<FairScheduler>(options));
  } else if (which == "deadline") {
    DeadlineScheduler::Options options;
    options.primitive = primitive;
    options.policy = popts;
    cluster.set_scheduler(std::make_unique<DeadlineScheduler>(options));
  } else if (which == "capacity") {
    CapacityScheduler::Options options;
    options.cluster_map_slots = cfg.num_nodes * cfg.hadoop.map_slots;
    options.queues = queues;
    options.primitive = primitive;
    options.policy = popts;
    cluster.set_scheduler(std::make_unique<CapacityScheduler>(options));
  } else if (which == "fifo") {
    cluster.set_scheduler(std::make_unique<FifoScheduler>());
  } else {
    throw SimError("unknown scheduler '" + which + "' (fifo|fair|hfsp|capacity|deadline)");
  }

  SwimConfig swim;
  swim.jobs = static_cast<int>(d.num("jobs", 12));
  swim.state_memory = parse_size(d.get("state", "1GiB"));
  swim.stateful_fraction = d.num("stateful", 0.2);
  const double deadline_factor = d.num("deadline_factor", 0);
  Rng rng(cfg.seed);
  std::vector<SwimJob> trace = generate_swim_trace(swim, rng);
  auto ids = std::make_shared<std::vector<JobId>>();
  std::size_t job_index = 0;
  for (SwimJob& job : trace) {
    // Round-robin queue assignment; with the default single queue this
    // restates JobSpec's own default and perturbs nothing.
    job.spec.queue = queues[job_index % queues.size()].name;
    if (deadline_factor > 0) {
      job.spec.deadline =
          job.arrival + deadline_factor * static_cast<double>(job.spec.tasks.size());
    }
    ++job_index;
    // A pending arrival is open work: without the retain, the run loop
    // would exit at the first full drain and silently drop every job
    // scheduled to arrive later — `jobs=N` must mean N jobs ran.
    cluster.retain_work();
    cluster.sim().at(job.arrival, [&cluster, ids, spec = std::move(job.spec)]() mutable {
      ids->push_back(cluster.submit(std::move(spec)));
      cluster.release_work();
    });
  }

  // Gang scheduling: a slice > 0 arms the rotation timer; the rotator
  // re-arms itself, and Cluster::run terminates on all-jobs-done
  // regardless of the pending timer.
  std::unique_ptr<policy::GangRotator> gang;
  if (const double gang_slice = d.num("gang_slice", 0); gang_slice > 0) {
    policy::GangOptions gopts;
    gopts.slice = gang_slice;
    gopts.swap_watermark = swap_watermark;
    gopts.probe = probe;
    gang = std::make_unique<policy::GangRotator>(cluster.job_tracker(), gopts);
    gang->start();
  }

  fault::FaultPlan fplan;
  const std::string plan = inline_fault_plan(d);
  if (!plan.empty()) {
    std::istringstream in(plan);
    fplan = fault::parse_fault_plan(in);
  }

  // Node-revocation axes (docs/REVOKE.md): a lifetime model samples a
  // revocation schedule for the transient slice of the cluster, merged
  // into the scripted fault plan so one injector executes both. Cells
  // with a model are costed — including the all-on-demand node_mix=0
  // baseline, so the frontier's cost axis is comparable across mixes.
  const revoke::LifetimeModel lifetime_model =
      revoke::parse_lifetime_model(d.get("lifetime_model", "none"));
  revoke::RevocationPlan rplan;
  const bool costed = lifetime_model != revoke::LifetimeModel::None;
  if (costed) {
    revoke::LifetimeOptions lopts;
    lopts.model = lifetime_model;
    lopts.node_mix = d.num("node_mix", 0);
    lopts.mean_lifetime_s = d.num("lifetime_mean_s", 400);
    lopts.warning_s = d.num("warning_s", 120);
    lopts.seed = cfg.seed;
    rplan = revoke::plan_revocations(static_cast<std::size_t>(cfg.num_nodes), lopts);
    rplan.merge_into(fplan);
    // Give each job an HDFS input so replica steering has blocks to
    // move. The NameNode is metadata-only here (no rng, no scheduled
    // events), so the trace digest is unaffected.
    for (std::size_t i = 0; i < trace.size(); ++i) {
      cluster.create_input("swim_in_" + std::to_string(i), 128 * MiB,
                           cluster.node(i % static_cast<std::size_t>(cfg.num_nodes)));
    }
  }

  std::unique_ptr<fault::FaultInjector> injector;
  std::unique_ptr<revoke::RevocationManager> manager;
  if (!fplan.empty()) {
    injector = std::make_unique<fault::FaultInjector>(cluster, std::move(fplan));
  }
  if (costed && injector != nullptr) {
    manager = std::make_unique<revoke::RevocationManager>(
        cluster, *injector, rplan, revoke::parse_reaction(d.get("revoke_react", "none")));
  }

  cluster.run(opts.tick);

  const JobTracker& jt = cluster.job_tracker();
  double sojourn_sum = 0;
  double first_submit = -1, last_done = 0;
  int succeeded = 0;
  for (JobId id : *ids) {
    const Job& job = jt.job(id);
    if (job.state != JobState::Succeeded) continue;
    ++succeeded;
    sojourn_sum += job.sojourn();
    if (first_submit < 0 || job.submitted_at < first_submit) first_submit = job.submitted_at;
    if (job.completed_at > last_done) last_done = job.completed_at;
  }
  rec.jobs = static_cast<int>(ids->size());
  rec.sojourn_th = succeeded > 0 ? sojourn_sum / succeeded : 0;
  rec.sojourn_tl = 0;
  rec.makespan = succeeded > 0 ? last_done - first_submit : 0;
  if (costed) rec.cost = rplan.cost(cluster.sim().now());
  rec.trace_digest = cluster.trace_digest();
  rec.events = cluster.sim().events_processed();
  rec.counters = counter_subset(cluster);
  rec.ok = true;
}

}  // namespace

void RunDescriptor::set(const std::string& key, const std::string& value) {
  const auto at = std::lower_bound(
      kv_.begin(), kv_.end(), key,
      [](const std::pair<std::string, std::string>& e, const std::string& k) {
        return e.first < k;
      });
  if (at != kv_.end() && at->first == key) {
    at->second = value;
  } else {
    kv_.insert(at, {key, value});
  }
}

const std::string* RunDescriptor::find(const std::string& key) const {
  const auto at = std::lower_bound(
      kv_.begin(), kv_.end(), key,
      [](const std::pair<std::string, std::string>& e, const std::string& k) {
        return e.first < k;
      });
  return at != kv_.end() && at->first == key ? &at->second : nullptr;
}

std::string RunDescriptor::get(const std::string& key, const std::string& fallback) const {
  const std::string* v = find(key);
  return v == nullptr ? fallback : *v;
}

double RunDescriptor::num(const std::string& key, double fallback) const {
  const std::string* v = find(key);
  if (v == nullptr) return fallback;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw SimError("descriptor key '" + key + "' is not numeric: '" + *v + "'");
  }
}

std::string RunDescriptor::canonical() const {
  std::string out;
  for (const auto& [key, value] : kv_) {
    if (!out.empty()) out += ';';
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

std::uint64_t RunDescriptor::digest() const {
  det::Fnv1a fnv;
  const std::string text = canonical();
  fnv.mix_bytes(reinterpret_cast<const unsigned char*>(text.data()), text.size());
  return fnv.value();
}

std::string RunDescriptor::digest_hex() const {
  static const char* kHex = "0123456789abcdef";
  std::uint64_t v = digest();
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[v & 0xf];
    v >>= 4;
  }
  return out;
}

RunDescriptor RunDescriptor::parse(const std::string& text) {
  RunDescriptor d;
  std::size_t at = 0;
  while (at < text.size()) {
    std::size_t end = text.find_first_of(";,", at);
    if (end == std::string::npos) end = text.size();
    const std::string item = text.substr(at, end - at);
    at = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    OSAP_CHECK_MSG(eq != std::string::npos && eq > 0,
                   "descriptor item '" << item << "' is not key=value");
    d.set(item.substr(0, eq), item.substr(eq + 1));
  }
  return d;
}

RunDescriptor normalize_descriptor(RunDescriptor d) {
  const std::string workload = d.get("workload", "two_job");
  d.set("workload", workload);
  if (workload == "two_job") {
    set_default(d, "primitive", "susp");
    set_default(d, "r", "0.5");
    set_default(d, "seed", "1");
    set_default(d, "tl_state", "0");
    set_default(d, "th_state", "0");
    set_default(d, "jitter", "0.02");
  } else if (workload == "trace") {
    set_default(d, "scheduler", "hfsp");
    set_default(d, "primitive", "susp");
    set_default(d, "jobs", "12");
    set_default(d, "nodes", "4");
    set_default(d, "seed", "7");
    set_default(d, "policy", "off");
    set_default(d, "gang_slice", "0");
    set_default(d, "swap_watermark", "0.5");
    set_default(d, "queues", "default:1");
    set_default(d, "state", "1GiB");
    set_default(d, "stateful", "0.2");
    set_default(d, "deadline_factor", "0");
    set_default(d, "node_mix", "0");
    set_default(d, "lifetime_model", "none");
    set_default(d, "lifetime_mean_s", "400");
    set_default(d, "warning_s", "120");
    set_default(d, "revoke_react", "none");
  } else {
    throw SimError("unknown workload '" + workload + "' (two_job|trace)");
  }
  // A mis-keyed axis silently running the default experiment is the bug
  // class the osap CLI's unknown-flag check exists for; reject it here
  // too so a sweep fails its cells loudly instead of caching nonsense.
  for (const auto& [key, value] : d.items()) {
    (void)value;
    const bool known = contains(kCommonKeys, key) ||
                       (workload == "two_job" && contains(kTwoJobKeys, key)) ||
                       (workload == "trace" && contains(kTraceKeys, key));
    OSAP_CHECK_MSG(known, "descriptor key '" << key << "' is not understood by workload '"
                                             << workload << "'");
  }
  return d;
}

ResultRecord run_descriptor(const RunDescriptor& din, const RunOptions& opts) {
  ResultRecord rec;
  try {
    const RunDescriptor d = normalize_descriptor(din);
    rec.config_digest = d.digest();
    const std::string workload = d.get("workload", "two_job");
    if (workload == "two_job") {
      run_two_job_cell(d, opts, rec);
    } else {
      run_trace_cell(d, opts, rec);
    }
  } catch (const std::exception& e) {
    rec.ok = false;
    rec.error = e.what();
  }
  return rec;
}

}  // namespace osap::core
