// libosap public facade — the one header downstream consumers include.
//
// `core` is the top layer of the architecture DAG (tools/lint/layers.txt,
// lint rule LAY-1): everything below it may not reach up, and everything
// outside the library (tools, tests, the osapd sweep harness) is meant
// to reach the simulator through here. Today it re-exports the two
// entry points the ROADMAP's libosap carve-out anchors on; the sweep
// harness will grow this surface (experiment matrices, result
// streaming) without widening anyone's view of the internals.
//
//   osap::core::ClusterConfig cfg;       // = osap::ClusterConfig
//   osap::core::Cluster cluster(cfg);    // full simulated stack
//   cluster.run();                       // virtual-time event loop
//
// Keep this header include-only and cheap: it must never acquire state,
// and it must keep linting clean as the facade of the layer DAG.
#pragma once

#include "hadoop/cluster.hpp"
#include "sim/simulation.hpp"

namespace osap::core {

/// The assembled simulated stack: per-node kernels, network, HDFS,
/// JobTracker + TaskTrackers (src/hadoop/cluster.hpp).
using osap::Cluster;
using osap::ClusterConfig;

/// The deterministic virtual-time event loop underneath it
/// (src/sim/simulation.hpp).
using osap::Simulation;

}  // namespace osap::core
