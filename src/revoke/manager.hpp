// RevocationManager: proactive reactions to revocation warnings
// (docs/REVOKE.md).
//
// The FaultInjector delivers each warning to the JobTracker (which marks
// the doomed tracker draining) and then to this manager, which spends the
// notice window rescuing work:
//
//   * checkpoint-on-warning — every running task on the doomed node is
//     preempted through policy::PreemptionPolicy with a Natjam-checkpoint
//     rule; when the Checkpointed ack lands, the saved state is evacuated
//     to a safe node (the checkpoint would otherwise die with the node's
//     disk) and the task resumed, fast-forwarding elsewhere.
//   * suspend-and-migrate — running tasks are SIGTSTP-suspended, then the
//     frozen process image is CRIU-shipped to a safe node via
//     TaskMigrator (no work lost, explicit dump/transfer/restore costs).
//   * replica steering — the NameNode re-replicates the doomed node's
//     blocks toward on-demand nodes before the disk disappears.
//
// A warning that arrives after its node already died (out-of-order plan)
// is counted and dropped — the drain is moot, never wedged.
#pragma once

#include <string>
#include <unordered_map>

#include "fault/injector.hpp"
#include "policy/policy.hpp"
#include "preempt/migration.hpp"
#include "preempt/preemptor.hpp"
#include "revoke/lifetime.hpp"

namespace osap::revoke {

enum class Reaction {
  /// Drain only: the JobTracker stops assigning to the doomed node, but
  /// in-flight work rides the crash (reactive baseline).
  None,
  /// Natjam checkpoint-on-warning with evacuation.
  Checkpoint,
  /// SIGTSTP suspend, then CRIU migration of the frozen image.
  Migrate,
};

[[nodiscard]] const char* to_string(Reaction r) noexcept;
/// Parse "none" / "checkpoint" / "migrate"; throws SimError otherwise.
[[nodiscard]] Reaction parse_reaction(const std::string& name);

class RevocationManager {
 public:
  /// Wires itself into `injector` as the revocation handler and into the
  /// JobTracker's event hooks. Construct after the Cluster and the
  /// injector; keep alive for the whole run (hooks reference it).
  RevocationManager(Cluster& cluster, fault::FaultInjector& injector, RevocationPlan plan,
                    Reaction reaction);
  RevocationManager(const RevocationManager&) = delete;
  RevocationManager& operator=(const RevocationManager&) = delete;

  /// Cluster cost of running until `sim_end` (the frontier's cost axis).
  [[nodiscard]] double cost(double sim_end) const { return plan_.cost(sim_end); }
  [[nodiscard]] const RevocationPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] Reaction reaction() const noexcept { return reaction_; }

 private:
  void on_warning(const fault::NodeRevocation& r, bool accepted);
  void on_event(const ClusterEvent& e);
  /// Drain the doomed node's live work through the policy engine.
  void drain(NodeId node);
  /// Next safe landing node: not doomed, not crashed, on-demand nodes
  /// before transient ones, rotating so rescues spread out. Invalid id
  /// when nothing safe remains.
  [[nodiscard]] NodeId next_target(NodeId doomed);

  Cluster& cluster_;
  fault::FaultInjector& injector_;
  RevocationPlan plan_;
  Reaction reaction_;
  policy::PreemptionPolicy policy_;
  Preemptor preemptor_;
  TaskMigrator migrator_;
  /// Nodes with an outstanding warning (value unused; keeps the
  /// det::sorted_keys idiom available).
  std::unordered_map<NodeId, bool> doomed_;
  std::size_t target_cursor_ = 0;

  trace::Counter* ctr_handled_ = nullptr;
  trace::Counter* ctr_late_ = nullptr;
  trace::Counter* ctr_drain_checkpoints_ = nullptr;
  trace::Counter* ctr_drain_migrations_ = nullptr;
  trace::Counter* ctr_drain_kills_ = nullptr;
  trace::Counter* ctr_evacuations_ = nullptr;
  trace::Counter* ctr_migrations_done_ = nullptr;
  trace::Counter* ctr_blocks_steered_ = nullptr;
};

}  // namespace osap::revoke
