#include "revoke/manager.hpp"

#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"
#include "trace/context.hpp"
#include "trace/names.hpp"

namespace osap::revoke {

namespace {

constexpr const char* kLog = "revoke";

policy::PolicyOptions drain_policy(Reaction reaction) {
  policy::PolicyOptions options;
  switch (reaction) {
    case Reaction::None: options.default_decision = policy::Decision::Wait; break;
    case Reaction::Checkpoint:
      options.default_decision = policy::Decision::NatjamCheckpoint;
      break;
    case Reaction::Migrate: options.default_decision = policy::Decision::Suspend; break;
  }
  return options;
}

}  // namespace

const char* to_string(Reaction r) noexcept {
  switch (r) {
    case Reaction::None: return "none";
    case Reaction::Checkpoint: return "checkpoint";
    case Reaction::Migrate: return "migrate";
  }
  return "?";
}

Reaction parse_reaction(const std::string& name) {
  if (name == "none") return Reaction::None;
  if (name == "checkpoint") return Reaction::Checkpoint;
  if (name == "migrate") return Reaction::Migrate;
  OSAP_CHECK_MSG(false, "unknown revocation reaction '" << name
                                                        << "' (none|checkpoint|migrate)");
  return Reaction::None;
}

RevocationManager::RevocationManager(Cluster& cluster, fault::FaultInjector& injector,
                                     RevocationPlan plan, Reaction reaction)
    : cluster_(cluster),
      injector_(injector),
      plan_(std::move(plan)),
      reaction_(reaction),
      policy_(cluster.job_tracker(), drain_policy(reaction)),
      preemptor_(cluster.job_tracker()),
      migrator_(cluster) {
  trace::CounterRegistry& counters = cluster_.sim().trace().counters();
  ctr_handled_ = &counters.counter(trace::names::kRevokeWarningsHandled);
  ctr_late_ = &counters.counter(trace::names::kRevokeWarningsLate);
  ctr_drain_checkpoints_ = &counters.counter(trace::names::kRevokeDrainCheckpoints);
  ctr_drain_migrations_ = &counters.counter(trace::names::kRevokeDrainMigrations);
  ctr_drain_kills_ = &counters.counter(trace::names::kRevokeDrainKills);
  ctr_evacuations_ = &counters.counter(trace::names::kRevokeEvacuations);
  ctr_migrations_done_ = &counters.counter(trace::names::kRevokeMigrationsDone);
  ctr_blocks_steered_ = &counters.counter(trace::names::kRevokeBlocksSteered);
  injector_.set_revocation_handler(
      [this](const fault::NodeRevocation& r, bool accepted) { on_warning(r, accepted); });
  cluster_.job_tracker().add_event_hook([this](const ClusterEvent& e) { on_event(e); });
}

void RevocationManager::on_warning(const fault::NodeRevocation& r, bool accepted) {
  if (!accepted) {
    // The node already died (out-of-order plan) or never registered: the
    // notice window is moot. Count it and move on — nothing to drain.
    ctr_late_->add();
    OSAP_LOG(Warn, kLog) << "late revocation warning for node" << r.node.value() << ", ignored";
    return;
  }
  ctr_handled_->add();
  doomed_.emplace(r.node, true);
  if (reaction_ == Reaction::None) return;

  // Steer the doomed node's block replicas toward safe (on-demand-first)
  // nodes while its disk still exists.
  std::vector<NodeId> targets;
  const std::size_t n = plan_.transient.size();
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId node{i};
      if (plan_.transient[i] != (pass == 1)) continue;
      if (node == r.node || doomed_.contains(node) || injector_.node_crashed(node)) continue;
      targets.push_back(node);
    }
  }
  const std::size_t moved = cluster_.namenode().re_replicate_away(r.node, targets);
  if (moved > 0) ctr_blocks_steered_->add(moved);

  drain(r.node);
}

void RevocationManager::drain(NodeId node) {
  JobTracker& jt = cluster_.job_tracker();
  for (JobId jid : jt.jobs_in_order()) {
    for (TaskId tid : jt.job(jid).tasks) {
      const Task& t = jt.task(tid);
      // A racing backup copy on the doomed node forfeits its race now;
      // the primary elsewhere is untouched.
      if (t.speculating() && t.spec_node == node) jt.kill_speculative(tid);
      if (!t.live() || t.node != node) continue;
      switch (t.state) {
        case TaskState::Running: {
          const policy::Outcome out = policy_.preempt(preemptor_, tid);
          if (!out.issued) break;
          if (out.decision == policy::Decision::NatjamCheckpoint) {
            ctr_drain_checkpoints_->add();
          } else if (out.decision == policy::Decision::Kill) {
            ctr_drain_kills_->add();
          }
          break;
        }
        case TaskState::Suspended:
          if (t.checkpointed) {
            // Parked here from an earlier preemption: the checkpoint dies
            // with the node unless evacuated.
            const NodeId target = next_target(node);
            if (target.valid() && jt.evacuate_checkpoint(tid, target)) {
              ctr_evacuations_->add();
              jt.resume_task(tid);
            }
          } else if (reaction_ == Reaction::Migrate) {
            const NodeId target = next_target(node);
            if (target.valid() &&
                migrator_.migrate(tid, target, [this](bool landed) {
                  if (landed) ctr_migrations_done_->add();
                })) {
              ctr_drain_migrations_->add();
            }
          } else if (jt.kill_task(tid)) {
            // A SIGTSTP-parked JVM dies with its node anyway; requeueing
            // during the notice beats losing the slot time to the crash.
            ctr_drain_kills_->add();
          }
          break;
        default:
          // MustSuspend / MustResume: the in-flight command resolves via
          // its ack; the TaskSuspended hook picks the attempt up then.
          break;
      }
    }
  }
}

void RevocationManager::on_event(const ClusterEvent& e) {
  if (e.type != ClusterEventType::TaskSuspended || doomed_.empty()) return;
  JobTracker& jt = cluster_.job_tracker();
  const Task& t = jt.task(e.task);
  if (t.state != TaskState::Suspended) return;
  if (t.checkpointed) {
    // A checkpoint just landed on a doomed disk (the drain's own
    // checkpoint-suspends resolve here): evacuate and resume, so the
    // relaunch fast-forwards on a surviving node.
    if (!t.checkpoint_node.valid() || !doomed_.contains(t.checkpoint_node)) return;
    const NodeId target = next_target(t.checkpoint_node);
    if (target.valid() && jt.evacuate_checkpoint(e.task, target)) {
      ctr_evacuations_->add();
      jt.resume_task(e.task);
    }
  } else if (reaction_ == Reaction::Migrate && t.node.valid() && doomed_.contains(t.node)) {
    const NodeId target = next_target(t.node);
    if (target.valid() &&
        migrator_.migrate(e.task, target, [this](bool landed) {
          if (landed) ctr_migrations_done_->add();
        })) {
      ctr_drain_migrations_->add();
    }
  }
}

NodeId RevocationManager::next_target(NodeId doomed) {
  std::vector<NodeId> on_demand;
  std::vector<NodeId> transient;
  const std::size_t n = plan_.transient.size();
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node{i};
    if (node == doomed || doomed_.contains(node) || injector_.node_crashed(node)) continue;
    (plan_.transient[i] ? transient : on_demand).push_back(node);
  }
  // On-demand capacity exclusively while any remains: landing a rescue on
  // another transient node just schedules the next rescue.
  const std::vector<NodeId>& pool = on_demand.empty() ? transient : on_demand;
  if (pool.empty()) return NodeId{};
  return pool[target_cursor_++ % pool.size()];
}

}  // namespace osap::revoke
