#include "revoke/lifetime.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace osap::revoke {

namespace {

/// Normalized empirical lifetime table (fractions of the mean): a spread
/// of short-lived, typical and long-lived nodes with mean ~1, cycled by
/// transient-node ordinal under TraceReplay.
constexpr double kTraceTable[] = {0.18, 1.35, 0.52, 2.40, 0.75, 0.95,
                                  3.10, 0.33, 1.10, 0.60, 1.85, 0.27};
constexpr std::size_t kTraceTableSize = sizeof(kTraceTable) / sizeof(kTraceTable[0]);

/// sqrt(pi), spelled out so the Weibull scale needs no libm gamma.
constexpr double kSqrtPi = 1.7724538509055160273;

}  // namespace

const char* to_string(LifetimeModel m) noexcept {
  switch (m) {
    case LifetimeModel::None: return "none";
    case LifetimeModel::Exponential: return "exp";
    case LifetimeModel::Weibull: return "weibull";
    case LifetimeModel::TraceReplay: return "trace";
    case LifetimeModel::Windows: return "windows";
  }
  return "?";
}

LifetimeModel parse_lifetime_model(const std::string& name) {
  if (name == "none") return LifetimeModel::None;
  if (name == "exp") return LifetimeModel::Exponential;
  if (name == "weibull") return LifetimeModel::Weibull;
  if (name == "trace") return LifetimeModel::TraceReplay;
  if (name == "windows") return LifetimeModel::Windows;
  OSAP_CHECK_MSG(false, "unknown lifetime model '" << name
                                                   << "' (none|exp|weibull|trace|windows)");
  return LifetimeModel::None;
}

void RevocationPlan::merge_into(fault::FaultPlan& plan) const {
  plan.revocations.insert(plan.revocations.end(), revocations.begin(), revocations.end());
}

double RevocationPlan::cost(double sim_end) const {
  double total = 0;
  for (std::size_t i = 0; i < transient.size(); ++i) {
    const double rate = transient[i] ? transient_rate : on_demand_rate;
    const double alive = std::min(death_at[i], sim_end);
    total += rate * alive / 3600.0;
  }
  return total;
}

RevocationPlan plan_revocations(std::size_t num_nodes, const LifetimeOptions& opts) {
  OSAP_CHECK_MSG(opts.node_mix >= 0 && opts.node_mix <= 1,
                 "node_mix " << opts.node_mix << " outside [0,1]");
  OSAP_CHECK_MSG(opts.mean_lifetime_s > 0, "mean lifetime must be positive");
  OSAP_CHECK_MSG(opts.warning_s > 0, "revocation warning must be positive");

  RevocationPlan plan;
  plan.on_demand_rate = opts.on_demand_rate;
  plan.transient_rate = opts.transient_rate;
  plan.transient.assign(num_nodes, false);
  plan.death_at.assign(num_nodes, RevocationPlan::kSurvives);
  if (opts.model == LifetimeModel::None || opts.node_mix <= 0 || num_nodes == 0) return plan;

  const auto transient_count = static_cast<std::size_t>(
      opts.node_mix * static_cast<double>(num_nodes) + 0.5);
  // Transient nodes occupy the top of the index range so node 0 — the
  // default HDFS writer and first placement target — stays on-demand.
  // Lifetimes flow through a dedicated stream derived from the seed, so
  // enabling revocations never perturbs SWIM trace generation.
  Rng rng(opts.seed ^ 0x7265766F6B65ULL);  // "revoke"
  std::size_t ordinal = 0;
  for (std::size_t i = num_nodes - transient_count; i < num_nodes; ++i, ++ordinal) {
    plan.transient[i] = true;
    double life = 0;
    switch (opts.model) {
      case LifetimeModel::None: break;
      case LifetimeModel::Exponential:
        life = rng.exponential(opts.mean_lifetime_s);
        break;
      case LifetimeModel::Weibull: {
        // Shape 2: mean = scale * sqrt(pi)/2, so scale = 2*mean/sqrt(pi);
        // inverse CDF is scale * sqrt(-ln(1-u)).
        const double scale = 2.0 * opts.mean_lifetime_s / kSqrtPi;
        life = scale * std::sqrt(-std::log1p(-rng.uniform()));
        break;
      }
      case LifetimeModel::TraceReplay:
        life = kTraceTable[ordinal % kTraceTableSize] * opts.mean_lifetime_s;
        break;
      case LifetimeModel::Windows: {
        life = rng.exponential(opts.mean_lifetime_s);
        const double phase = std::fmod(life, opts.window_period_s);
        // The provider reclaims in bursts: a death falling between
        // windows is deferred to the next window start.
        if (phase > opts.window_open_s) life += opts.window_period_s - phase;
        break;
      }
    }
    if (life <= 0) life = 1.0;
    if (life >= opts.horizon_s) continue;  // survives the run
    plan.death_at[i] = life;
    fault::NodeRevocation r;
    r.at = life;
    r.node = NodeId{i};
    r.warning = opts.warning_s;
    plan.revocations.push_back(r);
  }
  return plan;
}

}  // namespace osap::revoke
