// Seeded statistical node-lifetime models (docs/REVOKE.md).
//
// Transient capacity — spot VMs, opportunistic grid slots — is cheap
// because the provider may revoke whole nodes. This module turns a
// (node count, transient mix, lifetime model, seed) tuple into a
// FaultPlan-compatible revocation schedule: each transient node draws one
// lifetime from the chosen distribution through the sim's own Rng, so the
// same descriptor replays bit-identically (the repo's determinism law).
// The plan also carries per-class hourly rates, from which the cost side
// of the cost/completion frontier is computed.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "fault/fault.hpp"

namespace osap::revoke {

enum class LifetimeModel {
  /// No revocations; every node is effectively on-demand (the frontier's
  /// baseline column, still costed at the on-demand rate).
  None,
  /// Memoryless exponential lifetimes — the classic spot-revocation
  /// assumption (constant hazard).
  Exponential,
  /// Weibull with shape 2 (increasing hazard): young nodes are safe,
  /// aging ones increasingly likely to be reclaimed. Shape 2 keeps the
  /// mean/scale relation in closed form (no libm gamma), so lifetimes are
  /// bit-identical across standard libraries.
  Weibull,
  /// Replay of a normalized empirical lifetime table (fractions of the
  /// mean), cycled by transient-node ordinal — a deterministic stand-in
  /// for trace-driven revocation studies.
  TraceReplay,
  /// Temporally-constrained revocation à la Kadupitiya et al.: lifetimes
  /// are drawn exponentially but deaths only land inside recurring
  /// revocation windows (the provider reclaims in bursts); a death that
  /// would fall between windows is deferred to the next window start.
  Windows,
};

[[nodiscard]] const char* to_string(LifetimeModel m) noexcept;
/// Parse "none" / "exp" / "weibull" / "trace" / "windows"; throws
/// SimError on anything else.
[[nodiscard]] LifetimeModel parse_lifetime_model(const std::string& name);

struct LifetimeOptions {
  LifetimeModel model = LifetimeModel::None;
  /// Fraction of the cluster's nodes that are transient, in [0,1].
  /// Transient nodes are taken from the top of the node-index range, so
  /// node 0 (the default HDFS writer) stays on-demand.
  double node_mix = 0;
  /// Mean sampled lifetime, seconds.
  double mean_lifetime_s = 400;
  /// Revocation notice delivered before each death (the spot warning).
  Duration warning_s = 120;
  /// Lifetimes sampled at or past this horizon survive the run: no
  /// revocation is scheduled for them (they still cost transient-rate).
  double horizon_s = 3600;
  /// Per-class hourly rates (arbitrary currency); the frontier's cost
  /// axis. Transient capacity is priced below on-demand.
  double on_demand_rate = 1.0;
  double transient_rate = 0.3;
  /// Windows model: revocation bursts recur every `window_period_s`,
  /// each open for `window_open_s` from its start.
  double window_period_s = 600;
  double window_open_s = 120;
  std::uint64_t seed = 1;
};

/// A materialized revocation schedule for one cluster.
struct RevocationPlan {
  static constexpr double kSurvives = std::numeric_limits<double>::infinity();

  /// Per node index: true when the node is transient.
  std::vector<bool> transient;
  /// Per node index: scheduled death time, kSurvives when none.
  std::vector<double> death_at;
  /// The revocation entries (ascending node index), ready to merge into a
  /// FaultPlan via merge_into().
  std::vector<fault::NodeRevocation> revocations;
  double on_demand_rate = 1.0;
  double transient_rate = 0.3;

  /// Append the schedule to `plan` (the injector executes both the
  /// scripted faults and the sampled revocations through one filter).
  void merge_into(fault::FaultPlan& plan) const;

  /// Cluster cost of running until `sim_end` seconds: each node accrues
  /// its class rate until its death or the end of the run.
  [[nodiscard]] double cost(double sim_end) const;

  [[nodiscard]] bool is_transient(NodeId node) const {
    return node.value() < transient.size() && transient[node.value()];
  }
};

/// Sample the schedule for `num_nodes` worker nodes. Deterministic: one
/// Rng seeded from `opts.seed`, nodes visited in ascending index.
[[nodiscard]] RevocationPlan plan_revocations(std::size_t num_nodes, const LifetimeOptions& opts);

}  // namespace osap::revoke
