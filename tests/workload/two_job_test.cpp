// Property-style checks of the paper's scenario: the qualitative results
// of §IV must hold across the whole r sweep and across seeds.
#include "workload/two_job.hpp"

#include <gtest/gtest.h>

namespace osap {
namespace {

TwoJobResult run(PreemptPrimitive primitive, double r, Bytes tl_state = 0, Bytes th_state = 0,
                 std::uint64_t seed = 1) {
  TwoJobParams params;
  params.primitive = primitive;
  params.progress_at_launch = r;
  params.tl_state = tl_state;
  params.th_state = th_state;
  params.seed = seed;
  return run_two_job(params);
}

TEST(TwoJob, SoloDurationMatchesCalibration) {
  const Duration solo = solo_task_duration(light_map_task(), paper_cluster());
  EXPECT_GT(solo, 75.0);
  EXPECT_LT(solo, 85.0);
}

TEST(TwoJob, DeterministicForSameSeed) {
  const TwoJobResult a = run(PreemptPrimitive::Suspend, 0.5, 0, 0, 99);
  const TwoJobResult b = run(PreemptPrimitive::Suspend, 0.5, 0, 0, 99);
  EXPECT_DOUBLE_EQ(a.sojourn_th, b.sojourn_th);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.tl_swapped_out, b.tl_swapped_out);
}

TEST(TwoJob, SeedsProduceSmallSpread) {
  // "Minimum and maximum values measured are within 5% of the average."
  double lo = 1e18, hi = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const double v = run(PreemptPrimitive::Suspend, 0.5, 0, 0, seed).sojourn_th;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT((hi - lo) / lo, 0.10);
}

class TwoJobSweep : public ::testing::TestWithParam<double> {};

TEST_P(TwoJobSweep, SuspendBeatsKillOnSojourn) {
  const double r = GetParam();
  EXPECT_LT(run(PreemptPrimitive::Suspend, r).sojourn_th,
            run(PreemptPrimitive::Kill, r).sojourn_th);
}

TEST_P(TwoJobSweep, SuspendBeatsWaitOnSojourn) {
  const double r = GetParam();
  EXPECT_LT(run(PreemptPrimitive::Suspend, r).sojourn_th,
            run(PreemptPrimitive::Wait, r).sojourn_th);
}

TEST_P(TwoJobSweep, SuspendMatchesWaitOnMakespan) {
  const double r = GetParam();
  const double susp = run(PreemptPrimitive::Suspend, r).makespan;
  const double wait = run(PreemptPrimitive::Wait, r).makespan;
  // Light-weight tasks: no paging, so the suspend makespan tracks wait.
  EXPECT_NEAR(susp, wait, 3.0);
}

TEST_P(TwoJobSweep, KillWastesWorkProportionalToProgress) {
  const double r = GetParam();
  const double kill = run(PreemptPrimitive::Kill, r).makespan;
  const double wait = run(PreemptPrimitive::Wait, r).makespan;
  // Kill redoes ~r of tl (~76 s of parse work) plus cleanup.
  EXPECT_GT(kill, wait + r * 60.0);
  EXPECT_LT(kill, wait + r * 90.0 + 12.0);
}

TEST_P(TwoJobSweep, LightTasksNeverSwap) {
  const double r = GetParam();
  EXPECT_EQ(run(PreemptPrimitive::Suspend, r).tl_swapped_out, 0u);
}

TEST_P(TwoJobSweep, WaitSojournShrinksWithProgress) {
  const double r = GetParam();
  if (r >= 0.85) return;  // need headroom for the comparison
  EXPECT_GT(run(PreemptPrimitive::Wait, r).sojourn_th,
            run(PreemptPrimitive::Wait, r + 0.1).sojourn_th);
}

INSTANTIATE_TEST_SUITE_P(ProgressSweep, TwoJobSweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

TEST(TwoJobWorstCase, KillSlightlyBeatsSuspendOnSojourn) {
  // Fig. 3a: with memory-hungry tasks, paging makes kill's sojourn
  // slightly lower than suspend's.
  const double susp = run(PreemptPrimitive::Suspend, 0.5, 2 * GiB, 2 * GiB).sojourn_th;
  const double kill = run(PreemptPrimitive::Kill, 0.5, 2 * GiB, 2 * GiB).sojourn_th;
  EXPECT_GT(susp, kill);
  EXPECT_LT(susp, kill + 15.0);  // "marginal" overhead
}

TEST(TwoJobWorstCase, WaitSlightlyBeatsSuspendOnMakespan) {
  // Fig. 3b.
  const double susp = run(PreemptPrimitive::Suspend, 0.5, 2 * GiB, 2 * GiB).makespan;
  const double wait = run(PreemptPrimitive::Wait, 0.5, 2 * GiB, 2 * GiB).makespan;
  EXPECT_GT(susp, wait);
  EXPECT_LT(susp, wait * 1.15);
}

TEST(TwoJobWorstCase, SuspendStillBeatsWaitOnSojourn) {
  const double susp = run(PreemptPrimitive::Suspend, 0.3, 2 * GiB, 2 * GiB).sojourn_th;
  const double wait = run(PreemptPrimitive::Wait, 0.3, 2 * GiB, 2 * GiB).sojourn_th;
  EXPECT_LT(susp, wait);
}

TEST(TwoJobWorstCase, SuspendStillBeatsKillOnMakespan) {
  const double susp = run(PreemptPrimitive::Suspend, 0.5, 2 * GiB, 2 * GiB).makespan;
  const double kill = run(PreemptPrimitive::Kill, 0.5, 2 * GiB, 2 * GiB).makespan;
  EXPECT_LT(susp, kill);
}

TEST(TwoJobWorstCase, SuspensionForcesSwap) {
  const TwoJobResult res = run(PreemptPrimitive::Suspend, 0.5, 2 * GiB, 2 * GiB);
  EXPECT_GT(res.tl_swapped_out, 400 * MiB);
  EXPECT_GT(res.tl_swapped_in, 300 * MiB);
  EXPECT_GE(res.node_swap_out, res.tl_swapped_out);
}

class MemorySweep : public ::testing::TestWithParam<double> {};

TEST_P(MemorySweep, SwapGrowsWithThFootprint) {
  // Fig. 4: tl = 2.5 GiB; more th memory means more of tl paged out.
  const double m = GetParam();
  const TwoJobResult now = run(PreemptPrimitive::Suspend, 0.5, gib(2.5), gib(m));
  const TwoJobResult next = run(PreemptPrimitive::Suspend, 0.5, gib(2.5), gib(m + 0.625));
  EXPECT_GE(next.tl_swapped_out, now.tl_swapped_out);
}

TEST_P(MemorySweep, OverheadTracksSwapVolume) {
  const double m = GetParam();
  const TwoJobResult susp = run(PreemptPrimitive::Suspend, 0.5, gib(2.5), gib(m));
  const TwoJobResult wait = run(PreemptPrimitive::Wait, 0.5, gib(2.5), gib(m));
  const double overhead = susp.makespan - wait.makespan;
  // Roughly linear: paging two ways at ~140 MiB/s, with generous slack.
  const double expected = 2.0 * static_cast<double>(susp.tl_swapped_out) /
                          (140.0 * static_cast<double>(MiB));
  EXPECT_LT(std::abs(overhead - expected), expected * 0.8 + 6.0);
}

INSTANTIATE_TEST_SUITE_P(ThMemory, MemorySweep, ::testing::Values(0.625, 1.25, 1.875));

TEST(TwoJobNatjam, AlwaysPaysSerializationForStatefulTasks) {
  // §II / §IV-C: Natjam serializes + deserializes the whole state; the
  // OS-assisted primitive pays only when memory is actually tight. With
  // 1 GiB of state and plenty of RAM, susp is free while natjam is not.
  const double natjam = run(PreemptPrimitive::NatjamCheckpoint, 0.5, 1 * GiB, 0).makespan;
  const double susp = run(PreemptPrimitive::Suspend, 0.5, 1 * GiB, 0).makespan;
  EXPECT_GT(natjam, susp + 10.0);
}

}  // namespace
}  // namespace osap
