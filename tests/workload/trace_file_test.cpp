#include "workload/trace_file.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace osap {
namespace {

TEST(TraceFile, ParsesBasicJobs) {
  std::istringstream in(R"(
# name  arrival  input   shuffle  output
grep1   0        1GiB    0        1MiB
sort1   35       2GiB    512MiB   512MiB
)");
  const auto jobs = load_trace_file(in);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].spec.name, "grep1");
  EXPECT_DOUBLE_EQ(jobs[0].arrival, 0.0);
  // 1 GiB at 512 MiB blocks = 2 mappers, no reducer.
  EXPECT_EQ(jobs[0].spec.tasks.size(), 2u);
  // 2 GiB = 4 mappers + 1 reducer.
  EXPECT_EQ(jobs[1].spec.tasks.size(), 5u);
  EXPECT_EQ(jobs[1].spec.tasks.back().type, TaskType::Reduce);
  EXPECT_EQ(jobs[1].spec.tasks.back().shuffle_bytes, 512 * MiB);
}

TEST(TraceFile, PartialLastBlock) {
  std::istringstream in("j 0 768MiB 0 0\n");
  const auto jobs = load_trace_file(in);
  ASSERT_EQ(jobs[0].spec.tasks.size(), 2u);
  EXPECT_EQ(jobs[0].spec.tasks[0].input_bytes, 512 * MiB);
  EXPECT_EQ(jobs[0].spec.tasks[1].input_bytes, 256 * MiB);
}

TEST(TraceFile, OptionalStateColumnMakesHungryMappers) {
  std::istringstream in("learn 70 512MiB 0 1MiB 2GiB\n");
  const auto jobs = load_trace_file(in);
  ASSERT_EQ(jobs[0].spec.tasks.size(), 1u);
  EXPECT_EQ(jobs[0].spec.tasks[0].state_memory, 2 * GiB);
}

TEST(TraceFile, CustomBlockSize) {
  TraceFileConfig cfg;
  cfg.block_size = 128 * MiB;
  std::istringstream in("j 0 512MiB 0 0\n");
  const auto jobs = load_trace_file(in, cfg);
  EXPECT_EQ(jobs[0].spec.tasks.size(), 4u);
}

TEST(TraceFile, CommentsAndBlankLinesSkipped) {
  std::istringstream in("\n# nothing\n  \nj 1 64MiB 0 0\n");
  EXPECT_EQ(load_trace_file(in).size(), 1u);
}

TEST(TraceFile, RejectsUnsortedArrivals) {
  std::istringstream in("a 10 64MiB 0 0\nb 5 64MiB 0 0\n");
  EXPECT_THROW(load_trace_file(in), SimError);
}

TEST(TraceFile, RejectsMalformedLines) {
  std::istringstream bad1("j notanumber 64MiB 0 0\n");
  EXPECT_THROW(load_trace_file(bad1), SimError);
  std::istringstream bad2("j 0 64MiB\n");
  EXPECT_THROW(load_trace_file(bad2), SimError);
  std::istringstream bad3("j 0 64XB 0 0\n");
  EXPECT_THROW(load_trace_file(bad3), SimError);
}

TEST(TraceFile, ZeroInputStillYieldsOneMapper) {
  std::istringstream in("tiny 0 0 0 0\n");
  const auto jobs = load_trace_file(in);
  EXPECT_EQ(jobs[0].spec.tasks.size(), 1u);
}

}  // namespace
}  // namespace osap
