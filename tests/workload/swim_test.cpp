#include "workload/swim.hpp"

#include <gtest/gtest.h>

namespace osap {
namespace {

TEST(Swim, GeneratesRequestedJobCount) {
  SwimConfig cfg;
  cfg.jobs = 25;
  Rng rng(1);
  const auto trace = generate_swim_trace(cfg, rng);
  EXPECT_EQ(trace.size(), 25u);
}

TEST(Swim, ArrivalsAreMonotonic) {
  SwimConfig cfg;
  cfg.jobs = 50;
  Rng rng(2);
  const auto trace = generate_swim_trace(cfg, rng);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].arrival, trace[i - 1].arrival);
  }
}

TEST(Swim, TaskCountsWithinBounds) {
  SwimConfig cfg;
  cfg.jobs = 200;
  cfg.max_tasks = 16;
  Rng rng(3);
  for (const SwimJob& job : generate_swim_trace(cfg, rng)) {
    EXPECT_GE(job.spec.tasks.size(), 1u);
    EXPECT_LE(job.spec.tasks.size(), 16u);
  }
}

TEST(Swim, HeavyTailMostJobsAreSmall) {
  SwimConfig cfg;
  cfg.jobs = 400;
  cfg.max_tasks = 20;
  cfg.tail_alpha = 1.5;
  Rng rng(4);
  int small = 0, large = 0;
  for (const SwimJob& job : generate_swim_trace(cfg, rng)) {
    if (job.spec.tasks.size() <= 2) ++small;
    if (job.spec.tasks.size() >= 10) ++large;
  }
  EXPECT_GT(small, 200);  // the majority are tiny
  EXPECT_GT(large, 0);    // but the tail exists
}

TEST(Swim, StatefulFractionRoughlyHonored) {
  SwimConfig cfg;
  cfg.jobs = 300;
  cfg.stateful_fraction = 0.3;
  Rng rng(5);
  int stateful = 0;
  for (const SwimJob& job : generate_swim_trace(cfg, rng)) {
    if (job.spec.tasks.front().state_memory > 0) ++stateful;
  }
  EXPECT_GT(stateful, 300 * 0.3 * 0.6);
  EXPECT_LT(stateful, 300 * 0.3 * 1.5);
}

TEST(Swim, DeterministicGivenSeed) {
  SwimConfig cfg;
  cfg.jobs = 10;
  Rng a(7), b(7);
  const auto ta = generate_swim_trace(cfg, a);
  const auto tb = generate_swim_trace(cfg, b);
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_DOUBLE_EQ(ta[i].arrival, tb[i].arrival);
    EXPECT_EQ(ta[i].spec.tasks.size(), tb[i].spec.tasks.size());
  }
}

TEST(Swim, MeanInterarrivalApproximatelyRespected) {
  SwimConfig cfg;
  cfg.jobs = 2000;
  cfg.mean_interarrival = seconds(10);
  Rng rng(8);
  const auto trace = generate_swim_trace(cfg, rng);
  const double span = trace.back().arrival - trace.front().arrival;
  const double mean = span / static_cast<double>(trace.size() - 1);
  EXPECT_NEAR(mean, 10.0, 1.0);
}

}  // namespace
}  // namespace osap
