// The digest-keyed result cache: hits return the stored bytes verbatim,
// anything untrustworthy is quarantined (renamed aside, never believed
// twice), and stores are atomic — no torn files, no stray temp files.
#include "osapd/cache.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "osapd/record.hpp"

namespace osap::osapd {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test directory under the gtest temp root. Named after the
/// test (not a random suffix — the determinism rules ban randomness in
/// tests) and wiped on entry so reruns start clean.
fs::path fresh_dir() {
  const testing::TestInfo* info = testing::UnitTest::GetInstance()->current_test_info();
  fs::path dir = fs::path(testing::TempDir()) / "osapd_cache_test" / info->name();
  fs::remove_all(dir);
  return dir;
}

core::RunDescriptor cell(const std::string& text) {
  return core::normalize_descriptor(core::RunDescriptor::parse(text));
}

std::string record_bytes(const core::RunDescriptor& d) {
  core::ResultRecord rec;
  rec.ok = true;
  rec.config_digest = d.digest();
  rec.trace_digest = 0x1122334455667788ull;
  rec.events = 742;
  rec.jobs = 2;
  rec.sojourn_th = 78.5;
  rec.makespan = 600.25;
  return serialize_record(d.canonical(), rec);
}

TEST(Cache, HitReturnsTheStoredBytesVerbatim) {
  ResultCache cache(fresh_dir());
  const core::RunDescriptor d = cell("primitive=susp;r=0.5");
  EXPECT_FALSE(cache.lookup(d).has_value());  // cold

  const std::string bytes = record_bytes(d);
  cache.store(d, bytes);
  const std::optional<ResultCache::Hit> hit = cache.lookup(d);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->record_json, bytes);  // byte-identical, not re-serialized
  EXPECT_TRUE(hit->record.ok);
  EXPECT_EQ(hit->record.trace_digest, 0x1122334455667788ull);
  EXPECT_EQ(cache.quarantined(), 0u);
}

TEST(Cache, AMutatedDescriptorMisses) {
  ResultCache cache(fresh_dir());
  const core::RunDescriptor d = cell("primitive=susp;r=0.5");
  cache.store(d, record_bytes(d));
  // One axis nudged -> different digest -> different file -> miss; the
  // stored cell is untouched.
  EXPECT_FALSE(cache.lookup(cell("primitive=susp;r=0.6")).has_value());
  EXPECT_FALSE(cache.lookup(cell("primitive=kill;r=0.5")).has_value());
  EXPECT_TRUE(cache.lookup(d).has_value());
  EXPECT_EQ(cache.quarantined(), 0u);
}

TEST(Cache, CorruptedEntriesAreQuarantinedNotTrusted) {
  const fs::path dir = fresh_dir();
  ResultCache cache(dir);
  const core::RunDescriptor d = cell("primitive=susp;r=0.5");
  const fs::path entry = dir / (d.digest_hex() + ".json");
  {
    std::ofstream out(entry);
    out << "{\"descriptor\":\"pri";  // a torn write
  }
  EXPECT_FALSE(cache.lookup(d).has_value());
  EXPECT_EQ(cache.quarantined(), 1u);
  // The evidence survives for inspection; the entry itself is gone, so
  // the corrupted bytes can never satisfy a second lookup.
  EXPECT_FALSE(fs::exists(entry));
  EXPECT_TRUE(fs::exists(dir / (d.digest_hex() + ".json.quarantined")));
  EXPECT_FALSE(cache.lookup(d).has_value());
  EXPECT_EQ(cache.quarantined(), 1u);  // a miss, not a second quarantine

  // A fresh store repopulates the slot.
  cache.store(d, record_bytes(d));
  EXPECT_TRUE(cache.lookup(d).has_value());
}

TEST(Cache, ADigestCollisionYieldsAMissNotALie) {
  const fs::path dir = fresh_dir();
  ResultCache cache(dir);
  const core::RunDescriptor d = cell("primitive=susp;r=0.5");
  const core::RunDescriptor other = cell("primitive=kill;r=0.9");
  // Plant a well-formed record for ANOTHER cell at d's path — what a
  // 64-bit digest collision would look like on disk.
  {
    std::ofstream out(dir / (d.digest_hex() + ".json"));
    out << record_bytes(other);
  }
  EXPECT_FALSE(cache.lookup(d).has_value());
  EXPECT_EQ(cache.quarantined(), 1u);
}

TEST(Cache, StoresAreAtomicAndLeaveNoTempFiles) {
  const fs::path dir = fresh_dir();
  ResultCache cache(dir);
  const core::RunDescriptor d = cell("primitive=susp;r=0.5");
  cache.store(d, record_bytes(d));
  std::size_t files = 0;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    ++files;
    EXPECT_EQ(e.path().extension(), ".json") << e.path();
  }
  EXPECT_EQ(files, 1u);
}

TEST(Cache, CreatesItsDirectoryTree) {
  const fs::path dir = fresh_dir() / "nested" / "deeper";
  ResultCache cache(dir);
  EXPECT_TRUE(fs::is_directory(dir));
  const core::RunDescriptor d = cell("primitive=wait");
  cache.store(d, record_bytes(d));
  EXPECT_TRUE(cache.lookup(d).has_value());
}

}  // namespace
}  // namespace osap::osapd
