// Aggregation over terminal cell results: seed replicates group by
// cell_key, percentiles are nearest-rank, the pivot reproduces the
// paper's fig2 layout when the axes allow it, and the summary JSON is
// invariant under the pool's completion order — the whole point of
// sorting every traversal.
#include "osapd/aggregate.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "osapd/expand.hpp"

namespace osap::osapd {
namespace {

core::RunDescriptor cell(const std::string& text) {
  return core::normalize_descriptor(core::RunDescriptor::parse(text));
}

CellResult ok_cell(std::size_t index, double sojourn_th, double makespan) {
  CellResult res;
  res.index = index;
  res.attempts = 1;
  res.ok = true;
  res.record.ok = true;
  res.record.sojourn_th = sojourn_th;
  res.record.makespan = makespan;
  return res;
}

CellResult failed_cell(std::size_t index, const std::string& error) {
  CellResult res;
  res.index = index;
  res.attempts = 1;
  res.ok = false;
  res.error = error;
  return res;
}

TEST(Aggregate, GroupsSeedReplicatesWithNearestRankPercentiles) {
  std::vector<core::RunDescriptor> descriptors;
  std::vector<CellResult> cells;
  const double sojourns[] = {30, 10, 50, 20, 40};  // deliberately unsorted
  for (std::size_t i = 0; i < 5; ++i) {
    descriptors.push_back(cell("primitive=susp;r=0.5;seed=" + std::to_string(i + 1)));
    cells.push_back(ok_cell(i, sojourns[i], 100 + static_cast<double>(i)));
  }
  descriptors.push_back(cell("primitive=susp;r=0.5;seed=6"));
  cells.push_back(failed_cell(5, "worker exited (status 9)"));

  const std::vector<GroupStats> groups = group_stats(descriptors, cells);
  ASSERT_EQ(groups.size(), 1u);  // all six cells share one cell_key
  const GroupStats& g = groups[0];
  EXPECT_EQ(g.cell_key, cell_key(descriptors[0]));
  EXPECT_EQ(g.runs, 5);
  EXPECT_EQ(g.failed, 1);
  EXPECT_DOUBLE_EQ(g.mean, 30);
  EXPECT_DOUBLE_EQ(g.p50, 30);  // nearest rank: ceil(0.50 * 5) = 3rd of sorted
  EXPECT_DOUBLE_EQ(g.p99, 50);  // ceil(0.99 * 5) = 5th
  EXPECT_DOUBLE_EQ(g.min, 10);
  EXPECT_DOUBLE_EQ(g.max, 50);
  EXPECT_DOUBLE_EQ(g.makespan_mean, 102);
}

TEST(Aggregate, PivotPrefersTheFig2Layout) {
  std::vector<core::RunDescriptor> descriptors = {
      cell("primitive=kill;r=0.1"), cell("primitive=susp;r=0.1"),
      cell("primitive=kill;r=0.2"),  // (r=0.2, susp) deliberately absent
  };
  std::vector<CellResult> cells = {ok_cell(0, 85, 0), ok_cell(1, 78, 0), ok_cell(2, 86, 0)};
  const PivotTable table = pivot(descriptors, cells);
  EXPECT_EQ(table.row_axis, "r");
  EXPECT_EQ(table.col_axis, "primitive");
  EXPECT_EQ(table.rows, (std::vector<std::string>{"0.1", "0.2"}));
  EXPECT_EQ(table.cols, (std::vector<std::string>{"kill", "susp"}));
  ASSERT_EQ(table.values.size(), 2u);
  ASSERT_EQ(table.values[0].size(), 2u);
  EXPECT_DOUBLE_EQ(table.values[0][0], 85);
  EXPECT_DOUBLE_EQ(table.values[0][1], 78);
  EXPECT_DOUBLE_EQ(table.values[1][0], 86);
  EXPECT_DOUBLE_EQ(table.values[1][1], -1);  // empty cell, not NaN
}

TEST(Aggregate, PivotRowsSortNumericallyNotLexically) {
  // Lexicographic order would put "0.100" < "0.55" < "0.9" too, so use
  // a value set where the two orders genuinely disagree: lexically
  // "0.100" < "0.55" but also "0.9" > "0.55"; the tell is "0.100" vs
  // "0.55" against plain integers.
  const std::vector<core::RunDescriptor> descriptors = {
      cell("primitive=susp;r=10"), cell("primitive=susp;r=9"),
      cell("primitive=susp;r=0.55")};
  const std::vector<CellResult> cells = {ok_cell(0, 1, 0), ok_cell(1, 2, 0),
                                         ok_cell(2, 3, 0)};
  const PivotTable table = pivot(descriptors, cells);
  // Lexically the order would be {"0.55", "10", "9"}.
  EXPECT_EQ(table.rows, (std::vector<std::string>{"0.55", "9", "10"}));
}

TEST(Aggregate, PivotFallsBackToTheFirstTwoMultiValuedAxes) {
  // The trace workload has a primitive axis but no r, so the fig2 shape
  // is unavailable; sorted multi-valued non-seed axes take over.
  std::vector<core::RunDescriptor> descriptors = {
      cell("workload=trace;jobs=8;scheduler=fifo"),
      cell("workload=trace;jobs=8;scheduler=hfsp"),
      cell("workload=trace;jobs=16;scheduler=fifo"),
      cell("workload=trace;jobs=16;scheduler=hfsp"),
  };
  std::vector<CellResult> cells = {ok_cell(0, 10, 0), ok_cell(1, 11, 0), ok_cell(2, 12, 0),
                                   ok_cell(3, 13, 0)};
  const PivotTable table = pivot(descriptors, cells);
  EXPECT_EQ(table.row_axis, "jobs");       // first multi-valued key in sorted order
  EXPECT_EQ(table.col_axis, "scheduler");  // second
  EXPECT_EQ(table.rows, (std::vector<std::string>{"8", "16"}));  // numeric sort
  EXPECT_EQ(table.cols, (std::vector<std::string>{"fifo", "hfsp"}));
}

TEST(Aggregate, SummaryJsonIsInvariantUnderCompletionOrder) {
  std::vector<core::RunDescriptor> descriptors;
  std::vector<CellResult> cells;
  std::size_t i = 0;
  for (const char* prim : {"kill", "susp"}) {
    for (const char* seed : {"1", "2"}) {
      descriptors.push_back(
          cell(std::string("primitive=") + prim + ";r=0.5;seed=" + seed));
      CellResult res = ok_cell(i, 70 + static_cast<double>(i), 600);
      res.record.trace_digest = 0x1000 + i;
      res.record.events = 700 + i;
      res.record.jobs = 2;
      cells.push_back(res);
      ++i;
    }
  }
  const std::vector<std::pair<std::string, std::uint64_t>> harness = {
      {"osapd.cells_total", 4}, {"osapd.cells_completed", 4}};

  std::ostringstream forward;
  write_summary_json(forward, descriptors, cells, false, harness, 12.5);

  std::vector<CellResult> shuffled(cells.rbegin(), cells.rend());
  std::ostringstream backward;
  write_summary_json(backward, descriptors, shuffled, false, harness, 12.5);
  EXPECT_EQ(forward.str(), backward.str());

  const std::string json = forward.str();
  EXPECT_NE(json.find("\"schema\":\"osapd-summary-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"cells_total\":4"), std::string::npos);
  EXPECT_NE(json.find("\"cells_ok\":4"), std::string::npos);
  EXPECT_NE(json.find("\"osapd.cells_total\":4"), std::string::npos);
  EXPECT_NE(json.find("\"wall_ms\":12.5"), std::string::npos);
  // The volatile fields stay out of the results section entirely.
  EXPECT_EQ(json.find("\"cached\""), std::string::npos);
  EXPECT_EQ(json.find("\"attempts\""), std::string::npos);
}

TEST(Aggregate, FrontierGroupsByMixAndReactionInNumericMixOrder) {
  // Two mixes x two reactions, two seeds each; one failed cell must not
  // pollute its point's means.
  std::vector<core::RunDescriptor> descriptors;
  std::vector<CellResult> cells;
  std::size_t i = 0;
  for (const char* mix : {"0.5", "0.25"}) {
    for (const char* react : {"none", "checkpoint"}) {
      for (const char* seed : {"7", "8"}) {
        descriptors.push_back(cell(std::string("workload=trace;lifetime_model=exp;node_mix=") +
                                   mix + ";revoke_react=" + react + ";seed=" + seed));
        CellResult res = ok_cell(i, 100 + static_cast<double>(i), 500);
        res.record.cost = 10 + static_cast<double>(i);
        cells.push_back(res);
        ++i;
      }
    }
  }
  cells.back() = failed_cell(i - 1, "worker exited (status 9)");

  const std::vector<FrontierPoint> points = frontier(descriptors, cells);
  ASSERT_EQ(points.size(), 4u);
  // Numeric mix order: 0.25 before 0.5 (lexically "0.25" < "0.5" too,
  // but the sort is numeric — see PivotRowsSortNumericallyNotLexically).
  EXPECT_EQ(points[0].node_mix, "0.25");
  EXPECT_EQ(points[0].revoke_react, "checkpoint");
  EXPECT_EQ(points[1].node_mix, "0.25");
  EXPECT_EQ(points[1].revoke_react, "none");
  EXPECT_EQ(points[2].node_mix, "0.5");
  EXPECT_EQ(points[3].node_mix, "0.5");
  // cells 0,1 -> (0.5, none): cost 10,11 sojourn 100,101.
  EXPECT_EQ(points[3].revoke_react, "none");
  EXPECT_EQ(points[3].runs, 2);
  EXPECT_DOUBLE_EQ(points[3].cost_mean, 10.5);
  EXPECT_DOUBLE_EQ(points[3].sojourn_mean, 100.5);
  // The failed seed drops out of (0.25, checkpoint): one run remains.
  EXPECT_EQ(points[0].runs, 1);
  EXPECT_DOUBLE_EQ(points[0].cost_mean, 16);

  // Cells without the revocation axes contribute no frontier at all.
  const std::vector<core::RunDescriptor> legacy = {cell("primitive=susp;r=0.5")};
  const std::vector<CellResult> legacy_cells = {ok_cell(0, 80, 600)};
  EXPECT_TRUE(frontier(legacy, legacy_cells).empty());

  // And the summary JSON carries the block.
  std::ostringstream out;
  write_summary_json(out, descriptors, cells, false, {}, 1.0);
  EXPECT_NE(out.str().find("\"frontier\":[{\"node_mix\":\"0.25\""), std::string::npos);
  EXPECT_NE(out.str().find("\"cost_mean\":"), std::string::npos);
}

TEST(Aggregate, PartialSummariesCountFailuresAndCancellation) {
  std::vector<core::RunDescriptor> descriptors = {cell("primitive=kill;r=0.5"),
                                                  cell("primitive=susp;r=0.5"),
                                                  cell("primitive=wait;r=0.5")};
  // Only two of three cells resolved (SIGINT drained the sweep), one of
  // them failed.
  std::vector<CellResult> cells = {ok_cell(0, 80, 600),
                                   failed_cell(1, "worker exited (status 9)")};
  std::ostringstream out;
  write_summary_json(out, descriptors, cells, true, {}, 1.0);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"cancelled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"cells_total\":3"), std::string::npos);
  EXPECT_NE(json.find("\"cells_done\":2"), std::string::npos);
  EXPECT_NE(json.find("\"cells_ok\":1"), std::string::npos);
  EXPECT_NE(json.find("\"cells_failed\":1"), std::string::npos);
  EXPECT_NE(json.find("worker exited (status 9)"), std::string::npos);
}

}  // namespace
}  // namespace osap::osapd
