// The `.matrix` spec and its expansion: parse errors carry line
// numbers, `--set` replaces axes wholesale, and the cross product walks
// sorted keys with the last key spinning fastest — so the cell at index
// i is a pure function of the spec, which is what lets `osap sweep`,
// `osapd run`, and fig2_baseline share one grid.
#include "osapd/matrix.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "osapd/expand.hpp"

namespace osap::osapd {
namespace {

MatrixSpec parse(const std::string& text) {
  std::istringstream in(text);
  return parse_matrix(in, "test.matrix");
}

TEST(Matrix, ParsesCommentsBlanksAndValueLists) {
  const MatrixSpec spec = parse(
      "# fig2-ish sweep\n"
      "\n"
      "workload  = two_job\n"
      "primitive = wait, kill, susp\n"
      "r         = 0.1,0.2\n");
  ASSERT_EQ(spec.axes.size(), 3u);
  EXPECT_EQ(spec.axes.at("workload"), (std::vector<std::string>{"two_job"}));
  EXPECT_EQ(spec.axes.at("primitive"), (std::vector<std::string>{"wait", "kill", "susp"}));
  EXPECT_EQ(spec.axes.at("r"), (std::vector<std::string>{"0.1", "0.2"}));
  EXPECT_EQ(spec.cells(), 6u);
  EXPECT_EQ(MatrixSpec{}.cells(), 0u);
}

TEST(Matrix, RejectsDuplicateAxesAndMalformedLines) {
  EXPECT_THROW((void)parse("r = 0.1\nr = 0.2\n"), SimError);
  EXPECT_THROW((void)parse("just words\n"), SimError);
  EXPECT_THROW((void)parse("R = 0.1\n"), SimError);  // keys are [a-z0-9_]+
  EXPECT_THROW((void)parse("r = \n"), SimError);     // an axis needs a value
}

TEST(Matrix, ApplySetReplacesTheWholeAxis) {
  MatrixSpec spec = parse("primitive = wait, kill, susp\nr = 0.5\n");
  apply_set(spec, "primitive=susp");            // narrow
  apply_set(spec, "seed=1,2,3");                // introduce
  EXPECT_EQ(spec.axes.at("primitive"), (std::vector<std::string>{"susp"}));
  EXPECT_EQ(spec.axes.at("seed"), (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(spec.cells(), 3u);
  EXPECT_THROW(apply_set(spec, "no-equals"), SimError);
}

TEST(Expand, RowMajorOverSortedKeysLastKeyFastest) {
  MatrixSpec spec;
  spec.axes["primitive"] = {"kill", "susp"};
  spec.axes["r"] = {"0.1", "0.2"};
  const std::vector<core::RunDescriptor> cells = expand(spec);
  ASSERT_EQ(cells.size(), 4u);
  // Sorted keys are (primitive, r); r spins fastest. Defaults are
  // materialized by normalization, so the canonical text is total.
  const char* expected[] = {
      "jitter=0.02;primitive=kill;r=0.1;seed=1;th_state=0;tl_state=0;workload=two_job",
      "jitter=0.02;primitive=kill;r=0.2;seed=1;th_state=0;tl_state=0;workload=two_job",
      "jitter=0.02;primitive=susp;r=0.1;seed=1;th_state=0;tl_state=0;workload=two_job",
      "jitter=0.02;primitive=susp;r=0.2;seed=1;th_state=0;tl_state=0;workload=two_job",
  };
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].canonical(), expected[i]) << "cell " << i;
  }
}

TEST(Expand, NormalizationMakesSpelledAndTerseSpecsShareDigests) {
  MatrixSpec terse;
  terse.axes["primitive"] = {"kill"};
  MatrixSpec spelled;
  spelled.axes["workload"] = {"two_job"};
  spelled.axes["primitive"] = {"kill"};
  spelled.axes["r"] = {"0.5"};
  spelled.axes["seed"] = {"1"};
  const std::vector<core::RunDescriptor> a = expand(terse);
  const std::vector<core::RunDescriptor> b = expand(spelled);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].digest(), b[0].digest());
}

TEST(Expand, RejectsAMiskeyedAxisBeforeAnythingRuns) {
  MatrixSpec spec;
  spec.axes["primitve"] = {"kill"};  // typo: must fail the whole sweep
  EXPECT_THROW((void)expand(spec), SimError);
}

TEST(Expand, CellKeyDropsOnlyTheSeedAxis) {
  MatrixSpec spec;
  spec.axes["primitive"] = {"susp"};
  spec.axes["seed"] = {"1", "2"};
  const std::vector<core::RunDescriptor> cells = expand(spec);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cell_key(cells[0]), cell_key(cells[1]));
  EXPECT_EQ(cell_key(cells[0]).find("seed="), std::string::npos);
  EXPECT_NE(cell_key(cells[0]).find("primitive=susp"), std::string::npos);
  EXPECT_NE(cells[0].digest(), cells[1].digest());  // seeds still distinct cells
}

}  // namespace
}  // namespace osap::osapd
