// The forked worker pool and the sweep orchestration above it. The
// determinism law does the heavy lifting: a cell's record is a pure
// function of its descriptor, so pool records must be byte-identical to
// in-process runs no matter which worker computed them, how often a
// worker died first, or whether the bytes came back from the cache.
//
// Fault injection rides the digest-visible `fault_worker` descriptor
// key (the library runner ignores it; the worker honors it before
// running the cell), so worker crashes are reproducible test fixtures
// rather than races.
#include "osapd/pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <filesystem>
#include <set>

#include "osapd/cache.hpp"
#include "osapd/expand.hpp"
#include "osapd/record.hpp"
#include "osapd/sweep.hpp"

namespace osap::osapd {
namespace {

namespace fs = std::filesystem;

// See run_test.cpp: big enough to cross the 2048-event tick stride, so
// the RSS watchdog actually gets to fire.
constexpr const char* kTickableCell = "workload=trace;jobs=32;nodes=16;seed=7";

// Injected resident-set probe: pretends every worker is enormous, so a
// 1-byte budget aborts on the first watchdog tick.
std::uint64_t fake_huge_rss() { return 64ull << 30; }

// Cancellation flag for the drain test; file-scope because PoolOptions
// carries a pointer to it, mirroring the CLI's SIGINT handler.
volatile std::sig_atomic_t g_cancel = 0;

fs::path fresh_dir() {
  const testing::TestInfo* info = testing::UnitTest::GetInstance()->current_test_info();
  fs::path dir = fs::path(testing::TempDir()) / "osapd_pool_test" / info->name();
  fs::remove_all(dir);
  return dir;
}

std::vector<core::RunDescriptor> small_grid() {
  MatrixSpec spec;
  spec.axes["primitive"] = {"kill", "susp"};
  spec.axes["r"] = {"0.3", "0.7"};
  return expand(spec);
}

core::RunDescriptor cell(const std::string& text) {
  return core::normalize_descriptor(core::RunDescriptor::parse(text));
}

/// What the worker should have shipped: the in-process run serialized
/// the same way the worker serializes it.
std::string in_process_bytes(const core::RunDescriptor& d) {
  return serialize_record(d.canonical(), core::run_descriptor(d));
}

TEST(Pool, RecordsAreByteIdenticalToInProcessRuns) {
  const std::vector<core::RunDescriptor> grid = small_grid();
  SweepOptions opts;
  opts.pool.workers = 3;
  const SweepOutcome outcome = run_sweep(grid, opts);
  ASSERT_FALSE(outcome.cancelled);
  ASSERT_EQ(outcome.cells.size(), grid.size());

  std::set<std::size_t> seen;
  for (const CellResult& res : outcome.cells) {
    EXPECT_TRUE(seen.insert(res.index).second) << "cell resolved twice: " << res.index;
    EXPECT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.attempts, 1);
    EXPECT_FALSE(res.cached);
    EXPECT_EQ(res.record_json, in_process_bytes(grid[res.index]))
        << grid[res.index].canonical();
  }
  EXPECT_EQ(seen.size(), grid.size());
}

TEST(Pool, AWorkerDeathReschedulesTheCellOnce) {
  const std::vector<core::RunDescriptor> grid = {
      cell(std::string("fault_worker=exit_first_attempt;") + "primitive=susp;r=0.5")};
  SweepOptions opts;
  opts.pool.workers = 1;
  const SweepOutcome outcome = run_sweep(grid, opts);
  ASSERT_EQ(outcome.cells.size(), 1u);
  const CellResult& res = outcome.cells[0];
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.attempts, 2);  // died once, succeeded on the retry
  EXPECT_EQ(outcome.worker_deaths, 1u);
  EXPECT_EQ(outcome.rescheduled, 1u);
  // The retry's record is still the deterministic record.
  EXPECT_EQ(res.record_json, in_process_bytes(grid[0]));
}

TEST(Pool, APersistentlyDyingCellFailsWithReasonExactlyOnce) {
  // Cell 0 kills its worker every attempt; cell 1 is healthy and must
  // be unaffected by its neighbour's crashes.
  const std::vector<core::RunDescriptor> grid = {
      cell("fault_worker=exit_always;primitive=susp;r=0.5"),
      cell("primitive=kill;r=0.5")};
  const fs::path dir = fresh_dir();
  SweepOptions opts;
  opts.pool.workers = 2;
  opts.cache_dir = dir.string();
  const SweepOutcome outcome = run_sweep(grid, opts);
  ASSERT_FALSE(outcome.cancelled);
  ASSERT_EQ(outcome.cells.size(), 2u);

  int failed = 0;
  for (const CellResult& res : outcome.cells) {
    if (res.index == 1) {
      EXPECT_TRUE(res.ok) << res.error;
      continue;
    }
    ++failed;
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.attempts, 2);  // both attempts allowed, then terminal
    EXPECT_NE(res.error.find("worker exited (status 17)"), std::string::npos) << res.error;
    EXPECT_TRUE(res.record_json.empty());  // died before reporting
  }
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(outcome.worker_deaths, 2u);
  EXPECT_EQ(outcome.rescheduled, 1u);
  // Failed cells are never cached: only the healthy cell is on disk.
  EXPECT_EQ(outcome.cache_stores, 1u);
  EXPECT_FALSE(fs::exists(dir / (grid[0].digest_hex() + ".json")));
  EXPECT_TRUE(fs::exists(dir / (grid[1].digest_hex() + ".json")));
}

TEST(Pool, RssBudgetAbortsAreRecordedWithTheWatchdogReason) {
  const std::vector<core::RunDescriptor> grid = {cell(kTickableCell)};
  SweepOptions opts;
  opts.pool.workers = 1;
  opts.pool.max_rss_bytes = 1;
  opts.pool.rss_probe = &fake_huge_rss;
  const SweepOutcome outcome = run_sweep(grid, opts);
  ASSERT_EQ(outcome.cells.size(), 1u);
  const CellResult& res = outcome.cells[0];
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.error.rfind(kRssAbortPrefix, 0), 0u) << res.error;
  EXPECT_EQ(res.attempts, 2);  // an abort is retried once, like a death
  EXPECT_EQ(outcome.rss_aborts, 2u);
  EXPECT_EQ(outcome.rescheduled, 1u);
  // The worker reported before exiting, so this is a graceful recycle,
  // not a death — and the aborted record itself came back intact.
  EXPECT_EQ(outcome.worker_deaths, 0u);
  EXPECT_FALSE(res.record_json.empty());
  EXPECT_EQ(res.record.error, res.error);
}

TEST(Pool, CancellationDrainsInFlightAndTheCacheStaysResumable) {
  const std::vector<core::RunDescriptor> grid = small_grid();
  const fs::path dir = fresh_dir();

  // Phase 1: one worker, cancel as soon as the first cell lands —
  // exactly what a SIGINT mid-sweep looks like to the pool.
  g_cancel = 0;
  PoolOptions popts;
  popts.workers = 1;
  popts.cancel = &g_cancel;
  std::vector<CellResult> drained;
  {
    ResultCache cache(dir);
    const std::vector<std::size_t> todo = {0, 1, 2, 3};
    const bool complete = WorkerPool::run(
        grid, todo, popts,
        [&](CellResult&& res) {
          if (res.ok) cache.store(grid[res.index], res.record_json);
          drained.push_back(std::move(res));
          g_cancel = 1;
        },
        nullptr);
    EXPECT_FALSE(complete);
  }
  ASSERT_EQ(drained.size(), 1u);  // in-flight drained, nothing new dispatched
  EXPECT_TRUE(drained[0].ok) << drained[0].error;

  // Phase 2: a fresh sweep over the same grid resumes from the cache —
  // the drained cell is a hit with the exact bytes phase 1 stored, and
  // every cell resolves exactly once.
  SweepOptions sopts;
  sopts.pool.workers = 2;
  sopts.cache_dir = dir.string();
  const SweepOutcome outcome = run_sweep(grid, sopts);
  ASSERT_FALSE(outcome.cancelled);
  ASSERT_EQ(outcome.cells.size(), grid.size());
  EXPECT_EQ(outcome.cache_hits, 1u);
  EXPECT_EQ(outcome.cache_misses, grid.size() - 1);
  std::set<std::size_t> seen;
  for (const CellResult& res : outcome.cells) {
    EXPECT_TRUE(seen.insert(res.index).second);
    EXPECT_TRUE(res.ok) << res.error;
    if (res.index == drained[0].index) {
      EXPECT_TRUE(res.cached);
      EXPECT_EQ(res.record_json, drained[0].record_json);
    }
  }
  EXPECT_EQ(seen.size(), grid.size());
}

TEST(Sweep, SecondPassServesEveryCellFromTheCacheByteIdentically) {
  const std::vector<core::RunDescriptor> grid = small_grid();
  const fs::path dir = fresh_dir();
  SweepOptions opts;
  opts.pool.workers = 2;
  opts.cache_dir = dir.string();

  const SweepOutcome first = run_sweep(grid, opts);
  ASSERT_EQ(first.cells.size(), grid.size());
  EXPECT_EQ(first.cache_hits, 0u);
  EXPECT_EQ(first.cache_stores, grid.size());

  const SweepOutcome second = run_sweep(grid, opts);
  ASSERT_EQ(second.cells.size(), grid.size());
  EXPECT_EQ(second.cache_hits, grid.size());
  EXPECT_EQ(second.cache_stores, 0u);
  for (const CellResult& res : second.cells) {
    EXPECT_TRUE(res.cached);
    const auto match = std::find_if(
        first.cells.begin(), first.cells.end(),
        [&](const CellResult& f) { return f.index == res.index; });
    ASSERT_NE(match, first.cells.end());
    EXPECT_EQ(res.record_json, match->record_json);
  }
}

TEST(Sweep, DeterministicCellFailuresAreNeverRetried) {
  // An unknown workload fails identically every time; retrying would
  // just burn a worker. The record lands as-is with one attempt.
  const std::vector<core::RunDescriptor> grid = {
      core::RunDescriptor::parse("workload=nope")};
  SweepOptions opts;
  opts.pool.workers = 1;
  const SweepOutcome outcome = run_sweep(grid, opts);
  ASSERT_EQ(outcome.cells.size(), 1u);
  EXPECT_FALSE(outcome.cells[0].ok);
  EXPECT_EQ(outcome.cells[0].attempts, 1);
  EXPECT_EQ(outcome.rescheduled, 0u);
  EXPECT_NE(outcome.cells[0].error.find("unknown workload"), std::string::npos);
}

}  // namespace
}  // namespace osap::osapd
