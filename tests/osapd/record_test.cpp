// Record serialization is the cache's notion of identity: the stored
// bytes ARE the result, so serialize -> parse -> serialize must be the
// identity on bytes, and the parser must reject anything it did not
// emit — a half-parsed record is how a corrupted cache would lie.
#include "osapd/record.hpp"

#include <gtest/gtest.h>

namespace osap::osapd {
namespace {

core::ResultRecord sample_record() {
  core::ResultRecord rec;
  rec.ok = true;
  rec.config_digest = 0x0123456789abcdefull;
  rec.trace_digest = 0xfedcba9876543210ull;
  rec.events = 3180;
  rec.jobs = 2;
  rec.sojourn_th = 78.25;
  rec.sojourn_tl = 0.1 + 0.2;  // not exactly representable: %.17g must round-trip it
  rec.makespan = 1234.5;
  rec.cost = 6.125;
  rec.tl_swapped_out_mib = 0;
  rec.counters = {{"jt.suspend_requests", 7}, {"sched.assignments", 41}};
  rec.wall_ms = 12.5;
  return rec;
}

TEST(Record, SerializeParseSerializeIsTheIdentityOnBytes) {
  const std::string descriptor = "primitive=susp;r=0.5;seed=1;workload=two_job";
  const std::string json = serialize_record(descriptor, sample_record());
  const std::optional<ParsedRecord> parsed = parse_record(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->descriptor, descriptor);
  EXPECT_EQ(serialize_record(parsed->descriptor, parsed->record), json);
}

TEST(Record, ParsePreservesEveryField) {
  const core::ResultRecord rec = sample_record();
  const std::optional<ParsedRecord> parsed = parse_record(serialize_record("d=1", rec));
  ASSERT_TRUE(parsed.has_value());
  const core::ResultRecord& got = parsed->record;
  EXPECT_EQ(got.ok, rec.ok);
  EXPECT_EQ(got.config_digest, rec.config_digest);
  EXPECT_EQ(got.trace_digest, rec.trace_digest);
  EXPECT_EQ(got.events, rec.events);
  EXPECT_EQ(got.jobs, rec.jobs);
  EXPECT_EQ(got.sojourn_th, rec.sojourn_th);
  EXPECT_EQ(got.sojourn_tl, rec.sojourn_tl);  // bit-exact through %.17g
  EXPECT_EQ(got.makespan, rec.makespan);
  EXPECT_EQ(got.cost, rec.cost);
  EXPECT_EQ(got.counters, rec.counters);
  EXPECT_EQ(got.wall_ms, rec.wall_ms);
}

TEST(Record, FailedRecordsCarryTheirReasonThroughEscaping) {
  core::ResultRecord rec;
  rec.ok = false;
  rec.error = "invariant \"slots >= 0\" violated\n\tat node-3";
  const std::string json = serialize_record("workload=two_job", rec);
  const std::optional<ParsedRecord> parsed = parse_record(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->record.ok);
  EXPECT_EQ(parsed->record.error, rec.error);
}

TEST(Record, EveryTruncationIsRejected) {
  // No prefix of a valid record parses: truncation (a torn write, a
  // worker dying mid-line) can never produce a half-filled record.
  const std::string json = serialize_record("d=1", sample_record());
  for (std::size_t len = 0; len < json.size(); ++len) {
    EXPECT_FALSE(parse_record(json.substr(0, len)).has_value()) << "prefix length " << len;
  }
}

TEST(Record, GarbageAndNearMissesAreRejected) {
  EXPECT_FALSE(parse_record("").has_value());
  EXPECT_FALSE(parse_record("not json at all").has_value());
  EXPECT_FALSE(parse_record("{}").has_value());
  const std::string json = serialize_record("d=1", sample_record());
  EXPECT_FALSE(parse_record(json + "trailing garbage").has_value());
  // A field renamed (wrong shape) must not be accepted.
  std::string renamed = json;
  renamed.replace(renamed.find("\"events\""), 8, "\"eventz\"");
  EXPECT_FALSE(parse_record(renamed).has_value());
  // A digest string longer than 16 hex digits cannot be a u64.
  std::string long_digest = json;
  long_digest.replace(long_digest.find("0123456789abcdef"), 16, "00123456789abcdef");
  EXPECT_FALSE(parse_record(long_digest).has_value());
}

TEST(Record, JsonHelpers) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c\nd\te\rf"), "a\\\"b\\\\c\\nd\\te\\rf");
  EXPECT_EQ(hex_u64(0), "0000000000000000");
  EXPECT_EQ(hex_u64(0xdeadbeefull), "00000000deadbeef");
  EXPECT_EQ(json_num(0), "0");
  EXPECT_EQ(json_num(0.5), "0.5");
}

}  // namespace
}  // namespace osap::osapd
