#include "metrics/timeline.hpp"

#include <gtest/gtest.h>

#include "sched/dummy.hpp"
#include "workload/profiles.hpp"

namespace osap {
namespace {

TEST(Timeline, RecordsJobLifecycle) {
  Cluster cluster(paper_cluster());
  TimelineRecorder recorder(cluster.job_tracker());
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler* ds = sched.get();
  cluster.set_scheduler(std::move(sched));
  TaskSpec spec = light_map_task();
  spec.preferred_node = cluster.node(0);
  ds->submit_at(0.05, single_task_job("j", 0, spec));
  cluster.run();
  EXPECT_TRUE(recorder.first(ClusterEventType::JobSubmitted, ds->job_of("j")).has_value());
  EXPECT_TRUE(recorder.first(ClusterEventType::JobCompleted, ds->job_of("j")).has_value());
  EXPECT_GT(recorder.makespan(), 70.0);
}

TEST(Timeline, GanttShowsSuspensionGap) {
  Cluster cluster(paper_cluster());
  TimelineRecorder recorder(cluster.job_tracker());
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler* ds = sched.get();
  cluster.set_scheduler(std::move(sched));
  TaskSpec spec = light_map_task();
  spec.preferred_node = cluster.node(0);
  ds->submit_at(0.05, single_task_job("tl", 0, spec));
  ds->at_progress("tl", 0, 0.5, [&] { ds->preempt("tl", 0, PreemptPrimitive::Suspend); });
  cluster.sim().at(60.0, [&] { ds->restore("tl", 0, PreemptPrimitive::Suspend); });
  cluster.run();
  const std::string gantt = recorder.render_gantt(2.0);
  EXPECT_NE(gantt.find("tl"), std::string::npos);
  EXPECT_NE(gantt.find('='), std::string::npos);   // running span
  EXPECT_NE(gantt.find('.'), std::string::npos);   // suspended span
  EXPECT_NE(gantt.find('|'), std::string::npos);   // completion mark
}

TEST(Timeline, MakespanWithoutJobsIsNegative) {
  Cluster cluster(paper_cluster());
  TimelineRecorder recorder(cluster.job_tracker());
  EXPECT_LT(recorder.makespan(), 0);
}

}  // namespace
}  // namespace osap
