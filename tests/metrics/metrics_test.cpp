#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "metrics/experiment.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"

namespace osap {
namespace {

TEST(Stats, MeanMinMax) {
  RunningStat s;
  for (double v : {2.0, 4.0, 6.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_EQ(s.count(), 3);
}

TEST(Stats, StddevMatchesSampleFormula) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);
}

TEST(Stats, SpreadIsRelativeDeviation) {
  RunningStat s;
  for (double v : {95.0, 100.0, 105.0}) s.add(v);
  EXPECT_NEAR(s.spread(), 0.05, 1e-9);
}

TEST(Stats, EmptyIsSafe) {
  RunningStat s;
  EXPECT_DOUBLE_EQ(s.mean(), 0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0);
  EXPECT_DOUBLE_EQ(s.spread(), 0);
}

TEST(Stats, SummarizeVector) {
  const RunningStat s = summarize({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.row({"x", "1.0"});
  t.row({"longer", "2.5"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("------"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), SimError);
}

TEST(Table, NumFormatsDecimals) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(10, 0), "10");
}

TEST(Table, CsvEscapesSpecialCells) {
  Table t({"name", "value"});
  t.row({"plain", "1"});
  t.row({"with,comma", "quote\"inside"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(),
            "name,value\n"
            "plain,1\n"
            "\"with,comma\",\"quote\"\"inside\"\n");
}

TEST(Experiment, AggregatesAcrossRuns) {
  const auto agg = ExperimentRunner::run(
      [](std::uint64_t, int run) {
        return MetricMap{{"x", static_cast<double>(run)}};
      },
      5, 1);
  ASSERT_TRUE(agg.contains("x"));
  EXPECT_EQ(agg.at("x").count(), 5);
  EXPECT_DOUBLE_EQ(agg.at("x").mean(), 2.0);
}

TEST(Experiment, SeedsDifferAcrossRunsButDeterministicOverall) {
  std::vector<std::uint64_t> seeds_a, seeds_b;
  ExperimentRunner::run(
      [&](std::uint64_t seed, int) {
        seeds_a.push_back(seed);
        return MetricMap{};
      },
      3, 42);
  ExperimentRunner::run(
      [&](std::uint64_t seed, int) {
        seeds_b.push_back(seed);
        return MetricMap{};
      },
      3, 42);
  EXPECT_EQ(seeds_a, seeds_b);
  EXPECT_NE(seeds_a[0], seeds_a[1]);
}

}  // namespace
}  // namespace osap
