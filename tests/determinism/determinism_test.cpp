// The runtime witness behind the linter: a scenario run twice from the
// same seed must replay the exact same event stream, bit for bit. The
// Simulation folds every fired event's (time, id) into an FNV-1a digest;
// the workloads live in workloads.hpp (shared with the golden-digest
// test) and these tests assert the digest survives a full re-run. Any
// hash-order iteration, ambient randomness, or address-dependent
// decision anywhere in the stack shows up here as a digest mismatch.
#include <gtest/gtest.h>

#include <cstdint>

#include "common/det.hpp"
#include "workloads.hpp"

namespace osap {
namespace {

TEST(TraceDigest, MapHeavyDoubleRunMatches) {
  const std::uint64_t first = run_map_heavy(42);
  const std::uint64_t second = run_map_heavy(42);
  EXPECT_EQ(first, second) << "map-heavy event stream is not reproducible";
}

TEST(TraceDigest, PreemptionHeavyDoubleRunMatches) {
  const std::uint64_t first = run_preemption_heavy(7);
  const std::uint64_t second = run_preemption_heavy(7);
  EXPECT_EQ(first, second) << "preemption-heavy event stream is not reproducible";
}

TEST(TraceDigest, MemoryPressureDoubleRunMatches) {
  const std::uint64_t first = run_memory_pressure(13);
  const std::uint64_t second = run_memory_pressure(13);
  EXPECT_EQ(first, second) << "memory-pressure event stream is not reproducible";
}

TEST(TraceDigest, FaultStormDoubleRunMatches) {
  const std::uint64_t first = run_fault_storm(21);
  const std::uint64_t second = run_fault_storm(21);
  EXPECT_EQ(first, second) << "fault-storm event stream is not reproducible";
}

TEST(TraceDigest, SpeculationStormDoubleRunMatches) {
  const std::uint64_t first = run_speculation_storm(34);
  const std::uint64_t second = run_speculation_storm(34);
  EXPECT_EQ(first, second) << "speculation-storm event stream is not reproducible";
}

TEST(TraceDigest, TieHeavyDoubleRunMatches) {
  const std::uint64_t first = run_tie_heavy(5);
  const std::uint64_t second = run_tie_heavy(5);
  EXPECT_EQ(first, second) << "tie-heavy event stream is not reproducible";
}

// The tracing-invariance law (docs/OBSERVABILITY.md): the tracer is a
// pure observer, so flipping it on must not perturb the event stream.
// One digest flip here means some recording call scheduled an event or
// steered a decision.
TEST(TraceDigest, MapHeavyUnchangedByTracing) {
  EXPECT_EQ(run_map_heavy(42, /*tracing=*/false), run_map_heavy(42, /*tracing=*/true))
      << "enabling the tracer changed the map-heavy event stream";
}

TEST(TraceDigest, PreemptionHeavyUnchangedByTracing) {
  EXPECT_EQ(run_preemption_heavy(7, /*tracing=*/false),
            run_preemption_heavy(7, /*tracing=*/true))
      << "enabling the tracer changed the preemption-heavy event stream";
}

TEST(TraceDigest, MemoryPressureUnchangedByTracing) {
  EXPECT_EQ(run_memory_pressure(13, /*tracing=*/false),
            run_memory_pressure(13, /*tracing=*/true))
      << "enabling the tracer changed the memory-pressure event stream";
}

TEST(TraceDigest, FaultStormUnchangedByTracing) {
  EXPECT_EQ(run_fault_storm(21, /*tracing=*/false), run_fault_storm(21, /*tracing=*/true))
      << "enabling the tracer changed the fault-storm event stream";
}

TEST(TraceDigest, SpeculationStormUnchangedByTracing) {
  EXPECT_EQ(run_speculation_storm(34, /*tracing=*/false),
            run_speculation_storm(34, /*tracing=*/true))
      << "enabling the tracer changed the speculation-storm event stream";
}

TEST(TraceDigest, TieHeavyUnchangedByTracing) {
  EXPECT_EQ(run_tie_heavy(5, /*tracing=*/false), run_tie_heavy(5, /*tracing=*/true))
      << "enabling the tracer changed the tie-heavy event stream";
}

TEST(TraceDigest, RevocationStormDoubleRunMatches) {
  const std::uint64_t first = run_revocation_storm(11);
  const std::uint64_t second = run_revocation_storm(11);
  EXPECT_EQ(first, second) << "revocation-storm event stream is not reproducible";
}

TEST(TraceDigest, RevocationStormUnchangedByTracing) {
  EXPECT_EQ(run_revocation_storm(11, /*tracing=*/false),
            run_revocation_storm(11, /*tracing=*/true))
      << "enabling the tracer changed the revocation-storm event stream";
}

TEST(TraceDigest, DifferentSeedsDiverge) {
  // The digest must actually see the event stream: a seed change reroutes
  // the storm, so identical digests would mean the witness is blind.
  EXPECT_NE(run_preemption_heavy(7), run_preemption_heavy(8));
}

TEST(TraceDigest, EmptySimulationIsOffsetBasis) {
  Simulation sim;
  EXPECT_EQ(sim.trace_digest(), det::Fnv1a::kOffsetBasis);
}

TEST(Fnv1a, MatchesReferenceVector) {
  // FNV-1a 64 of "a" per the published reference implementation.
  det::Fnv1a h;
  const unsigned char a = 'a';
  h.mix_bytes(&a, 1);
  EXPECT_EQ(h.value(), 0xaf63dc4c8601ec8cull);
}

TEST(Fnv1a, OrderSensitive) {
  det::Fnv1a ab, ba;
  ab.mix(std::uint64_t{1});
  ab.mix(std::uint64_t{2});
  ba.mix(std::uint64_t{2});
  ba.mix(std::uint64_t{1});
  EXPECT_NE(ab.value(), ba.value());
}

}  // namespace
}  // namespace osap
