// The runtime witness behind osap-lint: a scenario run twice from the
// same seed must replay the exact same event stream, bit for bit. The
// Simulation folds every fired event's (time, id) into an FNV-1a digest;
// these tests build three stressful workloads — map-heavy, a seeded
// preemption storm, and thrashing-level memory pressure — and assert the
// digest survives a full re-run. Any hash-order iteration, ambient
// randomness, or address-dependent decision anywhere in the stack shows
// up here as a digest mismatch.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/det.hpp"
#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "sched/dummy.hpp"
#include "sched/fifo.hpp"
#include "sim/simulation.hpp"
#include "workload/profiles.hpp"

namespace osap {
namespace {

/// Many light mappers racing for a few slots: stresses scheduler and
/// heartbeat-report ordering (the task_tracker / job_tracker loops).
std::uint64_t run_map_heavy(std::uint64_t seed, bool tracing = false) {
  ClusterConfig cfg = paper_cluster();
  cfg.num_nodes = 3;
  cfg.hadoop.map_slots = 2;
  cfg.seed = seed;
  cfg.trace.enabled = tracing;
  Cluster cluster(cfg);
  cluster.set_scheduler(std::make_unique<FifoScheduler>());
  Rng rng(seed);
  for (int i = 0; i < 8; ++i) {
    cluster.submit(single_task_job("map" + std::to_string(i), i % 3,
                                   jitter_task(light_map_task(128 * MiB), rng)));
  }
  cluster.run_until(3000.0);
  EXPECT_TRUE(cluster.job_tracker().all_jobs_done());
  return cluster.trace_digest();
}

/// A seeded suspend/resume/kill storm: stresses the preemption state
/// machines and the RM/JT victim-selection tie-breaks.
std::uint64_t run_preemption_heavy(std::uint64_t seed, bool tracing = false) {
  ClusterConfig cfg = paper_cluster();
  cfg.num_nodes = 2;
  cfg.hadoop.map_slots = 2;
  cfg.seed = seed;
  cfg.trace.enabled = tracing;
  Cluster cluster(cfg);
  auto sched = std::make_unique<DummyScheduler>(cluster);
  cluster.set_scheduler(std::move(sched));
  auto rng = std::make_shared<Rng>(seed);

  std::vector<JobId> jobs;
  for (int i = 0; i < 4; ++i) {
    const Bytes state = (i % 2 == 0) ? 0 : gib(1.0);
    TaskSpec spec =
        state > 0 ? hungry_map_task(state, 128 * MiB) : light_map_task(128 * MiB);
    jobs.push_back(cluster.submit(single_task_job("job" + std::to_string(i), i % 3, spec)));
  }

  JobTracker& jt = cluster.job_tracker();
  auto storm = [&cluster, &jt, rng, jobs](auto self) -> void {
    if (cluster.sim().now() > 90.0) return;
    std::vector<TaskId> live, suspended;
    for (JobId jid : jobs) {
      for (TaskId tid : jt.job(jid).tasks) {
        const Task& t = jt.task(tid);
        if (t.state == TaskState::Running) live.push_back(tid);
        if (t.state == TaskState::Suspended) suspended.push_back(tid);
      }
    }
    switch (rng->uniform_int(0, 2)) {
      case 0:
        if (!live.empty()) jt.suspend_task(live[rng->next_u64() % live.size()]);
        break;
      case 1:
        if (!suspended.empty()) jt.resume_task(suspended[rng->next_u64() % suspended.size()]);
        break;
      case 2:
        if (!live.empty() && rng->uniform() < 0.3) {
          jt.kill_task(live[rng->next_u64() % live.size()]);
        }
        break;
    }
    cluster.sim().after(3.0, [self] { self(self); });
  };
  cluster.sim().at(5.0, [storm] { storm(storm); });

  auto cleanup = [&cluster, &jt, jobs](auto self) -> void {
    bool any = false;
    for (JobId jid : jobs) {
      for (TaskId tid : jt.job(jid).tasks) {
        if (jt.task(tid).state == TaskState::Suspended) {
          jt.resume_task(tid);
          any = true;
        }
      }
    }
    if (any || !jt.all_jobs_done()) cluster.sim().after(10.0, [self] { self(self); });
  };
  cluster.sim().at(95.0, [cleanup] { cleanup(cleanup); });

  cluster.run_until(3000.0);
  EXPECT_TRUE(jt.all_jobs_done());
  return cluster.trace_digest();
}

/// Two stateful mappers whose combined footprint overcommits RAM: the
/// VMM reclaims, swaps, and (possibly) OOM-kills — the code paths where
/// hash-order victim selection used to hide.
std::uint64_t run_memory_pressure(std::uint64_t seed, bool tracing = false) {
  ClusterConfig cfg = paper_cluster();
  cfg.hadoop.map_slots = 2;
  cfg.seed = seed;
  cfg.trace.enabled = tracing;
  Cluster cluster(cfg);
  cluster.set_scheduler(std::make_unique<FifoScheduler>());
  cluster.submit(single_task_job("hog0", 1, hungry_map_task(gib(1.5), 64 * MiB)));
  cluster.submit(single_task_job("hog1", 0, hungry_map_task(gib(1.5), 64 * MiB)));
  cluster.submit(single_task_job("light", 2, light_map_task(64 * MiB)));
  cluster.run_until(3000.0);
  EXPECT_TRUE(cluster.job_tracker().all_jobs_done());
  return cluster.trace_digest();
}

/// A scripted fault storm — crash, daemon hang past the lease, a
/// heartbeat-drop window and a congested link — over a map-heavy
/// workload. The recovery machinery (lease sweep, TaskLost requeues,
/// reinit-on-rejoin) runs the same code paths the fault tests exercise;
/// here the law is that the whole storm replays bit-identically.
std::uint64_t run_fault_storm(std::uint64_t seed, bool tracing = false) {
  ClusterConfig cfg = paper_cluster();
  cfg.num_nodes = 3;
  cfg.hadoop.map_slots = 2;
  cfg.hadoop.tracker_expiry = seconds(9);
  cfg.hadoop.expiry_check_interval = seconds(1);
  cfg.seed = seed;
  cfg.trace.enabled = tracing;
  Cluster cluster(cfg);
  cluster.set_scheduler(std::make_unique<FifoScheduler>());
  Rng rng(seed);
  for (int i = 0; i < 6; ++i) {
    cluster.submit(single_task_job("map" + std::to_string(i), i % 3,
                                   jitter_task(light_map_task(128 * MiB), rng)));
  }
  fault::FaultInjector injector(cluster, fault::parse_fault_plan(
                                             "drop-heartbeats 3 8 0\n"
                                             "delay-messages 0 60 1 0.05\n"
                                             "hang 6 1 12\n"
                                             "crash 15 2\n"));
  cluster.run_until(3000.0);
  EXPECT_TRUE(cluster.job_tracker().all_jobs_done());
  return cluster.trace_digest();
}

/// Speculative execution under duress: two stragglers (one SIGTSTP-
/// suspended, one Natjam-parked) trip the detector, their copies race on
/// slots freed by the suspensions, and a node crash lands mid-race. The
/// detector sweep, first-finisher-wins resolution and promote-on-loss
/// paths all feed the digest; a cleanup loop then resumes whatever is
/// still parked so the run can actually finish.
std::uint64_t run_speculation_storm(std::uint64_t seed, bool tracing = false) {
  ClusterConfig cfg = paper_cluster();
  cfg.num_nodes = 4;
  cfg.hadoop.tracker_expiry = seconds(9);
  cfg.hadoop.expiry_check_interval = seconds(1);
  cfg.hadoop.speculative_execution = true;
  cfg.hadoop.speculative_cap = 2;
  cfg.hadoop.speculative_min_runtime = seconds(10);
  cfg.seed = seed;
  cfg.trace.enabled = tracing;
  Cluster cluster(cfg);
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));

  Rng rng(seed);
  JobSpec job;
  job.name = "spec";
  for (int i = 0; i < 4; ++i) {
    TaskSpec spec = jitter_task(light_map_task(256 * MiB), rng);
    spec.preferred_node = cluster.node(i);
    job.tasks.push_back(spec);
  }
  ds.submit_at(0.05, job);
  ds.at_progress("spec", 0, 0.3,
                 [&ds] { ds.preempt("spec", 0, PreemptPrimitive::Suspend); });
  ds.at_progress("spec", 1, 0.5,
                 [&ds] { ds.preempt("spec", 1, PreemptPrimitive::NatjamCheckpoint); });
  fault::FaultInjector injector(cluster, fault::parse_fault_plan("crash 55 3\n"));

  JobTracker& jt = cluster.job_tracker();
  auto cleanup = [&cluster, &jt, &ds](auto self) -> void {
    for (TaskId tid : jt.job(ds.job_of("spec")).tasks) {
      if (jt.task(tid).state == TaskState::Suspended) jt.resume_task(tid);
    }
    if (!jt.all_jobs_done()) cluster.sim().after(10.0, [self] { self(self); });
  };
  cluster.sim().at(150.0, [cleanup] { cleanup(cleanup); });

  cluster.run_until(3000.0);
  EXPECT_TRUE(jt.all_jobs_done());
  return cluster.trace_digest();
}

TEST(TraceDigest, MapHeavyDoubleRunMatches) {
  const std::uint64_t first = run_map_heavy(42);
  const std::uint64_t second = run_map_heavy(42);
  EXPECT_EQ(first, second) << "map-heavy event stream is not reproducible";
}

TEST(TraceDigest, PreemptionHeavyDoubleRunMatches) {
  const std::uint64_t first = run_preemption_heavy(7);
  const std::uint64_t second = run_preemption_heavy(7);
  EXPECT_EQ(first, second) << "preemption-heavy event stream is not reproducible";
}

TEST(TraceDigest, MemoryPressureDoubleRunMatches) {
  const std::uint64_t first = run_memory_pressure(13);
  const std::uint64_t second = run_memory_pressure(13);
  EXPECT_EQ(first, second) << "memory-pressure event stream is not reproducible";
}

TEST(TraceDigest, FaultStormDoubleRunMatches) {
  const std::uint64_t first = run_fault_storm(21);
  const std::uint64_t second = run_fault_storm(21);
  EXPECT_EQ(first, second) << "fault-storm event stream is not reproducible";
}

TEST(TraceDigest, SpeculationStormDoubleRunMatches) {
  const std::uint64_t first = run_speculation_storm(34);
  const std::uint64_t second = run_speculation_storm(34);
  EXPECT_EQ(first, second) << "speculation-storm event stream is not reproducible";
}

// The tracing-invariance law (docs/OBSERVABILITY.md): the tracer is a
// pure observer, so flipping it on must not perturb the event stream.
// One digest flip here means some recording call scheduled an event or
// steered a decision.
TEST(TraceDigest, MapHeavyUnchangedByTracing) {
  EXPECT_EQ(run_map_heavy(42, /*tracing=*/false), run_map_heavy(42, /*tracing=*/true))
      << "enabling the tracer changed the map-heavy event stream";
}

TEST(TraceDigest, PreemptionHeavyUnchangedByTracing) {
  EXPECT_EQ(run_preemption_heavy(7, /*tracing=*/false),
            run_preemption_heavy(7, /*tracing=*/true))
      << "enabling the tracer changed the preemption-heavy event stream";
}

TEST(TraceDigest, MemoryPressureUnchangedByTracing) {
  EXPECT_EQ(run_memory_pressure(13, /*tracing=*/false),
            run_memory_pressure(13, /*tracing=*/true))
      << "enabling the tracer changed the memory-pressure event stream";
}

TEST(TraceDigest, FaultStormUnchangedByTracing) {
  EXPECT_EQ(run_fault_storm(21, /*tracing=*/false), run_fault_storm(21, /*tracing=*/true))
      << "enabling the tracer changed the fault-storm event stream";
}

TEST(TraceDigest, SpeculationStormUnchangedByTracing) {
  EXPECT_EQ(run_speculation_storm(34, /*tracing=*/false),
            run_speculation_storm(34, /*tracing=*/true))
      << "enabling the tracer changed the speculation-storm event stream";
}

TEST(TraceDigest, DifferentSeedsDiverge) {
  // The digest must actually see the event stream: a seed change reroutes
  // the storm, so identical digests would mean the witness is blind.
  EXPECT_NE(run_preemption_heavy(7), run_preemption_heavy(8));
}

TEST(TraceDigest, EmptySimulationIsOffsetBasis) {
  Simulation sim;
  EXPECT_EQ(sim.trace_digest(), det::Fnv1a::kOffsetBasis);
}

TEST(Fnv1a, MatchesReferenceVector) {
  // FNV-1a 64 of "a" per the published reference implementation.
  det::Fnv1a h;
  const unsigned char a = 'a';
  h.mix_bytes(&a, 1);
  EXPECT_EQ(h.value(), 0xaf63dc4c8601ec8cull);
}

TEST(Fnv1a, OrderSensitive) {
  det::Fnv1a ab, ba;
  ab.mix(std::uint64_t{1});
  ab.mix(std::uint64_t{2});
  ba.mix(std::uint64_t{2});
  ba.mix(std::uint64_t{1});
  EXPECT_NE(ab.value(), ba.value());
}

}  // namespace
}  // namespace osap
