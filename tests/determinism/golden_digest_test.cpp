// Golden trace digests: the double-run tests prove each workload is
// self-consistent, but only a committed constant proves a *refactor*
// preserved the event stream. These values were captured from the
// binary-heap EventQueue and full-scan JobTracker sweeps immediately
// before the calendar-queue / incremental-sweep overhaul (docs/PERF.md);
// the overhaul's correctness law is that every one of them still matches
// bit for bit. Regenerate only for an intentional model change, never
// for a performance change:
//   build/tests/determinism_test --gtest_filter='GoldenDigest.*' prints
//   the expected-vs-actual pairs on mismatch.
#include <gtest/gtest.h>

#include <cstdint>

#include "workloads.hpp"

namespace osap {
namespace {

TEST(GoldenDigest, MapHeavy) {
  EXPECT_EQ(run_map_heavy(42), 0xb06d622b8d43babdull);
}

TEST(GoldenDigest, PreemptionHeavy) {
  EXPECT_EQ(run_preemption_heavy(7), 0xa610333863ca6157ull);
}

TEST(GoldenDigest, MemoryPressure) {
  EXPECT_EQ(run_memory_pressure(13), 0xf23eb4364ecb6e4full);
}

TEST(GoldenDigest, FaultStorm) {
  EXPECT_EQ(run_fault_storm(21), 0x6cd30b115b5ca44full);
}

TEST(GoldenDigest, SpeculationStorm) {
  EXPECT_EQ(run_speculation_storm(34), 0xe09b767e883fc8e7ull);
}

// Captured at the introduction of the node-revocation subsystem: pins
// the warning/drain/evacuation event stream (src/revoke) the same way
// the constants above pin the simulator core.
TEST(GoldenDigest, RevocationStorm) {
  EXPECT_EQ(run_revocation_storm(11), 0x40bfb14cec8f5268ull);
}

}  // namespace
}  // namespace osap
