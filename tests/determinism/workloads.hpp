// Shared determinism workloads: the five stressful scenarios whose trace
// digests define the reproducibility law. Used by determinism_test.cpp
// (double-run and tracing-invariance) and golden_digest_test.cpp (the
// committed digest constants that pin the event stream across refactors
// of the simulator core — see docs/PERF.md).
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "revoke/lifetime.hpp"
#include "revoke/manager.hpp"
#include "sched/dummy.hpp"
#include "sched/fifo.hpp"
#include "sched/hfsp.hpp"
#include "sim/simulation.hpp"
#include "workload/profiles.hpp"

namespace osap {

/// Many light mappers racing for a few slots: stresses scheduler and
/// heartbeat-report ordering (the task_tracker / job_tracker loops).
inline std::uint64_t run_map_heavy(std::uint64_t seed, bool tracing = false) {
  ClusterConfig cfg = paper_cluster();
  cfg.num_nodes = 3;
  cfg.hadoop.map_slots = 2;
  cfg.seed = seed;
  cfg.trace.enabled = tracing;
  Cluster cluster(cfg);
  cluster.set_scheduler(std::make_unique<FifoScheduler>());
  Rng rng(seed);
  for (int i = 0; i < 8; ++i) {
    cluster.submit(single_task_job("map" + std::to_string(i), i % 3,
                                   jitter_task(light_map_task(128 * MiB), rng)));
  }
  cluster.run_until(3000.0);
  EXPECT_TRUE(cluster.job_tracker().all_jobs_done());
  return cluster.trace_digest();
}

/// A seeded suspend/resume/kill storm: stresses the preemption state
/// machines and the RM/JT victim-selection tie-breaks.
inline std::uint64_t run_preemption_heavy(std::uint64_t seed, bool tracing = false) {
  ClusterConfig cfg = paper_cluster();
  cfg.num_nodes = 2;
  cfg.hadoop.map_slots = 2;
  cfg.seed = seed;
  cfg.trace.enabled = tracing;
  Cluster cluster(cfg);
  auto sched = std::make_unique<DummyScheduler>(cluster);
  cluster.set_scheduler(std::move(sched));
  auto rng = std::make_shared<Rng>(seed);

  std::vector<JobId> jobs;
  for (int i = 0; i < 4; ++i) {
    const Bytes state = (i % 2 == 0) ? 0 : gib(1.0);
    TaskSpec spec =
        state > 0 ? hungry_map_task(state, 128 * MiB) : light_map_task(128 * MiB);
    jobs.push_back(cluster.submit(single_task_job("job" + std::to_string(i), i % 3, spec)));
  }

  JobTracker& jt = cluster.job_tracker();
  auto storm = [&cluster, &jt, rng, jobs](auto self) -> void {
    if (cluster.sim().now() > 90.0) return;
    std::vector<TaskId> live, suspended;
    for (JobId jid : jobs) {
      for (TaskId tid : jt.job(jid).tasks) {
        const Task& t = jt.task(tid);
        if (t.state == TaskState::Running) live.push_back(tid);
        if (t.state == TaskState::Suspended) suspended.push_back(tid);
      }
    }
    switch (rng->uniform_int(0, 2)) {
      case 0:
        if (!live.empty()) jt.suspend_task(live[rng->next_u64() % live.size()]);
        break;
      case 1:
        if (!suspended.empty()) jt.resume_task(suspended[rng->next_u64() % suspended.size()]);
        break;
      case 2:
        if (!live.empty() && rng->uniform() < 0.3) {
          jt.kill_task(live[rng->next_u64() % live.size()]);
        }
        break;
    }
    cluster.sim().after(3.0, [self] { self(self); });
  };
  cluster.sim().at(5.0, [storm] { storm(storm); });

  auto cleanup = [&cluster, &jt, jobs](auto self) -> void {
    bool any = false;
    for (JobId jid : jobs) {
      for (TaskId tid : jt.job(jid).tasks) {
        if (jt.task(tid).state == TaskState::Suspended) {
          jt.resume_task(tid);
          any = true;
        }
      }
    }
    if (any || !jt.all_jobs_done()) cluster.sim().after(10.0, [self] { self(self); });
  };
  cluster.sim().at(95.0, [cleanup] { cleanup(cleanup); });

  cluster.run_until(3000.0);
  EXPECT_TRUE(jt.all_jobs_done());
  return cluster.trace_digest();
}

/// Two stateful mappers whose combined footprint overcommits RAM: the
/// VMM reclaims, swaps, and (possibly) OOM-kills — the code paths where
/// hash-order victim selection used to hide.
inline std::uint64_t run_memory_pressure(std::uint64_t seed, bool tracing = false) {
  ClusterConfig cfg = paper_cluster();
  cfg.hadoop.map_slots = 2;
  cfg.seed = seed;
  cfg.trace.enabled = tracing;
  Cluster cluster(cfg);
  cluster.set_scheduler(std::make_unique<FifoScheduler>());
  cluster.submit(single_task_job("hog0", 1, hungry_map_task(gib(1.5), 64 * MiB)));
  cluster.submit(single_task_job("hog1", 0, hungry_map_task(gib(1.5), 64 * MiB)));
  cluster.submit(single_task_job("light", 2, light_map_task(64 * MiB)));
  cluster.run_until(3000.0);
  EXPECT_TRUE(cluster.job_tracker().all_jobs_done());
  return cluster.trace_digest();
}

/// A scripted fault storm — crash, daemon hang past the lease, a
/// heartbeat-drop window and a congested link — over a map-heavy
/// workload. The recovery machinery (lease sweep, TaskLost requeues,
/// reinit-on-rejoin) runs the same code paths the fault tests exercise;
/// here the law is that the whole storm replays bit-identically.
inline std::uint64_t run_fault_storm(std::uint64_t seed, bool tracing = false) {
  ClusterConfig cfg = paper_cluster();
  cfg.num_nodes = 3;
  cfg.hadoop.map_slots = 2;
  cfg.hadoop.tracker_expiry = seconds(9);
  cfg.hadoop.expiry_check_interval = seconds(1);
  cfg.seed = seed;
  cfg.trace.enabled = tracing;
  Cluster cluster(cfg);
  cluster.set_scheduler(std::make_unique<FifoScheduler>());
  Rng rng(seed);
  for (int i = 0; i < 6; ++i) {
    cluster.submit(single_task_job("map" + std::to_string(i), i % 3,
                                   jitter_task(light_map_task(128 * MiB), rng)));
  }
  fault::FaultInjector injector(cluster, fault::parse_fault_plan(
                                             "drop-heartbeats 3 8 0\n"
                                             "delay-messages 0 60 1 0.05\n"
                                             "hang 6 1 12\n"
                                             "crash 15 2\n"));
  cluster.run_until(3000.0);
  EXPECT_TRUE(cluster.job_tracker().all_jobs_done());
  return cluster.trace_digest();
}

/// Speculative execution under duress: two stragglers (one SIGTSTP-
/// suspended, one Natjam-parked) trip the detector, their copies race on
/// slots freed by the suspensions, and a node crash lands mid-race. The
/// detector sweep, first-finisher-wins resolution and promote-on-loss
/// paths all feed the digest; a cleanup loop then resumes whatever is
/// still parked so the run can actually finish.
inline std::uint64_t run_speculation_storm(std::uint64_t seed, bool tracing = false) {
  ClusterConfig cfg = paper_cluster();
  cfg.num_nodes = 4;
  cfg.hadoop.tracker_expiry = seconds(9);
  cfg.hadoop.expiry_check_interval = seconds(1);
  cfg.hadoop.speculative_execution = true;
  cfg.hadoop.speculative_cap = 2;
  cfg.hadoop.speculative_min_runtime = seconds(10);
  cfg.seed = seed;
  cfg.trace.enabled = tracing;
  Cluster cluster(cfg);
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));

  Rng rng(seed);
  JobSpec job;
  job.name = "spec";
  for (int i = 0; i < 4; ++i) {
    TaskSpec spec = jitter_task(light_map_task(256 * MiB), rng);
    spec.preferred_node = cluster.node(i);
    job.tasks.push_back(spec);
  }
  ds.submit_at(0.05, job);
  ds.at_progress("spec", 0, 0.3,
                 [&ds] { ds.preempt("spec", 0, PreemptPrimitive::Suspend); });
  ds.at_progress("spec", 1, 0.5,
                 [&ds] { ds.preempt("spec", 1, PreemptPrimitive::NatjamCheckpoint); });
  fault::FaultInjector injector(cluster, fault::parse_fault_plan("crash 55 3\n"));

  JobTracker& jt = cluster.job_tracker();
  auto cleanup = [&cluster, &jt, &ds](auto self) -> void {
    for (TaskId tid : jt.job(ds.job_of("spec")).tasks) {
      if (jt.task(tid).state == TaskState::Suspended) jt.resume_task(tid);
    }
    if (!jt.all_jobs_done()) cluster.sim().after(10.0, [self] { self(self); });
  };
  cluster.sim().at(150.0, [cleanup] { cleanup(cleanup); });

  cluster.run_until(3000.0);
  EXPECT_TRUE(jt.all_jobs_done());
  return cluster.trace_digest();
}

/// A deliberate tie factory for victim selection: two byte-identical big
/// jobs (same remaining size — a head-job tie) whose four identical
/// tasks fill all four slots in the same heartbeat (progress, memory and
/// launch-time ties across the whole eviction pool), then a stream of
/// identical tiny jobs forcing HFSP to preempt over that tied pool again
/// and again. Every choice must fall through to the task-id tie-break;
/// anything order- or address-dependent in pick_victim lands here.
inline std::uint64_t run_tie_heavy(std::uint64_t seed, bool tracing = false) {
  ClusterConfig cfg = paper_cluster();
  cfg.num_nodes = 2;
  cfg.hadoop.map_slots = 2;
  cfg.seed = seed;
  cfg.trace.enabled = tracing;
  Cluster cluster(cfg);
  HfspScheduler::Options options;
  options.primitive = PreemptPrimitive::Suspend;
  options.max_preemptions_per_heartbeat = 2;
  cluster.set_scheduler(std::make_unique<HfspScheduler>(options));
  for (int i = 0; i < 2; ++i) {
    JobSpec spec;
    spec.name = "big" + std::to_string(i);
    spec.tasks.push_back(light_map_task(256 * MiB));
    spec.tasks.push_back(light_map_task(256 * MiB));
    cluster.submit(spec);
  }
  for (int i = 0; i < 3; ++i) {
    cluster.sim().at(10.0 + 10.0 * i, [&cluster, i] {
      const std::string name = "tiny" + std::to_string(i);
      cluster.submit(single_task_job(name, 0, light_map_task(32 * MiB)));
    });
  }
  cluster.run_until(3000.0);
  EXPECT_TRUE(cluster.job_tracker().all_jobs_done());
  return cluster.trace_digest();
}

/// A revocation storm: half the cluster is transient with short sampled
/// lifetimes, each death preceded by a warning, and the manager rescues
/// work Natjam-style (checkpoint on warning, evacuate, resume). The
/// warning handler, drain, evacuation and replica steering all feed the
/// digest; the law is the whole storm replays bit-identically and the
/// tracer observes without perturbing it.
inline std::uint64_t run_revocation_storm(std::uint64_t seed, bool tracing = false) {
  ClusterConfig cfg = paper_cluster();
  cfg.num_nodes = 4;
  cfg.hadoop.map_slots = 2;
  cfg.hadoop.tracker_expiry = seconds(9);
  cfg.hadoop.expiry_check_interval = seconds(1);
  cfg.seed = seed;
  cfg.trace.enabled = tracing;
  Cluster cluster(cfg);
  HfspScheduler::Options options;
  options.primitive = PreemptPrimitive::Suspend;
  cluster.set_scheduler(std::make_unique<HfspScheduler>(options));
  Rng rng(seed);
  for (int i = 0; i < 8; ++i) {
    cluster.create_input("in" + std::to_string(i), 128 * MiB, cluster.node(i % 4));
    cluster.submit(single_task_job("map" + std::to_string(i), i % 4,
                                   jitter_task(light_map_task(128 * MiB), rng)));
  }
  revoke::LifetimeOptions lopts;
  lopts.model = revoke::LifetimeModel::Exponential;
  lopts.node_mix = 0.5;
  lopts.mean_lifetime_s = 60;
  lopts.warning_s = 15;
  lopts.seed = seed;
  revoke::RevocationPlan rplan = revoke::plan_revocations(4, lopts);
  fault::FaultPlan fplan;
  rplan.merge_into(fplan);
  fault::FaultInjector injector(cluster, std::move(fplan));
  revoke::RevocationManager manager(cluster, injector, rplan,
                                    revoke::Reaction::Checkpoint);
  cluster.run_until(3000.0);
  EXPECT_TRUE(cluster.job_tracker().all_jobs_done());
  return cluster.trace_digest();
}

}  // namespace osap
