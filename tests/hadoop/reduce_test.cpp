// Reduce-task support: shuffle + sort + reduce phases, reduce slots, and
// preemption of reducers (the primitive "behaves in the same way for both
// Map and Reduce tasks", §IV-A).
#include <gtest/gtest.h>

#include "sched/dummy.hpp"
#include "workload/profiles.hpp"

namespace osap {
namespace {

TaskSpec reduce_task(Bytes shuffle, Bytes state = 0) {
  TaskSpec spec;
  spec.type = TaskType::Reduce;
  spec.shuffle_bytes = shuffle;
  spec.sort_cpu_seconds = 5.0;
  spec.input_bytes = 0;
  spec.output_bytes = shuffle / 2;
  spec.state_memory = state;
  spec.framework_memory = 160 * MiB;
  spec.parse_cpu_per_byte = 1.0 / (6.7 * static_cast<double>(MiB));
  return spec;
}

struct Rig {
  Rig() : cluster(paper_cluster()) {
    auto sched = std::make_unique<DummyScheduler>(cluster);
    ds = sched.get();
    cluster.set_scheduler(std::move(sched));
  }
  Cluster cluster;
  DummyScheduler* ds = nullptr;
};

TEST(Reduce, MapAndReduceJobCompletes) {
  Rig rig;
  JobSpec job;
  job.name = "mr";
  job.tasks.push_back(light_map_task(256 * MiB));
  job.tasks.push_back(reduce_task(128 * MiB));
  rig.ds->submit_at(0.05, job);
  rig.cluster.run();
  const Job& done = rig.cluster.job_tracker().job(rig.ds->job_of("mr"));
  EXPECT_EQ(done.state, JobState::Succeeded);
  // Map (~40 s) and reduce (~25 s) used separate slots, so they overlap.
  EXPECT_LT(done.sojourn(), 60.0);
}

TEST(Reduce, ReduceUsesReduceSlotsNotMapSlots) {
  Rig rig;
  // One map slot busy with a map task; a reduce task must still launch.
  JobSpec job;
  job.name = "mixed";
  job.tasks.push_back(light_map_task());
  job.tasks.push_back(reduce_task(64 * MiB));
  rig.ds->submit_at(0.05, job);
  rig.cluster.run_until(20.0);
  TaskTracker& tt = rig.cluster.tracker(rig.cluster.node(0));
  EXPECT_EQ(tt.free_map_slots(), 0);
  EXPECT_EQ(tt.free_reduce_slots(), 0);
  rig.cluster.run();
  EXPECT_EQ(rig.cluster.job_tracker().job(rig.ds->job_of("mixed")).state, JobState::Succeeded);
}

TEST(Reduce, ReducerCanBeSuspendedAndResumed) {
  Rig rig;
  JobSpec job;
  job.name = "red";
  job.tasks.push_back(reduce_task(512 * MiB));
  rig.ds->submit_at(0.05, job);
  rig.ds->at_progress("red", 0, 0.4,
                      [&] { rig.ds->preempt("red", 0, PreemptPrimitive::Suspend); });
  rig.cluster.sim().at(80.0, [&] { rig.ds->restore("red", 0, PreemptPrimitive::Suspend); });
  rig.cluster.run();
  const Job& done = rig.cluster.job_tracker().job(rig.ds->job_of("red"));
  EXPECT_EQ(done.state, JobState::Succeeded);
  const Task& task = rig.cluster.job_tracker().task(done.tasks[0]);
  EXPECT_EQ(task.attempts_started, 1);  // suspended, not rerun
}

TEST(Reduce, StatefulReducerSwapsUnderPressure) {
  // The motivating case for OS-assisted preemption: reducers are the
  // stateful tasks par excellence (Natjam's focus).
  Rig rig;
  JobSpec red;
  red.name = "red";
  red.tasks.push_back(reduce_task(512 * MiB, /*state=*/2 * GiB));
  rig.ds->submit_at(0.05, red);
  rig.ds->at_progress("red", 0, 0.5, [&] {
    TaskSpec hungry = hungry_map_task(2 * GiB);
    rig.cluster.submit(single_task_job("high", 10, hungry));
    rig.ds->preempt("red", 0, PreemptPrimitive::Suspend);
  });
  rig.ds->on_complete("high", [&] { rig.ds->restore("red", 0, PreemptPrimitive::Suspend); });
  rig.cluster.run();
  const JobTracker& jt = rig.cluster.job_tracker();
  EXPECT_EQ(jt.job(rig.ds->job_of("red")).state, JobState::Succeeded);
  const Task& reducer = jt.task(rig.ds->task_of("red", 0));
  EXPECT_GT(reducer.swapped_out, 300 * MiB);
  EXPECT_EQ(reducer.attempts_started, 1);
}

}  // namespace
}  // namespace osap
