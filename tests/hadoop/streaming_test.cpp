// Hadoop Streaming / external state (§V-B): tasks piping through external
// executables must survive suspension — "external software would
// correctly pause waiting for the next input from a suspended task".
#include <gtest/gtest.h>

#include "sched/dummy.hpp"
#include "workload/profiles.hpp"

namespace osap {
namespace {

TaskSpec streaming_task() {
  TaskSpec spec = light_map_task();
  spec.streaming_helper_memory = 256 * MiB;
  spec.streaming_cpu_per_byte = 1.0 / (20.0 * static_cast<double>(MiB));
  return spec;
}

struct Rig {
  Rig() : cluster(paper_cluster()) {
    auto sched = std::make_unique<DummyScheduler>(cluster);
    ds = sched.get();
    cluster.set_scheduler(std::move(sched));
  }
  Cluster cluster;
  DummyScheduler* ds = nullptr;
};

TEST(Streaming, HelperProcessRunsAlongsideTheTask) {
  Rig rig;
  TaskSpec spec = streaming_task();
  spec.preferred_node = rig.cluster.node(0);
  rig.ds->submit_at(0.05, single_task_job("stream", 0, spec));
  rig.cluster.run_until(20.0);
  // Task JVM + external executable = two processes on the node.
  EXPECT_EQ(rig.cluster.kernel(rig.cluster.node(0)).process_count(), 2u);
  rig.cluster.run();
  EXPECT_EQ(rig.cluster.job_tracker().job(rig.ds->job_of("stream")).state,
            JobState::Succeeded);
  // The helper is gone once the pipe closed.
  EXPECT_EQ(rig.cluster.kernel(rig.cluster.node(0)).process_count(), 0u);
}

TEST(Streaming, SuspensionPausesTheHelperToo) {
  Rig rig;
  TaskSpec spec = streaming_task();
  spec.preferred_node = rig.cluster.node(0);
  rig.ds->submit_at(0.05, single_task_job("stream", 0, spec));
  rig.ds->at_progress("stream", 0, 0.4,
                      [&] { rig.ds->preempt("stream", 0, PreemptPrimitive::Suspend); });
  rig.cluster.run_until(60.0);
  Kernel& kernel = rig.cluster.kernel(rig.cluster.node(0));
  int stopped = 0;
  for (std::uint64_t pid = 0; pid < 8; ++pid) {
    const Process* p = kernel.find(Pid{pid});
    if (p != nullptr && p->state() == ProcState::Stopped) ++stopped;
  }
  EXPECT_EQ(stopped, 2);  // the task and its external helper

  rig.cluster.sim().at(61.0, [&] { rig.ds->restore("stream", 0, PreemptPrimitive::Suspend); });
  rig.cluster.run();
  EXPECT_EQ(rig.cluster.job_tracker().job(rig.ds->job_of("stream")).state,
            JobState::Succeeded);
}

TEST(Streaming, KillTearsDownTheHelper) {
  Rig rig;
  TaskSpec spec = streaming_task();
  spec.preferred_node = rig.cluster.node(0);
  rig.ds->submit_at(0.05, single_task_job("stream", 0, spec));
  rig.ds->at_progress("stream", 0, 0.4,
                      [&] { rig.ds->preempt("stream", 0, PreemptPrimitive::Kill); });
  rig.cluster.run();
  EXPECT_EQ(rig.cluster.job_tracker().job(rig.ds->job_of("stream")).state,
            JobState::Succeeded);
  // No orphaned helpers at the end.
  EXPECT_EQ(rig.cluster.kernel(rig.cluster.node(0)).process_count(), 0u);
}

}  // namespace
}  // namespace osap
