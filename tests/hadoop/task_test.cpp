#include "hadoop/task.hpp"

#include <gtest/gtest.h>

namespace osap {
namespace {

TEST(TaskProgram, LightMapPhases) {
  TaskSpec spec;
  spec.input_bytes = 512 * MiB;
  spec.framework_memory = 160 * MiB;
  const Program p = build_task_program(spec);
  // startup, framework alloc, read-parse.
  ASSERT_EQ(p.phases.size(), 3u);
  EXPECT_TRUE(std::holds_alternative<ComputePhase>(p.phases[0]));
  EXPECT_TRUE(std::holds_alternative<AllocPhase>(p.phases[1]));
  EXPECT_TRUE(std::holds_alternative<ReadParsePhase>(p.phases[2]));
  EXPECT_TRUE(std::get<AllocPhase>(p.phases[1]).hot_after);
}

TEST(TaskProgram, StatefulMapAddsStateAndTouch) {
  TaskSpec spec;
  spec.state_memory = 2 * GiB;
  const Program p = build_task_program(spec);
  ASSERT_EQ(p.phases.size(), 5u);
  const auto& state = std::get<AllocPhase>(p.phases[2]);
  EXPECT_EQ(state.bytes, 2 * GiB);
  EXPECT_FALSE(state.hot_after);  // idle during processing -> swappable
  const auto& touch = std::get<TouchPhase>(p.phases[4]);
  EXPECT_EQ(touch.region, "state");
  EXPECT_FALSE(touch.write);
}

TEST(TaskProgram, StatefulWithoutFinalTouch) {
  TaskSpec spec;
  spec.state_memory = 1 * GiB;
  spec.touch_state_at_end = false;
  const Program p = build_task_program(spec);
  EXPECT_EQ(p.phases.size(), 4u);
}

TEST(TaskProgram, OutputPhaseAppended) {
  TaskSpec spec;
  spec.output_bytes = 64 * MiB;
  const Program p = build_task_program(spec);
  EXPECT_TRUE(std::holds_alternative<WriteOutPhase>(p.phases.back()));
}

TEST(TaskProgram, ReduceShufflesBeforeInput) {
  TaskSpec spec;
  spec.type = TaskType::Reduce;
  spec.shuffle_bytes = 256 * MiB;
  spec.sort_cpu_seconds = 5;
  spec.input_bytes = 0;
  const Program p = build_task_program(spec);
  // startup, framework, shuffle read, sort.
  ASSERT_EQ(p.phases.size(), 4u);
  EXPECT_TRUE(std::holds_alternative<ReadParsePhase>(p.phases[2]));
  EXPECT_TRUE(std::holds_alternative<ComputePhase>(p.phases[3]));
}

TEST(TaskProgram, CheckpointResumeFastForwards) {
  TaskSpec spec;
  spec.input_bytes = 512 * MiB;
  spec.checkpoint_progress = 0.75;
  spec.checkpoint_state = 64 * KiB;
  const Program p = build_task_program(spec);
  // startup, framework, deserialize, remaining input.
  ASSERT_EQ(p.phases.size(), 4u);
  const auto& remaining = std::get<ReadParsePhase>(p.phases[3]);
  EXPECT_EQ(remaining.bytes, 128 * MiB);
}

TEST(TaskProgram, FullyCheckpointedTaskReadsNoInput) {
  TaskSpec spec;
  spec.input_bytes = 512 * MiB;
  spec.checkpoint_progress = 1.0;
  const Program p = build_task_program(spec);
  for (const Phase& phase : p.phases) {
    if (const auto* rp = std::get_if<ReadParsePhase>(&phase)) {
      EXPECT_EQ(rp->bytes, 0u);
    }
  }
}

TEST(TaskStates, Names) {
  EXPECT_STREQ(to_string(TaskState::MustSuspend), "MUST_SUSPEND");
  EXPECT_STREQ(to_string(TaskState::Suspended), "SUSPENDED");
  EXPECT_STREQ(to_string(TaskState::MustResume), "MUST_RESUME");
  EXPECT_STREQ(to_string(TaskType::Map), "map");
}

TEST(TaskStates, LiveAndDone) {
  Task t;
  t.state = TaskState::Suspended;
  EXPECT_TRUE(t.live());
  EXPECT_FALSE(t.done());
  t.state = TaskState::Succeeded;
  EXPECT_FALSE(t.live());
  EXPECT_TRUE(t.done());
  t.state = TaskState::Unassigned;
  EXPECT_FALSE(t.live());
  EXPECT_FALSE(t.done());
}

}  // namespace
}  // namespace osap
