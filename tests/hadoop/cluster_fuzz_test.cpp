// End-to-end fuzz: random suspend / resume / kill storms against a live
// cluster must never wedge the system — every job still completes, state
// machines stay consistent, and memory is returned.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sched/dummy.hpp"
#include "workload/profiles.hpp"

namespace osap {
namespace {

class ClusterFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusterFuzz, RandomPreemptionStormStillCompletes) {
  ClusterConfig cfg = paper_cluster();
  cfg.num_nodes = 2;
  cfg.hadoop.map_slots = 2;
  cfg.seed = GetParam();
  Cluster cluster(cfg);
  auto sched = std::make_unique<DummyScheduler>(cluster);
  cluster.set_scheduler(std::move(sched));
  auto rng = std::make_shared<Rng>(GetParam());

  // A mixed workload: some light, some stateful jobs.
  std::vector<JobId> jobs;
  for (int i = 0; i < 5; ++i) {
    const Bytes state = (i % 2 == 0) ? 0 : gib(1.0);
    TaskSpec spec = state > 0 ? hungry_map_task(state, 256 * MiB)
                              : light_map_task(256 * MiB);
    jobs.push_back(
        cluster.submit(single_task_job("job" + std::to_string(i), i % 3, spec)));
  }

  // Every 4 s, poke a random live task with a random command.
  JobTracker& jt = cluster.job_tracker();
  auto storm = [&cluster, &jt, rng, jobs](auto self) -> void {
    if (cluster.sim().now() > 120.0) return;  // stop the storm, let it drain
    std::vector<TaskId> live, suspended;
    for (JobId jid : jobs) {
      for (TaskId tid : jt.job(jid).tasks) {
        const Task& t = jt.task(tid);
        if (t.state == TaskState::Running) live.push_back(tid);
        if (t.state == TaskState::Suspended) suspended.push_back(tid);
      }
    }
    switch (rng->uniform_int(0, 3)) {
      case 0:
        if (!live.empty()) jt.suspend_task(live[rng->next_u64() % live.size()]);
        break;
      case 1:
        if (!suspended.empty()) jt.resume_task(suspended[rng->next_u64() % suspended.size()]);
        break;
      case 2:
        if (!live.empty() && rng->uniform() < 0.4) {
          jt.kill_task(live[rng->next_u64() % live.size()]);
        }
        break;
      case 3:
        break;  // let it breathe
    }
    cluster.sim().after(4.0, [self] { self(self); });
  };
  cluster.sim().at(5.0, [storm] { storm(storm); });

  // After the storm, release anything still parked so the system drains.
  auto cleanup = [&cluster, &jt, jobs](auto self) -> void {
    bool any = false;
    for (JobId jid : jobs) {
      for (TaskId tid : jt.job(jid).tasks) {
        if (jt.task(tid).state == TaskState::Suspended) {
          jt.resume_task(tid);
          any = true;
        }
      }
    }
    if (any || !jt.all_jobs_done()) cluster.sim().after(10.0, [self] { self(self); });
  };
  cluster.sim().at(125.0, [cleanup] { cleanup(cleanup); });

  cluster.run_until(3000.0);

  for (JobId jid : jobs) {
    const Job& job = jt.job(jid);
    EXPECT_EQ(job.state, JobState::Succeeded) << "job " << jid << " wedged";
    for (TaskId tid : job.tasks) {
      const Task& t = jt.task(tid);
      EXPECT_EQ(t.state, TaskState::Succeeded);
      EXPECT_GE(t.attempts_started, 1);
    }
  }
  // All task memory was returned to the OS on both nodes.
  for (int n = 0; n < 2; ++n) {
    Kernel& kernel = cluster.kernel(cluster.node(n));
    EXPECT_EQ(kernel.process_count(), 0u);
    EXPECT_EQ(kernel.vmm().free_ram() + kernel.vmm().fs_cache(),
              cfg.os.usable_ram());
    EXPECT_EQ(kernel.vmm().swap_used(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterFuzz, ::testing::Values(1, 7, 13, 42, 99, 1234));

}  // namespace
}  // namespace osap
