// End-to-end tests of the Hadoop layer: heartbeat protocol, the paper's
// suspend/resume state machine, kill-with-cleanup, and checkpointing.
#include "hadoop/cluster.hpp"

#include <gtest/gtest.h>

#include "metrics/timeline.hpp"
#include "sched/dummy.hpp"
#include "workload/profiles.hpp"

namespace osap {
namespace {

struct Rig {
  explicit Rig(ClusterConfig cfg = paper_cluster())
      : cluster(cfg), recorder(cluster.job_tracker()) {
    auto sched = std::make_unique<DummyScheduler>(cluster);
    ds = sched.get();
    cluster.set_scheduler(std::move(sched));
  }
  Cluster cluster;
  TimelineRecorder recorder;
  DummyScheduler* ds = nullptr;
};

TEST(ClusterIntegration, SingleJobCompletes) {
  Rig rig;
  TaskSpec spec = light_map_task();
  spec.preferred_node = rig.cluster.node(0);
  rig.ds->submit_at(0.05, single_task_job("solo", 0, spec));
  rig.cluster.run();
  const Job& job = rig.cluster.job_tracker().job(rig.ds->job_of("solo"));
  EXPECT_EQ(job.state, JobState::Succeeded);
  // ~1 s JVM + ~76 s parse + up-to-3 s heartbeat wait.
  EXPECT_GT(job.sojourn(), 75.0);
  EXPECT_LT(job.sojourn(), 85.0);
}

TEST(ClusterIntegration, TwoJobsShareOneSlotSequentially) {
  Rig rig;
  TaskSpec spec = light_map_task();
  spec.preferred_node = rig.cluster.node(0);
  rig.ds->submit_at(0.05, single_task_job("a", 0, spec));
  rig.ds->submit_at(0.10, single_task_job("b", 0, spec));
  rig.cluster.run();
  const Job& a = rig.cluster.job_tracker().job(rig.ds->job_of("a"));
  const Job& b = rig.cluster.job_tracker().job(rig.ds->job_of("b"));
  EXPECT_EQ(a.state, JobState::Succeeded);
  EXPECT_EQ(b.state, JobState::Succeeded);
  // b could only start after a finished (single map slot).
  const SimTime b_started = *rig.recorder.first(ClusterEventType::TaskLaunched,
                                                rig.cluster.job_tracker().job(b.id).tasks[0]);
  EXPECT_GE(b_started, a.completed_at - 0.1);
}

TEST(ClusterIntegration, SuspendFollowsPaperStateMachine) {
  Rig rig;
  TaskSpec spec = light_map_task();
  spec.preferred_node = rig.cluster.node(0);
  rig.ds->submit_at(0.05, single_task_job("tl", 0, spec));
  SimTime requested = -1;
  rig.ds->at_progress("tl", 0, 0.3, [&] {
    requested = rig.cluster.sim().now();
    EXPECT_TRUE(rig.ds->preempt("tl", 0, PreemptPrimitive::Suspend));
    // The JobTracker marks the task immediately…
    EXPECT_EQ(rig.cluster.job_tracker().task(rig.ds->task_of("tl", 0)).state,
              TaskState::MustSuspend);
  });
  rig.cluster.run_until(60.0);
  const Task& task = rig.cluster.job_tracker().task(rig.ds->task_of("tl", 0));
  // …and the SUSPENDED ack arrives via the heartbeat protocol.
  EXPECT_EQ(task.state, TaskState::Suspended);
  const SimTime suspended = *rig.recorder.first(ClusterEventType::TaskSuspended, task.id);
  EXPECT_GT(suspended, requested);
  EXPECT_LT(suspended - requested, 3.5);  // within one heartbeat + handler
  // The slot is free while the task is parked.
  EXPECT_EQ(rig.cluster.tracker(rig.cluster.node(0)).free_map_slots(), 1);
  EXPECT_EQ(rig.cluster.tracker(rig.cluster.node(0)).suspended_tasks(), 1);
}

TEST(ClusterIntegration, SuspendResumeCompletesWithFrozenProgress) {
  Rig rig;
  TaskSpec spec = light_map_task();
  spec.preferred_node = rig.cluster.node(0);
  rig.ds->submit_at(0.05, single_task_job("tl", 0, spec));
  rig.ds->at_progress("tl", 0, 0.5,
                      [&] { rig.ds->preempt("tl", 0, PreemptPrimitive::Suspend); });
  rig.cluster.sim().at(60.0, [&] { rig.ds->restore("tl", 0, PreemptPrimitive::Suspend); });
  rig.cluster.run();
  const Job& job = rig.cluster.job_tracker().job(rig.ds->job_of("tl"));
  EXPECT_EQ(job.state, JobState::Succeeded);
  // Suspended from ~40 s to ~60 s: completion shifts by the parked time,
  // no work is lost.
  EXPECT_GT(job.sojourn(), 95.0);
  EXPECT_LT(job.sojourn(), 110.0);
}

TEST(ClusterIntegration, KillLosesWorkAndReschedules) {
  Rig rig;
  TaskSpec spec = light_map_task();
  spec.preferred_node = rig.cluster.node(0);
  rig.ds->submit_at(0.05, single_task_job("tl", 0, spec));
  rig.ds->at_progress("tl", 0, 0.5, [&] { rig.ds->preempt("tl", 0, PreemptPrimitive::Kill); });
  rig.cluster.run();
  const Job& job = rig.cluster.job_tracker().job(rig.ds->job_of("tl"));
  EXPECT_EQ(job.state, JobState::Succeeded);
  const Task& task = rig.cluster.job_tracker().task(job.tasks[0]);
  EXPECT_EQ(task.attempts_started, 2);
  // Half the work was redone: ~40 s lost plus cleanup.
  EXPECT_GT(job.sojourn(), 115.0);
  EXPECT_TRUE(rig.recorder.first(ClusterEventType::TaskKilled, task.id).has_value());
}

TEST(ClusterIntegration, CheckpointSuspendSerializesAndFastForwards) {
  Rig rig;
  TaskSpec spec = light_map_task();
  spec.preferred_node = rig.cluster.node(0);
  rig.ds->submit_at(0.05, single_task_job("tl", 0, spec));
  rig.ds->at_progress("tl", 0, 0.5, [&] {
    rig.ds->preempt("tl", 0, PreemptPrimitive::NatjamCheckpoint);
  });
  rig.cluster.sim().at(60.0, [&] {
    rig.ds->restore("tl", 0, PreemptPrimitive::NatjamCheckpoint);
  });
  rig.cluster.run();
  const Job& job = rig.cluster.job_tracker().job(rig.ds->job_of("tl"));
  EXPECT_EQ(job.state, JobState::Succeeded);
  const Task& task = rig.cluster.job_tracker().task(job.tasks[0]);
  // Relaunched once, resumed from the saved counters (not from scratch):
  // parked ~40..60 s, remaining half takes ~40 s -> sojourn ~100-112 s.
  EXPECT_EQ(task.attempts_started, 2);
  EXPECT_GT(job.sojourn(), 95.0);
  EXPECT_LT(job.sojourn(), 115.0);
}

TEST(ClusterIntegration, SuspendedTaskCanStillBeKilled) {
  Rig rig;
  TaskSpec spec = light_map_task();
  spec.preferred_node = rig.cluster.node(0);
  rig.ds->submit_at(0.05, single_task_job("tl", 0, spec));
  rig.ds->at_progress("tl", 0, 0.3,
                      [&] { rig.ds->preempt("tl", 0, PreemptPrimitive::Suspend); });
  rig.cluster.sim().at(50.0, [&] {
    EXPECT_TRUE(rig.cluster.job_tracker().kill_task(rig.ds->task_of("tl", 0)));
  });
  rig.cluster.run();
  const Job& job = rig.cluster.job_tracker().job(rig.ds->job_of("tl"));
  EXPECT_EQ(job.state, JobState::Succeeded);
  EXPECT_EQ(rig.cluster.job_tracker().task(job.tasks[0]).attempts_started, 2);
}

TEST(ClusterIntegration, SuspendRejectedWhenNotRunning) {
  Rig rig;
  TaskSpec spec = light_map_task();
  spec.preferred_node = rig.cluster.node(0);
  rig.ds->submit_at(0.05, single_task_job("tl", 0, spec));
  rig.cluster.run_until(1.0);  // before the first launch heartbeat
  EXPECT_FALSE(rig.cluster.job_tracker().suspend_task(rig.ds->task_of("tl", 0)));
  EXPECT_FALSE(rig.cluster.job_tracker().resume_task(rig.ds->task_of("tl", 0)));
}

TEST(ClusterIntegration, ProgressReportsReachJobTracker) {
  Rig rig;
  TaskSpec spec = light_map_task();
  spec.preferred_node = rig.cluster.node(0);
  rig.ds->submit_at(0.05, single_task_job("tl", 0, spec));
  rig.cluster.run_until(45.0);
  const Task& task = rig.cluster.job_tracker().task(rig.ds->task_of("tl", 0));
  EXPECT_GT(task.progress, 0.3);
  EXPECT_LT(task.progress, 0.8);
}

TEST(ClusterIntegration, MultiNodeSpreadsTasks) {
  ClusterConfig cfg = paper_cluster();
  cfg.num_nodes = 4;
  cfg.hadoop.map_slots = 1;
  Rig rig(cfg);
  JobSpec job;
  job.name = "wide";
  for (int i = 0; i < 4; ++i) job.tasks.push_back(light_map_task());
  rig.ds->submit_at(0.05, job);
  rig.cluster.run();
  const Job& done = rig.cluster.job_tracker().job(rig.ds->job_of("wide"));
  EXPECT_EQ(done.state, JobState::Succeeded);
  // With 4 nodes the job is ~4x faster than serial execution.
  EXPECT_LT(done.sojourn(), 100.0);
}

TEST(ClusterIntegration, LocalityPinsTaskToPreferredNode) {
  ClusterConfig cfg = paper_cluster();
  cfg.num_nodes = 2;
  Rig rig(cfg);
  TaskSpec spec = light_map_task();
  spec.preferred_node = rig.cluster.node(1);
  rig.ds->submit_at(0.05, single_task_job("pinned", 0, spec));
  rig.cluster.run();
  const Task& task =
      rig.cluster.job_tracker().task(rig.ds->task_of("pinned", 0));
  const auto launch = rig.recorder.first(ClusterEventType::TaskLaunched, task.id);
  ASSERT_TRUE(launch.has_value());
  for (const ClusterEvent& e : rig.recorder.events()) {
    if (e.type == ClusterEventType::TaskLaunched && e.task == task.id) {
      EXPECT_EQ(e.node, rig.cluster.node(1));
    }
  }
}

TEST(ClusterIntegration, WorstCaseSuspensionSwapsAndRecovers) {
  Rig rig;
  TaskSpec tl = hungry_map_task(2 * GiB);
  TaskSpec th = hungry_map_task(2 * GiB);
  tl.preferred_node = th.preferred_node = rig.cluster.node(0);
  rig.ds->submit_at(0.05, single_task_job("tl", 0, tl));
  rig.ds->at_progress("tl", 0, 0.5, [&] {
    rig.cluster.submit(single_task_job("th", 10, th));
    rig.ds->preempt("tl", 0, PreemptPrimitive::Suspend);
  });
  rig.ds->on_complete("th", [&] { rig.ds->restore("tl", 0, PreemptPrimitive::Suspend); });
  rig.cluster.run();
  const JobTracker& jt = rig.cluster.job_tracker();
  EXPECT_EQ(jt.job(rig.ds->job_of("tl")).state, JobState::Succeeded);
  EXPECT_EQ(jt.job(rig.ds->job_of("th")).state, JobState::Succeeded);
  const Task& tl_task = jt.task(rig.ds->task_of("tl", 0));
  // tl was pushed to swap while parked and paged back in afterwards.
  EXPECT_GT(tl_task.swapped_out, 500 * MiB);
  EXPECT_GT(tl_task.swapped_in, 400 * MiB);
}

TEST(ClusterIntegration, EventsAppearInProtocolOrder) {
  Rig rig;
  TaskSpec spec = light_map_task();
  spec.preferred_node = rig.cluster.node(0);
  rig.ds->submit_at(0.05, single_task_job("tl", 0, spec));
  rig.ds->at_progress("tl", 0, 0.4,
                      [&] { rig.ds->preempt("tl", 0, PreemptPrimitive::Suspend); });
  rig.cluster.sim().at(60.0, [&] { rig.ds->restore("tl", 0, PreemptPrimitive::Suspend); });
  rig.cluster.run();
  const TaskId tid = rig.ds->task_of("tl", 0);
  const SimTime launched = *rig.recorder.first(ClusterEventType::TaskLaunched, tid);
  const SimTime susp_req = *rig.recorder.first(ClusterEventType::TaskSuspendRequested, tid);
  const SimTime suspended = *rig.recorder.first(ClusterEventType::TaskSuspended, tid);
  const SimTime resume_req = *rig.recorder.first(ClusterEventType::TaskResumeRequested, tid);
  const SimTime resumed = *rig.recorder.first(ClusterEventType::TaskResumed, tid);
  const SimTime succeeded = *rig.recorder.first(ClusterEventType::TaskSucceeded, tid);
  EXPECT_LT(launched, susp_req);
  EXPECT_LT(susp_req, suspended);
  EXPECT_LT(suspended, resume_req);
  EXPECT_LT(resume_req, resumed);
  EXPECT_LT(resumed, succeeded);
}

}  // namespace
}  // namespace osap
