#include "hdfs/namenode.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"

namespace osap {
namespace {

HdfsConfig cfg(Bytes block = 512 * MiB, int repl = 1) {
  HdfsConfig c;
  c.block_size = block;
  c.replication = repl;
  return c;
}

TEST(NameNode, SingleBlockFile) {
  NameNode nn(cfg());
  nn.add_datanode(NodeId{0});
  const FileId f = nn.create_file("input", 512 * MiB);
  const FileInfo& info = nn.file(f);
  EXPECT_EQ(info.size, 512 * MiB);
  ASSERT_EQ(info.blocks.size(), 1u);
  EXPECT_EQ(nn.block(info.blocks[0]).size, 512 * MiB);
}

TEST(NameNode, LargeFileSplitsAtBlockSize) {
  NameNode nn(cfg(512 * MiB));
  nn.add_datanode(NodeId{0});
  const FileId f = nn.create_file("big", gib(1.25));
  const FileInfo& info = nn.file(f);
  ASSERT_EQ(info.blocks.size(), 3u);
  EXPECT_EQ(nn.block(info.blocks[0]).size, 512 * MiB);
  EXPECT_EQ(nn.block(info.blocks[1]).size, 512 * MiB);
  EXPECT_EQ(nn.block(info.blocks[2]).size, 256 * MiB);
}

TEST(NameNode, ZeroByteFileStillHasOneBlock) {
  NameNode nn(cfg());
  nn.add_datanode(NodeId{0});
  const FileId f = nn.create_file("empty", 0);
  EXPECT_EQ(nn.file(f).blocks.size(), 1u);
}

TEST(NameNode, WriterLocalPlacement) {
  NameNode nn(cfg());
  for (int i = 0; i < 4; ++i) nn.add_datanode(NodeId{static_cast<std::uint64_t>(i)});
  const FileId f = nn.create_file("local", 512 * MiB, NodeId{2});
  const BlockInfo& block = nn.block(nn.file(f).blocks[0]);
  ASSERT_FALSE(block.replicas.empty());
  EXPECT_EQ(block.replicas[0], NodeId{2});
}

TEST(NameNode, ReplicationPlacesDistinctNodes) {
  NameNode nn(cfg(512 * MiB, 3));
  for (int i = 0; i < 5; ++i) nn.add_datanode(NodeId{static_cast<std::uint64_t>(i)});
  const FileId f = nn.create_file("r3", 512 * MiB);
  const BlockInfo& block = nn.block(nn.file(f).blocks[0]);
  std::set<NodeId> distinct(block.replicas.begin(), block.replicas.end());
  EXPECT_EQ(distinct.size(), 3u);
}

TEST(NameNode, ReplicationCappedByClusterSize) {
  NameNode nn(cfg(512 * MiB, 3));
  nn.add_datanode(NodeId{0});
  const FileId f = nn.create_file("small-cluster", 512 * MiB);
  EXPECT_EQ(nn.block(nn.file(f).blocks[0]).replicas.size(), 1u);
}

TEST(NameNode, PickReplicaPrefersLocal) {
  NameNode nn(cfg(512 * MiB, 2));
  for (int i = 0; i < 3; ++i) nn.add_datanode(NodeId{static_cast<std::uint64_t>(i)});
  const FileId f = nn.create_file("x", 512 * MiB, NodeId{1});
  const BlockId b = nn.file(f).blocks[0];
  EXPECT_EQ(nn.pick_replica(b, NodeId{1}), NodeId{1});
}

TEST(NameNode, PickReplicaRemoteReturnsAReplica) {
  NameNode nn(cfg(512 * MiB, 1));
  nn.add_datanode(NodeId{0});
  nn.add_datanode(NodeId{1});
  const FileId f = nn.create_file("y", 512 * MiB, NodeId{0});
  const BlockId b = nn.file(f).blocks[0];
  const NodeId picked = nn.pick_replica(b, NodeId{1});
  EXPECT_TRUE(nn.block(b).is_local_to(picked));
}

TEST(NameNode, RemoveFileDropsBlocks) {
  NameNode nn(cfg());
  nn.add_datanode(NodeId{0});
  const FileId f = nn.create_file("gone", 512 * MiB);
  const BlockId b = nn.file(f).blocks[0];
  nn.remove_file(f);
  EXPECT_FALSE(nn.exists(f));
  EXPECT_THROW(static_cast<void>(nn.block(b)), SimError);
}

TEST(NameNode, CreateWithoutDatanodesThrows) {
  NameNode nn(cfg());
  EXPECT_THROW(nn.create_file("nope", 1 * MiB), SimError);
}

TEST(NameNode, ReReplicateAwayMovesEveryDoomedReplica) {
  // Revocation-aware steering (docs/REVOKE.md): every replica on the
  // doomed node relocates to the first target not already holding the
  // block; untouched replicas stay put.
  NameNode nn(cfg(512 * MiB, 2));
  for (int i = 0; i < 4; ++i) nn.add_datanode(NodeId{static_cast<std::uint64_t>(i)});
  const FileId f = nn.create_file("steered", gib(1.0), NodeId{3});  // both blocks local to 3
  const std::size_t moved = nn.re_replicate_away(NodeId{3}, {NodeId{0}, NodeId{1}});
  EXPECT_EQ(moved, 2u);
  for (BlockId b : nn.file(f).blocks) {
    const BlockInfo& block = nn.block(b);
    std::set<NodeId> replicas(block.replicas.begin(), block.replicas.end());
    EXPECT_FALSE(replicas.contains(NodeId{3})) << "replica left on the doomed node";
    EXPECT_EQ(replicas.size(), block.replicas.size()) << "steering duplicated a replica";
  }
}

TEST(NameNode, ReReplicateAwaySkipsTargetsAlreadyHoldingTheBlock) {
  // Replication 2 on a 2-node cluster: the only non-doomed node already
  // holds the second replica, so there is nowhere legal to move — the
  // block must not end up with two replicas on one node.
  NameNode nn(cfg(512 * MiB, 2));
  nn.add_datanode(NodeId{0});
  nn.add_datanode(NodeId{1});
  const FileId f = nn.create_file("stuck", 512 * MiB, NodeId{1});
  EXPECT_EQ(nn.re_replicate_away(NodeId{1}, {NodeId{0}}), 0u);
  const BlockInfo& block = nn.block(nn.file(f).blocks[0]);
  std::set<NodeId> replicas(block.replicas.begin(), block.replicas.end());
  EXPECT_EQ(replicas.size(), 2u);
}

TEST(NameNode, ReReplicateAwayWithNoDoomedReplicasIsANoOp) {
  NameNode nn(cfg());
  for (int i = 0; i < 3; ++i) nn.add_datanode(NodeId{static_cast<std::uint64_t>(i)});
  (void)nn.create_file("elsewhere", 512 * MiB, NodeId{0});
  EXPECT_EQ(nn.re_replicate_away(NodeId{2}, {NodeId{1}}), 0u);
}

TEST(NameNode, RoundRobinSpreadsBlocks) {
  NameNode nn(cfg(512 * MiB, 1));
  for (int i = 0; i < 4; ++i) nn.add_datanode(NodeId{static_cast<std::uint64_t>(i)});
  const FileId f = nn.create_file("spread", 2 * GiB);
  std::set<NodeId> used;
  for (BlockId b : nn.file(f).blocks) used.insert(nn.block(b).replicas[0]);
  EXPECT_EQ(used.size(), 4u);
}

}  // namespace
}  // namespace osap
