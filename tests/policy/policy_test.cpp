// The per-queue preemption-policy engine: decision parsing round-trips,
// rule lookup keyed on the victim's queue, memory-pressure demotion,
// Requeue's pin-clearing kill, and the refused-order outcome.
#include "policy/policy.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "policy/decision.hpp"
#include "sched/fifo.hpp"
#include "trace/names.hpp"
#include "workload/profiles.hpp"

namespace osap::policy {
namespace {

TEST(Decision, RoundTripsEveryEnumerator) {
  for (const Decision d : kAllDecisions) {
    EXPECT_STRNE(to_string(d), "?");
    EXPECT_EQ(parse_decision(to_string(d)), d);
  }
  // Long-form aliases map onto the same enumerators.
  EXPECT_EQ(parse_decision("suspend"), Decision::Suspend);
  EXPECT_EQ(parse_decision("checkpoint"), Decision::NatjamCheckpoint);
}

TEST(Decision, ParseErrorNamesValueAndEverySpelling) {
  try {
    parse_decision("frobnicate");
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("frobnicate"), std::string::npos) << msg;
    EXPECT_NE(msg.find(kDecisionSpellings), std::string::npos) << msg;
  }
}

TEST(Decision, LiftsEveryPrimitive) {
  for (const PreemptPrimitive p : kAllPrimitives) {
    EXPECT_EQ(decision_from_primitive(p), parse_decision(to_string(p)));
  }
}

/// Two single-task jobs on different queues, both running by t=20 (two
/// nodes, one map slot each).
struct TwoQueueRig {
  explicit TwoQueueRig(ClusterConfig cfg = paper_cluster()) {
    cfg.num_nodes = 2;
    cluster = std::make_unique<Cluster>(cfg);
    cluster->set_scheduler(std::make_unique<FifoScheduler>());
    JobSpec a = single_task_job("prod0", 0, light_map_task());
    a.queue = "prod";
    prod = cluster->submit(a);
    JobSpec b = single_task_job("batch0", 0, light_map_task());
    b.queue = "batch";
    batch = cluster->submit(b);
    cluster->run_until(20.0);
  }
  [[nodiscard]] TaskId task_of(JobId job) const {
    return cluster->job_tracker().job(job).tasks.front();
  }
  std::unique_ptr<Cluster> cluster;
  JobId prod, batch;
};

TEST(PreemptionPolicy, RulesKeyOnTheVictimsQueue) {
  TwoQueueRig rig;
  PolicyOptions opts;
  opts.default_decision = Decision::Suspend;
  opts.per_queue = {{"batch", Decision::Kill}};
  PreemptionPolicy policy(rig.cluster->job_tracker(), opts);
  EXPECT_EQ(policy.decide(rig.task_of(rig.prod)), Decision::Suspend);
  EXPECT_EQ(policy.decide(rig.task_of(rig.batch)), Decision::Kill);
}

TEST(PreemptionPolicy, SwapPressureDemotesSuspendFamilyToKill) {
  TwoQueueRig rig;
  PolicyOptions opts;
  opts.default_decision = Decision::Suspend;
  opts.per_queue = {{"batch", Decision::NatjamCheckpoint}};
  opts.swap_watermark = 0.9;
  opts.probe = [](NodeId) { return 0.95; };
  PreemptionPolicy hot(rig.cluster->job_tracker(), opts);
  EXPECT_EQ(hot.decide(rig.task_of(rig.prod)), Decision::Kill);
  EXPECT_EQ(hot.decide(rig.task_of(rig.batch)), Decision::Kill);

  opts.probe = [](NodeId) { return 0.2; };
  PreemptionPolicy cool(rig.cluster->job_tracker(), opts);
  EXPECT_EQ(cool.decide(rig.task_of(rig.prod)), Decision::Suspend);
  EXPECT_EQ(cool.decide(rig.task_of(rig.batch)), Decision::NatjamCheckpoint);

  const auto& reg = rig.cluster->sim().trace().counters();
  EXPECT_EQ(reg.value(trace::names::kPolicySwapDemotions), 0u)
      << "decide() is read-only; only preempt() counts demotions";
}

TEST(PreemptionPolicy, KillRuleIsNotDemotionProof) {
  // An explicit Kill rule under pressure is still just Kill — the
  // demotion counter must not fire for it.
  TwoQueueRig rig;
  PolicyOptions opts;
  opts.default_decision = Decision::Kill;
  opts.swap_watermark = 0.9;
  opts.probe = [](NodeId) { return 0.95; };
  PreemptionPolicy policy(rig.cluster->job_tracker(), opts);
  Preemptor preemptor(rig.cluster->job_tracker());
  const Outcome out = policy.preempt(preemptor, rig.task_of(rig.batch));
  EXPECT_TRUE(out.issued);
  EXPECT_EQ(out.decision, Decision::Kill);
  const auto& reg = rig.cluster->sim().trace().counters();
  EXPECT_EQ(reg.value(trace::names::kPolicySwapDemotions), 0u);
  EXPECT_EQ(reg.value(trace::names::kPolicyKills), 1u);
}

TEST(PreemptionPolicy, RequeueClearsTheLocalityPinAndKills) {
  ClusterConfig cfg = paper_cluster();
  cfg.num_nodes = 2;
  Cluster cluster(cfg);
  cluster.set_scheduler(std::make_unique<FifoScheduler>());
  TaskSpec pinned = light_map_task(128 * MiB);
  JobId job{};
  cluster.sim().at(0.05, [&] {
    JobSpec spec = single_task_job("pinned", 0, pinned);
    spec.tasks[0].preferred_node = cluster.node(0);
    job = cluster.submit(spec);
  });

  JobTracker& jt = cluster.job_tracker();
  PolicyOptions opts;
  opts.default_decision = Decision::Requeue;
  auto policy = std::make_unique<PreemptionPolicy>(jt, opts);
  auto preemptor = std::make_unique<Preemptor>(jt);
  cluster.sim().at(10.0, [&] {
    const TaskId tid = jt.job(job).tasks.front();
    ASSERT_EQ(jt.task(tid).state, TaskState::Running);
    const Outcome out = policy->preempt(*preemptor, tid);
    EXPECT_TRUE(out.issued);
    EXPECT_EQ(out.decision, Decision::Requeue);
    EXPECT_FALSE(jt.task(tid).spec.preferred_node.valid());
  });
  cluster.run();

  const Task& t = jt.task(jt.job(job).tasks.front());
  EXPECT_EQ(jt.job(job).state, JobState::Succeeded);
  EXPECT_EQ(t.attempts_started, 2);  // killed once, relaunched anywhere
  const auto& reg = cluster.sim().trace().counters();
  EXPECT_EQ(reg.value(trace::names::kPolicyRequeues), 1u);
}

TEST(PreemptionPolicy, RefusedOrderIsNotIssued) {
  TwoQueueRig rig;
  JobTracker& jt = rig.cluster->job_tracker();
  const TaskId victim = rig.task_of(rig.batch);
  jt.testing_blacklist_tracker(jt.task(victim).tracker);

  PolicyOptions opts;
  opts.default_decision = Decision::Suspend;
  PreemptionPolicy policy(jt, opts);
  Preemptor preemptor(jt);
  const Outcome out = policy.preempt(preemptor, victim);
  EXPECT_FALSE(out.issued);
  const auto& reg = rig.cluster->sim().trace().counters();
  EXPECT_EQ(reg.value(trace::names::kPolicyOrdersRefused), 1u);
}

}  // namespace
}  // namespace osap::policy
