// SLURM-style gang rotation: time-sliced suspend/resume over an
// oversubscribed fifo cluster, swap-aware admission refusal, and the
// double-run digest witness for rotation determinism.
#include "policy/gang.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "sched/fifo.hpp"
#include "trace/names.hpp"
#include "workload/profiles.hpp"

namespace osap::policy {
namespace {

/// One node with two map slots, two 2-task jobs (4 tasks on 2 slots, so
/// the rotator sees contention from the first tick). fifo never preempts
/// on its own — every suspend/resume in the trace is the rotator's.
struct GangRig {
  explicit GangRig(GangOptions options, Bytes input = 64 * MiB) {
    ClusterConfig cfg = paper_cluster();
    cfg.hadoop.map_slots = 2;
    cluster = std::make_unique<Cluster>(cfg);
    cluster->set_scheduler(std::make_unique<FifoScheduler>());
    for (int i = 0; i < 2; ++i) {
      // Named local sidesteps GCC 12's -Wrestrict false positive on
      // literal + to_string temporaries (PR105329).
      const std::string name = "gang" + std::to_string(i);
      JobSpec spec = single_task_job(name, 0, light_map_task(input));
      spec.tasks.push_back(light_map_task(input));
      cluster->submit(spec);
    }
    gang = std::make_unique<GangRotator>(cluster->job_tracker(), options);
    gang->start();
  }
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<GangRotator> gang;
};

TEST(Gang, RotatesOversubscribedJobsToCompletion) {
  GangOptions options;
  options.slice = seconds(3);
  GangRig rig(options);
  rig.cluster->run_until(600.0);
  EXPECT_TRUE(rig.cluster->job_tracker().all_jobs_done());
  // Both directions of the rotation actually happened: each job was
  // parked at least once and came back.
  EXPECT_GE(rig.gang->rotations(), 2);
  const auto& reg = rig.cluster->sim().trace().counters();
  EXPECT_GE(reg.value(trace::names::kPolicyGangSuspends), 2u);
  EXPECT_GE(reg.value(trace::names::kPolicyGangResumes), 2u);
  EXPECT_EQ(reg.value(trace::names::kPolicyGangRotations),
            static_cast<uint64_t>(rig.gang->rotations()));
}

TEST(Gang, SwapWatermarkRefusesAdmission) {
  GangOptions options;
  options.slice = seconds(3);
  options.swap_watermark = 0.9;
  options.probe = [](NodeId) { return 0.95; };  // every node reads hot
  GangRig rig(options);
  rig.cluster->run_until(600.0);
  EXPECT_TRUE(rig.cluster->job_tracker().all_jobs_done());
  // Parking was attempted (the cluster is contended) but every admission
  // was refused, so no task was ever gang-suspended.
  EXPECT_GT(rig.gang->admissions_refused(), 0);
  const auto& reg = rig.cluster->sim().trace().counters();
  EXPECT_EQ(reg.value(trace::names::kPolicyGangSuspends), 0u);
  EXPECT_EQ(reg.value(trace::names::kPolicyGangAdmissionRefused),
            static_cast<uint64_t>(rig.gang->admissions_refused()));
}

uint64_t run_gang_digest(uint64_t seed) {
  GangOptions options;
  options.slice = seconds(3);
  ClusterConfig cfg = paper_cluster();
  cfg.hadoop.map_slots = 2;
  Cluster cluster(cfg);
  cluster.set_scheduler(std::make_unique<FifoScheduler>());
  Rng rng(seed);
  for (int i = 0; i < 3; ++i) {
    const std::string name = "g" + std::to_string(i);
    JobSpec spec = single_task_job(name, 0, jitter_task(light_map_task(64 * MiB), rng));
    spec.tasks.push_back(jitter_task(light_map_task(64 * MiB), rng));
    cluster.submit(spec);
  }
  GangRotator gang(cluster.job_tracker(), options);
  gang.start();
  cluster.run_until(600.0);
  EXPECT_TRUE(cluster.job_tracker().all_jobs_done());
  EXPECT_GE(gang.rotations(), 2);
  return cluster.trace_digest();
}

TEST(Gang, RotationIsDigestDeterministic) {
  EXPECT_EQ(run_gang_digest(7), run_gang_digest(7));
  EXPECT_EQ(run_gang_digest(11), run_gang_digest(11));
}

}  // namespace
}  // namespace osap::policy
