// Failure model & recovery (docs/FAULTS.md).
//
// These tests drive the fault-injection subsystem end to end: scripted
// node crashes, tracker hangs and heartbeat-drop storms against real
// workloads, with the JobTracker's heartbeat-lease expiry, bounded task
// re-execution and blacklisting doing the recovery. The headline case —
// a node crash while its task sits SIGTSTP-suspended — verifies the full
// chain: lease expiry, TaskLost requeue, re-execution on a surviving
// node, and the failure counters landing in the observability JSON.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "fault/injector.hpp"
#include "sched/dummy.hpp"
#include "workload/profiles.hpp"

namespace osap {
namespace {

using fault::FaultInjector;
using fault::FaultPlan;
using fault::parse_fault_plan;

/// Count emitted cluster events by type (the tests' view of recovery).
struct EventCounts {
  explicit EventCounts(JobTracker& jt) {
    jt.add_event_hook([this](const ClusterEvent& e) { ++counts[static_cast<int>(e.type)]; });
  }
  [[nodiscard]] int of(ClusterEventType type) const {
    const auto it = counts.find(static_cast<int>(type));
    return it == counts.end() ? 0 : it->second;
  }
  std::map<int, int> counts;
};

ClusterConfig fast_expiry_cluster(int nodes) {
  ClusterConfig cfg = paper_cluster();
  cfg.num_nodes = nodes;
  cfg.hadoop.tracker_expiry = seconds(9);
  cfg.hadoop.expiry_check_interval = seconds(1);
  return cfg;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// --- FaultPlan parser -------------------------------------------------------

TEST(FaultPlan, ParsesEveryVerbAndComments) {
  const FaultPlan plan = parse_fault_plan(
      "# fault schedule\n"
      "crash 40 0\n"
      "\n"
      "hang 10 1 15   # daemon wedges for 15 s\n"
      "drop-heartbeats 5 20 0\n"
      "delay-messages 0 60 1 0.25\n"
      "lose-checkpoints 30 2\n"
      "revoke 50 1 12   # 12 s of notice before node 1 dies\n");
  EXPECT_EQ(plan.size(), 6u);
  ASSERT_EQ(plan.crashes.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.crashes[0].at, 40.0);
  EXPECT_EQ(plan.crashes[0].node, NodeId{0});
  ASSERT_EQ(plan.hangs.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.hangs[0].duration, 15.0);
  ASSERT_EQ(plan.heartbeat_drops.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.heartbeat_drops[0].until, 20.0);
  ASSERT_EQ(plan.delays.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.delays[0].extra, 0.25);
  ASSERT_EQ(plan.checkpoint_losses.size(), 1u);
  EXPECT_EQ(plan.checkpoint_losses[0].node, NodeId{2});
  ASSERT_EQ(plan.revocations.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.revocations[0].at, 50.0);
  EXPECT_EQ(plan.revocations[0].node, NodeId{1});
  EXPECT_DOUBLE_EQ(plan.revocations[0].warning, 12.0);
}

TEST(FaultPlan, EmptyInputIsEmptyPlan) {
  EXPECT_TRUE(parse_fault_plan("# nothing but comments\n\n").empty());
}

TEST(FaultPlan, RejectsMalformedLines) {
  EXPECT_THROW((void)parse_fault_plan("crash forty 0\n"), SimError);
  EXPECT_THROW((void)parse_fault_plan("hang 10 0 0\n"), SimError);       // duration > 0
  EXPECT_THROW((void)parse_fault_plan("drop-heartbeats 20 5 0\n"), SimError);  // until > from
  EXPECT_THROW((void)parse_fault_plan("explode 10 0\n"), SimError);
  EXPECT_THROW((void)parse_fault_plan("revoke 50 1\n"), SimError);     // missing warning
  EXPECT_THROW((void)parse_fault_plan("revoke 50 1 0\n"), SimError);   // warning > 0
}

TEST(FaultPlan, DuplicateDeathOnOneNodeAtOneTimestampIsAParseError) {
  // One teardown per (node, time): a plan scheduling the same death twice
  // must fail at parse with the offending line number, not double-crash
  // at run time.
  try {
    (void)parse_fault_plan(
        "crash 40 0\n"
        "revoke 40 0 10\n");
    FAIL() << "duplicate death parsed";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
  EXPECT_THROW((void)parse_fault_plan("crash 40 0\ncrash 40 0\n"), SimError);
  EXPECT_THROW((void)parse_fault_plan("revoke 40 0 5\nrevoke 40 0 9\n"), SimError);
  // Different timestamps (a revocation racing an earlier scripted crash)
  // stay legal — the injector's crashed-guard resolves them at run time.
  EXPECT_EQ(parse_fault_plan("crash 5 2\nrevoke 20 2 5\n").size(), 2u);
}

// --- tentpole: node crash during suspension --------------------------------

// A node dies while its task sits SIGTSTP-suspended. The heartbeat lease
// expires, the JobTracker forfeits the suspended attempt (TaskLost, no
// attempt-budget charge) and the task re-executes from scratch on the
// surviving node. The failure counters must land in the observability
// JSON and the tracker_lost span in the trace JSON.
TEST(FaultRecovery, NodeCrashDuringSuspendReexecutesOnSurvivor) {
  const std::string counters_path = "fault_crash_counters.json";
  const std::string trace_path = "fault_crash_trace.json";
  ClusterConfig cfg = fast_expiry_cluster(2);
  cfg.trace.enabled = true;
  cfg.trace.counters_file = counters_path;
  cfg.trace.trace_file = trace_path;
  Cluster cluster(cfg);
  EventCounts events(cluster.job_tracker());
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));

  TaskSpec victim = light_map_task();
  victim.preferred_node = cluster.node(0);
  ds.submit_at(0.05, single_task_job("victim", 0, victim));
  ds.at_progress("victim", 0, 0.3,
                 [&ds] { ds.preempt("victim", 0, PreemptPrimitive::Suspend); });

  FaultInjector injector(cluster, parse_fault_plan("crash 40 0\n"));
  cluster.run();

  const JobTracker& jt = cluster.job_tracker();
  const Task& task = jt.task(ds.task_of("victim", 0));
  EXPECT_EQ(jt.job(ds.job_of("victim")).state, JobState::Succeeded);
  EXPECT_EQ(task.state, TaskState::Succeeded);
  EXPECT_EQ(task.attempts_started, 2);  // crashed attempt + re-execution
  EXPECT_EQ(task.attempts_failed, 0);   // loss never charges the budget
  EXPECT_EQ(task.completed_node, cluster.node(1));
  EXPECT_TRUE(jt.tracker_lost(cluster.tracker(cluster.node(0)).id()));
  EXPECT_TRUE(injector.node_crashed(cluster.node(0)));
  EXPECT_EQ(events.of(ClusterEventType::TrackerLost), 1);
  EXPECT_EQ(events.of(ClusterEventType::TaskLost), 1);
  EXPECT_EQ(events.of(ClusterEventType::JobFailed), 0);

  // Acceptance: the failure counters are readable from the observability
  // JSON, and the trace JSON carries the tracker_lost / node_crash spans.
  const std::string counters = slurp(counters_path);
  EXPECT_NE(counters.find("\"jobtracker.trackers_lost\":1"), std::string::npos) << counters;
  EXPECT_NE(counters.find("\"jobtracker.tasks_lost\":1"), std::string::npos);
  EXPECT_NE(counters.find("\"fault.node_crashes\":1"), std::string::npos);
  const std::string trace = slurp(trace_path);
  EXPECT_NE(trace.find("tracker_lost"), std::string::npos);
  EXPECT_NE(trace.find("node_crash"), std::string::npos);
  std::remove(counters_path.c_str());
  std::remove(trace_path.c_str());
}

// --- satellite: heartbeat-drop storm below the lease threshold -------------

TEST(FaultRecovery, HeartbeatDropStormBelowLeaseThresholdIsHarmless) {
  // 15 s of dropped heartbeats against a 30 s lease (the defaults): the
  // tracker must never be declared lost and the job completes on time.
  ClusterConfig cfg = paper_cluster();
  Cluster cluster(cfg);
  EventCounts events(cluster.job_tracker());
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));
  ds.submit_at(0.05, single_task_job("steady", 0, light_map_task()));

  FaultInjector injector(cluster, parse_fault_plan("drop-heartbeats 5 20 0\n"));
  cluster.run();

  EXPECT_EQ(cluster.job_tracker().job(ds.job_of("steady")).state, JobState::Succeeded);
  EXPECT_FALSE(cluster.job_tracker().tracker_lost(cluster.tracker(cluster.node(0)).id()));
  EXPECT_EQ(events.of(ClusterEventType::TrackerLost), 0);
  EXPECT_EQ(events.of(ClusterEventType::TaskLost), 0);
  // The storm really dropped traffic (otherwise the test proves nothing).
  EXPECT_GT(cluster.network().messages_dropped(), 0u);
  const Task& task = cluster.job_tracker().task(ds.task_of("steady", 0));
  EXPECT_EQ(task.attempts_started, 1);
}

// --- satellite: completed-map re-execution unblocks a shuffling reduce -----

TEST(FaultRecovery, LostMapOutputReexecutesAndReleasesReduce) {
  // Map A finishes on node 0; node 0 then dies while map B still runs and
  // the reduce shuffles on node 1. Hadoop 1 serves map output from the
  // worker's local disk, so A's output died with the node: the JobTracker
  // must re-run the *Succeeded* map or the reduce blocks forever.
  ClusterConfig cfg = fast_expiry_cluster(2);
  Cluster cluster(cfg);
  EventCounts events(cluster.job_tracker());
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));

  JobSpec job;
  job.name = "mr";
  TaskSpec map_a = light_map_task(256 * MiB);  // ~40 s
  map_a.preferred_node = cluster.node(0);
  TaskSpec map_b = light_map_task(512 * MiB);  // ~77 s
  map_b.preferred_node = cluster.node(1);
  TaskSpec reduce;
  reduce.type = TaskType::Reduce;
  reduce.shuffle_bytes = 128 * MiB;
  reduce.sort_cpu_seconds = 5.0;
  reduce.input_bytes = 0;
  reduce.output_bytes = 64 * MiB;
  reduce.framework_memory = 160 * MiB;
  reduce.preferred_node = cluster.node(1);
  job.tasks.push_back(map_a);
  job.tasks.push_back(map_b);
  job.tasks.push_back(reduce);
  ds.submit_at(0.05, job);

  FaultInjector injector(cluster, parse_fault_plan("crash 45 0\n"));
  cluster.run();

  const JobTracker& jt = cluster.job_tracker();
  EXPECT_EQ(jt.job(ds.job_of("mr")).state, JobState::Succeeded);
  EXPECT_EQ(events.of(ClusterEventType::MapOutputLost), 1);
  const Task& rerun = jt.task(ds.task_of("mr", 0));
  EXPECT_EQ(rerun.attempts_started, 2);  // once on node 0, re-run on node 1
  EXPECT_EQ(rerun.completed_node, cluster.node(1));
  const Task& red = jt.task(ds.task_of("mr", 2));
  EXPECT_EQ(red.state, TaskState::Succeeded);
  // The reduce could only finish after the re-executed map released it.
  EXPECT_GT(red.completed_at, rerun.completed_at - 1.0);
}

// --- satellite: attempt cap ------------------------------------------------

TEST(FaultRecovery, AttemptCapFailsJobTerminally) {
  // No swap + a state bigger than RAM: every attempt is OOM-killed, an
  // unrequested death that charges the attempt budget. After
  // `max_task_attempts` failures the task fails terminally and takes the
  // job down with a JobFailed event — instead of relaunching forever.
  ClusterConfig cfg = paper_cluster();
  cfg.os.swap_size = 0;
  Cluster cluster(cfg);
  EventCounts events(cluster.job_tracker());
  cluster.set_scheduler(std::make_unique<FifoScheduler>());
  const JobId job = cluster.submit(single_task_job("doomed", 0, hungry_map_task(6 * GiB)));
  cluster.run();

  const JobTracker& jt = cluster.job_tracker();
  EXPECT_EQ(jt.job(job).state, JobState::Failed);
  EXPECT_GE(jt.job(job).completed_at, 0.0);
  const Task& task = jt.task(jt.job(job).tasks[0]);
  EXPECT_EQ(task.state, TaskState::Failed);
  EXPECT_EQ(task.attempts_failed, cfg.hadoop.max_task_attempts);
  EXPECT_EQ(task.attempts_started, cfg.hadoop.max_task_attempts);
  EXPECT_EQ(events.of(ClusterEventType::JobFailed), 1);
  EXPECT_EQ(events.of(ClusterEventType::TaskFailed), cfg.hadoop.max_task_attempts);
}

// --- satellite: blacklisting ------------------------------------------------

TEST(FaultRecovery, RepeatedFailuresBlacklistTracker) {
  // A lower blacklist threshold than the attempt cap: after two OOM kills
  // the only tracker is blacklisted, nothing can host the third attempt,
  // and the cluster fails the job rather than spinning forever.
  ClusterConfig cfg = paper_cluster();
  cfg.os.swap_size = 0;
  cfg.hadoop.tracker_blacklist_failures = 2;
  Cluster cluster(cfg);
  EventCounts events(cluster.job_tracker());
  cluster.set_scheduler(std::make_unique<FifoScheduler>());
  const JobId job = cluster.submit(single_task_job("doomed", 0, hungry_map_task(6 * GiB)));
  cluster.run();

  const JobTracker& jt = cluster.job_tracker();
  EXPECT_TRUE(jt.tracker_blacklisted(cluster.tracker(cluster.node(0)).id()));
  EXPECT_EQ(events.of(ClusterEventType::TrackerBlacklisted), 1);
  EXPECT_EQ(jt.job(job).state, JobState::Failed);
  const Task& task = jt.task(jt.job(job).tasks[0]);
  EXPECT_EQ(task.attempts_failed, 2);  // blacklist preempted the cap of 4
}

// --- satellite: tracker hang, lease expiry, rejoin-reinit -------------------

TEST(FaultRecovery, HangPastLeaseReinitializesOnRejoin) {
  // The daemon wedges for 15 s against a 9 s lease: the JobTracker
  // declares it lost and reassigns its task to the other node. When the
  // hang clears, the tracker's stale heartbeat earns a ReinitTracker
  // order (its zombie attempt dies silently) and the lost flag clears.
  ClusterConfig cfg = fast_expiry_cluster(2);
  Cluster cluster(cfg);
  EventCounts events(cluster.job_tracker());
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));
  TaskSpec spec = light_map_task();
  spec.preferred_node = cluster.node(0);
  ds.submit_at(0.05, single_task_job("wedged", 0, spec));

  FaultInjector injector(cluster, parse_fault_plan("hang 10 0 15\n"));
  cluster.run();

  const JobTracker& jt = cluster.job_tracker();
  EXPECT_EQ(jt.job(ds.job_of("wedged")).state, JobState::Succeeded);
  EXPECT_EQ(events.of(ClusterEventType::TrackerLost), 1);
  // The rejoin cleared the lost flag (and never blacklisted anything).
  const TrackerId hung = cluster.tracker(cluster.node(0)).id();
  EXPECT_FALSE(jt.tracker_lost(hung));
  EXPECT_FALSE(jt.tracker_blacklisted(hung));
  EXPECT_FALSE(cluster.tracker(cluster.node(0)).crashed());
  const Task& task = jt.task(ds.task_of("wedged", 0));
  EXPECT_EQ(task.attempts_started, 2);
  EXPECT_EQ(task.attempts_failed, 0);
  EXPECT_EQ(task.completed_node, cluster.node(1));
}

// --- satellite: requeue clears per-attempt state ---------------------------

TEST(FaultRecovery, KillOfRelaunchedCheckpointTaskKeepsDurableCheckpoint) {
  // Natjam checkpoint, resume (relaunch with fast-forward), then kill the
  // relaunched attempt. The requeue must clear the per-attempt flags
  // (checkpointed / use_checkpoint / paging totals / completion stamp)
  // but keep the durable checkpoint files, so the third attempt
  // fast-forwards again instead of starting from zero.
  ClusterConfig cfg = paper_cluster();
  Cluster cluster(cfg);
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));
  ds.submit_at(0.05, single_task_job("ckpt", 0, hungry_map_task(512 * MiB)));
  ds.at_progress("ckpt", 0, 0.5,
                 [&ds] { ds.preempt("ckpt", 0, PreemptPrimitive::NatjamCheckpoint); });
  JobTracker& jt = cluster.job_tracker();
  bool killed_relaunch = false;
  cluster.sim().at(60.0, [&] {
    // By now the task is checkpoint-parked; relaunch it...
    ASSERT_TRUE(jt.task(ds.task_of("ckpt", 0)).checkpointed);
    ds.restore("ckpt", 0, PreemptPrimitive::NatjamCheckpoint);
  });
  cluster.sim().at(75.0, [&] {
    // ...and kill the relaunched attempt mid-flight.
    const Task& t = jt.task(ds.task_of("ckpt", 0));
    ASSERT_EQ(t.state, TaskState::Running);
    ASSERT_GT(t.spec.checkpoint_progress, 0.0);
    killed_relaunch = jt.kill_task(t.id);
  });
  cluster.run();

  EXPECT_TRUE(killed_relaunch);
  const Task& task = jt.task(ds.task_of("ckpt", 0));
  EXPECT_EQ(jt.job(ds.job_of("ckpt")).state, JobState::Succeeded);
  EXPECT_EQ(task.attempts_started, 3);  // original, relaunch, post-kill relaunch
  // Durable checkpoint survived the kill-requeue: the final attempt still
  // fast-forwarded past the checkpointed half.
  EXPECT_GT(task.spec.checkpoint_progress, 0.0);
  // Per-attempt flags did not leak through the requeue.
  EXPECT_FALSE(task.checkpointed);
  EXPECT_FALSE(task.use_checkpoint);
}

TEST(FaultRecovery, KillBeforeCheckpointCompletesDoesNotLeakUseCheckpoint) {
  // Regression for the use_checkpoint leak: request a checkpoint-suspend
  // and kill the task before the Checkpointed ack. The requeued attempt
  // must come back clean — a later plain suspend is SIGTSTP (no
  // checkpoint), so the task resumes in place with no extra attempt.
  ClusterConfig cfg = paper_cluster();
  Cluster cluster(cfg);
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));
  ds.submit_at(0.05, single_task_job("leaky", 0, hungry_map_task(512 * MiB)));
  JobTracker& jt = cluster.job_tracker();
  ds.at_progress("leaky", 0, 0.4, [&] {
    const TaskId id = ds.task_of("leaky", 0);
    ASSERT_TRUE(jt.checkpoint_suspend_task(id));
    // Kill immediately: the MustSuspend attempt dies before checkpointing.
    ASSERT_TRUE(jt.kill_task(id));
  });
  cluster.sim().at(90.0, [&] {
    const Task& t = jt.task(ds.task_of("leaky", 0));
    ASSERT_EQ(t.state, TaskState::Running);
    EXPECT_FALSE(t.use_checkpoint) << "use_checkpoint leaked across the requeue";
    ASSERT_TRUE(jt.suspend_task(t.id));
  });
  cluster.sim().at(100.0, [&] {
    const Task& t = jt.task(ds.task_of("leaky", 0));
    // SIGTSTP suspension: still bound to its tracker, not checkpointed.
    ASSERT_EQ(t.state, TaskState::Suspended);
    EXPECT_FALSE(t.checkpointed);
    EXPECT_TRUE(t.tracker.valid());
    jt.resume_task(t.id);
  });
  cluster.run();

  const Task& task = jt.task(ds.task_of("leaky", 0));
  EXPECT_EQ(jt.job(ds.job_of("leaky")).state, JobState::Succeeded);
  EXPECT_EQ(task.attempts_started, 2);  // killed attempt + clean rerun
  EXPECT_EQ(task.spec.checkpoint_progress, 0.0);
}

// --- satellite: checkpoint disk loss ---------------------------------------

TEST(FaultRecovery, CheckpointDiskLossRequeuesParkedTask) {
  // The node's disk loses its checkpoint files while the task is parked
  // on them: nothing to resume, so the task requeues from scratch.
  ClusterConfig cfg = paper_cluster();
  Cluster cluster(cfg);
  EventCounts events(cluster.job_tracker());
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));
  ds.submit_at(0.05, single_task_job("parked", 0, hungry_map_task(512 * MiB)));
  ds.at_progress("parked", 0, 0.5,
                 [&ds] { ds.preempt("parked", 0, PreemptPrimitive::NatjamCheckpoint); });

  FaultInjector injector(cluster, parse_fault_plan("lose-checkpoints 60 0\n"));
  cluster.run();

  const JobTracker& jt = cluster.job_tracker();
  const Task& task = jt.task(ds.task_of("parked", 0));
  EXPECT_EQ(jt.job(ds.job_of("parked")).state, JobState::Succeeded);
  EXPECT_EQ(events.of(ClusterEventType::TaskLost), 1);
  EXPECT_EQ(task.attempts_started, 2);
  // The fast-forward state is gone: the rerun started from zero.
  EXPECT_EQ(task.spec.checkpoint_progress, 0.0);
  EXPECT_EQ(task.spec.checkpoint_state, 0u);
  EXPECT_EQ(task.attempts_failed, 0);
}

// --- injector bookkeeping ---------------------------------------------------

TEST(FaultInjectorTest, MessageDelayWindowDelaysWithoutDropping) {
  ClusterConfig cfg = paper_cluster();
  Cluster cluster(cfg);
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));
  ds.submit_at(0.05, single_task_job("slow", 0, light_map_task()));

  FaultInjector injector(cluster, parse_fault_plan("delay-messages 0 40 0 0.2\n"));
  cluster.run();

  EXPECT_EQ(cluster.job_tracker().job(ds.job_of("slow")).state, JobState::Succeeded);
  EXPECT_GT(cluster.network().messages_delayed(), 0u);
  EXPECT_EQ(cluster.network().messages_dropped(), 0u);
}

TEST(FaultInjectorTest, CrashSilencesAllTrafficBothWays) {
  // After the crash fires, nothing flows to or from the dead node: the
  // surviving cluster just sees silence (that's what the lease is for).
  ClusterConfig cfg = fast_expiry_cluster(2);
  Cluster cluster(cfg);
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));
  TaskSpec spec = light_map_task();
  spec.preferred_node = cluster.node(1);
  ds.submit_at(0.05, single_task_job("survivor", 0, spec));

  FaultInjector injector(cluster, parse_fault_plan("crash 5 0\n"));
  cluster.run();

  EXPECT_TRUE(injector.node_crashed(cluster.node(0)));
  EXPECT_FALSE(injector.node_crashed(cluster.node(1)));
  EXPECT_TRUE(cluster.tracker(cluster.node(0)).crashed());
  // The dead node went silent at the source (its tracker stops sending),
  // so the master saw only silence and expired the lease.
  EXPECT_TRUE(cluster.job_tracker().tracker_lost(cluster.tracker(cluster.node(0)).id()));
  EXPECT_EQ(cluster.job_tracker().job(ds.job_of("survivor")).state, JobState::Succeeded);
}

}  // namespace
}  // namespace osap
