#include "net/network.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/simulation.hpp"

namespace osap {
namespace {

NetConfig test_config() {
  NetConfig cfg;
  cfg.latency = ms(1);
  cfg.nic_bandwidth = 100.0 * static_cast<double>(MiB);
  cfg.loopback_latency = ms(0.1);
  return cfg;
}

TEST(Network, ControlMessageTakesLatency) {
  Simulation sim;
  Network net(sim, test_config());
  net.register_node(NodeId{0});
  net.register_node(NodeId{1});
  SimTime delivered = -1;
  net.send(NodeId{0}, NodeId{1}, [&] { delivered = sim.now(); });
  sim.run();
  EXPECT_NEAR(delivered, 0.001, 1e-9);
}

TEST(Network, LoopbackIsFaster) {
  Simulation sim;
  Network net(sim, test_config());
  net.register_node(NodeId{0});
  SimTime delivered = -1;
  net.send(NodeId{0}, NodeId{0}, [&] { delivered = sim.now(); });
  sim.run();
  EXPECT_NEAR(delivered, 0.0001, 1e-9);
}

TEST(Network, TransferAtNicBandwidth) {
  Simulation sim;
  Network net(sim, test_config());
  net.register_node(NodeId{0});
  net.register_node(NodeId{1});
  SimTime done = -1;
  net.transfer(NodeId{0}, NodeId{1}, 200 * MiB, [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done, 2.0, 1e-6);
}

TEST(Network, ConcurrentTransfersShareDownlink) {
  Simulation sim;
  Network net(sim, test_config());
  net.register_node(NodeId{0});
  net.register_node(NodeId{1});
  net.register_node(NodeId{2});
  SimTime a = -1, b = -1;
  net.transfer(NodeId{0}, NodeId{2}, 100 * MiB, [&] { a = sim.now(); });
  net.transfer(NodeId{1}, NodeId{2}, 100 * MiB, [&] { b = sim.now(); });
  sim.run();
  EXPECT_NEAR(a, 2.0, 1e-6);
  EXPECT_NEAR(b, 2.0, 1e-6);
}

TEST(Network, TransfersToDifferentNodesAreIndependent) {
  Simulation sim;
  Network net(sim, test_config());
  net.register_node(NodeId{0});
  net.register_node(NodeId{1});
  net.register_node(NodeId{2});
  SimTime a = -1, b = -1;
  net.transfer(NodeId{0}, NodeId{1}, 100 * MiB, [&] { a = sim.now(); });
  net.transfer(NodeId{0}, NodeId{2}, 100 * MiB, [&] { b = sim.now(); });
  sim.run();
  EXPECT_NEAR(a, 1.0, 1e-6);
  EXPECT_NEAR(b, 1.0, 1e-6);
}

TEST(Network, SameNodeTransferIsLoopback) {
  Simulation sim;
  Network net(sim, test_config());
  net.register_node(NodeId{0});
  SimTime done = -1;
  net.transfer(NodeId{0}, NodeId{0}, 10 * GiB, [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done, 0.0001, 1e-9);
}

TEST(Network, PauseAndResumeTransfer) {
  Simulation sim;
  Network net(sim, test_config());
  net.register_node(NodeId{0});
  net.register_node(NodeId{1});
  SimTime done = -1;
  const auto id = net.transfer(NodeId{0}, NodeId{1}, 200 * MiB, [&] { done = sim.now(); });
  sim.at(1.0, [&] { net.pause(NodeId{1}, id); });
  sim.at(2.0, [&] { net.resume(NodeId{1}, id); });
  sim.run();
  EXPECT_NEAR(done, 3.0, 1e-6);
}

TEST(Network, BytesMovedAccumulates) {
  Simulation sim;
  Network net(sim, test_config());
  net.register_node(NodeId{0});
  net.register_node(NodeId{1});
  net.transfer(NodeId{0}, NodeId{1}, 10 * MiB, [] {});
  net.transfer(NodeId{1}, NodeId{0}, 20 * MiB, [] {});
  sim.run();
  EXPECT_EQ(net.bytes_moved(), 30 * MiB);
}

TEST(Network, DuplicateRegistrationThrows) {
  Simulation sim;
  Network net(sim, test_config());
  net.register_node(NodeId{0});
  EXPECT_THROW(net.register_node(NodeId{0}), SimError);
}

TEST(Network, TransferToUnknownNodeThrows) {
  Simulation sim;
  Network net(sim, test_config());
  net.register_node(NodeId{0});
  EXPECT_THROW(net.transfer(NodeId{0}, NodeId{9}, 1 * MiB, [] {}), SimError);
}

}  // namespace
}  // namespace osap
