// Property tests: VMM frame/slot accounting must balance under arbitrary
// interleavings of commit / page-in / stop / release operations.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "os/vmm.hpp"
#include "sim/simulation.hpp"

namespace osap {
namespace {

struct Fixture {
  explicit Fixture(OsConfig c) : cfg(c), disk(sim, c.disk_bandwidth, 0, "d"), vmm(sim, disk, c) {}
  OsConfig cfg;
  Simulation sim;
  Disk disk;
  Vmm vmm;
};

OsConfig small_config() {
  OsConfig cfg;
  cfg.ram = 1024 * MiB;
  cfg.os_reserved = 0;
  cfg.swap_size = 4 * GiB;
  cfg.low_watermark = 0.01;
  cfg.high_watermark = 0.02;
  cfg.lru_approx_error = 0.1;
  cfg.vm_chunk = 32 * MiB;
  cfg.disk_bandwidth = 200.0 * static_cast<double>(MiB);
  return cfg;
}

/// After the event queue drains, every usable frame is either free, in
/// the fs cache, or resident in some process.
void expect_conservation(Fixture& f, const std::vector<Pid>& pids) {
  Bytes resident = 0, swapped = 0;
  for (Pid pid : pids) {
    resident += f.vmm.resident(pid);
    swapped += f.vmm.swapped(pid);
  }
  EXPECT_EQ(f.vmm.free_ram() + f.vmm.fs_cache() + resident, f.cfg.usable_ram());
  EXPECT_GE(f.vmm.swap_used(), swapped);  // clean copies may hold extra slots
  EXPECT_LE(f.vmm.swap_used(), f.cfg.swap_size);
}

class VmmFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VmmFuzz, RandomOperationSequencesConserveMemory) {
  Fixture f(small_config());
  Rng rng(GetParam());
  constexpr int kProcs = 4;
  std::vector<Pid> pids;
  std::vector<RegionId> regions;
  std::vector<bool> stopped(kProcs, false);
  for (int i = 0; i < kProcs; ++i) {
    const Pid pid{static_cast<std::uint64_t>(i)};
    pids.push_back(pid);
    f.vmm.register_process(pid);
    // Named local sidesteps GCC 12's -Wrestrict false positive on
    // literal + to_string temporaries (PR105329).
    const std::string rname = "r" + std::to_string(i);
    regions.push_back(f.vmm.create_region(pid, rname));
  }
  f.vmm.set_oom_handler([&] {
    // Kill the biggest process, like the kernel would.
    Pid victim = pids[0];
    Bytes best = 0;
    for (Pid pid : pids) {
      if (f.vmm.resident(pid) >= best) {
        best = f.vmm.resident(pid);
        victim = pid;
      }
    }
    f.vmm.release_process(victim);
  });

  int completions = 0;
  for (int step = 0; step < 60; ++step) {
    const auto which = rng.uniform_int(0, kProcs - 1);
    const RegionId region = regions[which];
    const Pid pid = pids[which];
    switch (rng.uniform_int(0, 5)) {
      case 0:
      case 1:
        f.vmm.commit(region, rng.uniform_int(1, 8) * 32 * MiB, [&] { ++completions; });
        break;
      case 2:
        f.vmm.page_in(region, rng.uniform() < 0.5, [&] { ++completions; });
        break;
      case 3:
        stopped[which] = !stopped[which];
        f.vmm.set_stopped(pid, stopped[which]);
        break;
      case 4:
        f.vmm.release(region, rng.uniform_int(1, 4) * 32 * MiB);
        break;
      case 5:
        f.vmm.fs_cache_insert(rng.uniform_int(1, 4) * 32 * MiB);
        break;
    }
    if (rng.uniform() < 0.3) f.sim.run();  // quiesce mid-sequence too
  }
  f.sim.run();
  expect_conservation(f, pids);

  // Releasing everything returns every frame and every swap slot.
  for (Pid pid : pids) f.vmm.release_process(pid);
  f.sim.run();
  EXPECT_EQ(f.vmm.free_ram() + f.vmm.fs_cache(), f.cfg.usable_ram());
  EXPECT_EQ(f.vmm.swap_used(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmmFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

class VmmPressureSweep : public ::testing::TestWithParam<int> {};

TEST_P(VmmPressureSweep, SwapNeverExceedsDemandPlusOvershoot) {
  // Commit `k` 300 MiB regions into 1 GiB of RAM; cumulative swap-out must
  // stay within the theoretical demand plus reclaim overshoot slack.
  const int k = GetParam();
  Fixture f(small_config());
  std::vector<Pid> pids;
  for (int i = 0; i < k; ++i) {
    const Pid pid{static_cast<std::uint64_t>(i)};
    pids.push_back(pid);
    f.vmm.register_process(pid);
    const RegionId r = f.vmm.create_region(pid, "state");
    f.vmm.commit(r, 300 * MiB, [] {});
    f.sim.run();
    f.vmm.set_stopped(pid, true);
  }
  f.sim.run();
  expect_conservation(f, pids);
  const Bytes demand = static_cast<Bytes>(k) * 300 * MiB;
  const Bytes deficit = sat_sub(demand, f.cfg.usable_ram());
  // Overshoot slack: high watermark per reclaim wave plus LRU error.
  const Bytes slack = f.cfg.high_watermark_bytes() * 4 + demand / 4;
  EXPECT_LE(f.vmm.swapped_out_total_all(), deficit + slack);
  EXPECT_GE(f.vmm.swapped_out_total_all(), deficit > 0 ? deficit / 2 : 0);
}

INSTANTIATE_TEST_SUITE_P(Load, VmmPressureSweep, ::testing::Values(1, 2, 3, 4, 6, 8));

}  // namespace
}  // namespace osap
