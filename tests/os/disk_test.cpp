#include "os/disk.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace osap {
namespace {

constexpr double kBw = 100.0 * static_cast<double>(MiB);

TEST(Disk, SequentialReadAtBandwidth) {
  Simulation sim;
  Disk disk(sim, kBw, /*seek=*/0, "d");
  SimTime done = -1;
  disk.start(IoClass::HdfsRead, 200 * MiB, [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done, 2.0, 1e-9);
}

TEST(Disk, SeekChargedOnStreamStart) {
  Simulation sim;
  Disk disk(sim, kBw, ms(10), "d");
  SimTime done = -1;
  disk.start(IoClass::HdfsRead, 100 * MiB, [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done, 1.0 + 0.010, 1e-9);
}

TEST(Disk, ZeroByteStreamSkipsSeek) {
  Simulation sim;
  Disk disk(sim, kBw, ms(10), "d");
  SimTime done = -1;
  disk.start(IoClass::HdfsWrite, 0, [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done, 0.0, 1e-9);
}

TEST(Disk, ReadsAndSwapShareTheSpindle) {
  Simulation sim;
  Disk disk(sim, kBw, 0, "d");
  SimTime read_done = -1, swap_done = -1;
  disk.start(IoClass::HdfsRead, 100 * MiB, [&] { read_done = sim.now(); });
  disk.start(IoClass::SwapOut, 100 * MiB, [&] { swap_done = sim.now(); });
  sim.run();
  // Each stream gets half the bandwidth: both take 2 s instead of 1 s.
  EXPECT_NEAR(read_done, 2.0, 1e-9);
  EXPECT_NEAR(swap_done, 2.0, 1e-9);
}

TEST(Disk, PerClassAccounting) {
  Simulation sim;
  Disk disk(sim, kBw, 0, "d");
  disk.start(IoClass::HdfsRead, 10 * MiB, [] {});
  disk.start(IoClass::SwapOut, 20 * MiB, [] {});
  disk.start(IoClass::SwapIn, 30 * MiB, [] {});
  sim.run();
  EXPECT_EQ(disk.transferred(IoClass::HdfsRead), 10 * MiB);
  EXPECT_EQ(disk.transferred(IoClass::SwapOut), 20 * MiB);
  EXPECT_EQ(disk.transferred(IoClass::SwapIn), 30 * MiB);
  EXPECT_EQ(disk.transferred(IoClass::HdfsWrite), 0u);
}

TEST(Disk, PauseAndResumeStream) {
  Simulation sim;
  Disk disk(sim, kBw, 0, "d");
  SimTime done = -1;
  const auto id = disk.start(IoClass::HdfsRead, 200 * MiB, [&] { done = sim.now(); });
  sim.at(1.0, [&] { disk.pause(id); });
  sim.at(5.0, [&] { disk.resume(id); });
  sim.run();
  EXPECT_NEAR(done, 6.0, 1e-9);
}

TEST(Disk, CancelledStreamNeverCompletes) {
  Simulation sim;
  Disk disk(sim, kBw, 0, "d");
  bool fired = false;
  const auto id = disk.start(IoClass::HdfsRead, 200 * MiB, [&] { fired = true; });
  sim.at(0.5, [&] { disk.cancel(id); });
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Disk, IoClassNames) {
  EXPECT_STREQ(to_string(IoClass::SwapOut), "swap-out");
  EXPECT_STREQ(to_string(IoClass::HdfsRead), "hdfs-read");
}

}  // namespace
}  // namespace osap
