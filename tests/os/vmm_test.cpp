#include "os/vmm.hpp"

#include <gtest/gtest.h>

#include "os/disk.hpp"
#include "sim/simulation.hpp"

namespace osap {
namespace {

OsConfig test_config() {
  OsConfig cfg;
  cfg.ram = 1024 * MiB;
  cfg.os_reserved = 0;
  cfg.swap_size = 2 * GiB;
  cfg.swappiness = 0;
  cfg.low_watermark = 0.01;
  cfg.high_watermark = 0.02;
  cfg.lru_approx_error = 0;
  cfg.vm_chunk = 32 * MiB;
  cfg.disk_bandwidth = 100.0 * static_cast<double>(MiB);
  cfg.disk_seek = 0;
  return cfg;
}

struct VmmFixture {
  explicit VmmFixture(OsConfig cfg = test_config())
      : disk(sim, cfg.disk_bandwidth, cfg.disk_seek, "d"), vmm(sim, disk, cfg) {}
  Simulation sim;
  Disk disk;
  Vmm vmm;
};

TEST(Vmm, CommitWithinFreeMemoryIsImmediate) {
  VmmFixture f;
  const Pid p{1};
  f.vmm.register_process(p);
  const RegionId r = f.vmm.create_region(p, "heap");
  SimTime done = -1;
  f.vmm.commit(r, 100 * MiB, [&] { done = f.sim.now(); });
  f.sim.run();
  EXPECT_DOUBLE_EQ(done, 0.0);
  EXPECT_EQ(f.vmm.resident(p), 100 * MiB);
  EXPECT_EQ(f.vmm.free_ram(), 924 * MiB);
  EXPECT_EQ(f.vmm.swap_used(), 0u);
}

TEST(Vmm, FsCacheDroppedBeforeAnonWithSwappinessZero) {
  VmmFixture f;
  const Pid p1{1}, p2{2};
  f.vmm.register_process(p1);
  f.vmm.register_process(p2);
  const RegionId r1 = f.vmm.create_region(p1, "heap");
  f.vmm.commit(r1, 500 * MiB, [] {});
  f.sim.run();
  f.vmm.fs_cache_insert(400 * MiB);
  EXPECT_EQ(f.vmm.fs_cache(), 400 * MiB);

  // p2 wants 300 MiB; free is ~124 MiB, so reclaim must run — and it
  // should come entirely from the cache, not from p1's memory.
  const RegionId r2 = f.vmm.create_region(p2, "heap");
  SimTime done = -1;
  f.vmm.commit(r2, 300 * MiB, [&] { done = f.sim.now(); });
  f.sim.run();
  EXPECT_DOUBLE_EQ(done, 0.0);  // cache drops are free: no I/O time
  EXPECT_EQ(f.vmm.swap_used(), 0u);
  EXPECT_EQ(f.vmm.swapped(p1), 0u);
  EXPECT_LT(f.vmm.fs_cache(), 400 * MiB);
}

TEST(Vmm, StoppedProcessPagedOutUnderPressure) {
  VmmFixture f;
  const Pid sleeper{1}, worker{2};
  f.vmm.register_process(sleeper);
  f.vmm.register_process(worker);
  const RegionId rs = f.vmm.create_region(sleeper, "state");
  f.vmm.commit(rs, 700 * MiB, [] {});
  f.sim.run();
  f.vmm.set_stopped(sleeper, true);

  const RegionId rw = f.vmm.create_region(worker, "heap");
  SimTime done = -1;
  f.vmm.commit(rw, 600 * MiB, [&] { done = f.sim.now(); });
  f.sim.run();
  // ~300 MiB of the sleeper had to be written to swap at 100 MiB/s.
  EXPECT_GT(done, 2.5);
  EXPECT_GT(f.vmm.swapped(sleeper), 250 * MiB);
  EXPECT_EQ(f.vmm.swapped(worker), 0u);
  EXPECT_EQ(f.vmm.swapped_out_total(sleeper), f.vmm.swapped(sleeper));
  EXPECT_EQ(f.vmm.resident(worker), 600 * MiB);
  EXPECT_EQ(f.vmm.swap_used(), f.vmm.swapped(sleeper));
  EXPECT_EQ(f.disk.transferred(IoClass::SwapOut), f.vmm.swapped(sleeper));
}

TEST(Vmm, StoppedVictimPreferredOverRunningCold) {
  VmmFixture f;
  const Pid stopped{1}, running{2}, worker{3};
  for (Pid p : {stopped, running, worker}) f.vmm.register_process(p);
  const RegionId r_stop = f.vmm.create_region(stopped, "state");
  const RegionId r_run = f.vmm.create_region(running, "state");
  f.vmm.commit(r_stop, 400 * MiB, [] {});
  f.vmm.commit(r_run, 400 * MiB, [] {});
  f.sim.run();
  f.vmm.set_stopped(stopped, true);

  const RegionId rw = f.vmm.create_region(worker, "heap");
  f.vmm.commit(rw, 300 * MiB, [] {});
  f.sim.run();
  EXPECT_GT(f.vmm.swapped(stopped), 0u);
  EXPECT_EQ(f.vmm.swapped(running), 0u);
}

TEST(Vmm, ReclaimOvershootsToHighWatermark) {
  VmmFixture f;
  const Pid sleeper{1}, worker{2};
  f.vmm.register_process(sleeper);
  f.vmm.register_process(worker);
  const RegionId rs = f.vmm.create_region(sleeper, "state");
  f.vmm.commit(rs, 900 * MiB, [] {});
  f.sim.run();
  f.vmm.set_stopped(sleeper, true);

  // Walk free memory down to ~24 MiB without triggering reclaim, then ask
  // for one chunk more.
  const RegionId rw = f.vmm.create_region(worker, "warmup");
  f.vmm.commit(rw, 100 * MiB, [] {});
  f.sim.run();
  ASSERT_EQ(f.vmm.swapped(sleeper), 0u);
  const RegionId rw2 = f.vmm.create_region(worker, "heap");
  f.vmm.commit(rw2, 32 * MiB, [] {});
  f.sim.run();
  // A strictly minimal reclaim would evict ~8 MiB (deficit) plus change;
  // the kswapd-style target frees up to the high watermark instead.
  const Bytes swapped = f.vmm.swapped(sleeper);
  EXPECT_GT(swapped, 20 * MiB);
  EXPECT_LT(swapped, 80 * MiB);
}

TEST(Vmm, PageInRestoresResidencyAndChargesSwapReads) {
  VmmFixture f;
  const Pid sleeper{1}, worker{2};
  f.vmm.register_process(sleeper);
  f.vmm.register_process(worker);
  const RegionId rs = f.vmm.create_region(sleeper, "state");
  f.vmm.commit(rs, 700 * MiB, [] {});
  f.sim.run();
  f.vmm.set_stopped(sleeper, true);
  const RegionId rw = f.vmm.create_region(worker, "heap");
  f.vmm.commit(rw, 600 * MiB, [] {});
  f.sim.run();
  const Bytes swapped = f.vmm.swapped(sleeper);
  ASSERT_GT(swapped, 0u);

  // Worker exits; sleeper resumes and touches its state again.
  f.vmm.release_process(worker);
  f.vmm.set_stopped(sleeper, false);
  SimTime done = -1;
  f.vmm.page_in(rs, /*dirtying=*/false, [&] { done = f.sim.now(); });
  f.sim.run();
  EXPECT_GT(done, 0.0);
  EXPECT_EQ(f.vmm.swapped(sleeper), 0u);
  EXPECT_EQ(f.vmm.resident(sleeper), 700 * MiB);
  EXPECT_EQ(f.vmm.swapped_in_total(sleeper), swapped);
  EXPECT_EQ(f.disk.transferred(IoClass::SwapIn), swapped);
  // Clean page-in keeps the swap copy.
  EXPECT_EQ(f.vmm.swap_used(), swapped);
}

TEST(Vmm, CleanPagesEvictForFreeAfterCleanPageIn) {
  VmmFixture f;
  const Pid sleeper{1}, worker{2};
  f.vmm.register_process(sleeper);
  f.vmm.register_process(worker);
  const RegionId rs = f.vmm.create_region(sleeper, "state");
  f.vmm.commit(rs, 700 * MiB, [] {});
  f.sim.run();
  f.vmm.set_stopped(sleeper, true);
  const RegionId rw = f.vmm.create_region(worker, "heap");
  f.vmm.commit(rw, 600 * MiB, [] {});
  f.sim.run();
  f.vmm.release_process(worker);
  f.vmm.set_stopped(sleeper, false);
  f.vmm.page_in(rs, false, [] {});
  f.sim.run();
  const Bytes out_before = f.vmm.swapped_out_total(sleeper);

  // Second squeeze: the clean pages (swap copies valid) drop for free.
  f.vmm.set_stopped(sleeper, true);
  const Pid worker2{3};
  f.vmm.register_process(worker2);
  const RegionId rw2 = f.vmm.create_region(worker2, "heap");
  const SimTime start = f.sim.now();
  SimTime done = -1;
  f.vmm.commit(rw2, 300 * MiB, [&] { done = f.sim.now(); });
  f.sim.run();
  EXPECT_DOUBLE_EQ(done, start);  // no swap writes needed: zero elapsed
  EXPECT_EQ(f.vmm.swapped_out_total(sleeper), out_before);
}

TEST(Vmm, DirtyResidentDropsSwapSlots) {
  VmmFixture f;
  const Pid sleeper{1}, worker{2};
  f.vmm.register_process(sleeper);
  f.vmm.register_process(worker);
  const RegionId rs = f.vmm.create_region(sleeper, "state");
  f.vmm.commit(rs, 700 * MiB, [] {});
  f.sim.run();
  f.vmm.set_stopped(sleeper, true);
  const RegionId rw = f.vmm.create_region(worker, "heap");
  f.vmm.commit(rw, 600 * MiB, [] {});
  f.sim.run();
  f.vmm.release_process(worker);
  f.vmm.set_stopped(sleeper, false);
  f.vmm.page_in(rs, false, [] {});
  f.sim.run();
  ASSERT_GT(f.vmm.swap_used(), 0u);
  f.vmm.dirty_resident(rs);
  EXPECT_EQ(f.vmm.swap_used(), 0u);
}

TEST(Vmm, DirtyingPageInFreesSlotsImmediately) {
  VmmFixture f;
  const Pid sleeper{1}, worker{2};
  f.vmm.register_process(sleeper);
  f.vmm.register_process(worker);
  const RegionId rs = f.vmm.create_region(sleeper, "state");
  f.vmm.commit(rs, 700 * MiB, [] {});
  f.sim.run();
  f.vmm.set_stopped(sleeper, true);
  const RegionId rw = f.vmm.create_region(worker, "heap");
  f.vmm.commit(rw, 600 * MiB, [] {});
  f.sim.run();
  f.vmm.release_process(worker);
  f.vmm.set_stopped(sleeper, false);
  f.vmm.page_in(rs, /*dirtying=*/true, [] {});
  f.sim.run();
  EXPECT_EQ(f.vmm.swap_used(), 0u);
  EXPECT_EQ(f.vmm.swapped(sleeper), 0u);
}

TEST(Vmm, ReleaseProcessFreesEverything) {
  VmmFixture f;
  const Pid p{1};
  f.vmm.register_process(p);
  const RegionId r = f.vmm.create_region(p, "heap");
  f.vmm.commit(r, 500 * MiB, [] {});
  f.sim.run();
  const Bytes free_before = f.vmm.free_ram();
  f.vmm.release_process(p);
  EXPECT_EQ(f.vmm.free_ram(), free_before + 500 * MiB);
  EXPECT_EQ(f.vmm.resident(p), 0u);
  EXPECT_FALSE(f.vmm.has_region(r));
}

TEST(Vmm, FsCacheRespectsLowWatermark) {
  VmmFixture f;
  f.vmm.fs_cache_insert(2 * GiB);  // far more than RAM
  EXPECT_LE(f.vmm.fs_cache(), 1024 * MiB);
  EXPECT_GE(f.vmm.free_ram(), f.vmm.fs_cache() > 0 ? 10 * MiB : 0);
}

TEST(Vmm, OomHandlerInvokedWhenNothingEvictable) {
  OsConfig cfg = test_config();
  cfg.swap_size = 0;  // no swap: anon memory cannot be evicted at all
  VmmFixture f(cfg);
  const Pid hog{1}, worker{2};
  f.vmm.register_process(hog);
  f.vmm.register_process(worker);
  const RegionId rh = f.vmm.create_region(hog, "heap");
  f.vmm.commit(rh, 900 * MiB, [] {});
  f.sim.run();

  bool oom_fired = false;
  f.vmm.set_oom_handler([&] {
    oom_fired = true;
    f.vmm.release_process(hog);
  });
  const RegionId rw = f.vmm.create_region(worker, "heap");
  bool granted = false;
  f.vmm.commit(rw, 300 * MiB, [&] { granted = true; });
  f.sim.run();
  EXPECT_TRUE(oom_fired);
  EXPECT_TRUE(granted);
}

TEST(Vmm, SwapCapacityBoundsEviction) {
  OsConfig cfg = test_config();
  cfg.swap_size = 100 * MiB;
  VmmFixture f(cfg);
  const Pid sleeper{1}, worker{2};
  f.vmm.register_process(sleeper);
  f.vmm.register_process(worker);
  const RegionId rs = f.vmm.create_region(sleeper, "state");
  f.vmm.commit(rs, 900 * MiB, [] {});
  f.sim.run();
  f.vmm.set_stopped(sleeper, true);

  bool oom_fired = false;
  f.vmm.set_oom_handler([&] {
    oom_fired = true;
    f.vmm.release_process(sleeper);
  });
  const RegionId rw = f.vmm.create_region(worker, "heap");
  f.vmm.commit(rw, 400 * MiB, [] {});
  f.sim.run();
  // Only 100 MiB fits in swap; the rest of the demand trips the OOM killer.
  EXPECT_TRUE(oom_fired);
  EXPECT_LE(f.vmm.swapped_out_total(sleeper), 100 * MiB);
}

TEST(Vmm, LruErrorCausesRefaultTrafficUnderPressure) {
  OsConfig cfg = test_config();
  cfg.lru_approx_error = 0.2;
  VmmFixture f(cfg);
  const Pid sleeper{1}, worker{2};
  f.vmm.register_process(sleeper);
  f.vmm.register_process(worker);
  const RegionId rs = f.vmm.create_region(sleeper, "state");
  f.vmm.commit(rs, 800 * MiB, [] {});
  f.sim.run();
  f.vmm.set_stopped(sleeper, true);

  // The worker has a hot working set the scanner can hit by mistake.
  const RegionId hot = f.vmm.create_region(worker, "buffers");
  f.vmm.commit(hot, 100 * MiB, [] {});
  f.sim.run();
  f.vmm.mark_hot(hot, true);
  const RegionId rw = f.vmm.create_region(worker, "heap");
  f.vmm.commit(rw, 700 * MiB, [] {});
  f.sim.run();
  // Some of the worker's own hot bytes were evicted and faulted back.
  EXPECT_GT(f.vmm.swapped_out_total(worker), 0u);
  EXPECT_GT(f.vmm.swapped_in_total(worker), 0u);
  EXPECT_GT(f.disk.transferred(IoClass::SwapIn), 0u);
}

TEST(Vmm, RegionQueriesTrackState) {
  VmmFixture f;
  const Pid p{1};
  f.vmm.register_process(p);
  const RegionId r = f.vmm.create_region(p, "heap");
  f.vmm.commit(r, 64 * MiB, [] {});
  f.sim.run();
  EXPECT_EQ(f.vmm.region_resident(r), 64 * MiB);
  EXPECT_EQ(f.vmm.region_swapped(r), 0u);
  f.vmm.release(r, 32 * MiB);
  EXPECT_EQ(f.vmm.region_resident(r), 32 * MiB);
}

}  // namespace
}  // namespace osap
