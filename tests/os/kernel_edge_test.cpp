// Edge cases of the kernel's phase interpreter and signal machinery.
#include <gtest/gtest.h>

#include "os/kernel.hpp"
#include "sim/simulation.hpp"

namespace osap {
namespace {

OsConfig test_config() {
  OsConfig cfg;
  cfg.ram = 1024 * MiB;
  cfg.os_reserved = 0;
  cfg.swap_size = 4 * GiB;
  cfg.low_watermark = 0.01;
  cfg.high_watermark = 0.02;
  cfg.lru_approx_error = 0;
  cfg.vm_chunk = 32 * MiB;
  cfg.io_chunk = 64 * MiB;
  cfg.disk_bandwidth = 100.0 * static_cast<double>(MiB);
  cfg.disk_seek = 0;
  cfg.cores = 2;
  cfg.touch_cpu_per_byte = 1.0 / (1.0 * static_cast<double>(GiB));
  cfg.sigtstp_handler_delay = ms(20);
  return cfg;
}

struct Fixture {
  Fixture() : kernel(sim, test_config(), "n0") {}
  Simulation sim;
  Kernel kernel;
};

TEST(KernelEdge, EmptyProgramExitsImmediately) {
  Fixture f;
  SimTime exit_at = -1;
  f.kernel.spawn(Program{"noop", {}}, {.on_exit = [&](ExitInfo) { exit_at = f.sim.now(); }});
  f.sim.run();
  EXPECT_DOUBLE_EQ(exit_at, 0.0);
}

TEST(KernelEdge, ZeroByteAllocAndRead) {
  Fixture f;
  SimTime exit_at = -1;
  f.kernel.spawn(ProgramBuilder("z").alloc("heap", 0).read_parse(0, 1.0).build(),
                 {.on_exit = [&](ExitInfo) { exit_at = f.sim.now(); }});
  f.sim.run();
  EXPECT_GE(exit_at, 0.0);
  EXPECT_EQ(f.kernel.process_count(), 0u);
}

TEST(KernelEdge, SuspendDuringDiskReadPausesTheStream) {
  Fixture f;
  SimTime exit_at = -1;
  // Disk-bound read (no parse cost): 512 MiB at 100 MiB/s ~ 5.1 s.
  const Pid pid = f.kernel.spawn(
      ProgramBuilder("r").read_parse(512 * MiB, 1e-12).build(),
      {.on_exit = [&](ExitInfo) { exit_at = f.sim.now(); }});
  f.sim.at(2.0, [&] { f.kernel.signal(pid, Signal::Tstp); });
  f.sim.at(12.0, [&] { f.kernel.signal(pid, Signal::Cont); });
  f.sim.run();
  EXPECT_NEAR(exit_at, 15.1, 0.3);
}

TEST(KernelEdge, SuspendBetweenReadChunksDefersTheNextChunk) {
  Fixture f;
  // io_chunk = 64 MiB; suspend exactly when a chunk boundary lands.
  SimTime exit_at = -1;
  const Pid pid = f.kernel.spawn(
      ProgramBuilder("r").read_parse(256 * MiB, 1e-12).build(),
      {.on_exit = [&](ExitInfo) { exit_at = f.sim.now(); }});
  f.sim.at(0.64, [&] { f.kernel.signal(pid, Signal::Tstp); });  // ~chunk 1 done
  f.sim.at(5.0, [&] { f.kernel.signal(pid, Signal::Cont); });
  f.sim.run();
  EXPECT_GT(exit_at, 6.5);
  EXPECT_LT(exit_at, 8.5);
}

TEST(KernelEdge, KillWhileWaitingForVmmGrant) {
  OsConfig cfg = test_config();
  Fixture f;
  // A stopped hog fills memory; the victim's allocation stalls on swap
  // I/O; killing it mid-grant must not corrupt accounting.
  const Pid hog = f.kernel.spawn(
      ProgramBuilder("hog").alloc("state", 800 * MiB).sleep(100.0).build());
  f.sim.run_until(2.0);
  f.kernel.signal(hog, Signal::Tstp);
  f.sim.run_until(3.0);
  ExitInfo info;
  const Pid victim =
      f.kernel.spawn(ProgramBuilder("victim").alloc("heap", 600 * MiB).build(),
                     {.on_exit = [&](ExitInfo e) { info = e; }});
  f.sim.run_until(3.6);  // mid swap-out
  f.kernel.signal(victim, Signal::Kill);
  f.kernel.signal(hog, Signal::Kill);
  f.sim.run();
  EXPECT_TRUE(info.killed());
  EXPECT_EQ(f.kernel.process_count(), 0u);
  EXPECT_EQ(f.kernel.vmm().free_ram() + f.kernel.vmm().fs_cache(), cfg.usable_ram());
  EXPECT_EQ(f.kernel.vmm().swap_used(), 0u);
}

TEST(KernelEdge, TouchOnWriteDirtiesAndDropsSwapSlots) {
  Fixture f;
  SimTime exit_at = -1;
  const Pid sleeper = f.kernel.spawn(ProgramBuilder("s")
                                         .alloc("state", 600 * MiB)
                                         .sleep(5.0)
                                         .touch("state", /*write=*/true)
                                         .build(),
                                     {.on_exit = [&](ExitInfo) { exit_at = f.sim.now(); }});
  f.sim.at(1.0, [&] { f.kernel.signal(sleeper, Signal::Tstp); });
  f.sim.at(2.0, [&] {
    f.kernel.spawn(ProgramBuilder("hog").alloc("heap", 700 * MiB).build());
  });
  f.sim.at(30.0, [&] { f.kernel.signal(sleeper, Signal::Cont); });
  f.sim.run();
  EXPECT_GT(exit_at, 30.0);
  // Rewriting on page-in dropped the swap slots.
  EXPECT_EQ(f.kernel.vmm().swap_used(), 0u);
}

TEST(KernelEdge, TstpOnZombieAndDoubleKillAreSafe) {
  Fixture f;
  const Pid pid = f.kernel.spawn(ProgramBuilder("t").compute(1.0).build());
  f.sim.run();
  f.kernel.signal(pid, Signal::Tstp);
  f.kernel.signal(pid, Signal::Kill);
  f.kernel.signal(pid, Signal::Kill);
  SUCCEED();
}

TEST(KernelEdge, ConcurrentHungryProcessesBothComplete) {
  Fixture f;
  int done = 0;
  for (int i = 0; i < 3; ++i) {
    // Named local sidesteps GCC 12's -Wrestrict false positive on
    // literal + to_string temporaries (PR105329).
    const std::string name = "p" + std::to_string(i);
    f.kernel.spawn(ProgramBuilder(name)
                       .alloc("state", 500 * MiB)
                       .compute(2.0)
                       .touch("state")
                       .build(),
                   {.on_exit = [&](ExitInfo e) {
                     if (e.reason == ExitReason::Finished) ++done;
                   }});
  }
  f.sim.run();
  // 1.5 GiB of demand in 1 GiB of RAM: they page, they do not deadlock.
  EXPECT_EQ(done, 3);
  EXPECT_GT(f.kernel.vmm().swapped_out_total_all(), 100 * MiB);
}

TEST(KernelEdge, ProgressOfMissingPidIsZero) {
  Fixture f;
  EXPECT_DOUBLE_EQ(f.kernel.progress(Pid{1234}), 0.0);
}

}  // namespace
}  // namespace osap
