// The swappiness knob: how reclaim divides its appetite between the
// file-system cache and anonymous process memory.
#include <gtest/gtest.h>

#include "os/vmm.hpp"
#include "sim/simulation.hpp"

namespace osap {
namespace {

OsConfig config_with_swappiness(int swappiness) {
  OsConfig cfg;
  cfg.ram = 1024 * MiB;
  cfg.os_reserved = 0;
  cfg.swap_size = 4 * GiB;
  cfg.swappiness = swappiness;
  cfg.low_watermark = 0.01;
  cfg.high_watermark = 0.02;
  cfg.lru_approx_error = 0;
  cfg.vm_chunk = 32 * MiB;
  cfg.disk_bandwidth = 200.0 * static_cast<double>(MiB);
  cfg.disk_seek = 0;
  return cfg;
}

struct Scenario {
  explicit Scenario(int swappiness)
      : cfg(config_with_swappiness(swappiness)),
        disk(sim, cfg.disk_bandwidth, 0, "d"),
        vmm(sim, disk, cfg) {
    vmm.register_process(sleeper);
    vmm.register_process(worker);
    const RegionId rs = vmm.create_region(sleeper, "state");
    vmm.commit(rs, 500 * MiB, [] {});
    sim.run();
    vmm.set_stopped(sleeper, true);
    vmm.fs_cache_insert(400 * MiB);
  }

  /// Apply pressure and report how much anon memory got swapped.
  Bytes squeeze() {
    const RegionId rw = vmm.create_region(worker, "heap");
    vmm.commit(rw, 300 * MiB, [] {});
    sim.run();
    return vmm.swapped(sleeper);
  }

  OsConfig cfg;
  Simulation sim;
  Disk disk;
  Vmm vmm;
  const Pid sleeper{1};
  const Pid worker{2};
};

TEST(Swappiness, ZeroSparesAnonEntirelyWhileCacheRemains) {
  Scenario s(0);
  EXPECT_EQ(s.squeeze(), 0u);
  EXPECT_LT(s.vmm.fs_cache(), 400 * MiB);
}

TEST(Swappiness, HighValueSwapsAnonDespiteCache) {
  Scenario s(100);
  EXPECT_GT(s.squeeze(), 0u);
  // And the cache was partially spared.
  EXPECT_GT(s.vmm.fs_cache(), 100 * MiB);
}

TEST(Swappiness, MonotoneInAnonAppetite) {
  Bytes prev = 0;
  for (int swappiness : {0, 50, 100}) {
    Scenario s(swappiness);
    const Bytes swapped = s.squeeze();
    EXPECT_GE(swapped, prev) << "swappiness " << swappiness;
    prev = swapped;
  }
}

}  // namespace
}  // namespace osap
