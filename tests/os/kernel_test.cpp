#include "os/kernel.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace osap {
namespace {

OsConfig test_config() {
  OsConfig cfg;
  cfg.ram = 1024 * MiB;
  cfg.os_reserved = 0;
  cfg.swap_size = 4 * GiB;
  cfg.swappiness = 0;
  cfg.low_watermark = 0.01;
  cfg.high_watermark = 0.02;
  cfg.lru_approx_error = 0;
  cfg.vm_chunk = 32 * MiB;
  cfg.io_chunk = 64 * MiB;
  cfg.disk_bandwidth = 100.0 * static_cast<double>(MiB);
  cfg.disk_seek = 0;
  cfg.cores = 2;
  cfg.touch_cpu_per_byte = 1.0 / (1.0 * static_cast<double>(GiB));
  cfg.sigtstp_handler_delay = ms(20);
  return cfg;
}

struct KernelFixture {
  explicit KernelFixture(OsConfig cfg = test_config()) : kernel(sim, cfg, "n0") {}
  Simulation sim;
  Kernel kernel;
};

TEST(Kernel, ComputePhaseCappedAtOneCore) {
  KernelFixture f;
  SimTime exit_at = -1;
  f.kernel.spawn(ProgramBuilder("burn").compute(10.0).build(),
                 {.on_exit = [&](ExitInfo) { exit_at = f.sim.now(); }});
  f.sim.run();
  // Two cores available, but a single process uses at most one.
  EXPECT_NEAR(exit_at, 10.0, 1e-6);
}

TEST(Kernel, ProcessorSharingOnOneCore) {
  OsConfig cfg = test_config();
  cfg.cores = 1;
  KernelFixture f(cfg);
  SimTime a = -1, b = -1;
  f.kernel.spawn(ProgramBuilder("a").compute(5.0).build(),
                 {.on_exit = [&](ExitInfo) { a = f.sim.now(); }});
  f.kernel.spawn(ProgramBuilder("b").compute(5.0).build(),
                 {.on_exit = [&](ExitInfo) { b = f.sim.now(); }});
  f.sim.run();
  EXPECT_NEAR(a, 10.0, 1e-6);
  EXPECT_NEAR(b, 10.0, 1e-6);
}

TEST(Kernel, ReadParseBoundedBySlowerSide) {
  KernelFixture f;
  // 200 MiB at disk 100 MiB/s = 2 s; parse at 50 MiB/s/core = 4 s -> CPU wins.
  SimTime exit_at = -1;
  f.kernel.spawn(ProgramBuilder("map")
                     .read_parse(200 * MiB, 1.0 / (50.0 * static_cast<double>(MiB)))
                     .build(),
                 {.on_exit = [&](ExitInfo) { exit_at = f.sim.now(); }});
  f.sim.run();
  EXPECT_NEAR(exit_at, 4.0, 0.01);
}

TEST(Kernel, ReadPopulatesFsCache) {
  KernelFixture f;
  f.kernel.spawn(ProgramBuilder("map")
                     .read_parse(256 * MiB, 1.0 / (500.0 * static_cast<double>(MiB)))
                     .build());
  f.sim.run();
  EXPECT_GE(f.kernel.vmm().fs_cache(), 256 * MiB - 1 * MiB);
}

TEST(Kernel, ExitReleasesMemory) {
  KernelFixture f;
  f.kernel.spawn(ProgramBuilder("task").alloc("heap", 300 * MiB).build());
  f.sim.run();
  EXPECT_EQ(f.kernel.vmm().free_ram(), 1024 * MiB);
  EXPECT_EQ(f.kernel.process_count(), 0u);
}

TEST(Kernel, SigtstpStopsAfterHandlerWindow) {
  KernelFixture f;
  SimTime stopped_at = -1;
  const Pid pid = f.kernel.spawn(ProgramBuilder("t").compute(100.0).build(),
                                 {.on_stopped = [&] { stopped_at = f.sim.now(); }});
  f.sim.at(1.0, [&] { f.kernel.signal(pid, Signal::Tstp); });
  f.sim.run_until(5.0);
  EXPECT_NEAR(stopped_at, 1.020, 1e-6);
  ASSERT_NE(f.kernel.find(pid), nullptr);
  EXPECT_EQ(f.kernel.find(pid)->state(), ProcState::Stopped);
}

TEST(Kernel, SuspendResumeShiftsCompletionByStopTime) {
  KernelFixture f;
  SimTime exit_at = -1;
  const Pid pid = f.kernel.spawn(ProgramBuilder("t").compute(10.0).build(),
                                 {.on_exit = [&](ExitInfo) { exit_at = f.sim.now(); }});
  f.sim.at(4.0, [&] { f.kernel.signal(pid, Signal::Tstp); });
  f.sim.at(24.0, [&] { f.kernel.signal(pid, Signal::Cont); });
  f.sim.run();
  // 20 s suspended plus the 20 ms handler window in which it still ran.
  EXPECT_NEAR(exit_at, 30.0 - 0.020, 1e-6);
}

TEST(Kernel, ProgressFrozenWhileStopped) {
  KernelFixture f;
  const Pid pid = f.kernel.spawn(
      ProgramBuilder("t").compute(10.0, /*weight=*/1.0).build());
  f.sim.at(5.0, [&] { f.kernel.signal(pid, Signal::Tstp); });
  f.sim.run_until(8.0);
  const double p = f.kernel.progress(pid);
  EXPECT_NEAR(p, 0.502, 0.01);  // stopped at 5.02s of 10s
  f.sim.run_until(20.0);
  EXPECT_DOUBLE_EQ(f.kernel.progress(pid), p);
}

TEST(Kernel, SigcontDuringHandlerWindowCancelsStop) {
  KernelFixture f;
  bool stopped = false;
  SimTime exit_at = -1;
  const Pid pid = f.kernel.spawn(ProgramBuilder("t").compute(10.0).build(),
                                 {.on_exit = [&](ExitInfo) { exit_at = f.sim.now(); },
                                  .on_stopped = [&] { stopped = true; }});
  f.sim.at(1.0, [&] { f.kernel.signal(pid, Signal::Tstp); });
  f.sim.at(1.005, [&] { f.kernel.signal(pid, Signal::Cont); });
  f.sim.run();
  EXPECT_FALSE(stopped);
  EXPECT_NEAR(exit_at, 10.0, 1e-6);
}

TEST(Kernel, SigkillTerminatesAndReleasesMemory) {
  KernelFixture f;
  ExitInfo info;
  SimTime exit_at = -1;
  const Pid pid =
      f.kernel.spawn(ProgramBuilder("t").alloc("heap", 200 * MiB).compute(100.0).build(),
                     {.on_exit = [&](ExitInfo e) {
                       info = e;
                       exit_at = f.sim.now();
                     }});
  f.sim.at(2.0, [&] { f.kernel.signal(pid, Signal::Kill); });
  f.sim.run();
  EXPECT_NEAR(exit_at, 2.0, 1e-9);
  EXPECT_TRUE(info.killed());
  EXPECT_EQ(info.reason, ExitReason::Killed);
  EXPECT_EQ(f.kernel.vmm().free_ram(), 1024 * MiB);
  EXPECT_FALSE(f.kernel.alive(pid));
}

TEST(Kernel, SignalToUnknownPidIsIgnored) {
  KernelFixture f;
  f.kernel.signal(Pid{123}, Signal::Kill);
  f.kernel.signal(Pid{}, Signal::Tstp);
  SUCCEED();
}

TEST(Kernel, DoubleTstpAndDoubleContAreIdempotent) {
  KernelFixture f;
  int stops = 0, conts = 0;
  const Pid pid = f.kernel.spawn(ProgramBuilder("t").compute(10.0).build(),
                                 {.on_stopped = [&] { ++stops; },
                                  .on_continued = [&] { ++conts; }});
  f.sim.at(1.0, [&] { f.kernel.signal(pid, Signal::Tstp); });
  f.sim.at(2.0, [&] { f.kernel.signal(pid, Signal::Tstp); });
  f.sim.at(3.0, [&] { f.kernel.signal(pid, Signal::Cont); });
  f.sim.at(3.5, [&] { f.kernel.signal(pid, Signal::Cont); });
  f.sim.run();
  EXPECT_EQ(stops, 1);
  EXPECT_EQ(conts, 1);
}

TEST(Kernel, StoppedProcessGetsSwappedAndResumeFaultsBackIn) {
  KernelFixture f;
  // The paper's worst case in miniature: a stateful task allocates, is
  // suspended, a memory-hungry task pushes it to swap, and on resume the
  // state faults back in from disk.
  SimTime victim_exit = -1;
  const Pid victim = f.kernel.spawn(ProgramBuilder("tl")
                                        .alloc("state", 600 * MiB)
                                        .sleep(1.0)
                                        .touch("state", /*write=*/false)
                                        .build(),
                                    {.on_exit = [&](ExitInfo) { victim_exit = f.sim.now(); }});
  f.sim.at(1.0, [&] { f.kernel.signal(victim, Signal::Tstp); });
  SimTime hog_exit = -1;
  f.sim.at(2.0, [&] {
    f.kernel.spawn(ProgramBuilder("th").alloc("heap", 700 * MiB).build(),
                   {.on_exit = [&](ExitInfo) { hog_exit = f.sim.now(); }});
  });
  f.sim.at(40.0, [&] { f.kernel.signal(victim, Signal::Cont); });
  f.sim.run();
  EXPECT_GT(f.kernel.vmm().swapped_out_total(victim), 200 * MiB);
  EXPECT_GT(f.kernel.vmm().swapped_in_total(victim), 200 * MiB);
  EXPECT_GT(hog_exit, 2.0);     // the hog paid for the page-outs
  EXPECT_GT(victim_exit, 40.0);  // resume + page-in + touch
}

TEST(Kernel, OomKillerPicksBiggestProcess) {
  OsConfig cfg = test_config();
  cfg.swap_size = 0;
  KernelFixture f(cfg);
  ExitInfo hog_info;
  f.kernel.spawn(ProgramBuilder("hog").alloc("heap", 800 * MiB).compute(100.0).build(),
                 {.on_exit = [&](ExitInfo e) { hog_info = e; }});
  SimTime small_exit = -1;
  f.sim.at(1.0, [&] {
    f.kernel.spawn(ProgramBuilder("small").alloc("heap", 400 * MiB).compute(1.0).build(),
                   {.on_exit = [&](ExitInfo) { small_exit = f.sim.now(); }});
  });
  f.sim.run();
  EXPECT_EQ(hog_info.reason, ExitReason::OomKilled);
  EXPECT_GT(small_exit, 0.0);
}

TEST(Kernel, SleepPhasePausesWithProcess) {
  KernelFixture f;
  SimTime exit_at = -1;
  const Pid pid = f.kernel.spawn(ProgramBuilder("t").sleep(10.0).build(),
                                 {.on_exit = [&](ExitInfo) { exit_at = f.sim.now(); }});
  f.sim.at(2.0, [&] { f.kernel.signal(pid, Signal::Tstp); });
  f.sim.at(7.0, [&] { f.kernel.signal(pid, Signal::Cont); });
  f.sim.run();
  // ~5 s of the nap were frozen (minus the 20 ms handler window).
  EXPECT_NEAR(exit_at, 15.0 - 0.020, 1e-6);
}

TEST(Kernel, WriteOutGoesToDisk) {
  KernelFixture f;
  SimTime exit_at = -1;
  f.kernel.spawn(ProgramBuilder("t").write_out(100 * MiB).build(),
                 {.on_exit = [&](ExitInfo) { exit_at = f.sim.now(); }});
  f.sim.run();
  EXPECT_NEAR(exit_at, 1.0, 0.01);
  EXPECT_EQ(f.kernel.disk().transferred(IoClass::HdfsWrite), 100 * MiB);
}

TEST(Kernel, FreePhaseReturnsMemory) {
  KernelFixture f;
  Bytes free_during = 0;
  f.kernel.spawn(ProgramBuilder("t")
                     .alloc("heap", 400 * MiB)
                     .free("heap")
                     .compute(1.0)
                     .build());
  f.sim.at(0.9, [&] { free_during = f.kernel.vmm().free_ram(); });
  f.sim.run();
  EXPECT_EQ(free_during, 1024 * MiB);
}

TEST(Kernel, WeightedProgressAcrossPhases) {
  KernelFixture f;
  const Pid pid = f.kernel.spawn(ProgramBuilder("t")
                                     .compute(4.0, /*weight=*/1.0)
                                     .compute(4.0, /*weight=*/3.0)
                                     .build());
  f.sim.at(2.0, [&] { EXPECT_NEAR(f.kernel.progress(pid), 0.125, 1e-6); });
  f.sim.at(6.0, [&] { EXPECT_NEAR(f.kernel.progress(pid), 0.25 + 0.75 * 0.5, 1e-6); });
  f.sim.run();
}

TEST(Kernel, ProgressWithoutWeightsUsesPhaseCount) {
  KernelFixture f;
  const Pid pid =
      f.kernel.spawn(ProgramBuilder("t").compute(2.0).compute(2.0).build());
  f.sim.at(3.0, [&] { EXPECT_NEAR(f.kernel.progress(pid), 0.75, 1e-6); });
  f.sim.run();
}

TEST(Kernel, KillDuringSuspendReleasesEverything) {
  KernelFixture f;
  ExitInfo info;
  const Pid pid = f.kernel.spawn(ProgramBuilder("t").alloc("heap", 300 * MiB).compute(50.0).build(),
                                 {.on_exit = [&](ExitInfo e) { info = e; }});
  f.sim.at(2.0, [&] { f.kernel.signal(pid, Signal::Tstp); });
  f.sim.at(5.0, [&] { f.kernel.signal(pid, Signal::Kill); });
  f.sim.run();
  EXPECT_TRUE(info.killed());
  EXPECT_EQ(f.kernel.vmm().free_ram(), 1024 * MiB);
  EXPECT_EQ(f.kernel.vmm().swap_used(), 0u);
}

}  // namespace
}  // namespace osap
