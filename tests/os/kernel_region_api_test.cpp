// The dynamic-region APIs used by long-lived services (Spark executors).
#include <gtest/gtest.h>

#include "os/kernel.hpp"
#include "sim/simulation.hpp"

namespace osap {
namespace {

OsConfig test_config() {
  OsConfig cfg;
  cfg.ram = 1024 * MiB;
  cfg.os_reserved = 0;
  cfg.swap_size = 4 * GiB;
  cfg.low_watermark = 0.01;
  cfg.high_watermark = 0.02;
  cfg.lru_approx_error = 0;
  cfg.vm_chunk = 32 * MiB;
  cfg.disk_bandwidth = 100.0 * static_cast<double>(MiB);
  cfg.disk_seek = 0;
  return cfg;
}

struct Fixture {
  Fixture() : kernel(sim, test_config(), "n0") {}
  Simulation sim;
  Kernel kernel;
};

TEST(KernelRegionApi, EnsureRegionCreatesOnceAndReuses) {
  Fixture f;
  const Pid pid = f.kernel.spawn(ProgramBuilder("svc").sleep(1000.0).build());
  f.sim.run_until(0.1);
  const RegionId a = f.kernel.ensure_region(pid, "cache");
  const RegionId b = f.kernel.ensure_region(pid, "cache");
  EXPECT_EQ(a, b);
  f.kernel.vmm().commit(a, 100 * MiB, [] {});
  f.sim.run_until(0.2);
  EXPECT_EQ(f.kernel.vmm().resident(pid), 100 * MiB);
}

TEST(KernelRegionApi, EnsureRegionOnDeadProcessThrows) {
  Fixture f;
  EXPECT_THROW(f.kernel.ensure_region(Pid{99}, "cache"), SimError);
}

TEST(KernelRegionApi, PageInRegionFaultsSwappedStateBack) {
  Fixture f;
  const Pid svc = f.kernel.spawn(ProgramBuilder("svc").sleep(1000.0).build());
  f.sim.run_until(0.1);
  const RegionId cache = f.kernel.ensure_region(svc, "cache");
  f.kernel.vmm().commit(cache, 600 * MiB, [] {});
  f.sim.run_until(0.5);
  // Stop the service and squeeze it out with a hungry process.
  f.kernel.signal(svc, Signal::Tstp);
  f.sim.run_until(1.0);
  const Pid hog = f.kernel.spawn(ProgramBuilder("hog").alloc("heap", 700 * MiB).build());
  (void)hog;
  f.sim.run_until(20.0);
  ASSERT_GT(f.kernel.vmm().swapped(svc), 100 * MiB);

  f.kernel.signal(svc, Signal::Cont);
  SimTime faulted_at = -1;
  EXPECT_TRUE(f.kernel.page_in_region(svc, "cache",
                                      [&] { faulted_at = f.sim.now(); }));
  f.sim.run_until(40.0);
  EXPECT_GT(faulted_at, 20.0);  // real swap-in I/O happened
  EXPECT_EQ(f.kernel.vmm().swapped(svc), 0u);
}

TEST(KernelRegionApi, PageInRegionUnknownTargetsReturnFalse) {
  Fixture f;
  const Pid pid = f.kernel.spawn(ProgramBuilder("svc").sleep(10.0).build());
  f.sim.run_until(0.1);
  EXPECT_FALSE(f.kernel.page_in_region(Pid{77}, "cache", [] {}));
  EXPECT_FALSE(f.kernel.page_in_region(pid, "nonexistent", [] {}));
}

}  // namespace
}  // namespace osap
