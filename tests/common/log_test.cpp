#include "common/log.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace osap {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::instance().set_sink(&sink_);
    Logger::instance().set_level(LogLevel::Info);
  }
  void TearDown() override {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(LogLevel::Warn);
    Logger::instance().clear_clock();
  }
  std::ostringstream sink_;
};

TEST_F(LogTest, LevelsFilter) {
  OSAP_LOG(Debug, "c") << "hidden";
  OSAP_LOG(Info, "c") << "shown";
  const std::string out = sink_.str();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("shown"), std::string::npos);
}

TEST_F(LogTest, ClockStampsLines) {
  Logger::instance().set_clock([] { return 12.5; });
  OSAP_LOG(Info, "c") << "stamped";
  EXPECT_NE(sink_.str().find("12.500"), std::string::npos);
}

TEST_F(LogTest, NoClockUsesDash) {
  OSAP_LOG(Warn, "c") << "x";
  EXPECT_NE(sink_.str().find("-"), std::string::npos);
}

TEST_F(LogTest, ComponentAndLevelAppear) {
  OSAP_LOG(Error, "jobtracker") << "boom";
  const std::string out = sink_.str();
  EXPECT_NE(out.find("ERROR"), std::string::npos);
  EXPECT_NE(out.find("jobtracker"), std::string::npos);
}

TEST(LogLevelNames, AllDistinct) {
  EXPECT_STREQ(to_string(LogLevel::Trace), "TRACE");
  EXPECT_STREQ(to_string(LogLevel::Off), "OFF");
}

}  // namespace
}  // namespace osap
