#include "common/ids.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

namespace osap {
namespace {

TEST(Ids, DefaultIsInvalid) {
  JobId id;
  EXPECT_FALSE(id.valid());
  EXPECT_TRUE(JobId{0}.valid());
}

TEST(Ids, EqualityAndOrdering) {
  EXPECT_EQ(TaskId{1}, TaskId{1});
  EXPECT_NE(TaskId{1}, TaskId{2});
  EXPECT_LT(TaskId{1}, TaskId{2});
}

TEST(Ids, DistinctTypesDoNotMix) {
  static_assert(!std::is_convertible_v<JobId, TaskId>);
  static_assert(!std::is_convertible_v<std::uint64_t, JobId>);
}

TEST(Ids, Printing) {
  std::ostringstream os;
  os << JobId{7} << " " << Pid{} << " " << NodeId{3};
  EXPECT_EQ(os.str(), "job_7 pid_<invalid> node_3");
}

TEST(Ids, Hashable) {
  std::unordered_set<AttemptId> set;
  set.insert(AttemptId{1});
  set.insert(AttemptId{2});
  set.insert(AttemptId{1});
  EXPECT_EQ(set.size(), 2u);
}

TEST(Ids, GeneratorIsMonotonic) {
  IdGenerator<BlockId> gen;
  const BlockId a = gen.next();
  const BlockId b = gen.next();
  EXPECT_TRUE(a.valid());
  EXPECT_LT(a, b);
  EXPECT_EQ(a, BlockId{0});
}

}  // namespace
}  // namespace osap
