#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace osap {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng r(7);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng r(11);
  EXPECT_EQ(r.uniform_int(4, 4), 4u);
}

TEST(Rng, ExponentialMean) {
  Rng r(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng r(17);
  double sum = 0, sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(10.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, NormalAtLeastRespectsFloor) {
  Rng r(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(r.normal_at_least(1.0, 2.0, 0.5), 0.5);
  }
}

TEST(Rng, ForkIsIndependent) {
  Rng parent(23);
  Rng child = parent.fork();
  // Child stream should not replay the parent stream.
  Rng parent2(23);
  parent2.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (child.next_u64() == parent2.next_u64());
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace osap
