#include "common/units.hpp"

#include <gtest/gtest.h>

namespace osap {
namespace {

TEST(Units, ConstantsScale) {
  EXPECT_EQ(KiB, 1024u);
  EXPECT_EQ(MiB, 1024u * 1024u);
  EXPECT_EQ(GiB, 1024u * 1024u * 1024u);
}

TEST(Units, FractionalHelpers) {
  EXPECT_EQ(gib(2.0), 2 * GiB);
  EXPECT_EQ(mib(512.0), 512 * MiB);
  EXPECT_EQ(gib(2.5), 2 * GiB + 512 * MiB);
}

TEST(Units, SaturatingSubtraction) {
  EXPECT_EQ(sat_sub(10, 3), 7u);
  EXPECT_EQ(sat_sub(3, 10), 0u);
  EXPECT_EQ(sat_sub(5, 5), 0u);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(to_mib(512 * MiB), 512.0);
  EXPECT_DOUBLE_EQ(to_gib(3 * GiB), 3.0);
}

TEST(Units, Format) {
  EXPECT_EQ(format_bytes(512 * MiB), "512.0 MiB");
  EXPECT_EQ(format_bytes(gib(2.5)), "2.50 GiB");
  EXPECT_EQ(format_bytes(100), "100 B");
  EXPECT_EQ(format_bytes(2 * KiB), "2.0 KiB");
}

}  // namespace
}  // namespace osap
