// Fault-injection tests for the invariant-audit subsystem: each auditor
// must convert a seeded corruption of its layer's state into a failing
// audit sweep with a diagnostic dump, and the watchdog must turn a
// zero-delay event livelock into a prompt failure instead of a hang.
#include "audit/audit.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/error.hpp"
#include "hadoop/cluster.hpp"
#include "os/kernel.hpp"
#include "preempt/protocol_audit.hpp"
#include "sched/dummy.hpp"
#include "sim/simulation.hpp"
#include "workload/profiles.hpp"

namespace osap {
namespace {

OsConfig os_config() {
  OsConfig cfg;
  cfg.ram = 1024 * MiB;
  cfg.os_reserved = 0;
  cfg.swap_size = 4 * GiB;
  cfg.swappiness = 0;
  cfg.low_watermark = 0.01;
  cfg.high_watermark = 0.02;
  cfg.lru_approx_error = 0;
  cfg.vm_chunk = 32 * MiB;
  cfg.io_chunk = 64 * MiB;
  cfg.disk_bandwidth = 100.0 * static_cast<double>(MiB);
  cfg.disk_seek = 0;
  cfg.cores = 2;
  cfg.touch_cpu_per_byte = 1.0 / (1.0 * static_cast<double>(GiB));
  cfg.sigtstp_handler_delay = ms(20);
  return cfg;
}

/// Run `fn`, assert it throws SimError, and assert every `needle` appears
/// in the failure message (the violation text and the attached dump).
template <typename Fn>
void expect_audit_failure(Fn&& fn, std::initializer_list<const char*> needles) {
  try {
    fn();
    FAIL() << "expected the audit to throw SimError";
  } catch (const SimError& e) {
    const std::string what = e.what();
    for (const char* needle : needles) {
      EXPECT_NE(what.find(needle), std::string::npos)
          << "missing '" << needle << "' in:\n" << what;
    }
  }
}

struct FakeAuditor final : InvariantAuditor {
  std::string label;
  std::vector<std::string> complaints;
  explicit FakeAuditor(std::string l) : label(std::move(l)) {}
  [[nodiscard]] std::string audit_label() const override { return label; }
  void audit(std::vector<std::string>& violations) const override {
    for (const std::string& c : complaints) violations.push_back(c);
  }
  void dump(std::ostream& os) const override { os << "state of " << label << '\n'; }
};

TEST(Registry, RunPrefixesLabelsAndDumpHasSections) {
  AuditRegistry reg;
  FakeAuditor a("alpha");
  FakeAuditor b("beta");
  a.complaints.push_back("broken thing");
  reg.add(&a);
  reg.add(&b);
  reg.add(&a);  // duplicate add is a no-op
  EXPECT_EQ(reg.size(), 2u);
  std::vector<std::string> violations;
  reg.run(violations);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0], "[alpha] broken thing");
  const std::string dump = reg.dump_all();
  EXPECT_NE(dump.find("--- alpha ---"), std::string::npos);
  EXPECT_NE(dump.find("state of beta"), std::string::npos);
  reg.remove(&a);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Watchdog, ZeroDelayLivelockFailsFastWithDefaults) {
  Simulation sim;
  // A pathological event that re-schedules itself at the current instant:
  // simulated time never advances and the queue never drains.
  auto spin = [&sim](auto self) -> void { sim.after(0, [self] { self(self); }); };
  sim.after(0, [spin] { spin(spin); });
  expect_audit_failure([&] { sim.run(); }, {"watchdog", "stalled"});
}

TEST(Watchdog, CreepingTimeLivelockFails) {
  // Time advances by a picosecond per event: the same-instant watchdog is
  // blind (every event moves the clock), but the min-advance window sees
  // that 1024 events bought less than the configured floor.
  Simulation sim;
  AuditConfig cfg;
  cfg.min_advance_window = 1024;
  cfg.min_advance_floor = 1e-6;
  sim.set_audit_config(cfg);
  auto creep = [&sim](auto self) -> void { sim.after(1e-12, [self] { self(self); }); };
  sim.after(0, [creep] { creep(creep); });
  expect_audit_failure([&] { sim.run(); }, {"watchdog", "crept"});
}

TEST(Watchdog, SlowButRealProgressPasses) {
  // Millisecond steps clear a microsecond floor easily; the min-advance
  // watchdog must stay quiet for any sim making real progress.
  Simulation sim;
  AuditConfig cfg;
  cfg.min_advance_window = 64;
  cfg.min_advance_floor = 1e-6;
  sim.set_audit_config(cfg);
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    sim.after(0.001 * i, [&fired] { ++fired; });
  }
  sim.run();
  EXPECT_EQ(fired, 1000);
}

TEST(Watchdog, MinAdvanceDisabledByZeroWindow) {
  Simulation sim;
  AuditConfig cfg;
  cfg.min_advance_window = 0;  // opt out: creeping time is tolerated
  cfg.max_stalled_events = 1000000;
  sim.set_audit_config(cfg);
  int hops = 0;
  auto creep = [&sim, &hops](auto self) -> void {
    if (++hops < 5000) sim.after(1e-12, [self] { self(self); });
  };
  sim.after(0, [creep] { creep(creep); });
  sim.run();
  EXPECT_EQ(hops, 5000);
}

TEST(Watchdog, AdvancingTimeNeverTrips) {
  Simulation sim;
  AuditConfig cfg;
  cfg.max_stalled_events = 4;  // tight: any real stall would fire
  sim.set_audit_config(cfg);
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    sim.after(0.001 * i, [&fired] { ++fired; });
  }
  sim.run();
  EXPECT_EQ(fired, 100);
}

TEST(VmmAudit, FrameLeakFiresWithDump) {
  Simulation sim;
  Kernel kernel(sim, os_config(), "node0");
  kernel.spawn(ProgramBuilder("app").alloc("heap", 256 * MiB, true).compute(100).build());
  sim.run_until(5.0);
  kernel.vmm().testing_corrupt_free_frames(-static_cast<Bytes>(1 * MiB));
  expect_audit_failure([&] { sim.audit_now(); },
                       {"frame conservation broken", "--- node0.vmm ---"});
}

TEST(VmmAudit, CleanRunStaysSilent) {
  Simulation sim;
  Kernel kernel(sim, os_config(), "node0");
  kernel.spawn(ProgramBuilder("app").alloc("heap", 256 * MiB, true).compute(3).build());
  sim.run();
  sim.audit_now();  // must not throw
}

TEST(KernelAudit, StopFlagDisagreementFires) {
  Simulation sim;
  Kernel kernel(sim, os_config(), "node0");
  const Pid pid = kernel.spawn(ProgramBuilder("app").compute(100).build());
  sim.run_until(1.0);
  kernel.testing_corrupt_stop_state(pid);
  expect_audit_failure([&] { sim.audit_now(); }, {"VMM stopped flag", "--- node0 ---"});
}

TEST(TaskTrackerAudit, SlotLeakFires) {
  Cluster cluster(paper_cluster());
  cluster.tracker(cluster.node(0)).testing_corrupt_slot_accounting();
  expect_audit_failure([&] { cluster.sim().audit_now(); },
                       {"used map slots", "slot-holding map tasks"});
}

TEST(JobTrackerAudit, TrackerBindingCorruptionFires) {
  Cluster cluster(paper_cluster());
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler* ds = sched.get();
  cluster.set_scheduler(std::move(sched));
  ds->submit_at(0.05, single_task_job("tl", 0, light_map_task()));
  cluster.sim().run_until(10.0);
  cluster.job_tracker().testing_corrupt_task_binding(ds->task_of("tl", 0));
  expect_audit_failure([&] { cluster.sim().audit_now(); },
                       {"bound to no tracker", "--- jobtracker ---"});
}

TEST(ProtocolAudit, AckWithoutRequestFires) {
  Cluster cluster(paper_cluster());
  ProtocolAuditor auditor(cluster.job_tracker());
  // A SUSPENDED acknowledgement with no MUST_SUSPEND round trip before it
  // breaks the §III-B ordering.
  cluster.job_tracker().testing_emit_event(ClusterEventType::TaskSuspended, JobId{},
                                           TaskId{7}, NodeId{});
  expect_audit_failure([&] { cluster.sim().audit_now(); },
                       {"[preempt-protocol]", "task-suspended", "while in phase none"});
}

TEST(ProtocolAudit, LegalRoundTripStaysSilent) {
  Cluster cluster(paper_cluster());
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler* ds = sched.get();
  cluster.set_scheduler(std::move(sched));
  ds->submit_at(0.05, single_task_job("tl", 0, light_map_task()));
  ds->at_progress("tl", 0, 0.2, [ds] { ds->preempt("tl", 0, PreemptPrimitive::Suspend); });
  cluster.sim().run_until(40.0);
  ds->restore("tl", 0, PreemptPrimitive::Suspend);
  cluster.run();
  cluster.sim().audit_now();  // the full suspend/resume cycle is legal
  EXPECT_EQ(cluster.job_tracker().job(ds->job_of("tl")).state, JobState::Succeeded);
}

TEST(AuditSweep, FiresWithinOneStrideDuringRun) {
  Simulation sim;
  Kernel kernel(sim, os_config(), "node0");
  kernel.vmm().testing_corrupt_free_frames(static_cast<Bytes>(1 * MiB));
  // Plenty of unrelated traffic: the periodic sweep must notice anyway.
  for (int i = 0; i < 200; ++i) sim.after(0.01 * i, [] {});
  expect_audit_failure([&] { sim.run(); }, {"frame conservation broken"});
}

TEST(AuditSweep, DisabledConfigSkipsSweeps) {
  Simulation sim;
  AuditConfig cfg;
  cfg.enabled = false;
  sim.set_audit_config(cfg);
  Kernel kernel(sim, os_config(), "node0");
  kernel.vmm().testing_corrupt_free_frames(static_cast<Bytes>(1 * MiB));
  for (int i = 0; i < 200; ++i) sim.after(0.01 * i, [] {});
  sim.run();  // corruption present, audits off: must complete untouched
}

}  // namespace
}  // namespace osap
