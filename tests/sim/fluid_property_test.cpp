// Property tests: fluid resources must conserve work under arbitrary
// pause / resume / cancel interleavings — no bytes created or destroyed.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/fluid_resource.hpp"

namespace osap {
namespace {

class FluidFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FluidFuzz, WorkIsConservedUnderRandomControl) {
  Simulation sim;
  FluidResource r(sim, 100.0, "r");
  Rng rng(GetParam());

  struct Tracked {
    FluidResource::ConsumerId id;
    double demand;
    bool completed = false;
    bool cancelled = false;
    bool paused = false;
  };
  auto consumers = std::make_shared<std::vector<Tracked>>();

  // Random demands arriving at random times.
  const int n = 20;
  for (int i = 0; i < n; ++i) {
    const double demand = rng.uniform(10.0, 500.0);
    const SimTime at = rng.uniform(0.0, 10.0);
    sim.at(at, [&r, consumers, demand] {
      const std::size_t slot = consumers->size();
      consumers->push_back({});
      auto& c = consumers->back();
      c.demand = demand;
      c.id = r.add(demand, [consumers, slot] { (*consumers)[slot].completed = true; });
    });
  }
  // Random control actions.
  for (int i = 0; i < 40; ++i) {
    const SimTime at = rng.uniform(0.5, 15.0);
    const auto action = rng.uniform_int(0, 2);
    const auto pick = rng.next_u64();
    sim.at(at, [&r, consumers, action, pick] {
      if (consumers->empty()) return;
      auto& c = (*consumers)[pick % consumers->size()];
      if (c.completed || c.cancelled) return;
      switch (action) {
        case 0:
          r.pause(c.id);
          c.paused = true;
          break;
        case 1:
          r.resume(c.id);
          c.paused = false;
          break;
        case 2:
          r.cancel(c.id);
          c.cancelled = true;
          break;
      }
    });
  }
  // Thaw everything at the end so the queue can drain.
  sim.at(20.0, [&r, consumers] {
    for (auto& c : *consumers) {
      if (!c.completed && !c.cancelled) r.resume(c.id);
    }
  });
  sim.run();

  double expected_completed = 0;
  double cancelled_served = 0;
  for (const auto& c : *consumers) {
    if (c.cancelled) {
      cancelled_served += c.demand;  // upper bound on what it received
      continue;
    }
    EXPECT_TRUE(c.completed) << "non-cancelled consumer must finish";
    expected_completed += c.demand;
  }
  // Conservation: total served covers completions exactly; cancelled
  // consumers account for at most their demand.
  EXPECT_GE(r.total_served(), expected_completed - 1e-3);
  EXPECT_LE(r.total_served(), expected_completed + cancelled_served + 1e-3);
  EXPECT_EQ(r.active_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FluidFuzz, ::testing::Values(3, 7, 11, 19, 42, 101, 999));

class FluidShareSweep : public ::testing::TestWithParam<int> {};

TEST_P(FluidShareSweep, EqualDemandsFinishTogether) {
  const int n = GetParam();
  Simulation sim;
  FluidResource r(sim, 100.0, "r");
  std::vector<SimTime> done(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    r.add(100.0, [&done, i, &sim] { done[static_cast<std::size_t>(i)] = sim.now(); });
  }
  sim.run();
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(done[static_cast<std::size_t>(i)], static_cast<double>(n), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Fanout, FluidShareSweep, ::testing::Values(1, 2, 3, 5, 8, 16, 50));

}  // namespace
}  // namespace osap
