#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace osap {
namespace {

TEST(Simulation, ClockAdvancesToEventTimes) {
  Simulation sim;
  std::vector<SimTime> seen;
  sim.at(1.0, [&] { seen.push_back(sim.now()); });
  sim.at(2.5, [&] { seen.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(seen, (std::vector<SimTime>{1.0, 2.5}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
}

TEST(Simulation, AfterIsRelative) {
  Simulation sim;
  SimTime fired = -1;
  sim.at(10.0, [&] { sim.after(5.0, [&] { fired = sim.now(); }); });
  sim.run();
  EXPECT_DOUBLE_EQ(fired, 15.0);
}

TEST(Simulation, NegativeDelayClampsToNow) {
  Simulation sim;
  SimTime fired = -1;
  sim.at(3.0, [&] { sim.after(-2.0, [&] { fired = sim.now(); }); });
  sim.run();
  EXPECT_DOUBLE_EQ(fired, 3.0);
}

TEST(Simulation, CannotScheduleInThePast) {
  Simulation sim;
  sim.at(5.0, [&] { EXPECT_THROW(sim.at(1.0, [] {}), SimError); });
  sim.run();
}

TEST(Simulation, RunUntilStopsAndSetsClock) {
  Simulation sim;
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, CancelledEventDoesNotFire) {
  Simulation sim;
  bool fired = false;
  const EventId id = sim.at(1.0, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, EventsProcessedCounts) {
  Simulation sim;
  for (int i = 0; i < 7; ++i) sim.at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 7u);
}

TEST(Simulation, StepReturnsFalseWhenDrained) {
  Simulation sim;
  sim.at(1.0, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, CascadingEventsKeepDeterministicOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.at(1.0, [&] {
    order.push_back(1);
    sim.after(0, [&] { order.push_back(3); });
  });
  sim.at(1.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace osap
