#include "sim/fluid_resource.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/simulation.hpp"

namespace osap {
namespace {

TEST(FluidResource, SingleConsumerFullCapacity) {
  Simulation sim;
  FluidResource disk(sim, 100.0, "disk");
  SimTime done = -1;
  disk.add(500.0, [&] { done = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(done, 5.0);
}

TEST(FluidResource, TwoConsumersShareEqually) {
  Simulation sim;
  FluidResource disk(sim, 100.0, "disk");
  SimTime a = -1, b = -1;
  disk.add(100.0, [&] { a = sim.now(); });
  disk.add(100.0, [&] { b = sim.now(); });
  sim.run();
  // Both at 50 u/s until both finish at t=2.
  EXPECT_DOUBLE_EQ(a, 2.0);
  EXPECT_DOUBLE_EQ(b, 2.0);
}

TEST(FluidResource, ShorterConsumerFreesCapacity) {
  Simulation sim;
  FluidResource disk(sim, 100.0, "disk");
  SimTime a = -1, b = -1;
  disk.add(50.0, [&] { a = sim.now(); });
  disk.add(150.0, [&] { b = sim.now(); });
  sim.run();
  // Share 50/50 until t=1 (a done, b has 100 left), then b at 100 u/s.
  EXPECT_DOUBLE_EQ(a, 1.0);
  EXPECT_DOUBLE_EQ(b, 2.0);
}

TEST(FluidResource, RateCapLimitsAllocation) {
  Simulation sim;
  FluidResource cpu(sim, 8.0, "cpu");
  SimTime done = -1;
  cpu.add(10.0, /*rate_cap=*/1.0, [&] { done = sim.now(); });
  sim.run();
  // One process on an 8-core CPU still runs at 1 core.
  EXPECT_DOUBLE_EQ(done, 10.0);
}

TEST(FluidResource, WaterFillingRedistributesCapAbove) {
  Simulation sim;
  FluidResource r(sim, 90.0, "r");
  SimTime a = -1, b = -1;
  r.add(100.0, /*rate_cap=*/10.0, [&] { a = sim.now(); });
  r.add(160.0, [&] { b = sim.now(); });
  sim.run();
  // a capped at 10, b gets 80 -> b done at t=2; then a at 10 til t=10.
  EXPECT_DOUBLE_EQ(b, 2.0);
  EXPECT_DOUBLE_EQ(a, 10.0);
}

TEST(FluidResource, UnlimitedCapacityWithCaps) {
  Simulation sim;
  FluidResource cpu(sim, FluidResource::kUnlimited, "cpu");
  SimTime done = -1;
  cpu.add(4.0, /*rate_cap=*/2.0, [&] { done = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(done, 2.0);
}

TEST(FluidResource, RejectsUnlimitedOnUnlimited) {
  Simulation sim;
  FluidResource r(sim, FluidResource::kUnlimited, "r");
  EXPECT_THROW(r.add(1.0, [] {}), SimError);
}

TEST(FluidResource, PauseFreezesProgress) {
  Simulation sim;
  FluidResource disk(sim, 100.0, "disk");
  SimTime done = -1;
  const auto id = disk.add(200.0, [&] { done = sim.now(); });
  sim.at(1.0, [&] { disk.pause(id); });
  sim.at(11.0, [&] { disk.resume(id); });
  sim.run();
  // 100 served in [0,1], paused 10s, remaining 100 in [11,12].
  EXPECT_DOUBLE_EQ(done, 12.0);
}

TEST(FluidResource, PausedConsumerReleasesShare) {
  Simulation sim;
  FluidResource disk(sim, 100.0, "disk");
  SimTime a = -1, b = -1;
  const auto ida = disk.add(1000.0, [&] { a = sim.now(); });
  disk.add(100.0, [&] { b = sim.now(); });
  sim.at(1.0, [&] { disk.pause(ida); });
  sim.run();
  // b: 50 in [0,1], then full 100 u/s for remaining 50 -> t=1.5.
  EXPECT_DOUBLE_EQ(b, 1.5);
  EXPECT_EQ(a, -1);  // still paused when queue drained
}

TEST(FluidResource, CancelDropsWithoutCallback) {
  Simulation sim;
  FluidResource disk(sim, 100.0, "disk");
  bool fired = false;
  const auto id = disk.add(200.0, [&] { fired = true; });
  sim.at(0.5, [&] { disk.cancel(id); });
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(disk.active_count(), 0u);
}

TEST(FluidResource, ZeroDemandCompletesImmediately) {
  Simulation sim;
  FluidResource disk(sim, 100.0, "disk");
  SimTime done = -1;
  sim.at(2.0, [&] { disk.add(0.0, [&] { done = sim.now(); }); });
  sim.run();
  EXPECT_DOUBLE_EQ(done, 2.0);
}

TEST(FluidResource, AddDemandExtendsStream) {
  Simulation sim;
  FluidResource disk(sim, 100.0, "disk");
  SimTime done = -1;
  const auto id = disk.add(100.0, [&] { done = sim.now(); });
  sim.at(0.5, [&] { disk.add_demand(id, 50.0); });
  sim.run();
  EXPECT_DOUBLE_EQ(done, 1.5);
}

TEST(FluidResource, QueriesTrackProgressMidFlight) {
  Simulation sim;
  FluidResource disk(sim, 100.0, "disk");
  const auto id = disk.add(200.0, [] {});
  sim.at(1.0, [&] {
    EXPECT_NEAR(disk.served(id), 100.0, 1e-6);
    EXPECT_NEAR(disk.remaining(id), 100.0, 1e-6);
    EXPECT_DOUBLE_EQ(disk.rate(id), 100.0);
  });
  sim.run();
  EXPECT_FALSE(disk.contains(id));
}

TEST(FluidResource, TotalServedAccumulates) {
  Simulation sim;
  FluidResource disk(sim, 100.0, "disk");
  disk.add(30.0, [] {});
  disk.add(70.0, [] {});
  sim.run();
  EXPECT_NEAR(disk.total_served(), 100.0, 1e-6);
}

TEST(FluidResource, SetCapacityRescales) {
  Simulation sim;
  FluidResource disk(sim, 100.0, "disk");
  SimTime done = -1;
  disk.add(200.0, [&] { done = sim.now(); });
  sim.at(1.0, [&] { disk.set_capacity(50.0); });
  sim.run();
  // 100 in [0,1], then 100 more at 50 u/s -> t=3.
  EXPECT_DOUBLE_EQ(done, 3.0);
}

TEST(FluidResource, CompletionCallbackCanAddNewConsumer) {
  Simulation sim;
  FluidResource disk(sim, 100.0, "disk");
  SimTime second = -1;
  disk.add(100.0, [&] { disk.add(100.0, [&] { second = sim.now(); }); });
  sim.run();
  EXPECT_DOUBLE_EQ(second, 2.0);
}

TEST(FluidResource, ManyConsumersDrainDeterministically) {
  Simulation sim;
  FluidResource disk(sim, 100.0, "disk");
  int completed = 0;
  for (int i = 1; i <= 20; ++i) {
    disk.add(10.0 * i, [&] { ++completed; });
  }
  sim.run();
  EXPECT_EQ(completed, 20);
  EXPECT_NEAR(disk.total_served(), 10.0 * (20 * 21 / 2), 1e-3);
}

TEST(FluidResource, PauseDuringContentionSettlesFirst) {
  Simulation sim;
  FluidResource disk(sim, 100.0, "disk");
  SimTime b_done = -1;
  const auto a = disk.add(500.0, [] {});
  disk.add(100.0, [&] { b_done = sim.now(); });
  sim.at(1.0, [&] {
    disk.pause(a);
    EXPECT_NEAR(disk.remaining(a), 450.0, 1e-6);
  });
  sim.run();
  // b: 50 in [0,1] shared, then 50 at full speed -> 1.5.
  EXPECT_DOUBLE_EQ(b_done, 1.5);
}

}  // namespace
}  // namespace osap
