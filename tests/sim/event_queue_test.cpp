#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace osap {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.push(2.0, [&] { fired.push_back(2); });
  q.push(1.0, [&] { fired.push_back(1); });
  q.push(3.0, [&] { fired.push_back(3); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) q.push(1.0, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(1.0, [&] { fired = true; });
  q.push(2.0, [] {});
  q.cancel(id);
  EXPECT_EQ(q.pending(), 1u);
  while (!q.empty()) q.pop().fn();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue q;
  q.push(1.0, [] {});
  q.cancel(999);
  q.cancel(0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, DoubleCancelCountsOnce) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  q.push(2.0, [] {});
  q.cancel(id);
  q.cancel(id);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  q.push(5.0, [] {});
  q.cancel(id);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(EventQueue, EmptyNextTimeIsNever) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), kTimeNever);
}

TEST(EventQueue, RejectsInfiniteTime) {
  EventQueue q;
  EXPECT_THROW(q.push(kTimeNever, [] {}), SimError);
  EXPECT_THROW(q.push(-1.0, [] {}), SimError);
}

TEST(EventQueue, PopReportsTimeAndId) {
  EventQueue q;
  const EventId id = q.push(4.5, [] {});
  auto fired = q.pop();
  EXPECT_DOUBLE_EQ(fired.time, 4.5);
  EXPECT_EQ(fired.id, id);
}

}  // namespace
}  // namespace osap
