#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <queue>
#include <tuple>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace osap {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.push(2.0, [&] { fired.push_back(2); });
  q.push(1.0, [&] { fired.push_back(1); });
  q.push(3.0, [&] { fired.push_back(3); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) q.push(1.0, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(1.0, [&] { fired = true; });
  q.push(2.0, [] {});
  q.cancel(id);
  EXPECT_EQ(q.pending(), 1u);
  while (!q.empty()) q.pop().fn();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue q;
  q.push(1.0, [] {});
  q.cancel(999);
  q.cancel(0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, DoubleCancelCountsOnce) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  q.push(2.0, [] {});
  q.cancel(id);
  q.cancel(id);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  q.push(5.0, [] {});
  q.cancel(id);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(EventQueue, EmptyNextTimeIsNever) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), kTimeNever);
}

TEST(EventQueue, RejectsInfiniteTime) {
  EventQueue q;
  EXPECT_THROW(q.push(kTimeNever, [] {}), SimError);
  EXPECT_THROW(q.push(-1.0, [] {}), SimError);
}

TEST(EventQueue, PopReportsTimeAndId) {
  EventQueue q;
  const EventId id = q.push(4.5, [] {});
  auto fired = q.pop();
  EXPECT_DOUBLE_EQ(fired.time, 4.5);
  EXPECT_EQ(fired.id, id);
}

// A cancellation storm must neither leak closures nor let tombstones
// accumulate without bound: cancel() frees the closure eagerly (the
// shared_ptr's count drops at the cancel, not at the would-be fire
// time), and compaction keeps cancelled calendar entries below the live
// population once enough have piled up.
TEST(EventQueue, CancellationStormReleasesClosuresAndCompacts) {
  EventQueue q;
  auto sentinel = std::make_shared<int>(42);
  std::vector<EventId> doomed;
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const SimTime t = rng.uniform(0.0, 1000.0);
    if (i % 2 == 0) {
      doomed.push_back(q.push(t, [sentinel] { (void)*sentinel; }));
    } else {
      q.push(t, [] {});
    }
  }
  EXPECT_EQ(sentinel.use_count(), 1 + 5000);
  for (const EventId id : doomed) q.cancel(id);
  // Every captured copy was destroyed at cancel time, before any pop.
  EXPECT_EQ(sentinel.use_count(), 1);
  EXPECT_EQ(q.pending(), 5000u);
  // Tombstones are bounded: compaction fires once they outnumber the
  // live events (with a small floor so tiny queues skip the churn).
  EXPECT_LE(q.cancelled_entries(), q.pending());
  SimTime last = 0;
  std::size_t fired = 0;
  while (!q.empty()) {
    const auto ev = q.pop();
    EXPECT_GE(ev.time, last);
    last = ev.time;
    ++fired;
  }
  EXPECT_EQ(fired, 5000u);
  EXPECT_EQ(q.cancelled_entries(), 0u);
}

// Differential check against the textbook reference: a binary heap over
// (time, id) with FIFO tie-breaking. Random pushes, cancels, and pops
// must drain in exactly the reference order — the property the trace
// digests of whole simulations rest on.
TEST(EventQueue, RandomizedDifferentialAgainstBinaryHeap) {
  using Ref = std::pair<SimTime, EventId>;
  EventQueue q;
  std::priority_queue<Ref, std::vector<Ref>, std::greater<Ref>> ref;
  std::vector<std::pair<SimTime, EventId>> drained_q;
  std::vector<Ref> drained_ref;
  std::vector<EventId> alive;
  Rng rng(11);
  for (int round = 0; round < 20000; ++round) {
    const double dice = rng.uniform();
    if (dice < 0.55 || ref.empty()) {
      // Cluster times onto a coarse grid so ties (and their FIFO order)
      // are actually exercised, not just distinct doubles.
      const SimTime t = static_cast<SimTime>(rng.uniform_int(0, 5000)) * 0.25;
      alive.push_back(q.push(t, [] {}));
      ref.emplace(t, alive.back());
    } else if (dice < 0.8 && !alive.empty()) {
      const std::size_t pick = rng.uniform_int(0, alive.size() - 1);
      const EventId id = alive[pick];
      alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(pick));
      q.cancel(id);
      // The reference has no O(1) cancel; rebuild without the id.
      std::vector<Ref> keep;
      while (!ref.empty()) {
        if (ref.top().second != id) keep.push_back(ref.top());
        ref.pop();
      }
      for (const Ref& r : keep) ref.push(r);
    } else {
      const auto ev = q.pop();
      drained_q.emplace_back(ev.time, ev.id);
      drained_ref.push_back(ref.top());
      ref.pop();
      std::erase(alive, ev.id);
    }
    ASSERT_EQ(q.pending(), ref.size());
  }
  while (!q.empty()) {
    const auto ev = q.pop();
    drained_q.emplace_back(ev.time, ev.id);
    drained_ref.push_back(ref.top());
    ref.pop();
  }
  ASSERT_EQ(drained_q.size(), drained_ref.size());
  for (std::size_t i = 0; i < drained_q.size(); ++i) {
    ASSERT_EQ(drained_q[i].first, drained_ref[i].first) << "at pop " << i;
    ASSERT_EQ(drained_q[i].second, drained_ref[i].second) << "at pop " << i;
  }
}

}  // namespace
}  // namespace osap
