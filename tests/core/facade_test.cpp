// The libosap facade (src/core/osap.hpp) must be a sufficient public
// surface: a downstream consumer includes it alone and drives a whole
// simulated cluster through the re-exported entry points. This is the
// contract the osapd sweep harness builds on.
#include "core/osap.hpp"

#include <gtest/gtest.h>

namespace osap::core {
namespace {

TEST(Facade, ReExportsTheEntryPoints) {
  static_assert(std::is_same_v<osap::core::Cluster, osap::Cluster>);
  static_assert(std::is_same_v<osap::core::ClusterConfig, osap::ClusterConfig>);
  static_assert(std::is_same_v<osap::core::Simulation, osap::Simulation>);
}

TEST(Facade, DrivesAClusterThroughTheFacadeAlone) {
  ClusterConfig cfg;
  cfg.num_nodes = 1;
  Cluster cluster(cfg);
  Simulation& sim = cluster.sim();
  EXPECT_EQ(sim.now(), 0.0);
  // An idle cluster heartbeats forever, so bound the run; a few virtual
  // seconds of bootstrap traffic is plenty to witness determinism.
  cluster.run_until(10.0);
  EXPECT_EQ(sim.now(), 10.0);
  Cluster again(cfg);
  again.run_until(10.0);
  EXPECT_EQ(cluster.sim().trace_digest(), again.sim().trace_digest());
}

}  // namespace
}  // namespace osap::core
