// The descriptor-driven run facade (src/core/run.hpp) is the contract
// the osapd sweep harness stands on: canonical descriptor texts are
// unique per configuration, runs are deterministic and report failure
// in the record instead of throwing, and the harness tick hook is
// passive — it can observe and abort, never perturb the digest.
#include "core/run.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"
#include "workload/two_job.hpp"

namespace osap::core {
namespace {

// Big enough for the event loop to cross the 2048-event tick stride;
// the two-job workload finishes in ~700 events and never ticks.
constexpr const char* kTickableCell = "workload=trace;jobs=32;nodes=16;seed=7";

TEST(RunDescriptor, KeysStaySortedAndUnique) {
  RunDescriptor d;
  d.set("r", "0.3");
  d.set("primitive", "kill");
  d.set("r", "0.7");  // replace, not append
  EXPECT_EQ(d.canonical(), "primitive=kill;r=0.7");
  EXPECT_EQ(d.get("r", ""), "0.7");
  EXPECT_EQ(d.find("absent"), nullptr);

  // parse() accepts both separators and round-trips the canonical text.
  const RunDescriptor parsed = RunDescriptor::parse("r=0.7,primitive=kill");
  EXPECT_EQ(parsed.canonical(), d.canonical());
  EXPECT_EQ(parsed.digest(), d.digest());
  EXPECT_THROW((void)RunDescriptor::parse("no-equals-sign"), SimError);
}

TEST(RunDescriptor, DigestHexIsSixteenLowercaseDigits) {
  const RunDescriptor d = RunDescriptor::parse("primitive=susp");
  const std::string hex = d.digest_hex();
  ASSERT_EQ(hex.size(), 16u);
  for (const char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << hex;
  }
}

TEST(Normalize, MaterializesEveryTwoJobDefault) {
  const RunDescriptor d = normalize_descriptor(RunDescriptor{});
  EXPECT_EQ(d.canonical(),
            "jitter=0.02;primitive=susp;r=0.5;seed=1;th_state=0;tl_state=0;workload=two_job");
}

TEST(Normalize, SpellingDefaultsOutDoesNotChangeTheDigest) {
  // The cache is keyed by the config digest, so two spellings of one
  // cell must collapse to one canonical text.
  const RunDescriptor terse = normalize_descriptor(RunDescriptor::parse("primitive=kill"));
  const RunDescriptor spelled = normalize_descriptor(RunDescriptor::parse(
      "workload=two_job;primitive=kill;r=0.5;seed=1;tl_state=0;th_state=0;jitter=0.02"));
  EXPECT_EQ(terse.canonical(), spelled.canonical());
  EXPECT_EQ(terse.digest(), spelled.digest());
}

TEST(Normalize, RejectsUnknownWorkloadAndMiskeyedAxes) {
  EXPECT_THROW((void)normalize_descriptor(RunDescriptor::parse("workload=nope")), SimError);
  // A typoed axis must fail loudly, not silently run the default cell.
  EXPECT_THROW((void)normalize_descriptor(RunDescriptor::parse("primitve=kill")), SimError);
  EXPECT_THROW((void)normalize_descriptor(RunDescriptor::parse("workload=trace;jitter=0.1")),
               SimError);
}

TEST(Normalize, FaultWorkerIsDigestVisibleOnEveryWorkload) {
  // The osapd pool's fault-injection key rides through normalization so
  // faulted cells never alias their clean twins in the cache.
  const RunDescriptor clean = normalize_descriptor(RunDescriptor{});
  const RunDescriptor faulted =
      normalize_descriptor(RunDescriptor::parse("fault_worker=exit_always"));
  EXPECT_NE(clean.digest(), faulted.digest());
}

TEST(RunFacade, MatchesTheDirectTwoJobRun) {
  const ResultRecord rec =
      run_descriptor(RunDescriptor::parse("primitive=kill;r=0.3;seed=5"));
  ASSERT_TRUE(rec.ok) << rec.error;

  TwoJobParams params;
  params.primitive = PreemptPrimitive::Kill;
  params.progress_at_launch = 0.3;
  params.seed = 5;
  const TwoJobResult direct = run_two_job(params);
  EXPECT_EQ(rec.sojourn_th, direct.sojourn_th);
  EXPECT_EQ(rec.sojourn_tl, direct.sojourn_tl);
  EXPECT_EQ(rec.makespan, direct.makespan);
  EXPECT_EQ(rec.tl_swapped_out_mib, to_mib(direct.tl_swapped_out));
  EXPECT_EQ(rec.jobs, 2);
  EXPECT_GT(rec.events, 0u);
  EXPECT_NE(rec.trace_digest, 0u);
  EXPECT_FALSE(rec.counters.empty());
}

TEST(RunFacade, FailuresAreRecordedNotThrown) {
  // A sweep must survive a bad cell: errors land in the record.
  const ResultRecord rec = run_descriptor(RunDescriptor::parse("workload=nope"));
  EXPECT_FALSE(rec.ok);
  EXPECT_NE(rec.error.find("unknown workload"), std::string::npos) << rec.error;

  const ResultRecord miskeyed = run_descriptor(RunDescriptor::parse("bogus=1"));
  EXPECT_FALSE(miskeyed.ok);
  EXPECT_NE(miskeyed.error.find("not understood"), std::string::npos) << miskeyed.error;
}

TEST(RunFacade, TraceWorkloadReplaysBitIdentically) {
  const RunDescriptor d = RunDescriptor::parse("workload=trace;jobs=8;seed=7");
  const ResultRecord a = run_descriptor(d);
  const ResultRecord b = run_descriptor(d);
  ASSERT_TRUE(a.ok) << a.error;
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.sojourn_th, b.sojourn_th);
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(RunFacade, TickHookIsPassive) {
  const RunDescriptor d = RunDescriptor::parse(kTickableCell);
  const ResultRecord plain = run_descriptor(d);
  ASSERT_TRUE(plain.ok) << plain.error;

  int calls = 0;
  RunOptions opts;
  opts.tick = [&calls]() { ++calls; };
  const ResultRecord ticked = run_descriptor(d, opts);
  ASSERT_TRUE(ticked.ok) << ticked.error;
  EXPECT_GT(calls, 0);  // the cell really is big enough to tick
  // The hook observed the run without perturbing it.
  EXPECT_EQ(ticked.trace_digest, plain.trace_digest);
  EXPECT_EQ(ticked.events, plain.events);
}

TEST(RunFacade, TickAbortBecomesAFailedRecord) {
  // The osapd RSS watchdog aborts by throwing from the tick; the reason
  // must surface in the record, not escape as an exception.
  RunOptions opts;
  opts.tick = []() { throw SimError("watchdog says stop"); };
  const ResultRecord rec = run_descriptor(RunDescriptor::parse(kTickableCell), opts);
  EXPECT_FALSE(rec.ok);
  EXPECT_NE(rec.error.find("watchdog says stop"), std::string::npos) << rec.error;
  EXPECT_NE(rec.config_digest, 0u);  // identity is stamped before the run
}

}  // namespace
}  // namespace osap::core
