// Speculative execution (docs/SPECULATION.md).
//
// These tests drive the backup-attempt race end to end: the straggler
// detector estimating per-attempt completion times from heartbeat
// progress, copy launches onto leftover slots, and the first-finisher-
// wins resolution killing the loser budget-free through the attempt-only
// kill machinery. The composition cases are the interesting ones — a
// SIGTSTP-suspended or checkpoint-parked original as the speculation
// target, a copy (or original) whose tracker dies mid-race, and the
// MapOutputLost re-execution path running with the detector live.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "fault/injector.hpp"
#include "sched/dummy.hpp"
#include "workload/profiles.hpp"

namespace osap {
namespace {

using fault::FaultInjector;
using fault::parse_fault_plan;

/// Count emitted cluster events by type (the tests' view of the race).
struct EventCounts {
  explicit EventCounts(JobTracker& jt) {
    jt.add_event_hook([this](const ClusterEvent& e) { ++counts[static_cast<int>(e.type)]; });
  }
  [[nodiscard]] int of(ClusterEventType type) const {
    const auto it = counts.find(static_cast<int>(type));
    return it == counts.end() ? 0 : it->second;
  }
  std::map<int, int> counts;
};

/// N single-map-slot workers with speculation armed. The detector's
/// defaults (slowness 1.5, 15 s minimum runtime, cap 1) are kept unless a
/// test overrides them.
ClusterConfig spec_cluster(int nodes) {
  ClusterConfig cfg = paper_cluster();
  cfg.num_nodes = nodes;
  cfg.hadoop.speculative_execution = true;
  return cfg;
}

/// Two ~77 s mappers on their own nodes; the test then freezes task 0 so
/// its ETA blows past the job mean while task 1 supplies the baseline.
JobSpec two_map_job(Cluster& cluster, const std::string& name) {
  JobSpec job;
  job.name = name;
  TaskSpec straggler = light_map_task();
  straggler.preferred_node = cluster.node(0);
  TaskSpec baseline = light_map_task();
  baseline.preferred_node = cluster.node(1);
  job.tasks.push_back(straggler);
  job.tasks.push_back(baseline);
  return job;
}

/// A ~307 s mapper: the organic straggler for original-vs-copy races.
TaskSpec big_map_task() { return light_map_task(2 * GiB); }

/// Let in-flight kill acks land after Cluster::run() stopped at
/// all-jobs-done (the loser's cleanup outlives the job by a heartbeat).
void drain(Cluster& cluster, Duration grace = seconds(30)) {
  cluster.run_until(cluster.sim().now() + grace);
}

// --- detector gating --------------------------------------------------------

TEST(Speculation, OffByDefaultEvenWithObviousStraggler) {
  ClusterConfig cfg = paper_cluster();
  cfg.num_nodes = 3;
  ASSERT_FALSE(cfg.hadoop.speculative_execution);
  Cluster cluster(cfg);
  EventCounts events(cluster.job_tracker());
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));
  ds.submit_at(0.05, two_map_job(cluster, "race"));
  ds.at_progress("race", 0, 0.3,
                 [&ds] { ds.preempt("race", 0, PreemptPrimitive::Suspend); });
  cluster.run_until(250.0);

  EXPECT_EQ(events.of(ClusterEventType::TaskSpeculated), 0);
  EXPECT_EQ(cluster.job_tracker().task(ds.task_of("race", 0)).state, TaskState::Suspended);
}

TEST(Speculation, SingleTaskJobNeverSpeculates) {
  // With one candidate the job mean IS the task's own estimate, so the
  // slowness threshold can never trip — no matter how stuck the task is.
  Cluster cluster(spec_cluster(2));
  EventCounts events(cluster.job_tracker());
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));
  TaskSpec solo = light_map_task();
  solo.preferred_node = cluster.node(0);
  ds.submit_at(0.05, single_task_job("solo", 0, solo));
  ds.at_progress("solo", 0, 0.3, [&ds] { ds.preempt("solo", 0, PreemptPrimitive::Suspend); });
  cluster.run_until(300.0);

  EXPECT_EQ(events.of(ClusterEventType::TaskSpeculated), 0);
  EXPECT_FALSE(cluster.job_tracker().task(ds.task_of("solo", 0)).speculating());
}

// --- tentpole: the race, both outcomes --------------------------------------

// A SIGTSTP-suspended original is a legitimate speculation target: its
// progress freezes while elapsed time grows, so its ETA organically blows
// past the job mean. The copy wins (nothing ever resumes the original)
// and the parked original is killed budget-free.
TEST(Speculation, SuspendedOriginalLosesRaceToCopy) {
  Cluster cluster(spec_cluster(3));
  EventCounts events(cluster.job_tracker());
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));
  ds.submit_at(0.05, two_map_job(cluster, "race"));
  ds.at_progress("race", 0, 0.3,
                 [&ds] { ds.preempt("race", 0, PreemptPrimitive::Suspend); });
  cluster.run();
  drain(cluster);

  const JobTracker& jt = cluster.job_tracker();
  const Task& task = jt.task(ds.task_of("race", 0));
  EXPECT_EQ(jt.job(ds.job_of("race")).state, JobState::Succeeded);
  EXPECT_EQ(task.state, TaskState::Succeeded);
  EXPECT_EQ(task.completed_node, cluster.node(2));  // the copy's output counts
  EXPECT_EQ(task.attempts_started, 2);
  EXPECT_EQ(task.attempts_speculative, 1);
  EXPECT_EQ(task.attempts_failed, 0);  // race losers never charge the budget
  EXPECT_FALSE(task.speculating());
  EXPECT_EQ(events.of(ClusterEventType::TaskSpeculated), 1);
  EXPECT_EQ(events.of(ClusterEventType::SpeculationWon), 1);
  EXPECT_EQ(events.of(ClusterEventType::SpeculationKilled), 1);  // the suspended original
  EXPECT_EQ(events.of(ClusterEventType::SpeculationLost), 0);
  EXPECT_EQ(events.of(ClusterEventType::TaskFailed), 0);
}

// A checkpoint-parked (Natjam) original has no process to kill: when the
// copy wins, the parked checkpoint is discarded in place.
TEST(Speculation, CheckpointParkedOriginalLosesRaceToCopy) {
  Cluster cluster(spec_cluster(3));
  EventCounts events(cluster.job_tracker());
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));
  ds.submit_at(0.05, two_map_job(cluster, "race"));
  ds.at_progress("race", 0, 0.3,
                 [&ds] { ds.preempt("race", 0, PreemptPrimitive::NatjamCheckpoint); });
  cluster.run();
  drain(cluster);

  const JobTracker& jt = cluster.job_tracker();
  const Task& task = jt.task(ds.task_of("race", 0));
  EXPECT_EQ(jt.job(ds.job_of("race")).state, JobState::Succeeded);
  EXPECT_EQ(task.state, TaskState::Succeeded);
  EXPECT_EQ(task.completed_node, cluster.node(2));
  EXPECT_FALSE(task.checkpointed);
  EXPECT_EQ(task.spec.checkpoint_progress, 0.0);  // parked checkpoint discarded
  EXPECT_EQ(events.of(ClusterEventType::SpeculationWon), 1);
  EXPECT_EQ(events.of(ClusterEventType::SpeculationKilled), 0);  // nothing to kill
  EXPECT_EQ(events.of(ClusterEventType::TaskFailed), 0);
}

// The organically slow original (4x the input of its sibling) outruns its
// late-started copy: first finisher wins, the copy is killed budget-free.
TEST(Speculation, OriginalWinsRaceAndCopyIsKilled) {
  Cluster cluster(spec_cluster(3));
  EventCounts events(cluster.job_tracker());
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));
  JobSpec job;
  job.name = "skew";
  TaskSpec big = big_map_task();
  big.preferred_node = cluster.node(0);
  TaskSpec small = light_map_task();
  small.preferred_node = cluster.node(1);
  job.tasks.push_back(big);
  job.tasks.push_back(small);
  ds.submit_at(0.05, job);
  cluster.run();
  drain(cluster);

  const JobTracker& jt = cluster.job_tracker();
  const Task& task = jt.task(ds.task_of("skew", 0));
  EXPECT_EQ(jt.job(ds.job_of("skew")).state, JobState::Succeeded);
  EXPECT_EQ(task.state, TaskState::Succeeded);
  EXPECT_EQ(task.completed_node, cluster.node(0));  // the original's output counts
  EXPECT_EQ(task.attempts_started, 2);
  EXPECT_EQ(task.attempts_speculative, 1);
  EXPECT_EQ(task.attempts_failed, 0);
  EXPECT_EQ(events.of(ClusterEventType::TaskSpeculated), 1);
  EXPECT_EQ(events.of(ClusterEventType::SpeculationWon), 0);
  EXPECT_EQ(events.of(ClusterEventType::SpeculationKilled), 1);  // the losing copy
  EXPECT_EQ(events.of(ClusterEventType::TaskFailed), 0);
}

// --- composition with the failure model -------------------------------------

TEST(Speculation, CopyTrackerLostMidRaceDissolvesTheRace) {
  ClusterConfig cfg = spec_cluster(3);
  cfg.hadoop.tracker_expiry = seconds(9);
  cfg.hadoop.expiry_check_interval = seconds(1);
  Cluster cluster(cfg);
  EventCounts events(cluster.job_tracker());
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));
  JobSpec job;
  job.name = "skew";
  TaskSpec big = big_map_task();
  big.preferred_node = cluster.node(0);
  TaskSpec small = light_map_task();
  small.preferred_node = cluster.node(1);
  job.tasks.push_back(big);
  job.tasks.push_back(small);
  ds.submit_at(0.05, job);
  // The copy lands on node 2 once the big task trips the detector (~16 s);
  // the node then dies under it mid-race.
  FaultInjector injector(cluster, parse_fault_plan("crash 60 2\n"));
  cluster.run();
  drain(cluster);

  const JobTracker& jt = cluster.job_tracker();
  const Task& task = jt.task(ds.task_of("skew", 0));
  EXPECT_EQ(jt.job(ds.job_of("skew")).state, JobState::Succeeded);
  EXPECT_EQ(task.completed_node, cluster.node(0));  // the original carried on
  EXPECT_EQ(task.attempts_started, 2);
  EXPECT_EQ(task.attempts_failed, 0);  // a lost copy charges nothing
  EXPECT_FALSE(task.speculating());
  EXPECT_TRUE(jt.tracker_lost(cluster.tracker(cluster.node(2)).id()));
  EXPECT_EQ(events.of(ClusterEventType::TaskSpeculated), 1);
  EXPECT_EQ(events.of(ClusterEventType::SpeculationLost), 1);
  EXPECT_EQ(events.of(ClusterEventType::SpeculationWon), 0);
  EXPECT_EQ(events.of(ClusterEventType::TaskLost), 0);  // the primary never forfeited
}

TEST(Speculation, OriginalTrackerLostMidRacePromotesTheCopy) {
  ClusterConfig cfg = spec_cluster(3);
  cfg.hadoop.tracker_expiry = seconds(9);
  cfg.hadoop.expiry_check_interval = seconds(1);
  Cluster cluster(cfg);
  EventCounts events(cluster.job_tracker());
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));
  JobSpec job;
  job.name = "skew";
  TaskSpec big = big_map_task();
  big.preferred_node = cluster.node(0);
  TaskSpec small = light_map_task();
  small.preferred_node = cluster.node(1);
  job.tasks.push_back(big);
  job.tasks.push_back(small);
  ds.submit_at(0.05, job);
  // This time the *original's* node dies: instead of requeueing from
  // scratch (PR 4's rule for a lost attempt), the racing copy is adopted.
  FaultInjector injector(cluster, parse_fault_plan("crash 60 0\n"));
  cluster.run();
  drain(cluster);

  const JobTracker& jt = cluster.job_tracker();
  const Task& task = jt.task(ds.task_of("skew", 0));
  EXPECT_EQ(jt.job(ds.job_of("skew")).state, JobState::Succeeded);
  EXPECT_EQ(task.state, TaskState::Succeeded);
  EXPECT_EQ(task.completed_node, cluster.node(2));  // finished as the promoted copy
  EXPECT_EQ(task.attempts_started, 2);              // primary + backup, no third launch
  EXPECT_EQ(task.attempts_failed, 0);
  EXPECT_FALSE(task.speculating());
  EXPECT_EQ(events.of(ClusterEventType::SpeculationPromoted), 1);
  EXPECT_EQ(events.of(ClusterEventType::TaskLost), 1);  // the forfeited original
  EXPECT_EQ(events.of(ClusterEventType::TaskSpeculated), 1);
  EXPECT_EQ(events.of(ClusterEventType::SpeculationWon), 0);  // promotion, not a win
}

// PR 4's completed-map re-execution (MapOutputLost) must compose with a
// live detector: the rolled-back map restarts clean — no stale backup
// binding, no double-spawned copies — and the shuffling reduce is still
// released by the re-executed map.
TEST(Speculation, LostMapOutputReexecutionStartsClean) {
  ClusterConfig cfg = spec_cluster(2);
  cfg.hadoop.tracker_expiry = seconds(9);
  cfg.hadoop.expiry_check_interval = seconds(1);
  Cluster cluster(cfg);
  EventCounts events(cluster.job_tracker());
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));
  JobSpec job;
  job.name = "mr";
  TaskSpec map_a = light_map_task(256 * MiB);
  map_a.preferred_node = cluster.node(0);
  TaskSpec map_b = light_map_task(512 * MiB);
  map_b.preferred_node = cluster.node(1);
  TaskSpec reduce;
  reduce.type = TaskType::Reduce;
  reduce.shuffle_bytes = 128 * MiB;
  reduce.sort_cpu_seconds = 5.0;
  reduce.input_bytes = 0;
  reduce.output_bytes = 64 * MiB;
  reduce.framework_memory = 160 * MiB;
  reduce.preferred_node = cluster.node(1);
  job.tasks.push_back(map_a);
  job.tasks.push_back(map_b);
  job.tasks.push_back(reduce);
  ds.submit_at(0.05, job);
  FaultInjector injector(cluster, parse_fault_plan("crash 45 0\n"));
  cluster.run();
  drain(cluster);

  const JobTracker& jt = cluster.job_tracker();
  EXPECT_EQ(jt.job(ds.job_of("mr")).state, JobState::Succeeded);
  EXPECT_EQ(events.of(ClusterEventType::MapOutputLost), 1);
  const Task& rerun = jt.task(ds.task_of("mr", 0));
  EXPECT_EQ(rerun.attempts_started, 2);  // once on node 0, re-run on node 1
  EXPECT_EQ(rerun.attempts_speculative, 0);
  EXPECT_EQ(rerun.completed_node, cluster.node(1));
  EXPECT_FALSE(rerun.speculating());
  EXPECT_FALSE(jt.task(ds.task_of("mr", 1)).speculating());
  EXPECT_FALSE(jt.task(ds.task_of("mr", 2)).speculating());
  EXPECT_EQ(jt.task(ds.task_of("mr", 2)).state, TaskState::Succeeded);
}

// --- the backup-attempt budget ----------------------------------------------

TEST(Speculation, CapBoundsConcurrentCopiesPerJob) {
  // Two equally slow stragglers qualify at the same sweep; the per-job cap
  // decides how many actually get copies.
  const auto speculated_with_cap = [](int cap) {
    ClusterConfig cfg = paper_cluster();
    cfg.num_nodes = 5;
    cfg.hadoop.map_slots = 2;  // leftover slots everywhere
    cfg.hadoop.speculative_execution = true;
    cfg.hadoop.speculative_cap = cap;
    Cluster cluster(cfg);
    EventCounts events(cluster.job_tracker());
    auto sched = std::make_unique<DummyScheduler>(cluster);
    DummyScheduler& ds = *sched;
    cluster.set_scheduler(std::move(sched));
    JobSpec job;
    job.name = "pair";
    for (int i = 0; i < 2; ++i) {
      TaskSpec big = big_map_task();
      big.preferred_node = cluster.node(i);
      job.tasks.push_back(big);
    }
    for (int i = 0; i < 2; ++i) {
      TaskSpec small = light_map_task();
      small.preferred_node = cluster.node(2 + i);
      job.tasks.push_back(small);
    }
    ds.submit_at(0.05, job);
    cluster.run();
    drain(cluster);
    EXPECT_EQ(cluster.job_tracker().job(ds.job_of("pair")).state, JobState::Succeeded);
    return events.of(ClusterEventType::TaskSpeculated);
  };

  EXPECT_EQ(speculated_with_cap(1), 1);  // budget exhausted after one copy
  EXPECT_EQ(speculated_with_cap(2), 2);  // both stragglers race
}

// --- scheduler-driven copy preemption ----------------------------------------

TEST(Speculation, KillSpeculativeReapsOnlyTheCopy) {
  Cluster cluster(spec_cluster(3));
  EventCounts events(cluster.job_tracker());
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));
  ds.submit_at(0.05, two_map_job(cluster, "race"));
  ds.at_progress("race", 0, 0.3,
                 [&ds] { ds.preempt("race", 0, PreemptPrimitive::Suspend); });
  // The copy launches around t=45; preempt it at 60, then resume the
  // original, which finishes first from 30% progress.
  bool killed = false;
  cluster.sim().at(60.0, [&ds, &killed] { killed = ds.kill_speculative("race", 0); });
  cluster.sim().at(62.0, [&ds] { ds.restore("race", 0, PreemptPrimitive::Suspend); });
  cluster.run();
  drain(cluster);

  const JobTracker& jt = cluster.job_tracker();
  const Task& task = jt.task(ds.task_of("race", 0));
  EXPECT_TRUE(killed);
  EXPECT_EQ(task.state, TaskState::Succeeded);
  EXPECT_EQ(task.completed_node, cluster.node(0));  // the original finished it
  EXPECT_EQ(task.attempts_failed, 0);
  // The detector may re-speculate after the manual kill (the original's
  // rate stats stay poisoned by the suspension), but every copy must end
  // killed — none wins, none is lost.
  EXPECT_GE(events.of(ClusterEventType::TaskSpeculated), 1);
  EXPECT_EQ(events.of(ClusterEventType::SpeculationKilled),
            events.of(ClusterEventType::TaskSpeculated));
  EXPECT_EQ(events.of(ClusterEventType::SpeculationWon), 0);
  EXPECT_EQ(events.of(ClusterEventType::SpeculationLost), 0);
}

// --- determinism of a near-tie ----------------------------------------------

// Original and copy engineered to finish within a couple of heartbeats of
// each other: whoever's Succeeded report the JobTracker applies first
// wins. The winner and the whole event stream must replay bit-identically.
TEST(Speculation, NearTieRaceResolvesDeterministically) {
  struct Outcome {
    std::uint64_t digest;
    NodeId winner;
    int won, killed;
  };
  const auto run_once = [] {
    Cluster cluster(spec_cluster(3));
    EventCounts events(cluster.job_tracker());
    auto sched = std::make_unique<DummyScheduler>(cluster);
    DummyScheduler& ds = *sched;
    cluster.set_scheduler(std::move(sched));
    ds.submit_at(0.05, two_map_job(cluster, "race"));
    ds.at_progress("race", 0, 0.3,
                   [&ds] { ds.preempt("race", 0, PreemptPrimitive::Suspend); });
    // Copy launches ~45 s and would finish ~123 s; resuming the original
    // at 65 s leaves it ~54 s of work — both finish around t=121..123.
    cluster.sim().at(65.0, [&ds] { ds.restore("race", 0, PreemptPrimitive::Suspend); });
    cluster.run();
    drain(cluster);
    const Task& task = cluster.job_tracker().task(ds.task_of("race", 0));
    EXPECT_EQ(task.state, TaskState::Succeeded);
    return Outcome{cluster.trace_digest(), task.completed_node,
                   events.of(ClusterEventType::SpeculationWon),
                   events.of(ClusterEventType::SpeculationKilled)};
  };

  const Outcome first = run_once();
  const Outcome second = run_once();
  EXPECT_EQ(first.digest, second.digest) << "near-tie race is not reproducible";
  EXPECT_EQ(first.winner, second.winner);
  EXPECT_EQ(first.won, second.won);
  EXPECT_EQ(first.killed, second.killed);
}

// --- observability -----------------------------------------------------------

TEST(Speculation, CountersAndScanLandInObservabilityJson) {
  const std::string counters_path = "speculation_counters.json";
  const std::string trace_path = "speculation_trace.json";
  ClusterConfig cfg = spec_cluster(4);
  cfg.trace.enabled = true;
  cfg.trace.counters_file = counters_path;
  cfg.trace.trace_file = trace_path;
  Cluster cluster(cfg);
  auto sched = std::make_unique<DummyScheduler>(cluster);
  DummyScheduler& ds = *sched;
  cluster.set_scheduler(std::move(sched));
  ds.submit_at(0.05, two_map_job(cluster, "race"));
  ds.at_progress("race", 0, 0.3,
                 [&ds] { ds.preempt("race", 0, PreemptPrimitive::Suspend); });
  // A long keeper job (own job => never speculated) holds the cluster
  // open past the race so the loser's kill ack reaches the counters.
  TaskSpec keeper = big_map_task();
  keeper.preferred_node = cluster.node(3);
  ds.submit_at(0.06, single_task_job("keeper", 0, keeper));
  cluster.run();

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  };
  const std::string counters = slurp(counters_path);
  EXPECT_NE(counters.find("\"speculation.launched\":1"), std::string::npos) << counters;
  EXPECT_NE(counters.find("\"speculation.won\":1"), std::string::npos);
  EXPECT_NE(counters.find("\"speculation.killed\":1"), std::string::npos);
  EXPECT_NE(counters.find("\"speculation.lost\":0"), std::string::npos);
  EXPECT_NE(counters.find("\"SpeculationScan\""), std::string::npos);
  const std::string trace = slurp(trace_path);
  EXPECT_NE(trace.find("speculate"), std::string::npos);
  std::remove(counters_path.c_str());
  std::remove(trace_path.c_str());
}

}  // namespace
}  // namespace osap
