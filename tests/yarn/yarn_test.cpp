// YARN-model tests: container leases, memory-based scheduling, and the
// suspend-vs-kill preemption semantics of §III-B applied to Hadoop 2.
#include <gtest/gtest.h>

#include "workload/profiles.hpp"
#include "yarn/yarn_cluster.hpp"

namespace osap {
namespace {

YarnClusterConfig base_config(PreemptPrimitive primitive) {
  YarnClusterConfig cfg;
  cfg.num_nodes = 1;
  cfg.os = paper_cluster().os;
  cfg.container_capacity = 2 * GiB;  // room for exactly one fat container
  cfg.primitive = primitive;
  return cfg;
}

YarnAppSpec one_task_app(const std::string& name, int priority, TaskSpec task,
                         Bytes container = 2 * GiB) {
  YarnAppSpec app;
  app.name = name;
  app.priority = priority;
  app.container_memory = container;
  task.name = name;
  app.tasks.push_back(std::move(task));
  return app;
}

TEST(Yarn, SingleAppRunsToCompletion) {
  YarnCluster cluster(base_config(PreemptPrimitive::Suspend));
  const AppId id = cluster.submit(one_task_app("solo", 0, light_map_task()));
  cluster.run();
  const YarnApp& app = cluster.rm().app(id);
  EXPECT_EQ(app.state, YarnAppState::Succeeded);
  EXPECT_GT(app.sojourn(), 70.0);
  EXPECT_LT(app.sojourn(), 90.0);
}

TEST(Yarn, LeasesBoundConcurrency) {
  YarnClusterConfig cfg = base_config(PreemptPrimitive::Wait);
  cfg.container_capacity = 2 * GiB;
  YarnCluster cluster(cfg);
  // Two 1 GiB containers fit side by side; a third waits.
  YarnAppSpec app;
  app.name = "three";
  app.container_memory = 1 * GiB;
  for (int i = 0; i < 3; ++i) app.tasks.push_back(light_map_task());
  const AppId id = cluster.submit(app);
  cluster.run_until(20.0);
  EXPECT_EQ(cluster.node_manager(cluster.node(0)).leased(), 2 * GiB);
  cluster.run();
  EXPECT_EQ(cluster.rm().app(id).state, YarnAppState::Succeeded);
}

TEST(Yarn, WaitPrimitiveMakesHighPriorityQueue) {
  YarnCluster cluster(base_config(PreemptPrimitive::Wait));
  const AppId low = cluster.submit(one_task_app("low", 0, light_map_task()));
  AppId high{};
  cluster.sim().at(20.0, [&] {
    high = cluster.submit(one_task_app("high", 10, light_map_task()));
  });
  cluster.run();
  const YarnApp& h = cluster.rm().app(high);
  EXPECT_EQ(h.state, YarnAppState::Succeeded);
  // It had to wait for the low app's container to finish (~60 s) first.
  EXPECT_GT(h.sojourn(), 120.0);
  EXPECT_EQ(cluster.rm().preemptions_issued(), 0);
  EXPECT_EQ(cluster.rm().app(low).state, YarnAppState::Succeeded);
}

TEST(Yarn, SuspendFreesTheLeaseImmediately) {
  YarnCluster cluster(base_config(PreemptPrimitive::Suspend));
  const AppId low = cluster.submit(one_task_app("low", 0, light_map_task()));
  AppId high{};
  cluster.sim().at(20.0, [&] {
    high = cluster.submit(one_task_app("high", 10, light_map_task()));
  });
  cluster.run();
  const YarnApp& h = cluster.rm().app(high);
  EXPECT_EQ(h.state, YarnAppState::Succeeded);
  // Started almost immediately: suspension released the only lease.
  EXPECT_LT(h.sojourn(), 95.0);
  EXPECT_GE(cluster.rm().preemptions_issued(), 1);
  // The low app resumed afterwards and lost nothing.
  const YarnApp& l = cluster.rm().app(low);
  EXPECT_EQ(l.state, YarnAppState::Succeeded);
  EXPECT_EQ(cluster.rm().containers_killed(), 0);
}

TEST(Yarn, KillPrimitiveRerunsTheVictim) {
  YarnCluster cluster(base_config(PreemptPrimitive::Kill));
  const AppId low = cluster.submit(one_task_app("low", 0, light_map_task()));
  AppId high{};
  cluster.sim().at(40.0, [&] {
    high = cluster.submit(one_task_app("high", 10, light_map_task()));
  });
  cluster.run();
  EXPECT_EQ(cluster.rm().app(high).state, YarnAppState::Succeeded);
  EXPECT_LT(cluster.rm().app(high).sojourn(), 95.0);
  EXPECT_GE(cluster.rm().containers_killed(), 1);
  // The low app still finishes, but its ~40 s of work were redone.
  const YarnApp& l = cluster.rm().app(low);
  EXPECT_EQ(l.state, YarnAppState::Succeeded);
  EXPECT_GT(l.sojourn(), 150.0);
}

TEST(Yarn, SuspendBeatsKillOnLowAppSojourn) {
  auto low_sojourn = [](PreemptPrimitive primitive) {
    YarnCluster cluster(base_config(primitive));
    const AppId low = cluster.submit(one_task_app("low", 0, light_map_task()));
    cluster.sim().at(40.0, [&] {
      cluster.submit(one_task_app("high", 10, light_map_task()));
    });
    cluster.run();
    return cluster.rm().app(low).sojourn();
  };
  EXPECT_LT(low_sojourn(PreemptPrimitive::Suspend), low_sojourn(PreemptPrimitive::Kill) - 20.0);
}

TEST(Yarn, SuspendedContainerMemoryIsPagedUnderPressure) {
  YarnClusterConfig cfg = base_config(PreemptPrimitive::Suspend);
  cfg.container_capacity = gib(2.5);
  YarnCluster cluster(cfg);
  const AppId low =
      cluster.submit(one_task_app("low", 0, hungry_map_task(2 * GiB), gib(2.5)));
  cluster.sim().at(40.0, [&] {
    cluster.submit(one_task_app("high", 10, hungry_map_task(2 * GiB), gib(2.5)));
  });
  cluster.run();
  EXPECT_EQ(cluster.rm().app(low).state, YarnAppState::Succeeded);
  // The suspended container's 2 GiB went through swap while the intruder
  // ran, and came back afterwards.
  Kernel& kernel = cluster.kernel(cluster.node(0));
  EXPECT_GT(kernel.disk().transferred(IoClass::SwapOut), 500 * MiB);
  EXPECT_GT(kernel.disk().transferred(IoClass::SwapIn), 400 * MiB);
}

TEST(Yarn, MultiNodeSpreadsContainers) {
  YarnClusterConfig cfg = base_config(PreemptPrimitive::Suspend);
  cfg.num_nodes = 3;
  cfg.container_capacity = 1 * GiB;
  YarnCluster cluster(cfg);
  YarnAppSpec app;
  app.name = "wide";
  app.container_memory = 1 * GiB;
  for (int i = 0; i < 3; ++i) app.tasks.push_back(light_map_task());
  const AppId id = cluster.submit(app);
  cluster.run();
  const YarnApp& done = cluster.rm().app(id);
  EXPECT_EQ(done.state, YarnAppState::Succeeded);
  EXPECT_LT(done.sojourn(), 95.0);  // all three in parallel
}

}  // namespace
}  // namespace osap
