// Spark-style executors on the substrate: cached iteration, and what each
// preemption primitive does to an executor's in-memory RDD cache.
#include <gtest/gtest.h>

#include "sched/dummy.hpp"
#include "spark/driver.hpp"
#include "workload/profiles.hpp"

namespace osap {
namespace {

struct Rig {
  Rig() {
    ClusterConfig cfg = paper_cluster();
    cfg.hadoop.map_slots = 1;
    cluster = std::make_unique<Cluster>(cfg);
    auto sched = std::make_unique<DummyScheduler>(*cluster);
    ds = sched.get();
    cluster->set_scheduler(std::move(sched));
  }
  std::unique_ptr<Cluster> cluster;
  DummyScheduler* ds = nullptr;
};

TEST(Spark, IterativeAppCachesAndIterates) {
  Rig rig;
  SparkDriver driver(*rig.cluster, iterative_app("pagerank", 512 * MiB, 1 * GiB, 3),
                     rig.cluster->node(0));
  rig.cluster->sim().at(0.05, [&] { driver.start(); });
  rig.cluster->run();
  EXPECT_TRUE(driver.done());
  EXPECT_EQ(driver.stages_completed(), 3);
  EXPECT_EQ(driver.recomputations(), 0);
  // First pass ~80 s; each cached iteration only ~25 s of CPU: the whole
  // app is far cheaper than four full passes.
  EXPECT_LT(driver.runtime(), 4 * 80.0);
  EXPECT_GT(driver.runtime(), 80.0);
}

TEST(Spark, CachedIterationsAreMuchCheaperThanRecomputation) {
  Rig uncached_rig;
  SparkAppSpec no_cache = iterative_app("nc", 512 * MiB, 0, 3);
  for (auto& stage : no_cache.stages) stage.read_from_cache = false;
  SparkDriver uncached(*uncached_rig.cluster, no_cache, uncached_rig.cluster->node(0));
  uncached_rig.cluster->sim().at(0.05, [&] { uncached.start(); });
  uncached_rig.cluster->run();

  Rig cached_rig;
  SparkDriver cached(*cached_rig.cluster, iterative_app("c", 512 * MiB, 1 * GiB, 3),
                     cached_rig.cluster->node(0));
  cached_rig.cluster->sim().at(0.05, [&] { cached.start(); });
  cached_rig.cluster->run();

  EXPECT_LT(cached.runtime(), uncached.runtime() * 0.7);
}

TEST(Spark, SuspendPreservesTheCache) {
  Rig rig;
  SparkDriver driver(*rig.cluster, iterative_app("app", 512 * MiB, gib(1.5), 3),
                     rig.cluster->node(0));
  rig.cluster->sim().at(0.05, [&] { driver.start(); });
  // Park the whole app during its second stage, displace it with a
  // memory-hungry job, then bring it back.
  rig.cluster->sim().at(95.0, [&] { driver.preempt(PreemptPrimitive::Suspend); });
  rig.cluster->sim().at(96.0, [&] {
    rig.cluster->submit(single_task_job("intruder", 10, hungry_map_task(2 * GiB)));
  });
  rig.ds->on_complete("intruder", [&] { driver.restore(PreemptPrimitive::Suspend); });
  rig.cluster->run();
  EXPECT_TRUE(driver.done());
  EXPECT_EQ(driver.recomputations(), 0);  // cache survived
  EXPECT_TRUE(driver.cache_valid() || driver.done());
  // The intruder's pressure pushed the parked cache to swap.
  EXPECT_GT(driver.cache_swapped_out(), 300 * MiB);
}

TEST(Spark, KillDestroysTheCacheAndForcesRecomputation) {
  Rig rig;
  SparkDriver driver(*rig.cluster, iterative_app("app", 512 * MiB, 1 * GiB, 3),
                     rig.cluster->node(0));
  rig.cluster->sim().at(0.05, [&] { driver.start(); });
  rig.cluster->sim().at(95.0, [&] { driver.preempt(PreemptPrimitive::Kill); });
  rig.cluster->sim().at(96.0, [&] {
    rig.cluster->submit(single_task_job("intruder", 10, light_map_task()));
  });
  rig.ds->on_complete("intruder", [&] { driver.restore(PreemptPrimitive::Kill); });
  rig.cluster->run();
  EXPECT_TRUE(driver.done());
  EXPECT_GE(driver.recomputations(), 1);  // lost the cache
}

TEST(Spark, SuspendBeatsKillOnAppRuntimeUnderPreemption) {
  auto run_with = [](PreemptPrimitive primitive) {
    Rig rig;
    SparkDriver driver(*rig.cluster, iterative_app("app", 512 * MiB, 1 * GiB, 3),
                       rig.cluster->node(0));
    rig.cluster->sim().at(0.05, [&] { driver.start(); });
    rig.cluster->sim().at(95.0, [&, primitive] { driver.preempt(primitive); });
    rig.cluster->sim().at(96.0, [&] {
      rig.cluster->submit(single_task_job("intruder", 10, light_map_task()));
    });
    rig.ds->on_complete("intruder",
                        [&, primitive] { driver.restore(primitive); });
    rig.cluster->run();
    return driver.runtime();
  };
  const Duration susp = run_with(PreemptPrimitive::Suspend);
  const Duration kill = run_with(PreemptPrimitive::Kill);
  EXPECT_LT(susp, kill);
}

}  // namespace
}  // namespace osap
