// CRIU-style migration of suspended tasks (§V-A future work).
#include "preempt/migration.hpp"

#include <gtest/gtest.h>

#include "sched/dummy.hpp"
#include "workload/profiles.hpp"

namespace osap {
namespace {

struct Rig {
  Rig() {
    ClusterConfig cfg = paper_cluster();
    cfg.num_nodes = 2;
    cluster = std::make_unique<Cluster>(cfg);
    // Infinite locality delay keeps pinned tasks pinned.
    auto sched = std::make_unique<DummyScheduler>(*cluster, seconds(1e9));
    ds = sched.get();
    cluster->set_scheduler(std::move(sched));
  }
  std::unique_ptr<Cluster> cluster;
  DummyScheduler* ds = nullptr;
};

TEST(Migration, MovesSuspendedTaskToIdleNodeWithoutLosingWork) {
  Rig rig;
  // tl runs on node 0 (unpinned tasks land there first), gets suspended at
  // 50%, and node 0 stays busy with pinned high-priority fillers.
  TaskSpec tl = light_map_task();
  rig.ds->submit_at(0.05, single_task_job("tl", 0, tl));
  rig.ds->at_progress("tl", 0, 0.5, [&] {
    for (int i = 0; i < 2; ++i) {
      TaskSpec high = light_map_task();
      high.preferred_node = rig.cluster->node(0);
      rig.cluster->submit(single_task_job("high" + std::to_string(i), 10, high));
    }
    rig.ds->preempt("tl", 0, PreemptPrimitive::Suspend);
  });

  auto migrator = std::make_shared<TaskMigrator>(*rig.cluster);
  auto migrated = std::make_shared<bool>(false);
  rig.cluster->sim().at(60.0, [&, migrator, migrated] {
    EXPECT_TRUE(migrator->migrate(rig.ds->task_of("tl", 0), rig.cluster->node(1),
                                  [migrated](bool ok) { *migrated = ok; }));
  });
  rig.cluster->run();

  EXPECT_TRUE(*migrated);
  EXPECT_EQ(migrator->migrations(), 1);
  EXPECT_GT(migrator->bytes_moved(), 100 * MiB);
  const JobTracker& jt = rig.cluster->job_tracker();
  const Job& tl_job = jt.job(rig.ds->job_of("tl"));
  EXPECT_EQ(tl_job.state, JobState::Succeeded);
  const Task& task = jt.task(tl_job.tasks[0]);
  EXPECT_EQ(task.attempts_started, 2);  // original + restored attempt
  // Work preserved: the restored attempt fast-forwarded past the first
  // half, so tl finished long before the fillers freed node 0 (~205 s)
  // plus a full rerun would allow.
  EXPECT_LT(tl_job.completed_at, 170.0);
  // And it genuinely ran on node 1: meanwhile node 0 was busy.
  EXPECT_EQ(task.spec.preferred_node, rig.cluster->node(1));
}

TEST(Migration, RejectsRunningOrUnknownTasks) {
  Rig rig;
  TaskSpec tl = light_map_task();
  rig.ds->submit_at(0.05, single_task_job("tl", 0, tl));
  auto migrator = std::make_shared<TaskMigrator>(*rig.cluster);
  rig.cluster->sim().at(20.0, [&, migrator] {
    // Running, not suspended: refuse.
    EXPECT_FALSE(migrator->migrate(rig.ds->task_of("tl", 0), rig.cluster->node(1)));
  });
  rig.cluster->run();
  EXPECT_EQ(migrator->migrations(), 0);
}

TEST(Migration, SameNodeMigrationIsRefused) {
  Rig rig;
  TaskSpec tl = light_map_task();
  rig.ds->submit_at(0.05, single_task_job("tl", 0, tl));
  rig.ds->at_progress("tl", 0, 0.4,
                      [&] { rig.ds->preempt("tl", 0, PreemptPrimitive::Suspend); });
  auto migrator = std::make_shared<TaskMigrator>(*rig.cluster);
  rig.cluster->sim().at(50.0, [&, migrator] {
    EXPECT_FALSE(migrator->migrate(rig.ds->task_of("tl", 0), rig.cluster->node(0)));
    rig.ds->restore("tl", 0, PreemptPrimitive::Suspend);
  });
  rig.cluster->run();
  EXPECT_EQ(rig.cluster->job_tracker().job(rig.ds->job_of("tl")).state, JobState::Succeeded);
}

TEST(Migration, StatefulTaskShipsItsMemoryImage) {
  Rig rig;
  TaskSpec tl = hungry_map_task(1 * GiB);
  rig.ds->submit_at(0.05, single_task_job("tl", 0, tl));
  rig.ds->at_progress("tl", 0, 0.5, [&] {
    for (int i = 0; i < 2; ++i) {
      TaskSpec high = light_map_task();
      high.preferred_node = rig.cluster->node(0);
      rig.cluster->submit(single_task_job("high" + std::to_string(i), 10, high));
    }
    rig.ds->preempt("tl", 0, PreemptPrimitive::Suspend);
  });
  auto migrator = std::make_shared<TaskMigrator>(*rig.cluster);
  rig.cluster->sim().at(60.0, [&, migrator] {
    migrator->migrate(rig.ds->task_of("tl", 0), rig.cluster->node(1));
  });
  rig.cluster->run();
  // The image includes the 1 GiB of state.
  EXPECT_GT(migrator->bytes_moved(), 1 * GiB);
  EXPECT_EQ(rig.cluster->job_tracker().job(rig.ds->job_of("tl")).state, JobState::Succeeded);
}

}  // namespace
}  // namespace osap
