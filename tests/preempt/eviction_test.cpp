#include "preempt/eviction.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "common/error.hpp"
#include "preempt/primitive.hpp"

namespace osap {
namespace {

std::vector<EvictionCandidate> sample() {
  return {
      {TaskId{1}, 0.9, 512 * MiB, 10.0},
      {TaskId{2}, 0.2, 128 * MiB, 30.0},
      {TaskId{3}, 0.5, 2 * GiB, 20.0},
  };
}

TEST(Eviction, MostProgressPicksClosestToCompletion) {
  EXPECT_EQ(pick_victim(EvictionPolicy::MostProgress, sample()), TaskId{1});
}

TEST(Eviction, LeastProgressPicksFreshest) {
  EXPECT_EQ(pick_victim(EvictionPolicy::LeastProgress, sample()), TaskId{2});
}

TEST(Eviction, SmallestMemoryMinimizesPagingCost) {
  EXPECT_EQ(pick_victim(EvictionPolicy::SmallestMemory, sample()), TaskId{2});
}

TEST(Eviction, LastLaunchedPicksYoungest) {
  EXPECT_EQ(pick_victim(EvictionPolicy::LastLaunched, sample()), TaskId{2});
}

TEST(Eviction, EmptyCandidatesGiveInvalidId) {
  EXPECT_FALSE(pick_victim(EvictionPolicy::MostProgress, {}).valid());
}

TEST(Eviction, TieBreaksOnLowerTaskId) {
  std::vector<EvictionCandidate> ties = {
      {TaskId{7}, 0.5, 1 * GiB, 5.0},
      {TaskId{3}, 0.5, 1 * GiB, 5.0},
  };
  EXPECT_EQ(pick_victim(EvictionPolicy::MostProgress, ties), TaskId{3});
  EXPECT_EQ(pick_victim(EvictionPolicy::SmallestMemory, ties), TaskId{3});
}

// pick_victim claims a strict total order (policy key, then task id).
// That makes the choice a function of the candidate *set*, not the
// vector ordering collect_candidates happened to produce — the property
// the determinism digests lean on. Pin it: every rotation and the
// reversal of a tie-heavy pool must elect the same victim.
TEST(Eviction, VictimIsInvariantUnderCandidatePermutation) {
  const std::vector<EvictionCandidate> pool = {
      {TaskId{9}, 0.5, 1 * GiB, 5.0},  // ties with 4 and 12 on every key
      {TaskId{4}, 0.5, 1 * GiB, 5.0},
      {TaskId{12}, 0.5, 1 * GiB, 5.0},
      {TaskId{2}, 0.9, 2 * GiB, 1.0},  // distinct on every key
  };
  constexpr EvictionPolicy kPolicies[] = {
      EvictionPolicy::MostProgress,
      EvictionPolicy::LeastProgress,
      EvictionPolicy::SmallestMemory,
      EvictionPolicy::LastLaunched,
  };
  for (const EvictionPolicy policy : kPolicies) {
    const TaskId expected = pick_victim(policy, pool);
    ASSERT_TRUE(expected.valid());
    std::vector<EvictionCandidate> perm = pool;
    for (size_t i = 0; i < pool.size(); ++i) {
      std::rotate(perm.begin(), perm.begin() + 1, perm.end());
      EXPECT_EQ(pick_victim(policy, perm), expected)
          << to_string(policy) << " rotation " << i;
    }
    std::reverse(perm.begin(), perm.end());
    EXPECT_EQ(pick_victim(policy, perm), expected) << to_string(policy) << " reversed";
  }
}

TEST(Eviction, AllTiedElectsLowestTaskIdUnderEveryPolicy) {
  const std::vector<EvictionCandidate> ties = {
      {TaskId{7}, 0.5, 1 * GiB, 5.0},
      {TaskId{3}, 0.5, 1 * GiB, 5.0},
      {TaskId{11}, 0.5, 1 * GiB, 5.0},
  };
  EXPECT_EQ(pick_victim(EvictionPolicy::MostProgress, ties), TaskId{3});
  EXPECT_EQ(pick_victim(EvictionPolicy::LeastProgress, ties), TaskId{3});
  EXPECT_EQ(pick_victim(EvictionPolicy::SmallestMemory, ties), TaskId{3});
  EXPECT_EQ(pick_victim(EvictionPolicy::LastLaunched, ties), TaskId{3});
}

TEST(Eviction, PolicyNames) {
  EXPECT_STREQ(to_string(EvictionPolicy::SmallestMemory), "smallest-memory");
  EXPECT_STREQ(to_string(EvictionPolicy::MostProgress), "most-progress");
}

TEST(Primitive, ParseRoundTrip) {
  EXPECT_EQ(parse_primitive("wait"), PreemptPrimitive::Wait);
  EXPECT_EQ(parse_primitive("kill"), PreemptPrimitive::Kill);
  EXPECT_EQ(parse_primitive("susp"), PreemptPrimitive::Suspend);
  EXPECT_EQ(parse_primitive("suspend"), PreemptPrimitive::Suspend);
  EXPECT_EQ(parse_primitive("natjam"), PreemptPrimitive::NatjamCheckpoint);
  EXPECT_EQ(parse_primitive("checkpoint"), PreemptPrimitive::NatjamCheckpoint);
  EXPECT_THROW(parse_primitive("bogus"), SimError);
  EXPECT_STREQ(to_string(PreemptPrimitive::Suspend), "susp");
}

// Adding an enumerator without a spelling (or vice versa) breaks here,
// not in some sweep config three layers up.
TEST(Primitive, ExhaustiveRoundTrip) {
  for (const PreemptPrimitive p : kAllPrimitives) {
    EXPECT_STRNE(to_string(p), "?");
    EXPECT_EQ(parse_primitive(to_string(p)), p);
  }
}

TEST(Primitive, ParseErrorNamesValueAndEverySpelling) {
  try {
    parse_primitive("sigstop");
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("sigstop"), std::string::npos) << msg;
    EXPECT_NE(msg.find(kPrimitiveSpellings), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace osap
