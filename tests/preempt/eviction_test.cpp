#include "preempt/eviction.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "preempt/primitive.hpp"

namespace osap {
namespace {

std::vector<EvictionCandidate> sample() {
  return {
      {TaskId{1}, 0.9, 512 * MiB, 10.0},
      {TaskId{2}, 0.2, 128 * MiB, 30.0},
      {TaskId{3}, 0.5, 2 * GiB, 20.0},
  };
}

TEST(Eviction, MostProgressPicksClosestToCompletion) {
  EXPECT_EQ(pick_victim(EvictionPolicy::MostProgress, sample()), TaskId{1});
}

TEST(Eviction, LeastProgressPicksFreshest) {
  EXPECT_EQ(pick_victim(EvictionPolicy::LeastProgress, sample()), TaskId{2});
}

TEST(Eviction, SmallestMemoryMinimizesPagingCost) {
  EXPECT_EQ(pick_victim(EvictionPolicy::SmallestMemory, sample()), TaskId{2});
}

TEST(Eviction, LastLaunchedPicksYoungest) {
  EXPECT_EQ(pick_victim(EvictionPolicy::LastLaunched, sample()), TaskId{2});
}

TEST(Eviction, EmptyCandidatesGiveInvalidId) {
  EXPECT_FALSE(pick_victim(EvictionPolicy::MostProgress, {}).valid());
}

TEST(Eviction, TieBreaksOnLowerTaskId) {
  std::vector<EvictionCandidate> ties = {
      {TaskId{7}, 0.5, 1 * GiB, 5.0},
      {TaskId{3}, 0.5, 1 * GiB, 5.0},
  };
  EXPECT_EQ(pick_victim(EvictionPolicy::MostProgress, ties), TaskId{3});
  EXPECT_EQ(pick_victim(EvictionPolicy::SmallestMemory, ties), TaskId{3});
}

TEST(Eviction, PolicyNames) {
  EXPECT_STREQ(to_string(EvictionPolicy::SmallestMemory), "smallest-memory");
  EXPECT_STREQ(to_string(EvictionPolicy::MostProgress), "most-progress");
}

TEST(Primitive, ParseRoundTrip) {
  EXPECT_EQ(parse_primitive("wait"), PreemptPrimitive::Wait);
  EXPECT_EQ(parse_primitive("kill"), PreemptPrimitive::Kill);
  EXPECT_EQ(parse_primitive("susp"), PreemptPrimitive::Suspend);
  EXPECT_EQ(parse_primitive("suspend"), PreemptPrimitive::Suspend);
  EXPECT_EQ(parse_primitive("natjam"), PreemptPrimitive::NatjamCheckpoint);
  EXPECT_THROW(parse_primitive("bogus"), SimError);
  EXPECT_STREQ(to_string(PreemptPrimitive::Suspend), "susp");
}

}  // namespace
}  // namespace osap
