// Preemptor + resume-locality behaviour against a live cluster.
#include <gtest/gtest.h>

#include "preempt/preemptor.hpp"
#include "preempt/resume_locality.hpp"
#include "sched/dummy.hpp"
#include "workload/profiles.hpp"

namespace osap {
namespace {

struct Rig {
  explicit Rig(ClusterConfig cfg = paper_cluster()) : cluster(cfg) {
    auto sched = std::make_unique<DummyScheduler>(cluster);
    ds = sched.get();
    cluster.set_scheduler(std::move(sched));
  }
  Cluster cluster;
  DummyScheduler* ds = nullptr;
};

TEST(Preemptor, WaitIsNoOp) {
  Rig rig;
  TaskSpec spec = light_map_task();
  spec.preferred_node = rig.cluster.node(0);
  rig.ds->submit_at(0.05, single_task_job("tl", 0, spec));
  rig.ds->at_progress("tl", 0, 0.3, [&] {
    Preemptor preemptor(rig.cluster.job_tracker());
    EXPECT_TRUE(preemptor.preempt(rig.ds->task_of("tl", 0), PreemptPrimitive::Wait));
    EXPECT_EQ(rig.cluster.job_tracker().task(rig.ds->task_of("tl", 0)).state,
              TaskState::Running);
  });
  rig.cluster.run();
  EXPECT_EQ(rig.cluster.job_tracker().job(rig.ds->job_of("tl")).state, JobState::Succeeded);
}

TEST(Preemptor, SuspendThenRestore) {
  Rig rig;
  TaskSpec spec = light_map_task();
  spec.preferred_node = rig.cluster.node(0);
  rig.ds->submit_at(0.05, single_task_job("tl", 0, spec));
  rig.ds->at_progress("tl", 0, 0.3, [&] {
    Preemptor preemptor(rig.cluster.job_tracker());
    EXPECT_TRUE(preemptor.preempt(rig.ds->task_of("tl", 0), PreemptPrimitive::Suspend));
  });
  rig.cluster.sim().at(50.0, [&] {
    Preemptor preemptor(rig.cluster.job_tracker());
    EXPECT_TRUE(preemptor.restore(rig.ds->task_of("tl", 0), PreemptPrimitive::Suspend));
  });
  rig.cluster.run();
  EXPECT_EQ(rig.cluster.job_tracker().job(rig.ds->job_of("tl")).state, JobState::Succeeded);
}

TEST(Preemptor, RestoreBeforeAckIsRejected) {
  Rig rig;
  TaskSpec spec = light_map_task();
  spec.preferred_node = rig.cluster.node(0);
  rig.ds->submit_at(0.05, single_task_job("tl", 0, spec));
  rig.ds->at_progress("tl", 0, 0.3, [&] {
    Preemptor preemptor(rig.cluster.job_tracker());
    EXPECT_TRUE(preemptor.preempt(rig.ds->task_of("tl", 0), PreemptPrimitive::Suspend));
    // Task is MUST_SUSPEND: the ack has not arrived yet.
    EXPECT_FALSE(preemptor.restore(rig.ds->task_of("tl", 0), PreemptPrimitive::Suspend));
  });
  rig.cluster.sim().at(50.0, [&] {
    Preemptor preemptor(rig.cluster.job_tracker());
    EXPECT_TRUE(preemptor.restore(rig.ds->task_of("tl", 0), PreemptPrimitive::Suspend));
  });
  rig.cluster.run();
  EXPECT_EQ(rig.cluster.job_tracker().job(rig.ds->job_of("tl")).state, JobState::Succeeded);
}

TEST(ResumeLocality, HomeNodeResumeWhenSlotFrees) {
  Rig rig;
  TaskSpec spec = light_map_task();
  spec.preferred_node = rig.cluster.node(0);
  rig.ds->submit_at(0.05, single_task_job("tl", 0, spec));
  rig.ds->at_progress("tl", 0, 0.3,
                      [&] { rig.ds->preempt("tl", 0, PreemptPrimitive::Suspend); });
  auto policy = std::make_shared<ResumeLocalityPolicy>(rig.cluster.job_tracker(), seconds(60));
  rig.cluster.sim().at(50.0, [&, policy] {
    policy->request_resume(rig.ds->task_of("tl", 0));
    TrackerStatus status;
    status.tracker = TrackerId{0};
    status.node = rig.cluster.node(0);
    status.free_map_slots = 1;
    EXPECT_EQ(policy->on_heartbeat(status), 1);
    EXPECT_EQ(policy->pending(), 0u);
  });
  rig.cluster.run();
  EXPECT_EQ(rig.cluster.job_tracker().job(rig.ds->job_of("tl")).state, JobState::Succeeded);
}

TEST(ResumeLocality, ForeignNodeWaitsUntilThresholdThenKills) {
  Rig rig;
  TaskSpec spec = light_map_task();
  spec.preferred_node = rig.cluster.node(0);
  rig.ds->submit_at(0.05, single_task_job("tl", 0, spec));
  rig.ds->at_progress("tl", 0, 0.3,
                      [&] { rig.ds->preempt("tl", 0, PreemptPrimitive::Suspend); });
  auto policy = std::make_shared<ResumeLocalityPolicy>(rig.cluster.job_tracker(), seconds(10));
  TrackerStatus foreign;
  foreign.tracker = TrackerId{99};
  foreign.node = NodeId{99};
  foreign.free_map_slots = 1;
  rig.cluster.sim().at(50.0, [&, policy] {
    policy->request_resume(rig.ds->task_of("tl", 0));
    // A foreign tracker offers a slot immediately: inside the threshold,
    // the policy holds out for the home node.
    EXPECT_EQ(policy->on_heartbeat(foreign), 0);
    EXPECT_EQ(policy->pending(), 1u);
  });
  rig.cluster.sim().at(65.0, [&, policy] {
    // Past the threshold the suspend degenerates into a delayed kill; the
    // kill command rides the next heartbeat, so the state is still
    // SUSPENDED here.
    policy->on_heartbeat(foreign);
    EXPECT_EQ(rig.cluster.job_tracker().task(rig.ds->task_of("tl", 0)).state,
              TaskState::Suspended);
  });
  rig.cluster.run();
  const Task& task = rig.cluster.job_tracker().task(rig.ds->task_of("tl", 0));
  EXPECT_EQ(task.attempts_started, 2);  // restarted from scratch
  EXPECT_EQ(rig.cluster.job_tracker().job(rig.ds->job_of("tl")).state, JobState::Succeeded);
}

}  // namespace
}  // namespace osap
